/**
 * @file
 * Table IV: per-application characteristics — IPC at bestTLP, EB at
 * bestTLP, and the G1..G4 group assignment by EB quartile. Our
 * absolute values differ from the paper (synthetic apps on a scaled
 * machine); the table records what EXPERIMENTS.md compares against.
 */
#include <cstdio>

#include "common/job_pool.hpp"
#include "harness/experiment.hpp"
#include "harness/table.hpp"
#include "workload/app_catalog.hpp"

using namespace ebm;

int
main(int argc, char **argv)
{
    ebm::applyJobsFlag(argc, argv);
    Experiment exp(2);

    std::printf("Table IV: application characteristics (alone runs "
                "on the per-app core share)\n\n");

    exp.profiles().assignGroups(appCatalog());

    TextTable out({"App", "bestTLP", "IPC@bestTLP", "EB@bestTLP",
                   "r_m", "Group"});
    for (const AppProfile &app : appCatalog()) {
        const AppAloneProfile &prof = exp.profiles().profile(app);
        std::string group = "G";
        group += std::to_string(prof.group);
        out.addRow({app.name, std::to_string(prof.bestTlp),
                    TextTable::num(prof.ipcAtBest, 2),
                    TextTable::num(prof.ebAtBest),
                    TextTable::num(app.memFraction(), 2),
                    group});
    }
    out.print();

    std::printf("\nGroup mean alone-EB (the user-supplied scaling "
                "factors for PBS-FI/HS):\n");
    for (std::uint32_t g = 1; g <= 4; ++g) {
        // Any member app returns its group's mean.
        double mean = 0.0;
        for (const AppProfile &app : appCatalog()) {
            if (exp.profiles().profile(app).group == g) {
                mean = exp.profiles().groupScale(app.name);
                break;
            }
        }
        std::printf("  G%u: %.3f\n", g, mean);
    }

    std::printf("\nPaper shape: a wide spread of EB values from "
                "compute-bound (G1) to cache-amplified (G4) apps, "
                "with bestTLP varying across applications.\n");
    return 0;
}
