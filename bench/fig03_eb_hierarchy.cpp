/**
 * @file
 * Figure 3: effective bandwidth at different levels of the memory
 * hierarchy. EB at DRAM is the attained BW; EB observed by the L2 is
 * BW/L2MR; EB observed by the core is BW/CMR. A cache-insensitive app
 * (BLK) sees the same value at every level; a cache-sensitive app
 * (BFS) sees growing amplification up the hierarchy.
 */
#include <cstdio>

#include "common/job_pool.hpp"
#include "harness/experiment.hpp"
#include "harness/table.hpp"
#include "workload/app_catalog.hpp"

using namespace ebm;

int
main(int argc, char **argv)
{
    ebm::applyJobsFlag(argc, argv);
    Experiment exp(2);

    std::printf("Figure 3: EB at hierarchy levels (apps alone at "
                "bestTLP)\n\n");

    TextTable out({"App", "bestTLP", "A: BW (DRAM)", "B: BW/L2MR (L2)",
                   "C: BW/CMR (core)", "amplification C/A"});
    for (const char *name : {"BLK", "BFS", "FFT", "JPEG"}) {
        const AppAloneProfile &prof =
            exp.profiles().profile(findApp(name));
        std::size_t best_idx = 0;
        for (std::size_t i = 0; i < prof.levels.size(); ++i) {
            if (prof.levels[i] == prof.bestTlp)
                best_idx = i;
        }
        const AppRunStats &s = prof.perLevel[best_idx];
        out.addRow({name, std::to_string(prof.bestTlp),
                    TextTable::num(s.bw), TextTable::num(s.ebAtL2()),
                    TextTable::num(s.eb()),
                    TextTable::num(s.eb() / s.bw, 2)});
    }
    out.print();

    std::printf("\nPaper shape: cache-insensitive BLK has C == A "
                "(CMR == 1); cache-sensitive apps amplify DRAM "
                "bandwidth through the caches (C > B > A).\n");
    return 0;
}
