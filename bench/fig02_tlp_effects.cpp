/**
 * @file
 * Figure 2: the effect of TLP on IPC, BW, CMR, and EB for BFS running
 * alone, normalized to its bestTLP values. The key shape: IPC and EB
 * rise to a knee and then fall, while BW keeps rising and CMR grows
 * monotonically — EB tracks IPC, BW alone does not.
 */
#include <cstdio>

#include "common/job_pool.hpp"
#include "harness/experiment.hpp"
#include "harness/table.hpp"
#include "workload/app_catalog.hpp"

using namespace ebm;

int
main(int argc, char **argv)
{
    ebm::applyJobsFlag(argc, argv);
    Experiment exp(2);
    const AppAloneProfile &prof =
        exp.profiles().profile(findApp("BFS"));

    std::printf("Figure 2: effect of TLP on BFS (normalized to "
                "bestTLP=%u)\n\n",
                prof.bestTlp);

    // Locate the bestTLP row for normalization.
    std::size_t best_idx = 0;
    for (std::size_t i = 0; i < prof.levels.size(); ++i) {
        if (prof.levels[i] == prof.bestTlp)
            best_idx = i;
    }
    const AppRunStats &base = prof.perLevel[best_idx];

    TextTable out({"TLP", "IPC", "BW", "CMR", "EB"});
    for (std::size_t i = 0; i < prof.levels.size(); ++i) {
        const AppRunStats &s = prof.perLevel[i];
        out.addRow({std::to_string(prof.levels[i]),
                    TextTable::num(s.ipc / base.ipc),
                    TextTable::num(s.bw / base.bw),
                    TextTable::num(s.cmr() / base.cmr()),
                    TextTable::num(s.eb() / base.eb())});
    }
    out.print();

    std::printf("\nPaper shape: IPC and EB peak at bestTLP and track "
                "each other; CMR rises with TLP and erodes the BW "
                "gains past the knee.\n");
    return 0;
}
