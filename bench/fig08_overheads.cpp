/**
 * @file
 * Figure 8 / Section V-E: the hardware organization's overheads —
 * per-unit storage, per-window communication over the crossbar, the
 * sampling-table footprint, and the runtime cost of PBS searching
 * (windows spent at probe combinations), measured on a live run.
 */
#include <cstdio>

#include "common/job_pool.hpp"
#include "core/eb_monitor.hpp"
#include "core/pbs_policy.hpp"
#include "harness/experiment.hpp"
#include "harness/table.hpp"
#include "workload/workload_suite.hpp"

using namespace ebm;

int
main(int argc, char **argv)
{
    ebm::applyJobsFlag(argc, argv);
    Experiment exp(2);
    const GpuConfig &cfg = exp.runner().config();

    std::printf("Figure 8 / Section V-E: monitor hardware costs\n\n");
    const auto cost = EbMonitor::hardwareCost(2);
    TextTable hw({"Component", "Cost"});
    hw.addRow({"Per-core registers (L1 acc/miss)",
               std::to_string(cost.bitsPerCore) + " bits"});
    hw.addRow({"Per-partition registers (L2 acc/miss, BW, TLP)",
               std::to_string(cost.bitsPerPartition) + " bits"});
    hw.addRow({"Crossbar relay per sampling window",
               std::to_string(cost.relayBitsPerWindow) + " bits"});
    hw.addRow({"Sampling table",
               std::to_string(cost.samplingTableBytes) + " bytes"});
    hw.addRow({"Total cores / partitions",
               std::to_string(cfg.numCores) + " / " +
                   std::to_string(cfg.numPartitions)});
    hw.print();

    std::printf("\nRuntime search overhead (live PBS-WS runs):\n\n");
    TextTable rt({"Workload", "samples", "search windows",
                  "search cycles", "fraction of run"});
    for (const Workload &wl : representativeWorkloads()) {
        PbsPolicy::Params params;
        params.objective = EbObjective::WS;
        PbsPolicy policy(params);
        const RunResult r =
            exp.onlineRunner().run(resolveApps(wl), policy);
        const RunOptions &opts = exp.onlineRunner().options();
        const Cycle search_cycles =
            static_cast<Cycle>(r.samplesTaken) * opts.windowCycles;
        const Cycle total =
            opts.warmupCycles + opts.measureCycles;
        rt.addRow({wl.name, std::to_string(r.samplesTaken),
                   std::to_string(r.samplesTaken),
                   std::to_string(search_cycles),
                   TextTable::num(
                       static_cast<double>(search_cycles) /
                           static_cast<double>(total),
                       2)});
    }
    rt.print();

    std::printf("\nPaper shape: a few dozen bytes of state per unit, "
                "~hundred bits relayed per window, and a search that "
                "visits ~16 of 64 combinations before settling.\n");
    return 0;
}
