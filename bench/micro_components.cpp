/**
 * @file
 * Component micro-benchmarks (google-benchmark): raw throughput of
 * the tag array, MSHR file, DRAM channel, crossbar, trace generator,
 * and the whole-GPU cycle loop. Useful for tracking simulator
 * performance regressions; not a paper figure.
 */
#include <benchmark/benchmark.h>

#include "common/config.hpp"
#include "interconnect/crossbar.hpp"
#include "mem/address_map.hpp"
#include "mem/cache.hpp"
#include "mem/dram.hpp"
#include "sim/gpu.hpp"
#include "workload/app_catalog.hpp"
#include "workload/trace_gen.hpp"

namespace {

using namespace ebm;

GpuConfig
benchConfig(std::uint32_t num_apps)
{
    GpuConfig cfg;
    cfg.numApps = num_apps;
    return cfg;
}

void
BM_TagArrayAccess(benchmark::State &state)
{
    TagArray tags(GpuConfig{}.l1);
    std::uint64_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            tags.access((i++ % 4096) * 128, 0, true));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TagArrayAccess);

void
BM_CacheAccessMissFill(benchmark::State &state)
{
    Cache cache(GpuConfig{}.l1, 1);
    MemRequest req;
    req.app = 0;
    std::uint64_t i = 0;
    for (auto _ : state) {
        req.lineAddr = (i++ % 1024) * 128;
        const CacheOutcome out = cache.access(req);
        if (out == CacheOutcome::MissNew)
            cache.fill(req.lineAddr, 0, false);
        benchmark::DoNotOptimize(out);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheAccessMissFill);

void
BM_DramChannelStreaming(benchmark::State &state)
{
    const GpuConfig cfg = benchConfig(1);
    DramChannel dram(cfg, 1);
    MemRequest req;
    req.app = 0;
    DramCoord coord;
    std::uint64_t i = 0;
    for (auto _ : state) {
        if (!dram.queueFull()) {
            coord.bank = static_cast<std::uint32_t>(i / 16 % 16);
            coord.row = i / 256;
            coord.col = static_cast<std::uint32_t>(i % 16);
            dram.enqueue(req, coord);
            ++i;
        }
        DramCompletion done;
        benchmark::DoNotOptimize(dram.tick(done));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DramChannelStreaming);

void
BM_CrossbarTick(benchmark::State &state)
{
    const GpuConfig cfg = benchConfig(1);
    Crossbar xbar(cfg);
    MemRequest req;
    req.app = 0;
    Cycle now = 0;
    std::uint32_t in = 0;
    for (auto _ : state) {
        if (xbar.requestNet().canAccept(in, 0))
            xbar.requestNet().inject(in, 0, req);
        in = (in + 1) % cfg.numCores;
        xbar.tick(++now);
        MemRequest out;
        while (xbar.requestNet().tryEject(0, now, out))
            benchmark::DoNotOptimize(out);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CrossbarTick);

void
BM_TraceGenAddress(benchmark::State &state)
{
    TraceGen gen(findApp("BFS"), 128);
    std::uint64_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(gen.lineAddr(i % 97, i, 0, i));
        ++i;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TraceGenAddress);

void
BM_GpuCycleSoloStreaming(benchmark::State &state)
{
    GpuConfig cfg = benchConfig(1);
    cfg.numCores = 8;
    Gpu gpu(cfg, {findApp("BLK")});
    for (auto _ : state)
        gpu.tick();
    state.SetItemsProcessed(state.iterations());
    state.counters["IPC"] = gpu.appIpc(0);
}
BENCHMARK(BM_GpuCycleSoloStreaming);

void
BM_GpuCycleTwoApps(benchmark::State &state)
{
    GpuConfig cfg = benchConfig(2);
    Gpu gpu(cfg, {findApp("BLK"), findApp("BFS")});
    for (auto _ : state)
        gpu.tick();
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GpuCycleTwoApps);

/**
 * Whole-GPU simulation loop via Gpu::run() — the path every sweep and
 * harness drive takes. Items/sec = simulated cycles per wall second.
 * The memory-bound BFS+FFT pair spends most cycles waiting on DRAM,
 * which is exactly where the quiescence fast-forward pays off; the
 * Serial variant pins the pre-optimization baseline for comparison.
 */
void
gpuRunMemBoundPair(benchmark::State &state, bool fast_forward)
{
    GpuConfig cfg = benchConfig(2);
    Gpu gpu(cfg, {findApp("BFS"), findApp("FFT")});
    gpu.setFastForward(fast_forward);
    constexpr Cycle kChunk = 10'000;
    for (auto _ : state)
        gpu.run(kChunk);
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) * kChunk);
    state.counters["skipped_frac"] =
        static_cast<double>(gpu.fastForwardedCycles()) /
        static_cast<double>(gpu.now());
}

// Fixed iteration counts so both variants simulate the *same* cycle
// range (cost varies along the workload; floating iteration counts
// would compare different phases).
void
BM_GpuRunMemBoundPairSerial(benchmark::State &state)
{
    gpuRunMemBoundPair(state, false);
}
BENCHMARK(BM_GpuRunMemBoundPairSerial)->Iterations(30);

void
BM_GpuRunMemBoundPairFast(benchmark::State &state)
{
    gpuRunMemBoundPair(state, true);
}
BENCHMARK(BM_GpuRunMemBoundPairFast)->Iterations(30);

/** Compute-heavy co-run: the fast-forward gate must not cost here. */
void
BM_GpuRunBusyPairFast(benchmark::State &state)
{
    GpuConfig cfg = benchConfig(2);
    Gpu gpu(cfg, {findApp("BLK"), findApp("RAY")});
    constexpr Cycle kChunk = 10'000;
    for (auto _ : state)
        gpu.run(kChunk);
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) * kChunk);
}
BENCHMARK(BM_GpuRunBusyPairFast);

} // namespace

BENCHMARK_MAIN();
