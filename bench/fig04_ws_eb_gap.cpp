/**
 * @file
 * Figure 4: for the 10 representative workloads, the per-app
 * slowdown breakdown (a) and effective-bandwidth breakdown (b) under
 * ++bestTLP vs optWS. Demonstrates Observation 1: the combination
 * with the highest EB-WS also has the highest WS.
 */
#include <cstdio>

#include "common/job_pool.hpp"
#include "common/log.hpp"
#include "harness/experiment.hpp"
#include "harness/table.hpp"

using namespace ebm;

int
run()
{
    Experiment exp(2);

    std::printf("Figure 4(a): slowdown breakdown, ++bestTLP vs "
                "optWS\n\n");
    TextTable sd_table({"Workload", "SD-1 (best)", "SD-2 (best)",
                        "WS (best)", "SD-1 (opt)", "SD-2 (opt)",
                        "WS (opt)"});
    TextTable eb_table({"Workload", "EB-1 (best)", "EB-2 (best)",
                        "EB-WS (best)", "EB-1 (opt)", "EB-2 (opt)",
                        "EB-WS (opt)"});

    for (const Workload &wl : representativeWorkloads()) {
        const ComboTable table = exp.exhaustive().sweep(wl);
        const std::vector<double> alone = exp.aloneIpcs(wl);
        const TlpCombo best = exp.bestTlpCombo(wl);
        const TlpCombo opt =
            Exhaustive::argmax(table, OptTarget::SdWS, alone);

        auto sds = [&](const TlpCombo &c) {
            const RunResult &r = table.at(c);
            return std::pair{slowdown(r.apps[0].ipc, alone[0]),
                             slowdown(r.apps[1].ipc, alone[1])};
        };
        const auto [b1, b2] = sds(best);
        const auto [o1, o2] = sds(opt);
        sd_table.addRow({wl.name, TextTable::num(b1),
                         TextTable::num(b2), TextTable::num(b1 + b2),
                         TextTable::num(o1), TextTable::num(o2),
                         TextTable::num(o1 + o2)});

        const auto ebs_best = table.at(best).ebs();
        const auto ebs_opt = table.at(opt).ebs();
        eb_table.addRow(
            {wl.name, TextTable::num(ebs_best[0]),
             TextTable::num(ebs_best[1]),
             TextTable::num(ebs_best[0] + ebs_best[1]),
             TextTable::num(ebs_opt[0]), TextTable::num(ebs_opt[1]),
             TextTable::num(ebs_opt[0] + ebs_opt[1])});
    }
    sd_table.print();
    std::printf("\nFigure 4(b): effective-bandwidth breakdown\n\n");
    eb_table.print();

    std::printf("\nPaper shape: optWS achieves both higher WS and "
                "higher EB-WS than ++bestTLP on (almost) every "
                "workload (Observation 1).\n");
    std::printf("\n%s\n",
                exp.exhaustive().status().summaryLine().c_str());
    return 0;
}

int
main(int argc, char **argv)
{
    ebm::applyJobsFlag(argc, argv);
    return runGuarded("fig04_ws_eb_gap", run);
}
