/**
 * @file
 * Figure 5: IPC alone-ratio vs EB alone-ratio bias, max(m, 1/m), for
 * every two-application workload formed from the 16 evaluated apps.
 * The paper's argument for optimizing EB-based (rather than IPC-based)
 * sums: EB_AR is much less biased than IPC_AR on average.
 */
#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include "common/job_pool.hpp"
#include "harness/experiment.hpp"
#include "harness/table.hpp"
#include "metrics/metrics.hpp"
#include "workload/app_catalog.hpp"

using namespace ebm;

int
main(int argc, char **argv)
{
    ebm::applyJobsFlag(argc, argv);
    Experiment exp(2);

    // The 16 apps spanned by the evaluated suite.
    std::set<std::string> app_set;
    for (const Workload &wl : fullSuite())
        app_set.insert(wl.appNames.begin(), wl.appNames.end());
    const std::vector<std::string> apps(app_set.begin(), app_set.end());

    std::printf("Figure 5: alone-ratio bias max(m, 1/m) across all "
                "%zu-app pairings\n\n",
                apps.size());

    std::vector<double> ipc_ars, eb_ars;
    for (std::size_t i = 0; i < apps.size(); ++i) {
        for (std::size_t j = i + 1; j < apps.size(); ++j) {
            const auto &pa = exp.profiles().profile(findApp(apps[i]));
            const auto &pb = exp.profiles().profile(findApp(apps[j]));
            ipc_ars.push_back(
                aloneRatioBias(pa.ipcAtBest, pb.ipcAtBest));
            eb_ars.push_back(aloneRatioBias(pa.ebAtBest, pb.ebAtBest));
        }
    }

    auto summarize = [](std::vector<double> v) {
        std::sort(v.begin(), v.end());
        struct
        {
            double mean, median, p90, max;
        } s{};
        double sum = 0;
        for (double x : v)
            sum += x;
        s.mean = sum / static_cast<double>(v.size());
        s.median = v[v.size() / 2];
        s.p90 = v[static_cast<std::size_t>(0.9 * v.size())];
        s.max = v.back();
        return s;
    };
    const auto ipc = summarize(ipc_ars);
    const auto eb = summarize(eb_ars);

    TextTable out({"Metric", "mean", "median", "p90", "max"});
    out.addRow({"IPC_AR", TextTable::num(ipc.mean),
                TextTable::num(ipc.median), TextTable::num(ipc.p90),
                TextTable::num(ipc.max)});
    out.addRow({"EB_AR", TextTable::num(eb.mean),
                TextTable::num(eb.median), TextTable::num(eb.p90),
                TextTable::num(eb.max)});
    out.print();

    std::printf("\nPer-pair series (workload, IPC_AR, EB_AR):\n");
    std::size_t k = 0;
    for (std::size_t i = 0; i < apps.size(); ++i) {
        for (std::size_t j = i + 1; j < apps.size(); ++j, ++k) {
            std::printf("  %-10s %7.3f %7.3f\n",
                        (apps[i] + "_" + apps[j]).c_str(), ipc_ars[k],
                        eb_ars[k]);
        }
    }

    std::printf("\nPaper shape: EB_AR is on average much lower than "
                "IPC_AR, so EB-based sums are less biased toward one "
                "co-runner.\n");
    return 0;
}
