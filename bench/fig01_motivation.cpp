/**
 * @file
 * Figure 1: motivation. WS and FI of BFS_FFT under ++bestTLP,
 * ++maxTLP, optWS, and optFI (normalized to ++bestTLP), showing that
 * solo-optimal TLP choices are sub-optimal under co-location.
 */
#include <cstdio>

#include "common/job_pool.hpp"
#include "common/log.hpp"
#include "harness/experiment.hpp"
#include "harness/table.hpp"

using namespace ebm;

int
run()
{
    Experiment exp(2);
    const Workload wl = makePair("BFS", "FFT");

    std::printf("Figure 1: WS/FI of %s under TLP policies "
                "(normalized to ++bestTLP)\n\n",
                wl.name.c_str());

    const ComboTable table = exp.exhaustive().sweep(wl);
    const std::vector<double> alone = exp.aloneIpcs(wl);

    const TlpCombo best = exp.bestTlpCombo(wl);
    const TlpCombo max_tlp = {GpuConfig::tlpLevels().back(),
                              GpuConfig::tlpLevels().back()};
    const TlpCombo opt_ws =
        Exhaustive::argmax(table, OptTarget::SdWS, alone);
    const TlpCombo opt_fi =
        Exhaustive::argmax(table, OptTarget::SdFI, alone);

    const double ws_base =
        Exhaustive::value(table, best, OptTarget::SdWS, alone);
    const double fi_base =
        Exhaustive::value(table, best, OptTarget::SdFI, alone);

    TextTable out({"Scheme", "TLP combo", "WS (norm)", "FI (norm)"});
    auto row = [&](const std::string &name, const TlpCombo &combo) {
        const double ws =
            Exhaustive::value(table, combo, OptTarget::SdWS, alone);
        const double fi =
            Exhaustive::value(table, combo, OptTarget::SdFI, alone);
        out.addRow({name,
                    "(" + std::to_string(combo[0]) + "," +
                        std::to_string(combo[1]) + ")",
                    TextTable::num(ws / ws_base),
                    TextTable::num(fi / fi_base)});
    };
    row("++bestTLP", best);
    row("++maxTLP", max_tlp);
    row("optWS", opt_ws);
    row("optFI", opt_fi);
    out.print();

    std::printf("\nPaper shape: optWS/optFI clearly above ++bestTLP; "
                "++maxTLP at or below it.\n");
    std::printf("\n%s\n",
                exp.exhaustive().status().summaryLine().c_str());
    std::printf("%s\n", exp.cache().persistSummaryLine().c_str());
    return 0;
}

int
main(int argc, char **argv)
{
    ebm::applyJobsFlag(argc, argv);
    return runGuarded("fig01_motivation", run);
}
