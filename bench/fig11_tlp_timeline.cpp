/**
 * @file
 * Figure 11: TLP changes over time for BLK_BFS under PBS-WS and
 * PBS-FI. Shaded sampling periods appear here as the probe segments
 * before convergence; kernel relaunches restart the search mid-run.
 */
#include <cstdio>

#include "common/job_pool.hpp"
#include "core/pbs_policy.hpp"
#include "harness/experiment.hpp"
#include "workload/workload_suite.hpp"

using namespace ebm;

namespace {

void
printTimeline(const char *label, const Workload &wl,
              EbObjective objective, Experiment &exp)
{
    PbsPolicy::Params params;
    params.objective = objective;
    if (objective != EbObjective::WS) {
        params.scaling = ScalingMode::SampledAlone;
        params.settleWindows = 1;
        params.measureWindows = 2;
    }
    PbsPolicy policy(params);

    // A longer run with a mid-run kernel relaunch shows both the
    // initial search and the restart dynamics.
    Runner runner(exp.runner().config(), [] {
        RunOptions opts = Experiment::standardOptions();
        opts.measureCycles = 60'000;
        opts.relaunchInterval = 35'000;
        return opts;
    }());
    const RunResult r = runner.run(resolveApps(wl), policy);

    std::printf("%s on %s (search samples: %u)\n", label,
                wl.name.c_str(), r.samplesTaken);
    std::printf("%-12s %-10s %-10s\n", "cycle",
                ("TLP-" + wl.appNames[0]).c_str(),
                ("TLP-" + wl.appNames[1]).c_str());
    for (const auto &[cycle, combo] : policy.timeline()) {
        std::printf("%-12llu %-10u %-10u\n",
                    static_cast<unsigned long long>(cycle), combo[0],
                    combo[1]);
    }
    std::printf("\n");
}

} // namespace

int
main(int argc, char **argv)
{
    ebm::applyJobsFlag(argc, argv);
    Experiment exp(2);
    const Workload wl = makePair("BLK", "BFS");

    std::printf("Figure 11: TLP over time for BLK_BFS\n\n");
    printTimeline("(a) PBS-WS", wl, EbObjective::WS, exp);
    printTimeline("(b) PBS-FI", wl, EbObjective::FI, exp);

    std::printf("Paper shape: a burst of probe combinations early in "
                "the run (the shaded sampling periods), a long hold "
                "at the chosen combination, and a re-search after the "
                "kernel relaunch.\n");
    return 0;
}
