/**
 * @file
 * Ablation (paper Section IV, Observation 2): what happens if the
 * runtime optimizes a different signal? For each representative
 * workload, pick the TLP combination that maximizes
 *   (a) sum of IPCs (instruction throughput, IT),
 *   (b) sum of raw attained BW,
 *   (c) sum of EBs (EB-WS, the paper's signal),
 * then report the *actual* weighted speedup of each choice relative
 * to the SD-optimal combination. The paper's argument: IT and raw BW
 * are biased by per-app scale and cache amplification; EB-WS tracks
 * WS best.
 */
#include <cstdio>

#include "common/job_pool.hpp"
#include "common/log.hpp"
#include "harness/experiment.hpp"
#include "harness/table.hpp"

using namespace ebm;

namespace {

/** Arg-max of the sum of raw attained bandwidths. */
TlpCombo
argmaxRawBw(const ComboTable &table)
{
    std::size_t best = 0;
    double best_val = -1.0;
    for (std::size_t i = 0; i < table.combos.size(); ++i) {
        if (table.results[i].totalBw > best_val) {
            best_val = table.results[i].totalBw;
            best = i;
        }
    }
    return table.combos[best];
}

} // namespace

int
run()
{
    Experiment exp(2);
    std::printf("Ablation: optimization-signal choice. WS of each "
                "signal's argmax combination,\nnormalized to optWS "
                "(1.0 = the signal found the true optimum).\n\n");

    TextTable out({"Workload", "max sum-IPC", "max raw BW",
                   "max EB-WS", "++bestTLP"});
    std::vector<double> it_norm, bw_norm, eb_norm, best_norm;

    for (const Workload &wl : representativeWorkloads()) {
        const ComboTable table = exp.exhaustive().sweep(wl);
        const std::vector<double> alone = exp.aloneIpcs(wl);
        const double opt_ws = Exhaustive::value(
            table, Exhaustive::argmax(table, OptTarget::SdWS, alone),
            OptTarget::SdWS, alone);

        auto ws_of = [&](const TlpCombo &c) {
            return Exhaustive::value(table, c, OptTarget::SdWS,
                                     alone) /
                   opt_ws;
        };
        const double it = ws_of(
            Exhaustive::argmax(table, OptTarget::SumIpc));
        const double bw = ws_of(argmaxRawBw(table));
        const double eb = ws_of(
            Exhaustive::argmax(table, OptTarget::EbWS));
        const double best = ws_of(exp.bestTlpCombo(wl));
        it_norm.push_back(it);
        bw_norm.push_back(bw);
        eb_norm.push_back(eb);
        best_norm.push_back(best);
        out.addRow({wl.name, TextTable::num(it), TextTable::num(bw),
                    TextTable::num(eb), TextTable::num(best)});
    }
    out.addRow({"Gmean", TextTable::num(gmean(it_norm)),
                TextTable::num(gmean(bw_norm)),
                TextTable::num(gmean(eb_norm)),
                TextTable::num(gmean(best_norm))});
    out.print();

    std::printf("\nPaper shape: the EB-WS argmax recovers (nearly) "
                "all of optWS; the sum-of-IPC argmax is biased toward "
                "high-IPC apps and the raw-BW argmax toward "
                "cache-insensitive apps, so both leave WS on the "
                "table on cache-sensitive pairs.\n");
    std::printf("\n%s\n",
                exp.exhaustive().status().summaryLine().c_str());
    return 0;
}

int
main(int argc, char **argv)
{
    ebm::applyJobsFlag(argc, argv);
    return runGuarded("abl_signal_choice", run);
}
