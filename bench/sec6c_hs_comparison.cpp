/**
 * @file
 * Section VI-C: harmonic weighted speedup comparison — PBS-HS and its
 * offline/brute-force/opt counterparts plus the DynCTA and Mod+Bypass
 * baselines, normalized to ++bestTLP.
 */
#include <cstdio>

#include "scheme_eval.hpp"

int
run()
{
    ebm::Experiment exp(2);
    ebm::bench::runComparison(
        exp, ebm::bench::Report::HS,
        "Section VI-C: Harmonic Weighted Speedup (normalized to "
        "++bestTLP)");
    std::printf(
        "\nPaper shape: PBS-HS balances throughput and fairness — "
        "above the local-heuristic baselines and near the optHS "
        "bound.\n");
    return 0;
}

int
main(int argc, char **argv)
{
    ebm::applyJobsFlag(argc, argv);
    return ebm::runGuarded("sec6c_hs_comparison", run);
}
