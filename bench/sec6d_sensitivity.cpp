/**
 * @file
 * Section VI-D sensitivity studies:
 *  (1) three-application workloads — PBS-WS vs ++bestTLP and ++DynCTA,
 *  (2) core-partitioning sensitivity — unequal core splits,
 *  (3) sampling-window length sweep for the online PBS mechanism.
 */
#include <cstdio>

#include "common/job_pool.hpp"
#include "common/log.hpp"
#include "core/dyncta.hpp"
#include "core/pbs_policy.hpp"
#include "harness/experiment.hpp"
#include "harness/table.hpp"
#include "workload/app_catalog.hpp"
#include "workload/workload_suite.hpp"

using namespace ebm;

namespace {

/** WS of @p result for a workload, given alone IPCs. */
double
wsOf(const RunResult &result, const std::vector<double> &alone)
{
    double ws = 0.0;
    for (std::size_t a = 0; a < result.apps.size(); ++a)
        ws += slowdown(result.apps[a].ipc, alone[a]);
    return ws;
}

} // namespace

int
run()
{
    std::printf("Section VI-D: sensitivity studies\n");

    // ---- (1) Three-application workloads -----------------------------
    {
        std::printf("\n(1) Three-application workloads (WS normalized "
                    "to ++bestTLP)\n\n");
        Experiment exp3(3);
        TextTable out({"Workload", "++DynCTA", "PBS-WS",
                       "PBS-WS samples"});
        for (const Workload &wl : threeAppWorkloads()) {
            const std::vector<AppProfile> apps = resolveApps(wl);
            const std::vector<double> alone = exp3.aloneIpcs(wl);
            const TlpCombo best = exp3.bestTlpCombo(wl);

            const RunResult base =
                exp3.runner().runStatic(apps, best);
            const double ws_base = wsOf(base, alone);

            DynCta dyn;
            const RunResult dyn_r = exp3.onlineRunner().run(apps, dyn);

            PbsPolicy::Params params;
            params.objective = EbObjective::WS;
            PbsPolicy pbs(params);
            const RunResult pbs_r = exp3.onlineRunner().run(apps, pbs);

            out.addRow({wl.name,
                        TextTable::num(wsOf(dyn_r, alone) / ws_base),
                        TextTable::num(wsOf(pbs_r, alone) / ws_base),
                        std::to_string(pbs_r.samplesTaken)});
        }
        out.print();
        std::printf("\nPaper shape: PBS extends to 3+ apps by fixing "
                    "critical apps in criticality order; it still "
                    "beats local heuristics.\n");
    }

    // ---- (2) Core-partitioning sensitivity ----------------------------
    {
        std::printf("\n(2) Core-partitioning sensitivity for BLK_BFS "
                    "(WS normalized to the equal split)\n\n");
        Experiment exp(2);
        const Workload wl = makePair("BLK", "BFS");
        const std::vector<AppProfile> apps = resolveApps(wl);
        const std::vector<double> alone = exp.aloneIpcs(wl);
        const TlpCombo best = exp.bestTlpCombo(wl);
        const std::uint32_t n =
            exp.runner().config().numCores;

        double base_ws = 0.0;
        TextTable out({"Cores (BLK/BFS)", "++bestTLP WS",
                       "PBS-WS WS", "PBS gain"});
        for (const auto &[c0, c1] :
             std::vector<std::pair<std::uint32_t, std::uint32_t>>{
                 {n / 2, n / 2}, {n * 5 / 8, n * 3 / 8},
                 {n * 3 / 8, n * 5 / 8}}) {
            const RunResult base =
                exp.runner().runStatic(apps, best, {c0, c1});
            PbsPolicy::Params params;
            params.objective = EbObjective::WS;
            PbsPolicy pbs(params);
            const RunResult tuned =
                exp.onlineRunner().run(apps, pbs, {c0, c1});
            const double ws_b = wsOf(base, alone);
            const double ws_p = wsOf(tuned, alone);
            if (base_ws == 0.0)
                base_ws = ws_b;
            out.addRow({std::to_string(c0) + "/" + std::to_string(c1),
                        TextTable::num(ws_b / base_ws),
                        TextTable::num(ws_p / base_ws),
                        TextTable::num(ws_p / ws_b)});
        }
        out.print();
        std::printf("\nPaper shape: PBS's gain persists across core "
                    "splits — the bandwidth knob matters regardless "
                    "of the core partition.\n");
    }

    // ---- (3) L2 way-partitioning sensitivity ---------------------------
    {
        std::printf("\n(3) L2 way-partitioning for BLK_BFS under "
                    "++bestTLP (shared vs 50/50 ways)\n\n");
        Experiment exp(2);
        const Workload wl = makePair("BLK", "BFS");
        const std::vector<AppProfile> apps = resolveApps(wl);
        const std::vector<double> alone = exp.aloneIpcs(wl);
        const TlpCombo best = exp.bestTlpCombo(wl);
        const GpuConfig &cfg = exp.runner().config();

        /** Policy that applies a TLP combo plus an L2 way split. */
        class SplitPolicy : public StaticTlpPolicy
        {
          public:
            SplitPolicy(TlpCombo combo, std::uint32_t ways)
                : StaticTlpPolicy("split", std::move(combo)),
                  ways_(ways)
            {
            }
            void
            onRunStart(Gpu &gpu) override
            {
                StaticTlpPolicy::onRunStart(gpu);
                const std::uint32_t half = ways_ / 2;
                gpu.setAppL2WayPartition(0, 0, half);
                gpu.setAppL2WayPartition(1, half, ways_ - half);
            }

          private:
            std::uint32_t ways_;
        };

        const RunResult shared = exp.runner().runStatic(apps, best);
        SplitPolicy split_policy(best, cfg.l2Slice.assoc);
        const RunResult split = exp.runner().run(apps, split_policy);

        TextTable out({"L2 policy", "WS", "L2MR-BLK", "L2MR-BFS"});
        out.addRow({"shared (baseline)",
                    TextTable::num(wsOf(shared, alone)),
                    TextTable::num(shared.apps[0].l2Mr),
                    TextTable::num(shared.apps[1].l2Mr)});
        out.addRow({"50/50 way split",
                    TextTable::num(wsOf(split, alone)),
                    TextTable::num(split.apps[0].l2Mr),
                    TextTable::num(split.apps[1].l2Mr)});
        out.print();
        std::printf("\nPaper shape: cache partitioning alone cannot "
                    "recover what TLP management recovers — the "
                    "bandwidth interference remains.\n");
    }

    // ---- (4) Sampling-window sweep -------------------------------------
    {
        std::printf("\n(4) Sampling-window length sweep for PBS-WS on "
                    "BLK_TRD (WS normalized to ++bestTLP)\n\n");
        Experiment exp(2);
        const Workload wl = makePair("BLK", "TRD");
        const std::vector<AppProfile> apps = resolveApps(wl);
        const std::vector<double> alone = exp.aloneIpcs(wl);
        const TlpCombo best = exp.bestTlpCombo(wl);
        const RunResult base = exp.runner().runStatic(apps, best);
        const double ws_base = wsOf(base, alone);

        TextTable out({"Window (cycles)", "PBS-WS (norm WS)",
                       "samples"});
        for (Cycle window : {500u, 1000u, 1500u, 3000u}) {
            RunOptions opts = Experiment::onlineOptions();
            opts.windowCycles = window;
            Runner runner(exp.runner().config(), opts);
            PbsPolicy::Params params;
            params.objective = EbObjective::WS;
            PbsPolicy pbs(params);
            const RunResult r = runner.run(apps, pbs);
            out.addRow({std::to_string(window),
                        TextTable::num(wsOf(r, alone) / ws_base),
                        std::to_string(r.samplesTaken)});
        }
        out.print();
        std::printf("\nPaper shape: results are stable once the "
                    "window is long enough for trends to settle "
                    "(the paper found ~10k cycles sufficient; the "
                    "scaled machine settles faster).\n");
    }
    return 0;
}

int
main(int argc, char **argv)
{
    ebm::applyJobsFlag(argc, argv);
    return runGuarded("sec6d_sensitivity", run);
}
