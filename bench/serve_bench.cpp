/**
 * @file
 * Serving-path benchmark for the advisor daemon: a synthetic traffic
 * replay of thousands of mixed queries (warm ADVISE in both argument
 * orders, PAIR rankings, STATS, PING, POLL, plus one deliberately
 * cold pair hammered concurrently to exercise single-flight miss
 * dispatch) against a live AdvisorServer over its Unix socket.
 *
 * Reports client-observed round-trip percentiles (p50/p99) split into
 * warm-hit and overall, total QPS, and the daemon's own STATS line,
 * then writes the numbers to BENCH_serve.json-shaped output. The
 * acceptance bar: warm-hit p99 < 1 ms at thousands of queries.
 *
 * Usage: serve_bench [--queries N] [--threads T] [--out FILE]
 *                    [--jobs N]
 *        (defaults: 2000 queries, 4 client threads, ./BENCH_serve.json)
 *
 * Not a paper figure; the serving daemon is infrastructure on top of
 * the reproduced results, not part of the reproduction itself.
 */
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/config.hpp"
#include "common/job_pool.hpp"
#include "common/log.hpp"
#include "harness/advisor_service.hpp"
#include "harness/exhaustive.hpp"
#include "harness/profile_db.hpp"
#include "harness/runner.hpp"
#include "harness/warm_state.hpp"
#include "workload/app_catalog.hpp"
#include "workload/workload_suite.hpp"

namespace {

using namespace ebm;
using Clock = std::chrono::steady_clock;

/** The fast-test machine shape (bench/sweep_end_to_end.cpp). */
GpuConfig
benchConfig()
{
    GpuConfig cfg;
    cfg.numCores = 4;
    cfg.numPartitions = 2;
    cfg.numApps = 2;
    cfg.maxWarpsPerCore = 16;
    cfg.schedulersPerCore = 2;
    cfg.l1 = {8 * 1024, 4, 128, 16, 4};
    cfg.l2Slice = {64 * 1024, 8, 128, 32, 4};
    cfg.banksPerChannel = 8;
    cfg.bankGroups = 4;
    cfg.frfcfsQueueDepth = 32;
    return cfg;
}

RunOptions
benchOptions()
{
    RunOptions opts;
    opts.warmupCycles = 1000;
    opts.measureCycles = 6000;
    opts.windowCycles = 500;
    return opts;
}

/** Reduced ladder: 16 combos/pair keeps the prefill to seconds. */
const std::vector<std::uint32_t> kLadder = {1, 2, 4, 8};

double
percentileUs(std::vector<double> &samples, double q)
{
    if (samples.empty())
        return 0.0;
    std::sort(samples.begin(), samples.end());
    const auto idx = static_cast<std::size_t>(
        q * static_cast<double>(samples.size() - 1));
    return samples[idx];
}

/** One replay client: its own connection, its own latency log. */
struct ClientLog
{
    std::vector<double> warmUs; ///< Warm ADVISE round trips.
    std::vector<double> allUs;  ///< Every round trip.
    std::uint64_t errors = 0;
};

} // namespace

int
main(int argc, char **argv)
{
    return runGuarded("serve_bench", [&] {
        std::size_t total_queries = 2000;
        unsigned threads = 4;
        std::string out_path = "BENCH_serve.json";
        applyJobsFlag(argc, argv);
        for (int i = 1; i < argc; ++i) {
            const std::string arg = argv[i];
            std::uint64_t v = 0;
            if (arg == "--queries" && i + 1 < argc &&
                parseUint(argv[i + 1], v) && v > 0) {
                total_queries = static_cast<std::size_t>(v);
                ++i;
            } else if (arg == "--threads" && i + 1 < argc &&
                       parseUint(argv[i + 1], v) && v > 0 &&
                       v <= 64) {
                threads = static_cast<unsigned>(v);
                ++i;
            } else if (arg == "--out" && i + 1 < argc) {
                out_path = argv[++i];
            } else if ((arg == "--jobs" || arg == "-j") &&
                       i + 1 < argc) {
                ++i; // consumed by applyJobsFlag above
            } else if (arg.rfind("--jobs=", 0) == 0) {
                // consumed by applyJobsFlag above
            } else {
                fatal(Error{Errc::InvalidArgument,
                            "unknown argument '" + arg + "'"});
            }
        }

        char dir_template[] = "/tmp/ebm_serve_bench.XXXXXX";
        const char *dir = ::mkdtemp(dir_template);
        if (dir == nullptr) {
            fatal(Error{Errc::CacheIo,
                        "mkdtemp failed for the bench sandbox"});
        }
        const std::string cache_path = std::string(dir) + "/store";
        const std::string socket_path = std::string(dir) + "/sock";

        // --- Prefill: warm pairs land in the store before serving ---
        const std::vector<std::string> warm_apps = {"BFS", "FFT", "BLK",
                                                    "TRD"};
        const GpuConfig cfg = benchConfig();
        const RunOptions opts = benchOptions();
        Runner runner(cfg, opts);
        std::vector<std::string> warm_pairs;
        {
            DiskCache prefill_cache(cache_path);
            ProfileDb profiles(runner, prefill_cache);
            Exhaustive exhaustive(runner, prefill_cache);
            const auto t0 = Clock::now();
            for (const std::string &name : warm_apps)
                profiles.profile(findApp(name));
            for (std::size_t i = 0; i < warm_apps.size(); ++i) {
                for (std::size_t j = i + 1; j < warm_apps.size();
                     ++j) {
                    // The daemon canonicalizes pairs by sorting the
                    // names; prefill under the same keys or a "warm"
                    // pair is cold at serve time.
                    std::string lo = warm_apps[i];
                    std::string hi = warm_apps[j];
                    if (hi < lo)
                        std::swap(lo, hi);
                    const Workload wl = makePair(lo, hi);
                    exhaustive.sweep(wl, kLadder);
                    warm_pairs.push_back(wl.name);
                }
            }
            const std::chrono::duration<double> dt =
                Clock::now() - t0;
            std::printf("prefill: %zu pairs in %.1f s (%s)\n",
                        warm_pairs.size(), dt.count(),
                        exhaustive.status().summaryLine().c_str());
        }

        // --- Serve: fresh cache instance, as a restarted daemon ---
        DiskCache cache(cache_path);
        AdvisorService::Options svc_opts{};
        svc_opts.levels = kLadder;
        AdvisorService service(runner, cache, svc_opts);
        AdvisorServer::Options srv_opts;
        srv_opts.socketPath = socket_path;
        AdvisorServer server(service, srv_opts);
        const Status started = server.start();
        if (!started.ok())
            fatal(started.error());

        // --- Replay: mixed query schedule, one connection/thread ---
        const std::size_t per_thread = total_queries / threads;
        std::vector<ClientLog> logs(threads);
        std::vector<std::thread> clients;
        const auto t_replay = Clock::now();
        for (unsigned t = 0; t < threads; ++t) {
            clients.emplace_back([&, t] {
                ClientLog &log = logs[t];
                auto conn = netConnectUnix(socket_path);
                if (!conn.ok()) {
                    ++log.errors;
                    return;
                }
                const int fd = conn.value().get();
                servefmt::FrameReader reader;
                std::string reply;
                const auto roundtrip =
                    [&](const std::string &request) -> bool {
                    const auto q0 = Clock::now();
                    if (!servefmt::sendFrame(fd, request) ||
                        !servefmt::recvFrame(fd, reader, reply)) {
                        ++log.errors;
                        return false;
                    }
                    const std::chrono::duration<double, std::micro>
                        dq = Clock::now() - q0;
                    log.allUs.push_back(dq.count());
                    return true;
                };
                for (std::size_t q = 0; q < per_thread; ++q) {
                    const std::size_t kind = q % 10;
                    const std::string &pair =
                        warm_pairs[(q * threads + t) %
                                   warm_pairs.size()];
                    const std::size_t us = pair.find('_');
                    const std::string a = pair.substr(0, us);
                    const std::string b = pair.substr(us + 1);
                    bool warm_advise = false;
                    std::string request;
                    switch (kind) {
                      case 7:
                        request = "STATS";
                        break;
                      case 8:
                        request = "PING";
                        break;
                      case 9:
                        request = "PAIR " + warm_apps[0] + " " +
                                  warm_apps[1] + " " + warm_apps[2];
                        break;
                      default:
                        // Both argument orders hit one canonical key.
                        request = (q % 2 == 0)
                                      ? "ADVISE " + a + " " + b
                                      : "ADVISE " + b + " " + a;
                        warm_advise = true;
                        break;
                    }
                    if (!roundtrip(request))
                        return;
                    if (warm_advise) {
                        if (reply.rfind("OK", 0) != 0)
                            ++log.errors;
                        else
                            log.warmUs.push_back(log.allUs.back());
                    }
                }
            });
        }
        for (std::thread &c : clients)
            c.join();
        const std::chrono::duration<double> replay_s =
            Clock::now() - t_replay;

        // --- Cold pair: every thread hammers it; one fill expected ---
        const std::string cold_req = "ADVISE JPEG LUD WAIT 0";
        std::atomic<std::uint64_t> cold_pending{0};
        std::vector<std::thread> cold_clients;
        for (unsigned t = 0; t < threads; ++t) {
            cold_clients.emplace_back([&] {
                auto conn = netConnectUnix(socket_path);
                if (!conn.ok())
                    return;
                servefmt::FrameReader reader;
                std::string reply;
                if (servefmt::sendFrame(conn.value().get(),
                                        cold_req) &&
                    servefmt::recvFrame(conn.value().get(), reader,
                                        reply) &&
                    reply.rfind("PENDING", 0) == 0)
                    cold_pending.fetch_add(1);
            });
        }
        for (std::thread &c : cold_clients)
            c.join();
        service.drainFills();

        // --- Warm-checkpoint fill A/B: one cold what-if query with
        // the warm-state fork on, one with it off. Each fill sweeps
        // its own fresh shape, so the fork's win is intra-fill: the
        // warmup prefix is simulated once and every combination forks
        // from the capture instead of re-running it. Timed via a
        // blocking ADVISE so the round trip spans the whole fill. ---
        const auto timedColdFill = [&](const std::string &a,
                                       const std::string &b) {
            auto conn = netConnectUnix(socket_path);
            if (!conn.ok())
                return -1.0;
            servefmt::FrameReader reader;
            std::string reply;
            const std::string req =
                "ADVISE " + a + " " + b + " WAIT 590000";
            const auto q0 = Clock::now();
            if (!servefmt::sendFrame(conn.value().get(), req) ||
                !servefmt::recvFrame(conn.value().get(), reader,
                                     reply) ||
                reply.rfind("OK", 0) != 0)
                return -1.0;
            const std::chrono::duration<double> dq =
                Clock::now() - q0;
            return dq.count();
        };
        const bool snap_was = WarmStateCache::enabled();
        WarmStateCache::setEnabled(true);
        const double fill_warm_s = timedColdFill("SRAD", "BP");
        WarmStateCache::setEnabled(false);
        const double fill_cold_s = timedColdFill("LPS", "HS");
        WarmStateCache::setEnabled(snap_was);

        // --- Daemon-side stats + aggregation ---
        const AdvisorService::Stats s = service.stats();
        server.stop();

        std::vector<double> warm_us, all_us;
        std::uint64_t errors = 0;
        for (const ClientLog &log : logs) {
            warm_us.insert(warm_us.end(), log.warmUs.begin(),
                           log.warmUs.end());
            all_us.insert(all_us.end(), log.allUs.begin(),
                          log.allUs.end());
            errors += log.errors;
        }
        const double qps =
            replay_s.count() > 0
                ? static_cast<double>(all_us.size()) /
                      replay_s.count()
                : 0.0;
        const double warm_p50 = percentileUs(warm_us, 0.50);
        const double warm_p99 = percentileUs(warm_us, 0.99);
        const double all_p50 = percentileUs(all_us, 0.50);
        const double all_p99 = percentileUs(all_us, 0.99);

        std::printf(
            "replay: %zu queries, %u threads, %.2f s -> %.0f QPS\n"
            "latency (client RTT): warm-hit p50=%.1f us p99=%.1f us; "
            "all p50=%.1f us p99=%.1f us; errors=%llu\n"
            "cold single-flight: %llu PENDING replies, "
            "fills dispatched=%llu completed=%llu\n"
            "daemon: requests=%llu hits=%llu misses=%llu "
            "joined=%llu p99=%.1f us\n",
            all_us.size(), threads, replay_s.count(), qps, warm_p50,
            warm_p99, all_p50, all_p99,
            static_cast<unsigned long long>(errors),
            static_cast<unsigned long long>(cold_pending.load()),
            static_cast<unsigned long long>(s.fillsDispatched),
            static_cast<unsigned long long>(s.fillsCompleted),
            static_cast<unsigned long long>(s.requests),
            static_cast<unsigned long long>(s.hits),
            static_cast<unsigned long long>(s.misses),
            static_cast<unsigned long long>(s.joined), s.p99us);

        std::ofstream out(out_path);
        out << "{\n"
            << "  \"description\": \"Advisor daemon traffic replay "
               "(bench/serve_bench.cpp): mixed ADVISE/PAIR/STATS/PING "
               "queries from concurrent clients over the Unix socket "
               "against a prefilled store, plus one cold pair "
               "hammered by every client to exercise single-flight "
               "miss dispatch. Latencies are client-observed round "
               "trips.\",\n"
            << "  \"command\": \"./build/bench/serve_bench --queries "
            << total_queries << " --threads " << threads << "\",\n"
            << "  \"queries\": " << all_us.size() << ",\n"
            << "  \"threads\": " << threads << ",\n"
            << "  \"replay_wall_s\": " << replay_s.count() << ",\n"
            << "  \"qps\": " << qps << ",\n"
            << "  \"warm_hit_p50_us\": " << warm_p50 << ",\n"
            << "  \"warm_hit_p99_us\": " << warm_p99 << ",\n"
            << "  \"all_p50_us\": " << all_p50 << ",\n"
            << "  \"all_p99_us\": " << all_p99 << ",\n"
            << "  \"client_errors\": " << errors << ",\n"
            << "  \"cold_single_flight\": {\n"
            << "    \"pending_replies\": " << cold_pending.load()
            << ",\n"
            << "    \"fills_dispatched\": " << s.fillsDispatched
            << ",\n"
            << "    \"fills_completed\": " << s.fillsCompleted << "\n"
            << "  },\n"
            << "  \"cold_query_fill\": {\n"
            << "    \"description\": \"blocking cold ADVISE round "
               "trip spanning the whole fill: warm-checkpoint "
               "forking on (SRAD_BP) vs off / cold boot (LPS_HS)\",\n"
            << "    \"warm_checkpoint_s\": " << fill_warm_s << ",\n"
            << "    \"cold_boot_s\": " << fill_cold_s << ",\n"
            << "    \"snapshot_hits\": " << s.snapshotHits << ",\n"
            << "    \"snapshot_misses\": " << s.snapshotMisses << "\n"
            << "  },\n"
            << "  \"daemon_stats\": { \"requests\": " << s.requests
            << ", \"hits\": " << s.hits << ", \"misses\": "
            << s.misses << ", \"joined\": " << s.joined
            << ", \"server_p50_us\": " << s.p50us
            << ", \"server_p99_us\": " << s.p99us << " }\n"
            << "}\n";
        std::printf("wrote %s\n", out_path.c_str());

        // Acceptance bar: warm hits answered from the loaded store in
        // well under a millisecond at the 99th percentile.
        if (warm_p99 >= 1000.0) {
            std::fprintf(stderr,
                         "FAIL: warm-hit p99 %.1f us >= 1 ms\n",
                         warm_p99);
            return 1;
        }
        if (errors != 0) {
            std::fprintf(stderr, "FAIL: %llu client errors\n",
                         static_cast<unsigned long long>(errors));
            return 1;
        }
        return 0;
    });
}
