/**
 * @file
 * Figure 9: weighted speedup of ++DynCTA, Mod+Bypass, PBS-WS,
 * PBS-WS (Offline), BF-WS, and optWS on the 10 representative
 * workloads plus Gmean, normalized to ++bestTLP.
 */
#include <cstdio>

#include "scheme_eval.hpp"

int
run()
{
    ebm::Experiment exp(2);
    ebm::bench::runComparison(
        exp, ebm::bench::Report::WS,
        "Figure 9: Weighted Speedup (normalized to ++bestTLP)");
    std::printf(
        "\nPaper shape: PBS-WS well above ++bestTLP (1.0), above "
        "++DynCTA and Mod+Bypass, close to BF-WS and within a few "
        "percent of optWS.\n");
    return 0;
}

int
main(int argc, char **argv)
{
    ebm::applyJobsFlag(argc, argv);
    return ebm::runGuarded("fig09_ws_comparison", run);
}
