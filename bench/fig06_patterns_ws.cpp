/**
 * @file
 * Figure 6: the patterns PBS-WS exploits, illustrated on BLK_TRD.
 * (a) EB-WS vs TLP-BLK for iso-TLP-TRD curves: the sharp drop
 *     (inflection) sits at the same TLP-BLK level on every curve.
 * (b) per-app EB breakdown along the TLP-BLK axis.
 * Also validates the pattern on every representative workload: the
 * critical app's inflection level must be (near-)invariant to the
 * co-runner's TLP.
 */
#include <cstdio>

#include "common/job_pool.hpp"
#include "common/log.hpp"
#include "harness/experiment.hpp"
#include "metrics/metrics.hpp"

using namespace ebm;

namespace {

/**
 * Knee along @p axis_app's axis with the co-runner pinned: the level
 * with the highest EB-WS (the pre-drop point PBS fixes the critical
 * app at).
 */
std::uint32_t
inflectionLevel(const ComboTable &table, std::uint32_t co_tlp,
                AppId axis_app)
{
    std::uint32_t knee = table.levels.front();
    double best = -1.0;
    for (std::uint32_t level : table.levels) {
        TlpCombo combo(2, co_tlp);
        combo[axis_app] = level;
        const double v = ebWeightedSpeedup(table.at(combo).ebs());
        if (v > best) {
            best = v;
            knee = level;
        }
    }
    return knee;
}

} // namespace

int
run()
{
    Experiment exp(2);
    const Workload wl = makePair("BLK", "TRD");
    const ComboTable table = exp.exhaustive().sweep(wl);

    std::printf("Figure 6(a): EB-WS vs TLP-BLK (one column per "
                "iso-TLP-TRD curve)\n\n");
    std::printf("%-8s", "TLP-BLK");
    for (std::uint32_t t1 : table.levels)
        std::printf("  TRD=%-4u", t1);
    std::printf("\n");
    for (std::uint32_t t0 : table.levels) {
        std::printf("%-8u", t0);
        for (std::uint32_t t1 : table.levels) {
            std::printf("  %-8.3f",
                        ebWeightedSpeedup(table.at({t0, t1}).ebs()));
        }
        std::printf("\n");
    }

    std::printf("\nFigure 6(b): per-app EB along TLP-BLK "
                "(TLP-TRD=4)\n\n");
    std::printf("%-8s %-8s %-8s\n", "TLP-BLK", "EB-BLK", "EB-TRD");
    for (std::uint32_t t0 : table.levels) {
        const auto ebs = table.at({t0, 4}).ebs();
        std::printf("%-8u %-8.3f %-8.3f\n", t0, ebs[0], ebs[1]);
    }

    std::printf("\nPattern validation: critical-axis inflection level "
                "per iso-co-runner curve\n\n");
    std::printf("%-10s %-10s %s\n", "Workload", "critical",
                "knee at co-runner TLP = 2 / 4 / 8");
    for (const Workload &w : representativeWorkloads()) {
        const ComboTable t = exp.exhaustive().sweep(w);
        // Determine the critical app: larger EB-WS swing on its axis.
        double swing[2] = {0, 0};
        for (AppId a = 0; a < 2; ++a) {
            double lo = 1e300, hi = -1e300;
            for (std::uint32_t level : t.levels) {
                TlpCombo combo(2, 4u);
                combo[a] = level;
                const double v =
                    ebWeightedSpeedup(t.at(combo).ebs());
                lo = std::min(lo, v);
                hi = std::max(hi, v);
            }
            swing[a] = hi - lo;
        }
        const AppId crit = swing[0] >= swing[1] ? 0 : 1;
        std::printf("%-10s %-10s %u / %u / %u\n", w.name.c_str(),
                    w.appNames[crit].c_str(),
                    inflectionLevel(t, 2, crit),
                    inflectionLevel(t, 4, crit),
                    inflectionLevel(t, 8, crit));
    }

    std::printf("\nPaper shape: the knee of the critical app stays at "
                "the same (or adjacent) TLP level regardless of the "
                "co-runner's TLP — the 'pattern' PBS relies on.\n");
    std::printf("\n%s\n",
                exp.exhaustive().status().summaryLine().c_str());
    return 0;
}

int
main(int argc, char **argv)
{
    ebm::applyJobsFlag(argc, argv);
    return runGuarded("fig06_patterns_ws", run);
}
