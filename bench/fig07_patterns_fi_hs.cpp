/**
 * @file
 * Figure 7: the PBS-FI and PBS-HS views of BLK_TRD.
 * (a/b) EB-difference (scaled) along each TLP axis — PBS-FI hunts the
 *       zero crossing of the scaled difference.
 * (c/d) EB-HS along each TLP axis — PBS-HS hunts the pre-drop knee.
 * Printed with exact (alone-profile) scaling and with group scaling to
 * show why approximate scaling can shift the chosen combination.
 */
#include <cmath>
#include <cstdio>

#include "common/job_pool.hpp"
#include "common/log.hpp"
#include "harness/experiment.hpp"
#include "metrics/metrics.hpp"
#include "workload/app_catalog.hpp"

using namespace ebm;

int
run()
{
    Experiment exp(2);
    const Workload wl = makePair("BLK", "TRD");
    const ComboTable table = exp.exhaustive().sweep(wl);

    // Exact scaling: alone EB at bestTLP; group scaling: the group
    // mean (Table IV's user-supplied option).
    const std::vector<double> exact = exp.aloneEbs(wl);
    exp.profiles().assignGroups(appCatalog());
    const std::vector<double> group = {
        exp.profiles().groupScale("BLK"),
        exp.profiles().groupScale("TRD")};

    auto diff = [](const std::vector<double> &ebs,
                   const std::vector<double> &scale) {
        return ebs[0] / scale[0] - ebs[1] / scale[1];
    };

    std::printf("Figure 7(a): scaled EB-difference vs TLP-BLK "
                "(iso-TLP-TRD curves, exact scaling)\n\n");
    std::printf("%-8s", "TLP-BLK");
    for (std::uint32_t t1 : table.levels)
        std::printf("  TRD=%-5u", t1);
    std::printf("\n");
    for (std::uint32_t t0 : table.levels) {
        std::printf("%-8u", t0);
        for (std::uint32_t t1 : table.levels) {
            std::printf("  %+-8.3f",
                        diff(table.at({t0, t1}).ebs(), exact));
        }
        std::printf("\n");
    }

    std::printf("\nFigure 7(b): same data along TLP-TRD "
                "(TLP-BLK fixed), exact vs group scaling\n\n");
    std::printf("%-8s %-12s %-12s\n", "TLP-TRD", "diff(exact)",
                "diff(group)");
    for (std::uint32_t t1 : table.levels) {
        const auto ebs = table.at({2, t1}).ebs();
        std::printf("%-8u %+-12.3f %+-12.3f\n", t1, diff(ebs, exact),
                    diff(ebs, group));
    }

    std::printf("\nFigure 7(c): EB-HS vs TLP-BLK (iso-TLP-TRD "
                "curves, exact scaling)\n\n");
    std::printf("%-8s", "TLP-BLK");
    for (std::uint32_t t1 : table.levels)
        std::printf("  TRD=%-4u", t1);
    std::printf("\n");
    for (std::uint32_t t0 : table.levels) {
        std::printf("%-8u", t0);
        for (std::uint32_t t1 : table.levels) {
            std::printf("  %-8.3f",
                        ebHarmonicSpeedup(table.at({t0, t1}).ebs(),
                                          exact));
        }
        std::printf("\n");
    }

    std::printf("\nFigure 7(d): EB-HS along TLP-TRD (TLP-BLK "
                "fixed at its knee)\n\n");
    std::printf("%-8s %-8s\n", "TLP-TRD", "EB-HS");
    for (std::uint32_t t1 : table.levels) {
        std::printf("%-8u %-8.3f\n", t1,
                    ebHarmonicSpeedup(table.at({2, t1}).ebs(), exact));
    }

    // Chosen combos under the three searches.
    std::uint32_t samples = 0;
    const TlpCombo pbs_fi_exact = exp.pbsOffline(
        table, EbObjective::FI, ScalingMode::UserGroup, exact,
        &samples);
    const TlpCombo pbs_fi_group = exp.pbsOffline(
        table, EbObjective::FI, ScalingMode::UserGroup, group,
        &samples);
    const TlpCombo pbs_hs_exact = exp.pbsOffline(
        table, EbObjective::HS, ScalingMode::UserGroup, exact,
        &samples);
    const std::vector<double> alone = exp.aloneIpcs(wl);
    const TlpCombo opt_fi =
        Exhaustive::argmax(table, OptTarget::SdFI, alone);
    const TlpCombo opt_hs =
        Exhaustive::argmax(table, OptTarget::SdHS, alone);

    std::printf("\nChosen combinations:\n");
    std::printf("  PBS-FI (exact scaling): (%u,%u)   optFI: (%u,%u)\n",
                pbs_fi_exact[0], pbs_fi_exact[1], opt_fi[0],
                opt_fi[1]);
    std::printf("  PBS-FI (group scaling): (%u,%u)\n",
                pbs_fi_group[0], pbs_fi_group[1]);
    std::printf("  PBS-HS (exact scaling): (%u,%u)   optHS: (%u,%u)\n",
                pbs_hs_exact[0], pbs_hs_exact[1], opt_hs[0],
                opt_hs[1]);

    std::printf("\nPaper shape: the FI search stops where the scaled "
                "EB-difference is nearest zero; exact scaling lands "
                "closer to optFI than approximate scaling.\n");
    std::printf("\n%s\n",
                exp.exhaustive().status().summaryLine().c_str());
    return 0;
}

int
main(int argc, char **argv)
{
    ebm::applyJobsFlag(argc, argv);
    return runGuarded("fig07_patterns_fi_hs", run);
}
