/**
 * @file
 * Shared evaluation loop for the scheme-comparison figures (9, 10 and
 * the Section VI-C HS study): runs every scheme on the representative
 * workloads and returns per-workload SD-based scores normalized to
 * ++bestTLP.
 */
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/job_pool.hpp"
#include "common/log.hpp"
#include "core/dyncta.hpp"
#include "core/mod_bypass.hpp"
#include "core/pbs_policy.hpp"
#include "harness/experiment.hpp"
#include "harness/table.hpp"
#include "workload/app_catalog.hpp"
#include "workload/workload_suite.hpp"

namespace ebm::bench {

/** Which SD metric the figure reports. */
enum class Report { WS, FI, HS };

inline double
metricOf(Report report, const SdScores &s)
{
    switch (report) {
      case Report::WS:
        return s.ws;
      case Report::FI:
        return s.fi;
      case Report::HS:
        return s.hs;
    }
    return 0.0;
}

inline OptTarget
sdTarget(Report report)
{
    switch (report) {
      case Report::WS:
        return OptTarget::SdWS;
      case Report::FI:
        return OptTarget::SdFI;
      case Report::HS:
        return OptTarget::SdHS;
    }
    return OptTarget::SdWS;
}

inline OptTarget
ebTarget(Report report)
{
    switch (report) {
      case Report::WS:
        return OptTarget::EbWS;
      case Report::FI:
        return OptTarget::EbFI;
      case Report::HS:
        return OptTarget::EbHS;
    }
    return OptTarget::EbWS;
}

inline EbObjective
objectiveOf(Report report)
{
    switch (report) {
      case Report::WS:
        return EbObjective::WS;
      case Report::FI:
        return EbObjective::FI;
      case Report::HS:
        return EbObjective::HS;
    }
    return EbObjective::WS;
}

/**
 * Evaluate all schemes of one figure and print the normalized table.
 *
 * Schemes, as in the paper's Figs. 9/10: ++DynCTA, Mod+Bypass, PBS
 * (online), PBS (Offline), BF (EB brute force), and opt (SD brute
 * force); all normalized to ++bestTLP.
 */
inline void
runComparison(Experiment &exp, Report report, const std::string &title)
{
    const std::string suffix = report == Report::WS   ? "WS"
                               : report == Report::FI ? "FI"
                                                      : "HS";
    std::printf("%s\n\n", title.c_str());

    const std::vector<std::string> scheme_names = {
        "++DynCTA",          "Mod+Bypass",
        "PBS-" + suffix,     "PBS-" + suffix + " (Offline)",
        "BF-" + suffix,      "opt" + suffix};

    std::vector<std::string> headers = {"Workload"};
    headers.insert(headers.end(), scheme_names.begin(),
                   scheme_names.end());
    TextTable out(std::move(headers));

    std::map<std::string, std::vector<double>> norm_values;

    for (const Workload &wl : representativeWorkloads()) {
        const std::vector<AppProfile> apps = resolveApps(wl);
        const std::vector<double> alone = exp.aloneIpcs(wl);
        const std::vector<double> alone_ebs = exp.aloneEbs(wl);
        const ComboTable table = exp.exhaustive().sweep(wl);

        // Baseline: ++bestTLP.
        const TlpCombo best = exp.bestTlpCombo(wl);
        const double base = metricOf(
            report, exp.score(wl, table.at(best)));

        // Scaling for EB-based fairness/harmonic objectives: the
        // sampled-alone approximation (the paper's dynamic variant).
        const bool scaled = report != Report::WS;

        std::vector<double> row_values;

        // ++DynCTA.
        {
            DynCta policy;
            row_values.push_back(metricOf(
                report,
                exp.score(wl, exp.onlineRunner().run(apps, policy))));
        }
        // Mod+Bypass.
        {
            ModBypass policy;
            row_values.push_back(metricOf(
                report,
                exp.score(wl, exp.onlineRunner().run(apps, policy))));
        }
        // PBS (online). Ratio objectives (FI/HS) average multiple
        // windows per probe: single-window EB ratios are too noisy
        // to search on.
        {
            PbsPolicy::Params params;
            params.objective = objectiveOf(report);
            params.scaling = scaled ? ScalingMode::SampledAlone
                                    : ScalingMode::None;
            params.settleWindows = 1;
            params.measureWindows = scaled ? 3 : 1;
            PbsPolicy policy(params);
            row_values.push_back(metricOf(
                report,
                exp.score(wl, exp.onlineRunner().run(apps, policy))));
        }
        // PBS (Offline).
        {
            const TlpCombo combo = exp.pbsOffline(
                table, objectiveOf(report),
                scaled ? ScalingMode::UserGroup : ScalingMode::None,
                scaled ? alone_ebs : std::vector<double>{});
            row_values.push_back(metricOf(
                report, exp.score(wl, table.at(combo))));
        }
        // BF (EB-based brute force).
        {
            const TlpCombo combo = Exhaustive::argmax(
                table, ebTarget(report), {},
                scaled ? alone_ebs : std::vector<double>{});
            row_values.push_back(metricOf(
                report, exp.score(wl, table.at(combo))));
        }
        // opt (SD-based brute force).
        {
            const TlpCombo combo =
                Exhaustive::argmax(table, sdTarget(report), alone);
            row_values.push_back(metricOf(
                report, exp.score(wl, table.at(combo))));
        }

        std::vector<std::string> row = {wl.name};
        for (std::size_t s = 0; s < scheme_names.size(); ++s) {
            const double norm = row_values[s] / base;
            norm_values[scheme_names[s]].push_back(norm);
            row.push_back(TextTable::num(norm));
        }
        out.addRow(std::move(row));
    }

    std::vector<std::string> gmean_row = {"Gmean"};
    for (const std::string &name : scheme_names)
        gmean_row.push_back(TextTable::num(gmean(norm_values[name])));
    out.addRow(std::move(gmean_row));
    out.print();
    std::printf("\n%s [jobs=%u]\n",
                exp.exhaustive().status().summaryLine().c_str(),
                exp.jobs());
    std::printf("%s\n", exp.cache().persistSummaryLine().c_str());
}

} // namespace ebm::bench
