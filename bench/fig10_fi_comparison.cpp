/**
 * @file
 * Figure 10: fairness index of ++DynCTA, Mod+Bypass, PBS-FI,
 * PBS-FI (Offline), BF-FI, and optFI on the 10 representative
 * workloads plus Gmean, normalized to ++bestTLP.
 */
#include <cstdio>

#include "scheme_eval.hpp"

int
run()
{
    ebm::Experiment exp(2);
    ebm::bench::runComparison(
        exp, ebm::bench::Report::FI,
        "Figure 10: Fairness Index (normalized to ++bestTLP)");
    std::printf(
        "\nPaper shape: PBS-FI clearly above ++bestTLP, ++DynCTA and "
        "Mod+Bypass; BF-FI/optFI bound it from above, with runtime "
        "adaptation sometimes letting PBS-FI beat its offline "
        "variant.\n");
    return 0;
}

int
main(int argc, char **argv)
{
    ebm::applyJobsFlag(argc, argv);
    return ebm::runGuarded("fig10_fi_comparison", run);
}
