/**
 * @file
 * End-to-end sweep-engine benchmark (google-benchmark): the wall
 * clock of a *cold* Figure-1-shaped exhaustive sweep (2 catalog apps,
 * the standard 8-level ladder, 64 combinations, empty disk cache) and
 * of a *warm* ProfileDb pass (every alone-run level already cached).
 *
 * The cold case is the harness's dominant workload and the target of
 * the reuse work: simulator pooling (BM_SweepEndToEnd/pool=1 vs 0),
 * shared trace artifacts, cost-ordered dispatch, and the sharded
 * cache all land here. Worker count follows EBM_JOBS, like every
 * sweep (the recorded BENCH_sweep.json procedure pins EBM_JOBS=8;
 * see EXPERIMENTS.md). Not a paper figure.
 */
#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>

#include "common/config.hpp"
#include "harness/disk_cache.hpp"
#include "harness/exhaustive.hpp"
#include "harness/gpu_pool.hpp"
#include "harness/profile_db.hpp"
#include "harness/runner.hpp"
#include "workload/app_catalog.hpp"
#include "workload/workload_suite.hpp"

namespace {

using namespace ebm;

/** The fast-test machine shape: big enough to exercise every
 * subsystem, small enough that a 64-combo cold sweep is seconds. */
GpuConfig
benchConfig()
{
    GpuConfig cfg;
    cfg.numCores = 4;
    cfg.numPartitions = 2;
    cfg.numApps = 2;
    cfg.maxWarpsPerCore = 16;
    cfg.schedulersPerCore = 2;
    cfg.l1 = {8 * 1024, 4, 128, 16, 4};
    cfg.l2Slice = {64 * 1024, 8, 128, 32, 4};
    cfg.banksPerChannel = 8;
    cfg.bankGroups = 4;
    cfg.frfcfsQueueDepth = 32;
    return cfg;
}

RunOptions
benchOptions()
{
    RunOptions opts;
    opts.warmupCycles = 1000;
    opts.measureCycles = 6000;
    opts.windowCycles = 500;
    return opts;
}

/**
 * One cold 64-combination sweep per iteration: fresh cache file,
 * fresh Exhaustive, the full standard ladder for BFS_FFT. range(0)
 * toggles the simulator pool so its contribution is visible in one
 * run of the binary.
 */
void
BM_SweepEndToEnd(benchmark::State &state)
{
    const bool pool_on = state.range(0) != 0;
    const bool pool_was = GpuPool::enabled();
    GpuPool::setEnabled(pool_on);

    const std::string path = "bench_sweep_cold.cache";
    Runner runner(benchConfig(), benchOptions());
    const Workload wl = makePair("BFS", "FFT");

    std::size_t simulated = 0;
    for (auto _ : state) {
        std::remove(path.c_str());
        DiskCache cache(path);
        Exhaustive ex(runner, cache);
        ex.sweep(wl);
        simulated += ex.status().simulated;
    }
    state.SetLabel(pool_on ? "pool=on" : "pool=off");
    state.SetItemsProcessed(
        static_cast<std::int64_t>(simulated));

    std::remove(path.c_str());
    GpuPool::setEnabled(pool_was);
}
BENCHMARK(BM_SweepEndToEnd)
    ->Arg(1)
    ->Arg(0)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->Iterations(1);

/**
 * The warm complement: every alone-run level of both apps is already
 * in the disk cache, so an iteration measures fingerprinting, cache
 * probing, and profile assembly — the path every bench binary takes
 * after its first run.
 */
void
BM_SweepWarmProfileDb(benchmark::State &state)
{
    const std::string path = "bench_sweep_warm.cache";
    std::remove(path.c_str());
    Runner runner(benchConfig(), benchOptions());
    {
        DiskCache warmup(path);
        ProfileDb db(runner, warmup);
        db.profile(findApp("BFS"));
        db.profile(findApp("FFT"));
    }

    DiskCache cache(path);
    for (auto _ : state) {
        ProfileDb db(runner, cache);
        benchmark::DoNotOptimize(db.profile(findApp("BFS")).bestTlp);
        benchmark::DoNotOptimize(db.profile(findApp("FFT")).bestTlp);
    }
    if (cache.misses() != 0)
        state.SkipWithError("warm pass missed the cache");
    std::remove(path.c_str());
}
BENCHMARK(BM_SweepWarmProfileDb)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
