/**
 * @file
 * End-to-end sweep-engine benchmark (google-benchmark): the wall
 * clock of a *cold* Figure-1-shaped exhaustive sweep (2 catalog apps,
 * the standard 8-level ladder, 64 combinations, empty disk cache) and
 * of a *warm* ProfileDb pass (every alone-run level already cached).
 *
 * The cold case is the harness's dominant workload and the target of
 * the reuse work: simulator pooling (BM_SweepEndToEnd/pool=1 vs 0),
 * shared trace artifacts, cost-ordered dispatch, and the sharded
 * cache all land here. Worker count follows EBM_JOBS, like every
 * sweep (the recorded BENCH_sweep.json procedure pins EBM_JOBS=8;
 * see EXPERIMENTS.md). Not a paper figure.
 */
#include <benchmark/benchmark.h>

#include <dirent.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "harness/coordinator.hpp"
#include "harness/disk_cache.hpp"
#include "harness/exhaustive.hpp"
#include "harness/gpu_pool.hpp"
#include "harness/profile_db.hpp"
#include "harness/runner.hpp"
#include "harness/sweep_supervisor.hpp"
#include "harness/warm_state.hpp"
#include "workload/app_catalog.hpp"
#include "workload/workload_suite.hpp"

namespace {

using namespace ebm;

/** The fast-test machine shape: big enough to exercise every
 * subsystem, small enough that a 64-combo cold sweep is seconds. */
GpuConfig
benchConfig()
{
    GpuConfig cfg;
    cfg.numCores = 4;
    cfg.numPartitions = 2;
    cfg.numApps = 2;
    cfg.maxWarpsPerCore = 16;
    cfg.schedulersPerCore = 2;
    cfg.l1 = {8 * 1024, 4, 128, 16, 4};
    cfg.l2Slice = {64 * 1024, 8, 128, 32, 4};
    cfg.banksPerChannel = 8;
    cfg.bankGroups = 4;
    cfg.frfcfsQueueDepth = 32;
    return cfg;
}

RunOptions
benchOptions()
{
    RunOptions opts;
    opts.warmupCycles = 1000;
    opts.measureCycles = 6000;
    opts.windowCycles = 500;
    return opts;
}

/**
 * One cold 64-combination sweep per iteration: fresh cache file,
 * fresh Exhaustive, the full standard ladder for BFS_FFT. range(0)
 * toggles the simulator pool so its contribution is visible in one
 * run of the binary.
 */
void
BM_SweepEndToEnd(benchmark::State &state)
{
    const bool pool_on = state.range(0) != 0;
    const bool pool_was = GpuPool::enabled();
    GpuPool::setEnabled(pool_on);

    const std::string path = "bench_sweep_cold.cache";
    Runner runner(benchConfig(), benchOptions());
    const Workload wl = makePair("BFS", "FFT");

    std::size_t simulated = 0;
    std::uint64_t bytes_written = 0;
    std::uint64_t batches = 0;
    std::uint64_t appended = 0;
    for (auto _ : state) {
        std::remove(path.c_str());
        DiskCache cache(path);
        Exhaustive ex(runner, cache);
        ex.sweep(wl);
        simulated += ex.status().simulated;
        bytes_written += cache.bytesWritten();
        batches += cache.appendBatches();
        appended += cache.entriesAppended();
    }
    state.SetLabel(pool_on ? "pool=on" : "pool=off");
    state.SetItemsProcessed(
        static_cast<std::int64_t>(simulated));
    // Persist amplification: append-only v3 should write O(new
    // entries) bytes, a fraction of the v2 rewrite-per-burst cost.
    state.counters["persist_bytes"] = static_cast<double>(bytes_written);
    state.counters["append_batches"] = static_cast<double>(batches);
    if (appended > 0) {
        state.counters["bytes_per_entry"] =
            static_cast<double>(bytes_written) /
            static_cast<double>(appended);
    }

    std::remove(path.c_str());
    GpuPool::setEnabled(pool_was);
}
BENCHMARK(BM_SweepEndToEnd)
    ->Arg(1)
    ->Arg(0)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->Iterations(1);

/**
 * Warm-state forking on a warmup-heavy sweep: the same cold 64-combo
 * fig01-shaped sweep as BM_SweepEndToEnd, but with a 12000-cycle
 * warmup against a 6000-cycle measurement, so the shared prefix
 * dominates. range(0) toggles EBM_SNAPSHOT: fork=off re-simulates the
 * prefix 64 times (~64*(W+M) cycles of work); fork=on simulates it
 * once and forks every combination from the capture (~W + 64*M).
 * With W=2M the ideal ratio is ~3x; the recorded BENCH_sweep.json
 * procedure (interleaved A/B, EXPERIMENTS.md) pins the achieved
 * median. The standard sweep options (W=1000, M=6000) cap the ratio
 * near 1.17x, which is why this benchmark carries its own options.
 */
void
BM_SweepSnapshot(benchmark::State &state)
{
    const bool fork_on = state.range(0) != 0;
    const bool snap_was = WarmStateCache::enabled();
    WarmStateCache::setEnabled(fork_on);
    WarmStateCache::instance().clear();

    RunOptions opts = benchOptions();
    opts.warmupCycles = 12000;
    opts.measureCycles = 6000;
    opts.windowCycles = 500;

    const std::string path = "bench_sweep_snap.cache";
    Runner runner(benchConfig(), opts);
    const Workload wl = makePair("BFS", "FFT");

    std::size_t simulated = 0;
    const WarmStateCache::Stats before =
        WarmStateCache::instance().stats();
    for (auto _ : state) {
        std::remove(path.c_str());
        WarmStateCache::instance().clear();
        DiskCache cache(path);
        Exhaustive ex(runner, cache);
        ex.sweep(wl);
        simulated += ex.status().simulated;
    }
    const WarmStateCache::Stats after =
        WarmStateCache::instance().stats();
    state.SetLabel(fork_on ? "fork=on" : "fork=off");
    state.SetItemsProcessed(static_cast<std::int64_t>(simulated));
    state.counters["snapshot_hits"] =
        static_cast<double>(after.hits - before.hits);
    state.counters["snapshot_misses"] =
        static_cast<double>(after.misses - before.misses);

    std::remove(path.c_str());
    WarmStateCache::instance().clear();
    WarmStateCache::setEnabled(snap_was);
}
BENCHMARK(BM_SweepSnapshot)
    ->Arg(1)
    ->Arg(0)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->Iterations(1);

/**
 * The warm complement: every alone-run level of both apps is already
 * in the disk cache, so an iteration measures fingerprinting, cache
 * probing, and profile assembly — the path every bench binary takes
 * after its first run.
 */
void
BM_SweepWarmProfileDb(benchmark::State &state)
{
    const std::string path = "bench_sweep_warm.cache";
    std::remove(path.c_str());
    Runner runner(benchConfig(), benchOptions());
    {
        DiskCache warmup(path);
        ProfileDb db(runner, warmup);
        db.profile(findApp("BFS"));
        db.profile(findApp("FFT"));
    }

    DiskCache cache(path);
    for (auto _ : state) {
        ProfileDb db(runner, cache);
        benchmark::DoNotOptimize(db.profile(findApp("BFS")).bestTlp);
        benchmark::DoNotOptimize(db.profile(findApp("FFT")).bestTlp);
    }
    if (cache.misses() != 0)
        state.SkipWithError("warm pass missed the cache");
    std::remove(path.c_str());
}
BENCHMARK(BM_SweepWarmProfileDb)->Unit(benchmark::kMillisecond);

/**
 * Opening an existing store: one DiskCache construction over a
 * 64-entry file per iteration — the mmap + single-pass frame scan
 * every bench binary pays on startup before its warm probes.
 */
void
BM_CacheOpen(benchmark::State &state)
{
    const std::string path = "bench_cache_open.cache";
    std::remove(path.c_str());
    Runner runner(benchConfig(), benchOptions());
    {
        DiskCache seed(path);
        Exhaustive ex(runner, seed);
        ex.sweep(makePair("BFS", "FFT"));
    }

    std::size_t loaded = 0;
    for (auto _ : state) {
        DiskCache cache(path);
        benchmark::DoNotOptimize(cache.size());
        loaded += cache.loadReport().entriesLoaded;
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(loaded));
    std::remove(path.c_str());
}
BENCHMARK(BM_CacheOpen)->Unit(benchmark::kMicrosecond);

/** Remove a claim directory and its markers (flat, no subdirs). */
void
removeClaimDir(const std::string &dir)
{
    if (DIR *d = ::opendir(dir.c_str())) {
        while (struct dirent *e = ::readdir(d)) {
            const std::string name = e->d_name;
            if (name != "." && name != "..")
                std::remove((dir + "/" + name).c_str());
        }
        ::closedir(d);
        ::rmdir(dir.c_str());
    }
}

/**
 * Cross-process cold sweep: range(0) cooperating processes share one
 * store under EBM_SWEEP_SHARD=1, splitting the 64 simulations via the
 * claim protocol instead of each running all of them. Wall clock is
 * the parent's fork-to-last-exit span; at N processes the aggregate
 * simulation work stays ~64 rows, so the span approaches the
 * single-process time divided by the usable core count (on a loaded
 * or single-core host, the win shows up as work-sharing: the per-
 * process simulated count drops to ~64/N).
 *
 * Forking happens before any worker threads exist in the parent
 * (children use EBM_JOBS=1), so no lock is ever cloned while held.
 */
void
BM_SweepMultiProcess(benchmark::State &state)
{
    const int procs = static_cast<int>(state.range(0));
    const std::string path = "bench_sweep_mp.cache";
    ::setenv("EBM_SWEEP_SHARD", "1", 1);

    for (auto _ : state) {
        state.PauseTiming();
        std::remove(path.c_str());
        removeClaimDir(path + ".claims");
        state.ResumeTiming();

        std::vector<pid_t> kids;
        for (int c = 0; c < procs; ++c) {
            const pid_t pid = ::fork();
            if (pid == 0) {
                {
                    Runner runner(benchConfig(), benchOptions());
                    DiskCache cache(path);
                    Exhaustive ex(runner, cache);
                    ex.setJobs(1);
                    ex.sweep(makePair("BFS", "FFT"));
                }
                ::_exit(0);
            }
            kids.push_back(pid);
        }
        for (const pid_t pid : kids) {
            int status = 0;
            ::waitpid(pid, &status, 0);
            if (!WIFEXITED(status) || WEXITSTATUS(status) != 0)
                state.SkipWithError("sharded child failed");
        }
    }
    state.SetLabel("procs=" + std::to_string(procs));

    ::unsetenv("EBM_SWEEP_SHARD");
    std::remove(path.c_str());
    removeClaimDir(path + ".claims");
}
BENCHMARK(BM_SweepMultiProcess)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->Iterations(1);

/**
 * The supervised variant of the cross-process cold fill: the same N
 * cooperating workers, but forked and reaped by SweepSupervisor with
 * heartbeat files armed. No faults are injected, so the delta against
 * BM_SweepMultiProcess/N is the pure supervision overhead — fork
 * bookkeeping, the poll/reap loop, and per-slot heartbeat touches —
 * that a crash-consistent sweep pays on the happy path.
 */
void
BM_SweepSupervised(benchmark::State &state)
{
    const std::uint32_t procs =
        static_cast<std::uint32_t>(state.range(0));
    const std::string path = "bench_sweep_sup.cache";
    ::setenv("EBM_SWEEP_SHARD", "1", 1);

    std::uint64_t restarts = 0;
    for (auto _ : state) {
        state.PauseTiming();
        std::remove(path.c_str());
        removeClaimDir(path + ".claims");
        removeClaimDir(path + ".hb");
        state.ResumeTiming();

        SweepSupervisor::Options o;
        o.workers = procs;
        o.heartbeatDir = path + ".hb";
        SweepSupervisor sup(o);
        const SweepSupervisor::Report report =
            sup.run([&path](std::uint32_t, std::uint32_t) {
                Runner runner(benchConfig(), benchOptions());
                DiskCache cache(path);
                Exhaustive ex(runner, cache);
                ex.setJobs(1);
                ex.sweep(makePair("BFS", "FFT"));
                return 0;
            });
        if (!report.allSucceeded)
            state.SkipWithError("supervised worker failed");
        restarts += report.totalRestarts;
    }
    state.SetLabel("workers=" + std::to_string(procs));
    state.counters["restarts"] = static_cast<double>(restarts);

    ::unsetenv("EBM_SWEEP_SHARD");
    std::remove(path.c_str());
    removeClaimDir(path + ".claims");
    removeClaimDir(path + ".hb");
}
BENCHMARK(BM_SweepSupervised)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->Iterations(1);

/**
 * The networked fabric's scaling scenario: K consumers each need the
 * full cold 64-combination table. range(0) = K workers; range(1)
 * toggles the coordinator. Uncoordinated (coord=off), each worker
 * cold-fills its own private store — K * 64 rows of simulation, the
 * cost K independent machines pay today. Coordinated (coord=on), the
 * parent runs an in-process Coordinator over one store and the K
 * workers lease rows over localhost TCP (EBM_COORDINATOR), so the
 * aggregate simulation work stays ~64 rows and every worker still
 * ends with the full table (leased rows simulated, the rest streamed
 * from the coordinator's store).
 *
 * On a multi-core host the coordinated arm also finishes one fill
 * ~K times faster than one worker; this single-CPU bench host
 * timeslices, so the speedup is reported as work-sharing:
 * T(K, uncoordinated) / T(K, coordinated) approaches K because the
 * uncoordinated arm simulates K times the rows. The recorded
 * BENCH_sweep.json `distributed_fill` entry pins the procedure.
 *
 * Fork discipline: the Coordinator is bind()ed before the forks and
 * start()ed after, so children inherit one quiet listening fd and
 * never a running thread's locks.
 */
void
BM_SweepDistributed(benchmark::State &state)
{
    const int workers = static_cast<int>(state.range(0));
    const bool coordinated = state.range(1) != 0;
    const std::string path = "bench_sweep_dist.cache";
    const auto worker_path = [&](int c) {
        return "bench_sweep_dist_w" + std::to_string(c) + ".cache";
    };

    double p50_us = 0.0;
    double p99_us = 0.0;
    std::uint64_t records = 0;
    std::uint64_t rpcs = 0;
    for (auto _ : state) {
        state.PauseTiming();
        std::remove(path.c_str());
        for (int c = 0; c < workers; ++c)
            std::remove(worker_path(c).c_str());
        state.ResumeTiming();

        std::optional<DiskCache> dist;
        std::optional<Coordinator> coordinator;
        std::string address;
        if (coordinated) {
            dist.emplace(path);
            coordinator.emplace(*dist, Coordinator::Options{});
            if (!coordinator->bind().ok()) {
                state.SkipWithError("coordinator bind failed");
                break;
            }
            address = coordinator->address();
        }

        std::vector<pid_t> kids;
        for (int c = 0; c < workers; ++c) {
            const pid_t pid = ::fork();
            if (pid == 0) {
                {
                    if (coordinated)
                        ::setenv("EBM_COORDINATOR", address.c_str(),
                                 1);
                    Runner runner(benchConfig(), benchOptions());
                    DiskCache cache(worker_path(c));
                    Exhaustive ex(runner, cache);
                    ex.setJobs(1);
                    const ComboTable t =
                        ex.sweep(makePair("BFS", "FFT"));
                    ::_exit(t.combos.size() == 64 ? 0 : 2);
                }
            }
            kids.push_back(pid);
        }
        if (coordinated && !coordinator->start().ok())
            state.SkipWithError("coordinator start failed");
        for (const pid_t pid : kids) {
            int status = 0;
            ::waitpid(pid, &status, 0);
            if (!WIFEXITED(status) || WEXITSTATUS(status) != 0)
                state.SkipWithError("distributed worker failed");
        }
        if (coordinated) {
            coordinator->stop();
            const Coordinator::Stats stats = coordinator->stats();
            p50_us = stats.rpcP50Us;
            p99_us = stats.rpcP99Us;
            records += stats.recordsCommitted;
            rpcs += stats.rpcs;
        }
    }
    state.SetLabel("workers=" + std::to_string(workers) +
                   (coordinated ? " coord=on" : " coord=off"));
    if (coordinated) {
        state.counters["rpc_p50_us"] = p50_us;
        state.counters["rpc_p99_us"] = p99_us;
        state.counters["records"] = static_cast<double>(records);
        state.counters["rpcs"] = static_cast<double>(rpcs);
    }

    std::remove(path.c_str());
    for (int c = 0; c < workers; ++c)
        std::remove(worker_path(c).c_str());
}
BENCHMARK(BM_SweepDistributed)
    ->Args({1, 1})
    ->Args({2, 1})
    ->Args({4, 1})
    ->Args({1, 0})
    ->Args({2, 0})
    ->Args({4, 0})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->Iterations(1);

} // namespace

BENCHMARK_MAIN();
