#include "harness/exhaustive.hpp"

#include <cmath>
#include <sstream>

#include "common/log.hpp"
#include "metrics/metrics.hpp"
#include "workload/app_catalog.hpp"

namespace ebm {

std::string
SweepStatus::summaryLine() const
{
    std::ostringstream out;
    out << "sweep status: " << combos << " combos (" << fromCache
        << " from cache, " << simulated << " simulated, " << retried
        << " retried, " << skipped << " skipped)";
    return out.str();
}

std::size_t
ComboTable::indexOf(const TlpCombo &combo) const
{
    for (std::size_t i = 0; i < combos.size(); ++i) {
        if (combos[i] == combo)
            return i;
    }
    panic("ComboTable: combination not in table");
}

Exhaustive::Exhaustive(const Runner &runner, DiskCache &cache)
    : runner_(runner), cache_(cache)
{
}

ComboTable
Exhaustive::sweep(const Workload &wl, std::vector<std::uint32_t> levels)
{
    const std::vector<AppProfile> apps = resolveApps(wl);
    const auto n = static_cast<std::uint32_t>(apps.size());
    if (levels.empty())
        levels = GpuConfig::tlpLevels();

    ComboTable table;
    table.levels = levels;
    SweepStatus sweep_status;

    // Enumerate all |levels|^n combinations in odometer order.
    std::vector<std::size_t> idx(n, 0);
    while (true) {
        TlpCombo combo(n);
        ++sweep_status.combos;
        for (std::uint32_t a = 0; a < n; ++a)
            combo[a] = levels[idx[a]];

        // Built with += (not operator+ on a temporary) to dodge GCC
        // 12's false-positive -Wrestrict on char* + string&&.
        std::string key = "combo/";
        key += runner_.fingerprint();
        key += '/';
        key += wl.name;
        for (std::uint32_t t : combo) {
            key += '/';
            key += std::to_string(t);
        }

        // A wrong-shape cache entry (stale layout, survived-but-bogus
        // line) is a miss: recompute and overwrite rather than trust.
        RunResult result;
        bool combo_skipped = false;
        if (const auto cached = cache_.getValidated(key, 4u * n + 1)) {
            const auto &v = *cached;
            result.apps.resize(n);
            for (std::uint32_t a = 0; a < n; ++a) {
                result.apps[a].ipc = v[4 * a + 0];
                result.apps[a].bw = v[4 * a + 1];
                result.apps[a].l1Mr = v[4 * a + 2];
                result.apps[a].l2Mr = v[4 * a + 3];
                result.totalBw += result.apps[a].bw;
            }
            result.measuredCycles = static_cast<Cycle>(v.back());
            result.finalTlp = combo;
            ++sweep_status.fromCache;
        } else {
            // Bounded retry: a failing run (crash, injected fault) is
            // retried, then skipped — one bad combination must not
            // lose the whole sweep. Each success is persisted before
            // the next combination starts (checkpoint/resume).
            bool done = false;
            for (std::uint32_t attempt = 0;
                 !done && attempt <= maxRetries_; ++attempt) {
                if (attempt > 0)
                    ++sweep_status.retried;
                try {
                    result = runner_.runStatic(apps, combo);
                    done = true;
                } catch (const FatalError &e) {
                    warn("Exhaustive: run failed for " + key +
                         " (attempt " + std::to_string(attempt + 1) +
                         "/" + std::to_string(maxRetries_ + 1) +
                         "): " + e.what());
                }
            }
            if (done) {
                std::vector<double> v;
                for (std::uint32_t a = 0; a < n; ++a) {
                    v.push_back(result.apps[a].ipc);
                    v.push_back(result.apps[a].bw);
                    v.push_back(result.apps[a].l1Mr);
                    v.push_back(result.apps[a].l2Mr);
                }
                v.push_back(static_cast<double>(result.measuredCycles));
                cache_.put(key, v);
                ++sweep_status.simulated;
            } else {
                result = RunResult{};
                result.apps.resize(n);
                result.finalTlp = combo;
                combo_skipped = true;
                ++sweep_status.skipped;
            }
        }
        table.combos.push_back(combo);
        table.results.push_back(std::move(result));
        table.skipped.push_back(combo_skipped ? 1 : 0);

        // Odometer increment.
        std::uint32_t pos = 0;
        while (pos < n) {
            if (++idx[pos] < levels.size())
                break;
            idx[pos] = 0;
            ++pos;
        }
        if (pos == n)
            break;
    }

    status_.add(sweep_status);
    if (sweep_status.retried > 0 || sweep_status.skipped > 0) {
        warn("Exhaustive: " + wl.name + " " +
             sweep_status.summaryLine());
    }
    return table;
}

double
Exhaustive::value(const ComboTable &table, const TlpCombo &combo,
                  OptTarget target, const std::vector<double> &alone_ipcs,
                  const std::vector<double> &eb_scale)
{
    const RunResult &r = table.at(combo);
    const std::size_t n = r.apps.size();

    std::vector<double> sds;
    if (target == OptTarget::SdWS || target == OptTarget::SdFI ||
        target == OptTarget::SdHS) {
        if (alone_ipcs.size() != n)
            fatal("Exhaustive: SD target needs alone IPCs");
        for (std::size_t a = 0; a < n; ++a)
            sds.push_back(slowdown(r.apps[a].ipc, alone_ipcs[a]));
    }

    switch (target) {
      case OptTarget::SdWS:
        return weightedSpeedup(sds);
      case OptTarget::SdFI:
        return fairnessIndex(sds);
      case OptTarget::SdHS:
        return harmonicSpeedup(sds);
      case OptTarget::EbWS:
        return ebWeightedSpeedup(r.ebs());
      case OptTarget::EbFI:
        return ebFairnessIndex(r.ebs(), eb_scale);
      case OptTarget::EbHS:
        return ebHarmonicSpeedup(r.ebs(), eb_scale);
      case OptTarget::SumIpc: {
        double sum = 0.0;
        for (const AppRunStats &a : r.apps)
            sum += a.ipc;
        return sum;
      }
    }
    panic("Exhaustive: unknown target");
}

TlpCombo
Exhaustive::argmax(const ComboTable &table, OptTarget target,
                   const std::vector<double> &alone_ipcs,
                   const std::vector<double> &eb_scale)
{
    if (table.combos.empty())
        fatal("Exhaustive: empty table");
    std::size_t best = table.combos.size();
    double best_value = -1e300;
    for (std::size_t i = 0; i < table.combos.size(); ++i) {
        // A combo whose run failed has a zeroed result: excluding it
        // keeps partial tables usable (no-silent-drops reporting is
        // the sweep's job).
        if (table.isSkipped(i))
            continue;
        const double v = value(table, table.combos[i], target,
                               alone_ipcs, eb_scale);
        if (!std::isfinite(v))
            continue;
        if (v > best_value) {
            best_value = v;
            best = i;
        }
    }
    if (best == table.combos.size())
        fatal("Exhaustive: every combination was skipped or scored "
              "non-finite; nothing to select");
    return table.combos[best];
}

} // namespace ebm
