#include "harness/exhaustive.hpp"

#include <signal.h>
#include <unistd.h>

#include <chrono>
#include <cmath>
#include <optional>
#include <sstream>
#include <thread>

#include "common/job_pool.hpp"
#include "common/log.hpp"
#include "harness/cost_model.hpp"
#include "harness/lease_provider.hpp"
#include "harness/shard_claim.hpp"
#include "metrics/metrics.hpp"
#include "workload/app_catalog.hpp"

namespace ebm {

std::string
SweepStatus::summaryLine() const
{
    std::ostringstream out;
    out << "sweep status: " << combos << " combos (" << fromCache
        << " from cache, " << simulated << " simulated, ";
    if (fromPeers > 0)
        out << fromPeers << " from peers, ";
    out << retried << " retried, " << skipped << " skipped)";
    return out.str();
}

std::size_t
ComboTable::indexOf(const TlpCombo &combo) const
{
    // Rebuild the map whenever rows were appended since it was last
    // built (tables are filled with push_back, then queried heavily
    // by argmax/value — a row count mismatch is the build trigger).
    if (rowIndex_.size() != combos.size()) {
        rowIndex_.clear();
        rowIndex_.reserve(combos.size());
        for (std::size_t i = 0; i < combos.size(); ++i)
            rowIndex_.emplace(combos[i], i);
    }
    const auto it = rowIndex_.find(combo);
    if (it == rowIndex_.end())
        panic("ComboTable: combination not in table");
    return it->second;
}

Exhaustive::Exhaustive(const Runner &runner, DiskCache &cache)
    : runner_(runner), cache_(cache)
{
}

std::vector<TlpCombo>
enumerateCombos(const std::vector<std::uint32_t> &levels,
                std::uint32_t num_apps)
{
    // Odometer order: app 0 is the fastest-spinning digit. This
    // enumeration fixes each combination's row up front so workers
    // (and cooperating processes) commit results into pre-assigned
    // slots.
    std::vector<TlpCombo> combos;
    std::vector<std::size_t> idx(num_apps, 0);
    while (true) {
        TlpCombo combo(num_apps);
        for (std::uint32_t a = 0; a < num_apps; ++a)
            combo[a] = levels[idx[a]];
        combos.push_back(std::move(combo));

        std::uint32_t pos = 0;
        while (pos < num_apps) {
            if (++idx[pos] < levels.size())
                break;
            idx[pos] = 0;
            ++pos;
        }
        if (pos == num_apps)
            break;
    }
    return combos;
}

namespace {

/** Decode a validated cache vector back into a RunResult (the inverse
 * of the encoding in Exhaustive::sweep's simulate path). */
RunResult
decodeComboRow(const std::vector<double> &v, const TlpCombo &combo,
               std::uint32_t num_apps)
{
    RunResult result;
    result.apps.resize(num_apps);
    for (std::uint32_t a = 0; a < num_apps; ++a) {
        result.apps[a].ipc = v[4 * a + 0];
        result.apps[a].bw = v[4 * a + 1];
        result.apps[a].l1Mr = v[4 * a + 2];
        result.apps[a].l2Mr = v[4 * a + 3];
        result.totalBw += result.apps[a].bw;
    }
    result.measuredCycles = static_cast<Cycle>(v.back());
    result.finalTlp = combo;
    return result;
}

} // namespace

std::optional<ComboTable>
Exhaustive::sweepCached(const Workload &wl,
                        std::vector<std::uint32_t> levels) const
{
    const auto n =
        static_cast<std::uint32_t>(resolveApps(wl).size());
    if (levels.empty())
        levels = GpuConfig::tlpLevels();

    ComboTable table;
    table.levels = levels;
    table.combos = enumerateCombos(levels, n);
    table.results.resize(table.combos.size());
    table.skipped.assign(table.combos.size(), 0);

    for (std::size_t row = 0; row < table.combos.size(); ++row) {
        const std::string key =
            runner_.comboKey(wl.name, table.combos[row]);
        const auto cached = cache_.getValidated(key, 4u * n + 1);
        if (!cached)
            return std::nullopt;
        table.results[row] = decodeComboRow(*cached,
                                            table.combos[row], n);
    }
    return table;
}

std::uint32_t
Exhaustive::jobs() const
{
    return jobs_ != 0 ? jobs_ : JobPool::defaultJobs();
}

namespace {

/** One cache-missing row awaiting simulation. */
struct SweepTask
{
    std::size_t row = 0;
    std::string key;
    /** Leading attempts the pre-drawn fault schedule fails. */
    std::uint32_t injectedFails = 0;
    /** Pre-drawn whole-process crash points (chaos tests): die while
     * holding the claim / after the durable put, pre-release. */
    std::uint32_t crashClaimHeld = 0;
    std::uint32_t crashPostPut = 0;
    /** 1 = another process claimed the row; wait for its result. */
    std::uint32_t deferred = 0;
    /** Outcome, merged into SweepStatus after the pool drains. */
    std::uint32_t simulated = 0;
    std::uint32_t fromPeers = 0;
    std::uint32_t retried = 0;
    std::uint32_t skipped = 0;
};

} // namespace

ComboTable
Exhaustive::sweep(const Workload &wl, std::vector<std::uint32_t> levels)
{
    const std::vector<AppProfile> apps = resolveApps(wl);
    const auto n = static_cast<std::uint32_t>(apps.size());
    if (levels.empty())
        levels = GpuConfig::tlpLevels();

    ComboTable table;
    table.levels = levels;
    SweepStatus sweep_status;

    table.combos = enumerateCombos(levels, n);
    const std::size_t total = table.combos.size();
    sweep_status.combos = total;
    table.results.resize(total);
    table.skipped.assign(total, 0);

    const auto decode = [n](const std::vector<double> &v,
                            const TlpCombo &combo) {
        return decodeComboRow(v, combo, n);
    };

    // Cross-process sharding: rows are claimed at dispatch through a
    // LeaseProvider, so N cooperating workers split a cold sweep
    // instead of each simulating all of it. EBM_SWEEP_SHARD selects
    // filesystem claim files against the shared store;
    // EBM_COORDINATOR=host:port leases rows from an ebm_coordinator
    // over TCP and streams results back as CRC-framed records.
    const std::unique_ptr<LeaseProvider> lease =
        makeLeaseProvider(cache_);

    // Serial pass in row order: cache probes and the injected
    // run-failure pre-draw both consume ordered global state (the
    // cache's warnings, the injector's query counter), so they happen
    // here — in exactly the order the all-serial sweep used — no
    // matter how many workers run the misses afterwards. Cooperating
    // processes that start cold draw identical schedules (same seed,
    // same row order), so each one's view of which attempts fail is
    // the same no matter which process ends up running a row.
    FaultInjector *injector = runner_.options().faultInjector;
    std::vector<SweepTask> tasks;
    for (std::size_t row = 0; row < total; ++row) {
        const TlpCombo &combo = table.combos[row];
        std::string key = runner_.comboKey(wl.name, combo);

        // A wrong-shape or non-finite cache entry (stale layout,
        // survived-but-bogus line, pre-guard NaN) is a miss:
        // recompute and overwrite rather than trust.
        if (const auto cached = cache_.getValidated(key, 4u * n + 1)) {
            table.results[row] = decode(*cached, combo);
            ++sweep_status.fromCache;
            continue;
        }

        SweepTask task;
        task.row = row;
        task.key = std::move(key);
        if (injector != nullptr) {
            // Pre-draw this row's injected failures with the same
            // query sequence the serial attempt loop performed: one
            // query per attempt, stopping at the first non-firing
            // (successful) attempt or when the retry budget is gone.
            while (task.injectedFails <= maxRetries_ &&
                   injector->shouldFire(FaultInjector::Point::RunFail))
                ++task.injectedFails;
            // Whole-process crash points are pre-drawn here too: the
            // shared injector is only ever queried serially, and the
            // draw order is row order regardless of worker count, so
            // a seeded chaos schedule kills the same row at the same
            // point on every run. Per-point counters are independent,
            // so disarmed points leave existing schedules untouched.
            task.crashClaimHeld = injector->shouldFire(
                                      FaultInjector::Point::CrashClaimHeld)
                                      ? 1u
                                      : 0u;
            task.crashPostPut = injector->shouldFire(
                                    FaultInjector::Point::CrashPostPut)
                                    ? 1u
                                    : 0u;
        }
        tasks.push_back(std::move(task));
    }

    // Simulate one owned task: bounded retry — a failing run
    // (pre-drawn injected fault or a genuine crash) is retried, then
    // skipped; one bad combination must not lose the whole sweep.
    // Each success is persisted as it completes (checkpoint/resume).
    // Chaos kill: die the way the kernel kills a worker — SIGKILL, no
    // destructors, no claim cleanup; the supervisor and the staleness
    // protocol must recover, and that recovery is what's under test.
    auto crashNow = [] {
        (void)::kill(::getpid(), SIGKILL);
        for (;;)
            ::pause();
    };

    auto simulateTask = [&](SweepTask &task) {
        const TlpCombo &combo = table.combos[task.row];

        // Crash point: the lease is held, nothing is durable yet.
        // Peers must see the lease go stale and take the row over.
        if (lease && task.crashClaimHeld)
            crashNow();

        // Span the whole attempt loop with a background heartbeat so
        // a single row longer than the staleness window never looks
        // abandoned to peers (the per-attempt bump below is far too
        // coarse for that once rows take seconds).
        std::optional<LeaseHeartbeater> beat;
        if (lease)
            beat.emplace(lease.get(), task.key);

        // Workers never touch the shared injector: the run-failure
        // schedule was pre-drawn above, and monitor-level points are
        // forked per row — deterministic in the row id, independent
        // of worker interleaving.
        const Runner *runner = &runner_;
        std::optional<Runner> task_runner;
        std::optional<FaultInjector> task_injector;
        if (injector != nullptr) {
            task_injector.emplace(injector->fork(task.row));
            task_injector->disarm(FaultInjector::Point::RunFail);
            RunOptions opts = runner_.options();
            opts.faultInjector = &*task_injector;
            task_runner.emplace(runner_.config(), opts);
            runner = &*task_runner;
        }

        RunResult result;
        bool done = false;
        for (std::uint32_t attempt = 0;
             !done && attempt <= maxRetries_; ++attempt) {
            if (attempt > 0)
                ++task.retried;
            // Liveness signal for cooperating processes: while this
            // row is retrying it is being worked on, not abandoned.
            if (lease)
                lease->heartbeat(task.key);
            if (attempt < task.injectedFails) {
                warn("Exhaustive: run failed for " + task.key +
                     " (attempt " + std::to_string(attempt + 1) + "/" +
                     std::to_string(maxRetries_ + 1) +
                     "): [run-failed] Runner: injected run failure");
                continue;
            }
            try {
                const auto t0 = std::chrono::steady_clock::now();
                result = runner->runStatic(apps, combo);
                const std::chrono::duration<double> dt =
                    std::chrono::steady_clock::now() - t0;
                SweepCostModel::instance().observe(
                    combo,
                    runner_.options().warmupCycles +
                        runner_.options().measureCycles,
                    dt.count());
                done = true;
            } catch (const FatalError &e) {
                warn("Exhaustive: run failed for " + task.key +
                     " (attempt " + std::to_string(attempt + 1) + "/" +
                     std::to_string(maxRetries_ + 1) + "): " +
                     e.what());
            }
        }
        if (done) {
            std::vector<double> v;
            for (std::uint32_t a = 0; a < n; ++a) {
                v.push_back(result.apps[a].ipc);
                v.push_back(result.apps[a].bw);
                v.push_back(result.apps[a].l1Mr);
                v.push_back(result.apps[a].l2Mr);
            }
            v.push_back(static_cast<double>(result.measuredCycles));
            cache_.put(task.key, v);
            task.simulated = 1;
            if (lease) {
                // Publish before dropping the lease: peers read
                // "lease gone" as "result durable". Filesystem mode
                // forces the covering group commit of the shared
                // store; network mode streams the CRC-framed record
                // to the coordinator, whose own writer commits it.
                lease->publish(task.key, v);
                // Crash point: result durable, lease left behind.
                // Peers break the stale lease and re-probe the store.
                if (task.crashPostPut)
                    crashNow();
                // Stop the background heartbeat before dropping the
                // lease so a late tick can't mistake our own release
                // for a takeover.
                const bool was_fenced = beat && beat->fenced();
                beat.reset();
                if (was_fenced || !lease->release(task.key)) {
                    // A peer fenced us out mid-row and owns it now:
                    // our durable result is a byte-identical
                    // duplicate compute, not the one waiters consume.
                    warn("Exhaustive: fenced while computing " +
                         task.key + "; result kept as a duplicate");
                }
            }
        } else {
            result = RunResult{};
            result.apps.resize(n);
            result.finalTlp = combo;
            table.skipped[task.row] = 1;
            task.skipped = 1;
            // Durable skip marker: waiting processes replicate the
            // skip instead of polling a row that will never appear.
            if (lease) {
                beat.reset();
                lease->markSkipped(task.key);
            }
        }
        table.results[task.row] = std::move(result);
    };

    // Fold in rows cooperating processes finished since our probe
    // pass: a completed row's lease is already gone (released after
    // the durable publish), so leases alone cannot tell "done" from
    // "never started" — the authoritative store can (the shared file
    // under filesystem claims, the coordinator's store over the
    // wire). @return true when the row was assembled from a peer's
    // result.
    auto probePeer = [&](SweepTask &task) {
        const auto v =
            lease->fetch(task.key, 4u * std::size_t{n} + 1);
        if (!v)
            return false;
        table.results[task.row] = decode(*v, table.combos[task.row]);
        task.fromPeers = 1;
        return true;
    };

    // Dispatch gate: under sharding a worker re-probes the store
    // (peers may have finished the row already), leases the row right
    // before simulating it, and re-probes once more after winning the
    // lease (the owner may have released — result durable — between
    // probe and acquisition). Cooperating processes thus split the
    // missing rows by arrival instead of duplicating them; a row
    // someone else still holds is deferred to the wait phase below.
    // Echo the lease's fencing epoch into the store header: epochs
    // past the first mean the row changed hands (a takeover), and a
    // store written under takeovers should say so until compaction
    // renders it canonical again.
    auto noteEpoch = [&](const SweepTask &task) {
        const std::uint64_t epoch = lease->ownedEpoch(task.key);
        if (epoch > 1)
            cache_.noteFencingEpoch(epoch);
    };

    auto runTask = [&](SweepTask &task) {
        // Liveness for the sweep supervisor (sweep_supervisor.hpp):
        // every dispatched row proves this worker is making progress,
        // leases or not.
        ClaimHeartbeater::touchWorkerHeartbeat();
        if (lease) {
            if (probePeer(task))
                return;
            if (!lease->tryAcquire(task.key)) {
                task.deferred = 1;
                return;
            }
            noteEpoch(task);
            if (probePeer(task)) {
                lease->release(task.key);
                return;
            }
        }
        simulateTask(task);
    };

    // Longest-expected-first submission (LPT): the barrier at the end
    // of the sweep waits for the last row, so the expensive rows go
    // out first instead of landing on a nearly drained pool. This
    // reorders *submission only* — rows were enumerated, probed, and
    // pre-drawn in odometer order above and are committed into
    // pre-assigned slots, so results, files, and accounting are
    // bit-identical whatever order the cost model picks.
    const Cycle run_cycles = runner_.options().warmupCycles +
                             runner_.options().measureCycles;
    std::vector<double> costs(tasks.size());
    for (std::size_t i = 0; i < tasks.size(); ++i) {
        costs[i] = SweepCostModel::instance().expectedCost(
            table.combos[tasks[i].row], run_cycles);
    }
    const std::vector<std::size_t> order = costDescendingOrder(costs);

    const std::uint32_t workers = static_cast<std::uint32_t>(
        std::min<std::size_t>(jobs(), tasks.size()));
    if (workers <= 1) {
        for (const std::size_t i : order)
            runTask(tasks[i]);
    } else {
        JobPool pool(workers);
        for (const std::size_t i : order)
            pool.submit([&runTask, &task = tasks[i]] { runTask(task); });
        pool.wait();
    }

    // Wait phase (sharding only): rows other processes leased are
    // assembled in odometer order from the authoritative store. The
    // lease protocol closes every gap: a finished owner's result
    // appears on the next fetch, a killed owner's lease goes stale
    // (immediately, in network mode, when its connection drops) and
    // is taken over, and a skipping owner leaves a durable marker we
    // replicate — so this loop always terminates, and the assembled
    // table is the one a single process would have built.
    for (SweepTask &task : tasks) {
        if (!task.deferred)
            continue;
        for (bool waiting = true; waiting;) {
            if (probePeer(task))
                break;
            switch (lease->peek(task.key)) {
              case LeaseProvider::State::Skipped: {
                RunResult result;
                result.apps.resize(n);
                result.finalTlp = table.combos[task.row];
                table.results[task.row] = std::move(result);
                table.skipped[task.row] = 1;
                task.skipped = 1;
                waiting = false;
                break;
              }
              case LeaseProvider::State::Absent:
                // Owner takeover race (or it crashed between durable
                // result and release — the re-probe covers the result
                // landing after this iteration's fetch): lease it
                // ourselves; duplicates are byte-identical anyway.
                if (lease->tryAcquire(task.key)) {
                    noteEpoch(task);
                    if (!probePeer(task))
                        simulateTask(task);
                    else
                        lease->release(task.key);
                    waiting = false;
                }
                break;
              case LeaseProvider::State::Stale:
                if (lease->breakStale(task.key)) {
                    noteEpoch(task);
                    if (!probePeer(task))
                        simulateTask(task);
                    else
                        lease->release(task.key);
                    waiting = false;
                }
                break;
              case LeaseProvider::State::Active:
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(2));
                break;
            }
        }
    }

    // Merge per-task outcomes in row order: totals are independent of
    // the workers' completion order.
    for (const SweepTask &task : tasks) {
        sweep_status.simulated += task.simulated;
        sweep_status.fromPeers += task.fromPeers;
        sweep_status.retried += task.retried;
        sweep_status.skipped += task.skipped;
    }

    status_.add(sweep_status);
    if (sweep_status.retried > 0 || sweep_status.skipped > 0) {
        warn("Exhaustive: " + wl.name + " " +
             sweep_status.summaryLine());
    }
    return table;
}

double
Exhaustive::value(const ComboTable &table, const TlpCombo &combo,
                  OptTarget target, const std::vector<double> &alone_ipcs,
                  const std::vector<double> &eb_scale)
{
    const RunResult &r = table.at(combo);
    const std::size_t n = r.apps.size();

    std::vector<double> sds;
    if (target == OptTarget::SdWS || target == OptTarget::SdFI ||
        target == OptTarget::SdHS) {
        if (alone_ipcs.size() != n)
            fatal("Exhaustive: SD target needs alone IPCs");
        for (std::size_t a = 0; a < n; ++a)
            sds.push_back(slowdown(r.apps[a].ipc, alone_ipcs[a]));
    }

    switch (target) {
      case OptTarget::SdWS:
        return weightedSpeedup(sds);
      case OptTarget::SdFI:
        return fairnessIndex(sds);
      case OptTarget::SdHS:
        return harmonicSpeedup(sds);
      case OptTarget::EbWS:
        return ebWeightedSpeedup(r.ebs());
      case OptTarget::EbFI:
        return ebFairnessIndex(r.ebs(), eb_scale);
      case OptTarget::EbHS:
        return ebHarmonicSpeedup(r.ebs(), eb_scale);
      case OptTarget::SumIpc: {
        double sum = 0.0;
        for (const AppRunStats &a : r.apps)
            sum += a.ipc;
        return sum;
      }
    }
    panic("Exhaustive: unknown target");
}

TlpCombo
Exhaustive::argmax(const ComboTable &table, OptTarget target,
                   const std::vector<double> &alone_ipcs,
                   const std::vector<double> &eb_scale)
{
    if (table.combos.empty())
        fatal("Exhaustive: empty table");
    std::size_t best = table.combos.size();
    double best_value = -1e300;
    for (std::size_t i = 0; i < table.combos.size(); ++i) {
        // A combo whose run failed has a zeroed result: excluding it
        // keeps partial tables usable (no-silent-drops reporting is
        // the sweep's job).
        if (table.isSkipped(i))
            continue;
        const double v = value(table, table.combos[i], target,
                               alone_ipcs, eb_scale);
        if (!std::isfinite(v))
            continue;
        if (v > best_value) {
            best_value = v;
            best = i;
        }
    }
    if (best == table.combos.size())
        fatal("Exhaustive: every combination was skipped or scored "
              "non-finite; nothing to select");
    return table.combos[best];
}

} // namespace ebm
