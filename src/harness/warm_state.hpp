/**
 * @file
 * Process-wide cache of warm-state checkpoints.
 *
 * A sweep runs the same policy-neutral warmup prefix — default knobs,
 * window closes, nothing else — once per (machine, apps, core share,
 * window length) shape and then forks every combination from the
 * captured state instead of re-simulating the prefix per row. The
 * capture is a value-semantic Gpu::Snapshot plus the EB monitor's
 * state and the sample of the window that closed at the fork point;
 * restoring it replays bit-identically against a fresh cold run (the
 * snapshot property tests are the oracle).
 *
 * Checkpoints are keyed by (base key, elapsed cycles). A request for a
 * deeper target resumes from the nearest stored shallower checkpoint
 * and warms only the remainder, so a PBS run (fork at one window) and
 * a static sweep (fork at the warmup boundary) share work. Concurrent
 * requests for the same key are single-flighted: one thread computes
 * on its own leased machine while the others wait on the result.
 *
 * The cache is an accelerator, never a semantic: EBM_SNAPSHOT=0 (or
 * setEnabled(false)) disables capture and reuse entirely, and the
 * byte-compare tests pin that both modes produce identical results.
 * Retained bytes are bounded by an LRU budget (EBM_SNAPSHOT_BUDGET_MB,
 * default 256). Fault-injecting runs never reach this cache (the
 * Runner disables forking whenever an injector is present).
 */
#pragma once

#include <condition_variable>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <vector>

#include "common/types.hpp"
#include "core/eb_monitor.hpp"
#include "core/eb_sample.hpp"
#include "sim/gpu.hpp"

namespace ebm {

/** Process-wide LRU of policy-neutral warm-state checkpoints. */
class WarmStateCache
{
  public:
    /**
     * State captured at one window close of the neutral prefix: the
     * machine *before* the post-window checkpoint() call, the
     * monitor's internal state, and the sample of the window that
     * just closed. A run resuming here processes that window's tail
     * (policy callback, checkpoint, measurement start, relaunch
     * check) and continues — exactly the cold run's trajectory.
     */
    struct Checkpoint
    {
        Gpu::Snapshot gpu;
        EbMonitor::Snapshot monitor;
        EbSample sample;
        Cycle elapsed = 0;

        std::size_t
        heapBytes() const
        {
            return gpu.heapBytes() +
                   sample.apps.capacity() * sizeof(AppRunStats) +
                   sample.tlp.capacity() * sizeof(std::uint32_t) +
                   monitor.lastGood.apps.capacity() *
                       sizeof(AppRunStats) +
                   monitor.lastGood.tlp.capacity() *
                       sizeof(std::uint32_t);
        }
    };

    /** Reuse accounting (process-wide). */
    struct Stats
    {
        std::uint64_t hits = 0;      ///< Served from a stored capture.
        std::uint64_t misses = 0;    ///< Computed (cold or resumed).
        std::uint64_t resumes = 0;   ///< Misses seeded by a shallower
                                     ///< stored checkpoint.
        std::uint64_t evictions = 0; ///< LRU-budget displacements.
        std::size_t retainedBytes = 0;
    };

    /**
     * Return the checkpoint of the neutral prefix at exactly @p target
     * elapsed cycles, computing it on @p gpu on a miss. @p gpu must be
     * construction-fresh (a pool lease guarantees this); after the
     * call its state is unspecified — the caller restores from the
     * returned checkpoint either way. Returns nullptr when the cache
     * is disabled. @p relay_latency is the monitor's relay model and
     * must match the calling Runner's.
     */
    std::shared_ptr<const Checkpoint> warmTo(std::uint64_t base_key,
                                             Gpu &gpu, Cycle target,
                                             Cycle window_cycles,
                                             Cycle relay_latency);

    /**
     * Account a hit served from a lease-retained copy (the pool-local
     * fast path bypasses warmTo entirely; this keeps hit/miss counts
     * meaningful for the advisor's STATS surface).
     */
    void noteHit();

    Stats stats() const;

    /** Drop every stored checkpoint (tests; memory pressure). */
    void clear();

    /**
     * Override the LRU byte budget (tests shrink it to force the
     * eviction path; the default comes from EBM_SNAPSHOT_BUDGET_MB).
     */
    void setBudgetBytes(std::size_t bytes);

    /** The process-wide instance. */
    static WarmStateCache &instance();

    /**
     * Kill switch. Defaults from EBM_SNAPSHOT via the strict shared
     * env parser (unset or 1 = enabled, 0 = disabled, anything else
     * warns and falls back to enabled), read once.
     */
    static bool enabled();
    static void setEnabled(bool enabled);

  private:
    struct Entry
    {
        std::uint64_t baseKey = 0;
        Cycle elapsed = 0;
        std::shared_ptr<const Checkpoint> checkpoint;
    };

    /** Simulate the prefix on @p gpu up to @p target, optionally
     * seeded from a shallower checkpoint, and fill @p out. */
    static void computeWarm(Gpu &gpu, const Checkpoint *seed,
                            Cycle target, Cycle window_cycles,
                            Cycle relay_latency, Checkpoint &out);

    void insertLocked(std::uint64_t base_key,
                      std::shared_ptr<const Checkpoint> cp);

    mutable std::mutex mu_;
    std::condition_variable cv_;
    /** Most-recently used first; small, scanned linearly. */
    std::list<Entry> entries_;
    /** (baseKey, elapsed) pairs currently being computed. */
    std::vector<std::pair<std::uint64_t, Cycle>> inflight_;
    Stats stats_;
    std::size_t budgetBytes_;

    WarmStateCache();
};

} // namespace ebm
