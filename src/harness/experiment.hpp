/**
 * @file
 * Shared experiment plumbing for the bench binaries: standard
 * configurations, SD-metric evaluation of runs against alone
 * profiles, the PBS(Offline) driver, and small math helpers.
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/pbs_search.hpp"
#include "harness/exhaustive.hpp"
#include "harness/profile_db.hpp"
#include "harness/run_result.hpp"
#include "harness/runner.hpp"
#include "workload/workload_suite.hpp"

namespace ebm {

/** SD-based scores of one shared run. */
struct SdScores
{
    std::vector<double> sds;
    double ws = 0.0;
    double fi = 0.0;
    double hs = 0.0;
};

/** The standard evaluation context every bench builds once. */
class Experiment
{
  public:
    /**
     * @param num_apps  co-scheduled application count (2 by default)
     * @param cache_path disk-cache file (shared by all benches);
     *                   empty = DiskCache::defaultPath(), i.e.
     *                   `$EBM_CACHE_DIR/ebm_results.cache` when the
     *                   env var is set, else `./ebm_results.cache`
     */
    explicit Experiment(std::uint32_t num_apps = 2,
                        const std::string &cache_path = "");

    /**
     * With EBM_CACHE_COMPACT=1, compacts the result store on exit so
     * a finished bench leaves the sorted canonical bytes behind —
     * what the cross-process CI job byte-compares across runs.
     */
    ~Experiment();

    Runner &runner() { return runner_; }
    ProfileDb &profiles() { return profiles_; }
    Exhaustive &exhaustive() { return exhaustive_; }
    DiskCache &cache() { return cache_; }

    /**
     * Worker threads used by sweeps and alone-run profiling
     * (0 = JobPool::defaultJobs(), i.e. --jobs / EBM_JOBS / hardware
     * concurrency; 1 restores strictly serial execution). Output is
     * bit-identical at any setting.
     */
    void setJobs(std::uint32_t jobs);
    std::uint32_t jobs() const;

    /**
     * Runner for *online* (searching) policies. Real kernel
     * executions are orders of magnitude longer than our static
     * measurement span, so a PBS/DynCTA run is measured over a longer
     * horizon; otherwise the one-off search phase — which on real
     * hardware amortizes to ~nothing — would dominate the score.
     * Search overhead is still fully included in the measurement.
     */
    Runner &onlineRunner() { return onlineRunner_; }

    /** Alone IPC at bestTLP for each app of @p wl. */
    std::vector<double> aloneIpcs(const Workload &wl);

    /** Alone EB at bestTLP for each app of @p wl. */
    std::vector<double> aloneEbs(const Workload &wl);

    /** The ++bestTLP combination for @p wl. */
    TlpCombo bestTlpCombo(const Workload &wl);

    /** SD metrics of @p result for workload @p wl. */
    SdScores score(const Workload &wl, const RunResult &result);

    /**
     * Drive a PbsSearch to convergence against an offline ComboTable
     * (the PBS(Offline) scheme: same search logic, no runtime
     * overheads, no adaptation). @return the chosen combination.
     */
    TlpCombo pbsOffline(const ComboTable &table, EbObjective objective,
                        ScalingMode scaling,
                        const std::vector<double> &user_scale = {},
                        std::uint32_t *samples_out = nullptr);

    /** Standard experiment configuration (DESIGN.md scale). */
    static GpuConfig standardConfig(std::uint32_t num_apps);
    static RunOptions standardOptions();
    static RunOptions onlineOptions();

  private:
    DiskCache cache_;
    Runner runner_;
    Runner onlineRunner_;
    ProfileDb profiles_;
    Exhaustive exhaustive_;
};

/** Geometric mean of positive values. */
double gmean(const std::vector<double> &values);

} // namespace ebm
