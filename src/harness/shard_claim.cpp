#include "harness/shard_claim.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <ctime>

#include "common/config.hpp"
#include "common/log.hpp"

namespace ebm {

namespace {

/** FNV-1a over the key bytes, as hex: the claim filename stem. */
std::string
keyFingerprint(const std::string &key)
{
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (const char c : key) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ull;
    }
    char buf[17];
    std::snprintf(buf, sizeof buf, "%016llx",
                  static_cast<unsigned long long>(h));
    return buf;
}

/** Milliseconds since @p path's mtime; negative on stat failure. */
long long
ageMs(const std::string &path)
{
    struct stat st = {};
    if (::stat(path.c_str(), &st) != 0)
        return -1;
    struct timespec now = {};
    ::clock_gettime(CLOCK_REALTIME, &now);
    const long long ns =
        (now.tv_sec - st.st_mtim.tv_sec) * 1000000000ll +
        (now.tv_nsec - st.st_mtim.tv_nsec);
    return ns / 1000000ll;
}

bool
isFresh(const std::string &path)
{
    const long long age = ageMs(path);
    return age >= 0 &&
           age <= ShardClaims::staleThreshold().count();
}

} // namespace

bool
ShardClaims::shardingEnabled()
{
    return envFlag("EBM_SWEEP_SHARD", false);
}

std::chrono::milliseconds
ShardClaims::staleThreshold()
{
    return std::chrono::milliseconds(
        envUint("EBM_CLAIM_STALE_MS", 10000, 1, 3600000));
}

ShardClaims::ShardClaims(const std::string &store_path)
    : dir_(store_path + ".claims")
{
    if (::mkdir(dir_.c_str(), 0777) != 0 && errno != EEXIST)
        warn("ShardClaims: cannot create " + dir_ +
             "; sweep sharding degrades to duplicate computes");
}

std::string
ShardClaims::claimPath(const std::string &key) const
{
    return dir_ + "/" + keyFingerprint(key) + ".claim";
}

std::string
ShardClaims::skipPath(const std::string &key) const
{
    return dir_ + "/" + keyFingerprint(key) + ".skip";
}

bool
ShardClaims::tryAcquire(const std::string &key)
{
    if (isSkipped(key))
        return false;
    const int fd = ::open(claimPath(key).c_str(),
                          O_CREAT | O_EXCL | O_WRONLY, 0644);
    if (fd < 0)
        return false; // EEXIST (someone owns it) or unwritable dir.
    // Owner identity, for humans inspecting a stuck sweep.
    const std::string who = std::to_string(::getpid()) + "\n";
    (void)!::write(fd, who.data(), who.size());
    ::close(fd);
    return true;
}

void
ShardClaims::heartbeat(const std::string &key)
{
    // Bumping mtime is the liveness signal peers poll.
    (void)::utimensat(AT_FDCWD, claimPath(key).c_str(), nullptr, 0);
}

void
ShardClaims::release(const std::string &key)
{
    (void)::unlink(claimPath(key).c_str());
}

void
ShardClaims::markSkipped(const std::string &key)
{
    // Marker first, claim second: a waiter that sees the claim vanish
    // must already be able to see why.
    const int fd = ::open(skipPath(key).c_str(),
                          O_CREAT | O_WRONLY | O_TRUNC, 0644);
    if (fd >= 0)
        ::close(fd);
    release(key);
}

bool
ShardClaims::isSkipped(const std::string &key) const
{
    const std::string path = skipPath(key);
    const long long age = ageMs(path);
    if (age < 0)
        return false;
    if (age > staleThreshold().count()) {
        // Expired marker from an old sweep: remove it so this (and
        // every future) sweep retries the row, matching the
        // single-process policy of never persisting a failure.
        (void)::unlink(path.c_str());
        return false;
    }
    return true;
}

ShardClaims::State
ShardClaims::peek(const std::string &key) const
{
    if (isSkipped(key))
        return State::Skipped;
    const long long age = ageMs(claimPath(key));
    if (age < 0)
        return State::Absent;
    return age > staleThreshold().count() ? State::Stale
                                          : State::Active;
}

bool
ShardClaims::breakStale(const std::string &key)
{
    // Confirm staleness immediately before unlinking to narrow the
    // race with a slow-but-alive owner; if two waiters both break the
    // same claim, both compute the row — deterministic simulation and
    // the last-wins store make the duplicate harmless.
    const std::string path = claimPath(key);
    if (isFresh(path))
        return false;
    if (ageMs(path) < 0)
        return false; // Vanished: owner finished after all.
    (void)::unlink(path.c_str());
    return tryAcquire(key);
}

} // namespace ebm
