#include "harness/shard_claim.hpp"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>

#include "common/config.hpp"
#include "common/log.hpp"

namespace ebm {

namespace {

/** FNV-1a over the key bytes, as hex: the claim filename stem. */
std::string
keyFingerprint(const std::string &key)
{
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (const char c : key) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ull;
    }
    char buf[17];
    std::snprintf(buf, sizeof buf, "%016llx",
                  static_cast<unsigned long long>(h));
    return buf;
}

/** Milliseconds since @p path's mtime; negative on stat failure. */
long long
ageMs(const std::string &path)
{
    struct stat st = {};
    if (::stat(path.c_str(), &st) != 0)
        return -1;
    struct timespec now = {};
    ::clock_gettime(CLOCK_REALTIME, &now);
    const long long ns =
        (now.tv_sec - st.st_mtim.tv_sec) * 1000000000ll +
        (now.tv_nsec - st.st_mtim.tv_nsec);
    return ns / 1000000ll;
}

bool
isFresh(const std::string &path)
{
    const long long age = ageMs(path);
    return age >= 0 &&
           age <= ShardClaims::staleThreshold().count();
}

/** Read a whole small file; empty string on any failure. */
std::string
slurp(const std::string &path)
{
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0)
        return {};
    char buf[64] = {};
    const ssize_t n = ::read(fd, buf, sizeof buf - 1);
    ::close(fd);
    return n > 0 ? std::string(buf, static_cast<std::size_t>(n))
                 : std::string();
}

/** Parse the epoch out of a claim file's "<pid> <epoch>\n" content;
 * 0 when absent, legacy ("<pid>\n" only), or unparsable. */
std::uint64_t
parseClaimEpoch(const std::string &content)
{
    const std::size_t sp = content.find(' ');
    if (sp == std::string::npos)
        return 0;
    return std::strtoull(content.c_str() + sp + 1, nullptr, 10);
}

} // namespace

bool
ShardClaims::shardingEnabled()
{
    return envFlag("EBM_SWEEP_SHARD", false);
}

std::chrono::milliseconds
ShardClaims::staleThreshold()
{
    return std::chrono::milliseconds(
        envUint("EBM_CLAIM_STALE_MS", 10000, 1, 3600000));
}

ShardClaims::ShardClaims(const std::string &store_path)
    : dir_(store_path + ".claims")
{
    if (::mkdir(dir_.c_str(), 0777) != 0 && errno != EEXIST)
        warn("ShardClaims: cannot create " + dir_ +
             "; sweep sharding degrades to duplicate computes");
}

std::string
ShardClaims::claimPath(const std::string &key) const
{
    return dir_ + "/" + keyFingerprint(key) + ".claim";
}

std::string
ShardClaims::skipPath(const std::string &key) const
{
    return dir_ + "/" + keyFingerprint(key) + ".skip";
}

std::string
ShardClaims::epochPath(const std::string &key) const
{
    return dir_ + "/" + keyFingerprint(key) + ".epoch";
}

std::uint64_t
ShardClaims::bumpEpoch(const std::string &key)
{
    // Only the process that just won the O_EXCL claim create calls
    // this, so per-key increments never race. A torn write (killed
    // mid-bump) at worst repeats an epoch after a counter reset —
    // fencing then degrades to today's unfenced behavior for that
    // key, never to a wrong takeover.
    const std::string path = epochPath(key);
    const std::uint64_t next =
        std::strtoull(slurp(path).c_str(), nullptr, 10) + 1;
    const std::string text = std::to_string(next) + "\n";
    const int fd =
        ::open(path.c_str(), O_CREAT | O_WRONLY | O_TRUNC, 0644);
    if (fd >= 0) {
        (void)!::write(fd, text.data(), text.size());
        ::close(fd);
    }
    return next;
}

bool
ShardClaims::stillOwned(const std::string &key) const
{
    std::uint64_t ours = 0;
    {
        std::lock_guard<std::mutex> lk(mu_);
        const auto it = owned_.find(key);
        if (it == owned_.end())
            return false;
        ours = it->second;
    }
    return parseClaimEpoch(slurp(claimPath(key))) == ours;
}

std::uint64_t
ShardClaims::ownedEpoch(const std::string &key) const
{
    std::lock_guard<std::mutex> lk(mu_);
    const auto it = owned_.find(key);
    return it == owned_.end() ? 0 : it->second;
}

std::uint64_t
ShardClaims::claimEpoch(const std::string &key) const
{
    return parseClaimEpoch(slurp(claimPath(key)));
}

bool
ShardClaims::tryAcquire(const std::string &key)
{
    if (isSkipped(key))
        return false;
    const int fd = ::open(claimPath(key).c_str(),
                          O_CREAT | O_EXCL | O_WRONLY, 0644);
    if (fd < 0)
        return false; // EEXIST (someone owns it) or unwritable dir.
    // We won the exclusive create: mint the fencing epoch, then
    // record owner identity (humans) and epoch (fencing checks).
    const std::uint64_t epoch = bumpEpoch(key);
    const std::string who = std::to_string(::getpid()) + " " +
                            std::to_string(epoch) + "\n";
    (void)!::write(fd, who.data(), who.size());
    ::close(fd);
    {
        std::lock_guard<std::mutex> lk(mu_);
        owned_[key] = epoch;
    }
    return true;
}

bool
ShardClaims::heartbeat(const std::string &key)
{
    if (!stillOwned(key)) {
        // Fenced: a peer saw us stale, took the row over under a
        // newer epoch. Forget the claim — it is not ours to touch.
        std::lock_guard<std::mutex> lk(mu_);
        owned_.erase(key);
        return false;
    }
    // Bumping mtime is the liveness signal peers poll.
    (void)::utimensat(AT_FDCWD, claimPath(key).c_str(), nullptr, 0);
    return true;
}

bool
ShardClaims::release(const std::string &key)
{
    const bool ours = stillOwned(key);
    if (ours)
        (void)::unlink(claimPath(key).c_str());
    else
        warn("ShardClaims: fenced out of " + keyFingerprint(key) +
             "; leaving the newer claim in place");
    std::lock_guard<std::mutex> lk(mu_);
    owned_.erase(key);
    return ours;
}

bool
ShardClaims::markSkipped(const std::string &key)
{
    if (!stillOwned(key)) {
        // The new owner is computing the row; it decides whether the
        // row gets skipped, not the fenced predecessor.
        std::lock_guard<std::mutex> lk(mu_);
        owned_.erase(key);
        return false;
    }
    // Marker first, claim second: a waiter that sees the claim vanish
    // must already be able to see why.
    const int fd = ::open(skipPath(key).c_str(),
                          O_CREAT | O_WRONLY | O_TRUNC, 0644);
    if (fd >= 0)
        ::close(fd);
    return release(key);
}

bool
ShardClaims::isSkipped(const std::string &key) const
{
    const std::string path = skipPath(key);
    const long long age = ageMs(path);
    if (age < 0)
        return false;
    if (age > staleThreshold().count()) {
        // Expired marker from an old sweep: remove it so this (and
        // every future) sweep retries the row, matching the
        // single-process policy of never persisting a failure.
        (void)::unlink(path.c_str());
        return false;
    }
    return true;
}

ShardClaims::State
ShardClaims::peek(const std::string &key) const
{
    if (isSkipped(key))
        return State::Skipped;
    const long long age = ageMs(claimPath(key));
    if (age < 0)
        return State::Absent;
    return age > staleThreshold().count() ? State::Stale
                                          : State::Active;
}

bool
ShardClaims::breakStale(const std::string &key)
{
    // Confirm staleness immediately before unlinking to narrow the
    // race with a slow-but-alive owner; if two waiters both break the
    // same claim, both compute the row — deterministic simulation and
    // the last-wins store make the duplicate harmless. The bumped
    // epoch fences the *previous* owner out of the claim either way.
    const std::string path = claimPath(key);
    if (isFresh(path))
        return false;
    if (ageMs(path) < 0)
        return false; // Vanished: owner finished after all.
    (void)::unlink(path.c_str());
    return tryAcquire(key);
}

std::size_t
sweepOrphanedEpochs(const std::string &store_path)
{
    const std::string dir = store_path + ".claims";
    DIR *d = ::opendir(dir.c_str());
    if (d == nullptr)
        return 0;
    std::size_t removed = 0;
    const char *suffix = ".epoch";
    const std::size_t suffix_len = std::strlen(suffix);
    while (struct dirent *ent = ::readdir(d)) {
        const std::string name = ent->d_name;
        if (name.size() <= suffix_len ||
            name.compare(name.size() - suffix_len, suffix_len,
                         suffix) != 0)
            continue;
        const std::string stem =
            name.substr(0, name.size() - suffix_len);
        struct stat st = {};
        if (::stat((dir + "/" + stem + ".claim").c_str(), &st) == 0)
            continue; // Live (or just-broken) claim: counter is hot.
        const std::string path = dir + "/" + name;
        const long long age = ageMs(path);
        if (age >= 0 && age > ShardClaims::staleThreshold().count()) {
            if (::unlink(path.c_str()) == 0)
                ++removed;
        }
    }
    ::closedir(d);
    return removed;
}

ClaimHeartbeater::ClaimHeartbeater(ShardClaims *claims, std::string key)
    : claims_(claims), key_(std::move(key))
{
    if (claims_ == nullptr || key_.empty())
        return;
    thread_ = std::thread([this] { run(); });
}

ClaimHeartbeater::~ClaimHeartbeater()
{
    if (!thread_.joinable())
        return;
    {
        std::lock_guard<std::mutex> lk(mu_);
        stop_ = true;
    }
    cv_.notify_all();
    thread_.join();
}

void
ClaimHeartbeater::touchWorkerHeartbeat()
{
    const char *path = std::getenv("EBM_WORKER_HEARTBEAT");
    if (path == nullptr || path[0] == '\0')
        return;
    if (::utimensat(AT_FDCWD, path, nullptr, 0) != 0 &&
        errno == ENOENT) {
        const int fd = ::open(path, O_CREAT | O_WRONLY, 0644);
        if (fd >= 0)
            ::close(fd);
    }
}

void
ClaimHeartbeater::run()
{
    // A quarter of the staleness window keeps a live owner at least
    // three missed ticks away from ever looking stale.
    const auto interval = std::max(
        ShardClaims::staleThreshold() / 4,
        std::chrono::milliseconds(10));
    std::unique_lock<std::mutex> lk(mu_);
    for (;;) {
        if (cv_.wait_for(lk, interval, [this] { return stop_; }))
            return;
        lk.unlock();
        touchWorkerHeartbeat();
        const bool ok = claims_->heartbeat(key_);
        lk.lock();
        if (!ok) {
            // Fenced: stop touching a claim that is no longer ours
            // and let the owner discover it after the run.
            fenced_.store(true, std::memory_order_relaxed);
            return;
        }
    }
}

} // namespace ebm
