/**
 * @file
 * Expected-wall-clock model for sweep rows (dispatch ordering only).
 *
 * A parallel sweep's wall clock ends with a barrier: the last row to
 * finish sets the finish line. Submitting rows longest-expected-first
 * (LPT scheduling) shrinks that straggler tail — the expensive
 * high-TLP rows start immediately instead of landing on an almost
 * drained pool.
 *
 * The model only reorders *submission*. Rows are still enumerated,
 * cache-probed, and committed in odometer order, and each row's work
 * is independent, so every result, file, and accounting total is
 * bit-identical to the serial sweep no matter what this model
 * predicts (a wrong prediction costs wall clock, never correctness).
 *
 * Cost prior: simulated work scales with how many warps are ready to
 * issue, i.e. with the sum of the combo's TLP levels, times the
 * cycles simulated. Observed per-combo wall seconds (EWMA) refine the
 * prior as the process runs.
 */
#pragma once

#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/config.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"

namespace ebm {

/** Process-wide sweep-row cost estimator. */
class SweepCostModel
{
  public:
    /**
     * Expected cost of simulating @p combo for @p run_cycles cycles,
     * in arbitrary but mutually comparable units (seconds once any
     * observation has been folded in).
     */
    double expectedCost(const TlpCombo &combo, Cycle run_cycles) const;

    /** Fold in an observed row wall clock (thread safe). */
    void observe(const TlpCombo &combo, Cycle run_cycles,
                 double seconds);

    /** Observations folded in so far (diagnostics/tests). */
    std::uint64_t observations() const;

    /** The process-wide instance. */
    static SweepCostModel &instance();

  private:
    struct ComboHash
    {
        std::size_t
        operator()(const TlpCombo &combo) const
        {
            std::uint64_t h = mix64(combo.size());
            for (const std::uint32_t v : combo)
                h = hashIds(h, v);
            return static_cast<std::size_t>(h);
        }
    };

    /** Prior cost units: (1 + sum of TLP levels) * cycles. */
    static double units(const TlpCombo &combo, Cycle run_cycles);

    mutable std::mutex mu_;
    /** EWMA of observed seconds per prior unit, per combo. */
    std::unordered_map<TlpCombo, double, ComboHash> perCombo_;
    double totalSeconds_ = 0.0;
    double totalUnits_ = 0.0;
    std::uint64_t observations_ = 0;
};

/**
 * Submission order for @p costs (indices sorted cost-descending,
 * ties broken by ascending index, so the order is deterministic).
 */
std::vector<std::size_t>
costDescendingOrder(const std::vector<double> &costs);

} // namespace ebm
