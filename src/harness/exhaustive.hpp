/**
 * @file
 * Exhaustive TLP-combination sweeps with disk-backed memoization.
 *
 * One sweep of all |levels|^n combinations yields, for a workload:
 *   - the SD-optimal combinations optWS / optFI / optHS,
 *   - the EB-optimal brute-force combinations BF-WS / BF-FI / BF-HS,
 *   - the full EB table PBS(Offline) searches over,
 *   - the iso-TLP curves of the pattern figures (Figs. 6 and 7).
 */
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "harness/disk_cache.hpp"
#include "harness/profile_db.hpp"
#include "harness/runner.hpp"
#include "workload/workload_suite.hpp"

namespace ebm {

/** All static-combination results for one workload. */
struct ComboTable
{
    std::vector<std::uint32_t> levels;    ///< Ladder per app.
    std::vector<TlpCombo> combos;         ///< Row order of results.
    std::vector<RunResult> results;       ///< One per combo.

    /** Index of @p combo in the table. */
    std::size_t indexOf(const TlpCombo &combo) const;

    /** Result for @p combo. */
    const RunResult &at(const TlpCombo &combo) const
    {
        return results[indexOf(combo)];
    }
};

/** Which metric an arg-max over a ComboTable uses. */
enum class OptTarget : std::uint8_t {
    SdWS,  ///< opt-WS  (needs alone IPCs).
    SdFI,  ///< opt-FI.
    SdHS,  ///< opt-HS.
    EbWS,  ///< BF-WS.
    EbFI,  ///< BF-FI (optionally scaled).
    EbHS,  ///< BF-HS (optionally scaled).
    SumIpc,///< Instruction-throughput argmax (Observation 2 ablation).
};

/** Exhaustive-search service. */
class Exhaustive
{
  public:
    Exhaustive(const Runner &runner, DiskCache &cache);

    /**
     * Simulate (or fetch) the full combination table for @p wl.
     *
     * @param levels TLP ladder per app; empty = the standard ladder
     */
    ComboTable sweep(const Workload &wl,
                     std::vector<std::uint32_t> levels = {});

    /**
     * Arg-max combination of @p table under @p target.
     *
     * @param alone_ipcs  per-app alone IPC at bestTLP (SD targets)
     * @param eb_scale    per-app EB scale factors (EB-FI / EB-HS);
     *                    empty = unscaled
     */
    static TlpCombo
    argmax(const ComboTable &table, OptTarget target,
           const std::vector<double> &alone_ipcs = {},
           const std::vector<double> &eb_scale = {});

    /** The metric value of @p combo under @p target (same params). */
    static double
    value(const ComboTable &table, const TlpCombo &combo,
          OptTarget target, const std::vector<double> &alone_ipcs = {},
          const std::vector<double> &eb_scale = {});

  private:
    const Runner &runner_;
    DiskCache &cache_;
};

} // namespace ebm
