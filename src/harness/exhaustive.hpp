/**
 * @file
 * Exhaustive TLP-combination sweeps with disk-backed memoization.
 *
 * One sweep of all |levels|^n combinations yields, for a workload:
 *   - the SD-optimal combinations optWS / optFI / optHS,
 *   - the EB-optimal brute-force combinations BF-WS / BF-FI / BF-HS,
 *   - the full EB table PBS(Offline) searches over,
 *   - the iso-TLP curves of the pattern figures (Figs. 6 and 7).
 */
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/config.hpp"
#include "common/rng.hpp"
#include "harness/disk_cache.hpp"
#include "harness/profile_db.hpp"
#include "harness/runner.hpp"
#include "workload/workload_suite.hpp"

namespace ebm {

/** Hash over a TLP combination (combo -> row lookups). */
struct TlpComboHash
{
    std::size_t
    operator()(const TlpCombo &combo) const
    {
        std::uint64_t h = mix64(combo.size());
        for (const std::uint32_t v : combo)
            h = hashIds(h, v);
        return static_cast<std::size_t>(h);
    }
};

/** All static-combination results for one workload. */
struct ComboTable
{
    std::vector<std::uint32_t> levels;    ///< Ladder per app.
    std::vector<TlpCombo> combos;         ///< Row order of results.
    std::vector<RunResult> results;       ///< One per combo.
    /** 1 = the combo's run failed after retries (result is zeros). */
    std::vector<std::uint8_t> skipped;

    /**
     * Index of @p combo in the table, O(1) via a combo -> row map
     * built once per table (and rebuilt automatically after rows are
     * appended). argmax/value evaluate every row through at(), so a
     * linear scan here made each sweep evaluation O(rows^2).
     */
    std::size_t indexOf(const TlpCombo &combo) const;

    /** Result for @p combo. */
    const RunResult &at(const TlpCombo &combo) const
    {
        return results[indexOf(combo)];
    }

    /** Did @p row fail after retries? */
    bool
    isSkipped(std::size_t row) const
    {
        return row < skipped.size() && skipped[row] != 0;
    }

  private:
    /** Lazily (re)built combo -> row map; rows are append-only. */
    mutable std::unordered_map<TlpCombo, std::size_t, TlpComboHash>
        rowIndex_;
};

/**
 * What happened during sweep() calls: how much was resumed from the
 * disk cache vs simulated, and whether anything was retried or
 * dropped. Benches print summaryLine() so partial tables are never
 * silent.
 */
struct SweepStatus
{
    std::size_t combos = 0;     ///< Combinations requested.
    std::size_t fromCache = 0;  ///< Resumed from the disk cache.
    std::size_t simulated = 0;  ///< Freshly simulated (and persisted).
    std::size_t fromPeers = 0;  ///< Filled by a cooperating process.
    std::size_t retried = 0;    ///< Extra attempts after failures.
    std::size_t skipped = 0;    ///< Dropped after exhausting retries.

    void
    add(const SweepStatus &other)
    {
        combos += other.combos;
        fromCache += other.fromCache;
        simulated += other.simulated;
        fromPeers += other.fromPeers;
        retried += other.retried;
        skipped += other.skipped;
    }

    /** One-line human-readable summary. */
    std::string summaryLine() const;
};

/** Which metric an arg-max over a ComboTable uses. */
enum class OptTarget : std::uint8_t {
    SdWS,  ///< opt-WS  (needs alone IPCs).
    SdFI,  ///< opt-FI.
    SdHS,  ///< opt-HS.
    EbWS,  ///< BF-WS.
    EbFI,  ///< BF-FI (optionally scaled).
    EbHS,  ///< BF-HS (optionally scaled).
    SumIpc,///< Instruction-throughput argmax (Observation 2 ablation).
};

/**
 * All |levels|^n TLP combinations in odometer order — the one row
 * order every sweep, probe, and shard-claim schedule shares.
 */
std::vector<TlpCombo>
enumerateCombos(const std::vector<std::uint32_t> &levels,
                std::uint32_t num_apps);

/** Exhaustive-search service. */
class Exhaustive
{
  public:
    Exhaustive(const Runner &runner, DiskCache &cache);

    /**
     * Simulate (or fetch) the full combination table for @p wl.
     *
     * Combinations are independent simulations, so cache misses are
     * dispatched onto a JobPool of jobs() workers, submitted
     * longest-expected-first (SweepCostModel) to shrink the straggler
     * tail at the end-of-sweep barrier; results are committed into
     * pre-assigned rows (odometer order), making the table — and,
     * because entries persist sorted, the cache file — bit-identical
     * to a serial sweep at any job count and any submission order.
     *
     * Every completed combination is persisted to the disk cache
     * as it finishes, so a killed or crashed sweep resumes from the
     * completed combinations on the next run. A combination whose run
     * fails is retried up to maxRetries() times, then recorded as
     * skipped (zero result, flagged in the table) rather than
     * aborting the whole sweep. Injected run-failure schedules are
     * pre-drawn serially in row order at dispatch, so retry/skip
     * accounting is also identical at any job count.
     *
     * With EBM_SWEEP_SHARD=1, N processes sharing the store split a
     * cold sweep through the shard-claim protocol (shard_claim.hpp):
     * each worker claims a row before simulating it, rows claimed
     * elsewhere are assembled from the shared store in odometer
     * order, and a killed peer's rows are reclaimed after its claims
     * go stale — the table, fault accounting, and compacted store
     * bytes stay identical at any (process x EBM_JOBS) combination.
     *
     * @param levels TLP ladder per app; empty = the standard ladder
     */
    ComboTable sweep(const Workload &wl,
                     std::vector<std::uint32_t> levels = {});

    /**
     * Probe-only sweep: assemble the full combination table for @p wl
     * from the disk cache *without dispatching any simulation*.
     * @return the table when every combination is present and valid,
     * nullopt otherwise (never a partial table). The advisor serving
     * daemon's hit path — a query answered in microseconds from the
     * loaded store, falling back to an async sweep() only on miss.
     */
    std::optional<ComboTable>
    sweepCached(const Workload &wl,
                std::vector<std::uint32_t> levels = {}) const;

    /** Cumulative status across every sweep() on this instance. */
    const SweepStatus &status() const { return status_; }

    /** Extra attempts per failing combination before skipping it. */
    std::uint32_t maxRetries() const { return maxRetries_; }
    void setMaxRetries(std::uint32_t retries) { maxRetries_ = retries; }

    /** Worker threads per sweep (0 = JobPool::defaultJobs()). */
    std::uint32_t jobs() const;
    void setJobs(std::uint32_t jobs) { jobs_ = jobs; }

    /**
     * Arg-max combination of @p table under @p target.
     *
     * @param alone_ipcs  per-app alone IPC at bestTLP (SD targets)
     * @param eb_scale    per-app EB scale factors (EB-FI / EB-HS);
     *                    empty = unscaled
     */
    static TlpCombo
    argmax(const ComboTable &table, OptTarget target,
           const std::vector<double> &alone_ipcs = {},
           const std::vector<double> &eb_scale = {});

    /** The metric value of @p combo under @p target (same params). */
    static double
    value(const ComboTable &table, const TlpCombo &combo,
          OptTarget target, const std::vector<double> &alone_ipcs = {},
          const std::vector<double> &eb_scale = {});

  private:
    const Runner &runner_;
    DiskCache &cache_;
    SweepStatus status_;
    std::uint32_t maxRetries_ = 2;
    std::uint32_t jobs_ = 0; ///< 0 = resolve JobPool::defaultJobs().
};

} // namespace ebm
