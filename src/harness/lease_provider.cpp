#include "harness/lease_provider.hpp"

#include <algorithm>
#include <cstdlib>

#include "common/log.hpp"
#include "harness/disk_cache.hpp"
#include "harness/lease_net.hpp"
#include "harness/shard_claim.hpp"

namespace ebm {

namespace {

/**
 * Filesystem claims behind the LeaseProvider interface: ownership
 * verbs delegate to ShardClaims (O_EXCL claim files, mtime
 * heartbeats, durable epoch sidecars), and the result transport is
 * the shared store file itself — publish() forces the covering group
 * commit, fetch() folds in peer appends and probes. This is the
 * pre-network claim protocol verbatim; the multiprocess and chaos
 * suites lock its byte behavior.
 */
class FsLeaseProvider final : public LeaseProvider
{
  public:
    explicit FsLeaseProvider(DiskCache &cache)
        : cache_(cache), claims_(cache.path())
    {
    }

    bool
    tryAcquire(const std::string &key) override
    {
        return claims_.tryAcquire(key);
    }

    bool
    heartbeat(const std::string &key) override
    {
        return claims_.heartbeat(key);
    }

    bool
    release(const std::string &key) override
    {
        return claims_.release(key);
    }

    bool
    markSkipped(const std::string &key) override
    {
        return claims_.markSkipped(key);
    }

    State
    peek(const std::string &key) override
    {
        switch (claims_.peek(key)) {
          case ShardClaims::State::Absent:
            return State::Absent;
          case ShardClaims::State::Active:
            return State::Active;
          case ShardClaims::State::Stale:
            return State::Stale;
          case ShardClaims::State::Skipped:
            break;
        }
        return State::Skipped;
    }

    bool
    breakStale(const std::string &key) override
    {
        return claims_.breakStale(key);
    }

    std::uint64_t
    ownedEpoch(const std::string &key) const override
    {
        return claims_.ownedEpoch(key);
    }

    bool
    publish(const std::string &key,
            const std::vector<double> &values) override
    {
        // The caller already put() the entry into the shared store;
        // group commit may return before the covering batch lands,
        // and peers read "lease gone" as "result durable" — so force
        // the flush here, before the caller drops the lease.
        (void)key;
        (void)values;
        cache_.sync();
        return true;
    }

    std::optional<std::vector<double>>
    fetch(const std::string &key, std::size_t expected) override
    {
        cache_.refresh();
        return cache_.getValidated(key, expected);
    }

    const char *kind() const override { return "fs"; }

  private:
    DiskCache &cache_;
    ShardClaims claims_;
};

} // namespace

std::unique_ptr<LeaseProvider>
makeLeaseProvider(DiskCache &cache)
{
    const char *coordinator = std::getenv("EBM_COORDINATOR");
    if (coordinator != nullptr && coordinator[0] != '\0') {
        auto net = NetLeaseProvider::connect(coordinator);
        if (net != nullptr)
            return net;
        warn("makeLeaseProvider: cannot reach coordinator " +
             std::string(coordinator) +
             "; sweep degrades to standalone (results stay local)");
        return nullptr;
    }
    if (ShardClaims::shardingEnabled())
        return std::make_unique<FsLeaseProvider>(cache);
    return nullptr;
}

LeaseHeartbeater::LeaseHeartbeater(LeaseProvider *lease, std::string key)
    : lease_(lease), key_(std::move(key))
{
    if (lease_ == nullptr || key_.empty())
        return;
    thread_ = std::thread([this] { run(); });
}

LeaseHeartbeater::~LeaseHeartbeater()
{
    if (!thread_.joinable())
        return;
    {
        std::lock_guard<std::mutex> lk(mu_);
        stop_ = true;
    }
    cv_.notify_all();
    thread_.join();
}

void
LeaseHeartbeater::run()
{
    // A quarter of the staleness window keeps a live owner at least
    // three missed ticks away from ever looking stale (both modes
    // share the EBM_CLAIM_STALE_MS window; the coordinator judges
    // network leases against the same knob on its own clock).
    const auto interval = std::max(
        ShardClaims::staleThreshold() / 4,
        std::chrono::milliseconds(10));
    std::unique_lock<std::mutex> lk(mu_);
    for (;;) {
        if (cv_.wait_for(lk, interval, [this] { return stop_; }))
            return;
        lk.unlock();
        ClaimHeartbeater::touchWorkerHeartbeat();
        const bool ok = lease_->heartbeat(key_);
        lk.lock();
        if (!ok) {
            // Fenced: stop renewing a lease that is no longer ours
            // and let the owner discover it after the run.
            fenced_.store(true, std::memory_order_relaxed);
            return;
        }
    }
}

} // namespace ebm
