/**
 * @file
 * The v3 binary result-store format, shared by DiskCache (load,
 * append, compact) and the store_fsck scrubber. One definition of the
 * header/frame layout and checksums guarantees the scrubber's
 * "canonical compacted re-emit" is byte-identical to
 * DiskCache::compact() for the same entry set — the invariant every
 * crash-consistency test checks with cmp, not a parser.
 *
 * Layout (documented in harness/disk_cache.hpp and DESIGN.md §8.3):
 *
 *   header (64 bytes):
 *     [ 0..7 ]  magic "EBMCBIN3"
 *     [ 8..11]  u32 format version (3)
 *     [12..15]  u32 app-catalog version at write time
 *     [16..55]  machine float-ABI fingerprint, NUL-padded
 *     [56..63]  u64 max fencing epoch under which frames were appended
 *               (0 in compacted/clean stores; see shard_claim.hpp)
 *   frame:
 *     u32 frame magic | u32 keyLen | u32 valueCount |
 *     keyLen key bytes | valueCount raw doubles | u64 checksum
 *
 * Integers and doubles are host-endian; the header fingerprint pins
 * byte order and double width, so a foreign file is rejected before
 * any frame is interpreted.
 */
#pragma once

#include <bit>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/rng.hpp"

namespace ebm::storefmt {

constexpr char kMagicV3[8] = {'E', 'B', 'M', 'C', 'B', 'I', 'N', '3'};
constexpr std::uint32_t kFormatVersionV3 = 3;
constexpr std::uint64_t kHeaderSize = 64;
constexpr std::size_t kFingerprintBytes = 40;
/** Offset of the u64 max-fencing-epoch field in the header. */
constexpr std::uint64_t kFencingEpochOffset = 56;
constexpr std::uint32_t kFrameMagic = 0x33464245u; // "EBF3", LE bytes.
constexpr std::size_t kFrameHeadBytes = 12;
constexpr std::size_t kFrameTailBytes = 8;
// Sanity bounds a valid frame header can never exceed; anything
// larger is corruption, not data.
constexpr std::uint32_t kMaxKeyBytes = 1u << 16;
constexpr std::uint32_t kMaxValueCount = 1u << 20;

/** Checksum over an entry's key and value bit patterns. */
inline std::uint64_t
entryChecksum(const std::string &key, const std::vector<double> &values)
{
    // FNV-1a over the key bytes, then every double's exact bit
    // pattern folded in through the mixer. Identical to the v2 text
    // checksum, so migrated entries re-verify without recomputation.
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (const char c : key) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ull;
    }
    for (const double v : values)
        h = hashIds(h, std::bit_cast<std::uint64_t>(v));
    return h;
}

inline void
putU32(std::string &buf, std::uint32_t v)
{
    buf.append(reinterpret_cast<const char *>(&v), sizeof v);
}

inline void
putU64(std::string &buf, std::uint64_t v)
{
    buf.append(reinterpret_cast<const char *>(&v), sizeof v);
}

/**
 * Build a v3 header for this machine.
 *
 * @param catalog_version  app-catalog version to stamp
 * @param fingerprint      DiskCache::machineFingerprint()
 * @param fencing_epoch    max fencing epoch (0 = clean/compacted)
 */
inline std::string
buildHeader(std::uint32_t catalog_version, const std::string &fingerprint,
            std::uint64_t fencing_epoch = 0)
{
    std::string h(kHeaderSize, '\0');
    std::memcpy(h.data(), kMagicV3, sizeof kMagicV3);
    const std::uint32_t fmt = kFormatVersionV3;
    std::memcpy(h.data() + 8, &fmt, sizeof fmt);
    std::memcpy(h.data() + 12, &catalog_version, sizeof catalog_version);
    std::memcpy(h.data() + 16, fingerprint.data(),
                std::min(fingerprint.size(), kFingerprintBytes - 1));
    std::memcpy(h.data() + kFencingEpochOffset, &fencing_epoch,
                sizeof fencing_epoch);
    return h;
}

/** Append one CRC-framed record to @p buf. */
inline void
appendFrame(std::string &buf, const std::string &key,
            const std::vector<double> &values)
{
    putU32(buf, kFrameMagic);
    putU32(buf, static_cast<std::uint32_t>(key.size()));
    putU32(buf, static_cast<std::uint32_t>(values.size()));
    buf.append(key);
    buf.append(reinterpret_cast<const char *>(values.data()),
               values.size() * sizeof(double));
    putU64(buf, entryChecksum(key, values));
}

/** How a single frame parse ended. */
enum class FrameParse : std::uint8_t {
    Ok,   ///< A whole valid frame; @p out is filled.
    Torn, ///< The frame is cut off by the end of the region.
    Bad,  ///< Complete bytes that are not a valid frame (corruption).
};

/** One parsed frame. */
struct Frame
{
    std::string key;
    std::vector<double> values;
    std::size_t bytes = 0; ///< Whole frame size on disk.
};

/**
 * Try to parse one frame at @p data[@p off], bounded by @p end.
 * On Ok, @p out holds the record and its on-disk size.
 */
inline FrameParse
parseFrameAt(const char *data, std::size_t off, std::size_t end,
             Frame &out)
{
    if (end - off < kFrameHeadBytes)
        return FrameParse::Torn;
    std::uint32_t magic, key_len, value_count;
    std::memcpy(&magic, data + off, sizeof magic);
    std::memcpy(&key_len, data + off + 4, sizeof key_len);
    std::memcpy(&value_count, data + off + 8, sizeof value_count);
    if (magic != kFrameMagic || key_len == 0 || key_len > kMaxKeyBytes ||
        value_count > kMaxValueCount) {
        // A torn append only ever cuts a frame short; a complete
        // 12-byte head with impossible fields is corruption.
        return FrameParse::Bad;
    }
    const std::size_t need = kFrameHeadBytes + key_len +
                             value_count * sizeof(double) +
                             kFrameTailBytes;
    if (end - off < need)
        return FrameParse::Torn;
    out.key.assign(data + off + kFrameHeadBytes, key_len);
    out.values.resize(value_count);
    std::memcpy(out.values.data(), data + off + kFrameHeadBytes + key_len,
                value_count * sizeof(double));
    std::uint64_t stored_sum = 0;
    std::memcpy(&stored_sum, data + off + need - kFrameTailBytes,
                sizeof stored_sum);
    if (entryChecksum(out.key, out.values) != stored_sum) {
        // A bad checksum on the final frame is a garbled tail write;
        // the caller decides torn-vs-corrupt from the position.
        return off + need == end ? FrameParse::Torn : FrameParse::Bad;
    }
    out.bytes = need;
    return FrameParse::Ok;
}

/** Parsed header fields (validation is the caller's policy). */
struct Header
{
    bool magicOk = false;
    std::uint32_t formatVersion = 0;
    std::uint32_t catalogVersion = 0;
    std::string fingerprint;
    std::uint64_t fencingEpoch = 0;
};

/** Parse the 64-byte header at @p data (requires kHeaderSize bytes). */
inline Header
parseHeader(const char *data)
{
    Header h;
    h.magicOk = std::memcmp(data, kMagicV3, sizeof kMagicV3) == 0;
    std::memcpy(&h.formatVersion, data + 8, sizeof h.formatVersion);
    std::memcpy(&h.catalogVersion, data + 12, sizeof h.catalogVersion);
    char fp[kFingerprintBytes] = {};
    std::memcpy(fp, data + 16, kFingerprintBytes);
    fp[kFingerprintBytes - 1] = '\0';
    h.fingerprint = fp;
    std::memcpy(&h.fencingEpoch, data + kFencingEpochOffset,
                sizeof h.fencingEpoch);
    return h;
}

} // namespace ebm::storefmt
