/**
 * @file
 * The advisor serving daemon's core: answer "given applications
 * {A, B}, which TLP combination should they run at?" queries against
 * the compacted v3 store, in two tiers:
 *
 *   - **hit path** (microseconds): the pair's full combination table
 *     and both alone profiles are assembled from the loaded DiskCache
 *     via the probe-only `Exhaustive::sweepCached` /
 *     `ProfileDb::profileCached`, the three SD argmaxes (WS/FI/HS)
 *     computed once, and the finished Answer memoized so repeats are
 *     one map lookup;
 *
 *   - **miss path** (asynchronous): the query is deduplicated against
 *     in-flight fills (single-flight — N clients hammering the same
 *     cold pair dispatch exactly one simulation) and enqueued to a
 *     background fill thread that drives the ordinary
 *     `ProfileDb::profile` + `Exhaustive::sweep` machinery, JobPool
 *     parallelism, disk persistence, shard claims and all — so a
 *     co-resident sweep worker (EBM_SWEEP_SHARD=1) and the daemon
 *     never double-simulate a row. The caller gets a ticket to poll,
 *     or blocks on the fill up to a deadline.
 *
 * AdvisorServer wraps the service in a Unix-domain-socket front door
 * speaking the CRC-framed text protocol of serve_protocol.hpp.
 */
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/net.hpp"
#include "common/stats.hpp"
#include "harness/exhaustive.hpp"
#include "harness/profile_db.hpp"
#include "harness/runner.hpp"
#include "harness/serve_protocol.hpp"

namespace ebm {

/** Objective a serving query optimizes (the three SD argmaxes). */
enum class ServeObjective : std::uint8_t { WS, FI, HS };

/** Wire name of @p o ("WS" / "FI" / "HS"). */
const char *serveObjectiveName(ServeObjective o);

/** Parse a wire objective token; nullopt on anything else. */
std::optional<ServeObjective> parseServeObjective(const std::string &s);

/** Cache-hit/miss advisory service over a Runner + DiskCache. */
class AdvisorService
{
  public:
    /**
     * Service knobs. Value-initialized defaults (no member
     * initializers: the constructor's `= Options()` default argument
     * must not need them before the enclosing class is complete).
     */
    struct Options
    {
        /** TLP ladder per sweep; empty = the standard 8-level ladder. */
        std::vector<std::uint32_t> levels;
        /** Worker threads inside one miss fill; 0 = defaultJobs(). */
        std::uint32_t fillJobs;
    };

    /** One objective's answer: the combo to run and its SD scores. */
    struct Choice
    {
        TlpCombo tlp;      ///< Warps/scheduler per app, canonical order.
        double ws = 0.0;   ///< Weighted speedup of this combo.
        double fi = 0.0;   ///< Fairness index of this combo.
        double hs = 0.0;   ///< Harmonic speedup of this combo.

        double
        score(ServeObjective o) const
        {
            switch (o) {
              case ServeObjective::FI: return fi;
              case ServeObjective::HS: return hs;
              default: return ws;
            }
        }
    };

    /** Where an answer came from (reported to clients / stats). */
    enum class Source : std::uint8_t {
        Memo,  ///< Previously assembled, one map lookup.
        Store, ///< Assembled from the disk cache on this request.
        Fresh, ///< Simulated by the fill thread for this request.
    };

    /** A fully computed answer for one (canonical) pair. */
    struct Answer
    {
        std::string pair;               ///< Canonical name "A_B", A<B.
        std::vector<std::string> apps;  ///< Canonical (sorted) order.
        Choice ws, fi, hs;              ///< Best combo per objective.
        std::vector<std::uint32_t> bestAloneTlp; ///< Per app.
        Source source = Source::Memo;

        const Choice &
        forObjective(ServeObjective o) const
        {
            switch (o) {
              case ServeObjective::FI: return fi;
              case ServeObjective::HS: return hs;
              default: return ws;
            }
        }
    };

    enum class State : std::uint8_t { Ready, Pending, Failed };

    /** Outcome of advise()/poll(). */
    struct QueryResult
    {
        State state = State::Failed;
        Answer answer;              ///< Valid when Ready.
        std::uint64_t ticket = 0;   ///< Valid when Pending.
        Error error{Errc::Internal, ""}; ///< Valid when Failed.
    };

    /** Serving counters + latency percentiles (the STATS verb). */
    struct Stats
    {
        std::uint64_t requests = 0;  ///< advise() calls.
        std::uint64_t hits = 0;      ///< Served from memo or store.
        std::uint64_t misses = 0;    ///< Needed a fill dispatch.
        std::uint64_t joined = 0;    ///< Deduped onto an in-flight fill.
        std::uint64_t inflight = 0;  ///< Fills queued or running now.
        std::uint64_t fillsDispatched = 0;
        std::uint64_t fillsCompleted = 0;
        std::uint64_t fillsFailed = 0;
        /** Warm-checkpoint forks served from the process-wide
         *  WarmStateCache during fills (a cold what-if query whose
         *  warmup prefix was already simulated starts from the stored
         *  fork instead of a cold boot). */
        std::uint64_t snapshotHits = 0;
        /** Warm-checkpoint captures computed during fills (first run
         *  of a shape, or the cache was disabled/evicted). */
        std::uint64_t snapshotMisses = 0;
        std::uint64_t latencySamples = 0; ///< Framed requests timed.
        double p50us = 0.0, p90us = 0.0, p99us = 0.0;
    };

    /**
     * @param runner shared-run runner whose fingerprint keys the store
     * @param cache  the loaded v3 store (hits) and fill sink (misses)
     */
    AdvisorService(const Runner &runner, DiskCache &cache,
                   Options opts = Options());
    ~AdvisorService();

    AdvisorService(const AdvisorService &) = delete;
    AdvisorService &operator=(const AdvisorService &) = delete;

    /**
     * Answer for the pair {a, b} (order-insensitive: the pair is
     * canonicalized by sorting, so ADVISE B A hits the same store
     * rows and memo entry as ADVISE A B).
     *
     * @param wait_ms on a miss, block up to this long for the fill;
     *                0 = return Pending immediately with a ticket
     */
    QueryResult advise(const std::string &a, const std::string &b,
                       std::uint32_t wait_ms = 0);

    /** Re-check a Pending ticket (Failed on an unknown ticket). */
    QueryResult poll(std::uint64_t ticket);

    /** Snapshot the serving counters. */
    Stats stats() const;

    /** Record one framed-request service latency (server calls this). */
    void recordRequestLatency(std::uint64_t ns)
    {
        latency_.record(ns);
    }

    /** Block until no fill is queued or running (tests, shutdown). */
    void drainFills();

  private:
    struct TicketState
    {
        std::string pair;            ///< Canonical pair name.
        State state = State::Pending;
        Error error{Errc::Internal, ""};
    };

    QueryResult adviseCanonical(const std::string &a,
                                const std::string &b,
                                std::uint32_t wait_ms);
    /** Probe-only assembly from memo/profiles/store. No simulation. */
    std::optional<Answer> tryAnswerFromStore(const Workload &wl);
    /** Build an Answer from a complete table + profiles. */
    Answer assemble(const Workload &wl, const ComboTable &table,
                    const std::vector<AppAloneProfile> &profs) const;
    void fillLoop();
    QueryResult readyResult(Answer answer) const;

    const Runner &runner_;
    DiskCache &cache_;
    Options opts_;

    mutable std::mutex mu_;
    std::condition_variable fillDone_;   ///< A ticket resolved.
    std::condition_variable fillQueued_; ///< Work for the fill thread.
    std::map<std::string, Answer> memo_;          ///< pair -> answer.
    std::map<std::string, std::uint64_t> inflight_; ///< pair -> ticket.
    std::map<std::uint64_t, TicketState> tickets_;
    std::deque<Workload> fillQueue_;     ///< Canonical pairs to fill.
    std::uint64_t nextTicket_ = 1;
    bool stopping_ = false;

    /**
     * Probe-side ProfileDb/Exhaustive, used only through their const
     * probe-only methods (profileCached/sweepCached) by concurrent
     * request threads: their memo maps are never populated, so every
     * probe goes to the DiskCache, which is internally synchronized.
     */
    const ProfileDb probeProfiles_;
    const Exhaustive probe_;

    /**
     * Fill-side ProfileDb/Exhaustive. All fills run on the single
     * fill thread (ProfileDb's memo map is not thread-safe); each
     * fill is internally parallel through the sweep's own JobPool.
     */
    ProfileDb profiles_;
    Exhaustive exhaustive_;
    std::thread fillThread_;

    // Counters (under mu_ except the histogram, which is lock-free).
    Stats counters_;
    LatencyHistogram latency_;
};

/** Unix-domain-socket front door for an AdvisorService. */
class AdvisorServer
{
  public:
    struct Options
    {
        std::string socketPath;  ///< Required: where to listen.
        /** Objective used when a request names none. */
        ServeObjective defaultObjective = ServeObjective::WS;
        /** Honour the SHUTDOWN verb (daemons yes, tests maybe not). */
        bool allowRemoteShutdown = true;
        /** Most apps accepted by one PAIR request. */
        std::uint32_t maxPairApps = 8;
        /** Longest WAIT a client may request, ms. */
        std::uint32_t maxWaitMs = 10 * 60 * 1000;
    };

    AdvisorServer(AdvisorService &service, Options opts);
    ~AdvisorServer();

    AdvisorServer(const AdvisorServer &) = delete;
    AdvisorServer &operator=(const AdvisorServer &) = delete;

    /** Bind the socket and start accepting. */
    Status start();

    /** Stop accepting, shut down live connections, join threads. */
    void stop();

    /** Block until a client's SHUTDOWN verb (or stop()). */
    void waitShutdownRequested();

    bool shutdownRequested() const;
    const std::string &socketPath() const { return opts_.socketPath; }

    /**
     * Answer one request payload (exposed for tests: the wire layers
     * above and below this are exercised separately).
     */
    std::string handleRequest(const std::string &payload);

  private:
    void acceptLoop();
    void serveConnection(int fd);
    std::string handleAdvise(const std::vector<std::string> &toks);
    std::string handlePair(const std::vector<std::string> &toks);
    std::string handlePoll(const std::vector<std::string> &toks);
    std::string handleStats();
    /**
     * Parse the trailing [OBJ <o>] [WAIT <ms>] options of a query.
     * @return error reply on malformed options, nullopt when parsed.
     */
    std::optional<std::string>
    parseQueryOpts(const std::vector<std::string> &toks,
                   std::size_t first, ServeObjective &obj,
                   std::uint32_t &wait_ms) const;

    AdvisorService &service_;
    Options opts_;

    UniqueFd listenFd_;
    std::thread acceptThread_;

    mutable std::mutex mu_;
    std::condition_variable shutdownCv_;
    bool stopping_ = false;
    bool shutdownRequested_ = false;
    std::vector<std::thread> connThreads_;
    std::set<int> liveConnFds_;
};

} // namespace ebm
