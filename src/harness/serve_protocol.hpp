/**
 * @file
 * Wire protocol of the advisor serving daemon (`ebm-advised`): single-
 * line text verbs carried in EBS1 frames (common/wire.hpp — the one
 * shared framing implementation, also used by the distributed sweep
 * fabric and the serving benches).
 *
 * Payloads are single-line UTF-8 text, one request or response per
 * frame:
 *
 *   requests:   PING
 *               STATS
 *               SHUTDOWN
 *               ADVISE <APP> <APP> [OBJ WS|FI|HS] [WAIT <ms>]
 *               PAIR <APP> <APP> <APP>... [OBJ ...] [WAIT <ms>]
 *               POLL <ticket>
 *   responses:  OK <verb-specific fields>
 *               PENDING ticket=<id> ...
 *               ERROR <code> <message>
 *
 * The servefmt names below are aliases into ebm::wire, kept so the
 * daemon, its clients, and their tests read as one protocol layer
 * (and so existing includes keep compiling unchanged).
 */
#pragma once

#include "common/wire.hpp"

namespace ebm::servefmt {

using wire::kFrameMagic;
using wire::kFrameHeadBytes;
using wire::kFrameTailBytes;
using wire::kMaxPayloadBytes;

using wire::payloadChecksum;
using wire::encodeFrame;
using wire::FrameReader;
using wire::sendFrame;
using wire::recvFrame;
using wire::splitTokens;

} // namespace ebm::servefmt
