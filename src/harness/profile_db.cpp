#include "harness/profile_db.hpp"

#include <algorithm>
#include <chrono>
#include <mutex>
#include <optional>
#include <thread>

#include "common/job_pool.hpp"
#include "common/log.hpp"
#include "harness/cost_model.hpp"
#include "harness/lease_provider.hpp"
#include "harness/shard_claim.hpp"

namespace ebm {

ProfileDb::ProfileDb(const Runner &runner, DiskCache &cache)
    : runner_(runner), cache_(cache)
{
}

std::uint32_t
ProfileDb::jobs() const
{
    return jobs_ != 0 ? jobs_ : JobPool::defaultJobs();
}

namespace {

/** Fill bestTlp/ipcAtBest/ebAtBest from a fully populated ladder. */
void
finalizeBest(AppAloneProfile &prof)
{
    std::size_t best = 0;
    for (std::size_t i = 1; i < prof.perLevel.size(); ++i) {
        if (prof.perLevel[i].ipc > prof.perLevel[best].ipc)
            best = i;
    }
    prof.bestTlp = prof.levels[best];
    prof.ipcAtBest = prof.perLevel[best].ipc;
    prof.ebAtBest = prof.perLevel[best].eb();
}

} // namespace

std::optional<AppAloneProfile>
ProfileDb::profileCached(const AppProfile &app) const
{
    const auto it = profiles_.find(app.name);
    if (it != profiles_.end())
        return it->second;

    AppAloneProfile prof;
    prof.name = app.name;
    prof.levels = GpuConfig::tlpLevels();
    prof.perLevel.resize(prof.levels.size());
    for (std::size_t i = 0; i < prof.levels.size(); ++i) {
        const auto cached = cache_.getValidated(
            runner_.aloneKey(app.name, prof.levels[i]), 4);
        if (!cached)
            return std::nullopt;
        prof.perLevel[i].ipc = (*cached)[0];
        prof.perLevel[i].bw = (*cached)[1];
        prof.perLevel[i].l1Mr = (*cached)[2];
        prof.perLevel[i].l2Mr = (*cached)[3];
    }
    finalizeBest(prof);
    return prof;
}

const AppAloneProfile &
ProfileDb::profile(const AppProfile &app)
{
    auto it = profiles_.find(app.name);
    if (it != profiles_.end())
        return it->second;

    AppAloneProfile prof;
    prof.name = app.name;
    prof.levels = GpuConfig::tlpLevels();
    prof.perLevel.resize(prof.levels.size());

    // Cross-process sharding: levels are leased at dispatch like
    // sweep rows (EBM_SWEEP_SHARD for filesystem claims,
    // EBM_COORDINATOR for network leases). An armed fault injector
    // keeps the pass serial *and* unsharded — its query order is part
    // of the documented fault schedule and must not depend on which
    // process wins a lease.
    std::unique_ptr<LeaseProvider> lease;
    if (runner_.options().faultInjector == nullptr)
        lease = makeLeaseProvider(cache_);

    // Serial pass in level order: cache probes (and their warnings)
    // happen in the same order at any job count; misses become tasks.
    std::vector<std::size_t> misses;
    std::vector<std::string> keys(prof.levels.size());
    for (std::size_t i = 0; i < prof.levels.size(); ++i) {
        keys[i] = runner_.aloneKey(app.name, prof.levels[i]);
        // A wrong-shape or non-finite entry is treated as a miss
        // (recompute), not a crash: the cache is an accelerator,
        // never a point of failure.
        if (const auto cached = cache_.getValidated(keys[i], 4)) {
            const auto &v = *cached;
            prof.perLevel[i].ipc = v[0];
            prof.perLevel[i].bw = v[1];
            prof.perLevel[i].l1Mr = v[2];
            prof.perLevel[i].l2Mr = v[3];
        } else {
            misses.push_back(i);
        }
    }

    // Simulate the missing levels — independent solo runs committed
    // into pre-assigned slots, so the profile is identical at any job
    // count. An armed fault injector keeps the pass serial: its query
    // order is part of the documented fault schedule.
    const Cycle run_cycles = runner_.options().warmupCycles +
                             runner_.options().measureCycles;
    auto simulateLevel = [&](std::size_t i) {
        // In-run heartbeat: an alone run longer than the staleness
        // window must not look abandoned to peers
        // (lease_provider.hpp).
        std::optional<LeaseHeartbeater> beat;
        if (lease)
            beat.emplace(lease.get(), keys[i]);
        const auto t0 = std::chrono::steady_clock::now();
        const RunResult r = runner_.runAlone(app, prof.levels[i]);
        const std::chrono::duration<double> dt =
            std::chrono::steady_clock::now() - t0;
        SweepCostModel::instance().observe({prof.levels[i]},
                                           run_cycles, dt.count());
        const AppRunStats stats = r.apps.at(0);
        cache_.put(keys[i],
                   {stats.ipc, stats.bw, stats.l1Mr, stats.l2Mr});
        prof.perLevel[i] = stats;
        if (lease) {
            // Publish before dropping the lease; peers read "lease
            // gone" as "result durable" (group commit in filesystem
            // mode, record stream to the coordinator in network
            // mode).
            lease->publish(keys[i],
                           {stats.ipc, stats.bw, stats.l1Mr,
                            stats.l2Mr});
            const bool was_fenced = beat->fenced();
            beat.reset();
            if (was_fenced || !lease->release(keys[i])) {
                warn("ProfileDb: fenced while computing " + keys[i] +
                     "; result kept as a duplicate");
            }
        }
    };

    // Header echo for takeover epochs, as in Exhaustive::sweep.
    auto noteEpoch = [&](std::size_t i) {
        const std::uint64_t epoch = lease->ownedEpoch(keys[i]);
        if (epoch > 1)
            cache_.noteFencingEpoch(epoch);
    };

    // Fold in a level a cooperating process finished since our probe
    // pass (its lease is already released, so only the authoritative
    // store can tell "done" from "never started").
    auto probePeer = [&](std::size_t i) {
        const auto v = lease->fetch(keys[i], 4);
        if (!v)
            return false;
        prof.perLevel[i].ipc = (*v)[0];
        prof.perLevel[i].bw = (*v)[1];
        prof.perLevel[i].l1Mr = (*v)[2];
        prof.perLevel[i].l2Mr = (*v)[3];
        return true;
    };

    // Dispatch gate, as in Exhaustive::sweep: re-probe the store,
    // claim the level right before simulating it, then re-probe once
    // more (the owner may have released — result durable — between
    // probe and acquisition); levels cooperating processes still hold
    // are assembled from the shared store afterwards.
    std::vector<std::size_t> deferred;
    std::mutex deferred_mu;
    auto runLevel = [&](std::size_t i) {
        ClaimHeartbeater::touchWorkerHeartbeat();
        if (lease) {
            if (probePeer(i))
                return;
            if (!lease->tryAcquire(keys[i])) {
                std::lock_guard<std::mutex> lk(deferred_mu);
                deferred.push_back(i);
                return;
            }
            noteEpoch(i);
            if (probePeer(i)) {
                lease->release(keys[i]);
                return;
            }
        }
        simulateLevel(i);
    };

    // Longest-expected-first submission, exactly like
    // Exhaustive::sweep: slots were pre-assigned in level order above,
    // so the profile (and the cache file) is order-independent. An
    // armed fault injector pins the historical level order instead —
    // its query sequence is part of the documented fault schedule and
    // must not depend on cost predictions.
    std::vector<std::size_t> order;
    if (runner_.options().faultInjector != nullptr) {
        order.resize(misses.size());
        for (std::size_t m = 0; m < misses.size(); ++m)
            order[m] = m;
    } else {
        std::vector<double> costs(misses.size());
        for (std::size_t m = 0; m < misses.size(); ++m) {
            costs[m] = SweepCostModel::instance().expectedCost(
                {prof.levels[misses[m]]}, run_cycles);
        }
        order = costDescendingOrder(costs);
    }

    const std::size_t workers = std::min<std::size_t>(
        runner_.options().faultInjector != nullptr ? 1 : jobs(),
        misses.size());
    if (workers <= 1) {
        for (const std::size_t m : order)
            runLevel(misses[m]);
    } else {
        JobPool pool(static_cast<unsigned>(workers));
        for (const std::size_t m : order)
            pool.submit([&runLevel, i = misses[m]] { runLevel(i); });
        pool.wait();
    }

    // Wait phase (sharding only), in level order: a finished peer's
    // result appears on the next fetch, a killed peer's lease goes
    // stale and is taken over. Alone runs have no skip path — a
    // failure throws — so there is no skip marker to replicate here.
    std::sort(deferred.begin(), deferred.end());
    for (const std::size_t i : deferred) {
        for (bool waiting = true; waiting;) {
            if (probePeer(i))
                break;
            switch (lease->peek(keys[i])) {
              case LeaseProvider::State::Absent:
                if (lease->tryAcquire(keys[i])) {
                    noteEpoch(i);
                    if (!probePeer(i))
                        simulateLevel(i);
                    else
                        lease->release(keys[i]);
                    waiting = false;
                }
                break;
              case LeaseProvider::State::Stale:
                if (lease->breakStale(keys[i])) {
                    noteEpoch(i);
                    if (!probePeer(i))
                        simulateLevel(i);
                    else
                        lease->release(keys[i]);
                    waiting = false;
                }
                break;
              default:
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(2));
                break;
            }
        }
    }

    finalizeBest(prof);

    auto [ins, ok] = profiles_.emplace(app.name, std::move(prof));
    (void)ok;
    return ins->second;
}

std::vector<double>
ProfileDb::assignGroups(const std::vector<AppProfile> &apps)
{
    // Quartile split by alone EB at bestTLP (the paper's Table IV
    // groups applications G1..G4 by their individual EB values).
    std::vector<std::pair<double, std::string>> ebs;
    for (const AppProfile &app : apps)
        ebs.emplace_back(profile(app).ebAtBest, app.name);
    std::sort(ebs.begin(), ebs.end());

    groupMeans_.assign(5, 0.0);
    std::vector<std::uint32_t> counts(5, 0);
    const std::size_t n = ebs.size();
    for (std::size_t i = 0; i < n; ++i) {
        const auto group =
            static_cast<std::uint32_t>(1 + (i * 4) / std::max<std::size_t>(n, 1));
        const std::uint32_t g = std::min(group, 4u);
        profiles_[ebs[i].second].group = g;
        groupMeans_[g] += ebs[i].first;
        ++counts[g];
    }
    for (std::uint32_t g = 1; g <= 4; ++g) {
        if (counts[g] > 0)
            groupMeans_[g] /= counts[g];
    }
    return groupMeans_;
}

double
ProfileDb::groupScale(const std::string &app_name) const
{
    const auto it = profiles_.find(app_name);
    if (it == profiles_.end() || it->second.group == 0)
        fatal("ProfileDb: groupScale before assignGroups for " +
              app_name);
    return groupMeans_[it->second.group];
}

} // namespace ebm
