#include "harness/experiment.hpp"

#include <cmath>

#include "common/log.hpp"
#include "workload/app_catalog.hpp"

namespace ebm {

GpuConfig
Experiment::standardConfig(std::uint32_t num_apps)
{
    // Defaults are the DESIGN.md scaled Table I machine; the core
    // count is trimmed to the nearest multiple of the app count so
    // the equal static partition is exact (e.g. 15 cores for 3 apps).
    GpuConfig cfg;
    cfg.numApps = num_apps;
    cfg.numCores -= cfg.numCores % std::max(1u, num_apps);
    return cfg;
}

RunOptions
Experiment::standardOptions()
{
    RunOptions opts;
    opts.warmupCycles = 5000;
    opts.measureCycles = 30000;
    opts.windowCycles = 1500;
    return opts;
}

RunOptions
Experiment::onlineOptions()
{
    RunOptions opts;
    opts.warmupCycles = 5000;
    opts.measureCycles = 200'000;
    opts.windowCycles = 1000;
    return opts;
}

Experiment::Experiment(std::uint32_t num_apps,
                       const std::string &cache_path)
    : cache_(cache_path.empty() ? DiskCache::defaultPath()
                                : cache_path),
      runner_(standardConfig(num_apps), standardOptions()),
      onlineRunner_(standardConfig(num_apps), onlineOptions()),
      profiles_(runner_, cache_),
      exhaustive_(runner_, cache_)
{
}

Experiment::~Experiment()
{
    // Fold in everything cooperating processes appended, then rewrite
    // sorted: every process that finishes a shared sweep leaves the
    // same canonical bytes, whichever one exits last.
    if (envFlag("EBM_CACHE_COMPACT", false)) {
        cache_.refresh();
        cache_.compact();
    }
}

void
Experiment::setJobs(std::uint32_t jobs)
{
    exhaustive_.setJobs(jobs);
    profiles_.setJobs(jobs);
}

std::uint32_t
Experiment::jobs() const
{
    return exhaustive_.jobs();
}

std::vector<double>
Experiment::aloneIpcs(const Workload &wl)
{
    std::vector<double> out;
    for (const AppProfile &app : resolveApps(wl))
        out.push_back(profiles_.profile(app).ipcAtBest);
    return out;
}

std::vector<double>
Experiment::aloneEbs(const Workload &wl)
{
    std::vector<double> out;
    for (const AppProfile &app : resolveApps(wl))
        out.push_back(profiles_.profile(app).ebAtBest);
    return out;
}

TlpCombo
Experiment::bestTlpCombo(const Workload &wl)
{
    TlpCombo combo;
    for (const AppProfile &app : resolveApps(wl))
        combo.push_back(profiles_.profile(app).bestTlp);
    return combo;
}

SdScores
Experiment::score(const Workload &wl, const RunResult &result)
{
    const std::vector<double> alone = aloneIpcs(wl);
    SdScores scores;
    for (std::size_t a = 0; a < result.apps.size(); ++a)
        scores.sds.push_back(slowdown(result.apps[a].ipc, alone[a]));
    scores.ws = weightedSpeedup(scores.sds);
    scores.fi = fairnessIndex(scores.sds);
    scores.hs = harmonicSpeedup(scores.sds);
    return scores;
}

TlpCombo
Experiment::pbsOffline(const ComboTable &table, EbObjective objective,
                       ScalingMode scaling,
                       const std::vector<double> &user_scale,
                       std::uint32_t *samples_out)
{
    const auto num_apps =
        static_cast<std::uint32_t>(table.combos.front().size());
    PbsSearch search(objective, num_apps, table.levels, scaling,
                     user_scale);
    while (!search.done()) {
        const auto combo = search.nextCombo();
        if (!combo)
            panic("pbsOffline: planner stuck");
        const RunResult &r = table.at(*combo);
        EbSample sample;
        sample.apps = r.apps;
        sample.totalBw = r.totalBw;
        sample.tlp = *combo;
        search.observe(sample);
    }
    if (samples_out != nullptr)
        *samples_out = search.samplesTaken();
    return search.best();
}

double
gmean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double v : values) {
        if (v <= 0.0)
            fatal("gmean: non-positive value");
        log_sum += std::log(v);
    }
    return std::exp(log_sum / static_cast<double>(values.size()));
}

} // namespace ebm
