/**
 * @file
 * Offline scrub/repair for v3 binary result stores (store_fsck).
 *
 * DiskCache's own corruption policy is deliberately blunt — it runs
 * at startup on a store it is about to trust, so a torn tail is
 * truncated and *anything* else quarantines the whole file and
 * recomputes. That is correct online behavior, but it throws away
 * every valid frame that happens to live after the first bad byte.
 * store_fsck is the offline counterpart with time to be thorough:
 *
 *   1. validate the header (magic, format version, machine
 *      fingerprint) and report its catalog version / fencing epoch;
 *   2. walk every frame, checking structure and checksums;
 *   3. on a bad frame, *resync*: scan forward for the next byte
 *      offset that parses as a valid frame and continue from there,
 *      so one flipped byte costs one frame, not the rest of the file;
 *   4. quarantine the skipped byte ranges to `<path>.fsck-quarantine`
 *      (raw bytes, for forensics) instead of deleting evidence;
 *   5. with repair enabled, re-emit the canonical compacted store —
 *      sorted by key, last frame wins, epoch field zeroed — via an
 *      atomic tmp+fsync+rename, using the same store_format.hpp code
 *      path as DiskCache::compact(), so a repaired store is
 *      byte-identical to what a clean sweep would have compacted to
 *      for the surviving entry set.
 *
 * Verdicts: Clean (nothing wrong, file untouched), Dirty (issues
 * found; repairable — file untouched without repair, rewritten with
 * it), Unrecoverable (header unusable: wrong magic/version/machine —
 * no frame can be trusted, nothing is rewritten).
 */
#pragma once

#include <cstdint>
#include <string>

namespace ebm {

/** What a scrub pass found (and did) to one store file. */
struct FsckReport
{
    enum class Verdict : std::uint8_t {
        Clean,         ///< Valid header, every frame intact.
        Dirty,         ///< Bad frames / torn tail; valid frames kept.
        Unrecoverable, ///< Header unusable; nothing to salvage.
    };

    Verdict verdict = Verdict::Unrecoverable;
    bool headerOk = false;
    std::uint32_t catalogVersion = 0;
    std::uint64_t fencingEpoch = 0; ///< As read from the header.

    std::size_t framesOk = 0;       ///< Valid frames (incl. dups).
    std::size_t uniqueKeys = 0;     ///< Entries after last-wins.
    std::size_t duplicateKeys = 0;  ///< Superseded frames.
    std::size_t badRegions = 0;     ///< Corrupt runs skipped by resync.
    std::uint64_t bytesQuarantined = 0;
    bool tornTail = false;          ///< Incomplete final frame.

    bool repaired = false;          ///< Canonical rewrite performed.
    /** Orphaned `<keyfp>.epoch` sidecars swept from the claim dir
     * (repair mode only; see sweepOrphanedEpochs). */
    std::size_t orphanedEpochsRemoved = 0;
    std::string quarantinePath;     ///< Written when bytes were bad.
    std::string error;              ///< I/O-level failure, if any.

    std::string summaryLine() const;
};

/** Scrub options. */
struct FsckOptions
{
    /** Rewrite the store canonically when issues are found (a Clean
     * store is never rewritten — its bytes are already canonical or
     * legitimately append-ordered). */
    bool repair = false;
    /** Where skipped bad bytes go; empty = `<path>.fsck-quarantine`. */
    std::string quarantinePath;
};

/**
 * Scrub (and optionally repair) the store at @p path.
 * Missing file is Unrecoverable with an error set.
 */
FsckReport fsckStore(const std::string &path,
                     const FsckOptions &options = {});

/**
 * Write a deliberately corrupted store fixture at @p path for CI and
 * tests: a valid header, several valid frames, a flipped-byte corrupt
 * region mid-file, more valid frames after it, and a torn final
 * frame. @return true on success. The fixture is deterministic — same
 * bytes every call — so tests can assert exact scrub counts.
 */
bool writeFsckFixture(const std::string &path);

} // namespace ebm
