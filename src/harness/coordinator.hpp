/**
 * @file
 * The sweep coordinator: the network half of the distributed sweep
 * fabric (DESIGN.md §8.6). One Coordinator owns a v3 result store and
 * hands out row leases over TCP; ebm_sweep_worker processes
 * (EBM_COORDINATOR=host:port, harness/lease_net.hpp) run the ordinary
 * dispatch loop against leased rows and stream CRC-framed v3 records
 * back, which the coordinator group-commits through its own DiskCache
 * writer — so `compact()` byte-identity stays the merge invariant
 * across machines exactly as it is across processes on one
 * filesystem.
 *
 * Protocol: EBS1 frames (common/wire.hpp), one request/response pair
 * per frame. Text verbs, with the record stream carrying raw storefmt
 * frame bytes after the verb line:
 *
 *   HELLO <fingerprint> <catalogVersion>  -> OK <staleMs> | ERROR ...
 *   ACQ <key>            -> OK <epoch> | HELD | SKIP
 *   HB <epoch> <key>     -> OK | FENCED
 *   REL <epoch> <key>    -> OK | FENCED      (store synced first)
 *   SKIPMARK <epoch> <key> -> OK | FENCED
 *   PEEK <key>           -> ABSENT | ACTIVE | STALE | SKIP
 *   BREAK <key>          -> OK <epoch> | DENIED
 *   GET <key>            -> HIT\n<storefmt frame> | MISS
 *   PUT\n<storefmt frame> -> OK | ERROR ...
 *   PING / STATS / SHUTDOWN -> OK ...
 *
 * Fencing over TCP: the coordinator is the single authority for
 * per-key epochs (replacing the durable `<keyfp>.epoch` sidecars),
 * heartbeats are RPCs timestamped on the coordinator's clock, and
 * staleness is judged against the same EBM_CLAIM_STALE_MS window the
 * filesystem protocol uses. A connection that drops — worker killed,
 * crashed mid-record-stream, network gone — orphans its leases
 * immediately: peers see STALE without waiting out the window, BREAK
 * reassigns the row under a bumped epoch, and the dead owner's
 * epoch-carrying verbs are refused (FENCED) if it ever resurfaces. A
 * record cut off mid-stream never reaches the store at all: the wire
 * frame doesn't reassemble, so unlike a torn file append there is no
 * tail to truncate.
 *
 * Lease RPC service time is recorded in a LatencyHistogram
 * (common/stats.hpp) and surfaced through STATS and stats() — the
 * fabric's scaling story depends on this number staying microscopic
 * next to a row's simulation time.
 */
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/error.hpp"
#include "common/net.hpp"
#include "common/stats.hpp"

namespace ebm {

class DiskCache;

/** TCP lease/record server over one result store. */
class Coordinator
{
  public:
    struct Options
    {
        /** Numeric IPv4 bind address (empty = all interfaces). */
        std::string host = "127.0.0.1";
        /** 0 = kernel-assigned ephemeral; read back with port(). */
        std::uint16_t port = 0;
        /** Lease staleness window; zero = EBM_CLAIM_STALE_MS. */
        std::chrono::milliseconds staleThreshold{0};
        /** Honor the SHUTDOWN verb (daemon mode). */
        bool allowRemoteShutdown = false;
    };

    /** Monotonic service counters + lease RPC latency percentiles. */
    struct Stats
    {
        std::uint64_t connections = 0;
        std::uint64_t rpcs = 0;
        std::uint64_t acquiresGranted = 0;
        std::uint64_t acquiresDenied = 0;
        std::uint64_t takeovers = 0;   ///< BREAK reassignments.
        std::uint64_t fencedOps = 0;   ///< Stale-epoch verbs refused.
        std::uint64_t orphanedLeases = 0; ///< Dropped connections.
        std::uint64_t recordsCommitted = 0;
        std::uint64_t recordBytes = 0;
        std::uint64_t fetchHits = 0;
        std::uint64_t fetchMisses = 0;
        std::uint64_t skipsMarked = 0;
        std::uint64_t badFrames = 0;   ///< PUT payloads that failed CRC.
        double rpcP50Us = 0.0;
        double rpcP99Us = 0.0;

        std::string summaryLine() const;
    };

    Coordinator(DiskCache &cache, Options options);
    ~Coordinator();

    Coordinator(const Coordinator &) = delete;
    Coordinator &operator=(const Coordinator &) = delete;

    /**
     * Create and bind the listener without starting any thread; after
     * this, port() is final. Split from start() so a test or bench
     * can fork workers between bind and start — children inherit one
     * quiet listening fd instead of a running thread's locks, and
     * their connects queue in the backlog until start().
     */
    Status bind();

    /** bind() if not yet bound, then start the accept thread. */
    Status start();

    /** Stop accepting, shut open connections, join all threads. Safe
     * to call twice; the destructor calls it. */
    void stop();

    /** The bound port (after bind()/start()); 0 before. */
    std::uint16_t port() const { return port_; }

    /** "host:port" for workers' EBM_COORDINATOR. */
    std::string address() const;

    Stats stats() const;

    /** Did a client ask for SHUTDOWN (daemon mode)? */
    bool shutdownRequested() const;

    /** Block until SHUTDOWN or stop(). */
    void waitForShutdown();

    /** The staleness window in force (options or env). */
    std::chrono::milliseconds staleThreshold() const;

  private:
    struct Lease
    {
        std::uint64_t epoch = 0;
        std::chrono::steady_clock::time_point beat;
        std::uint64_t conn = 0;
        bool orphaned = false; ///< Owner's connection dropped.
    };

    void acceptLoop();
    void serveConnection(int fd, std::uint64_t conn_id);
    /** Handle one request payload; returns the response payload. */
    std::string handle(const std::string &payload,
                       std::uint64_t conn_id);
    std::string handleAcquire(const std::string &key,
                              std::uint64_t conn_id);
    std::string handleBreak(const std::string &key,
                            std::uint64_t conn_id);
    std::string handlePeek(const std::string &key);
    std::string handlePut(const std::string &payload);
    std::string handleGet(const std::string &key);
    /** Validate an epoch-carrying verb; erases the lease on success
     * when @p erase is set. */
    bool validateEpoch(const std::string &key, std::uint64_t epoch,
                       bool erase);
    void orphanConnection(std::uint64_t conn_id);
    std::string statsLine() const;

    DiskCache &cache_;
    Options options_;

    UniqueFd listener_;
    std::uint16_t port_ = 0;
    std::thread acceptThread_;
    bool started_ = false;

    mutable std::mutex connMu_;
    std::vector<std::thread> connThreads_;
    std::unordered_set<int> openFds_;
    std::uint64_t nextConnId_ = 1;
    bool stopping_ = false;
    bool shutdownRequested_ = false;
    std::condition_variable shutdownCv_;

    mutable std::mutex leaseMu_;
    std::unordered_map<std::string, Lease> leases_;
    /** Per-key monotonic epoch counters (the coordinator-lifetime
     * analogue of the `<keyfp>.epoch` sidecars). */
    std::unordered_map<std::string, std::uint64_t> epochs_;
    std::unordered_map<std::string,
                       std::chrono::steady_clock::time_point>
        skips_;

    LatencyHistogram rpcLatency_;
    mutable std::mutex statsMu_;
    Stats counters_;
};

} // namespace ebm
