/**
 * @file
 * Alone-run profiling: for each application, sweep the TLP ladder
 * while it runs alone on its core share, find bestTLP (highest IPC),
 * and record IPC/EB at every level. This supplies:
 *   - the ++bestTLP baseline and the SD denominators (IPC-Alone),
 *   - Table IV (IPC@bestTLP, EB@bestTLP, G1-G4 grouping),
 *   - Fig. 2 (per-level IPC/BW/CMR/EB curves),
 *   - scaling factors for the fairness-oriented schemes.
 * Results are cached on disk keyed by the solo-runner fingerprint.
 */
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "harness/disk_cache.hpp"
#include "harness/runner.hpp"
#include "metrics/metrics.hpp"
#include "workload/app_profile.hpp"

namespace ebm {

/** Alone-run characterization of one application. */
struct AppAloneProfile
{
    std::string name;
    std::vector<std::uint32_t> levels; ///< TLP ladder swept.
    std::vector<AppRunStats> perLevel; ///< Stats at each level.
    std::uint32_t bestTlp = 0;         ///< argmax IPC level.
    double ipcAtBest = 0.0;
    double ebAtBest = 0.0;
    std::uint32_t group = 0;           ///< 1..4 by EB quartile.
};

/** Profiling service with disk-backed memoization. */
class ProfileDb
{
  public:
    /**
     * @param runner shared-run runner (solo geometry derived from it)
     * @param cache  disk cache for memoization
     */
    ProfileDb(const Runner &runner, DiskCache &cache);

    /**
     * Profile (or fetch) one application. Cache-missing ladder levels
     * are independent solo simulations, dispatched onto a JobPool of
     * jobs() workers and committed in level order — the profile and
     * the cache file are bit-identical to a serial pass.
     */
    const AppAloneProfile &profile(const AppProfile &app);

    /**
     * Probe-only profile: assemble @p app's alone profile entirely
     * from memory or the disk cache, *without simulating* missing
     * levels. @return nullopt when any ladder level is absent (never
     * a partial profile). Group assignment is not attempted (group
     * stays 0, as in a fresh profile()). The advisor serving daemon's
     * hit path.
     */
    std::optional<AppAloneProfile>
    profileCached(const AppProfile &app) const;

    /** Worker threads per profile (0 = JobPool::defaultJobs()). */
    std::uint32_t jobs() const;
    void setJobs(std::uint32_t jobs) { jobs_ = jobs; }

    /**
     * Assign G1..G4 groups to @p apps by alone-EB quartile and return
     * the group-average alone EB per group (index 0 unused).
     */
    std::vector<double>
    assignGroups(const std::vector<AppProfile> &apps);

    /** Group-average alone EB for @p app (assignGroups first). */
    double groupScale(const std::string &app_name) const;

  private:
    const Runner &runner_;
    DiskCache &cache_;
    std::map<std::string, AppAloneProfile> profiles_;
    std::vector<double> groupMeans_; ///< [1..4].
    std::uint32_t jobs_ = 0; ///< 0 = resolve JobPool::defaultJobs().
};

} // namespace ebm
