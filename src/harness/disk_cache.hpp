/**
 * @file
 * A small on-disk result cache so the expensive 64-combination
 * exhaustive sweeps are simulated once and shared by every bench
 * binary. Values are flat double vectors; keys are caller-constructed
 * strings that embed a configuration fingerprint.
 *
 * Format v2 (one text file):
 *
 *     ebmcache v2 <machine fingerprint>
 *     <key>|<16-hex-digit checksum>| <v0> <v1> ...
 *
 * The header pins the format version and the writing machine's
 * floating-point ABI; every entry carries a checksum over its key and
 * value bits. Loading is defensive: corrupt or truncated entries are
 * skipped (and recomputed by callers on the resulting miss), a file
 * that fails validation is quarantined to `<path>.quarantined` rather
 * than trusted or deleted, and persistence is atomic
 * (write-temp-then-rename) so a killed process never leaves a
 * half-written cache behind. Legacy v1 files (no header) are migrated
 * in place on load.
 *
 * Thread safety: all public operations may be called concurrently
 * (the harness's parallel sweeps put() from worker threads). The
 * in-memory map is *sharded* by key hash — each shard has its own
 * mutex — so lookups and inserts from different workers almost never
 * contend on one lock at high EBM_JOBS. Persistence is unchanged from
 * the single-map design: single-writer and coalescing — whichever
 * thread holds the writer role keeps rewriting (tmp + atomic rename,
 * as ever) until it has covered every entry inserted meanwhile, and a
 * put() only returns once a persist covering its entry has completed
 * or been claimed by that writer. The persist snapshot gathers all
 * shards and writes entries sorted by key, so the file a given entry
 * set produces is byte-identical at any shard count and any thread
 * interleaving.
 */
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/fault_injector.hpp"

namespace ebm {

/** Durable key -> vector<double> store backed by a text file. */
class DiskCache
{
  public:
    /** What happened while loading the backing file. */
    struct LoadReport
    {
        std::size_t entriesLoaded = 0;
        std::size_t entriesSkipped = 0;  ///< Corrupt/truncated lines.
        std::size_t duplicateKeys = 0;   ///< Later entry won.
        bool migratedV1 = false;         ///< Legacy file upgraded.
        bool quarantined = false;        ///< Bad file set aside.
        std::string quarantinePath;
    };

    /**
     * Open (and load) the cache at @p path; missing file is fine.
     *
     * @param injector optional fault injection (robustness tests)
     * @param shards   in-memory shard count; 0 = EBM_CACHE_SHARDS or
     *                 the built-in default (16). Shard count is an
     *                 in-memory concurrency knob only — the on-disk
     *                 format and the persisted bytes are identical at
     *                 every setting.
     */
    explicit DiskCache(std::string path,
                       FaultInjector *injector = nullptr,
                       std::uint32_t shards = 0);

    /** Look up @p key. */
    std::optional<std::vector<double>> get(const std::string &key) const;

    /**
     * Look up @p key, requiring exactly @p expected_size values, all
     * of them finite: a present-but-wrong-shape entry (a stale or
     * corrupt record) or one holding NaN/Inf (written by a pre-guard
     * version — well-shaped and checksummed, but garbage) is treated
     * as a miss so the caller recomputes instead of consuming it.
     */
    std::optional<std::vector<double>>
    getValidated(const std::string &key, std::size_t expected_size) const;

    /** Insert and persist @p key -> @p values (atomic rewrite). */
    void put(const std::string &key, const std::vector<double> &values);

    std::size_t size() const;

    const std::string &path() const { return path_; }

    /** In-memory shard count (diagnostics/tests). */
    std::uint32_t shardCount() const
    {
        return static_cast<std::uint32_t>(shards_.size());
    }

    /** Lookups (get/getValidated) that returned a value. */
    std::uint64_t hits() const
    {
        return hits_.load(std::memory_order_relaxed);
    }

    /** Lookups that missed (including validation rejects). */
    std::uint64_t misses() const
    {
        return misses_.load(std::memory_order_relaxed);
    }

    /** Diagnostics from the constructor's load pass. */
    const LoadReport &loadReport() const { return loadReport_; }

    /** Failed persist attempts (I/O errors; entries stay in memory). */
    std::size_t
    persistFailures() const
    {
        std::lock_guard<std::mutex> lk(persistMu_);
        return persistFailures_;
    }

    /** Format-v2 header fingerprint of this machine's float ABI. */
    static std::string machineFingerprint();

    /**
     * Default cache location: `$EBM_CACHE_DIR/<file>` when the
     * environment variable is set, else `<file>` in the working
     * directory (the historical default).
     */
    static std::string
    defaultPath(const std::string &file = "ebm_results.cache");

  private:
    using EntryMap = std::unordered_map<std::string, std::vector<double>>;

    /** One lock domain of the in-memory map. */
    struct Shard
    {
        mutable std::mutex mu;
        EntryMap entries;
    };

    Shard &shardOf(const std::string &key);
    const Shard &shardOf(const std::string &key) const;

    void load();
    bool parseEntryLine(const std::string &line, bool with_checksum);
    void quarantineAndRewrite();
    /** All shards merged (for persist snapshots and the load path). */
    EntryMap gatherAll() const;
    bool persistAll();
    bool persistOnce(std::unique_lock<std::mutex> &lk);
    bool writeSnapshot(const EntryMap &snapshot);

    std::string path_;
    FaultInjector *injector_;
    std::vector<Shard> shards_;
    LoadReport loadReport_;

    mutable std::atomic<std::uint64_t> hits_{0};
    mutable std::atomic<std::uint64_t> misses_{0};

    /** Guards the persist protocol state below (never a shard). */
    mutable std::mutex persistMu_;
    std::size_t persistFailures_ = 0;
    bool writerActive_ = false;   ///< A thread holds the persist role.
    std::uint64_t dirtyGen_ = 0;  ///< Bumped by every insertion.
    std::uint64_t persistedGen_ = 0; ///< Last generation persisted.
};

} // namespace ebm
