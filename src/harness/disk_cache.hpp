/**
 * @file
 * A durable on-disk result store so the expensive 64-combination
 * exhaustive sweeps are simulated once and shared by every bench
 * binary — and, since v3, by every *process*. Values are flat double
 * vectors; keys are caller-constructed strings that embed a
 * configuration fingerprint.
 *
 * Format v3 (one binary file):
 *
 *     [64-byte header]  magic "EBMCBIN3", format version, app-catalog
 *                       version, machine float-ABI fingerprint
 *     [frame]*          u32 magic | u32 keyLen | u32 valueCount |
 *                       key bytes | valueCount raw doubles |
 *                       u64 checksum over key and value bits
 *
 * The store is *append-only*: put() appends CRC-framed records under
 * an exclusive `flock`, with group commit — a burst of concurrent
 * put()s collapses into a handful of batched appends, each fsync'ed,
 * and a put() returns once a batched append covering its entry is
 * durable or claimed by the active writer. Appending replaces the v2
 * full-file coalescing rewrite, so persist I/O is O(new entries), not
 * O(total entries) per burst. Loading memory-maps the file and scans
 * frames once with O(1) per-record work (raw doubles are memcpy'd,
 * never re-parsed from text). Duplicate keys are legal — later frames
 * win — and `compact()` rewrites the store sorted by key (atomic
 * tmp + rename), so a compacted store is byte-identical for a given
 * entry set no matter what order, how many threads, or how many
 * processes appended.
 *
 * Corruption handling is frame-by-frame: a torn tail (a killed writer
 * mid-append) truncates the file back to the last valid frame instead
 * of quarantining the world; anything else — bad header, foreign
 * machine, mid-file frame corruption — preserves the v2 contract of
 * quarantining the file to `<path>.quarantined` and recomputing.
 * Legacy v1 (plain text) and v2 (checksummed text) files migrate to
 * v3 in place on load.
 *
 * Cross-process sharing: writers from different processes interleave
 * appends safely under `flock`, and `refresh()` folds frames appended
 * by other processes since the last scan into memory — the read side
 * of the sweep shard-claim protocol (harness/shard_claim.hpp).
 *
 * Thread safety: all public operations may be called concurrently.
 * The in-memory map is sharded by key hash (one mutex per shard); the
 * append protocol is single-writer and coalescing, exactly like the
 * v2 persist role, just appending deltas instead of rewriting.
 */
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/error.hpp"
#include "common/fault_injector.hpp"
#include "common/io_fault.hpp"

namespace ebm {

/** Durable key -> vector<double> store backed by a binary file. */
class DiskCache
{
  public:
    /** What happened while loading (and writing) the backing file. */
    struct LoadReport
    {
        std::size_t entriesLoaded = 0;
        std::size_t entriesSkipped = 0;  ///< Corrupt/truncated frames.
        std::size_t duplicateKeys = 0;   ///< Later frame won.
        bool migratedV1 = false;         ///< Legacy text file upgraded.
        bool migratedV2 = false;         ///< v2 text file upgraded.
        bool quarantined = false;        ///< Bad file set aside.
        bool tornTailTruncated = false;  ///< Tail chopped to last frame.
        bool readOnlyMode = false;       ///< Serving without appends.
        /** Max fencing epoch stamped into the header by appenders
         * (shard_claim.hpp); 0 in clean/compacted stores. */
        std::uint64_t fencingEpoch = 0;
        std::string quarantinePath;

        // Persist-side counters (this instance's writes), so the I/O
        // amplification of a sweep is observable, not just benchmarked.
        std::uint64_t bytesWritten = 0;   ///< File bytes written.
        std::uint64_t appendBatches = 0;  ///< Group-commit batches.
        std::uint64_t entriesAppended = 0;///< Entries covered by them.
    };

    /**
     * Open (and load) the store at @p path; missing file is fine.
     *
     * @param injector optional fault injection (robustness tests)
     * @param shards   in-memory shard count; 0 = EBM_CACHE_SHARDS or
     *                 the built-in default (16). Shard count is an
     *                 in-memory concurrency knob only — the on-disk
     *                 format and the persisted bytes are identical at
     *                 every setting.
     */
    explicit DiskCache(std::string path,
                       FaultInjector *injector = nullptr,
                       std::uint32_t shards = 0);

    /** Look up @p key. */
    std::optional<std::vector<double>> get(const std::string &key) const;

    /**
     * Look up @p key, requiring exactly @p expected_size values, all
     * of them finite: a present-but-wrong-shape entry (a stale or
     * corrupt record) or one holding NaN/Inf (written by a pre-guard
     * version — well-shaped and checksummed, but garbage) is treated
     * as a miss so the caller recomputes instead of consuming it.
     */
    std::optional<std::vector<double>>
    getValidated(const std::string &key, std::size_t expected_size) const;

    /**
     * Insert @p key -> @p values and append it durably (group
     * commit): returns once a batched append covering the entry has
     * been fsync'ed, or once the active writer has claimed a batch
     * that covers it.
     */
    void put(const std::string &key, const std::vector<double> &values);

    /**
     * put() with the durability outcome surfaced: in read-only mode
     * (an unwritable store — see readOnly()) the entry is still
     * inserted in memory so this process keeps its warm view, but no
     * append is attempted and a structured Errc::CacheIo error is
     * returned. put() is tryPut() with the status dropped.
     */
    Status tryPut(const std::string &key,
                  const std::vector<double> &values);

    /**
     * Is the store degraded to read-only? Set when the backing file
     * exists but cannot be opened for writing (read-only filesystem,
     * permissions), or forced with EBM_CACHE_READONLY=1. Reads, get(),
     * and refresh() keep working; appends, torn-tail truncation, and
     * compaction are refused without touching the file.
     */
    bool readOnly() const { return readOnly_; }

    /**
     * Record the caller's fencing epoch (shard_claim.hpp): the max is
     * echoed into the store header's epoch field by subsequent
     * appends, so a store written under claim takeovers is
     * distinguishable from a clean one until compact() (which always
     * stamps 0, keeping compacted bytes canonical).
     */
    void noteFencingEpoch(std::uint64_t epoch);

    /**
     * Block until every entry enqueued by put() before this call is
     * durably appended (or its batch has failed and been counted).
     * Group commit lets put() return as soon as the active writer is
     * bound to cover its entry; cross-process coordination
     * (harness/shard_claim.hpp) must sync() before releasing a row's
     * claim, because peers read "claim gone" as "result durable".
     */
    void sync();

    /**
     * Scan frames appended to the file since the last scan (by this
     * or any other process) and fold them into memory, later frames
     * winning. The read side of cross-process sweep sharding.
     *
     * @return entries merged from the newly scanned region
     */
    std::size_t refresh();

    /**
     * Offline compaction: rewrite the store as one sorted-by-key
     * frame sequence (atomic tmp + fsync + rename). A compacted store
     * is byte-identical for a given entry set regardless of append
     * history, thread count, or process count. Offline means no
     * *other process* may be appending concurrently (same-process
     * put()s serialize against it); the compacting process's own
     * in-memory view is authoritative.
     */
    bool compact();

    std::size_t size() const;

    const std::string &path() const { return path_; }

    /** In-memory shard count (diagnostics/tests). */
    std::uint32_t shardCount() const
    {
        return static_cast<std::uint32_t>(shards_.size());
    }

    /** Lookups (get/getValidated) that returned a value. */
    std::uint64_t hits() const
    {
        return hits_.load(std::memory_order_relaxed);
    }

    /** Lookups that missed (including validation rejects). */
    std::uint64_t misses() const
    {
        return misses_.load(std::memory_order_relaxed);
    }

    /** Diagnostics from the constructor's load pass. */
    const LoadReport &loadReport() const { return loadReport_; }

    /** File bytes written by this instance (appends + compactions). */
    std::uint64_t bytesWritten() const;

    /** Group-commit append batches completed by this instance. */
    std::uint64_t appendBatches() const;

    /** Entries covered by completed append batches. */
    std::uint64_t entriesAppended() const;

    /** Failed persist attempts (I/O errors; entries stay in memory). */
    std::size_t persistFailures() const;

    /** One-line persist-amplification summary (bench status lines). */
    std::string persistSummaryLine() const;

    /** Format-v3 header fingerprint of this machine's float ABI. */
    static std::string machineFingerprint();

    /**
     * Default cache location: `$EBM_CACHE_DIR/<file>` when the
     * environment variable is set, else `<file>` in the working
     * directory (the historical default).
     */
    static std::string
    defaultPath(const std::string &file = "ebm_results.cache");

  private:
    using EntryMap = std::unordered_map<std::string, std::vector<double>>;

    /** One key -> values record, as parsed from or written to disk. */
    struct Entry
    {
        std::string key;
        std::vector<double> values;
        std::size_t offset = 0;  ///< Frame start (scan paths only).
    };

    /** One lock domain of the in-memory map. */
    struct Shard
    {
        mutable std::mutex mu;
        EntryMap entries;
    };

    Shard &shardOf(const std::string &key);
    const Shard &shardOf(const std::string &key) const;

    void load();
    void loadText(const std::vector<char> &buffer);
    bool parseEntryLine(const std::string &line, bool with_checksum);
    /**
     * Scan v3 frames in [@p begin, @p end) of @p data, appending
     * parsed records to @p out. @return the offset just past the last
     * valid frame; sets @p torn when the scan stopped on a frame cut
     * off by @p end (torn tail) rather than on bad bytes (@p corrupt).
     */
    static std::size_t scanFrames(const char *data, std::size_t begin,
                                  std::size_t end,
                                  std::vector<Entry> &out, bool &torn,
                                  bool &corrupt);
    /** Merge parsed records into the shards, later records winning. */
    std::size_t mergeEntries(std::vector<Entry> &entries,
                             std::size_t *duplicates);
    /**
     * Scan and merge frames in [scanOffset_, @p file_size). Expects
     * ioMu_ and an exclusive flock held. Sets @p valid_end to the
     * offset just past the last valid frame (truncating a torn peer
     * tail when the fd is writable) and @p merged to the entries
     * folded in. @return false when the file is not a v3 store.
     */
    bool scanRegionLocked(int fd, std::uint64_t file_size,
                          std::uint64_t &valid_end,
                          std::size_t &merged);
    void quarantineAndRewrite();
    /** All shards merged (for compaction snapshots and rewrites). */
    EntryMap gatherAll() const;
    /** Full sorted rewrite (migration, quarantine recovery, compact). */
    bool persistCompacted();
    bool writeCompacted(const EntryMap &snapshot);
    /** Append one group-commit batch under flock; updates counters. */
    bool appendBatch(const std::vector<Entry> &batch);

    std::string path_;
    FaultInjector *injector_;
    IoShim io_; ///< Injectable write/fsync seam (common/io_fault.hpp).
    bool readOnly_ = false;
    std::vector<Shard> shards_;
    LoadReport loadReport_;
    /** Max fencing epoch noted so far (echoed by appendBatch). */
    std::atomic<std::uint64_t> fencingEpoch_{0};

    mutable std::atomic<std::uint64_t> hits_{0};
    mutable std::atomic<std::uint64_t> misses_{0};

    /** Guards the group-commit protocol state below (never a shard). */
    mutable std::mutex persistMu_;
    /** Signals the writer role going idle (pending queue drained). */
    std::condition_variable persistCv_;
    std::size_t persistFailures_ = 0;
    bool writerActive_ = false;   ///< A thread holds the append role.
    std::vector<Entry> pending_;  ///< Entries awaiting a batch append.

    /** Serializes file I/O (appends, refreshes, compaction) and the
     * scan cursor within this process; `flock` serializes across
     * processes. Never acquired with persistMu_ held. */
    mutable std::mutex ioMu_;
    /** File offset up to which frames have been folded into memory. */
    std::uint64_t scanOffset_ = 0;
};

} // namespace ebm
