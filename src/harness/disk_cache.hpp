/**
 * @file
 * A tiny on-disk result cache so the expensive 64-combination
 * exhaustive sweeps are simulated once and shared by every bench
 * binary. Values are flat double vectors; keys are caller-constructed
 * strings that embed a configuration fingerprint.
 */
#pragma once

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace ebm {

/** Append-only key -> vector<double> store backed by a text file. */
class DiskCache
{
  public:
    /** Open (and load) the cache at @p path; missing file is fine. */
    explicit DiskCache(std::string path);

    /** Look up @p key. */
    std::optional<std::vector<double>> get(const std::string &key) const;

    /** Insert and persist @p key -> @p values. */
    void put(const std::string &key, const std::vector<double> &values);

    std::size_t size() const { return entries_.size(); }

  private:
    std::string path_;
    std::unordered_map<std::string, std::vector<double>> entries_;
};

} // namespace ebm
