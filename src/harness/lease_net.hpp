/**
 * @file
 * Network lease client: the worker half of the distributed sweep
 * fabric (harness/coordinator.hpp has the protocol). A
 * NetLeaseProvider speaks the lease verbs as request/response RPCs
 * over one TCP connection to an ebm_coordinator, and implements the
 * result transport by streaming CRC-framed v3 records (PUT) and
 * probing the coordinator's store (GET) — the worker's own DiskCache
 * is private scratch in this mode.
 *
 * Threading: the sweep's JobPool workers and every LeaseHeartbeater
 * tick share this one connection; RPCs are serialized under a mutex
 * (they are microseconds against rows that take milliseconds to
 * seconds — the coordinator's LatencyHistogram keeps the receipts).
 *
 * Failure policy: the fabric is an optimization, never a correctness
 * dependency. If the connection breaks — coordinator gone, RPC
 * timeout, garbled frame — the provider latches a degraded mode that
 * behaves like no coordination at all: every tryAcquire is granted
 * locally (epoch 0), peeks read Absent, publishes fail quietly. The
 * sweep then computes everything itself, which is always correct,
 * merely not shared; and because real peers never see this worker's
 * leases again (its connection died with it), the coordinator orphans
 * them and peers take the rows over under bumped epochs.
 */
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/net.hpp"
#include "common/wire.hpp"
#include "harness/lease_provider.hpp"

namespace ebm {

/** Row leases + record streaming over one coordinator connection. */
class NetLeaseProvider final : public LeaseProvider
{
  public:
    struct Options
    {
        /** Connect retries (the worker may start before the
         * coordinator finishes binding) and their spacing. */
        std::uint32_t connectAttempts = 40;
        std::chrono::milliseconds connectBackoff{250};
        /** Per-RPC response deadline; zero = 4x the staleness
         * window (min 2s). A coordinator that cannot answer within
         * that is treated as gone (degraded mode). */
        std::chrono::milliseconds rpcTimeout{0};
    };

    /**
     * Connect to "host:port" and handshake (HELLO verifies the
     * float-ABI fingerprint and app-catalog version — a foreign
     * machine's records must never reach the store). @return nullptr
     * when the address is malformed, the coordinator is unreachable
     * after the retry budget, or the handshake is refused.
     */
    static std::unique_ptr<NetLeaseProvider>
    connect(const std::string &address, const Options &options);
    static std::unique_ptr<NetLeaseProvider>
    connect(const std::string &address);

    bool tryAcquire(const std::string &key) override;
    bool heartbeat(const std::string &key) override;
    bool release(const std::string &key) override;
    bool markSkipped(const std::string &key) override;
    State peek(const std::string &key) override;
    bool breakStale(const std::string &key) override;
    std::uint64_t ownedEpoch(const std::string &key) const override;
    bool publish(const std::string &key,
                 const std::vector<double> &values) override;
    std::optional<std::vector<double>>
    fetch(const std::string &key, std::size_t expected) override;
    const char *kind() const override { return "net"; }

    /** Has the connection been lost (standalone degrade latched)? */
    bool degraded() const;

    /** The staleness window the coordinator reported at HELLO. */
    std::chrono::milliseconds coordinatorStaleMs() const
    {
        return staleMs_;
    }

  private:
    NetLeaseProvider(UniqueFd fd, Options options);

    /** One serialized request/response exchange. Returns std::nullopt
     * (and latches degraded mode) on any transport failure. */
    std::optional<std::string> rpc(const std::string &request);

    int timeoutMs() const;

    Options options_;
    std::chrono::milliseconds staleMs_{0};

    mutable std::mutex mu_;
    UniqueFd fd_;
    wire::FrameReader reader_;
    bool degraded_ = false;
    bool degradeWarned_ = false;
    /** Epochs of leases this instance currently holds. */
    std::unordered_map<std::string, std::uint64_t> owned_;
};

} // namespace ebm
