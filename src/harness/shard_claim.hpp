/**
 * @file
 * Cross-process sweep sharding: a claim protocol that lets N
 * cooperating processes fill one cold exhaustive sweep through a
 * shared DiskCache, each row simulated (ideally) once.
 *
 * A claim is a file `<store>.claims/<keyfp>.claim` created with
 * `O_CREAT|O_EXCL` — the atomic filesystem primitive — where keyfp is
 * a hash of the full cache key (which already embeds the runner
 * fingerprint, so distinct configs never contend). The owner
 * heartbeats the claim's mtime (per run attempt, and periodically
 * *during* long rows via ClaimHeartbeater); a claim whose mtime is
 * older than EBM_CLAIM_STALE_MS belongs to a killed worker and may be
 * broken and taken over. A row whose retries are exhausted is marked
 * with a durable `<keyfp>.skip` sidecar so every waiting process
 * replicates the skip instead of polling forever; skip markers expire
 * after the same staleness window, so the next sweep retries the row
 * (matching the single-process behavior of never persisting a failed
 * combination).
 *
 * Fencing: every acquisition — first claim or stale takeover — bumps
 * a durable per-key epoch counter (`<keyfp>.epoch`) and records the
 * new epoch inside the claim file. A *stale* owner (paused by the
 * scheduler, stuck in I/O) that resumes after a peer took its row
 * over holds an old epoch: its heartbeat(), release(), and
 * markSkipped() all verify the on-disk claim still carries its epoch
 * and refuse to touch a newer owner's claim, returning false so the
 * caller knows it was fenced and must not treat its own (duplicate)
 * result as the one peers will consume. Callers also echo their epoch
 * into the result store header (DiskCache::noteFencingEpoch) so a
 * store written under takeovers is distinguishable from a clean run.
 *
 * The protocol is an *optimization*, never a correctness dependency:
 * simulation is deterministic, the store is last-wins, and compaction
 * sorts by key — so if two processes ever compute the same row (the
 * unavoidable take-over race), they append byte-identical values and
 * the table, accounting, and compacted store are unchanged. Fencing
 * closes the *protocol* hole — a stale owner unlinking a newer
 * owner's claim, making waiters read "absent" as "durable" before the
 * new owner has put — without changing the happy path.
 *
 * Sharding is off by default; EBM_SWEEP_SHARD=1 enables it (the
 * processes must share EBM_CACHE_DIR, or at least the store path).
 */
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>

namespace ebm {

/** Claim files for one result store. */
class ShardClaims
{
  public:
    /** A waiter's view of another process's claim on a key. */
    enum class State : std::uint8_t {
        Absent,  ///< No claim (result durable, or owner takeover race).
        Active,  ///< A live owner is computing the row.
        Stale,   ///< The owner stopped heartbeating: take over.
        Skipped, ///< The owner exhausted retries: replicate the skip.
    };

    /** Master switch: EBM_SWEEP_SHARD (default off). */
    static bool shardingEnabled();

    /** Liveness window: EBM_CLAIM_STALE_MS (default 10000). */
    static std::chrono::milliseconds staleThreshold();

    /** Claims for the store at @p store_path live in
     * `<store_path>.claims/` (created here if missing). */
    explicit ShardClaims(const std::string &store_path);

    /** Atomically claim @p key, bumping its fencing epoch. @return
     * true = this process owns the row and must compute it; false =
     * someone else holds it (or a fresh skip marker exists). */
    bool tryAcquire(const std::string &key);

    /**
     * Bump the owned claim's liveness timestamp. @return false when
     * the claim no longer carries our epoch — a peer fenced us out
     * (stale takeover) and this process's result must not be treated
     * as the one waiters will consume.
     */
    bool heartbeat(const std::string &key);

    /**
     * The row's result is durable in the store: drop the claim so
     * waiters fall through to the store. Call only after put() *and*
     * sync(). @return false when fenced — the claim belongs to a
     * newer epoch and was left untouched.
     */
    bool release(const std::string &key);

    /**
     * Retries exhausted: write the durable skip marker, then drop the
     * claim, so every waiting process skips the row too. @return
     * false when fenced (no marker written — the new owner decides).
     */
    bool markSkipped(const std::string &key);

    /** Is a fresh skip marker present for @p key? */
    bool isSkipped(const std::string &key) const;

    /** Poll another process's claim on @p key. */
    State peek(const std::string &key) const;

    /** Take over a stale claim: re-checks staleness, unlinks, then
     * re-acquires under a bumped epoch. @return true = this process
     * owns the row now. */
    bool breakStale(const std::string &key);

    /** The fencing epoch this instance holds @p key under; 0 when it
     * does not own the key. Echo into
     * DiskCache::noteFencingEpoch() after acquiring. */
    std::uint64_t ownedEpoch(const std::string &key) const;

    /** The epoch recorded in the on-disk claim file (whoever owns
     * it); 0 when absent or unparsable. Diagnostics and tests. */
    std::uint64_t claimEpoch(const std::string &key) const;

    const std::string &dir() const { return dir_; }

  private:
    std::string claimPath(const std::string &key) const;
    std::string skipPath(const std::string &key) const;
    std::string epochPath(const std::string &key) const;
    /** Bump `<keyfp>.epoch` and return the new value (only the O_EXCL
     * winner calls this, so increments are serialized per key). */
    std::uint64_t bumpEpoch(const std::string &key);
    /** Does the on-disk claim still carry the epoch we acquired
     * under? False = fenced (or never owned). */
    bool stillOwned(const std::string &key) const;

    std::string dir_;
    /** Epochs of claims this instance currently holds. */
    mutable std::mutex mu_;
    std::unordered_map<std::string, std::uint64_t> owned_;
};

/**
 * Remove orphaned `<keyfp>.epoch` sidecars from `<store_path>.claims/`
 * — epoch counters whose claim file is gone (the row finished or was
 * never re-contended) and whose own mtime is older than the staleness
 * window. Sidecars under a live or freshly released claim are kept:
 * the claim dir is hot and the counter may be re-read momentarily.
 *
 * Deleting an orphan resets that key's epoch counter, which at worst
 * repeats an epoch after a much later re-acquisition — the same
 * degradation bumpEpoch() already documents for torn writes: fencing
 * degrades to unfenced for that key, never to a wrong takeover; and
 * any waiter from the old generation would find the durable result in
 * the store anyway. Called from DiskCache::compact() and fsck repair,
 * where the store is quiescent by contract.
 *
 * @return the number of sidecars removed (0 when the claim dir does
 * not exist).
 */
std::size_t sweepOrphanedEpochs(const std::string &store_path);

/**
 * Periodic in-run heartbeat for one held claim (RAII).
 *
 * The per-attempt heartbeat in the sweep loop leaves a staleness
 * hole: a single row whose simulation takes longer than
 * EBM_CLAIM_STALE_MS looks dead to peers and gets taken over while
 * its owner is alive and making progress. A ClaimHeartbeater spans
 * the run attempt with a background thread that bumps the claim's
 * mtime every staleThreshold()/4 (at least 10ms), so a live owner
 * never looks stale no matter how long the row takes.
 *
 * The same tick also touches the file named by EBM_WORKER_HEARTBEAT
 * (when set): under the sweep supervisor, a worker that is alive but
 * stuck inside a row keeps both its claim *and* its supervisor
 * liveness file fresh, tying the two hang detectors to one signal.
 *
 * If a tick discovers the claim was fenced (stolen by a peer after a
 * scheduler stall longer than the window), it stops heartbeating and
 * latches fenced(); the owner checks after the run and demotes its
 * result to a duplicate compute.
 */
class ClaimHeartbeater
{
  public:
    /** Start heartbeating @p key on @p claims. Either may be null /
     * empty — then this is an inert object (the unsharded path). */
    ClaimHeartbeater(ShardClaims *claims, std::string key);
    ~ClaimHeartbeater();

    ClaimHeartbeater(const ClaimHeartbeater &) = delete;
    ClaimHeartbeater &operator=(const ClaimHeartbeater &) = delete;

    /** Did a heartbeat discover the claim was taken over? */
    bool fenced() const
    {
        return fenced_.load(std::memory_order_relaxed);
    }

    /** Touch the EBM_WORKER_HEARTBEAT file (supervisor liveness),
     * creating it if missing. No-op when the env var is unset. */
    static void touchWorkerHeartbeat();

  private:
    void run();

    ShardClaims *claims_;
    std::string key_;
    std::atomic<bool> fenced_{false};
    bool stop_ = false;
    std::mutex mu_;
    std::condition_variable cv_;
    std::thread thread_;
};

} // namespace ebm
