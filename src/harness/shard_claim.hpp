/**
 * @file
 * Cross-process sweep sharding: a claim protocol that lets N
 * cooperating processes fill one cold exhaustive sweep through a
 * shared DiskCache, each row simulated (ideally) once.
 *
 * A claim is a file `<store>.claims/<keyfp>.claim` created with
 * `O_CREAT|O_EXCL` — the atomic filesystem primitive — where keyfp is
 * a hash of the full cache key (which already embeds the runner
 * fingerprint, so distinct configs never contend). The owner
 * heartbeats the claim's mtime once per run attempt; a claim whose
 * mtime is older than EBM_CLAIM_STALE_MS belongs to a killed worker
 * and may be broken and taken over. A row whose retries are exhausted
 * is marked with a durable `<keyfp>.skip` sidecar so every waiting
 * process replicates the skip instead of polling forever; skip
 * markers expire after the same staleness window, so the next sweep
 * retries the row (matching the single-process behavior of never
 * persisting a failed combination).
 *
 * The protocol is an *optimization*, never a correctness dependency:
 * simulation is deterministic, the store is last-wins, and compaction
 * sorts by key — so if two processes ever compute the same row (the
 * unavoidable take-over race), they append byte-identical values and
 * the table, accounting, and compacted store are unchanged.
 *
 * Sharding is off by default; EBM_SWEEP_SHARD=1 enables it (the
 * processes must share EBM_CACHE_DIR, or at least the store path).
 */
#pragma once

#include <chrono>
#include <cstdint>
#include <string>

namespace ebm {

/** Claim files for one result store. */
class ShardClaims
{
  public:
    /** A waiter's view of another process's claim on a key. */
    enum class State : std::uint8_t {
        Absent,  ///< No claim (result durable, or owner takeover race).
        Active,  ///< A live owner is computing the row.
        Stale,   ///< The owner stopped heartbeating: take over.
        Skipped, ///< The owner exhausted retries: replicate the skip.
    };

    /** Master switch: EBM_SWEEP_SHARD (default off). */
    static bool shardingEnabled();

    /** Liveness window: EBM_CLAIM_STALE_MS (default 10000). */
    static std::chrono::milliseconds staleThreshold();

    /** Claims for the store at @p store_path live in
     * `<store_path>.claims/` (created here if missing). */
    explicit ShardClaims(const std::string &store_path);

    /** Atomically claim @p key. @return true = this process owns the
     * row and must compute it; false = someone else holds it (or a
     * fresh skip marker exists). */
    bool tryAcquire(const std::string &key);

    /** Bump the owned claim's liveness timestamp (call once per run
     * attempt so long rows with retries never look stale). */
    void heartbeat(const std::string &key);

    /** The row's result is durable in the store: drop the claim so
     * waiters fall through to the store. Call only after put(). */
    void release(const std::string &key);

    /** Retries exhausted: write the durable skip marker, then drop
     * the claim, so every waiting process skips the row too. */
    void markSkipped(const std::string &key);

    /** Is a fresh skip marker present for @p key? */
    bool isSkipped(const std::string &key) const;

    /** Poll another process's claim on @p key. */
    State peek(const std::string &key) const;

    /** Take over a stale claim: re-checks staleness, unlinks, then
     * re-acquires. @return true = this process owns the row now. */
    bool breakStale(const std::string &key);

    const std::string &dir() const { return dir_; }

  private:
    std::string claimPath(const std::string &key) const;
    std::string skipPath(const std::string &key) const;

    std::string dir_;
};

} // namespace ebm
