/**
 * @file
 * Process-level supervision for sharded sweeps: fork N workers, watch
 * them, restart the ones that die or hang, and report what happened.
 *
 * The sharded sweep already survives worker death at the *protocol*
 * level — claims go stale and peers take the rows over — but someone
 * still has to put a replacement worker back, or an N-way sweep
 * quietly degrades to 1-way after N-1 crashes. SweepSupervisor is
 * that someone: a parent process that
 *
 *   - forks one worker per shard slot (the caller's function runs in
 *     the child and its return value becomes the exit code),
 *   - reaps exits with waitpid and restarts crashed workers (nonzero
 *     exit or a signal) under a capped exponential backoff and a
 *     per-slot restart budget,
 *   - watches per-slot heartbeat files (EBM_WORKER_HEARTBEAT, touched
 *     by the sweep loop and by ClaimHeartbeater ticks) and SIGKILLs a
 *     worker whose heartbeat goes silent for longer than the hang
 *     timeout — a live-but-stuck worker is a crash that forgot to
 *     happen, and its claims only go stale after it stops
 *     heartbeating them.
 *
 * Per-row retry budgets stay where they were: inside the sweep
 * (maxRetries + durable skip markers). The supervisor budgets whole
 * *worker lives*, so a worker that dies on a poison row a few times
 * stops being restarted instead of crash-looping forever — the
 * surviving workers replicate the row's skip marker and finish the
 * sweep without it.
 *
 * Determinism: supervision never touches result bytes. Workers append
 * to the last-wins store under the claim protocol, so any interleaving
 * of crashes, restarts, and takeovers compacts to the same canonical
 * file (the chaos suite checks exactly this with cmp).
 */
#pragma once

#include <sys/types.h>

#include <chrono>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace ebm {

/** Fork-and-restart supervisor for N sharded sweep workers. */
class SweepSupervisor
{
  public:
    struct Options
    {
        /** Shard slots (one worker process per slot). */
        std::uint32_t workers = 2;
        /** Restart budget per slot (beyond the first launch). */
        std::uint32_t maxRestarts = 5;
        /** Silence on the slot's heartbeat file before the worker is
         * declared hung and SIGKILLed. Zero = derive from the claim
         * staleness window (4x EBM_CLAIM_STALE_MS). */
        std::chrono::milliseconds hangTimeout{0};
        /** Capped exponential restart backoff: base * 2^restarts,
         * clamped to cap. */
        std::chrono::milliseconds backoffBase{50};
        std::chrono::milliseconds backoffCap{2000};
        /** Directory for the per-slot heartbeat files (created if
         * missing). Empty = no hang detection, crash-only restarts. */
        std::string heartbeatDir;
        /** Coordinator address ("host:port") exported to each worker
         * child as EBM_COORDINATOR, so supervised workers lease rows
         * over TCP instead of filesystem claims. Empty = inherit the
         * parent's environment unchanged. */
        std::string coordinator;
    };

    /** What happened to one slot across all its worker lives. */
    struct WorkerReport
    {
        std::uint32_t slot = 0;
        pid_t lastPid = -1;
        std::uint32_t restarts = 0;  ///< Replacement launches.
        std::uint32_t hangKills = 0; ///< SIGKILLs for silent heartbeat.
        bool succeeded = false;      ///< Some life exited 0.
        bool budgetExhausted = false;
        int lastStatus = 0;          ///< Raw waitpid status.
    };

    struct Report
    {
        std::vector<WorkerReport> workers;
        bool allSucceeded = false;
        std::uint32_t totalRestarts = 0;
        std::uint32_t totalHangKills = 0;

        /** One status line for logs and tests. */
        std::string summaryLine() const;
    };

    /**
     * The worker body, run in the forked child; its return value is
     * the worker's exit code (0 = success). @p slot is the shard slot
     * [0, workers), @p attempt counts this slot's lives from 0.
     * The child's environment carries EBM_WORKER_HEARTBEAT pointing
     * at the slot's heartbeat file (when heartbeatDir is set).
     */
    using WorkerFn =
        std::function<int(std::uint32_t slot, std::uint32_t attempt)>;

    explicit SweepSupervisor(Options options);

    /** Fork, supervise, and reap all slots to completion (success or
     * exhausted budget). Blocks until every slot is settled. */
    Report run(const WorkerFn &worker);

    /** The heartbeat file a slot's workers touch (empty when hang
     * detection is off). */
    std::string heartbeatPath(std::uint32_t slot) const;

    const Options &options() const { return options_; }

  private:
    Options options_;
};

} // namespace ebm
