/**
 * @file
 * Machine-state inspection report: a formatted deep-dive into one
 * simulated GPU — per-application performance and EB metrics, per-core
 * issue/stall breakdowns, per-partition L2 and DRAM behaviour (row
 * hit rates, utilization). Useful for debugging workload models and
 * for understanding *why* a TLP combination behaves as it does.
 */
#pragma once

#include <string>

#include "sim/gpu.hpp"

namespace ebm {

/** Renders human-readable inspection reports for a Gpu. */
class MachineReport
{
  public:
    explicit MachineReport(const Gpu &gpu) : gpu_(gpu) {}

    /** Per-application summary (IPC, BW, miss rates, EB). */
    std::string appSummary() const;

    /** Per-core issue/idle/stall breakdown. */
    std::string coreBreakdown() const;

    /** Per-partition L2 and DRAM behaviour. */
    std::string memoryBreakdown() const;

    /** All sections concatenated. */
    std::string full() const;

  private:
    const Gpu &gpu_;
};

} // namespace ebm
