#include "harness/runner.hpp"

#include <bit>
#include <sstream>

#include "common/fault_injector.hpp"
#include "common/log.hpp"
#include "common/rng.hpp"
#include "harness/gpu_pool.hpp"
#include "harness/warm_state.hpp"
#include "sim/gpu.hpp"
#include "workload/app_catalog.hpp"

namespace ebm {

namespace {

/** EB-monitor relay latency used by every measured run. */
constexpr Cycle kRelayLatency = 100;

/** Absolute counter totals at a point in time, per app. */
struct CounterTotals
{
    std::vector<std::uint64_t> instrs;
    std::vector<std::uint64_t> dataCycles;
    std::vector<std::uint64_t> l1Acc, l1Miss, l2Acc, l2Miss;
    Cycle coreCycles = 0;
    Cycle dramCycles = 0;
};

CounterTotals
takeSnapshot(const Gpu &gpu)
{
    const std::uint32_t n = gpu.numApps();
    CounterTotals s;
    s.instrs.resize(n);
    s.dataCycles.resize(n);
    s.l1Acc.resize(n);
    s.l1Miss.resize(n);
    s.l2Acc.resize(n);
    s.l2Miss.resize(n);
    s.coreCycles = gpu.now();
    s.dramCycles = gpu.partition(0).dramCyclesElapsed();
    for (AppId app = 0; app < n; ++app) {
        s.instrs[app] = gpu.appInstrs(app);
        s.dataCycles[app] = gpu.appDataCycles(app);
        for (CoreId id : gpu.coresOf(app)) {
            const CacheStats &cs = gpu.core(id).l1().stats();
            s.l1Acc[app] += cs.accesses(app);
            s.l1Miss[app] += cs.misses(app);
        }
        for (PartitionId p = 0; p < gpu.numPartitions(); ++p) {
            const CacheStats &cs = gpu.partition(p).l2().stats();
            s.l2Acc[app] += cs.accesses(app);
            s.l2Miss[app] += cs.misses(app);
        }
    }
    return s;
}

RunResult
diffSnapshots(const Gpu &gpu, const CounterTotals &a,
              const CounterTotals &b)
{
    const std::uint32_t n = gpu.numApps();
    RunResult r;
    r.apps.resize(n);
    r.measuredCycles = b.coreCycles - a.coreCycles;
    const double core_cycles = static_cast<double>(r.measuredCycles);
    const double dram_cycles =
        static_cast<double>(b.dramCycles - a.dramCycles);
    const double peak_data =
        dram_cycles * static_cast<double>(gpu.numPartitions());

    for (AppId app = 0; app < n; ++app) {
        AppRunStats &out = r.apps[app];
        out.ipc = core_cycles == 0.0
                      ? 0.0
                      : static_cast<double>(b.instrs[app] -
                                            a.instrs[app]) /
                            core_cycles;
        out.bw = peak_data == 0.0
                     ? 0.0
                     : static_cast<double>(b.dataCycles[app] -
                                           a.dataCycles[app]) /
                           peak_data;
        const auto l1a = b.l1Acc[app] - a.l1Acc[app];
        const auto l1m = b.l1Miss[app] - a.l1Miss[app];
        const auto l2a = b.l2Acc[app] - a.l2Acc[app];
        const auto l2m = b.l2Miss[app] - a.l2Miss[app];
        out.l1Mr = l1a == 0 ? 1.0
                            : static_cast<double>(l1m) /
                                  static_cast<double>(l1a);
        out.l2Mr = l2a == 0 ? 1.0
                            : static_cast<double>(l2m) /
                                  static_cast<double>(l2a);
        r.totalBw += out.bw;
    }
    for (AppId app = 0; app < n; ++app)
        r.finalTlp.push_back(gpu.appTlp(app));
    return r;
}

/**
 * Content hash of one application profile. Keying the warm cache by
 * profile *content* (not name) means a test's custom profile named
 * like a catalog one can never alias a foreign checkpoint.
 */
std::uint64_t
profileContentHash(const AppProfile &p)
{
    std::uint64_t h =
        hashIds(p.seed, p.mlpBurst, p.computeRun, p.storesPerLoop);
    h = hashIds(h, std::bit_cast<std::uint64_t>(p.fracL1Reuse),
                std::bit_cast<std::uint64_t>(p.fracL2Reuse),
                std::bit_cast<std::uint64_t>(p.fracRandom));
    h = hashIds(h, p.l1ReuseLines, p.l2ReuseLines,
                p.streamRegionLines);
    h = hashIds(h, p.randomRegionLines, p.randomLinesPerAccess);
    for (const char c : p.name)
        h = hashIds(h, static_cast<std::uint64_t>(c));
    return h;
}

/**
 * In-memory key of the policy-neutral warm prefix: everything its
 * trajectory depends on — the machine (full config hash), the window
 * length, the relay latency, each profile's content, and the core
 * split. Deliberately *not* warmup/measure/relaunch: the prefix is
 * policy- and span-free, so runs with different spans share captures.
 */
std::uint64_t
warmBaseKey(const GpuConfig &cfg, const std::vector<AppProfile> &apps,
            const std::vector<std::uint32_t> &core_share,
            Cycle window_cycles)
{
    std::uint64_t h =
        hashIds(configHash(cfg), window_cycles, kRelayLatency, 0x3a97);
    for (const AppProfile &p : apps)
        h = hashIds(h, profileContentHash(p));
    for (const std::uint32_t s : core_share)
        h = hashIds(h, s, 0x5c0e);
    return h;
}

} // namespace

Runner::Runner(GpuConfig cfg, RunOptions opts)
    : cfg_(std::move(cfg)), opts_(opts)
{
    // Report *all* option problems at once (the config itself is
    // validated by the Gpu constructor per run, once numApps is set).
    const std::vector<Error> errors = opts_.check();
    if (!errors.empty()) {
        fatal(Error{Errc::InvalidConfig,
                    "Runner: invalid RunOptions:\n  " +
                        joinErrors(errors)});
    }
}

RunResult
Runner::run(const std::vector<AppProfile> &apps, TlpPolicy &policy,
            std::vector<std::uint32_t> core_share) const
{
    GpuConfig cfg = cfg_;
    cfg.numApps = static_cast<std::uint32_t>(apps.size());
    const Cycle win = opts_.windowCycles;
    const std::uint64_t base_key =
        warmBaseKey(cfg, apps, core_share, win);
    // Lease the machine from this worker's pool: a repeat of the same
    // (config, apps, core share) reuses a reset instance instead of
    // reconstructing one. If this run throws, the lease destructor
    // sees the unwinding and discards the instance (poisoning).
    GpuPool::Lease lease = GpuPool::threadLocal().acquire(
        cfg, apps, std::move(core_share));
    Gpu &gpu = lease.gpu();

    // Injected run failure (robustness tests): the run dies without
    // producing a result, as a crashed/killed simulation would. It
    // fires with the machine leased, so the unwinding also exercises
    // the pool's poisoning path — exactly what a genuine mid-run
    // crash would do.
    if (opts_.faultInjector != nullptr &&
        opts_.faultInjector->shouldFire(FaultInjector::Point::RunFail)) {
        fatal(Error{Errc::RunFailed, "Runner: injected run failure"});
    }

    EbMonitor monitor(gpu, EbMonitor::Mode::DesignatedUnits,
                      kRelayLatency, opts_.faultInjector);

    const Cycle total = opts_.warmupCycles + opts_.measureCycles;
    const bool deferred = policy.defersToMeasureStart();

    // Warm-state forking: the prefix up to the fork target is policy-
    // neutral (a deferred policy touches nothing before measure start;
    // a gpu-neutral-start policy touches nothing before the first
    // window close), so it can be simulated once per shape, captured,
    // and restored here instead of re-run per combination. Disabled by
    // the EBM_SNAPSHOT kill switch and whenever a fault injector is
    // present (injected faults must perturb the whole run).
    Cycle fork_target = 0;
    if (WarmStateCache::enabled() && opts_.faultInjector == nullptr) {
        if (deferred) {
            // The measure boundary on the window ladder: the first
            // window close at or after warmup, capped at the run end.
            const Cycle ladder =
                ((opts_.warmupCycles + win - 1) / win) * win;
            fork_target =
                std::min(total, std::max<Cycle>(win, ladder));
        } else if (policy.startIsGpuNeutral()) {
            fork_target = std::min(total, win);
        }
    }

    // A deferred policy's onRunStart moves to measure start; all
    // others keep the cycle-0 call (gpu-neutral ones by contract only
    // touch their own state here).
    if (!deferred)
        policy.onRunStart(gpu);

    EbSample sample{};
    Cycle elapsed = 0;
    bool pending = false;

    if (fork_target != 0) {
        using Checkpoint = WarmStateCache::Checkpoint;
        WarmStateCache &cache = WarmStateCache::instance();
        // First level: a checkpoint retained with the leased machine
        // (lock-free). Second level: the process-wide cache, which
        // single-flights the warm simulation on a miss.
        const std::uint64_t retain_key = hashIds(base_key, fork_target);
        std::shared_ptr<const Checkpoint> cp =
            std::static_pointer_cast<const Checkpoint>(
                lease.retainedSnapshot(retain_key));
        if (cp != nullptr) {
            cache.noteHit();
        } else {
            cp = cache.warmTo(base_key, gpu, fork_target, win,
                              kRelayLatency);
            if (cp != nullptr) {
                lease.retainSnapshot(retain_key, cp, cp->heapBytes());
            }
        }
        if (cp != nullptr) {
            gpu.restore(cp->gpu);
            monitor.restore(cp->monitor);
            sample = cp->sample;
            elapsed = cp->elapsed;
            pending = true;
        }
    }
    if (!pending)
        gpu.checkpoint();

    CounterTotals start{};
    bool measuring = false;
    Cycle next_relaunch = opts_.relaunchInterval == 0
                              ? kNeverCycle
                              : opts_.relaunchInterval;
    // Replay the relaunch arithmetic over the skipped prefix closes
    // (integer-only; the policy callbacks there were no-ops by the
    // neutrality contract). All skipped closes are full windows.
    for (Cycle e = win; e < elapsed; e += win) {
        if (e >= next_relaunch)
            next_relaunch += opts_.relaunchInterval;
    }

    // The loop is phrased tail-first: each iteration finishes the
    // window that last closed (policy callback, counter checkpoint,
    // measurement start, relaunch check) before running the next
    // chunk. A restored run enters with `pending` set and the fork
    // point's sample, so its first iteration performs exactly the
    // tail the capture cut in half — the call sequence is identical
    // to the cold run's.
    while (true) {
        if (pending) {
            pending = false;
            // Let the policy act on the closed window (it may also
            // read window counters, so the checkpoint happens after
            // it runs). The sample reflects the window just finished,
            // so decisions are always one window behind reality — the
            // monitor's relay latency (~100 cycles) is folded into
            // this delay.
            policy.onWindow(gpu, gpu.now(), sample);
            gpu.checkpoint();
            if (!measuring && elapsed >= opts_.warmupCycles) {
                if (deferred)
                    policy.onRunStart(gpu);
                start = takeSnapshot(gpu);
                measuring = true;
            }
            if (elapsed >= next_relaunch) {
                policy.onKernelRelaunch(gpu, gpu.now());
                next_relaunch += opts_.relaunchInterval;
            }
        }
        if (elapsed >= total)
            break;
        const Cycle chunk = std::min<Cycle>(win, total - elapsed);
        gpu.run(chunk);
        elapsed += chunk;
        sample = monitor.closeWindow(gpu.now());
        pending = true;
    }

    const CounterTotals end = takeSnapshot(gpu);
    RunResult result = diffSnapshots(gpu, start, end);
    result.samplesTaken = policy.samplesTaken();
    return result;
}

RunResult
Runner::runStatic(const std::vector<AppProfile> &apps,
                  const TlpCombo &combo,
                  std::vector<std::uint32_t> core_share) const
{
    StaticTlpPolicy policy("static", combo);
    return run(apps, policy, std::move(core_share));
}

RunResult
Runner::runAlone(const AppProfile &app, std::uint32_t tlp) const
{
    Runner solo(cfg_, opts_);
    // The paper's alone runs use the same per-app core count as the
    // shared runs ("runs alone on the same set of cores").
    solo.cfg_.numCores = cfg_.numCores / std::max(1u, cfg_.numApps);
    solo.cfg_.numApps = 1;
    return solo.runStatic({app}, {tlp});
}

std::string
Runner::fingerprint() const
{
    // Bumped whenever the fingerprint's inputs or mixing change, so
    // entries cached under an older scheme are recomputed instead of
    // aliased. v2: switched from a hand-picked field subset (which
    // silently excluded DRAM timings, cache associativity/line size,
    // latencies, and more — two different machines could share a
    // cache key) to configHash over every GpuConfig field plus every
    // RunOptions field. v3: static policies now apply their TLP combo
    // at measure start instead of cycle 0 (the warm-state fork
    // change), which shifts every measured number; results cached
    // under the old semantics must not alias the new ones.
    constexpr std::uint64_t kFingerprintVersion = 3;

    std::uint64_t h = configHash(cfg_);
    h = hashIds(h, opts_.warmupCycles, opts_.measureCycles,
                opts_.windowCycles);
    // The fault injector is deliberately excluded: it perturbs
    // robustness-test schedules, not measured results.
    h = hashIds(h, opts_.relaunchInterval, kAppCatalogVersion,
                kFingerprintVersion);
    std::ostringstream out;
    out << std::hex << h;
    return out.str();
}

std::string
Runner::comboKey(const std::string &wl_name, const TlpCombo &combo) const
{
    // Built with += (not operator+ on a temporary) to dodge GCC 12's
    // false-positive -Wrestrict on char* + string&&.
    std::string key = "combo/";
    key += fingerprint();
    key += '/';
    key += wl_name;
    for (const std::uint32_t t : combo) {
        key += '/';
        key += std::to_string(t);
    }
    return key;
}

std::string
Runner::aloneKey(const std::string &app_name, std::uint32_t tlp) const
{
    return "alone/" + fingerprint() + "/" + app_name + "/" +
           std::to_string(tlp);
}

} // namespace ebm
