#include "harness/runner.hpp"

#include <sstream>

#include "common/fault_injector.hpp"
#include "common/log.hpp"
#include "common/rng.hpp"
#include "harness/gpu_pool.hpp"
#include "sim/gpu.hpp"
#include "workload/app_catalog.hpp"

namespace ebm {

namespace {

/** Absolute counter totals at a point in time, per app. */
struct Snapshot
{
    std::vector<std::uint64_t> instrs;
    std::vector<std::uint64_t> dataCycles;
    std::vector<std::uint64_t> l1Acc, l1Miss, l2Acc, l2Miss;
    Cycle coreCycles = 0;
    Cycle dramCycles = 0;
};

Snapshot
takeSnapshot(const Gpu &gpu)
{
    const std::uint32_t n = gpu.numApps();
    Snapshot s;
    s.instrs.resize(n);
    s.dataCycles.resize(n);
    s.l1Acc.resize(n);
    s.l1Miss.resize(n);
    s.l2Acc.resize(n);
    s.l2Miss.resize(n);
    s.coreCycles = gpu.now();
    s.dramCycles = gpu.partition(0).dramCyclesElapsed();
    for (AppId app = 0; app < n; ++app) {
        s.instrs[app] = gpu.appInstrs(app);
        s.dataCycles[app] = gpu.appDataCycles(app);
        for (CoreId id : gpu.coresOf(app)) {
            const CacheStats &cs = gpu.core(id).l1().stats();
            s.l1Acc[app] += cs.accesses(app);
            s.l1Miss[app] += cs.misses(app);
        }
        for (PartitionId p = 0; p < gpu.numPartitions(); ++p) {
            const CacheStats &cs = gpu.partition(p).l2().stats();
            s.l2Acc[app] += cs.accesses(app);
            s.l2Miss[app] += cs.misses(app);
        }
    }
    return s;
}

RunResult
diffSnapshots(const Gpu &gpu, const Snapshot &a, const Snapshot &b)
{
    const std::uint32_t n = gpu.numApps();
    RunResult r;
    r.apps.resize(n);
    r.measuredCycles = b.coreCycles - a.coreCycles;
    const double core_cycles = static_cast<double>(r.measuredCycles);
    const double dram_cycles =
        static_cast<double>(b.dramCycles - a.dramCycles);
    const double peak_data =
        dram_cycles * static_cast<double>(gpu.numPartitions());

    for (AppId app = 0; app < n; ++app) {
        AppRunStats &out = r.apps[app];
        out.ipc = core_cycles == 0.0
                      ? 0.0
                      : static_cast<double>(b.instrs[app] -
                                            a.instrs[app]) /
                            core_cycles;
        out.bw = peak_data == 0.0
                     ? 0.0
                     : static_cast<double>(b.dataCycles[app] -
                                           a.dataCycles[app]) /
                           peak_data;
        const auto l1a = b.l1Acc[app] - a.l1Acc[app];
        const auto l1m = b.l1Miss[app] - a.l1Miss[app];
        const auto l2a = b.l2Acc[app] - a.l2Acc[app];
        const auto l2m = b.l2Miss[app] - a.l2Miss[app];
        out.l1Mr = l1a == 0 ? 1.0
                            : static_cast<double>(l1m) /
                                  static_cast<double>(l1a);
        out.l2Mr = l2a == 0 ? 1.0
                            : static_cast<double>(l2m) /
                                  static_cast<double>(l2a);
        r.totalBw += out.bw;
    }
    for (AppId app = 0; app < n; ++app)
        r.finalTlp.push_back(gpu.appTlp(app));
    return r;
}

} // namespace

Runner::Runner(GpuConfig cfg, RunOptions opts)
    : cfg_(std::move(cfg)), opts_(opts)
{
    // Report *all* option problems at once (the config itself is
    // validated by the Gpu constructor per run, once numApps is set).
    const std::vector<Error> errors = opts_.check();
    if (!errors.empty()) {
        fatal(Error{Errc::InvalidConfig,
                    "Runner: invalid RunOptions:\n  " +
                        joinErrors(errors)});
    }
}

RunResult
Runner::run(const std::vector<AppProfile> &apps, TlpPolicy &policy,
            std::vector<std::uint32_t> core_share) const
{
    GpuConfig cfg = cfg_;
    cfg.numApps = static_cast<std::uint32_t>(apps.size());
    // Lease the machine from this worker's pool: a repeat of the same
    // (config, apps, core share) reuses a reset instance instead of
    // reconstructing one. If this run throws, the lease destructor
    // sees the unwinding and discards the instance (poisoning).
    GpuPool::Lease lease = GpuPool::threadLocal().acquire(
        cfg, apps, std::move(core_share));
    Gpu &gpu = lease.gpu();

    // Injected run failure (robustness tests): the run dies without
    // producing a result, as a crashed/killed simulation would. It
    // fires with the machine leased, so the unwinding also exercises
    // the pool's poisoning path — exactly what a genuine mid-run
    // crash would do.
    if (opts_.faultInjector != nullptr &&
        opts_.faultInjector->shouldFire(FaultInjector::Point::RunFail)) {
        fatal(Error{Errc::RunFailed, "Runner: injected run failure"});
    }

    EbMonitor monitor(gpu, EbMonitor::Mode::DesignatedUnits,
                      /*relay_latency=*/100, opts_.faultInjector);
    policy.onRunStart(gpu);
    gpu.checkpoint();

    const Cycle total = opts_.warmupCycles + opts_.measureCycles;
    Snapshot start{};
    bool measuring = false;
    Cycle next_relaunch = opts_.relaunchInterval == 0
                              ? kNeverCycle
                              : opts_.relaunchInterval;

    Cycle elapsed = 0;
    while (elapsed < total) {
        const Cycle chunk =
            std::min<Cycle>(opts_.windowCycles, total - elapsed);
        gpu.run(chunk);
        elapsed += chunk;

        // Close the sampling window and let the policy act (the
        // policy may also read window counters, so the checkpoint
        // happens after it runs). The sample reflects the window just
        // finished, so decisions are always one window behind reality
        // — the monitor's relay latency (~100 cycles) is folded into
        // this delay.
        const EbSample sample = monitor.closeWindow(gpu.now());
        policy.onWindow(gpu, gpu.now(), sample);
        gpu.checkpoint();

        if (!measuring && elapsed >= opts_.warmupCycles) {
            start = takeSnapshot(gpu);
            measuring = true;
        }
        if (elapsed >= next_relaunch) {
            policy.onKernelRelaunch(gpu, gpu.now());
            next_relaunch += opts_.relaunchInterval;
        }
    }

    const Snapshot end = takeSnapshot(gpu);
    RunResult result = diffSnapshots(gpu, start, end);
    result.samplesTaken = policy.samplesTaken();
    return result;
}

RunResult
Runner::runStatic(const std::vector<AppProfile> &apps,
                  const TlpCombo &combo,
                  std::vector<std::uint32_t> core_share) const
{
    StaticTlpPolicy policy("static", combo);
    return run(apps, policy, std::move(core_share));
}

RunResult
Runner::runAlone(const AppProfile &app, std::uint32_t tlp) const
{
    Runner solo(cfg_, opts_);
    // The paper's alone runs use the same per-app core count as the
    // shared runs ("runs alone on the same set of cores").
    solo.cfg_.numCores = cfg_.numCores / std::max(1u, cfg_.numApps);
    solo.cfg_.numApps = 1;
    return solo.runStatic({app}, {tlp});
}

std::string
Runner::fingerprint() const
{
    // Bumped whenever the fingerprint's inputs or mixing change, so
    // entries cached under an older scheme are recomputed instead of
    // aliased. v2: switched from a hand-picked field subset (which
    // silently excluded DRAM timings, cache associativity/line size,
    // latencies, and more — two different machines could share a
    // cache key) to configHash over every GpuConfig field plus every
    // RunOptions field.
    constexpr std::uint64_t kFingerprintVersion = 2;

    std::uint64_t h = configHash(cfg_);
    h = hashIds(h, opts_.warmupCycles, opts_.measureCycles,
                opts_.windowCycles);
    // The fault injector is deliberately excluded: it perturbs
    // robustness-test schedules, not measured results.
    h = hashIds(h, opts_.relaunchInterval, kAppCatalogVersion,
                kFingerprintVersion);
    std::ostringstream out;
    out << std::hex << h;
    return out.str();
}

std::string
Runner::comboKey(const std::string &wl_name, const TlpCombo &combo) const
{
    // Built with += (not operator+ on a temporary) to dodge GCC 12's
    // false-positive -Wrestrict on char* + string&&.
    std::string key = "combo/";
    key += fingerprint();
    key += '/';
    key += wl_name;
    for (const std::uint32_t t : combo) {
        key += '/';
        key += std::to_string(t);
    }
    return key;
}

std::string
Runner::aloneKey(const std::string &app_name, std::uint32_t tlp) const
{
    return "alone/" + fingerprint() + "/" + app_name + "/" +
           std::to_string(tlp);
}

} // namespace ebm
