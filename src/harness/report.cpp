#include "harness/report.hpp"

#include <sstream>

#include "harness/table.hpp"
#include "metrics/metrics.hpp"

namespace ebm {

std::string
MachineReport::appSummary() const
{
    TextTable out({"App", "Cores", "TLP", "IPC", "BW", "L1MR", "L2MR",
                   "CMR", "EB"});
    for (AppId app = 0; app < gpu_.numApps(); ++app) {
        AppRunStats s;
        s.ipc = gpu_.appIpc(app);
        s.bw = gpu_.appAttainedBw(app);
        s.l1Mr = gpu_.appL1MissRate(app);
        s.l2Mr = gpu_.appL2MissRate(app);
        out.addRow({"app" + std::to_string(app),
                    std::to_string(gpu_.coresOf(app).size()),
                    std::to_string(gpu_.appTlp(app)),
                    TextTable::num(s.ipc), TextTable::num(s.bw),
                    TextTable::num(s.l1Mr), TextTable::num(s.l2Mr),
                    TextTable::num(s.cmr()), TextTable::num(s.eb())});
    }
    return "Per-application summary (cycle " +
           std::to_string(gpu_.now()) + ")\n" + out.render();
}

std::string
MachineReport::coreBreakdown() const
{
    TextTable out({"Core", "App", "Instrs", "IPC", "idle%", "memWait%",
                   "stall%", "lostLoc"});
    const double cycles =
        std::max<double>(1.0, static_cast<double>(gpu_.now()));
    for (CoreId id = 0; id < gpu_.numCores(); ++id) {
        const SimtCore &core = gpu_.core(id);
        auto pct = [&](std::uint64_t v) {
            return TextTable::num(100.0 * static_cast<double>(v) /
                                      cycles,
                                  1);
        };
        out.addRow({std::to_string(id),
                    std::to_string(core.app()),
                    std::to_string(core.instrsRetired()),
                    TextTable::num(
                        static_cast<double>(core.instrsRetired()) /
                        cycles),
                    pct(core.idleCycles()), pct(core.memWaitCycles()),
                    pct(core.stallCycles()),
                    std::to_string(core.lostLocality())});
    }
    return "Per-core breakdown\n" + out.render();
}

std::string
MachineReport::memoryBreakdown() const
{
    TextTable out({"Partition", "L2 acc", "L2 miss%", "DRAM reqs",
                   "row hit%", "bus util%"});
    for (PartitionId p = 0; p < gpu_.numPartitions(); ++p) {
        const MemoryPartition &part = gpu_.partition(p);
        std::uint64_t l2a = 0, l2m = 0;
        for (AppId app = 0; app < gpu_.numApps(); ++app) {
            l2a += part.l2().stats().accesses(app);
            l2m += part.l2().stats().misses(app);
        }
        const DramChannel &dram = part.dram();
        const std::uint64_t serviced = dram.requestsServiced();
        const std::uint64_t hits = dram.rowHits();
        std::uint64_t data = 0;
        for (AppId app = 0; app < gpu_.numApps(); ++app)
            data += dram.dataCycles(app);
        const double dram_cycles = std::max<double>(
            1.0, static_cast<double>(part.dramCyclesElapsed()));
        out.addRow(
            {std::to_string(p), std::to_string(l2a),
             TextTable::num(l2a == 0 ? 0.0
                                     : 100.0 * static_cast<double>(l2m) /
                                           static_cast<double>(l2a),
                            1),
             std::to_string(serviced),
             TextTable::num(serviced == 0
                                ? 0.0
                                : 100.0 * static_cast<double>(hits) /
                                      static_cast<double>(serviced),
                            1),
             TextTable::num(100.0 * static_cast<double>(data) /
                                dram_cycles,
                            1)});
    }
    return "Per-partition memory behaviour\n" + out.render();
}

std::string
MachineReport::full() const
{
    std::ostringstream out;
    out << appSummary() << '\n'
        << coreBreakdown() << '\n'
        << memoryBreakdown();
    return out.str();
}

} // namespace ebm
