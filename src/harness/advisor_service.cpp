#include "harness/advisor_service.hpp"

#include <algorithm>
#include <chrono>
#include <set>
#include <sstream>
#include <utility>

#include "common/config.hpp"
#include "common/log.hpp"
#include "harness/warm_state.hpp"
#include "workload/app_catalog.hpp"
#include "workload/workload_suite.hpp"

namespace ebm {

const char *
serveObjectiveName(ServeObjective o)
{
    switch (o) {
      case ServeObjective::FI: return "FI";
      case ServeObjective::HS: return "HS";
      default: return "WS";
    }
}

std::optional<ServeObjective>
parseServeObjective(const std::string &s)
{
    if (s == "WS")
        return ServeObjective::WS;
    if (s == "FI")
        return ServeObjective::FI;
    if (s == "HS")
        return ServeObjective::HS;
    return std::nullopt;
}

// ---------------------------------------------------------------------
// AdvisorService
// ---------------------------------------------------------------------

AdvisorService::AdvisorService(const Runner &runner, DiskCache &cache,
                               Options opts)
    : runner_(runner), cache_(cache), opts_(std::move(opts)),
      probeProfiles_(runner, cache), probe_(runner, cache),
      profiles_(runner, cache), exhaustive_(runner, cache)
{
    if (opts_.fillJobs != 0) {
        profiles_.setJobs(opts_.fillJobs);
        exhaustive_.setJobs(opts_.fillJobs);
    }
    fillThread_ = std::thread([this] { fillLoop(); });
}

AdvisorService::~AdvisorService()
{
    {
        std::lock_guard<std::mutex> lk(mu_);
        stopping_ = true;
    }
    fillQueued_.notify_all();
    fillDone_.notify_all();
    fillThread_.join();
}

AdvisorService::QueryResult
AdvisorService::readyResult(Answer answer) const
{
    QueryResult r;
    r.state = State::Ready;
    r.answer = std::move(answer);
    return r;
}

AdvisorService::Answer
AdvisorService::assemble(const Workload &wl, const ComboTable &table,
                         const std::vector<AppAloneProfile> &profs) const
{
    std::vector<double> alone_ipcs;
    alone_ipcs.reserve(profs.size());
    Answer ans;
    ans.pair = wl.name;
    ans.apps = wl.appNames;
    for (const AppAloneProfile &p : profs) {
        alone_ipcs.push_back(p.ipcAtBest);
        ans.bestAloneTlp.push_back(p.bestTlp);
    }
    const auto choose = [&](OptTarget target) {
        Choice c;
        c.tlp = Exhaustive::argmax(table, target, alone_ipcs);
        c.ws = Exhaustive::value(table, c.tlp, OptTarget::SdWS,
                                 alone_ipcs);
        c.fi = Exhaustive::value(table, c.tlp, OptTarget::SdFI,
                                 alone_ipcs);
        c.hs = Exhaustive::value(table, c.tlp, OptTarget::SdHS,
                                 alone_ipcs);
        return c;
    };
    ans.ws = choose(OptTarget::SdWS);
    ans.fi = choose(OptTarget::SdFI);
    ans.hs = choose(OptTarget::SdHS);
    return ans;
}

std::optional<AdvisorService::Answer>
AdvisorService::tryAnswerFromStore(const Workload &wl)
{
    std::vector<AppAloneProfile> profs;
    profs.reserve(wl.appNames.size());
    for (const std::string &name : wl.appNames) {
        auto p = probeProfiles_.profileCached(findApp(name));
        if (!p)
            return std::nullopt;
        profs.push_back(std::move(*p));
    }
    const auto table = probe_.sweepCached(wl, opts_.levels);
    if (!table)
        return std::nullopt;
    Answer ans = assemble(wl, *table, profs);
    ans.source = Source::Store;
    return ans;
}

AdvisorService::QueryResult
AdvisorService::advise(const std::string &a, const std::string &b,
                       std::uint32_t wait_ms)
{
    std::string lo = a, hi = b;
    if (hi < lo)
        std::swap(lo, hi);
    return adviseCanonical(lo, hi, wait_ms);
}

AdvisorService::QueryResult
AdvisorService::adviseCanonical(const std::string &a,
                                const std::string &b,
                                std::uint32_t wait_ms)
{
    QueryResult r;
    for (const std::string &name : {a, b}) {
        if (!hasApp(name)) {
            r.error = {Errc::InvalidArgument,
                       "unknown application '" + name + "'"};
            return r;
        }
    }
    if (a == b) {
        r.error = {Errc::InvalidArgument,
                   "duplicate application '" + a + "'"};
        return r;
    }

    const Workload wl = makePair(a, b);
    {
        std::lock_guard<std::mutex> lk(mu_);
        ++counters_.requests;
        const auto it = memo_.find(wl.name);
        if (it != memo_.end()) {
            ++counters_.hits;
            Answer ans = it->second;
            ans.source = Source::Memo;
            return readyResult(std::move(ans));
        }
    }

    // Store probe outside the service lock: DiskCache is internally
    // synchronized, and a cold probe is ~levels^2 hash lookups.
    if (auto stored = tryAnswerFromStore(wl)) {
        std::lock_guard<std::mutex> lk(mu_);
        ++counters_.hits;
        memo_.emplace(wl.name, *stored);
        return readyResult(std::move(*stored));
    }

    std::unique_lock<std::mutex> lk(mu_);
    // The fill thread may have finished this pair between the probe
    // above and re-acquiring the lock.
    if (const auto it = memo_.find(wl.name); it != memo_.end()) {
        ++counters_.hits;
        Answer ans = it->second;
        ans.source = Source::Memo;
        return readyResult(std::move(ans));
    }
    ++counters_.misses;
    std::uint64_t ticket = 0;
    const auto inf = inflight_.find(wl.name);
    if (inf != inflight_.end()) {
        // Single-flight: join the fill already queued or running.
        ticket = inf->second;
        ++counters_.joined;
    } else {
        ticket = nextTicket_++;
        tickets_[ticket] = TicketState{wl.name, State::Pending,
                                       {Errc::Internal, ""}};
        inflight_[wl.name] = ticket;
        fillQueue_.push_back(wl);
        ++counters_.fillsDispatched;
        fillQueued_.notify_one();
    }

    if (wait_ms > 0) {
        const bool resolved = fillDone_.wait_for(
            lk, std::chrono::milliseconds(wait_ms), [this, ticket] {
                return stopping_ ||
                       tickets_.at(ticket).state != State::Pending;
            });
        if (resolved && !stopping_) {
            const TicketState &ts = tickets_.at(ticket);
            if (ts.state == State::Failed) {
                r.error = ts.error;
                return r;
            }
            Answer ans = memo_.at(ts.pair);
            ans.source = Source::Fresh;
            return readyResult(std::move(ans));
        }
    }
    r.state = State::Pending;
    r.ticket = ticket;
    return r;
}

AdvisorService::QueryResult
AdvisorService::poll(std::uint64_t ticket)
{
    QueryResult r;
    std::lock_guard<std::mutex> lk(mu_);
    const auto it = tickets_.find(ticket);
    if (it == tickets_.end()) {
        r.error = {Errc::InvalidArgument,
                   "unknown ticket " + std::to_string(ticket)};
        return r;
    }
    switch (it->second.state) {
      case State::Pending:
        r.state = State::Pending;
        r.ticket = ticket;
        return r;
      case State::Failed:
        r.error = it->second.error;
        return r;
      case State::Ready:
        break;
    }
    Answer ans = memo_.at(it->second.pair);
    ans.source = Source::Fresh;
    return readyResult(std::move(ans));
}

void
AdvisorService::fillLoop()
{
    for (;;) {
        Workload wl;
        {
            std::unique_lock<std::mutex> lk(mu_);
            fillQueued_.wait(lk, [this] {
                return stopping_ || !fillQueue_.empty();
            });
            if (fillQueue_.empty())
                return; // stopping_, and nothing left to fill.
            wl = fillQueue_.front();
            fillQueue_.pop_front();
        }

        bool ok = true;
        Error err{Errc::Internal, ""};
        Answer ans;
        // Attribute warm-checkpoint traffic to this fill: fills are
        // serialized on this thread and probe-side queries never run
        // the simulator, so the process-wide cache's counter movement
        // across the fill is exactly the fill's own usage (including
        // its worker threads').
        const WarmStateCache::Stats warmBefore =
            WarmStateCache::instance().stats();
        try {
            const std::vector<AppProfile> apps = resolveApps(wl);
            std::vector<AppAloneProfile> profs;
            profs.reserve(apps.size());
            for (const AppProfile &app : apps)
                profs.push_back(profiles_.profile(app));
            const ComboTable table = exhaustive_.sweep(wl, opts_.levels);
            ans = assemble(wl, table, profs);
            ans.source = Source::Fresh;
        } catch (const FatalError &e) {
            ok = false;
            err = e.error();
            warn("advisor fill for " + wl.name + " failed: " +
                 e.error().toString());
        }

        const WarmStateCache::Stats warmAfter =
            WarmStateCache::instance().stats();

        {
            std::lock_guard<std::mutex> lk(mu_);
            counters_.snapshotHits += warmAfter.hits - warmBefore.hits;
            counters_.snapshotMisses +=
                warmAfter.misses - warmBefore.misses;
            if (ok) {
                ++counters_.fillsCompleted;
                memo_[wl.name] = std::move(ans);
            } else {
                ++counters_.fillsFailed;
            }
            const auto inf = inflight_.find(wl.name);
            if (inf != inflight_.end()) {
                TicketState &ts = tickets_.at(inf->second);
                ts.state = ok ? State::Ready : State::Failed;
                ts.error = err;
                inflight_.erase(inf);
            }
        }
        fillDone_.notify_all();
    }
}

void
AdvisorService::drainFills()
{
    std::unique_lock<std::mutex> lk(mu_);
    fillDone_.wait(lk, [this] {
        return stopping_ ||
               (inflight_.empty() && fillQueue_.empty());
    });
}

AdvisorService::Stats
AdvisorService::stats() const
{
    Stats s;
    {
        std::lock_guard<std::mutex> lk(mu_);
        s = counters_;
        s.inflight = inflight_.size();
    }
    s.latencySamples = latency_.count();
    s.p50us = latency_.percentile(0.50) / 1000.0;
    s.p90us = latency_.percentile(0.90) / 1000.0;
    s.p99us = latency_.percentile(0.99) / 1000.0;
    return s;
}

// ---------------------------------------------------------------------
// AdvisorServer
// ---------------------------------------------------------------------

namespace {

std::string
errorReply(const std::string &code, const std::string &message)
{
    return "ERROR " + code + " " + message;
}

std::string
errorReply(const Error &err)
{
    const std::string code = err.code == Errc::InvalidArgument
                                 ? "bad-request"
                                 : "fill-failed";
    return errorReply(code, err.message);
}

std::string
formatTlp(const TlpCombo &combo)
{
    std::string out;
    for (std::size_t i = 0; i < combo.size(); ++i) {
        if (i != 0)
            out += ',';
        out += std::to_string(combo[i]);
    }
    return out;
}

std::string
formatDouble(double v)
{
    std::ostringstream out;
    out.precision(6);
    out << std::fixed << v;
    return out.str();
}

const char *
sourceName(AdvisorService::Source s)
{
    switch (s) {
      case AdvisorService::Source::Memo: return "memo";
      case AdvisorService::Source::Store: return "store";
      default: return "fresh";
    }
}

/** OK line for one answered pair, led by the requested objective. */
std::string
formatAnswer(const AdvisorService::Answer &ans, ServeObjective obj)
{
    const AdvisorService::Choice &c = ans.forObjective(obj);
    std::string apps;
    for (std::size_t i = 0; i < ans.apps.size(); ++i) {
        if (i != 0)
            apps += ',';
        apps += ans.apps[i];
    }
    return std::string("pair=") + ans.pair + " apps=" + apps +
           " obj=" + serveObjectiveName(obj) + " tlp=" +
           formatTlp(c.tlp) + " ws=" + formatDouble(c.ws) +
           " fi=" + formatDouble(c.fi) + " hs=" + formatDouble(c.hs) +
           " source=" + sourceName(ans.source);
}

/**
 * Reject unknown and duplicate application tokens up front, so every
 * verb shares one validation and one error vocabulary.
 */
std::optional<std::string>
validateApps(const std::vector<std::string> &apps)
{
    std::set<std::string> seen;
    for (const std::string &name : apps) {
        if (!hasApp(name)) {
            return errorReply("unknown-app",
                              "unknown application '" + name + "'");
        }
        if (!seen.insert(name).second) {
            return errorReply("duplicate-app",
                              "application '" + name +
                                  "' listed more than once");
        }
    }
    return std::nullopt;
}

} // namespace

AdvisorServer::AdvisorServer(AdvisorService &service, Options opts)
    : service_(service), opts_(std::move(opts))
{
}

AdvisorServer::~AdvisorServer()
{
    stop();
}

Status
AdvisorServer::start()
{
    auto listener = netListenUnix(opts_.socketPath);
    if (!listener.ok())
        return listener.error();
    listenFd_ = std::move(listener.value());
    acceptThread_ = std::thread([this] { acceptLoop(); });
    return Status::success();
}

void
AdvisorServer::stop()
{
    {
        std::lock_guard<std::mutex> lk(mu_);
        if (stopping_)
            return;
        stopping_ = true;
        // Wake blocked conn threads: recv() returns 0/err after
        // shutdown(), so they fall out of their read loops.
        for (const int fd : liveConnFds_)
            ::shutdown(fd, SHUT_RDWR);
    }
    shutdownCv_.notify_all();
    if (acceptThread_.joinable())
        acceptThread_.join();
    std::vector<std::thread> conns;
    {
        std::lock_guard<std::mutex> lk(mu_);
        conns.swap(connThreads_);
    }
    for (std::thread &t : conns)
        t.join();
    listenFd_.reset();
    ::unlink(opts_.socketPath.c_str());
}

bool
AdvisorServer::shutdownRequested() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return shutdownRequested_ || stopping_;
}

void
AdvisorServer::waitShutdownRequested()
{
    std::unique_lock<std::mutex> lk(mu_);
    shutdownCv_.wait(lk, [this] {
        return shutdownRequested_ || stopping_;
    });
}

void
AdvisorServer::acceptLoop()
{
    for (;;) {
        // Poll with a short timeout so stop() is observed even when no
        // client ever connects (closing an fd another thread is
        // blocked in accept() on is not portable).
        {
            std::lock_guard<std::mutex> lk(mu_);
            if (stopping_)
                return;
        }
        if (!netWaitReadable(listenFd_.get(), 100))
            continue;
        const int fd = netAccept(listenFd_.get());
        if (fd < 0)
            return;
        std::lock_guard<std::mutex> lk(mu_);
        if (stopping_) {
            ::close(fd);
            return;
        }
        liveConnFds_.insert(fd);
        connThreads_.emplace_back(
            [this, fd] { serveConnection(fd); });
    }
}

void
AdvisorServer::serveConnection(int fd)
{
    servefmt::FrameReader reader;
    std::string payload;
    for (;;) {
        std::string bad;
        const auto status = reader.next(payload, &bad);
        if (status == servefmt::FrameReader::Status::Bad) {
            // One best-effort diagnostic, then drop: a garbled stream
            // cannot be resynchronized (no frame boundaries left).
            servefmt::sendFrame(fd,
                                errorReply("bad-frame", bad));
            break;
        }
        if (status == servefmt::FrameReader::Status::NeedMore) {
            char buf[4096];
            const ssize_t n = netRead(fd, buf, sizeof buf);
            if (n <= 0)
                break; // EOF, error, or stop()'s shutdown().
            reader.feed(buf, static_cast<std::size_t>(n));
            continue;
        }

        const auto t0 = std::chrono::steady_clock::now();
        const std::string reply = handleRequest(payload);
        const auto dt = std::chrono::steady_clock::now() - t0;
        service_.recordRequestLatency(static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(dt)
                .count()));
        if (!servefmt::sendFrame(fd, reply))
            break;
        if (reply == "OK BYE")
            break; // SHUTDOWN acknowledged; close our end.
    }
    std::lock_guard<std::mutex> lk(mu_);
    liveConnFds_.erase(fd);
    ::close(fd);
}

std::optional<std::string>
AdvisorServer::parseQueryOpts(const std::vector<std::string> &toks,
                              std::size_t first, ServeObjective &obj,
                              std::uint32_t &wait_ms) const
{
    obj = opts_.defaultObjective;
    wait_ms = 0;
    for (std::size_t i = first; i < toks.size(); i += 2) {
        if (i + 1 >= toks.size()) {
            return errorReply("bad-request",
                              "option '" + toks[i] +
                                  "' is missing its value");
        }
        if (toks[i] == "OBJ") {
            const auto parsed = parseServeObjective(toks[i + 1]);
            if (!parsed) {
                return errorReply("bad-request",
                                  "unknown objective '" + toks[i + 1] +
                                      "' (expected WS, FI, or HS)");
            }
            obj = *parsed;
        } else if (toks[i] == "WAIT") {
            std::uint64_t ms = 0;
            if (!parseUint(toks[i + 1].c_str(), ms) ||
                ms > opts_.maxWaitMs) {
                return errorReply(
                    "bad-request",
                    "invalid WAIT value '" + toks[i + 1] +
                        "' (unsigned milliseconds <= " +
                        std::to_string(opts_.maxWaitMs) + ")");
            }
            wait_ms = static_cast<std::uint32_t>(ms);
        } else {
            return errorReply("bad-request",
                              "unknown option '" + toks[i] + "'");
        }
    }
    return std::nullopt;
}

std::string
AdvisorServer::handleAdvise(const std::vector<std::string> &toks)
{
    if (toks.size() < 3) {
        return errorReply("bad-request",
                          "ADVISE needs two application names");
    }
    const std::vector<std::string> apps{toks[1], toks[2]};
    if (auto bad = validateApps(apps))
        return *bad;
    ServeObjective obj;
    std::uint32_t wait_ms = 0;
    if (auto bad = parseQueryOpts(toks, 3, obj, wait_ms))
        return *bad;

    const auto r = service_.advise(apps[0], apps[1], wait_ms);
    switch (r.state) {
      case AdvisorService::State::Ready:
        return "OK ADVISE " + formatAnswer(r.answer, obj);
      case AdvisorService::State::Pending: {
        std::string lo = apps[0], hi = apps[1];
        if (hi < lo)
            std::swap(lo, hi);
        return "PENDING ticket=" + std::to_string(r.ticket) +
               " pair=" + lo + "_" + hi;
      }
      default:
        return errorReply(r.error);
    }
}

std::string
AdvisorServer::handlePair(const std::vector<std::string> &toks)
{
    // Collect leading app tokens; options start at OBJ/WAIT.
    std::vector<std::string> apps;
    std::size_t i = 1;
    for (; i < toks.size(); ++i) {
        if (toks[i] == "OBJ" || toks[i] == "WAIT")
            break;
        apps.push_back(toks[i]);
    }
    if (apps.size() < 2) {
        return errorReply("bad-request",
                          "PAIR needs at least two application names");
    }
    if (apps.size() > opts_.maxPairApps) {
        return errorReply("bad-request",
                          "PAIR accepts at most " +
                              std::to_string(opts_.maxPairApps) +
                              " applications");
    }
    if (auto bad = validateApps(apps))
        return *bad;
    ServeObjective obj;
    std::uint32_t wait_ms = 0;
    if (auto bad = parseQueryOpts(toks, i, obj, wait_ms))
        return *bad;

    // Query every unordered pair; spend the WAIT budget across them.
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(wait_ms);
    std::size_t pending = 0;
    std::vector<AdvisorService::Answer> answers;
    answers.reserve(apps.size() * (apps.size() - 1) / 2);
    for (std::size_t x = 0; x < apps.size(); ++x) {
        for (std::size_t y = x + 1; y < apps.size(); ++y) {
            const auto left = std::chrono::duration_cast<
                std::chrono::milliseconds>(
                deadline - std::chrono::steady_clock::now());
            const auto budget = static_cast<std::uint32_t>(
                std::max<long long>(left.count(), 0));
            const auto r = service_.advise(apps[x], apps[y], budget);
            switch (r.state) {
              case AdvisorService::State::Ready:
                answers.push_back(r.answer);
                break;
              case AdvisorService::State::Pending:
                ++pending;
                break;
              default:
                return errorReply(r.error);
            }
        }
    }
    if (pending > 0) {
        return "PENDING missing=" + std::to_string(pending) +
               " (pairs are filling; retry PAIR to make progress)";
    }
    std::vector<const AdvisorService::Answer *> order;
    order.reserve(answers.size());
    for (const auto &ans : answers)
        order.push_back(&ans);
    std::sort(order.begin(), order.end(),
              [obj](const auto *l, const auto *r) {
                  return l->forObjective(obj).score(obj) >
                         r->forObjective(obj).score(obj);
              });
    std::string ranked;
    for (const auto *ans : order) {
        if (!ranked.empty())
            ranked += ',';
        ranked += ans->pair + ':' +
                  formatDouble(ans->forObjective(obj).score(obj));
    }
    return "OK PAIR obj=" + std::string(serveObjectiveName(obj)) +
           " best=" + order.front()->pair +
           " tlp=" + formatTlp(order.front()->forObjective(obj).tlp) +
           " ranked=" + ranked;
}

std::string
AdvisorServer::handlePoll(const std::vector<std::string> &toks)
{
    if (toks.size() != 2)
        return errorReply("bad-request", "POLL needs one ticket id");
    std::uint64_t ticket = 0;
    if (!parseUint(toks[1].c_str(), ticket)) {
        return errorReply("bad-request",
                          "invalid ticket '" + toks[1] + "'");
    }
    const auto r = service_.poll(ticket);
    switch (r.state) {
      case AdvisorService::State::Ready:
        return "OK ADVISE " +
               formatAnswer(r.answer, opts_.defaultObjective);
      case AdvisorService::State::Pending:
        return "PENDING ticket=" + std::to_string(r.ticket);
      default:
        return r.error.code == Errc::InvalidArgument
                   ? errorReply("unknown-ticket", r.error.message)
                   : errorReply(r.error);
    }
}

std::string
AdvisorServer::handleStats()
{
    const auto s = service_.stats();
    std::ostringstream out;
    out << "OK STATS requests=" << s.requests << " hits=" << s.hits
        << " misses=" << s.misses << " joined=" << s.joined
        << " inflight=" << s.inflight
        << " fills_dispatched=" << s.fillsDispatched
        << " fills_completed=" << s.fillsCompleted
        << " fills_failed=" << s.fillsFailed
        << " snapshot_hits=" << s.snapshotHits
        << " snapshot_misses=" << s.snapshotMisses
        << " latency_samples=" << s.latencySamples
        << " p50_us=" << formatDouble(s.p50us)
        << " p90_us=" << formatDouble(s.p90us)
        << " p99_us=" << formatDouble(s.p99us);
    return out.str();
}

std::string
AdvisorServer::handleRequest(const std::string &payload)
{
    const std::vector<std::string> toks = servefmt::splitTokens(payload);
    if (toks.empty())
        return errorReply("bad-request", "empty request");
    const std::string &verb = toks[0];
    if (verb == "PING")
        return "OK PONG";
    if (verb == "STATS")
        return handleStats();
    if (verb == "ADVISE")
        return handleAdvise(toks);
    if (verb == "PAIR")
        return handlePair(toks);
    if (verb == "POLL")
        return handlePoll(toks);
    if (verb == "SHUTDOWN") {
        if (!opts_.allowRemoteShutdown) {
            return errorReply("bad-request",
                              "remote shutdown is disabled");
        }
        {
            std::lock_guard<std::mutex> lk(mu_);
            shutdownRequested_ = true;
        }
        shutdownCv_.notify_all();
        return "OK BYE";
    }
    return errorReply("bad-request", "unknown verb '" + verb + "'");
}

} // namespace ebm
