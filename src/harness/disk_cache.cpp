#include "harness/disk_cache.hpp"

#include <fstream>
#include <sstream>

#include "common/log.hpp"

namespace ebm {

DiskCache::DiskCache(std::string path) : path_(std::move(path))
{
    std::ifstream in(path_);
    if (!in)
        return;
    std::string line;
    while (std::getline(in, line)) {
        const auto sep = line.find('|');
        if (sep == std::string::npos)
            continue;
        const std::string key = line.substr(0, sep);
        std::vector<double> values;
        std::istringstream rest(line.substr(sep + 1));
        double v;
        while (rest >> v)
            values.push_back(v);
        entries_[key] = std::move(values);
    }
}

std::optional<std::vector<double>>
DiskCache::get(const std::string &key) const
{
    const auto it = entries_.find(key);
    if (it == entries_.end())
        return std::nullopt;
    return it->second;
}

void
DiskCache::put(const std::string &key, const std::vector<double> &values)
{
    if (key.find('|') != std::string::npos ||
        key.find('\n') != std::string::npos)
        fatal("DiskCache: key contains a reserved character: " + key);
    entries_[key] = values;
    std::ofstream out(path_, std::ios::app);
    if (!out) {
        warn("DiskCache: cannot persist to " + path_);
        return;
    }
    out << key << '|';
    out.precision(17);
    for (double v : values)
        out << ' ' << v;
    out << '\n';
}

} // namespace ebm
