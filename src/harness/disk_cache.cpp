#include "harness/disk_cache.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <sstream>

#include "common/log.hpp"
#include "common/rng.hpp"

namespace ebm {

namespace {

constexpr const char *kHeaderMagic = "ebmcache";
constexpr const char *kFormatVersion = "v2";
constexpr std::uint32_t kDefaultShards = 16;

/** Checksum over an entry's key and value bit patterns. */
std::uint64_t
entryChecksum(const std::string &key, const std::vector<double> &values)
{
    // FNV-1a over the key bytes, then every double's exact bit
    // pattern folded in through the mixer. Values are written with
    // precision 17, so a reload parses bit-identical doubles and the
    // checksum is stable across write/read cycles.
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (const char c : key) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ull;
    }
    for (const double v : values)
        h = hashIds(h, std::bit_cast<std::uint64_t>(v));
    return h;
}

/** FNV-1a over the key bytes (shard selection). */
std::uint64_t
keyHash(const std::string &key)
{
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (const char c : key) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ull;
    }
    return h;
}

std::uint32_t
resolveShardCount(std::uint32_t shards)
{
    if (shards != 0)
        return shards;
    if (const char *env = std::getenv("EBM_CACHE_SHARDS")) {
        const long v = std::strtol(env, nullptr, 10);
        if (v >= 1 && v <= 4096)
            return static_cast<std::uint32_t>(v);
    }
    return kDefaultShards;
}

std::string
toHex(std::uint64_t h)
{
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(h));
    return buf;
}

/** Parse the space-separated value list; false on trailing garbage. */
bool
parseValues(const std::string &text, std::vector<double> &values)
{
    std::istringstream in(text);
    double v;
    while (in >> v)
        values.push_back(v);
    if (in.bad())
        return false;
    // Anything left that is not whitespace is garbage (e.g. a
    // truncated float like "0.12e" or a stray token).
    in.clear();
    std::string rest;
    in >> rest;
    return rest.empty();
}

} // namespace

std::string
DiskCache::machineFingerprint()
{
    // Pin the properties the text format depends on: IEEE-754 doubles
    // of a known width and byte order. Anything else and cached bit
    // patterns cannot be trusted to round-trip.
    std::string fp = std::numeric_limits<double>::is_iec559
                         ? "ieee754"
                         : "nonieee";
    fp += "-d" + std::to_string(sizeof(double) * 8);
    fp += std::endian::native == std::endian::little ? "-le" : "-be";
    return fp;
}

std::string
DiskCache::defaultPath(const std::string &file)
{
    const char *dir = std::getenv("EBM_CACHE_DIR");
    if (dir == nullptr || dir[0] == '\0')
        return file;
    std::string path(dir);
    if (path.back() != '/')
        path += '/';
    return path + file;
}

DiskCache::DiskCache(std::string path, FaultInjector *injector,
                     std::uint32_t shards)
    : path_(std::move(path)), injector_(injector),
      shards_(resolveShardCount(shards))
{
    load();
}

DiskCache::Shard &
DiskCache::shardOf(const std::string &key)
{
    return shards_[keyHash(key) % shards_.size()];
}

const DiskCache::Shard &
DiskCache::shardOf(const std::string &key) const
{
    return shards_[keyHash(key) % shards_.size()];
}

DiskCache::EntryMap
DiskCache::gatherAll() const
{
    // Shards are locked one at a time, in order: the snapshot is a
    // consistent superset of every entry inserted before the caller
    // bumped dirtyGen_, which is all the coalescing protocol needs.
    EntryMap merged;
    for (const Shard &shard : shards_) {
        std::lock_guard<std::mutex> lk(shard.mu);
        merged.insert(shard.entries.begin(), shard.entries.end());
    }
    return merged;
}

std::size_t
DiskCache::size() const
{
    std::size_t total = 0;
    for (const Shard &shard : shards_) {
        std::lock_guard<std::mutex> lk(shard.mu);
        total += shard.entries.size();
    }
    return total;
}

void
DiskCache::load()
{
    std::ifstream in(path_);
    if (!in)
        return; // Missing file: an empty cache, not an error.

    std::vector<std::string> lines;
    std::string line;
    while (std::getline(in, line))
        lines.push_back(line);
    if (lines.empty())
        return;

    // Injected torn write: the final line loses its second half, as
    // if the writing process was killed mid-write.
    if (injector_ != nullptr &&
        injector_->shouldFire(FaultInjector::Point::CacheReadTruncate)) {
        std::string &last = lines.back();
        last = last.substr(0, last.size() / 2);
    }

    std::istringstream header(lines.front());
    std::string magic, version, fingerprint;
    header >> magic >> version >> fingerprint;

    if (magic == kHeaderMagic) {
        if (version != kFormatVersion ||
            fingerprint != machineFingerprint()) {
            // Wrong version or foreign machine: nothing on this file
            // can be trusted, but it may be valuable elsewhere —
            // quarantine it and start fresh.
            warn("DiskCache: " + path_ + " has header '" +
                 lines.front() + "', expected '" + kHeaderMagic + " " +
                 kFormatVersion + " " + machineFingerprint() +
                 "'; quarantining and recomputing");
            for (Shard &shard : shards_)
                shard.entries.clear();
            quarantineAndRewrite();
            return;
        }
        for (std::size_t i = 1; i < lines.size(); ++i) {
            if (!parseEntryLine(lines[i], /*with_checksum=*/true))
                ++loadReport_.entriesSkipped;
        }
    } else {
        // Legacy v1 file (no header, no checksums): best-effort load,
        // then upgrade in place.
        loadReport_.migratedV1 = true;
        for (const std::string &l : lines) {
            if (!parseEntryLine(l, /*with_checksum=*/false))
                ++loadReport_.entriesSkipped;
        }
    }
    loadReport_.entriesLoaded = size();

    if (loadReport_.entriesSkipped > 0) {
        warn("DiskCache: skipped " +
             std::to_string(loadReport_.entriesSkipped) +
             " corrupt entr" +
             (loadReport_.entriesSkipped == 1 ? "y" : "ies") + " in " +
             path_ + "; quarantining the damaged file and recomputing "
                     "the lost results");
        quarantineAndRewrite();
    } else if (loadReport_.migratedV1) {
        if (persistAll())
            inform("DiskCache: migrated " + path_ + " from v1 to " +
                   kFormatVersion);
    }
}

bool
DiskCache::parseEntryLine(const std::string &line, bool with_checksum)
{
    if (line.empty())
        return false;
    const auto key_end = line.find('|');
    if (key_end == std::string::npos || key_end == 0)
        return false;
    const std::string key = line.substr(0, key_end);

    std::string values_text;
    std::uint64_t stored_sum = 0;
    if (with_checksum) {
        const auto sum_end = line.find('|', key_end + 1);
        if (sum_end == std::string::npos)
            return false;
        const std::string sum_hex =
            line.substr(key_end + 1, sum_end - key_end - 1);
        if (sum_hex.empty() || sum_hex.size() > 16)
            return false;
        char *end = nullptr;
        stored_sum = std::strtoull(sum_hex.c_str(), &end, 16);
        if (end == nullptr || *end != '\0')
            return false;
        values_text = line.substr(sum_end + 1);
    } else {
        values_text = line.substr(key_end + 1);
    }

    std::vector<double> values;
    if (!parseValues(values_text, values))
        return false;
    if (with_checksum && entryChecksum(key, values) != stored_sum)
        return false;

    // Constructor-only path, so no shard lock is needed yet.
    EntryMap &entries = shardOf(key).entries;
    if (entries.count(key) != 0)
        ++loadReport_.duplicateKeys;
    entries[key] = std::move(values);
    return true;
}

void
DiskCache::quarantineAndRewrite()
{
    const std::string quarantine = path_ + ".quarantined";
    if (std::rename(path_.c_str(), quarantine.c_str()) == 0) {
        loadReport_.quarantined = true;
        loadReport_.quarantinePath = quarantine;
    } else {
        warn("DiskCache: could not quarantine " + path_ + " to " +
             quarantine);
    }
    // Re-persist whatever survived so the next open is clean even if
    // no further put() happens.
    if (size() != 0 || loadReport_.quarantined)
        persistAll();
}

bool
DiskCache::persistAll()
{
    std::unique_lock<std::mutex> lk(persistMu_);
    return persistOnce(lk);
}

/**
 * One persist attempt. Expects the persist lock held; the file I/O
 * itself runs unlocked on a gathered snapshot so readers and writers
 * are never blocked behind the disk. Failure accounting happens here.
 */
bool
DiskCache::persistOnce(std::unique_lock<std::mutex> &lk)
{
    // The injector query is serialized by the single-writer persist
    // role (and the constructor), so the ordinal fault schedules used
    // by the robustness tests stay deterministic.
    if (injector_ != nullptr &&
        injector_->shouldFire(FaultInjector::Point::CacheWriteFail)) {
        ++persistFailures_;
        lk.unlock();
        warn("DiskCache: injected persist failure for " + path_);
        lk.lock();
        return false;
    }

    lk.unlock();
    const EntryMap snapshot = gatherAll();
    const bool ok = writeSnapshot(snapshot);
    lk.lock();
    if (!ok)
        ++persistFailures_;
    return ok;
}

bool
DiskCache::writeSnapshot(const EntryMap &snapshot)
{
    // Atomic persist: write a sibling temp file, then rename over the
    // real path. A crash mid-write leaves the old file intact; the
    // temp is simply overwritten on the next attempt.
    const std::string tmp = path_ + ".tmp";
    {
        std::ofstream out(tmp, std::ios::trunc);
        if (!out) {
            warn("DiskCache: cannot persist to " + path_ +
                 " (directory unwritable?); results stay in memory");
            return false;
        }
        out << kHeaderMagic << ' ' << kFormatVersion << ' '
            << machineFingerprint() << '\n';

        // Sorted keys: deterministic files that diff cleanly, and the
        // same bytes for a given entry set no matter what order
        // concurrent writers inserted in (or how many shards held
        // the entries in memory).
        std::vector<const std::string *> keys;
        keys.reserve(snapshot.size());
        for (const auto &kv : snapshot)
            keys.push_back(&kv.first);
        std::sort(keys.begin(), keys.end(),
                  [](const std::string *a, const std::string *b) {
                      return *a < *b;
                  });

        out.precision(17);
        for (const std::string *key : keys) {
            const std::vector<double> &values = snapshot.at(*key);
            out << *key << '|' << toHex(entryChecksum(*key, values))
                << '|';
            for (const double v : values)
                out << ' ' << v;
            out << '\n';
        }
        out.flush();
        if (!out) {
            warn("DiskCache: write to " + tmp + " failed");
            std::remove(tmp.c_str());
            return false;
        }
    }
    if (std::rename(tmp.c_str(), path_.c_str()) != 0) {
        warn("DiskCache: rename " + tmp + " -> " + path_ + " failed");
        std::remove(tmp.c_str());
        return false;
    }
    return true;
}

std::optional<std::vector<double>>
DiskCache::get(const std::string &key) const
{
    const Shard &shard = shardOf(key);
    std::lock_guard<std::mutex> lk(shard.mu);
    const auto it = shard.entries.find(key);
    if (it == shard.entries.end()) {
        misses_.fetch_add(1, std::memory_order_relaxed);
        return std::nullopt;
    }
    hits_.fetch_add(1, std::memory_order_relaxed);
    return it->second;
}

std::optional<std::vector<double>>
DiskCache::getValidated(const std::string &key,
                        std::size_t expected_size) const
{
    std::vector<double> values;
    {
        const Shard &shard = shardOf(key);
        std::lock_guard<std::mutex> lk(shard.mu);
        const auto it = shard.entries.find(key);
        if (it == shard.entries.end()) {
            misses_.fetch_add(1, std::memory_order_relaxed);
            return std::nullopt;
        }
        values = it->second;
    }
    if (values.size() != expected_size) {
        warn("DiskCache: entry " + key + " has " +
             std::to_string(values.size()) + " values, expected " +
             std::to_string(expected_size) + "; recomputing");
        misses_.fetch_add(1, std::memory_order_relaxed);
        return std::nullopt;
    }
    // A NaN/Inf written by a pre-guard version is well-shaped and
    // passes its checksum, but no valid run ever measures one — treat
    // it as a miss so the caller recomputes a trustworthy value.
    for (const double v : values) {
        if (!std::isfinite(v)) {
            warn("DiskCache: entry " + key +
                 " holds a non-finite value; recomputing");
            misses_.fetch_add(1, std::memory_order_relaxed);
            return std::nullopt;
        }
    }
    hits_.fetch_add(1, std::memory_order_relaxed);
    return values;
}

void
DiskCache::put(const std::string &key, const std::vector<double> &values)
{
    if (key.empty())
        fatal(Error{Errc::InvalidArgument, "DiskCache: empty key"});
    if (key.find('|') != std::string::npos ||
        key.find('\n') != std::string::npos) {
        fatal(Error{Errc::InvalidArgument,
                    "DiskCache: key contains a reserved character: " +
                        key});
    }

    {
        Shard &shard = shardOf(key);
        std::lock_guard<std::mutex> lk(shard.mu);
        shard.entries[key] = values;
    }

    // Single-writer coalescing persist: if another thread already
    // holds the writer role it is guaranteed to loop until it has
    // covered this generation, so returning here is safe — the entry
    // is in memory and a persist covering it is claimed. Otherwise
    // take the role and rewrite until clean; a burst of concurrent
    // put()s collapses into a handful of file rewrites instead of one
    // per entry. The entry was inserted into its shard *before* this
    // generation bump, so any persist targeting the bumped generation
    // gathers it.
    std::unique_lock<std::mutex> lk(persistMu_);
    ++dirtyGen_;
    if (writerActive_)
        return;
    writerActive_ = true;
    while (persistedGen_ < dirtyGen_) {
        const std::uint64_t target = dirtyGen_;
        persistOnce(lk); // Drops the lock around the file I/O.
        // Advance even on failure — the failure is counted and
        // warned; the next put() retries rather than this one
        // spinning on a broken disk.
        persistedGen_ = target;
    }
    writerActive_ = false;
}

} // namespace ebm
