#include "harness/disk_cache.hpp"

#include <fcntl.h>
#include <sys/file.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <bit>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <limits>
#include <sstream>

#include "common/config.hpp"
#include "common/log.hpp"
#include "common/rng.hpp"
#include "harness/shard_claim.hpp"
#include "harness/store_format.hpp"
#include "workload/app_catalog.hpp"

namespace ebm {

namespace {

// The v3 binary layout lives in harness/store_format.hpp, shared with
// the store_fsck scrubber so both emit identical canonical bytes.
using storefmt::entryChecksum;
using storefmt::kFencingEpochOffset;
using storefmt::kFormatVersionV3;
using storefmt::kFrameHeadBytes;
using storefmt::kFrameMagic;
using storefmt::kFrameTailBytes;
using storefmt::kHeaderSize;
using storefmt::kMagicV3;
using storefmt::kMaxKeyBytes;
using storefmt::kMaxValueCount;

constexpr std::uint32_t kDefaultShards = 16;

/** FNV-1a over the key bytes (shard selection). */
std::uint64_t
keyHash(const std::string &key)
{
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (const char c : key) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ull;
    }
    return h;
}

std::uint32_t
resolveShardCount(std::uint32_t shards)
{
    if (shards != 0)
        return shards;
    return static_cast<std::uint32_t>(
        envUint("EBM_CACHE_SHARDS", kDefaultShards, 1, 4096));
}

/** Parse the space-separated value list; false on trailing garbage. */
bool
parseValues(const std::string &text, std::vector<double> &values)
{
    std::istringstream in(text);
    double v;
    while (in >> v)
        values.push_back(v);
    if (in.bad())
        return false;
    // Anything left that is not whitespace is garbage (e.g. a
    // truncated float like "0.12e" or a stray token).
    in.clear();
    std::string rest;
    in >> rest;
    return rest.empty();
}

/** Clean-store header (fencing epoch 0) for this build. */
std::string
buildHeader()
{
    return storefmt::buildHeader(
        static_cast<std::uint32_t>(kAppCatalogVersion),
        DiskCache::machineFingerprint());
}

using storefmt::appendFrame;

bool
preadAll(int fd, std::uint64_t off, char *data, std::size_t len)
{
    while (len > 0) {
        const ssize_t n =
            ::pread(fd, data, len, static_cast<off_t>(off));
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        if (n == 0)
            return false; // Short file: caller sized from fstat.
        data += n;
        off += static_cast<std::uint64_t>(n);
        len -= static_cast<std::size_t>(n);
    }
    return true;
}

} // namespace

std::string
DiskCache::machineFingerprint()
{
    // Pin the properties the binary format depends on: IEEE-754
    // doubles of a known width and byte order. Anything else and
    // cached bit patterns cannot be trusted to round-trip.
    std::string fp = std::numeric_limits<double>::is_iec559
                         ? "ieee754"
                         : "nonieee";
    fp += "-d" + std::to_string(sizeof(double) * 8);
    fp += std::endian::native == std::endian::little ? "-le" : "-be";
    return fp;
}

std::string
DiskCache::defaultPath(const std::string &file)
{
    const char *dir = std::getenv("EBM_CACHE_DIR");
    if (dir == nullptr || dir[0] == '\0')
        return file;
    std::string path(dir);
    if (path.back() != '/')
        path += '/';
    return path + file;
}

DiskCache::DiskCache(std::string path, FaultInjector *injector,
                     std::uint32_t shards)
    : path_(std::move(path)), injector_(injector), io_(injector),
      shards_(resolveShardCount(shards))
{
    load();
}

DiskCache::Shard &
DiskCache::shardOf(const std::string &key)
{
    return shards_[keyHash(key) % shards_.size()];
}

const DiskCache::Shard &
DiskCache::shardOf(const std::string &key) const
{
    return shards_[keyHash(key) % shards_.size()];
}

DiskCache::EntryMap
DiskCache::gatherAll() const
{
    // Shards are locked one at a time, in order: the snapshot is a
    // consistent superset of every entry inserted before the caller
    // started gathering, which is all the rewrite paths need.
    EntryMap merged;
    for (const Shard &shard : shards_) {
        std::lock_guard<std::mutex> lk(shard.mu);
        merged.insert(shard.entries.begin(), shard.entries.end());
    }
    return merged;
}

std::size_t
DiskCache::size() const
{
    std::size_t total = 0;
    for (const Shard &shard : shards_) {
        std::lock_guard<std::mutex> lk(shard.mu);
        total += shard.entries.size();
    }
    return total;
}

void
DiskCache::load()
{
    // EBM_CACHE_READONLY forces the degraded serving mode (and lets
    // the read-only path be tested deterministically even where
    // permission bits don't apply, e.g. running as root).
    const bool forced_ro = envFlag("EBM_CACHE_READONLY", false);
    int fd = forced_ro ? -1 : ::open(path_.c_str(), O_RDWR);
    const bool writable = fd >= 0;
    if (!writable)
        fd = ::open(path_.c_str(), O_RDONLY);
    if (fd < 0) {
        if (forced_ro) {
            // No file to serve, and appends are refused: an empty
            // read-only store.
            readOnly_ = true;
            loadReport_.readOnlyMode = true;
        }
        return; // Missing file: an empty cache, not an error.
    }
    if (!writable) {
        // The file exists but cannot be written (read-only filesystem,
        // permissions, or EBM_CACHE_READONLY): degrade to serving.
        // Entries load and get() works; appends and torn-tail
        // truncation are refused instead of failing attempt by
        // attempt.
        readOnly_ = true;
        loadReport_.readOnlyMode = true;
        warn("DiskCache: " + path_ +
             " is not writable; serving read-only (appends refused)");
    }
    ::flock(fd, LOCK_EX);

    struct stat st = {};
    if (::fstat(fd, &st) != 0 || st.st_size < 0) {
        ::close(fd);
        return;
    }
    const auto file_size = static_cast<std::size_t>(st.st_size);
    if (file_size == 0) {
        ::close(fd);
        return;
    }

    // Map the file (read() fallback when mmap is unavailable) and
    // dispatch on the magic: binary v3, or legacy text to migrate.
    void *map =
        ::mmap(nullptr, file_size, PROT_READ, MAP_PRIVATE, fd, 0);
    std::vector<char> buffer;
    const char *data;
    if (map != MAP_FAILED) {
        data = static_cast<const char *>(map);
    } else {
        buffer.resize(file_size);
        if (!preadAll(fd, 0, buffer.data(), file_size)) {
            warn("DiskCache: cannot read " + path_ +
                 "; starting with an empty cache");
            ::close(fd);
            return;
        }
        data = buffer.data();
    }

    if (file_size < sizeof kMagicV3 ||
        std::memcmp(data, kMagicV3, sizeof kMagicV3) != 0) {
        // Legacy v1/v2 text store (or garbage): the text loader
        // migrates or quarantines after the fd is released.
        std::vector<char> text(data, data + file_size);
        if (map != MAP_FAILED)
            ::munmap(map, file_size);
        ::close(fd);
        loadText(text);
        return;
    }

    if (file_size < kHeaderSize) {
        // A writer died inside the very first header write. There was
        // nothing durable yet, so truncate rather than quarantine.
        if (map != MAP_FAILED)
            ::munmap(map, file_size);
        loadReport_.tornTailTruncated = true;
        if (writable)
            (void)::ftruncate(fd, 0);
        ::close(fd);
        warn("DiskCache: " + path_ +
             " holds a torn header; truncated to empty");
        return;
    }

    const storefmt::Header header = storefmt::parseHeader(data);
    const std::uint32_t fmt = header.formatVersion;
    const std::uint32_t cat = header.catalogVersion;
    const std::string &fingerprint = header.fingerprint;
    // A nonzero epoch marks appends made under claim takeovers (the
    // fencing protocol in shard_claim.hpp); reported, not validated.
    loadReport_.fencingEpoch = header.fencingEpoch;
    fencingEpoch_.store(header.fencingEpoch, std::memory_order_relaxed);
    if (fmt != storefmt::kFormatVersionV3 ||
        cat != static_cast<std::uint32_t>(kAppCatalogVersion) ||
        fingerprint != machineFingerprint()) {
        // Wrong version, stale app catalog, or foreign machine:
        // nothing in this file can be trusted, but it may be valuable
        // elsewhere — quarantine it and start fresh.
        if (map != MAP_FAILED)
            ::munmap(map, file_size);
        ::close(fd);
        warn("DiskCache: " + path_ + " header (format " +
             std::to_string(fmt) + ", catalog " + std::to_string(cat) +
             ", '" + fingerprint + "') does not match this build " +
             "(format " + std::to_string(kFormatVersionV3) +
             ", catalog " +
             std::to_string(static_cast<std::uint32_t>(
                 kAppCatalogVersion)) +
             ", '" + machineFingerprint() +
             "'); quarantining and recomputing");
        for (Shard &shard : shards_)
            shard.entries.clear();
        quarantineAndRewrite();
        return;
    }

    std::vector<Entry> frames;
    bool torn = false;
    bool corrupt = false;
    std::size_t valid_end =
        scanFrames(data, kHeaderSize, file_size, frames, torn, corrupt);

    // Injected torn write: the final frame loses its tail, as if the
    // writing process was killed mid-append.
    if (injector_ != nullptr &&
        injector_->shouldFire(FaultInjector::Point::CacheReadTruncate) &&
        !frames.empty()) {
        valid_end = frames.back().offset;
        frames.pop_back();
        torn = true;
    }

    if (map != MAP_FAILED)
        ::munmap(map, file_size);

    mergeEntries(frames, &loadReport_.duplicateKeys);
    loadReport_.entriesLoaded = size();

    if (corrupt) {
        // Bad bytes *before* the end of the file cannot be a torn
        // append (appends only ever cut the tail): quarantine, keep
        // the valid prefix, recompute the rest.
        ++loadReport_.entriesSkipped;
        ::close(fd);
        warn("DiskCache: corrupt frame at offset " +
             std::to_string(valid_end) + " in " + path_ +
             "; quarantining the damaged file and recomputing the "
             "lost results");
        quarantineAndRewrite();
        return;
    }
    if (torn) {
        // A writer was killed mid-append: everything before the torn
        // frame is intact, so chop the tail instead of quarantining
        // the whole store.
        ++loadReport_.entriesSkipped;
        loadReport_.tornTailTruncated = true;
        if (writable)
            (void)::ftruncate(fd, static_cast<off_t>(valid_end));
        warn("DiskCache: torn tail in " + path_ + "; truncated to " +
             std::to_string(valid_end) +
             " bytes (last valid frame) and kept " +
             std::to_string(loadReport_.entriesLoaded) + " entries");
    }
    scanOffset_ = valid_end;
    ::close(fd);
}

void
DiskCache::loadText(const std::vector<char> &buffer)
{
    std::vector<std::string> lines;
    {
        std::string line;
        for (const char c : buffer) {
            if (c == '\n') {
                lines.push_back(std::move(line));
                line.clear();
            } else {
                line += c;
            }
        }
        if (!line.empty())
            lines.push_back(std::move(line));
    }
    if (lines.empty())
        return;

    std::istringstream header(lines.front());
    std::string magic, version, fingerprint;
    header >> magic >> version >> fingerprint;

    if (magic == "ebmcache") {
        if (version != "v2" || fingerprint != machineFingerprint()) {
            // Wrong text version or foreign machine: quarantine, as
            // v2 did, and start fresh in the v3 format.
            warn("DiskCache: " + path_ + " has text header '" +
                 lines.front() + "', expected 'ebmcache v2 " +
                 machineFingerprint() +
                 "'; quarantining and recomputing");
            for (Shard &shard : shards_)
                shard.entries.clear();
            quarantineAndRewrite();
            return;
        }
        loadReport_.migratedV2 = true;
        for (std::size_t i = 1; i < lines.size(); ++i) {
            if (!parseEntryLine(lines[i], /*with_checksum=*/true))
                ++loadReport_.entriesSkipped;
        }
    } else {
        // Legacy v1 file (no header, no checksums): best-effort load,
        // then upgrade in place.
        loadReport_.migratedV1 = true;
        for (const std::string &l : lines) {
            if (!parseEntryLine(l, /*with_checksum=*/false))
                ++loadReport_.entriesSkipped;
        }
    }
    loadReport_.entriesLoaded = size();

    if (loadReport_.entriesSkipped > 0) {
        warn("DiskCache: skipped " +
             std::to_string(loadReport_.entriesSkipped) +
             " corrupt entr" +
             (loadReport_.entriesSkipped == 1 ? "y" : "ies") + " in " +
             path_ + "; quarantining the damaged file and recomputing "
                     "the lost results");
        quarantineAndRewrite();
    } else if (persistCompacted()) {
        inform("DiskCache: migrated " + path_ + " from " +
               (loadReport_.migratedV1 ? "v1 text" : "v2 text") +
               " to the v3 binary format");
    }
}

bool
DiskCache::parseEntryLine(const std::string &line, bool with_checksum)
{
    if (line.empty())
        return false;
    const auto key_end = line.find('|');
    if (key_end == std::string::npos || key_end == 0)
        return false;
    const std::string key = line.substr(0, key_end);

    std::string values_text;
    std::uint64_t stored_sum = 0;
    if (with_checksum) {
        const auto sum_end = line.find('|', key_end + 1);
        if (sum_end == std::string::npos)
            return false;
        const std::string sum_hex =
            line.substr(key_end + 1, sum_end - key_end - 1);
        if (sum_hex.empty() || sum_hex.size() > 16)
            return false;
        char *end = nullptr;
        stored_sum = std::strtoull(sum_hex.c_str(), &end, 16);
        if (end == nullptr || *end != '\0')
            return false;
        values_text = line.substr(sum_end + 1);
    } else {
        values_text = line.substr(key_end + 1);
    }

    std::vector<double> values;
    if (!parseValues(values_text, values))
        return false;
    if (with_checksum && entryChecksum(key, values) != stored_sum)
        return false;

    // Constructor-only path, so no shard lock is needed yet.
    EntryMap &entries = shardOf(key).entries;
    if (entries.count(key) != 0)
        ++loadReport_.duplicateKeys;
    entries[key] = std::move(values);
    return true;
}

std::size_t
DiskCache::scanFrames(const char *data, std::size_t begin,
                      std::size_t end, std::vector<Entry> &out,
                      bool &torn, bool &corrupt)
{
    torn = false;
    corrupt = false;
    std::size_t off = begin;
    while (off < end) {
        storefmt::Frame frame;
        const storefmt::FrameParse parse =
            storefmt::parseFrameAt(data, off, end, frame);
        if (parse == storefmt::FrameParse::Torn) {
            torn = true;
            break;
        }
        if (parse == storefmt::FrameParse::Bad) {
            corrupt = true;
            break;
        }
        Entry e;
        e.key = std::move(frame.key);
        e.values = std::move(frame.values);
        e.offset = off;
        out.push_back(std::move(e));
        off += frame.bytes;
    }
    return off;
}

std::size_t
DiskCache::mergeEntries(std::vector<Entry> &entries,
                        std::size_t *duplicates)
{
    for (Entry &e : entries) {
        Shard &shard = shardOf(e.key);
        std::lock_guard<std::mutex> lk(shard.mu);
        const auto it = shard.entries.find(e.key);
        if (it == shard.entries.end()) {
            shard.entries.emplace(std::move(e.key),
                                  std::move(e.values));
        } else {
            if (duplicates != nullptr)
                ++*duplicates;
            it->second = std::move(e.values);
        }
    }
    const std::size_t merged = entries.size();
    entries.clear();
    return merged;
}

bool
DiskCache::scanRegionLocked(int fd, std::uint64_t file_size,
                            std::uint64_t &valid_end,
                            std::size_t &merged)
{
    merged = 0;
    valid_end = file_size;
    if (scanOffset_ < kHeaderSize) {
        // We loaded an empty/missing file and a peer created the
        // store meanwhile: verify it really is one before trusting
        // frame offsets.
        char magic[sizeof kMagicV3] = {};
        if (!preadAll(fd, 0, magic, sizeof magic) ||
            std::memcmp(magic, kMagicV3, sizeof magic) != 0) {
            warn("DiskCache: " + path_ +
                 " is not a v3 store; skipping refresh");
            return false;
        }
        scanOffset_ = kHeaderSize;
    }
    if (file_size <= scanOffset_)
        return true;

    std::vector<char> region(file_size - scanOffset_);
    if (!preadAll(fd, scanOffset_, region.data(), region.size())) {
        warn("DiskCache: cannot read appended frames from " + path_);
        return false;
    }
    std::vector<Entry> frames;
    bool torn = false;
    bool corrupt = false;
    const std::size_t rel_end =
        scanFrames(region.data(), 0, region.size(), frames, torn,
                   corrupt);
    valid_end = scanOffset_ + rel_end;
    merged = mergeEntries(frames, nullptr);
    if (corrupt) {
        // Mid-run corruption from a peer survived its CRC — disk-level
        // damage. Don't quarantine a store other processes are using;
        // skip past it and let a later cold load recover.
        warn("DiskCache: corrupt appended frame at offset " +
             std::to_string(valid_end) + " in " + path_ +
             "; ignoring the damaged region");
        scanOffset_ = file_size;
        valid_end = file_size;
        return true;
    }
    if (torn) {
        // We hold the exclusive lock, so no live writer is mid-append:
        // the partial tail belongs to a killed peer. Chop it (unless
        // degraded to read-only — then just stop before the tear).
        if (!readOnly_ &&
            ::ftruncate(fd, static_cast<off_t>(valid_end)) == 0)
            warn("DiskCache: truncated a torn peer append in " +
                 path_ + " at " + std::to_string(valid_end) +
                 " bytes");
    }
    scanOffset_ = valid_end;
    return true;
}

void
DiskCache::quarantineAndRewrite()
{
    if (readOnly_) {
        // Nothing on a read-only filesystem can be moved or rewritten;
        // keep serving whatever loaded and leave repair to store_fsck
        // on a writable mount.
        warn("DiskCache: " + path_ +
             " needs quarantine/rewrite but the store is read-only; "
             "serving the valid entries only");
        return;
    }
    const std::string quarantine = path_ + ".quarantined";
    if (std::rename(path_.c_str(), quarantine.c_str()) == 0) {
        loadReport_.quarantined = true;
        loadReport_.quarantinePath = quarantine;
    } else {
        warn("DiskCache: could not quarantine " + path_ + " to " +
             quarantine);
    }
    // The original file is gone; a successful rewrite below resets
    // the scan cursor itself, a failed one leaves no file at all.
    scanOffset_ = 0;
    // Re-persist whatever survived so the next open is clean even if
    // no further put() happens.
    if (size() != 0 || loadReport_.quarantined)
        persistCompacted();
}

bool
DiskCache::persistCompacted()
{
    if (readOnly_) {
        warn("DiskCache: " + path_ +
             " is read-only; compaction/rewrite refused");
        return false;
    }
    // The injector query is serialized by the callers (constructor,
    // offline compaction), so the ordinal fault schedules used by the
    // robustness tests stay deterministic.
    if (injector_ != nullptr &&
        injector_->shouldFire(FaultInjector::Point::CacheWriteFail)) {
        warn("DiskCache: injected persist failure for " + path_);
        std::lock_guard<std::mutex> lk(persistMu_);
        ++persistFailures_;
        return false;
    }
    const bool ok = writeCompacted(gatherAll());
    if (!ok) {
        std::lock_guard<std::mutex> lk(persistMu_);
        ++persistFailures_;
    }
    return ok;
}

bool
DiskCache::writeCompacted(const EntryMap &snapshot)
{
    // Sorted keys: deterministic bytes that diff cleanly — the same
    // file for a given entry set no matter what order frames were
    // appended in, how many threads raced, or how many processes
    // cooperated on the sweep.
    std::vector<const std::string *> keys;
    keys.reserve(snapshot.size());
    for (const auto &kv : snapshot)
        keys.push_back(&kv.first);
    std::sort(keys.begin(), keys.end(),
              [](const std::string *a, const std::string *b) {
                  return *a < *b;
              });
    std::string buf = buildHeader();
    for (const std::string *key : keys)
        appendFrame(buf, *key, snapshot.at(*key));

    {
        std::lock_guard<std::mutex> io(ioMu_);
        // Atomic rewrite: a sibling temp file, fsync, then rename over
        // the real path. A crash mid-write leaves the old file intact.
        const std::string tmp = path_ + ".tmp";
        const int fd =
            ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
        if (fd < 0) {
            warn("DiskCache: cannot persist to " + path_ +
                 " (directory unwritable?); results stay in memory");
            return false;
        }
        const bool wrote = io_.pwriteAll(fd, 0, buf.data(),
                                         buf.size()).ok() &&
                           io_.fsyncFd(fd).ok();
        ::close(fd);
        if (!wrote) {
            warn("DiskCache: write to " + tmp + " failed");
            std::remove(tmp.c_str());
            return false;
        }
        if (std::rename(tmp.c_str(), path_.c_str()) != 0) {
            warn("DiskCache: rename " + tmp + " -> " + path_ +
                 " failed");
            std::remove(tmp.c_str());
            return false;
        }
        scanOffset_ = buf.size();
    }
    std::lock_guard<std::mutex> lk(persistMu_);
    loadReport_.bytesWritten += buf.size();
    return true;
}

bool
DiskCache::compact()
{
    // Compaction renders the store canonical again; the claim dir's
    // leftover fencing counters from finished rows go with it (a
    // sidecar under a live claim is kept — see sweepOrphanedEpochs).
    const std::size_t swept = sweepOrphanedEpochs(path_);
    if (swept > 0) {
        warn("DiskCache: swept " + std::to_string(swept) +
             " orphaned epoch sidecar(s) for " + path_);
    }
    return persistCompacted();
}

std::size_t
DiskCache::refresh()
{
    std::lock_guard<std::mutex> io(ioMu_);
    int fd = ::open(path_.c_str(), O_RDWR);
    if (fd < 0)
        fd = ::open(path_.c_str(), O_RDONLY);
    if (fd < 0)
        return 0; // Nothing persisted anywhere yet.
    // Exclusive, not shared: a scan may truncate a torn peer tail.
    ::flock(fd, LOCK_EX);
    struct stat st = {};
    std::size_t merged = 0;
    if (::fstat(fd, &st) == 0 &&
        static_cast<std::uint64_t>(st.st_size) > scanOffset_ &&
        static_cast<std::uint64_t>(st.st_size) >= kHeaderSize) {
        std::uint64_t valid_end = 0;
        scanRegionLocked(fd, static_cast<std::uint64_t>(st.st_size),
                         valid_end, merged);
    }
    ::close(fd);
    return merged;
}

bool
DiskCache::appendBatch(const std::vector<Entry> &batch)
{
    // The injector query is serialized by the single-writer append
    // role (one query per batch, matching the v2 one-per-rewrite), so
    // ordinal fault schedules stay deterministic.
    if (injector_ != nullptr &&
        injector_->shouldFire(FaultInjector::Point::CacheWriteFail)) {
        warn("DiskCache: injected persist failure for " + path_);
        return false;
    }

    std::string buf;
    for (const Entry &e : batch)
        appendFrame(buf, e.key, e.values);

    std::uint64_t wrote = 0;
    bool ok = false;
    {
        std::lock_guard<std::mutex> io(ioMu_);
        const int fd =
            ::open(path_.c_str(), O_RDWR | O_CREAT, 0644);
        if (fd < 0) {
            warn("DiskCache: cannot persist to " + path_ +
                 " (directory unwritable?); results stay in memory");
            return false;
        }
        ::flock(fd, LOCK_EX);
        struct stat st = {};
        if (::fstat(fd, &st) == 0) {
            auto end = static_cast<std::uint64_t>(st.st_size);
            bool ready = true;
            if (end < kHeaderSize) {
                // Empty store, or a header torn by a writer killed on
                // its very first batch: (re)write the header.
                const std::string header = buildHeader();
                if (end != 0)
                    (void)::ftruncate(fd, 0);
                ready = io_.pwriteAll(fd, 0, header.data(),
                                      header.size()).ok();
                if (ready) {
                    end = kHeaderSize;
                    wrote += header.size();
                    scanOffset_ = kHeaderSize;
                }
            } else {
                // Fold in frames other processes appended since our
                // last scan, under the same exclusive lock, so our
                // append lands at the true end of valid data.
                std::size_t merged = 0;
                ready = scanRegionLocked(fd, end, end, merged);
            }
            if (ready) {
                // Echo the max fencing epoch this process appended
                // under into the header (shard_claim.hpp), while the
                // exclusive flock serializes the read-modify-write.
                // Raw pwrite, not the shim: metadata only — a torn
                // epoch field degrades reporting, never frames — and
                // keeping it off the injection stream keeps seeded
                // frame-fault schedules stable. Zero epochs (every
                // unsharded run) never touch the field, so clean-run
                // bytes are unchanged.
                const std::uint64_t epoch =
                    fencingEpoch_.load(std::memory_order_relaxed);
                if (epoch != 0) {
                    std::uint64_t on_disk = 0;
                    if (::pread(fd, &on_disk, sizeof on_disk,
                                static_cast<off_t>(
                                    kFencingEpochOffset)) ==
                            static_cast<ssize_t>(sizeof on_disk) &&
                        epoch > on_disk) {
                        (void)::pwrite(fd, &epoch, sizeof epoch,
                                       static_cast<off_t>(
                                           kFencingEpochOffset));
                    }
                }
                const Status wr =
                    io_.pwriteAll(fd, end, buf.data(), buf.size());
                ok = wr.ok() && io_.fsyncFd(fd).ok();
                if (ok) {
                    wrote += buf.size();
                    scanOffset_ = end + buf.size();
                } else {
                    // Drop our own partial append so the file stays a
                    // clean frame sequence for every other process.
                    (void)::ftruncate(fd, static_cast<off_t>(end));
                    if (!wr.ok())
                        warn("DiskCache: append I/O failed: " +
                             wr.error().toString());
                }
            }
        }
        ::close(fd);
    }
    if (!ok) {
        warn("DiskCache: append to " + path_ + " failed");
        return false;
    }
    std::lock_guard<std::mutex> lk(persistMu_);
    loadReport_.bytesWritten += wrote;
    ++loadReport_.appendBatches;
    loadReport_.entriesAppended += batch.size();
    return true;
}

std::optional<std::vector<double>>
DiskCache::get(const std::string &key) const
{
    const Shard &shard = shardOf(key);
    std::lock_guard<std::mutex> lk(shard.mu);
    const auto it = shard.entries.find(key);
    if (it == shard.entries.end()) {
        misses_.fetch_add(1, std::memory_order_relaxed);
        return std::nullopt;
    }
    hits_.fetch_add(1, std::memory_order_relaxed);
    return it->second;
}

std::optional<std::vector<double>>
DiskCache::getValidated(const std::string &key,
                        std::size_t expected_size) const
{
    std::vector<double> values;
    {
        const Shard &shard = shardOf(key);
        std::lock_guard<std::mutex> lk(shard.mu);
        const auto it = shard.entries.find(key);
        if (it == shard.entries.end()) {
            misses_.fetch_add(1, std::memory_order_relaxed);
            return std::nullopt;
        }
        values = it->second;
    }
    if (values.size() != expected_size) {
        warn("DiskCache: entry " + key + " has " +
             std::to_string(values.size()) + " values, expected " +
             std::to_string(expected_size) + "; recomputing");
        misses_.fetch_add(1, std::memory_order_relaxed);
        return std::nullopt;
    }
    // A NaN/Inf written by a pre-guard version is well-shaped and
    // passes its checksum, but no valid run ever measures one — treat
    // it as a miss so the caller recomputes a trustworthy value.
    for (const double v : values) {
        if (!std::isfinite(v)) {
            warn("DiskCache: entry " + key +
                 " holds a non-finite value; recomputing");
            misses_.fetch_add(1, std::memory_order_relaxed);
            return std::nullopt;
        }
    }
    hits_.fetch_add(1, std::memory_order_relaxed);
    return values;
}

void
DiskCache::put(const std::string &key, const std::vector<double> &values)
{
    (void)tryPut(key, values);
}

void
DiskCache::noteFencingEpoch(std::uint64_t epoch)
{
    // Lock-free fetch-max: appendBatch reads whatever maximum has been
    // noted when it stamps the header.
    std::uint64_t cur = fencingEpoch_.load(std::memory_order_relaxed);
    while (epoch > cur &&
           !fencingEpoch_.compare_exchange_weak(
               cur, epoch, std::memory_order_relaxed))
        ;
}

Status
DiskCache::tryPut(const std::string &key,
                  const std::vector<double> &values)
{
    if (key.empty())
        fatal(Error{Errc::InvalidArgument, "DiskCache: empty key"});
    if (key.find('|') != std::string::npos ||
        key.find('\n') != std::string::npos) {
        fatal(Error{Errc::InvalidArgument,
                    "DiskCache: key contains a reserved character: " +
                        key});
    }
    if (key.size() > kMaxKeyBytes || values.size() > kMaxValueCount) {
        fatal(Error{Errc::InvalidArgument,
                    "DiskCache: entry exceeds format bounds: " + key});
    }

    {
        Shard &shard = shardOf(key);
        std::lock_guard<std::mutex> lk(shard.mu);
        shard.entries[key] = values;
    }

    if (readOnly_) {
        // Degraded mode: the in-memory view stays warm (the insert
        // above) but no append is attempted, so callers that require
        // durability can tell and refuse to release sweep claims.
        std::lock_guard<std::mutex> lk(persistMu_);
        ++persistFailures_;
        return Status(Error{Errc::CacheIo,
                            "DiskCache: " + path_ +
                                " is read-only; refusing append"});
    }

    // Single-writer group commit: if another thread already holds the
    // writer role it is guaranteed to loop until the pending queue —
    // which now contains this entry — is drained, so returning here
    // is safe: the entry is in memory and a batched append covering
    // it is claimed. Otherwise take the role and append until the
    // queue is empty; a burst of concurrent put()s collapses into a
    // handful of batched appends instead of one write per entry.
    std::unique_lock<std::mutex> lk(persistMu_);
    pending_.push_back(Entry{key, values, 0});
    if (writerActive_)
        return Status::success();
    writerActive_ = true;
    std::vector<Entry> batch;
    while (!pending_.empty()) {
        batch.clear();
        batch.swap(pending_);
        lk.unlock();
        const bool ok = appendBatch(batch); // File I/O unlocked.
        lk.lock();
        if (!ok)
            ++persistFailures_;
    }
    writerActive_ = false;
    persistCv_.notify_all();
    return Status::success();
}

void
DiskCache::sync()
{
    // The queue is only ever non-empty while a writer is bound to
    // drain it (put() takes the role itself otherwise), so idle role
    // + empty queue means everything enqueued before this call has
    // been appended or counted as a failure.
    std::unique_lock<std::mutex> lk(persistMu_);
    persistCv_.wait(
        lk, [this] { return !writerActive_ && pending_.empty(); });
}

std::uint64_t
DiskCache::bytesWritten() const
{
    std::lock_guard<std::mutex> lk(persistMu_);
    return loadReport_.bytesWritten;
}

std::uint64_t
DiskCache::appendBatches() const
{
    std::lock_guard<std::mutex> lk(persistMu_);
    return loadReport_.appendBatches;
}

std::uint64_t
DiskCache::entriesAppended() const
{
    std::lock_guard<std::mutex> lk(persistMu_);
    return loadReport_.entriesAppended;
}

std::size_t
DiskCache::persistFailures() const
{
    std::lock_guard<std::mutex> lk(persistMu_);
    return persistFailures_;
}

std::string
DiskCache::persistSummaryLine() const
{
    std::uint64_t bytes, batches, entries;
    {
        std::lock_guard<std::mutex> lk(persistMu_);
        bytes = loadReport_.bytesWritten;
        batches = loadReport_.appendBatches;
        entries = loadReport_.entriesAppended;
    }
    std::ostringstream out;
    out << "cache persist: " << bytes << " bytes in " << batches
        << " append batches covering " << entries << " entries";
    if (entries > 0) {
        out.precision(1);
        out << std::fixed << " ("
            << static_cast<double>(bytes) /
                   static_cast<double>(entries)
            << " bytes/entry)";
    }
    return out.str();
}

} // namespace ebm
