/**
 * @file
 * Drives measured simulation runs: constructs the GPU for a workload,
 * applies a TLP policy, steps sampling windows through the EB monitor,
 * and extracts a RunResult over the measurement span only (warmup is
 * excluded for every scheme equally; online schemes keep searching
 * during measurement, so their search overhead is part of the score).
 */
#pragma once

#include <cstdint>
#include <vector>

#include "common/config.hpp"
#include "core/eb_monitor.hpp"
#include "core/tlp_policy.hpp"
#include "harness/run_result.hpp"
#include "workload/app_profile.hpp"

namespace ebm {

/** Simulation driver for one workload + policy. */
class Runner
{
  public:
    /**
     * @param cfg  base configuration; numCores is used as-is, so solo
     *             profiling passes a config with coresPerApp cores
     * @param opts timing options shared by all runs of an experiment
     */
    Runner(GpuConfig cfg, RunOptions opts);

    /**
     * Run @p apps under @p policy and measure.
     *
     * @param core_share optional per-app core split (empty = equal)
     */
    RunResult run(const std::vector<AppProfile> &apps, TlpPolicy &policy,
                  std::vector<std::uint32_t> core_share = {}) const;

    /** Run a fixed TLP combination (convenience wrapper). */
    RunResult runStatic(const std::vector<AppProfile> &apps,
                        const TlpCombo &combo,
                        std::vector<std::uint32_t> core_share = {}) const;

    /** Run one application alone at a fixed TLP level. */
    RunResult runAlone(const AppProfile &app, std::uint32_t tlp) const;

    const GpuConfig &config() const { return cfg_; }
    const RunOptions &options() const { return opts_; }

    /**
     * Fingerprint of (config, options, catalog) for disk-cache keys:
     * any change to the simulated machine invalidates cached results.
     */
    std::string fingerprint() const;

    /**
     * Disk-cache key for one shared-run combination row of @p wl_name.
     * The single definition Exhaustive, the shard-claim protocol, and
     * tests all share, so a key drift can never split the store.
     */
    std::string comboKey(const std::string &wl_name,
                         const TlpCombo &combo) const;

    /** Disk-cache key for one alone-profile ladder level. */
    std::string aloneKey(const std::string &app_name,
                         std::uint32_t tlp) const;

  private:
    GpuConfig cfg_;
    RunOptions opts_;
};

} // namespace ebm
