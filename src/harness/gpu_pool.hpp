/**
 * @file
 * Per-worker pooling of simulator instances.
 *
 * A sweep runs thousands of short measurements against a handful of
 * distinct machine shapes. Constructing a Gpu allocates every core,
 * cache, queue, and DRAM bank; the reset(flush_caches) path locked
 * down in PR 3 restores all of that to the post-construction state
 * without a single allocation. The pool exploits this: Runner::run
 * leases an instance keyed by (config, apps, core share), and on
 * release the instance is kept idle for the next row of the same
 * shape, which is reset + knob-restored instead of constructed.
 *
 * Keying is by *full equality* of the configuration, application
 * profiles, and core share — never by hash alone — so two configs can
 * never silently collide on one pooled machine.
 *
 * Poisoning: a lease destroyed while an exception is unwinding (an
 * injected fault, a monitor sanity fatal) discards the instance
 * instead of returning it; half-mutated state is never reused.
 *
 * Pools are thread-local (one per worker), so leases never contend
 * and a poisoned worker cannot hand bad state to a sibling. The
 * shared immutable state (TraceArtifact) is process-wide; only the
 * mutable machine is per-worker.
 *
 * The pool is an accelerator, never a semantic: EBM_GPU_POOL=0 (or
 * setEnabled(false)) makes every lease construct-and-discard, and the
 * golden-digest and pooled-vs-fresh tests pin that both modes produce
 * bit-identical results.
 */
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/config.hpp"
#include "workload/app_profile.hpp"

namespace ebm {

class Gpu;

/** Thread-local cache of reusable Gpu instances. */
class GpuPool
{
  public:
    /** Reuse accounting (per pool, i.e. per worker thread). */
    struct Stats
    {
        std::uint64_t hits = 0;      ///< Leases served by reuse.
        std::uint64_t misses = 0;    ///< Leases that constructed.
        std::uint64_t discards = 0;  ///< Poisoned/disabled releases.
        std::uint64_t evictions = 0; ///< Idle instances displaced.
    };

    /** One type-erased snapshot retained alongside a pooled machine. */
    struct Retained
    {
        std::uint64_t key = 0;
        std::shared_ptr<const void> snapshot;
        std::size_t bytes = 0;
    };

    /** RAII lease of one Gpu; returns or discards on destruction. */
    class Lease
    {
      public:
        Lease(Lease &&other) noexcept;
        Lease &operator=(Lease &&) = delete;
        Lease(const Lease &) = delete;
        Lease &operator=(const Lease &) = delete;
        ~Lease();

        Gpu &gpu() { return *gpu_; }

        /** Force discard on release (half-mutated state). */
        void poison() { poisoned_ = true; }

        /**
         * Retain @p snapshot with this lease's machine: when the
         * machine is returned to the pool, the snapshot rides along
         * and is served lock-free to the next lease of the same shape
         * via retainedSnapshot(). @p bytes must be the snapshot's
         * retained heap footprint — the pool charges it against its
         * eviction budget. Re-retaining an existing @p key replaces
         * the previous snapshot.
         */
        void retainSnapshot(std::uint64_t key,
                            std::shared_ptr<const void> snapshot,
                            std::size_t bytes);

        /** Snapshot previously retained under @p key, or null. */
        std::shared_ptr<const void>
        retainedSnapshot(std::uint64_t key) const
        {
            for (const Retained &r : retained_) {
                if (r.key == key)
                    return r.snapshot;
            }
            return nullptr;
        }

      private:
        friend class GpuPool;
        struct Key
        {
            GpuConfig cfg;
            std::vector<AppProfile> apps;
            std::vector<std::uint32_t> coreShare;

            bool operator==(const Key &) const = default;
        };

        Lease(GpuPool *pool, Key key, std::unique_ptr<Gpu> gpu);

        GpuPool *pool_; ///< Null = pooling disabled; just discard.
        Key key_;
        std::unique_ptr<Gpu> gpu_;
        /** Snapshots riding along with the machine; small. */
        std::vector<Retained> retained_;
        bool poisoned_ = false;
        int uncaughtAtAcquire_ = 0;
    };

    GpuPool() = default;
    GpuPool(const GpuPool &) = delete;
    GpuPool &operator=(const GpuPool &) = delete;

    /**
     * Lease an instance for (cfg, apps, core_share). cfg.numApps must
     * equal apps.size() (the Gpu constructor validates). A pooled
     * instance is reset(true) + restoreKnobDefaults()ed before it is
     * handed out, so the caller sees construction-fresh state either
     * way.
     */
    Lease acquire(const GpuConfig &cfg,
                  const std::vector<AppProfile> &apps,
                  std::vector<std::uint32_t> core_share);

    /** Drop all idle instances (tests; memory pressure). */
    void clear();

    /** Idle instances currently held. */
    std::size_t idleCount() const { return idle_.size(); }

    /** Snapshot bytes retained across all idle instances. */
    std::size_t retainedBytes() const;

    /**
     * Byte budget for lease-retained snapshots across idle entries;
     * exceeding it evicts oldest-first even when the idle count is
     * within kMaxIdle (tests shrink it to force the path).
     */
    void setRetainedBudget(std::size_t bytes)
    {
        retainedBudget_ = bytes;
    }

    const Stats &stats() const { return stats_; }

    /** This thread's pool. */
    static GpuPool &threadLocal();

    /**
     * Process-wide enable switch. Defaults from EBM_GPU_POOL (unset,
     * "1", "on" = enabled; "0", "off" = disabled), read once.
     */
    static bool enabled();
    static void setEnabled(bool enabled);

  private:
    struct Entry
    {
        Lease::Key key;
        std::unique_ptr<Gpu> gpu;
        /** Snapshots retained with the machine (see Lease). */
        std::vector<Retained> retained;
    };

    void release(Lease::Key key, std::unique_ptr<Gpu> gpu,
                 std::vector<Retained> retained, bool poisoned);

    static std::size_t defaultRetainedBudget();

    /** Idle instances, oldest first; small, scanned linearly. */
    std::vector<Entry> idle_;
    Stats stats_;
    std::size_t retainedBudget_ = defaultRetainedBudget();

    static constexpr std::size_t kMaxIdle = 4;
};

} // namespace ebm
