#include "harness/warm_state.hpp"

#include <algorithm>
#include <atomic>

#include "common/config.hpp"
#include "common/log.hpp"

namespace ebm {

namespace {

std::atomic<bool> &
enabledFlag()
{
    // Strict shared parser: "0" disables, "1" (or unset) enables,
    // garbage warns and falls back to enabled.
    static std::atomic<bool> flag{envUint("EBM_SNAPSHOT", 1, 0, 1) != 0};
    return flag;
}

} // namespace

WarmStateCache::WarmStateCache()
    : budgetBytes_(static_cast<std::size_t>(envUint(
                       "EBM_SNAPSHOT_BUDGET_MB", 256, 1, 1u << 20)) *
                   1024 * 1024)
{
}

void
WarmStateCache::computeWarm(Gpu &gpu, const Checkpoint *seed,
                            Cycle target, Cycle window_cycles,
                            Cycle relay_latency, Checkpoint &out)
{
    // The prefix is policy-free: default knobs, windows closed on the
    // monitor, counters checkpointed after each close. This is
    // exactly what the Runner's loop does over the same span for a
    // deferred (or gpu-neutral-start) policy, so the trajectory — and
    // therefore the capture — is bit-identical to a cold run's.
    EbMonitor monitor(gpu, EbMonitor::Mode::DesignatedUnits,
                      relay_latency, nullptr);
    Cycle elapsed = 0;
    if (seed != nullptr) {
        gpu.restore(seed->gpu);
        monitor.restore(seed->monitor);
        elapsed = seed->elapsed;
    }
    // Cold: the run-start checkpoint. Seeded: the deferred post-window
    // checkpoint of the close the seed was captured at.
    gpu.checkpoint();
    while (true) {
        const Cycle chunk =
            std::min<Cycle>(window_cycles, target - elapsed);
        gpu.run(chunk);
        elapsed += chunk;
        const EbSample sample = monitor.closeWindow(gpu.now());
        if (elapsed >= target) {
            // Capture *before* the post-window checkpoint: the resumed
            // run performs this window's tail itself.
            out.gpu = gpu.snapshot();
            out.monitor = monitor.snapshot();
            out.sample = sample;
            out.elapsed = elapsed;
            return;
        }
        gpu.checkpoint();
    }
}

std::shared_ptr<const WarmStateCache::Checkpoint>
WarmStateCache::warmTo(std::uint64_t base_key, Gpu &gpu, Cycle target,
                       Cycle window_cycles, Cycle relay_latency)
{
    if (!enabled())
        return nullptr;

    const std::pair<std::uint64_t, Cycle> key{base_key, target};
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
        const auto it = std::find_if(
            entries_.begin(), entries_.end(), [&](const Entry &e) {
                return e.baseKey == base_key && e.elapsed == target;
            });
        if (it != entries_.end()) {
            entries_.splice(entries_.begin(), entries_, it);
            ++stats_.hits;
            return it->checkpoint;
        }
        if (std::find(inflight_.begin(), inflight_.end(), key) ==
            inflight_.end())
            break;
        // Another thread is computing exactly this checkpoint; wait
        // for it rather than duplicating a full prefix simulation.
        cv_.wait(lock);
    }
    inflight_.push_back(key);

    // Nearest shallower checkpoint of the same shape seeds the warm,
    // so only the remainder of the prefix is simulated.
    std::shared_ptr<const Checkpoint> seed;
    for (const Entry &e : entries_) {
        if (e.baseKey != base_key || e.elapsed >= target)
            continue;
        if (seed == nullptr || e.elapsed > seed->elapsed)
            seed = e.checkpoint;
    }
    ++stats_.misses;
    if (seed != nullptr)
        ++stats_.resumes;
    lock.unlock();

    auto cp = std::make_shared<Checkpoint>();
    computeWarm(gpu, seed.get(), target, window_cycles, relay_latency,
                *cp);

    lock.lock();
    inflight_.erase(
        std::find(inflight_.begin(), inflight_.end(), key));
    insertLocked(base_key, cp);
    cv_.notify_all();
    return cp;
}

void
WarmStateCache::insertLocked(std::uint64_t base_key,
                             std::shared_ptr<const Checkpoint> cp)
{
    stats_.retainedBytes += cp->heapBytes() + sizeof(Checkpoint);
    entries_.push_front(Entry{base_key, cp->elapsed, std::move(cp)});
    // LRU byte budget. The newest entry always survives — a single
    // oversized checkpoint must not evict itself into a thrash loop.
    while (stats_.retainedBytes > budgetBytes_ && entries_.size() > 1) {
        const Entry &victim = entries_.back();
        stats_.retainedBytes -=
            victim.checkpoint->heapBytes() + sizeof(Checkpoint);
        entries_.pop_back();
        ++stats_.evictions;
    }
}

void
WarmStateCache::noteHit()
{
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.hits;
}

WarmStateCache::Stats
WarmStateCache::stats() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
}

void
WarmStateCache::setBudgetBytes(std::size_t bytes)
{
    std::lock_guard<std::mutex> lock(mu_);
    budgetBytes_ = bytes;
}

void
WarmStateCache::clear()
{
    std::lock_guard<std::mutex> lock(mu_);
    for (const Entry &e : entries_)
        stats_.retainedBytes -=
            e.checkpoint->heapBytes() + sizeof(Checkpoint);
    entries_.clear();
}

WarmStateCache &
WarmStateCache::instance()
{
    static WarmStateCache cache;
    return cache;
}

bool
WarmStateCache::enabled()
{
    return enabledFlag().load(std::memory_order_relaxed);
}

void
WarmStateCache::setEnabled(bool enabled)
{
    enabledFlag().store(enabled, std::memory_order_relaxed);
}

} // namespace ebm
