#include "harness/coordinator.hpp"

#include <chrono>
#include <sstream>

#include "common/log.hpp"
#include "common/wire.hpp"
#include "harness/disk_cache.hpp"
#include "harness/shard_claim.hpp"
#include "harness/store_format.hpp"
#include "workload/app_catalog.hpp"

namespace ebm {

namespace {

/** The key part of a "<VERB> <key>" payload (keys are '\n'-free and
 * may in principle hold any other byte, so: rest of line, verbatim). */
std::string
keyAfter(const std::string &payload, std::size_t verb_len)
{
    if (payload.size() <= verb_len + 1)
        return {};
    return payload.substr(verb_len + 1);
}

/** Parse "<VERB> <epoch> <key>"; false when the epoch is malformed. */
bool
epochAndKey(const std::string &payload, std::size_t verb_len,
            std::uint64_t &epoch, std::string &key)
{
    const std::size_t start = verb_len + 1;
    if (payload.size() <= start)
        return false;
    const std::size_t sp = payload.find(' ', start);
    if (sp == std::string::npos || sp + 1 >= payload.size())
        return false;
    epoch = 0;
    for (std::size_t i = start; i < sp; ++i) {
        const char c = payload[i];
        if (c < '0' || c > '9')
            return false;
        epoch = epoch * 10 + static_cast<std::uint64_t>(c - '0');
    }
    key = payload.substr(sp + 1);
    return true;
}

} // namespace

std::string
Coordinator::Stats::summaryLine() const
{
    std::ostringstream out;
    out << "coordinator: conns=" << connections << " rpcs=" << rpcs
        << " granted=" << acquiresGranted
        << " denied=" << acquiresDenied << " takeovers=" << takeovers
        << " fenced=" << fencedOps << " orphaned=" << orphanedLeases
        << " records=" << recordsCommitted
        << " record_bytes=" << recordBytes << " hits=" << fetchHits
        << " misses=" << fetchMisses << " skips=" << skipsMarked
        << " bad_frames=" << badFrames << " rpc_p50_us=" << rpcP50Us
        << " rpc_p99_us=" << rpcP99Us;
    return out.str();
}

Coordinator::Coordinator(DiskCache &cache, Options options)
    : cache_(cache), options_(std::move(options))
{
}

Coordinator::~Coordinator() { stop(); }

std::chrono::milliseconds
Coordinator::staleThreshold() const
{
    return options_.staleThreshold.count() > 0
               ? options_.staleThreshold
               : ShardClaims::staleThreshold();
}

Status
Coordinator::bind()
{
    if (listener_.valid())
        return Status::success();
    auto fd = netListenTcp(options_.host, options_.port);
    if (!fd)
        return fd.error();
    listener_ = std::move(fd.value());
    port_ = netLocalPort(listener_.get());
    return Status::success();
}

Status
Coordinator::start()
{
    if (started_)
        return Status::success();
    if (Status st = bind(); !st)
        return st;
    {
        std::lock_guard<std::mutex> lk(connMu_);
        stopping_ = false;
    }
    acceptThread_ = std::thread([this] { acceptLoop(); });
    started_ = true;
    return Status::success();
}

void
Coordinator::stop()
{
    {
        std::lock_guard<std::mutex> lk(connMu_);
        if (stopping_ && !started_ && !listener_.valid())
            return;
        stopping_ = true;
        // Unblock connection threads stuck in recv: a reader sees
        // EOF/error and falls out of its loop.
        for (const int fd : openFds_)
            ::shutdown(fd, SHUT_RDWR);
    }
    shutdownCv_.notify_all();
    // close() alone does not wake a thread blocked in accept();
    // shutdown() on the listening socket does (accept fails with
    // EINVAL). Only close the fd after the loop has exited, so the
    // number cannot be reused under a still-running accept call.
    if (listener_.valid())
        ::shutdown(listener_.get(), SHUT_RDWR);
    if (acceptThread_.joinable())
        acceptThread_.join();
    listener_.reset();
    started_ = false;
    std::vector<std::thread> conns;
    {
        std::lock_guard<std::mutex> lk(connMu_);
        conns.swap(connThreads_);
    }
    for (std::thread &t : conns)
        t.join();
}

std::string
Coordinator::address() const
{
    return (options_.host.empty() ? std::string("127.0.0.1")
                                  : options_.host) +
           ":" + std::to_string(port_);
}

bool
Coordinator::shutdownRequested() const
{
    std::lock_guard<std::mutex> lk(connMu_);
    return shutdownRequested_ || stopping_;
}

void
Coordinator::waitForShutdown()
{
    std::unique_lock<std::mutex> lk(connMu_);
    shutdownCv_.wait(lk, [this] {
        return shutdownRequested_ || stopping_;
    });
}

Coordinator::Stats
Coordinator::stats() const
{
    Stats s;
    {
        std::lock_guard<std::mutex> lk(statsMu_);
        s = counters_;
    }
    s.rpcP50Us = rpcLatency_.percentile(0.50) / 1000.0;
    s.rpcP99Us = rpcLatency_.percentile(0.99) / 1000.0;
    return s;
}

void
Coordinator::acceptLoop()
{
    for (;;) {
        const int fd = netAccept(listener_.get());
        if (fd < 0)
            return; // Listener closed (stop()) or errored.
        std::uint64_t conn_id = 0;
        {
            std::lock_guard<std::mutex> lk(connMu_);
            if (stopping_) {
                ::close(fd);
                return;
            }
            conn_id = nextConnId_++;
            openFds_.insert(fd);
            connThreads_.emplace_back(
                [this, fd, conn_id] { serveConnection(fd, conn_id); });
        }
        {
            std::lock_guard<std::mutex> lk(statsMu_);
            ++counters_.connections;
        }
    }
}

void
Coordinator::serveConnection(int fd, std::uint64_t conn_id)
{
    wire::FrameReader reader;
    std::string payload;
    while (wire::recvFrame(fd, reader, payload)) {
        const auto t0 = std::chrono::steady_clock::now();
        const std::string response = handle(payload, conn_id);
        rpcLatency_.record(static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - t0)
                .count()));
        {
            std::lock_guard<std::mutex> lk(statsMu_);
            ++counters_.rpcs;
        }
        if (!wire::sendFrame(fd, response))
            break;
    }
    // EOF, error, or stop(): whatever this worker still held is dead
    // weight — orphan it so peers take the rows over immediately
    // instead of waiting out the staleness window.
    orphanConnection(conn_id);
    {
        std::lock_guard<std::mutex> lk(connMu_);
        openFds_.erase(fd);
    }
    ::close(fd);
}

void
Coordinator::orphanConnection(std::uint64_t conn_id)
{
    std::size_t orphaned = 0;
    {
        std::lock_guard<std::mutex> lk(leaseMu_);
        for (auto &entry : leases_) {
            if (entry.second.conn == conn_id &&
                !entry.second.orphaned) {
                entry.second.orphaned = true;
                ++orphaned;
            }
        }
    }
    if (orphaned > 0) {
        std::lock_guard<std::mutex> lk(statsMu_);
        counters_.orphanedLeases += orphaned;
    }
}

std::string
Coordinator::handle(const std::string &payload, std::uint64_t conn_id)
{
    if (payload.rfind("PUT\n", 0) == 0)
        return handlePut(payload);
    if (payload.rfind("ACQ ", 0) == 0)
        return handleAcquire(keyAfter(payload, 3), conn_id);
    if (payload.rfind("PEEK ", 0) == 0)
        return handlePeek(keyAfter(payload, 4));
    if (payload.rfind("GET ", 0) == 0)
        return handleGet(keyAfter(payload, 3));
    if (payload.rfind("BREAK ", 0) == 0)
        return handleBreak(keyAfter(payload, 5), conn_id);
    if (payload.rfind("HB ", 0) == 0) {
        std::uint64_t epoch = 0;
        std::string key;
        if (!epochAndKey(payload, 2, epoch, key))
            return "ERROR bad-request";
        return validateEpoch(key, epoch, false) ? "OK" : "FENCED";
    }
    if (payload.rfind("REL ", 0) == 0) {
        std::uint64_t epoch = 0;
        std::string key;
        if (!epochAndKey(payload, 3, epoch, key))
            return "ERROR bad-request";
        // Sync before dropping the lease: peers read "lease gone" as
        // "result durable", the same contract release() has against
        // claim files. The sync runs outside the lease mutex (it can
        // block on the writer); a fenced releaser pays for a spurious
        // sync, which is harmless.
        cache_.sync();
        return validateEpoch(key, epoch, true) ? "OK" : "FENCED";
    }
    if (payload.rfind("SKIPMARK ", 0) == 0) {
        std::uint64_t epoch = 0;
        std::string key;
        if (!epochAndKey(payload, 8, epoch, key))
            return "ERROR bad-request";
        std::lock_guard<std::mutex> lk(leaseMu_);
        const auto it = leases_.find(key);
        if (it == leases_.end() || it->second.epoch != epoch) {
            std::lock_guard<std::mutex> slk(statsMu_);
            ++counters_.fencedOps;
            return "FENCED";
        }
        // Marker first, lease second, like markSkipped(): a waiter
        // that sees the lease vanish must already see why.
        skips_[key] = std::chrono::steady_clock::now();
        leases_.erase(it);
        {
            std::lock_guard<std::mutex> slk(statsMu_);
            ++counters_.skipsMarked;
        }
        return "OK";
    }
    if (payload.rfind("HELLO ", 0) == 0) {
        const auto tokens = wire::splitTokens(payload);
        if (tokens.size() != 3)
            return "ERROR bad-request";
        if (tokens[1] != DiskCache::machineFingerprint()) {
            return "ERROR incompatible float-ABI fingerprint (" +
                   tokens[1] + " vs " +
                   DiskCache::machineFingerprint() + ")";
        }
        if (tokens[2] != std::to_string(kAppCatalogVersion)) {
            return "ERROR incompatible app-catalog version (" +
                   tokens[2] + " vs " +
                   std::to_string(kAppCatalogVersion) + ")";
        }
        return "OK " + std::to_string(staleThreshold().count());
    }
    if (payload == "PING")
        return "OK";
    if (payload == "STATS")
        return statsLine();
    if (payload == "SHUTDOWN") {
        if (!options_.allowRemoteShutdown)
            return "ERROR forbidden remote shutdown is disabled";
        {
            std::lock_guard<std::mutex> lk(connMu_);
            shutdownRequested_ = true;
        }
        shutdownCv_.notify_all();
        return "OK";
    }
    return "ERROR bad-request";
}

std::string
Coordinator::handleAcquire(const std::string &key,
                           std::uint64_t conn_id)
{
    if (key.empty())
        return "ERROR bad-request";
    const auto now = std::chrono::steady_clock::now();
    std::uint64_t epoch = 0;
    {
        std::lock_guard<std::mutex> lk(leaseMu_);
        const auto skip = skips_.find(key);
        if (skip != skips_.end()) {
            if (now - skip->second <= staleThreshold()) {
                std::lock_guard<std::mutex> slk(statsMu_);
                ++counters_.acquiresDenied;
                return "SKIP";
            }
            // Expired marker from an old sweep: drop it so the row is
            // retried, matching the filesystem skip-marker policy.
            skips_.erase(skip);
        }
        if (leases_.count(key) != 0) {
            // Someone holds it — even a stale holder: waiters go
            // through PEEK/BREAK, exactly like claim files where
            // O_EXCL fails until the stale claim is broken.
            std::lock_guard<std::mutex> slk(statsMu_);
            ++counters_.acquiresDenied;
            return "HELD";
        }
        epoch = ++epochs_[key];
        leases_[key] = Lease{epoch, now, conn_id, false};
    }
    {
        std::lock_guard<std::mutex> slk(statsMu_);
        ++counters_.acquiresGranted;
    }
    // Epochs past the first mean the row changed hands at some point:
    // echo into the store header (cleared again by compact()), the
    // same bookkeeping the filesystem protocol does worker-side.
    if (epoch > 1)
        cache_.noteFencingEpoch(epoch);
    return "OK " + std::to_string(epoch);
}

std::string
Coordinator::handleBreak(const std::string &key, std::uint64_t conn_id)
{
    if (key.empty())
        return "ERROR bad-request";
    const auto now = std::chrono::steady_clock::now();
    std::uint64_t epoch = 0;
    {
        std::lock_guard<std::mutex> lk(leaseMu_);
        const auto it = leases_.find(key);
        if (it == leases_.end())
            return "DENIED"; // Vanished: owner finished; re-probe.
        const bool stale = it->second.orphaned ||
                           now - it->second.beat > staleThreshold();
        if (!stale)
            return "DENIED";
        epoch = ++epochs_[key];
        it->second = Lease{epoch, now, conn_id, false};
    }
    {
        std::lock_guard<std::mutex> slk(statsMu_);
        ++counters_.takeovers;
    }
    if (epoch > 1)
        cache_.noteFencingEpoch(epoch);
    return "OK " + std::to_string(epoch);
}

std::string
Coordinator::handlePeek(const std::string &key)
{
    const auto now = std::chrono::steady_clock::now();
    std::lock_guard<std::mutex> lk(leaseMu_);
    const auto skip = skips_.find(key);
    if (skip != skips_.end()) {
        if (now - skip->second <= staleThreshold())
            return "SKIP";
        skips_.erase(skip);
    }
    const auto it = leases_.find(key);
    if (it == leases_.end())
        return "ABSENT";
    if (it->second.orphaned ||
        now - it->second.beat > staleThreshold())
        return "STALE";
    return "ACTIVE";
}

bool
Coordinator::validateEpoch(const std::string &key, std::uint64_t epoch,
                           bool erase)
{
    std::lock_guard<std::mutex> lk(leaseMu_);
    const auto it = leases_.find(key);
    if (it == leases_.end() || it->second.epoch != epoch) {
        std::lock_guard<std::mutex> slk(statsMu_);
        ++counters_.fencedOps;
        return false;
    }
    if (erase) {
        leases_.erase(it);
    } else {
        it->second.beat = std::chrono::steady_clock::now();
        it->second.orphaned = false;
    }
    return true;
}

std::string
Coordinator::handlePut(const std::string &payload)
{
    // The record is one storefmt frame, CRC and all — the same bytes
    // an append would carry — re-verified here before it reaches the
    // store. The wire envelope's own checksum already held, so a
    // failure is a worker bug, not line noise.
    constexpr std::size_t kVerbBytes = 4; // "PUT\n"
    storefmt::Frame frame;
    const auto parsed = storefmt::parseFrameAt(
        payload.data(), kVerbBytes, payload.size(), frame);
    if (parsed != storefmt::FrameParse::Ok ||
        kVerbBytes + frame.bytes != payload.size()) {
        {
            std::lock_guard<std::mutex> slk(statsMu_);
            ++counters_.badFrames;
        }
        return "ERROR bad-frame";
    }
    // The normal group-commit path: concurrent workers' records batch
    // into one append+fsync, and REL's sync() makes them durable
    // before any lease drops.
    cache_.put(frame.key, frame.values);
    {
        std::lock_guard<std::mutex> slk(statsMu_);
        ++counters_.recordsCommitted;
        counters_.recordBytes += frame.bytes;
    }
    return "OK";
}

std::string
Coordinator::handleGet(const std::string &key)
{
    const auto values = cache_.get(key);
    if (!values) {
        std::lock_guard<std::mutex> slk(statsMu_);
        ++counters_.fetchMisses;
        return "MISS";
    }
    {
        std::lock_guard<std::mutex> slk(statsMu_);
        ++counters_.fetchHits;
    }
    std::string out = "HIT\n";
    storefmt::appendFrame(out, key, *values);
    return out;
}

std::string
Coordinator::statsLine() const
{
    return "OK " + stats().summaryLine();
}

} // namespace ebm
