#include "harness/store_fsck.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <map>
#include <sstream>
#include <vector>

#include "harness/disk_cache.hpp"
#include "harness/shard_claim.hpp"
#include "harness/store_format.hpp"
#include "workload/app_catalog.hpp"

namespace ebm {

namespace {

bool
readWholeFile(const std::string &path, std::vector<char> &out,
              std::string &error)
{
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) {
        error = "cannot open " + path;
        return false;
    }
    struct stat st = {};
    if (::fstat(fd, &st) != 0 || st.st_size < 0) {
        error = "cannot stat " + path;
        ::close(fd);
        return false;
    }
    out.resize(static_cast<std::size_t>(st.st_size));
    std::size_t off = 0;
    while (off < out.size()) {
        const ssize_t n =
            ::read(fd, out.data() + off, out.size() - off);
        if (n < 0 && errno == EINTR)
            continue;
        if (n <= 0) {
            error = "short read from " + path;
            ::close(fd);
            return false;
        }
        off += static_cast<std::size_t>(n);
    }
    ::close(fd);
    return true;
}

bool
writeWholeFile(const std::string &path, const std::string &bytes,
               std::string &error)
{
    const int fd =
        ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0) {
        error = "cannot create " + path;
        return false;
    }
    std::size_t off = 0;
    while (off < bytes.size()) {
        const ssize_t n =
            ::write(fd, bytes.data() + off, bytes.size() - off);
        if (n < 0 && errno == EINTR)
            continue;
        if (n < 0) {
            error = "write to " + path + " failed";
            ::close(fd);
            return false;
        }
        off += static_cast<std::size_t>(n);
    }
    const bool synced = ::fsync(fd) == 0;
    ::close(fd);
    if (!synced) {
        error = "fsync of " + path + " failed";
        return false;
    }
    return true;
}

} // namespace

std::string
FsckReport::summaryLine() const
{
    std::ostringstream out;
    out << "fsck: ";
    switch (verdict) {
      case Verdict::Clean:
        out << "clean";
        break;
      case Verdict::Dirty:
        out << (repaired ? "repaired" : "dirty");
        break;
      case Verdict::Unrecoverable:
        out << "unrecoverable";
        break;
    }
    out << " (" << framesOk << " frames, " << uniqueKeys
        << " unique keys, " << duplicateKeys << " superseded, "
        << badRegions << " bad regions / " << bytesQuarantined
        << " bytes quarantined" << (tornTail ? ", torn tail" : "");
    if (orphanedEpochsRemoved > 0)
        out << ", " << orphanedEpochsRemoved
            << " epoch sidecars swept";
    out << ")";
    if (!error.empty())
        out << " error: " << error;
    return out.str();
}

FsckReport
fsckStore(const std::string &path, const FsckOptions &options)
{
    namespace fmt = storefmt;
    FsckReport report;

    std::vector<char> data;
    if (!readWholeFile(path, data, report.error))
        return report;

    if (data.size() < fmt::kHeaderSize) {
        report.error = "file smaller than a v3 header (" +
                       std::to_string(data.size()) + " bytes)";
        return report;
    }
    const fmt::Header header = fmt::parseHeader(data.data());
    report.catalogVersion = header.catalogVersion;
    report.fencingEpoch = header.fencingEpoch;
    if (!header.magicOk ||
        header.formatVersion != fmt::kFormatVersionV3 ||
        header.fingerprint != DiskCache::machineFingerprint()) {
        // Text stores, foreign machines, future formats: scrubbing
        // frame-by-frame would be guesswork; refuse loudly.
        report.error = "header is not a v3 store for this machine";
        return report;
    }
    report.headerOk = true;

    // Frame walk with resync: a bad frame starts a corrupt region
    // that ends at the next offset parsing as a valid frame. The
    // skipped bytes are preserved (quarantine), not destroyed.
    std::vector<fmt::Frame> frames;
    std::string quarantined;
    std::size_t off = fmt::kHeaderSize;
    const std::size_t end = data.size();
    while (off < end) {
        fmt::Frame frame;
        const fmt::FrameParse parse =
            fmt::parseFrameAt(data.data(), off, end, frame);
        if (parse == fmt::FrameParse::Ok) {
            off += frame.bytes;
            frames.push_back(std::move(frame));
            continue;
        }
        if (parse == fmt::FrameParse::Torn) {
            report.tornTail = true;
            quarantined.append(data.data() + off, end - off);
            break;
        }
        // Corrupt: resync forward to the next parsable frame.
        ++report.badRegions;
        std::size_t next = off + 1;
        for (; next < end; ++next) {
            if (end - next >= sizeof(fmt::kFrameMagic)) {
                std::uint32_t magic = 0;
                std::memcpy(&magic, data.data() + next, sizeof magic);
                if (magic != fmt::kFrameMagic)
                    continue;
            } else {
                continue;
            }
            fmt::Frame probe;
            if (fmt::parseFrameAt(data.data(), next, end, probe) ==
                fmt::FrameParse::Ok)
                break;
        }
        if (next >= end)
            next = end;
        quarantined.append(data.data() + off, next - off);
        off = next;
    }
    report.framesOk = frames.size();
    report.bytesQuarantined = quarantined.size();

    // Last-wins fold, exactly like DiskCache's load.
    std::map<std::string, const std::vector<double> *> entries;
    for (const fmt::Frame &frame : frames) {
        auto [it, inserted] =
            entries.emplace(frame.key, &frame.values);
        if (!inserted) {
            ++report.duplicateKeys;
            it->second = &frame.values;
        }
    }
    report.uniqueKeys = entries.size();

    const bool dirty = report.badRegions > 0 || report.tornTail;
    report.verdict =
        dirty ? FsckReport::Verdict::Dirty : FsckReport::Verdict::Clean;
    // Repair mode also grooms the sidecar dir: fencing counters whose
    // claim is long gone are leftovers of finished rows, and fsck runs
    // against a quiescent store by contract (a Clean store still gets
    // the sweep — the sidecars are outside the store file).
    if (options.repair)
        report.orphanedEpochsRemoved = sweepOrphanedEpochs(path);
    if (!dirty || !options.repair)
        return report;

    // Preserve the evidence before touching the store.
    if (!quarantined.empty()) {
        report.quarantinePath = options.quarantinePath.empty()
                                    ? path + ".fsck-quarantine"
                                    : options.quarantinePath;
        if (!writeWholeFile(report.quarantinePath, quarantined,
                            report.error))
            return report;
    }

    // Canonical re-emit through the shared format code: sorted keys
    // (std::map iteration), the input's catalog version, epoch zeroed
    // — byte-identical to DiskCache::compact() of the same entry set.
    std::string buf = fmt::buildHeader(header.catalogVersion,
                                       DiskCache::machineFingerprint());
    for (const auto &kv : entries)
        fmt::appendFrame(buf, kv.first, *kv.second);

    const std::string tmp = path + ".fsck-tmp";
    if (!writeWholeFile(tmp, buf, report.error))
        return report;
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        report.error = "rename " + tmp + " -> " + path + " failed";
        std::remove(tmp.c_str());
        return report;
    }
    report.repaired = true;
    return report;
}

bool
writeFsckFixture(const std::string &path)
{
    namespace fmt = storefmt;
    // Deterministic entries: enough to straddle the corrupt region
    // with valid frames on both sides.
    const auto key = [](int i) {
        return "fixture/key" + std::to_string(i);
    };
    const auto values = [](int i) {
        return std::vector<double>{1.0 + i, 2.0 * i, 3.5, -4.25 * i};
    };

    std::string buf = fmt::buildHeader(
        static_cast<std::uint32_t>(kAppCatalogVersion),
        DiskCache::machineFingerprint());
    for (int i = 0; i < 4; ++i)
        fmt::appendFrame(buf, key(i), values(i));

    // Corrupt region: a frame whose checksum byte is flipped (Bad,
    // since frames follow it), then garbage that fakes a frame magic
    // with impossible fields.
    const std::size_t bad_at = buf.size();
    fmt::appendFrame(buf, key(100), values(100));
    buf[buf.size() - 3] ^= 0x5a;
    fmt::putU32(buf, fmt::kFrameMagic);
    fmt::putU32(buf, 0);          // keyLen 0: impossible.
    fmt::putU32(buf, 0xffffffffu);
    (void)bad_at;

    for (int i = 4; i < 8; ++i)
        fmt::appendFrame(buf, key(i), values(i));

    // Torn tail: a valid frame cut in half.
    std::string tail;
    fmt::appendFrame(tail, key(200), values(200));
    buf.append(tail.data(), tail.size() / 2);

    std::string error;
    return writeWholeFile(path, buf, error);
}

} // namespace ebm
