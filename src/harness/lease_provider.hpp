/**
 * @file
 * The lease layer the sweep dispatch gates (Exhaustive::sweep,
 * ProfileDb::profile) coordinate through when several workers fill
 * one cold store: who owns a row, how ownership is kept alive, how a
 * dead owner's row is taken over, and how the row's result travels.
 *
 * Two implementations exist behind this interface:
 *
 *   - filesystem claims (FsLeaseProvider over harness/shard_claim.*):
 *     O_EXCL claim files + mtime heartbeats + durable epoch sidecars
 *     in `<store>.claims/`, for workers sharing one filesystem
 *     (EBM_SWEEP_SHARD=1);
 *   - network leases (NetLeaseProvider, harness/lease_net.hpp):
 *     the same verbs as RPCs against an ebm_coordinator daemon that
 *     owns the store, for workers that share nothing but a TCP route
 *     (EBM_COORDINATOR=host:port).
 *
 * The split between ownership verbs and the publish()/fetch() result
 * transport is what makes one dispatch gate serve both: under
 * filesystem claims a result travels through the shared store file
 * (publish = group-commit sync, fetch = refresh + validated get);
 * under network leases it travels as a CRC-framed v3 record over the
 * coordinator connection, group-committed by the coordinator's own
 * DiskCache writer. Either way the merge invariant is unchanged:
 * compact() sorts by key and the simulation is deterministic, so any
 * mix of workers, takeovers, and duplicate computes compacts to the
 * same bytes a serial fill would have produced.
 *
 * Like the claim protocol it abstracts, a LeaseProvider is an
 * *optimization, never a correctness dependency*: every verb may fail
 * (fenced, disconnected, degraded) and the caller falls back to
 * computing locally — duplicates are byte-identical.
 */
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

namespace ebm {

class DiskCache;

/** Row-lease coordination plus result transport for one store. */
class LeaseProvider
{
  public:
    /** A waiter's view of another worker's lease on a key (mirrors
     * ShardClaims::State — the wait-phase state machine is shared). */
    enum class State : std::uint8_t {
        Absent,  ///< No lease (result durable, or owner takeover race).
        Active,  ///< A live owner is computing the row.
        Stale,   ///< The owner stopped heartbeating: take over.
        Skipped, ///< The owner exhausted retries: replicate the skip.
    };

    virtual ~LeaseProvider() = default;

    /** Atomically lease @p key under a fresh fencing epoch. @return
     * true = this worker owns the row and must compute it. */
    virtual bool tryAcquire(const std::string &key) = 0;

    /** Keep the owned lease alive. @return false when fenced — a peer
     * took the row over and this worker's result is a duplicate. */
    virtual bool heartbeat(const std::string &key) = 0;

    /** The row's result is durable (publish() succeeded): drop the
     * lease so waiters fall through to the result. @return false when
     * fenced (the newer owner's lease was left untouched). */
    virtual bool release(const std::string &key) = 0;

    /** Retries exhausted: record a durable skip so every waiter
     * replicates it, then drop the lease. @return false when fenced. */
    virtual bool markSkipped(const std::string &key) = 0;

    /** Poll another worker's lease on @p key. */
    virtual State peek(const std::string &key) = 0;

    /** Take over a stale lease under a bumped fencing epoch. @return
     * true = this worker owns the row now. */
    virtual bool breakStale(const std::string &key) = 0;

    /** The fencing epoch this instance holds @p key under; 0 when it
     * does not own the key. Epochs past 1 mean the row changed hands
     * and are echoed into the store header (noteFencingEpoch). */
    virtual std::uint64_t ownedEpoch(const std::string &key) const = 0;

    /**
     * Make the owned row's result durable where waiting peers will
     * find it: the shared store file (filesystem mode — the caller
     * already put() it; this forces the covering group commit) or the
     * coordinator's store (network mode — the record is streamed as a
     * CRC-framed v3 frame and acknowledged once committed). Call
     * before release(). @return false when the result could not be
     * made durable for peers (it is still good locally).
     */
    virtual bool publish(const std::string &key,
                         const std::vector<double> &values) = 0;

    /**
     * Probe for a peer's durable result for @p key: the shared store
     * (after folding in peer appends) or the coordinator. Validated
     * like DiskCache::getValidated — exactly @p expected finite
     * doubles, anything else is a miss.
     */
    virtual std::optional<std::vector<double>>
    fetch(const std::string &key, std::size_t expected) = 0;

    /** Implementation tag for logs/diagnostics ("fs", "net"). */
    virtual const char *kind() const = 0;
};

/**
 * Pick the lease provider for one sweep against @p cache from the
 * environment, in priority order:
 *
 *   1. EBM_COORDINATOR=host:port — network leases against that
 *      coordinator (connection failure degrades to standalone with a
 *      warning: the sweep computes everything locally, which is
 *      always correct, merely not shared);
 *   2. EBM_SWEEP_SHARD=1 — filesystem claims next to the store;
 *   3. neither — nullptr (the ordinary uncoordinated sweep).
 */
std::unique_ptr<LeaseProvider> makeLeaseProvider(DiskCache &cache);

/**
 * Periodic in-run heartbeat for one held lease (RAII) — the
 * LeaseProvider counterpart of ClaimHeartbeater (shard_claim.hpp),
 * spanning a row's whole attempt loop with a background thread that
 * renews the lease every staleThreshold()/4 so a row longer than the
 * staleness window never looks abandoned to peers. The same tick
 * touches the EBM_WORKER_HEARTBEAT file, tying the sweep
 * supervisor's hang detector to the same liveness signal.
 *
 * If a tick discovers the lease was fenced (a peer took the row over
 * after a stall longer than the window), it stops renewing and
 * latches fenced(); the owner checks after the run and demotes its
 * result to a duplicate compute.
 */
class LeaseHeartbeater
{
  public:
    /** Start heartbeating @p key on @p lease. Either may be null /
     * empty — then this is an inert object (the unleased path). */
    LeaseHeartbeater(LeaseProvider *lease, std::string key);
    ~LeaseHeartbeater();

    LeaseHeartbeater(const LeaseHeartbeater &) = delete;
    LeaseHeartbeater &operator=(const LeaseHeartbeater &) = delete;

    /** Did a heartbeat discover the lease was taken over? */
    bool fenced() const
    {
        return fenced_.load(std::memory_order_relaxed);
    }

  private:
    void run();

    LeaseProvider *lease_;
    std::string key_;
    std::atomic<bool> fenced_{false};
    bool stop_ = false;
    std::mutex mu_;
    std::condition_variable cv_;
    std::thread thread_;
};

} // namespace ebm
