#include "harness/gpu_pool.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <utility>

#include "sim/gpu.hpp"

namespace ebm {

namespace {

bool
envEnabled()
{
    const char *e = std::getenv("EBM_GPU_POOL");
    if (e == nullptr || e[0] == '\0')
        return true;
    return !(std::strcmp(e, "0") == 0 || std::strcmp(e, "off") == 0 ||
             std::strcmp(e, "OFF") == 0);
}

std::atomic<bool> &
enabledFlag()
{
    static std::atomic<bool> flag{envEnabled()};
    return flag;
}

} // namespace

GpuPool::Lease::Lease(GpuPool *pool, Key key, std::unique_ptr<Gpu> gpu)
    : pool_(pool), key_(std::move(key)), gpu_(std::move(gpu)),
      uncaughtAtAcquire_(std::uncaught_exceptions())
{
}

GpuPool::Lease::Lease(Lease &&other) noexcept
    : pool_(other.pool_), key_(std::move(other.key_)),
      gpu_(std::move(other.gpu_)), retained_(std::move(other.retained_)),
      poisoned_(other.poisoned_),
      uncaughtAtAcquire_(other.uncaughtAtAcquire_)
{
    other.pool_ = nullptr;
}

GpuPool::Lease::~Lease()
{
    if (gpu_ == nullptr)
        return;
    // A destructor running as part of exception unwinding means the
    // run died mid-measurement: the instance's warps, queues, and
    // knobs are in an unknown state, so it must not be reused.
    const bool unwinding =
        std::uncaught_exceptions() > uncaughtAtAcquire_;
    if (pool_ != nullptr) {
        pool_->release(std::move(key_), std::move(gpu_),
                       std::move(retained_), poisoned_ || unwinding);
    }
    // pool_ == nullptr: pooling was disabled at acquire; the instance
    // is simply destroyed, exactly like the pre-pool code path.
}

void
GpuPool::Lease::retainSnapshot(std::uint64_t key,
                               std::shared_ptr<const void> snapshot,
                               std::size_t bytes)
{
    for (Retained &r : retained_) {
        if (r.key == key) {
            r.snapshot = std::move(snapshot);
            r.bytes = bytes;
            return;
        }
    }
    retained_.push_back(Retained{key, std::move(snapshot), bytes});
}

GpuPool::Lease
GpuPool::acquire(const GpuConfig &cfg,
                 const std::vector<AppProfile> &apps,
                 std::vector<std::uint32_t> core_share)
{
    Lease::Key key{cfg, apps, std::move(core_share)};
    if (!enabled()) {
        auto gpu = std::make_unique<Gpu>(key.cfg, key.apps,
                                         key.coreShare);
        return Lease(nullptr, std::move(key), std::move(gpu));
    }
    for (std::size_t i = 0; i < idle_.size(); ++i) {
        if (idle_[i].key == key) {
            std::unique_ptr<Gpu> gpu = std::move(idle_[i].gpu);
            std::vector<Retained> retained =
                std::move(idle_[i].retained);
            idle_.erase(idle_.begin() +
                        static_cast<std::ptrdiff_t>(i));
            // Construction-fresh state: wipe cycle/warp/queue/DRAM
            // state and cache tags, then undo whatever knobs the
            // previous run's policy left behind.
            gpu->reset(/*flush_caches=*/true);
            gpu->restoreKnobDefaults();
            gpu->setFastForward(true);
            ++stats_.hits;
            Lease lease(this, std::move(key), std::move(gpu));
            lease.retained_ = std::move(retained);
            return lease;
        }
    }
    auto gpu = std::make_unique<Gpu>(key.cfg, key.apps, key.coreShare);
    ++stats_.misses;
    return Lease(this, std::move(key), std::move(gpu));
}

void
GpuPool::release(Lease::Key key, std::unique_ptr<Gpu> gpu,
                 std::vector<Retained> retained, bool poisoned)
{
    if (poisoned || !enabled()) {
        ++stats_.discards;
        return;
    }
    idle_.push_back(
        Entry{std::move(key), std::move(gpu), std::move(retained)});
    // Evict oldest-first while over the idle-count cap OR the
    // retained-snapshot byte budget: an entry pinning hundreds of
    // megabytes of warm checkpoints must not hide behind a small idle
    // count (the snapshots themselves are shared with the process-wide
    // WarmStateCache, so eviction here drops a reference, not the
    // cache's copy).
    while (idle_.size() > kMaxIdle ||
           (retainedBytes() > retainedBudget_ && !idle_.empty())) {
        idle_.erase(idle_.begin()); // Oldest shape goes first.
        ++stats_.evictions;
    }
}

std::size_t
GpuPool::retainedBytes() const
{
    std::size_t total = 0;
    for (const Entry &e : idle_) {
        for (const Retained &r : e.retained)
            total += r.bytes;
    }
    return total;
}

std::size_t
GpuPool::defaultRetainedBudget()
{
    return static_cast<std::size_t>(
               envUint("EBM_SNAPSHOT_BUDGET_MB", 256, 1, 1u << 20)) *
           1024 * 1024;
}

void
GpuPool::clear()
{
    idle_.clear();
}

GpuPool &
GpuPool::threadLocal()
{
    static thread_local GpuPool pool;
    return pool;
}

bool
GpuPool::enabled()
{
    return enabledFlag().load(std::memory_order_relaxed);
}

void
GpuPool::setEnabled(bool enabled)
{
    enabledFlag().store(enabled, std::memory_order_relaxed);
}

} // namespace ebm
