#include "harness/lease_net.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <thread>

#include "common/log.hpp"
#include "harness/disk_cache.hpp"
#include "harness/shard_claim.hpp"
#include "harness/store_format.hpp"
#include "workload/app_catalog.hpp"

namespace ebm {

NetLeaseProvider::NetLeaseProvider(UniqueFd fd, Options options)
    : options_(options), fd_(std::move(fd))
{
}

std::unique_ptr<NetLeaseProvider>
NetLeaseProvider::connect(const std::string &address)
{
    // The env-driven entry point (makeLeaseProvider) honors retry
    // overrides so a CI job or test can shrink the 40x250ms default
    // budget when the coordinator is expected to already be up.
    Options options;
    if (const char *s = std::getenv("EBM_NET_CONNECT_ATTEMPTS")) {
        const unsigned long v = std::strtoul(s, nullptr, 10);
        if (v > 0)
            options.connectAttempts = static_cast<std::uint32_t>(v);
    }
    if (const char *s = std::getenv("EBM_NET_CONNECT_BACKOFF_MS")) {
        options.connectBackoff =
            std::chrono::milliseconds(std::strtoul(s, nullptr, 10));
    }
    return connect(address, options);
}

std::unique_ptr<NetLeaseProvider>
NetLeaseProvider::connect(const std::string &address,
                          const Options &options)
{
    std::string host;
    std::uint16_t port = 0;
    if (!parseHostPort(address, host, port)) {
        warn("NetLeaseProvider: malformed coordinator address '" +
             address + "' (want host:port)");
        return nullptr;
    }
    UniqueFd fd;
    for (std::uint32_t attempt = 0;; ++attempt) {
        auto result = netConnectTcp(host, port);
        if (result) {
            fd = std::move(result.value());
            break;
        }
        if (attempt + 1 >= std::max(options.connectAttempts, 1u)) {
            warn("NetLeaseProvider: " + result.error().message);
            return nullptr;
        }
        std::this_thread::sleep_for(options.connectBackoff);
    }
    auto provider = std::unique_ptr<NetLeaseProvider>(
        new NetLeaseProvider(std::move(fd), options));
    // Handshake before any lease verb: a worker whose doubles don't
    // round-trip byte-identically with the coordinator's store (or
    // whose app catalog disagrees) must not contribute records.
    std::lock_guard<std::mutex> lk(provider->mu_);
    const auto reply = provider->rpc(
        "HELLO " + DiskCache::machineFingerprint() + " " +
        std::to_string(kAppCatalogVersion));
    if (!reply || reply->rfind("OK", 0) != 0) {
        warn("NetLeaseProvider: coordinator at " + address +
             " refused the handshake" +
             (reply ? ": " + *reply : std::string()));
        return nullptr;
    }
    const auto tokens = wire::splitTokens(*reply);
    if (tokens.size() == 2)
        provider->staleMs_ =
            std::chrono::milliseconds(std::stoll(tokens[1]));
    return provider;
}

int
NetLeaseProvider::timeoutMs() const
{
    if (options_.rpcTimeout.count() > 0)
        return static_cast<int>(options_.rpcTimeout.count());
    const auto window = ShardClaims::staleThreshold() * 4;
    return static_cast<int>(
        std::max<std::chrono::milliseconds::rep>(window.count(),
                                                 2000));
}

std::optional<std::string>
NetLeaseProvider::rpc(const std::string &request)
{
    if (degraded_)
        return std::nullopt;
    std::string reply;
    if (wire::sendFrame(fd_.get(), request) &&
        wire::recvFrame(fd_.get(), reader_, reply, timeoutMs()))
        return reply;
    degraded_ = true;
    fd_.reset();
    if (!degradeWarned_) {
        degradeWarned_ = true;
        warn("NetLeaseProvider: lost the coordinator connection; "
             "this sweep degrades to standalone (results stay "
             "local, peers take over our leased rows)");
    }
    return std::nullopt;
}

bool
NetLeaseProvider::tryAcquire(const std::string &key)
{
    std::lock_guard<std::mutex> lk(mu_);
    const auto reply = rpc("ACQ " + key);
    if (!reply) {
        // Degraded: compute locally. Epoch 0 keeps noteEpoch quiet
        // and release/heartbeat local-only.
        owned_[key] = 0;
        return true;
    }
    if (reply->rfind("OK ", 0) == 0) {
        owned_[key] = std::strtoull(reply->c_str() + 3, nullptr, 10);
        return true;
    }
    return false; // HELD or SKIP.
}

bool
NetLeaseProvider::heartbeat(const std::string &key)
{
    std::lock_guard<std::mutex> lk(mu_);
    const auto it = owned_.find(key);
    if (it == owned_.end())
        return false;
    if (degraded_ || it->second == 0)
        return true; // Local-only lease: nothing to renew.
    const auto reply =
        rpc("HB " + std::to_string(it->second) + " " + key);
    if (!reply)
        return true; // Connection just died: keep computing.
    if (*reply == "OK")
        return true;
    owned_.erase(key); // Fenced: the row is not ours to touch.
    return false;
}

bool
NetLeaseProvider::release(const std::string &key)
{
    std::lock_guard<std::mutex> lk(mu_);
    const auto it = owned_.find(key);
    if (it == owned_.end())
        return false;
    const std::uint64_t epoch = it->second;
    owned_.erase(it);
    if (degraded_ || epoch == 0)
        return true;
    const auto reply =
        rpc("REL " + std::to_string(epoch) + " " + key);
    if (!reply)
        return true; // Connection died; the coordinator orphans it.
    if (*reply == "OK")
        return true;
    warn("NetLeaseProvider: fenced out of " + key +
         "; leaving the newer lease in place");
    return false;
}

bool
NetLeaseProvider::markSkipped(const std::string &key)
{
    std::lock_guard<std::mutex> lk(mu_);
    const auto it = owned_.find(key);
    if (it == owned_.end())
        return false;
    const std::uint64_t epoch = it->second;
    owned_.erase(it);
    if (degraded_ || epoch == 0)
        return true;
    const auto reply =
        rpc("SKIPMARK " + std::to_string(epoch) + " " + key);
    return reply && *reply == "OK";
}

LeaseProvider::State
NetLeaseProvider::peek(const std::string &key)
{
    std::lock_guard<std::mutex> lk(mu_);
    const auto reply = rpc("PEEK " + key);
    if (!reply)
        return State::Absent; // Degraded: claim it, compute locally.
    if (*reply == "ACTIVE")
        return State::Active;
    if (*reply == "STALE")
        return State::Stale;
    if (*reply == "SKIP")
        return State::Skipped;
    return State::Absent;
}

bool
NetLeaseProvider::breakStale(const std::string &key)
{
    std::lock_guard<std::mutex> lk(mu_);
    const auto reply = rpc("BREAK " + key);
    if (!reply) {
        owned_[key] = 0;
        return true; // Degraded: compute locally.
    }
    if (reply->rfind("OK ", 0) == 0) {
        owned_[key] = std::strtoull(reply->c_str() + 3, nullptr, 10);
        return true;
    }
    return false;
}

std::uint64_t
NetLeaseProvider::ownedEpoch(const std::string &key) const
{
    std::lock_guard<std::mutex> lk(mu_);
    const auto it = owned_.find(key);
    return it == owned_.end() ? 0 : it->second;
}

bool
NetLeaseProvider::publish(const std::string &key,
                          const std::vector<double> &values)
{
    // The record travels as the exact storefmt frame an append would
    // write — key, raw double bit patterns, CRC — inside the wire
    // envelope; the coordinator re-verifies the CRC and group-commits
    // it through its own DiskCache writer.
    std::string request = "PUT\n";
    storefmt::appendFrame(request, key, values);
    std::lock_guard<std::mutex> lk(mu_);
    const auto reply = rpc(request);
    return reply && *reply == "OK";
}

std::optional<std::vector<double>>
NetLeaseProvider::fetch(const std::string &key, std::size_t expected)
{
    std::lock_guard<std::mutex> lk(mu_);
    const auto reply = rpc("GET " + key);
    if (!reply || reply->rfind("HIT\n", 0) != 0)
        return std::nullopt;
    constexpr std::size_t kVerbBytes = 4; // "HIT\n"
    storefmt::Frame frame;
    const auto parsed = storefmt::parseFrameAt(
        reply->data(), kVerbBytes, reply->size(), frame);
    if (parsed != storefmt::FrameParse::Ok || frame.key != key)
        return std::nullopt;
    // Same validation contract as DiskCache::getValidated: exactly
    // the expected shape, every value finite — anything else is a
    // miss (recompute), never a crash.
    if (frame.values.size() != expected)
        return std::nullopt;
    for (const double v : frame.values) {
        if (!std::isfinite(v))
            return std::nullopt;
    }
    return std::move(frame.values);
}

bool
NetLeaseProvider::degraded() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return degraded_;
}

} // namespace ebm
