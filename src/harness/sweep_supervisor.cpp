#include "harness/sweep_supervisor.hpp"

#include <fcntl.h>
#include <signal.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <ctime>
#include <sstream>
#include <thread>

#include "common/log.hpp"
#include "harness/shard_claim.hpp"

namespace ebm {

namespace {

using Clock = std::chrono::steady_clock;

/** Milliseconds since @p path's mtime; negative on stat failure. */
long long
fileAgeMs(const std::string &path)
{
    struct stat st = {};
    if (::stat(path.c_str(), &st) != 0)
        return -1;
    struct timespec now = {};
    ::clock_gettime(CLOCK_REALTIME, &now);
    const long long ns =
        (now.tv_sec - st.st_mtim.tv_sec) * 1000000000ll +
        (now.tv_nsec - st.st_mtim.tv_nsec);
    return ns / 1000000ll;
}

void
touchFile(const std::string &path)
{
    if (::utimensat(AT_FDCWD, path.c_str(), nullptr, 0) != 0 &&
        errno == ENOENT) {
        const int fd =
            ::open(path.c_str(), O_CREAT | O_WRONLY, 0644);
        if (fd >= 0)
            ::close(fd);
    }
}

/** One slot's supervision state across worker lives. */
struct Slot
{
    pid_t pid = -1;           ///< Running worker; -1 = none.
    std::uint32_t attempt = 0;///< Lives launched so far.
    Clock::time_point notBefore = Clock::time_point::min();
    bool settled = false;     ///< Succeeded or budget exhausted.
    SweepSupervisor::WorkerReport report;
};

} // namespace

std::string
SweepSupervisor::Report::summaryLine() const
{
    std::ostringstream out;
    out << "supervisor: " << workers.size() << " workers, "
        << totalRestarts << " restarts, " << totalHangKills
        << " hang kills, "
        << (allSucceeded ? "all succeeded" : "FAILURES");
    return out.str();
}

SweepSupervisor::SweepSupervisor(Options options)
    : options_(std::move(options))
{
    if (options_.workers == 0)
        options_.workers = 1;
    if (options_.hangTimeout.count() == 0) {
        // Hang must be slower than staleness: a stuck worker's claims
        // should go stale (and be taken over) before the supervisor
        // spends a restart on it.
        options_.hangTimeout = 4 * ShardClaims::staleThreshold();
    }
    if (!options_.heartbeatDir.empty()) {
        if (::mkdir(options_.heartbeatDir.c_str(), 0777) != 0 &&
            errno != EEXIST) {
            warn("SweepSupervisor: cannot create " +
                 options_.heartbeatDir +
                 "; hang detection disabled");
            options_.heartbeatDir.clear();
        }
    }
}

std::string
SweepSupervisor::heartbeatPath(std::uint32_t slot) const
{
    if (options_.heartbeatDir.empty())
        return {};
    return options_.heartbeatDir + "/worker" + std::to_string(slot) +
           ".hb";
}

SweepSupervisor::Report
SweepSupervisor::run(const WorkerFn &worker)
{
    std::vector<Slot> slots(options_.workers);
    for (std::uint32_t s = 0; s < options_.workers; ++s)
        slots[s].report.slot = s;

    const auto launch = [&](std::uint32_t s) {
        Slot &slot = slots[s];
        const std::string hb = heartbeatPath(s);
        // A fresh mtime before the fork: the hang clock starts at
        // launch, not at whenever the previous life last ticked.
        if (!hb.empty())
            touchFile(hb);
        const pid_t pid = ::fork();
        if (pid < 0) {
            warn("SweepSupervisor: fork failed for slot " +
                 std::to_string(s) + "; retrying after backoff");
            slot.notBefore = Clock::now() + options_.backoffBase;
            return;
        }
        if (pid == 0) {
            // Child: advertise the heartbeat file to the sweep loop
            // (ClaimHeartbeater::touchWorkerHeartbeat), run the
            // worker body, and exit without running the parent's
            // atexit chain twice.
            if (!hb.empty())
                ::setenv("EBM_WORKER_HEARTBEAT", hb.c_str(), 1);
            // Point the child's dispatch gate at the coordinator:
            // makeLeaseProvider reads this and leases rows over TCP.
            if (!options_.coordinator.empty())
                ::setenv("EBM_COORDINATOR",
                         options_.coordinator.c_str(), 1);
            int rc = 125;
            try {
                rc = worker(s, slot.attempt);
            } catch (...) {
                rc = 124;
            }
            std::_Exit(rc);
        }
        slot.pid = pid;
        slot.report.lastPid = pid;
        if (slot.attempt > 0) {
            ++slot.report.restarts;
        }
        ++slot.attempt;
    };

    const auto settle = [&](Slot &slot, bool ok, int status) {
        slot.pid = -1;
        slot.report.lastStatus = status;
        if (ok) {
            slot.report.succeeded = true;
            slot.settled = true;
            return;
        }
        if (slot.attempt > options_.maxRestarts) {
            slot.report.budgetExhausted = true;
            slot.settled = true;
            warn("SweepSupervisor: slot " +
                 std::to_string(slot.report.slot) +
                 " exhausted its restart budget (" +
                 std::to_string(options_.maxRestarts) + ")");
            return;
        }
        // Capped exponential backoff: crashes on a poison row space
        // themselves out instead of hot-looping the CPU.
        auto delay = options_.backoffBase;
        for (std::uint32_t i = 1; i < slot.attempt &&
                                  delay < options_.backoffCap;
             ++i)
            delay *= 2;
        if (delay > options_.backoffCap)
            delay = options_.backoffCap;
        slot.notBefore = Clock::now() + delay;
    };

    for (std::uint32_t s = 0; s < options_.workers; ++s)
        launch(s);

    for (;;) {
        bool all_settled = true;
        bool any_running = false;
        const auto now = Clock::now();
        for (std::uint32_t s = 0; s < options_.workers; ++s) {
            Slot &slot = slots[s];
            if (slot.settled)
                continue;
            all_settled = false;
            if (slot.pid < 0) {
                if (now >= slot.notBefore)
                    launch(s);
                if (slot.pid >= 0)
                    any_running = true;
                continue;
            }
            any_running = true;

            int status = 0;
            const pid_t r = ::waitpid(slot.pid, &status, WNOHANG);
            if (r == slot.pid) {
                const bool ok = WIFEXITED(status) &&
                                WEXITSTATUS(status) == 0;
                if (!ok) {
                    warn("SweepSupervisor: slot " +
                         std::to_string(s) + " worker " +
                         std::to_string(slot.pid) +
                         (WIFSIGNALED(status)
                              ? " died on signal " +
                                    std::to_string(WTERMSIG(status))
                              : " exited " +
                                    std::to_string(
                                        WEXITSTATUS(status))));
                }
                settle(slot, ok, status);
                continue;
            }
            if (r < 0 && errno == ECHILD) {
                // Should not happen (we only wait on our own forks);
                // treat as a crash so the slot is not stuck forever.
                settle(slot, false, 0);
                continue;
            }

            // Hang detection: the worker is alive but its heartbeat
            // file has gone silent past the timeout — kill it and let
            // the normal crash path restart it (claims it held go
            // stale and peers take them over meanwhile).
            const std::string hb = heartbeatPath(s);
            if (!hb.empty()) {
                const long long age = fileAgeMs(hb);
                if (age > options_.hangTimeout.count()) {
                    warn("SweepSupervisor: slot " + std::to_string(s) +
                         " worker " + std::to_string(slot.pid) +
                         " heartbeat silent for " +
                         std::to_string(age) + " ms; killing");
                    ++slot.report.hangKills;
                    (void)::kill(slot.pid, SIGKILL);
                    // Reaped by the WNOHANG poll on a later tick.
                }
            }
        }
        if (all_settled)
            break;
        if (!any_running) {
            // Everyone is in backoff; sleep until the earliest
            // relaunch instead of spinning.
            auto wake = Clock::time_point::max();
            for (const Slot &slot : slots) {
                if (!slot.settled && slot.pid < 0 &&
                    slot.notBefore < wake)
                    wake = slot.notBefore;
            }
            if (wake != Clock::time_point::max() && wake > now) {
                std::this_thread::sleep_until(wake);
                continue;
            }
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }

    Report report;
    report.allSucceeded = true;
    for (Slot &slot : slots) {
        report.totalRestarts += slot.report.restarts;
        report.totalHangKills += slot.report.hangKills;
        if (!slot.report.succeeded)
            report.allSucceeded = false;
        report.workers.push_back(std::move(slot.report));
    }
    if (!report.allSucceeded)
        warn("SweepSupervisor: " + report.summaryLine());
    return report;
}

} // namespace ebm
