#include "harness/cost_model.hpp"

#include <algorithm>
#include <numeric>

namespace ebm {

double
SweepCostModel::units(const TlpCombo &combo, Cycle run_cycles)
{
    // More ready warps = more issue slots filled, more memory traffic,
    // fewer fast-forwardable idle stretches. The +1 keeps an all-ones
    // combo from predicting near-zero cost.
    std::uint64_t tlp_sum = 1;
    for (const std::uint32_t t : combo)
        tlp_sum += t;
    return static_cast<double>(tlp_sum) *
           static_cast<double>(run_cycles);
}

double
SweepCostModel::expectedCost(const TlpCombo &combo,
                             Cycle run_cycles) const
{
    const double u = units(combo, run_cycles);
    std::lock_guard<std::mutex> lk(mu_);
    // Per-combo observation first (most specific), then the global
    // seconds-per-unit ratio, then the raw prior.
    const auto it = perCombo_.find(combo);
    if (it != perCombo_.end())
        return it->second * u;
    if (totalUnits_ > 0.0)
        return (totalSeconds_ / totalUnits_) * u;
    return u;
}

void
SweepCostModel::observe(const TlpCombo &combo, Cycle run_cycles,
                        double seconds)
{
    if (seconds <= 0.0)
        return;
    const double u = units(combo, run_cycles);
    if (u <= 0.0)
        return;
    const double rate = seconds / u;
    std::lock_guard<std::mutex> lk(mu_);
    auto [it, inserted] = perCombo_.emplace(combo, rate);
    if (!inserted) {
        // EWMA, alpha = 1/2: cheap, and stale machines-load history
        // decays in a few observations.
        it->second = 0.5 * it->second + 0.5 * rate;
    }
    totalSeconds_ += seconds;
    totalUnits_ += u;
    ++observations_;
}

std::uint64_t
SweepCostModel::observations() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return observations_;
}

SweepCostModel &
SweepCostModel::instance()
{
    static SweepCostModel model;
    return model;
}

std::vector<std::size_t>
costDescendingOrder(const std::vector<double> &costs)
{
    std::vector<std::size_t> order(costs.size());
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::stable_sort(order.begin(), order.end(),
                     [&costs](std::size_t a, std::size_t b) {
                         return costs[a] > costs[b];
                     });
    return order;
}

} // namespace ebm
