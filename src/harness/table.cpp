#include "harness/table.hpp"

#include <cstdio>
#include <sstream>

#include "common/log.hpp"

namespace ebm {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    if (headers_.empty())
        fatal("TextTable: at least one column required");
}

void
TextTable::addRow(std::vector<std::string> row)
{
    if (row.size() != headers_.size())
        fatal("TextTable: row width mismatch");
    rows_.push_back(std::move(row));
}

std::string
TextTable::num(double value, int precision)
{
    std::ostringstream out;
    out.precision(precision);
    out << std::fixed << value;
    return out.str();
}

std::string
TextTable::render() const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    auto emit_row = [&](const std::vector<std::string> &row,
                        std::ostringstream &out) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            out << (c == 0 ? "| " : " | ");
            out << row[c];
            out << std::string(widths[c] - row[c].size(), ' ');
        }
        out << " |\n";
    };

    std::ostringstream out;
    emit_row(headers_, out);
    out << '|';
    for (std::size_t c = 0; c < widths.size(); ++c)
        out << std::string(widths[c] + 2, '-') << '|';
    out << '\n';
    for (const auto &row : rows_)
        emit_row(row, out);
    return out.str();
}

void
TextTable::print() const
{
    std::fputs(render().c_str(), stdout);
}

} // namespace ebm
