/**
 * @file
 * Minimal fixed-width ASCII table printer for bench output. Every
 * bench binary prints the rows/series of its paper figure through
 * this, so the output format stays uniform.
 */
#pragma once

#include <string>
#include <vector>

namespace ebm {

/** A simple column-aligned text table. */
class TextTable
{
  public:
    /** @param headers column titles */
    explicit TextTable(std::vector<std::string> headers);

    /** Append one row (must match the header count). */
    void addRow(std::vector<std::string> row);

    /** Convenience: format doubles with @p precision digits. */
    static std::string num(double value, int precision = 3);

    /** Render to a string (with separator rules). */
    std::string render() const;

    /** Render and write to stdout. */
    void print() const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace ebm
