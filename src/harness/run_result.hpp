/**
 * @file
 * The outcome of one measured simulation run, and the options that
 * shape a run. Every experiment in bench/ consumes these.
 */
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "common/config.hpp"
#include "common/types.hpp"
#include "metrics/metrics.hpp"

namespace ebm {

/** Timing knobs of one measured run. */
struct RunOptions
{
    Cycle warmupCycles = 5000;   ///< Caches warm, not measured.
    Cycle measureCycles = 30000; ///< Measurement span.
    Cycle windowCycles = 1500;   ///< Sampling window (policies).
    /** Synthetic kernel-relaunch period (0 = never). */
    Cycle relaunchInterval = 0;
};

/** Per-application and whole-run measurements. */
struct RunResult
{
    std::vector<AppRunStats> apps; ///< ipc/bw/l1Mr/l2Mr per app.
    double totalBw = 0.0;          ///< Sum of per-app attained BW.
    Cycle measuredCycles = 0;
    TlpCombo finalTlp;             ///< Combination in force at the end.
    std::uint32_t samplesTaken = 0;///< Search overhead (policies).
    /** TLP changes over time (online policies; paper Fig. 11). */
    std::vector<std::pair<Cycle, TlpCombo>> tlpTimeline;

    /** Per-app effective bandwidths. */
    std::vector<double>
    ebs() const
    {
        std::vector<double> v;
        v.reserve(apps.size());
        for (const AppRunStats &a : apps)
            v.push_back(a.eb());
        return v;
    }

    /** Per-app IPCs. */
    std::vector<double>
    ipcs() const
    {
        std::vector<double> v;
        v.reserve(apps.size());
        for (const AppRunStats &a : apps)
            v.push_back(a.ipc);
        return v;
    }
};

} // namespace ebm
