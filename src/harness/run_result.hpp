/**
 * @file
 * The outcome of one measured simulation run, and the options that
 * shape a run. Every experiment in bench/ consumes these.
 */
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "common/config.hpp"
#include "common/types.hpp"
#include "metrics/metrics.hpp"

namespace ebm {

class FaultInjector;

/** Timing knobs of one measured run. */
struct RunOptions
{
    Cycle warmupCycles = 5000;   ///< Caches warm, not measured.
    Cycle measureCycles = 30000; ///< Measurement span.
    Cycle windowCycles = 1500;   ///< Sampling window (policies).
    /** Synthetic kernel-relaunch period (0 = never). */
    Cycle relaunchInterval = 0;
    /**
     * Optional fault-injection harness threaded through the Runner
     * and EbMonitor (robustness tests only; null in production runs).
     * Not owned; must outlive every run that uses these options.
     */
    FaultInjector *faultInjector = nullptr;

    /** Collect *all* consistency problems. Empty = valid. */
    std::vector<Error>
    check() const
    {
        std::vector<Error> errors;
        const auto bad = [&errors](const std::string &msg) {
            errors.push_back({Errc::InvalidConfig, msg});
        };
        if (windowCycles == 0)
            bad("RunOptions: windowCycles must be > 0");
        if (measureCycles == 0)
            bad("RunOptions: measureCycles must be > 0");
        if (windowCycles > warmupCycles + measureCycles)
            bad("RunOptions: windowCycles exceeds the whole run "
                "(no sampling window would ever close)");
        return errors;
    }
};

/** Per-application and whole-run measurements. */
struct RunResult
{
    std::vector<AppRunStats> apps; ///< ipc/bw/l1Mr/l2Mr per app.
    double totalBw = 0.0;          ///< Sum of per-app attained BW.
    Cycle measuredCycles = 0;
    TlpCombo finalTlp;             ///< Combination in force at the end.
    std::uint32_t samplesTaken = 0;///< Search overhead (policies).
    /** TLP changes over time (online policies; paper Fig. 11). */
    std::vector<std::pair<Cycle, TlpCombo>> tlpTimeline;

    /** Per-app effective bandwidths. */
    std::vector<double>
    ebs() const
    {
        std::vector<double> v;
        v.reserve(apps.size());
        for (const AppRunStats &a : apps)
            v.push_back(a.eb());
        return v;
    }

    /** Per-app IPCs. */
    std::vector<double>
    ipcs() const
    {
        std::vector<double> v;
        v.reserve(apps.size());
        for (const AppRunStats &a : apps)
            v.push_back(a.ipc);
        return v;
    }
};

} // namespace ebm
