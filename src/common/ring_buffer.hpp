/**
 * @file
 * Fixed-capacity ring buffer: the allocation-free FIFO for simulator
 * hot paths (crossbar virtual output queues, response scratch). All
 * storage is reserved at construction; push/pop are index arithmetic
 * on a flat array, so steady-state operation performs no allocation —
 * unlike BoundedQueue, whose std::deque allocates chunks as it grows.
 * Semantics mirror BoundedQueue (explicit back-pressure: callers
 * check full()/empty() first), minus mid-queue iteration/extraction.
 */
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "common/log.hpp"

namespace ebm {

/** Fixed-capacity FIFO backed by one flat allocation. */
template <typename T>
class RingBuffer
{
  public:
    explicit RingBuffer(std::size_t capacity)
        : buf_(capacity == 0 ? 1 : capacity), capacity_(capacity)
    {
        if (capacity == 0)
            fatal("RingBuffer: capacity must be > 0");
    }

    bool empty() const { return count_ == 0; }
    bool full() const { return count_ >= capacity_; }
    std::size_t size() const { return count_; }
    std::size_t capacity() const { return capacity_; }

    /** Enqueue; the caller must have checked full(). */
    void
    push(T item)
    {
        if (full())
            panic("RingBuffer: push into a full queue");
        buf_[wrap(head_ + count_)] = std::move(item);
        ++count_;
    }

    /** Front element; the caller must have checked empty(). */
    T &
    front()
    {
        if (empty())
            panic("RingBuffer: front of an empty queue");
        return buf_[head_];
    }

    const T &
    front() const
    {
        if (empty())
            panic("RingBuffer: front of an empty queue");
        return buf_[head_];
    }

    /** Dequeue the front element. */
    T
    pop()
    {
        if (empty())
            panic("RingBuffer: pop from an empty queue");
        T item = std::move(buf_[head_]);
        head_ = wrap(head_ + 1);
        --count_;
        return item;
    }

    void
    clear()
    {
        head_ = 0;
        count_ = 0;
    }

  private:
    std::size_t wrap(std::size_t i) const
    {
        return i >= capacity_ ? i - capacity_ : i;
    }

    std::vector<T> buf_;
    std::size_t capacity_;
    std::size_t head_ = 0;
    std::size_t count_ = 0;
};

} // namespace ebm
