/**
 * @file
 * Simulated GPU configuration, mirroring the paper's Table I at a scale
 * that runs on one host core. Every experiment uses one GpuConfig for
 * all schemes, so relative comparisons are apples-to-apples.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"

namespace ebm {

/** GDDR5-like DRAM timing in command-clock cycles (Table I, Hynix). */
struct DramTiming
{
    std::uint32_t tCL = 12;   ///< CAS latency.
    std::uint32_t tRP = 12;   ///< Row precharge.
    std::uint32_t tRCD = 12;  ///< RAS-to-CAS delay.
    std::uint32_t tRAS = 28;  ///< Row active time.
    std::uint32_t tCCDl = 3;  ///< Column-to-column, same bank group.
    std::uint32_t tCCDs = 2;  ///< Column-to-column, different group.
    /**
     * Row-to-row activate delay. Together with burstCycles this sets
     * the utilization floor of row-locality-free traffic (2 chunk
     * lines x burstCycles / tRRD): the gap between that floor and
     * full-bus streaming is what TLP-induced row thrashing costs.
     */
    std::uint32_t tRRD = 8;
    std::uint32_t burstCycles = 2; ///< Data-bus cycles per 128B burst.

    bool operator==(const DramTiming &) const = default;
};

/** Cache geometry for one cache instance. */
struct CacheGeometry
{
    std::uint32_t sizeBytes = 16 * 1024;
    std::uint32_t assoc = 4;
    std::uint32_t lineBytes = 128;
    std::uint32_t mshrEntries = 32;      ///< Distinct in-flight lines.
    std::uint32_t mshrTargetsPerEntry = 8;

    std::uint32_t numSets() const { return sizeBytes / (assoc * lineBytes); }

    bool operator==(const CacheGeometry &) const = default;
};

/**
 * Top-level simulated-GPU parameters.
 *
 * Defaults are a scaled-down K20m-class chip: the paper's ratios
 * (warps per core, schedulers per core, L1/L2 per-unit geometry, DRAM
 * banks/groups, 256B channel interleave) are kept; the core and channel
 * counts are halved-ish so a 64-combination exhaustive search finishes
 * in seconds on a laptop.
 */
struct GpuConfig
{
    // --- Cores -----------------------------------------------------
    std::uint32_t numCores = 16;          ///< Total SIMT cores.
    std::uint32_t maxWarpsPerCore = 48;   ///< Hardware warp contexts.
    std::uint32_t schedulersPerCore = 2;  ///< Warp issue arbiters.
    std::uint32_t simtWidth = 32;         ///< Threads per warp.
    std::uint32_t maxIssuePerScheduler = 1;

    // --- Latencies (core cycles) ------------------------------------
    std::uint32_t l1HitLatency = 28;
    std::uint32_t l2HitLatency = 120;
    std::uint32_t icntRequestLatency = 8;  ///< Core -> partition hop.
    std::uint32_t icntResponseLatency = 8; ///< Partition -> core hop.

    // --- Caches -----------------------------------------------------
    CacheGeometry l1 = {16 * 1024, 4, 128, 48, 8};
    CacheGeometry l2Slice = {256 * 1024, 16, 128, 64, 8};

    // --- Memory system ----------------------------------------------
    std::uint32_t numPartitions = 6;    ///< Memory channels / L2 slices.
    std::uint32_t banksPerChannel = 16;
    std::uint32_t bankGroups = 4;
    /**
     * Row-buffer size and channel-interleave chunk. The chunk must be
     * a few cache lines and the row several chunks so a streaming
     * warp revisits an open row across loop iterations — the row
     * locality that rising TLP destroys (the knee of Figs. 2 and 6).
     */
    std::uint32_t rowBytes = 4096;
    std::uint32_t interleaveBytes = 1024;
    std::uint32_t frfcfsQueueDepth = 64;
    /**
     * Starvation guard: a request older than this many DRAM cycles is
     * scheduled ahead of younger row hits. Without a cap, one app's
     * row-hit stream can starve a co-runner's row misses indefinitely
     * (the classic FR-FCFS pathology).
     */
    std::uint32_t frfcfsCapCycles = 512;
    DramTiming dram;

    /** DRAM command clock as a fraction of the core clock. */
    double dramClockRatio = 924.0 / 1400.0;

    // --- Interconnect -----------------------------------------------
    std::uint32_t icntInputQueueDepth = 8;  ///< Per (core, partition).
    std::uint32_t icntOutputQueueDepth = 8;

    // --- Multi-programming -------------------------------------------
    std::uint32_t numApps = 1;

    /**
     * TLP limit levels evaluated per application (warps per scheduler).
     * 8 levels -> 8x8 = 64 two-application combinations, matching the
     * paper's exhaustive-search space. 24 is maxTLP (48 warps across
     * 2 schedulers).
     */
    static const std::vector<std::uint32_t> &tlpLevels();

    /** Maximum per-scheduler TLP (maxTLP). */
    std::uint32_t maxTlp() const { return maxWarpsPerCore / schedulersPerCore; }

    /** Cores owned by an app under an equal static partition. */
    std::uint32_t coresPerApp() const { return numCores / numApps; }

    /**
     * Theoretical peak data-bus throughput in bytes per core cycle,
     * summed over all channels. Used to normalize attained bandwidth.
     */
    double peakBytesPerCoreCycle() const;

    /**
     * Collect *all* consistency problems (not just the first), with
     * actionable messages. Empty = valid.
     */
    std::vector<Error> check() const;

    /** Validate internal consistency; fatal() listing every problem. */
    void validate() const;

    bool operator==(const GpuConfig &) const = default;
};

/**
 * Strict unsigned-integer parse of @p text into @p out: the whole
 * string must be a base-10 number — leading signs, trailing garbage
 * ("8x"), and empty strings are rejected. The single parser behind
 * every numeric knob (EBM_* env vars, --jobs, wire-protocol fields),
 * so "accepts trailing garbage" bugs cannot creep in per call site.
 */
bool parseUint(const char *text, std::uint64_t &out);

/**
 * Parse environment variable @p name as an unsigned integer clamped
 * to [@p min, @p max]; @p fallback when unset, empty, or garbage
 * (garbage is warned about — a knob the user set but mistyped should
 * not be silently ignored). The shared parser behind every EBM_*
 * numeric knob (EBM_JOBS, EBM_CACHE_SHARDS, EBM_CLAIM_STALE_MS, ...),
 * so they all reject nonsense the same way.
 */
std::uint64_t envUint(const char *name, std::uint64_t fallback,
                      std::uint64_t min, std::uint64_t max);

/**
 * Parse environment variable @p name as a boolean flag: "0", "false",
 * "off", and "no" (case-insensitive) are false, any other non-empty
 * value is true, unset/empty is @p fallback.
 */
bool envFlag(const char *name, bool fallback);

/**
 * Deterministic hash over *every* field of @p cfg.
 *
 * Two configs hash equal iff they would build identical machines, so
 * this is safe to embed in cache keys (the historical hand-picked
 * field subset silently aliased configs that differed only in, e.g.,
 * DRAM timings or cache associativity). Extending GpuConfig means
 * extending this function — the adjacent static_assert on the struct
 * size is the tripwire.
 */
std::uint64_t configHash(const GpuConfig &cfg);

/** A per-application TLP assignment (warps per scheduler, per app). */
using TlpCombo = std::vector<std::uint32_t>;

} // namespace ebm
