/**
 * @file
 * Injectable I/O seam for crash-consistency testing.
 *
 * Every durable write the result store and the claim protocol perform
 * goes through an IoShim instead of calling pwrite/fsync/ftruncate
 * directly. With no FaultInjector attached the shim is a transparent
 * retry-on-EINTR wrapper (the exact loops DiskCache used inline); with
 * one attached, it deterministically injects the I/O failures a real
 * deployment meets:
 *
 *   - IoShortWrite:      half the buffer lands, then the write errors
 *                        (a partial append the caller must undo).
 *   - IoFsyncFail:       fsync reports failure — the data reached the
 *                        page cache but durability is not guaranteed.
 *   - IoEnospc / IoEio:  the write fails up front (disk full, I/O
 *                        error) with the matching errno.
 *   - IoAbortAfterWrite: the process dies (SIGKILL) immediately after
 *                        a complete write — durable frame, no cleanup,
 *                        claims left behind.
 *   - IoAbortMidWrite:   the process dies with only half the buffer
 *                        written — the canonical torn-tail producer.
 *
 * All points are driven by the shared FaultInjector, so a seeded
 * schedule replays bit-identically: the Nth batch append of a given
 * writer fails (or kills it) on every run of the same seed. The abort
 * points fire at write granularity, and DiskCache issues exactly one
 * shim write per group-commit batch — so "the Nth write" is "the Nth
 * frame-batch boundary".
 *
 * Thread safety: the shim itself is stateless; the injector it queries
 * follows the FaultInjector rules (single-threaded query streams —
 * DiskCache serializes all shim calls behind its single-writer append
 * role and ioMu_).
 */
#pragma once

#include <signal.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstdint>
#include <string>

#include "common/error.hpp"
#include "common/fault_injector.hpp"

namespace ebm {

/** Injectable wrapper over the durable-write syscalls. */
class IoShim
{
  public:
    explicit IoShim(FaultInjector *injector = nullptr)
        : injector_(injector)
    {
    }

    FaultInjector *injector() const { return injector_; }
    void setInjector(FaultInjector *injector) { injector_ = injector; }

    /**
     * Write all @p len bytes at @p off, retrying on EINTR.
     *
     * Injection points (queried in this order, first hit wins):
     * IoEnospc/IoEio fail before any byte lands; IoShortWrite and
     * IoAbortMidWrite write len/2 bytes first; IoAbortAfterWrite
     * completes the write, then kills the process.
     */
    Status
    pwriteAll(int fd, std::uint64_t off, const char *data,
              std::size_t len)
    {
        if (injector_ != nullptr) {
            if (injector_->shouldFire(FaultInjector::Point::IoEnospc)) {
                errno = ENOSPC;
                return ioError("injected ENOSPC");
            }
            if (injector_->shouldFire(FaultInjector::Point::IoEio)) {
                errno = EIO;
                return ioError("injected EIO");
            }
            if (injector_->shouldFire(
                    FaultInjector::Point::IoShortWrite)) {
                (void)rawPwriteAll(fd, off, data, len / 2);
                errno = EIO;
                return ioError("injected short write (" +
                               std::to_string(len / 2) + " of " +
                               std::to_string(len) + " bytes landed)");
            }
            if (injector_->shouldFire(
                    FaultInjector::Point::IoAbortMidWrite)) {
                (void)rawPwriteAll(fd, off, data, len / 2);
                die();
            }
        }
        if (!rawPwriteAll(fd, off, data, len))
            return ioError("write failed: " + errnoName());
        if (injector_ != nullptr &&
            injector_->shouldFire(
                FaultInjector::Point::IoAbortAfterWrite)) {
            die();
        }
        return Status::success();
    }

    /** fsync @p fd (injection point: IoFsyncFail). */
    Status
    fsyncFd(int fd)
    {
        if (injector_ != nullptr &&
            injector_->shouldFire(FaultInjector::Point::IoFsyncFail)) {
            errno = EIO;
            return ioError("injected fsync failure");
        }
        if (::fsync(fd) != 0)
            return ioError("fsync failed: " + errnoName());
        return Status::success();
    }

    /** ftruncate @p fd to @p len (no injection: truncation is the
     * *recovery* action — failing it is the read-only case the caller
     * handles by degrading, not a fault worth scheduling). */
    Status
    truncateFd(int fd, std::uint64_t len)
    {
        if (::ftruncate(fd, static_cast<off_t>(len)) != 0)
            return ioError("ftruncate failed: " + errnoName());
        return Status::success();
    }

  private:
    static std::string
    errnoName()
    {
        switch (errno) {
          case ENOSPC: return "ENOSPC";
          case EIO:    return "EIO";
          case EROFS:  return "EROFS";
          case EBADF:  return "EBADF";
          case EACCES: return "EACCES";
          default:     return "errno " + std::to_string(errno);
        }
    }

    static Status
    ioError(std::string what)
    {
        return Status(Error{Errc::CacheIo, std::move(what)});
    }

    /** The process-abort faults: SIGKILL, exactly like a chaos kill or
     * an OOM reap — no destructors, no atexit, no flocks released
     * gracefully (the kernel drops them with the fd table). */
    [[noreturn]] static void
    die()
    {
        (void)::kill(::getpid(), SIGKILL);
        // SIGKILL cannot be handled; pause until it lands.
        for (;;)
            ::pause();
    }

    static bool
    rawPwriteAll(int fd, std::uint64_t off, const char *data,
                 std::size_t len)
    {
        while (len > 0) {
            const ssize_t n =
                ::pwrite(fd, data, len, static_cast<off_t>(off));
            if (n < 0) {
                if (errno == EINTR)
                    continue;
                return false;
            }
            data += n;
            off += static_cast<std::uint64_t>(n);
            len -= static_cast<std::size_t>(n);
        }
        return true;
    }

    FaultInjector *injector_;
};

} // namespace ebm
