/**
 * @file
 * Fundamental identifier and quantity types shared by every subsystem.
 */
#pragma once

#include <cstdint>

namespace ebm {

/** Simulation time in core-clock cycles. */
using Cycle = std::uint64_t;

/** Byte address in the global linear address space. */
using Addr = std::uint64_t;

/** Identifier of a co-scheduled application (0-based). */
using AppId = std::uint32_t;

/** Identifier of a SIMT core (0-based, global across all apps). */
using CoreId = std::uint32_t;

/** Identifier of a memory partition / channel (0-based). */
using PartitionId = std::uint32_t;

/** Identifier of a warp within a core (0-based). */
using WarpId = std::uint32_t;

/** Sentinel meaning "no application". */
inline constexpr AppId kInvalidApp = 0xffffffffu;

/** Sentinel meaning "no cycle scheduled". */
inline constexpr Cycle kNeverCycle = ~Cycle{0};

} // namespace ebm
