/**
 * @file
 * Small fixed-size worker pool for the harness's embarrassingly
 * parallel work (exhaustive sweeps, alone-run profiling): independent
 * simulations are dispatched onto worker threads and their results
 * committed into pre-assigned slots, so the output of a parallel run
 * is bit-identical to the serial one regardless of interleaving.
 *
 * Concurrency defaults come from, in priority order: an explicit
 * constructor argument, a process-wide override (the benches' --jobs
 * flag), the EBM_JOBS environment variable, and finally the hardware
 * concurrency. Jobs = 1 restores strictly serial behaviour; callers
 * are expected to run inline in that case rather than spawn a thread.
 *
 * The job queue is a BoundedQueue with explicit back-pressure: a
 * submitter blocks once the queue is full, so a producer enumerating
 * millions of tasks never buffers more than a bounded window of them.
 * The first exception thrown by a job is captured and rethrown from
 * wait() (or the destructor's implicit wait), preserving the library's
 * structured-error model across thread boundaries.
 */
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/bounded_queue.hpp"
#include "common/config.hpp"
#include "common/log.hpp"

namespace ebm {

/** Fixed-size worker pool with bounded submission back-pressure. */
class JobPool
{
  public:
    using Job = std::function<void()>;

    /**
     * @param workers     worker thread count; 0 = defaultJobs()
     * @param queue_depth pending-job window; 0 = 2 x workers
     */
    explicit JobPool(unsigned workers = 0, std::size_t queue_depth = 0)
        : workers_(resolveWorkers(workers)),
          queue_(queue_depth != 0 ? queue_depth : 2 * workers_)
    {
        threads_.reserve(workers_);
        for (unsigned i = 0; i < workers_; ++i)
            threads_.emplace_back([this] { workerLoop(); });
    }

    JobPool(const JobPool &) = delete;
    JobPool &operator=(const JobPool &) = delete;

    ~JobPool()
    {
        {
            std::lock_guard<std::mutex> lk(mu_);
            stopping_ = true;
        }
        notEmpty_.notify_all();
        for (std::thread &t : threads_)
            t.join();
    }

    unsigned workers() const { return workers_; }

    /** Enqueue @p job; blocks while the pending window is full. */
    void
    submit(Job job)
    {
        {
            std::unique_lock<std::mutex> lk(mu_);
            notFull_.wait(lk, [this] { return !queue_.full(); });
            queue_.push(std::move(job));
            ++pending_;
        }
        notEmpty_.notify_one();
    }

    /**
     * Block until every submitted job has finished. Rethrows the
     * first exception any job raised (later ones are dropped), so a
     * worker-side fatal()/panic() surfaces in the dispatching thread.
     */
    void
    wait()
    {
        std::unique_lock<std::mutex> lk(mu_);
        allDone_.wait(lk, [this] { return pending_ == 0; });
        if (firstError_) {
            std::exception_ptr e = firstError_;
            firstError_ = nullptr;
            std::rethrow_exception(e);
        }
    }

    /**
     * Resolved default concurrency: the process-wide override set by
     * setDefaultJobs() (the --jobs flag), else EBM_JOBS, else the
     * hardware concurrency. Always >= 1. EBM_JOBS goes through the
     * shared strict envUint parser — "8x" is a warned-about rejection
     * (falling back to hardware concurrency), never silently 8 — and
     * an explicit 0 means "auto" (hardware concurrency), matching the
     * constructor's 0 = defaultJobs() convention.
     */
    static unsigned
    defaultJobs()
    {
        const unsigned override_jobs =
            overrideJobs().load(std::memory_order_relaxed);
        if (override_jobs != 0)
            return override_jobs;
        const auto env_jobs = static_cast<unsigned>(
            envUint("EBM_JOBS", 0, 0, 1u << 16));
        if (env_jobs != 0)
            return env_jobs;
        const unsigned hw = std::thread::hardware_concurrency();
        return hw != 0 ? hw : 1;
    }

    /** Process-wide concurrency override (0 clears it). */
    static void
    setDefaultJobs(unsigned jobs)
    {
        overrideJobs().store(jobs, std::memory_order_relaxed);
    }

  private:
    static std::atomic<unsigned> &
    overrideJobs()
    {
        static std::atomic<unsigned> jobs{0};
        return jobs;
    }

    static unsigned
    resolveWorkers(unsigned workers)
    {
        return workers != 0 ? workers : defaultJobs();
    }

    void
    workerLoop()
    {
        for (;;) {
            Job job;
            {
                std::unique_lock<std::mutex> lk(mu_);
                notEmpty_.wait(lk, [this] {
                    return stopping_ || !queue_.empty();
                });
                if (queue_.empty())
                    return; // stopping_, and nothing left to run.
                job = queue_.pop();
            }
            notFull_.notify_one();

            try {
                job();
            } catch (...) {
                std::lock_guard<std::mutex> lk(mu_);
                if (!firstError_)
                    firstError_ = std::current_exception();
            }

            {
                std::lock_guard<std::mutex> lk(mu_);
                --pending_;
            }
            allDone_.notify_all();
        }
    }

    unsigned workers_;
    std::mutex mu_;
    std::condition_variable notEmpty_;
    std::condition_variable notFull_;
    std::condition_variable allDone_;
    BoundedQueue<Job> queue_;
    std::size_t pending_ = 0;
    bool stopping_ = false;
    std::exception_ptr firstError_ = nullptr;
    std::vector<std::thread> threads_;
};

/**
 * Parse a `--jobs N` / `--jobs=N` / `-j N` flag from @p argv into the
 * process-wide default (bench mains call this before running). A
 * malformed value is warned about and ignored rather than fatal: the
 * benches should still produce their figures. @return the resolved
 * default concurrency after parsing.
 */
inline unsigned
applyJobsFlag(int argc, char *const argv[])
{
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        std::string value;
        if ((arg == "--jobs" || arg == "-j") && i + 1 < argc)
            value = argv[i + 1];
        else if (arg.rfind("--jobs=", 0) == 0)
            value = arg.substr(7);
        else
            continue;
        std::uint64_t n = 0;
        if (!parseUint(value.c_str(), n) || n == 0 || n > (1u << 16)) {
            warn("ignoring invalid --jobs value '" + value + "'");
            return JobPool::defaultJobs();
        }
        JobPool::setDefaultJobs(static_cast<unsigned>(n));
        return JobPool::defaultJobs();
    }
    return JobPool::defaultJobs();
}

} // namespace ebm
