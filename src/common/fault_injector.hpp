/**
 * @file
 * Deterministic fault injection for robustness testing.
 *
 * A FaultInjector owns a set of named injection points threaded
 * through the harness (Runner), the EB monitor, and the disk cache.
 * Each point is disarmed by default (zero overhead beyond a null
 * check); tests arm a point either to fire with a seeded pseudo-random
 * probability or to fire deterministically on the Nth query. All
 * randomness derives from ebm::Rng, so a given seed reproduces the
 * exact same fault schedule on every run.
 *
 * Threading: an injector's query counters are not synchronized, so a
 * single instance must only ever be queried from one thread at a
 * time. Parallel harness code never shares one: the sweep pre-draws
 * the run-failure schedule serially in dispatch order and hands each
 * worker task its own fork() — an independent injector with the same
 * arming whose streams are seeded by the task id, making every
 * worker-side fault a pure function of (seed, task id, point)
 * regardless of thread interleaving.
 */
#pragma once

#include <array>
#include <cstdint>

#include "common/rng.hpp"

namespace ebm {

/** Deterministic, seedable fault-injection harness. */
class FaultInjector
{
  public:
    /** Named injection points known to the library. */
    enum class Point : std::uint8_t {
        CacheWriteFail,   ///< DiskCache persist fails (I/O error).
        CacheReadTruncate,///< DiskCache load sees a truncated file.
        EbSampleNan,      ///< Monitor window yields NaN observables.
        EbSampleZero,     ///< Monitor window yields all-zero counters.
        AppDrain,         ///< One app drains (goes idle) mid-run.
        RunFail,          ///< A simulation run fails outright.
        // --- I/O-layer points, queried through common/io_fault.hpp ---
        IoShortWrite,     ///< A write lands partially, then errors.
        IoFsyncFail,      ///< fsync reports failure (data not durable).
        IoEnospc,         ///< Write fails up front with ENOSPC.
        IoEio,            ///< Write fails up front with EIO.
        IoAbortAfterWrite,///< Process dies (SIGKILL) after a write.
        IoAbortMidWrite,  ///< Process dies (SIGKILL) mid-write (torn).
        // --- Whole-process crash points in the sweep claim protocol --
        CrashClaimHeld,   ///< Die right after winning a row's claim.
        CrashPostPut,     ///< Die after the durable put, pre-release.
        kNumPoints,
    };

    explicit FaultInjector(std::uint64_t seed = 0) : seed_(seed) {}

    /** Fire with probability @p p at every query of @p point. */
    void
    armProbability(Point point, double p)
    {
        Slot &s = slot(point);
        s = Slot{};
        s.armed = true;
        s.probability = p;
        s.rng = Rng(hashIds(seed_, static_cast<std::uint64_t>(point)));
    }

    /**
     * Fire on queries [@p first, @p first + @p count) of @p point
     * (0-based), deterministically.
     */
    void
    armAfter(Point point, std::uint64_t first,
             std::uint64_t count = ~std::uint64_t{0})
    {
        Slot &s = slot(point);
        s = Slot{};
        s.armed = true;
        s.firstQuery = first;
        s.fireCount = count;
    }

    void disarm(Point point) { slot(point) = Slot{}; }

    /**
     * Per-worker view of this injector: the same points armed the
     * same way, but with fresh query counters and probability streams
     * re-seeded by (seed, @p stream, point). Two forks with the same
     * stream id behave identically; forks with different ids are
     * independent. Ordinal (armAfter) schedules restart from query 0
     * in the fork — they count the fork's own queries.
     */
    FaultInjector
    fork(std::uint64_t stream) const
    {
        FaultInjector f(hashIds(seed_, stream));
        for (std::size_t p = 0; p < slots_.size(); ++p) {
            const Slot &s = slots_[p];
            if (!s.armed)
                continue;
            Slot &d = f.slots_[p];
            d.armed = true;
            d.probability = s.probability;
            d.firstQuery = s.firstQuery;
            d.fireCount = s.fireCount;
            d.rng = Rng(hashIds(seed_, stream, p));
        }
        return f;
    }

    /** Query (and advance) an injection point. */
    bool
    shouldFire(Point point)
    {
        Slot &s = slot(point);
        const std::uint64_t query = s.queries++;
        if (!s.armed)
            return false;
        bool fire;
        if (s.probability >= 0.0) {
            fire = s.rng.nextUnit() < s.probability;
        } else {
            fire = query >= s.firstQuery &&
                   query < s.firstQuery + s.fireCount;
        }
        if (fire)
            ++s.fired;
        return fire;
    }

    std::uint64_t queries(Point point) const { return slot(point).queries; }
    std::uint64_t fired(Point point) const { return slot(point).fired; }

    /** Human-readable name of @p point (logs and test output). */
    static const char *
    name(Point point)
    {
        switch (point) {
          case Point::CacheWriteFail:    return "cache-write-fail";
          case Point::CacheReadTruncate: return "cache-read-truncate";
          case Point::EbSampleNan:       return "eb-sample-nan";
          case Point::EbSampleZero:      return "eb-sample-zero";
          case Point::AppDrain:          return "app-drain";
          case Point::RunFail:           return "run-fail";
          case Point::IoShortWrite:      return "io-short-write";
          case Point::IoFsyncFail:       return "io-fsync-fail";
          case Point::IoEnospc:          return "io-enospc";
          case Point::IoEio:             return "io-eio";
          case Point::IoAbortAfterWrite: return "io-abort-after-write";
          case Point::IoAbortMidWrite:   return "io-abort-mid-write";
          case Point::CrashClaimHeld:    return "crash-claim-held";
          case Point::CrashPostPut:      return "crash-post-put";
          case Point::kNumPoints:        break;
        }
        return "unknown";
    }

  private:
    struct Slot
    {
        bool armed = false;
        double probability = -1.0;  ///< < 0 = use firstQuery/fireCount.
        std::uint64_t firstQuery = 0;
        std::uint64_t fireCount = 0;
        std::uint64_t queries = 0;
        std::uint64_t fired = 0;
        Rng rng{0};
    };

    Slot &slot(Point p) { return slots_[static_cast<std::size_t>(p)]; }
    const Slot &
    slot(Point p) const
    {
        return slots_[static_cast<std::size_t>(p)];
    }

    std::uint64_t seed_;
    std::array<Slot, static_cast<std::size_t>(Point::kNumPoints)> slots_{};
};

} // namespace ebm
