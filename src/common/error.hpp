/**
 * @file
 * Structured error model for the whole simulator.
 *
 * Library code reports failures through three channels, by severity:
 *   - Error / Result<T>: recoverable conditions the caller is expected
 *     to handle (a corrupt cache entry, an unwritable directory).
 *   - FatalError (thrown by fatal()): a user/configuration error the
 *     current operation cannot survive; harness entry points catch it,
 *     print the message, and exit cleanly.
 *   - InternalError (thrown by panic()): a violated invariant — a
 *     simulator bug. Opt-in hard abort (EBM_ABORT_ON_PANIC=1) keeps
 *     the old core-dump behaviour for debugger use.
 *
 * Nothing below src/harness ever calls std::exit or std::abort on its
 * own (the opt-in panic abort excepted).
 */
#pragma once

#include <stdexcept>
#include <string>
#include <utility>
#include <variant>
#include <vector>

namespace ebm {

/** Machine-readable failure category. */
enum class Errc : std::uint8_t {
    InvalidConfig,   ///< Bad GpuConfig / RunOptions values.
    InvalidArgument, ///< Bad argument to a library call.
    CacheCorrupt,    ///< On-disk cache failed validation.
    CacheIo,         ///< Cache file could not be read/written.
    InvalidSample,   ///< EB sample failed sanity checks.
    SearchFailed,    ///< PBS search could not converge.
    RunFailed,       ///< A simulation run failed (or was injected).
    Internal,        ///< Violated invariant — a simulator bug.
};

/** Name of an error category, for messages and logs. */
inline const char *
errcName(Errc code)
{
    switch (code) {
      case Errc::InvalidConfig:   return "invalid-config";
      case Errc::InvalidArgument: return "invalid-argument";
      case Errc::CacheCorrupt:    return "cache-corrupt";
      case Errc::CacheIo:         return "cache-io";
      case Errc::InvalidSample:   return "invalid-sample";
      case Errc::SearchFailed:    return "search-failed";
      case Errc::RunFailed:       return "run-failed";
      case Errc::Internal:        return "internal";
    }
    return "unknown";
}

/** One structured failure: category plus an actionable message. */
struct Error
{
    Errc code = Errc::Internal;
    std::string message;

    std::string
    toString() const
    {
        return std::string("[") + errcName(code) + "] " + message;
    }
};

/** Join several errors into one multi-line report (all problems). */
inline std::string
joinErrors(const std::vector<Error> &errors)
{
    std::string out;
    for (std::size_t i = 0; i < errors.size(); ++i) {
        if (i != 0)
            out += "\n  ";
        out += errors[i].toString();
    }
    return out;
}

/** Unrecoverable user/configuration error (thrown by fatal()). */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(Error error)
        : std::runtime_error(error.toString()), error_(std::move(error))
    {
    }

    const Error &error() const { return error_; }
    Errc code() const { return error_.code; }

  private:
    Error error_;
};

/** Violated invariant — a simulator bug (thrown by panic()). */
class InternalError : public FatalError
{
  public:
    explicit InternalError(std::string message)
        : FatalError({Errc::Internal, std::move(message)})
    {
    }
};

/**
 * Value-or-error return type for recoverable failure paths.
 *
 * A deliberately small subset of the usual expected<T, E> surface:
 * construct with a T or an Error, test ok(), then value()/error().
 */
template <typename T>
class Result
{
  public:
    Result(T value) : payload_(std::move(value)) {}
    Result(Error error) : payload_(std::move(error)) {}

    bool ok() const { return std::holds_alternative<T>(payload_); }
    explicit operator bool() const { return ok(); }

    T &
    value()
    {
        if (!ok())
            throw FatalError(std::get<Error>(payload_));
        return std::get<T>(payload_);
    }

    const T &
    value() const
    {
        if (!ok())
            throw FatalError(std::get<Error>(payload_));
        return std::get<T>(payload_);
    }

    /** The held value, or @p fallback when this is an error. */
    T
    valueOr(T fallback) const
    {
        return ok() ? std::get<T>(payload_) : std::move(fallback);
    }

    const Error &error() const { return std::get<Error>(payload_); }

  private:
    std::variant<T, Error> payload_;
};

/** Result specialization for operations with no payload. */
class Status
{
  public:
    Status() = default;
    Status(Error error) : error_(std::move(error)), failed_(true) {}

    bool ok() const { return !failed_; }
    explicit operator bool() const { return ok(); }
    const Error &error() const { return error_; }

    static Status success() { return Status(); }

  private:
    Error error_;
    bool failed_ = false;
};

} // namespace ebm
