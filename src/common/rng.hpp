/**
 * @file
 * Deterministic hash-based pseudo-randomness.
 *
 * All stochastic decisions in the simulator (address pattern draws,
 * compute-latency jitter, ...) are pure functions of structural
 * identifiers (app id, warp id, instruction index), so any experiment
 * run twice produces bit-identical output, and changing the TLP of one
 * application does not perturb the instruction stream of another.
 */
#pragma once

#include <cstdint>

namespace ebm {

/** 64-bit SplitMix64 finalizer; a strong, cheap integer mixer. */
inline constexpr std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

/** Combine up to four identifiers into one deterministic 64-bit hash. */
inline constexpr std::uint64_t
hashIds(std::uint64_t a, std::uint64_t b = 0, std::uint64_t c = 0,
        std::uint64_t d = 0)
{
    std::uint64_t h = mix64(a);
    h = mix64(h ^ b);
    h = mix64(h ^ c);
    h = mix64(h ^ d);
    return h;
}

/** Uniform draw in [0, 1) from a hash value. */
inline constexpr double
hashToUnit(std::uint64_t h)
{
    // 53 high bits -> double mantissa.
    return static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0);
}

/**
 * Small counter-based RNG for places that want a stream rather than a
 * pure function (e.g. the harness's workload mixers). Deterministic for
 * a given seed.
 */
class Rng
{
  public:
    explicit constexpr Rng(std::uint64_t seed) : state_(mix64(seed ^ 0x5bf0'3f25'9a1c'77ddull)) {}

    /** Next raw 64-bit value. */
    constexpr std::uint64_t
    next()
    {
        state_ += 0x9e3779b97f4a7c15ull;
        return mix64(state_);
    }

    /** Uniform draw in [0, 1). */
    constexpr double nextUnit() { return hashToUnit(next()); }

    /**
     * Uniform integer in [0, bound). bound must be > 0.
     *
     * Unbiased via rejection: raw draws below 2^64 mod bound are
     * discarded, so every residue is equally likely (a plain
     * `next() % bound` over-weights the low residues for
     * non-power-of-two bounds). Determinism for existing seeds: for
     * power-of-two bounds the rejection threshold is zero and the
     * sequence is identical to the historical `next() % bound`; for
     * other bounds it matches except on the (vanishingly rare, for
     * small bounds) draws the old code mapped with bias.
     */
    constexpr std::uint64_t
    nextBounded(std::uint64_t bound)
    {
        // 2^64 mod bound, computed in 64-bit arithmetic.
        const std::uint64_t threshold = (0 - bound) % bound;
        for (;;) {
            const std::uint64_t x = next();
            if (x >= threshold)
                return x % bound;
        }
    }

  private:
    std::uint64_t state_;
};

} // namespace ebm
