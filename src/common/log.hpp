/**
 * @file
 * Minimal logging / error-exit helpers in the gem5 spirit.
 *
 * - fatal():  the simulation cannot continue due to a user error
 *             (bad configuration, invalid arguments); exits with code 1.
 * - panic():  an internal invariant was violated (a simulator bug);
 *             aborts so a core dump / debugger can be attached.
 * - warn():   something may behave approximately; execution continues.
 * - inform(): status messages with no connotation of misbehaviour.
 */
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

namespace ebm {

namespace detail {

[[noreturn]] inline void
exitMessage(const char *tag, const std::string &msg, bool hard_abort)
{
    std::fprintf(stderr, "%s: %s\n", tag, msg.c_str());
    if (hard_abort)
        std::abort();
    std::exit(1);
}

} // namespace detail

/** Terminate due to a user/configuration error. */
[[noreturn]] inline void
fatal(const std::string &msg)
{
    detail::exitMessage("fatal", msg, false);
}

/** Terminate due to an internal simulator bug. */
[[noreturn]] inline void
panic(const std::string &msg)
{
    detail::exitMessage("panic", msg, true);
}

/** Non-fatal warning. */
inline void
warn(const std::string &msg)
{
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

/** Informational status message. */
inline void
inform(const std::string &msg)
{
    std::fprintf(stdout, "info: %s\n", msg.c_str());
}

} // namespace ebm
