/**
 * @file
 * Minimal logging / error helpers in the gem5 spirit.
 *
 * - fatal():  the simulation cannot continue due to a user error
 *             (bad configuration, invalid arguments); throws
 *             FatalError so harness entry points can report and exit
 *             cleanly — library code never calls std::exit.
 * - panic():  an internal invariant was violated (a simulator bug);
 *             throws InternalError by default. Set EBM_ABORT_ON_PANIC=1
 *             (or setPanicAborts(true)) to abort instead so a core
 *             dump / debugger can be attached.
 * - warn():   something may behave approximately; execution continues.
 * - inform(): status messages with no connotation of misbehaviour.
 */
#pragma once

#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <string>

#include "common/error.hpp"

namespace ebm {

namespace detail {

/**
 * One process-wide mutex serializing log emission: every message is a
 * single whole line, so concurrent harness workers never interleave
 * fragments of their warnings.
 */
inline std::mutex &
logMutex()
{
    static std::mutex mu;
    return mu;
}

/** Mutable panic behaviour (overridable in tests / debug sessions). */
inline bool &
panicAbortsFlag()
{
    static bool aborts = [] {
        const char *env = std::getenv("EBM_ABORT_ON_PANIC");
        return env != nullptr && env[0] != '\0' && env[0] != '0';
    }();
    return aborts;
}

} // namespace detail

/** Whether panic() hard-aborts (core dump) instead of throwing. */
inline bool panicAborts() { return detail::panicAbortsFlag(); }

/** Override the panic behaviour (tests, debugger sessions). */
inline void setPanicAborts(bool aborts) { detail::panicAbortsFlag() = aborts; }

/** Terminate the current operation due to a user/configuration error. */
[[noreturn]] inline void
fatal(Error error)
{
    {
        std::lock_guard<std::mutex> lk(detail::logMutex());
        std::fprintf(stderr, "fatal: %s\n", error.message.c_str());
    }
    throw FatalError(std::move(error));
}

/** Convenience overload: a fatal with the generic config category. */
[[noreturn]] inline void
fatal(const std::string &msg)
{
    fatal(Error{Errc::InvalidConfig, msg});
}

/** Report an internal simulator bug. */
[[noreturn]] inline void
panic(const std::string &msg)
{
    {
        std::lock_guard<std::mutex> lk(detail::logMutex());
        std::fprintf(stderr, "panic: %s\n", msg.c_str());
    }
    if (panicAborts())
        std::abort();
    throw InternalError(msg);
}

/** Non-fatal warning. */
inline void
warn(const std::string &msg)
{
    std::lock_guard<std::mutex> lk(detail::logMutex());
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

/** Informational status message. */
inline void
inform(const std::string &msg)
{
    std::lock_guard<std::mutex> lk(detail::logMutex());
    std::fprintf(stdout, "info: %s\n", msg.c_str());
}

/**
 * Run @p body under the library's failure model: FatalError (and any
 * std::exception) is reported to stderr and converted to exit code 1
 * instead of an abort. Harness/bench entry points wrap main in this.
 */
template <typename Fn>
int
runGuarded(const char *what, Fn &&body)
{
    try {
        return body();
    } catch (const FatalError &e) {
        std::fprintf(stderr, "%s: aborted: %s\n", what, e.what());
    } catch (const std::exception &e) {
        std::fprintf(stderr, "%s: unexpected error: %s\n", what,
                     e.what());
    }
    return 1;
}

} // namespace ebm
