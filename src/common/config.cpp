#include "common/config.hpp"

#include <string>

#include "common/log.hpp"

namespace ebm {

const std::vector<std::uint32_t> &
GpuConfig::tlpLevels()
{
    static const std::vector<std::uint32_t> levels =
        {1, 2, 4, 6, 8, 12, 16, 24};
    return levels;
}

double
GpuConfig::peakBytesPerCoreCycle() const
{
    // Each channel can move one line-size burst every `burstCycles`
    // DRAM clocks when fully streaming.
    const double bytes_per_dram_cycle =
        static_cast<double>(l2Slice.lineBytes) / dram.burstCycles;
    return numPartitions * bytes_per_dram_cycle * dramClockRatio;
}

void
GpuConfig::validate() const
{
    if (numApps == 0)
        fatal("GpuConfig: numApps must be >= 1");
    if (numCores % numApps != 0) {
        fatal("GpuConfig: numCores (" + std::to_string(numCores) +
              ") must divide evenly among " + std::to_string(numApps) +
              " apps");
    }
    if (maxWarpsPerCore % schedulersPerCore != 0)
        fatal("GpuConfig: warps must divide evenly among schedulers");
    if (l1.lineBytes != l2Slice.lineBytes)
        fatal("GpuConfig: L1 and L2 line sizes must match");
    if (interleaveBytes < l2Slice.lineBytes)
        fatal("GpuConfig: interleave chunk smaller than a cache line");
    if (banksPerChannel % bankGroups != 0)
        fatal("GpuConfig: banks must divide evenly among bank groups");
    if (l1.numSets() == 0 || l2Slice.numSets() == 0)
        fatal("GpuConfig: cache geometry yields zero sets");
    if (dramClockRatio <= 0.0 || dramClockRatio > 4.0)
        fatal("GpuConfig: implausible dramClockRatio");
}

} // namespace ebm
