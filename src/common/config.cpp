#include "common/config.hpp"

#include <algorithm>
#include <bit>
#include <cctype>
#include <cstdlib>
#include <string>

#include "common/log.hpp"
#include "common/rng.hpp"

namespace ebm {

bool
parseUint(const char *text, std::uint64_t &out)
{
    if (text == nullptr || text[0] == '\0')
        return false;
    // strtoull accepts leading whitespace and signs ("-1" wraps to a
    // huge value); a knob is digits and nothing else.
    for (const char *p = text; *p != '\0'; ++p) {
        if (!std::isdigit(static_cast<unsigned char>(*p)))
            return false;
    }
    errno = 0;
    char *end = nullptr;
    const unsigned long long v = std::strtoull(text, &end, 10);
    if (end == text || *end != '\0' || errno == ERANGE)
        return false;
    out = v;
    return true;
}

std::uint64_t
envUint(const char *name, std::uint64_t fallback, std::uint64_t min,
        std::uint64_t max)
{
    const char *env = std::getenv(name);
    if (env == nullptr || env[0] == '\0')
        return fallback;
    std::uint64_t v = 0;
    if (!parseUint(env, v)) {
        warn(std::string(name) + ": ignoring invalid value '" + env +
             "' (expected an unsigned integer)");
        return fallback;
    }
    return std::clamp<std::uint64_t>(v, min, max);
}

bool
envFlag(const char *name, bool fallback)
{
    const char *env = std::getenv(name);
    if (env == nullptr || env[0] == '\0')
        return fallback;
    std::string v(env);
    std::transform(v.begin(), v.end(), v.begin(), [](unsigned char c) {
        return static_cast<char>(std::tolower(c));
    });
    return v != "0" && v != "false" && v != "off" && v != "no";
}

const std::vector<std::uint32_t> &
GpuConfig::tlpLevels()
{
    static const std::vector<std::uint32_t> levels =
        {1, 2, 4, 6, 8, 12, 16, 24};
    return levels;
}

double
GpuConfig::peakBytesPerCoreCycle() const
{
    // Each channel can move one line-size burst every `burstCycles`
    // DRAM clocks when fully streaming.
    const double bytes_per_dram_cycle =
        static_cast<double>(l2Slice.lineBytes) / dram.burstCycles;
    return numPartitions * bytes_per_dram_cycle * dramClockRatio;
}

std::vector<Error>
GpuConfig::check() const
{
    std::vector<Error> errors;
    const auto bad = [&errors](const std::string &msg) {
        errors.push_back({Errc::InvalidConfig, msg});
    };

    if (numApps == 0)
        bad("GpuConfig: numApps must be >= 1 (set numApps before use)");
    if (numCores == 0)
        bad("GpuConfig: numCores must be >= 1");
    if (numApps != 0 && numCores % numApps != 0) {
        bad("GpuConfig: numCores (" + std::to_string(numCores) +
            ") must divide evenly among " + std::to_string(numApps) +
            " apps (trim numCores to a multiple of numApps)");
    }
    if (schedulersPerCore == 0)
        bad("GpuConfig: schedulersPerCore must be >= 1");
    else if (maxWarpsPerCore % schedulersPerCore != 0)
        bad("GpuConfig: warps must divide evenly among schedulers");
    if (simtWidth == 0)
        bad("GpuConfig: simtWidth must be >= 1");
    if (numPartitions == 0)
        bad("GpuConfig: numPartitions must be >= 1");
    if (l1.lineBytes != l2Slice.lineBytes)
        bad("GpuConfig: L1 and L2 line sizes must match");
    if (interleaveBytes < l2Slice.lineBytes)
        bad("GpuConfig: interleave chunk smaller than a cache line");
    if (bankGroups == 0)
        bad("GpuConfig: bankGroups must be >= 1");
    else if (banksPerChannel % bankGroups != 0)
        bad("GpuConfig: banks must divide evenly among bank groups");
    if (l1.assoc == 0 || l1.lineBytes == 0 || l1.numSets() == 0 ||
        l2Slice.assoc == 0 || l2Slice.lineBytes == 0 ||
        l2Slice.numSets() == 0) {
        bad("GpuConfig: cache geometry yields zero sets "
            "(sizeBytes must be >= assoc * lineBytes)");
    }
    if (dramClockRatio <= 0.0 || dramClockRatio > 4.0)
        bad("GpuConfig: implausible dramClockRatio (expected (0, 4])");
    if (rowBytes < interleaveBytes)
        bad("GpuConfig: row buffer smaller than the interleave chunk");
    return errors;
}

namespace {

std::uint64_t
hashCacheGeometry(std::uint64_t h, const CacheGeometry &g)
{
    h = hashIds(h, g.sizeBytes, g.assoc, g.lineBytes);
    return hashIds(h, g.mshrEntries, g.mshrTargetsPerEntry);
}

} // namespace

std::uint64_t
configHash(const GpuConfig &cfg)
{
    // Every field, in declaration order. The size tripwires fire when
    // a field is added to either struct, pointing here.
    static_assert(sizeof(DramTiming) == 8 * sizeof(std::uint32_t),
                  "DramTiming changed: update configHash");
    static_assert(sizeof(CacheGeometry) == 5 * sizeof(std::uint32_t),
                  "CacheGeometry changed: update configHash");

    std::uint64_t h = hashIds(cfg.numCores, cfg.maxWarpsPerCore,
                              cfg.schedulersPerCore, cfg.simtWidth);
    h = hashIds(h, cfg.maxIssuePerScheduler, cfg.l1HitLatency,
                cfg.l2HitLatency);
    h = hashIds(h, cfg.icntRequestLatency, cfg.icntResponseLatency);
    h = hashCacheGeometry(h, cfg.l1);
    h = hashCacheGeometry(h, cfg.l2Slice);
    h = hashIds(h, cfg.numPartitions, cfg.banksPerChannel,
                cfg.bankGroups);
    h = hashIds(h, cfg.rowBytes, cfg.interleaveBytes,
                cfg.frfcfsQueueDepth);
    h = hashIds(h, cfg.frfcfsCapCycles, cfg.dram.tCL, cfg.dram.tRP);
    h = hashIds(h, cfg.dram.tRCD, cfg.dram.tRAS, cfg.dram.tCCDl);
    h = hashIds(h, cfg.dram.tCCDs, cfg.dram.tRRD,
                cfg.dram.burstCycles);
    h = hashIds(h, std::bit_cast<std::uint64_t>(cfg.dramClockRatio),
                cfg.icntInputQueueDepth, cfg.icntOutputQueueDepth);
    return hashIds(h, cfg.numApps);
}

void
GpuConfig::validate() const
{
    const std::vector<Error> errors = check();
    if (errors.empty())
        return;
    fatal(Error{Errc::InvalidConfig,
                "GpuConfig: " + std::to_string(errors.size()) +
                    " problem(s):\n  " + joinErrors(errors)});
}

} // namespace ebm
