/**
 * @file
 * Lightweight statistics counters with interval (sampling-window)
 * support. The EB monitor needs both cumulative values and deltas over
 * the current sampling window, so every counter remembers the value at
 * the last checkpoint.
 */
#pragma once

#include <cstdint>

namespace ebm {

/** A monotonically increasing event counter with window checkpoints. */
class Counter
{
  public:
    /** Increment by @p n events. */
    void add(std::uint64_t n = 1) { total_ += n; }

    /** Cumulative count since construction/reset. */
    std::uint64_t total() const { return total_; }

    /** Count accumulated since the last checkpoint(). */
    std::uint64_t sinceCheckpoint() const { return total_ - mark_; }

    /** Start a new sampling window at the current value. */
    void checkpoint() { mark_ = total_; }

    /** Zero everything (new simulation). */
    void
    reset()
    {
        total_ = 0;
        mark_ = 0;
    }

  private:
    std::uint64_t total_ = 0;
    std::uint64_t mark_ = 0;
};

/** Ratio of two counters over a window, with a 0/0 -> fallback rule. */
inline double
windowRatio(const Counter &num, const Counter &den, double fallback = 0.0)
{
    const auto d = den.sinceCheckpoint();
    if (d == 0)
        return fallback;
    return static_cast<double>(num.sinceCheckpoint()) / static_cast<double>(d);
}

/** Ratio of cumulative totals, with a 0/0 -> fallback rule. */
inline double
totalRatio(const Counter &num, const Counter &den, double fallback = 0.0)
{
    if (den.total() == 0)
        return fallback;
    return static_cast<double>(num.total()) / static_cast<double>(den.total());
}

} // namespace ebm
