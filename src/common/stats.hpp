/**
 * @file
 * Lightweight statistics counters with interval (sampling-window)
 * support. The EB monitor needs both cumulative values and deltas over
 * the current sampling window, so every counter remembers the value at
 * the last checkpoint.
 */
#pragma once

#include <array>
#include <atomic>
#include <cstdint>

namespace ebm {

/** A monotonically increasing event counter with window checkpoints. */
class Counter
{
  public:
    /** Increment by @p n events. */
    void add(std::uint64_t n = 1) { total_ += n; }

    /** Cumulative count since construction/reset. */
    std::uint64_t total() const { return total_; }

    /** Count accumulated since the last checkpoint(). */
    std::uint64_t sinceCheckpoint() const { return total_ - mark_; }

    /** Start a new sampling window at the current value. */
    void checkpoint() { mark_ = total_; }

    /** Zero everything (new simulation). */
    void
    reset()
    {
        total_ = 0;
        mark_ = 0;
    }

  private:
    std::uint64_t total_ = 0;
    std::uint64_t mark_ = 0;
};

/** Ratio of two counters over a window, with a 0/0 -> fallback rule. */
inline double
windowRatio(const Counter &num, const Counter &den, double fallback = 0.0)
{
    const auto d = den.sinceCheckpoint();
    if (d == 0)
        return fallback;
    return static_cast<double>(num.sinceCheckpoint()) / static_cast<double>(d);
}

/** Ratio of cumulative totals, with a 0/0 -> fallback rule. */
inline double
totalRatio(const Counter &num, const Counter &den, double fallback = 0.0)
{
    if (den.total() == 0)
        return fallback;
    return static_cast<double>(num.total()) / static_cast<double>(den.total());
}

/**
 * Lock-free log2-bucketed latency histogram (nanoseconds).
 *
 * Concurrent request handlers record() without coordination (one
 * relaxed fetch_add each); percentile() walks the buckets and
 * interpolates inside the winning one, so the answer is exact to
 * within one power-of-two bucket — plenty for p50/p99 serving
 * dashboards, and far cheaper than retaining every sample. Used by
 * the advisor serving daemon's per-request instrumentation.
 */
class LatencyHistogram
{
  public:
    static constexpr std::size_t kBuckets = 64;

    /** Record one sample of @p ns nanoseconds. */
    void
    record(std::uint64_t ns)
    {
        buckets_[bucketOf(ns)].fetch_add(1, std::memory_order_relaxed);
        count_.fetch_add(1, std::memory_order_relaxed);
    }

    /** Samples recorded so far. */
    std::uint64_t
    count() const
    {
        return count_.load(std::memory_order_relaxed);
    }

    /**
     * Approximate @p q quantile (0 < q <= 1) in nanoseconds, linearly
     * interpolated within the winning power-of-two bucket. 0 when no
     * samples were recorded. A concurrent record() may be counted in
     * count() but not yet visible in its bucket (or vice versa);
     * readers get a snapshot that is exact once writers quiesce.
     */
    double
    percentile(double q) const
    {
        std::array<std::uint64_t, kBuckets> snap{};
        std::uint64_t total = 0;
        for (std::size_t i = 0; i < kBuckets; ++i) {
            snap[i] = buckets_[i].load(std::memory_order_relaxed);
            total += snap[i];
        }
        if (total == 0)
            return 0.0;
        const double target = q * static_cast<double>(total);
        double seen = 0.0;
        for (std::size_t i = 0; i < kBuckets; ++i) {
            if (snap[i] == 0)
                continue;
            const double next = seen + static_cast<double>(snap[i]);
            if (next >= target) {
                const double lo = bucketFloor(i);
                const double hi = bucketCeil(i);
                const double frac =
                    (target - seen) / static_cast<double>(snap[i]);
                return lo + (hi - lo) * frac;
            }
            seen = next;
        }
        return bucketCeil(kBuckets - 1);
    }

    void
    reset()
    {
        for (auto &b : buckets_)
            b.store(0, std::memory_order_relaxed);
        count_.store(0, std::memory_order_relaxed);
    }

  private:
    /** Bucket i holds samples in [2^(i-1), 2^i) ns; bucket 0 is 0 ns. */
    static std::size_t
    bucketOf(std::uint64_t ns)
    {
        std::size_t b = 0;
        while (ns > 0 && b < kBuckets - 1) {
            ns >>= 1;
            ++b;
        }
        return b;
    }

    static double
    bucketFloor(std::size_t i)
    {
        return i == 0 ? 0.0
                      : static_cast<double>(1ull << (i - 1));
    }

    static double
    bucketCeil(std::size_t i)
    {
        return i == 0 ? 1.0 : static_cast<double>(1ull << i);
    }

    std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
    std::atomic<std::uint64_t> count_{0};
};

} // namespace ebm
