/**
 * @file
 * Minimal socket plumbing for the serving front door
 * (harness/advisor_service.hpp) and the distributed sweep fabric
 * (harness/coordinator.hpp): an RAII fd, Unix-domain and TCP
 * listeners/connectors, and full-buffer read/write loops that survive
 * EINTR and partial transfers. Deliberately tiny — no event loop, no
 * TLS, no name resolution beyond numeric/loopback — so the protocol
 * layers above it can be tested byte-by-byte.
 *
 * All functions report failures through the structured error model
 * (Error / Result-like return values), never exit; callers decide
 * whether a dead peer is fatal.
 */
#pragma once

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstdint>
#include <cstring>
#include <string>
#include <utility>

#include "common/error.hpp"

namespace ebm {

/** RAII file descriptor (sockets here, but any fd works). */
class UniqueFd
{
  public:
    UniqueFd() = default;
    explicit UniqueFd(int fd) : fd_(fd) {}
    ~UniqueFd() { reset(); }

    UniqueFd(UniqueFd &&other) noexcept : fd_(other.release()) {}
    UniqueFd &
    operator=(UniqueFd &&other) noexcept
    {
        if (this != &other)
            reset(other.release());
        return *this;
    }
    UniqueFd(const UniqueFd &) = delete;
    UniqueFd &operator=(const UniqueFd &) = delete;

    int get() const { return fd_; }
    bool valid() const { return fd_ >= 0; }

    int
    release()
    {
        const int fd = fd_;
        fd_ = -1;
        return fd;
    }

    void
    reset(int fd = -1)
    {
        if (fd_ >= 0)
            ::close(fd_);
        fd_ = fd;
    }

  private:
    int fd_ = -1;
};

/** Fill @p addr from @p path. @return false when the path is too long
 * for sun_path (the classic 108-byte limit). */
inline bool
unixSockAddr(const std::string &path, sockaddr_un &addr)
{
    std::memset(&addr, 0, sizeof addr);
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof addr.sun_path)
        return false;
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    return true;
}

/**
 * Bind and listen on a Unix-domain socket at @p path. A stale socket
 * file from a dead daemon is unlinked first (the caller is expected
 * to own the path; two live daemons on one path is a deployment
 * error this cannot detect).
 */
inline Result<UniqueFd>
netListenUnix(const std::string &path, int backlog = 64)
{
    sockaddr_un addr;
    if (!unixSockAddr(path, addr)) {
        return Error{Errc::InvalidArgument,
                     "socket path too long: " + path};
    }
    UniqueFd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
    if (!fd.valid()) {
        return Error{Errc::CacheIo, "socket() failed: " +
                                        std::string(std::strerror(errno))};
    }
    ::unlink(path.c_str());
    if (::bind(fd.get(), reinterpret_cast<sockaddr *>(&addr),
               sizeof addr) != 0) {
        return Error{Errc::CacheIo,
                     "bind(" + path + ") failed: " +
                         std::string(std::strerror(errno))};
    }
    if (::listen(fd.get(), backlog) != 0) {
        return Error{Errc::CacheIo,
                     "listen(" + path + ") failed: " +
                         std::string(std::strerror(errno))};
    }
    return fd;
}

/** Connect to the Unix-domain socket at @p path. */
inline Result<UniqueFd>
netConnectUnix(const std::string &path)
{
    sockaddr_un addr;
    if (!unixSockAddr(path, addr)) {
        return Error{Errc::InvalidArgument,
                     "socket path too long: " + path};
    }
    UniqueFd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
    if (!fd.valid()) {
        return Error{Errc::CacheIo, "socket() failed: " +
                                        std::string(std::strerror(errno))};
    }
    int rc;
    do {
        rc = ::connect(fd.get(), reinterpret_cast<sockaddr *>(&addr),
                       sizeof addr);
    } while (rc != 0 && errno == EINTR);
    if (rc != 0) {
        return Error{Errc::CacheIo,
                     "connect(" + path + ") failed: " +
                         std::string(std::strerror(errno))};
    }
    return fd;
}

/**
 * Split "host:port" into its parts. @return false when there is no
 * colon, the port is empty/non-numeric, or it exceeds 65535. The host
 * part is returned verbatim (empty host = wildcard, caller's policy).
 */
inline bool
parseHostPort(const std::string &spec, std::string &host,
              std::uint16_t &port)
{
    const std::size_t colon = spec.rfind(':');
    if (colon == std::string::npos || colon + 1 >= spec.size())
        return false;
    unsigned long value = 0;
    for (std::size_t i = colon + 1; i < spec.size(); ++i) {
        const char c = spec[i];
        if (c < '0' || c > '9')
            return false;
        value = value * 10 + static_cast<unsigned long>(c - '0');
        if (value > 65535)
            return false;
    }
    host = spec.substr(0, colon);
    port = static_cast<std::uint16_t>(value);
    return true;
}

/** Fill @p addr from a numeric IPv4 @p host (empty = INADDR_ANY) and
 * @p port. No DNS — the fabric speaks to addresses, not names. */
inline bool
tcpSockAddr(const std::string &host, std::uint16_t port,
            sockaddr_in &addr)
{
    std::memset(&addr, 0, sizeof addr);
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (host.empty()) {
        addr.sin_addr.s_addr = htonl(INADDR_ANY);
        return true;
    }
    return ::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) == 1;
}

/**
 * Bind and listen on TCP @p host:@p port (port 0 = kernel-assigned
 * ephemeral; read it back with netLocalPort). SO_REUSEADDR is set so
 * a restarted daemon does not trip over its predecessor's TIME_WAIT.
 */
inline Result<UniqueFd>
netListenTcp(const std::string &host, std::uint16_t port,
             int backlog = 64)
{
    sockaddr_in addr;
    if (!tcpSockAddr(host, port, addr)) {
        return Error{Errc::InvalidArgument,
                     "not a numeric IPv4 address: " + host};
    }
    UniqueFd fd(::socket(AF_INET, SOCK_STREAM, 0));
    if (!fd.valid()) {
        return Error{Errc::CacheIo, "socket() failed: " +
                                        std::string(std::strerror(errno))};
    }
    const int one = 1;
    (void)::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one,
                       sizeof one);
    if (::bind(fd.get(), reinterpret_cast<sockaddr *>(&addr),
               sizeof addr) != 0) {
        return Error{Errc::CacheIo,
                     "bind(" + host + ":" + std::to_string(port) +
                         ") failed: " +
                         std::string(std::strerror(errno))};
    }
    if (::listen(fd.get(), backlog) != 0) {
        return Error{Errc::CacheIo,
                     "listen(" + host + ":" + std::to_string(port) +
                         ") failed: " +
                         std::string(std::strerror(errno))};
    }
    return fd;
}

/** The local port a bound socket ended up on (resolves port 0). */
inline std::uint16_t
netLocalPort(int fd)
{
    sockaddr_in addr;
    socklen_t len = sizeof addr;
    if (::getsockname(fd, reinterpret_cast<sockaddr *>(&addr), &len) !=
        0)
        return 0;
    return ntohs(addr.sin_port);
}

/** Connect to TCP @p host:@p port. TCP_NODELAY is set — the protocols
 * above this exchange small request/response frames, and Nagle would
 * serialize them against delayed ACKs. */
inline Result<UniqueFd>
netConnectTcp(const std::string &host, std::uint16_t port)
{
    sockaddr_in addr;
    if (!tcpSockAddr(host.empty() ? "127.0.0.1" : host, port, addr)) {
        return Error{Errc::InvalidArgument,
                     "not a numeric IPv4 address: " + host};
    }
    UniqueFd fd(::socket(AF_INET, SOCK_STREAM, 0));
    if (!fd.valid()) {
        return Error{Errc::CacheIo, "socket() failed: " +
                                        std::string(std::strerror(errno))};
    }
    int rc;
    do {
        rc = ::connect(fd.get(), reinterpret_cast<sockaddr *>(&addr),
                       sizeof addr);
    } while (rc != 0 && errno == EINTR);
    if (rc != 0) {
        return Error{Errc::CacheIo,
                     "connect(" + host + ":" + std::to_string(port) +
                         ") failed: " +
                         std::string(std::strerror(errno))};
    }
    const int one = 1;
    (void)::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one,
                       sizeof one);
    return fd;
}

/** Accept one connection; retries EINTR. @return -1 when the listener
 * was closed (the clean-shutdown path) or errored. */
inline int
netAccept(int listen_fd)
{
    for (;;) {
        const int fd = ::accept(listen_fd, nullptr, nullptr);
        if (fd >= 0)
            return fd;
        if (errno == EINTR)
            continue;
        return -1;
    }
}

/**
 * Write all @p len bytes of @p data to @p fd (MSG_NOSIGNAL, so a dead
 * peer surfaces as an error, not SIGPIPE). @return false on any error.
 */
inline bool
netWriteFull(int fd, const void *data, std::size_t len)
{
    const char *p = static_cast<const char *>(data);
    while (len > 0) {
        const ssize_t n = ::send(fd, p, len, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        if (n == 0)
            return false;
        p += n;
        len -= static_cast<std::size_t>(n);
    }
    return true;
}

/**
 * Read up to @p len bytes into @p data; retries EINTR. @return bytes
 * read (0 = orderly EOF), or -1 on error. One short recv is fine —
 * the frame reader above this reassembles partial reads.
 */
inline ssize_t
netRead(int fd, void *data, std::size_t len)
{
    for (;;) {
        const ssize_t n = ::recv(fd, data, len, 0);
        if (n >= 0)
            return n;
        if (errno == EINTR)
            continue;
        return -1;
    }
}

/** Block until @p fd is readable or @p timeout_ms elapses (-1 =
 * forever). @return true when readable. */
inline bool
netWaitReadable(int fd, int timeout_ms)
{
    pollfd pfd{};
    pfd.fd = fd;
    pfd.events = POLLIN;
    for (;;) {
        const int rc = ::poll(&pfd, 1, timeout_ms);
        if (rc > 0)
            return (pfd.revents & (POLLIN | POLLHUP | POLLERR)) != 0;
        if (rc == 0)
            return false;
        if (errno != EINTR)
            return false;
    }
}

} // namespace ebm
