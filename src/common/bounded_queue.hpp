/**
 * @file
 * Fixed-capacity FIFO used for every hardware queue in the model
 * (interconnect ports, memory-controller queues, MSHR fill queues).
 * Back-pressure is explicit: producers must check full() and stall.
 */
#pragma once

#include <cstddef>
#include <deque>

#include "common/log.hpp"

namespace ebm {

/** Bounded FIFO with explicit back-pressure semantics. */
template <typename T>
class BoundedQueue
{
  public:
    explicit BoundedQueue(std::size_t capacity) : capacity_(capacity)
    {
        if (capacity == 0)
            fatal("BoundedQueue: capacity must be > 0");
    }

    bool empty() const { return items_.empty(); }
    bool full() const { return items_.size() >= capacity_; }
    std::size_t size() const { return items_.size(); }
    std::size_t capacity() const { return capacity_; }

    /** Enqueue; the caller must have checked full(). */
    void
    push(T item)
    {
        if (full())
            panic("BoundedQueue: push into a full queue");
        items_.push_back(std::move(item));
    }

    /** Enqueue if space is available. @return true on success. */
    bool
    tryPush(T item)
    {
        if (full())
            return false;
        items_.push_back(std::move(item));
        return true;
    }

    /** Front element; the caller must have checked empty(). */
    T &
    front()
    {
        if (empty())
            panic("BoundedQueue: front of an empty queue");
        return items_.front();
    }

    const T &
    front() const
    {
        if (empty())
            panic("BoundedQueue: front of an empty queue");
        return items_.front();
    }

    /** Dequeue the front element. */
    T
    pop()
    {
        if (empty())
            panic("BoundedQueue: pop from an empty queue");
        T item = std::move(items_.front());
        items_.pop_front();
        return item;
    }

    /** Iteration support (e.g. FR-FCFS scans its queue). */
    auto begin() { return items_.begin(); }
    auto end() { return items_.end(); }
    auto begin() const { return items_.begin(); }
    auto end() const { return items_.end(); }

    /** Remove the element at @p it and return it. */
    template <typename Iter>
    T
    extract(Iter it)
    {
        T item = std::move(*it);
        items_.erase(it);
        return item;
    }

    void clear() { items_.clear(); }

  private:
    std::size_t capacity_;
    std::deque<T> items_;
};

} // namespace ebm
