/**
 * @file
 * The shared EBS1 stream framing: a length-prefixed, checksum-framed
 * payload envelope over a byte stream, used by the advisor serving
 * daemon (harness/serve_protocol.hpp), the distributed sweep fabric
 * (harness/coordinator.hpp, harness/lease_net.hpp), and the serving
 * benches — one framing implementation, so a fix or a format change
 * lands everywhere at once.
 *
 * Frame layout (host-endian integers, like the v3 store — peers share
 * one machine or one fleet with a checked float-ABI fingerprint):
 *
 *     u32 frame magic "EBS1" | u32 payloadLen | payload bytes |
 *     u64 FNV-1a checksum over the payload
 *
 * Payloads are opaque bytes: the protocols above this put single-line
 * UTF-8 text in them (advisor verbs, lease verbs), and the fabric's
 * record stream appends raw storefmt frame bytes after the verb line.
 * A garbled or truncated frame is detected from the envelope before
 * any payload byte is interpreted.
 *
 * The reader is incremental: bytes are fed in as recv() produces
 * them, and frames are extracted once complete — a frame split across
 * any number of reads reassembles byte-for-byte (locked by test).
 * Consumed bytes are reclaimed amortized-O(1): the reader keeps a
 * consumed-prefix cursor and memmoves the live tail only when the
 * dead prefix outweighs it, so byte-dribble delivery of N frames
 * costs O(total bytes), not O(N * buffered bytes) — this matters at
 * record-streaming rates, where thousands of small frames arrive on
 * one connection (locked by a movedBytes() assertion in the tests).
 */
#pragma once

#include <cstdint>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "common/net.hpp"

namespace ebm::wire {

constexpr std::uint32_t kFrameMagic = 0x31534245u; // "EBS1", LE bytes.
constexpr std::size_t kFrameHeadBytes = 8;         // magic + length.
constexpr std::size_t kFrameTailBytes = 8;         // checksum.
/** Sanity bound a valid payload never exceeds; larger is hostile or
 * corrupt, and the connection is dropped rather than buffered. */
constexpr std::uint32_t kMaxPayloadBytes = 1u << 16;

/** FNV-1a over the payload bytes (storefmt's key hash, same mixer). */
inline std::uint64_t
payloadChecksum(const std::string &payload)
{
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (const char c : payload) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ull;
    }
    return h;
}

/** Serialize one frame around @p payload. */
inline std::string
encodeFrame(const std::string &payload)
{
    std::string buf;
    buf.reserve(kFrameHeadBytes + payload.size() + kFrameTailBytes);
    const std::uint32_t magic = kFrameMagic;
    const auto len = static_cast<std::uint32_t>(payload.size());
    buf.append(reinterpret_cast<const char *>(&magic), sizeof magic);
    buf.append(reinterpret_cast<const char *>(&len), sizeof len);
    buf.append(payload);
    const std::uint64_t sum = payloadChecksum(payload);
    buf.append(reinterpret_cast<const char *>(&sum), sizeof sum);
    return buf;
}

/**
 * Incremental frame extractor. feed() bytes as the transport produces
 * them; next() yields complete payloads. Distinguishes "need more
 * bytes" (a frame still in flight) from "bad bytes" (wrong magic,
 * impossible length, checksum mismatch) — only the former is
 * retryable, exactly like storefmt's torn-vs-corrupt split.
 */
class FrameReader
{
  public:
    enum class Status : std::uint8_t {
        NeedMore, ///< No complete frame buffered yet.
        Frame,    ///< @p payload holds the next frame's payload.
        Bad,      ///< The stream is garbled; drop the connection.
    };

    /** Append @p len transport bytes. */
    void
    feed(const char *data, std::size_t len)
    {
        buffer_.append(data, len);
    }

    /** Extract the next complete frame into @p payload. */
    Status
    next(std::string &payload, std::string *error = nullptr)
    {
        if (bad_) {
            if (error != nullptr)
                *error = badReason_;
            return Status::Bad;
        }
        const char *base = buffer_.data() + head_;
        const std::size_t avail = buffer_.size() - head_;
        if (avail < kFrameHeadBytes)
            return Status::NeedMore;
        std::uint32_t magic = 0, len = 0;
        std::memcpy(&magic, base, sizeof magic);
        std::memcpy(&len, base + 4, sizeof len);
        if (magic != kFrameMagic)
            return fail("bad frame magic", error);
        if (len > kMaxPayloadBytes)
            return fail("oversized frame (" + std::to_string(len) +
                            " bytes declared)",
                        error);
        const std::size_t need = kFrameHeadBytes + len + kFrameTailBytes;
        if (avail < need)
            return Status::NeedMore;
        payload.assign(base + kFrameHeadBytes, len);
        std::uint64_t stored = 0;
        std::memcpy(&stored, base + kFrameHeadBytes + len,
                    sizeof stored);
        if (payloadChecksum(payload) != stored)
            return fail("frame checksum mismatch", error);
        head_ += need;
        compactIfWorthIt();
        return Status::Frame;
    }

    /** Bytes buffered but not yet consumed (diagnostics/tests). */
    std::size_t buffered() const { return buffer_.size() - head_; }

    /** Total live bytes moved by prefix compactions. The amortized-
     * O(1) contract (tests assert it): never exceeds the total bytes
     * consumed as frames, however the feed is dribbled. */
    std::uint64_t movedBytes() const { return movedBytes_; }

  private:
    /** Reclaim the consumed prefix only when it outweighs the live
     * tail (and is big enough to bother): each compaction then moves
     * at most as many bytes as were consumed since the last one, so
     * the total moved is bounded by the total consumed — amortized
     * O(1) per byte, against the O(frames * buffered) of erasing the
     * front per frame. */
    void
    compactIfWorthIt()
    {
        if (head_ < kCompactThreshold ||
            head_ < buffer_.size() - head_)
            return;
        movedBytes_ += buffer_.size() - head_;
        buffer_.erase(0, head_);
        head_ = 0;
    }

    Status
    fail(std::string reason, std::string *error)
    {
        bad_ = true;
        badReason_ = std::move(reason);
        if (error != nullptr)
            *error = badReason_;
        return Status::Bad;
    }

    static constexpr std::size_t kCompactThreshold = 4096;

    std::string buffer_;
    std::size_t head_ = 0; ///< Consumed-prefix cursor into buffer_.
    std::uint64_t movedBytes_ = 0;
    bool bad_ = false;
    std::string badReason_;
};

/** Write one framed @p payload to @p fd. @return false on I/O error. */
inline bool
sendFrame(int fd, const std::string &payload)
{
    const std::string frame = encodeFrame(payload);
    return netWriteFull(fd, frame.data(), frame.size());
}

/**
 * Blocking-read one frame from @p fd into @p payload, reassembling
 * partial reads through @p reader (per-connection state, so pipelined
 * frames are never lost between calls). @return false on EOF, I/O
 * error, bad frame, or @p timeout_ms expiring (-1 = no deadline).
 */
inline bool
recvFrame(int fd, FrameReader &reader, std::string &payload,
          int timeout_ms = -1)
{
    for (;;) {
        switch (reader.next(payload)) {
          case FrameReader::Status::Frame:
            return true;
          case FrameReader::Status::Bad:
            return false;
          case FrameReader::Status::NeedMore:
            break;
        }
        if (timeout_ms >= 0 && !netWaitReadable(fd, timeout_ms))
            return false;
        char buf[4096];
        const ssize_t n = netRead(fd, buf, sizeof buf);
        if (n <= 0)
            return false;
        reader.feed(buf, static_cast<std::size_t>(n));
    }
}

/** Split a payload into whitespace-delimited tokens. */
inline std::vector<std::string>
splitTokens(const std::string &payload)
{
    std::vector<std::string> tokens;
    std::istringstream in(payload);
    std::string tok;
    while (in >> tok)
        tokens.push_back(tok);
    return tokens;
}

} // namespace ebm::wire
