/**
 * @file
 * The on-chip crossbar connecting SIMT cores to memory partitions.
 *
 * Two independent networks are modeled (request: cores -> partitions,
 * response: partitions -> cores), each as a crossbar with per-input
 * virtual output queues and an iSLIP-like round-robin separable
 * allocator: every cycle, each output grants one of its requesting
 * inputs in round-robin order, and each input accepts one grant in
 * round-robin order. Accepted flits incur a fixed traversal latency.
 *
 * Hot-path layout: VOQs are fixed-capacity ring buffers (no steady
 * state allocation) and each output keeps an occupancy bitmask of its
 * non-empty input VOQs, so the allocator's round-robin scan is a
 * find-first-set over the mask instead of a walk over every input.
 * Each network also reports the next cycle at which it can possibly
 * act (nextEventCycle), which the GPU's quiescence fast-forward uses
 * to skip fully drained stretches.
 */
#pragma once

#include <bit>
#include <cstdint>
#include <queue>
#include <vector>

#include "common/config.hpp"
#include "common/ring_buffer.hpp"
#include "common/types.hpp"
#include "mem/mem_request.hpp"

namespace ebm {

/**
 * One direction of the crossbar, carrying payloads of type T from
 * numInputs ports to numOutputs ports.
 */
template <typename T>
class CrossbarNetwork
{
  public:
    CrossbarNetwork(std::uint32_t num_inputs, std::uint32_t num_outputs,
                    std::uint32_t queue_depth, std::uint32_t latency)
        : latency_(latency),
          numInputs_(num_inputs),
          maskWords_((num_inputs + 63) / 64),
          grantPointer_(num_outputs, 0),
          inputMask_(static_cast<std::size_t>(num_outputs) * maskWords_,
                     0),
          outputReady_(num_outputs)
    {
        voqs_.reserve(static_cast<std::size_t>(num_inputs) *
                      num_outputs);
        for (std::uint32_t i = 0; i < num_inputs; ++i)
            for (std::uint32_t o = 0; o < num_outputs; ++o)
                voqs_.emplace_back(queue_depth);
    }

    /** Can input @p in enqueue a flit for output @p out? */
    bool
    canAccept(std::uint32_t in, std::uint32_t out) const
    {
        return !voq(in, out).full();
    }

    /** Enqueue a flit (caller must have checked canAccept). */
    void
    inject(std::uint32_t in, std::uint32_t out, T flit)
    {
        RingBuffer<T> &q = voq(in, out);
        q.push(std::move(flit));
        ++voqFlits_;
        maskWord(out, in / 64) |= 1ull << (in % 64);
    }

    /**
     * Run one allocation cycle at time @p now. Each output grants at
     * most one input (round-robin from its pointer); granted flits
     * become visible at the output after the traversal latency.
     */
    void
    tick(Cycle now)
    {
        if (voqFlits_ == 0)
            return;
        const auto n_out =
            static_cast<std::uint32_t>(grantPointer_.size());
        for (std::uint32_t out = 0; out < n_out; ++out) {
            const std::uint32_t in =
                firstRequesterFrom(out, grantPointer_[out]);
            if (in == kNoInput)
                continue;
            RingBuffer<T> &q = voq(in, out);
            outputReady_[out].push(InFlight{now + latency_, q.pop()});
            --voqFlits_;
            if (q.empty())
                maskWord(out, in / 64) &= ~(1ull << (in % 64));
            grantPointer_[out] = (in + 1) % numInputs_;
        }
    }

    /** Pop a flit that has arrived at output @p out by time @p now. */
    bool
    tryEject(std::uint32_t out, Cycle now, T &flit)
    {
        auto &q = outputReady_[out];
        if (q.empty() || q.front().readyAt > now)
            return false;
        flit = std::move(q.front().payload);
        q.pop();
        return true;
    }

    /**
     * Earliest cycle after @p now at which this network can change
     * state: immediately if any VOQ holds a flit (the allocator will
     * move it), else the first in-flight arrival, else never.
     */
    Cycle
    nextEventCycle(Cycle now) const
    {
        if (voqFlits_ > 0)
            return now + 1;
        Cycle next = kNeverCycle;
        for (const auto &q : outputReady_) {
            // FIFO + fixed latency: the front is the earliest arrival.
            if (!q.empty() && q.front().readyAt < next)
                next = q.front().readyAt;
        }
        if (next == kNeverCycle)
            return kNeverCycle;
        return next > now ? next : now + 1;
    }

    /** Total flits buffered anywhere in this network. */
    std::size_t
    occupancy() const
    {
        std::size_t n = voqFlits_;
        for (const auto &q : outputReady_)
            n += q.size();
        return n;
    }

    void
    clear()
    {
        for (auto &q : voqs_)
            q.clear();
        for (auto &q : outputReady_) {
            while (!q.empty())
                q.pop();
        }
        std::fill(grantPointer_.begin(), grantPointer_.end(), 0u);
        std::fill(inputMask_.begin(), inputMask_.end(), 0ull);
        voqFlits_ = 0;
    }

    struct InFlight
    {
        Cycle readyAt;
        T payload;
    };

    /**
     * Every queued or in-flight flit plus the allocator's round-robin
     * pointers and occupancy masks. VOQ ring buffers are copied whole
     * (they are plain values), so head offsets — irrelevant to FIFO
     * semantics but cheap to keep — restore exactly.
     */
    struct Snapshot
    {
        std::vector<RingBuffer<T>> voqs;
        std::vector<std::uint32_t> grantPointer;
        std::vector<std::uint64_t> inputMask;
        std::vector<std::queue<InFlight>> outputReady;
        std::size_t voqFlits = 0;

        std::size_t
        heapBytes() const
        {
            std::size_t n = voqs.capacity() * sizeof(RingBuffer<T>) +
                            grantPointer.capacity() * sizeof(std::uint32_t) +
                            inputMask.capacity() * sizeof(std::uint64_t) +
                            outputReady.capacity() *
                                sizeof(std::queue<InFlight>);
            for (const auto &q : voqs)
                n += q.capacity() * sizeof(T);
            for (const auto &q : outputReady)
                n += q.size() * sizeof(InFlight);
            return n;
        }
    };

    Snapshot
    snapshot() const
    {
        return Snapshot{voqs_, grantPointer_, inputMask_, outputReady_,
                        voqFlits_};
    }

    void
    restore(const Snapshot &snap)
    {
        if (snap.voqs.size() != voqs_.size() ||
            snap.grantPointer.size() != grantPointer_.size() ||
            snap.inputMask.size() != inputMask_.size() ||
            snap.outputReady.size() != outputReady_.size())
            fatal("CrossbarNetwork: snapshot shape mismatch");
        voqs_ = snap.voqs;
        grantPointer_ = snap.grantPointer;
        inputMask_ = snap.inputMask;
        outputReady_ = snap.outputReady;
        voqFlits_ = snap.voqFlits;
    }

  private:

    static constexpr std::uint32_t kNoInput = 0xffffffffu;

    RingBuffer<T> &voq(std::uint32_t in, std::uint32_t out)
    {
        return voqs_[static_cast<std::size_t>(in) *
                         grantPointer_.size() +
                     out];
    }
    const RingBuffer<T> &voq(std::uint32_t in, std::uint32_t out) const
    {
        return voqs_[static_cast<std::size_t>(in) *
                         grantPointer_.size() +
                     out];
    }

    std::uint64_t &maskWord(std::uint32_t out, std::uint32_t word)
    {
        return inputMask_[static_cast<std::size_t>(out) * maskWords_ +
                          word];
    }
    const std::uint64_t &maskWord(std::uint32_t out,
                                  std::uint32_t word) const
    {
        return inputMask_[static_cast<std::size_t>(out) * maskWords_ +
                          word];
    }

    /**
     * First input with a queued flit for @p out, scanning round-robin
     * from @p start (wrapping), via the occupancy bitmask.
     */
    std::uint32_t
    firstRequesterFrom(std::uint32_t out, std::uint32_t start) const
    {
        // Pass 1: bits at or after start. Pass 2: wrap to the front.
        const std::uint32_t start_word = start / 64;
        for (std::uint32_t w = start_word; w < maskWords_; ++w) {
            std::uint64_t bits = maskWord(out, w);
            if (w == start_word)
                bits &= ~0ull << (start % 64);
            if (bits != 0)
                return w * 64 +
                       static_cast<std::uint32_t>(
                           std::countr_zero(bits));
        }
        for (std::uint32_t w = 0; w <= start_word && w < maskWords_;
             ++w) {
            std::uint64_t bits = maskWord(out, w);
            if (w == start_word)
                bits &= ~(~0ull << (start % 64));
            if (bits != 0)
                return w * 64 +
                       static_cast<std::uint32_t>(
                           std::countr_zero(bits));
        }
        return kNoInput;
    }

    std::uint32_t latency_;
    std::uint32_t numInputs_;
    std::uint32_t maskWords_;
    /** Flattened [input][output] ring buffers. */
    std::vector<RingBuffer<T>> voqs_;
    std::vector<std::uint32_t> grantPointer_;
    /** Per-output bitmask of inputs with a non-empty VOQ. */
    std::vector<std::uint64_t> inputMask_;
    std::vector<std::queue<InFlight>> outputReady_;
    std::size_t voqFlits_ = 0;
};

/** The full core <-> memory-partition interconnect. */
class Crossbar
{
  public:
    explicit Crossbar(const GpuConfig &cfg)
        : request_(cfg.numCores, cfg.numPartitions,
                   cfg.icntInputQueueDepth, cfg.icntRequestLatency),
          response_(cfg.numPartitions, cfg.numCores,
                    cfg.icntOutputQueueDepth, cfg.icntResponseLatency)
    {
    }

    CrossbarNetwork<MemRequest> &requestNet() { return request_; }
    CrossbarNetwork<MemResponse> &responseNet() { return response_; }
    const CrossbarNetwork<MemRequest> &requestNet() const
    {
        return request_;
    }
    const CrossbarNetwork<MemResponse> &responseNet() const
    {
        return response_;
    }

    void
    tick(Cycle now)
    {
        request_.tick(now);
        response_.tick(now);
    }

    /** Earliest cycle after @p now either network can change state. */
    Cycle
    nextEventCycle(Cycle now) const
    {
        const Cycle req = request_.nextEventCycle(now);
        const Cycle resp = response_.nextEventCycle(now);
        return req < resp ? req : resp;
    }

    void
    clear()
    {
        request_.clear();
        response_.clear();
    }

    /** Both directions' full queue and allocator state. */
    struct Snapshot
    {
        CrossbarNetwork<MemRequest>::Snapshot request;
        CrossbarNetwork<MemResponse>::Snapshot response;

        std::size_t
        heapBytes() const
        {
            return request.heapBytes() + response.heapBytes();
        }
    };

    Snapshot
    snapshot() const
    {
        return Snapshot{request_.snapshot(), response_.snapshot()};
    }

    void
    restore(const Snapshot &snap)
    {
        request_.restore(snap.request);
        response_.restore(snap.response);
    }

  private:
    CrossbarNetwork<MemRequest> request_;
    CrossbarNetwork<MemResponse> response_;
};

} // namespace ebm
