/**
 * @file
 * The on-chip crossbar connecting SIMT cores to memory partitions.
 *
 * Two independent networks are modeled (request: cores -> partitions,
 * response: partitions -> cores), each as a crossbar with per-input
 * virtual output queues and an iSLIP-like round-robin separable
 * allocator: every cycle, each output grants one of its requesting
 * inputs in round-robin order, and each input accepts one grant in
 * round-robin order. Accepted flits incur a fixed traversal latency.
 */
#pragma once

#include <cstdint>
#include <queue>
#include <vector>

#include "common/bounded_queue.hpp"
#include "common/config.hpp"
#include "common/types.hpp"
#include "mem/mem_request.hpp"

namespace ebm {

/**
 * One direction of the crossbar, carrying payloads of type T from
 * numInputs ports to numOutputs ports.
 */
template <typename T>
class CrossbarNetwork
{
  public:
    CrossbarNetwork(std::uint32_t num_inputs, std::uint32_t num_outputs,
                    std::uint32_t queue_depth, std::uint32_t latency)
        : latency_(latency),
          grantPointer_(num_outputs, 0),
          outputReady_(num_outputs)
    {
        voqs_.reserve(num_inputs);
        for (std::uint32_t i = 0; i < num_inputs; ++i) {
            std::vector<BoundedQueue<T>> row;
            row.reserve(num_outputs);
            for (std::uint32_t o = 0; o < num_outputs; ++o)
                row.emplace_back(queue_depth);
            voqs_.push_back(std::move(row));
        }
    }

    /** Can input @p in enqueue a flit for output @p out? */
    bool
    canAccept(std::uint32_t in, std::uint32_t out) const
    {
        return !voqs_[in][out].full();
    }

    /** Enqueue a flit (caller must have checked canAccept). */
    void
    inject(std::uint32_t in, std::uint32_t out, T flit)
    {
        voqs_[in][out].push(std::move(flit));
    }

    /**
     * Run one allocation cycle at time @p now. Each output grants at
     * most one input (round-robin from its pointer); granted flits
     * become visible at the output after the traversal latency.
     */
    void
    tick(Cycle now)
    {
        const auto n_in = static_cast<std::uint32_t>(voqs_.size());
        const auto n_out =
            static_cast<std::uint32_t>(grantPointer_.size());
        for (std::uint32_t out = 0; out < n_out; ++out) {
            for (std::uint32_t k = 0; k < n_in; ++k) {
                const std::uint32_t in = (grantPointer_[out] + k) % n_in;
                if (!voqs_[in][out].empty()) {
                    outputReady_[out].push(
                        InFlight{now + latency_, voqs_[in][out].pop()});
                    grantPointer_[out] = (in + 1) % n_in;
                    break;
                }
            }
        }
    }

    /** Pop a flit that has arrived at output @p out by time @p now. */
    bool
    tryEject(std::uint32_t out, Cycle now, T &flit)
    {
        auto &q = outputReady_[out];
        if (q.empty() || q.front().readyAt > now)
            return false;
        flit = std::move(q.front().payload);
        q.pop();
        return true;
    }

    /** Total flits buffered anywhere in this network. */
    std::size_t
    occupancy() const
    {
        std::size_t n = 0;
        for (const auto &row : voqs_)
            for (const auto &q : row)
                n += q.size();
        for (const auto &q : outputReady_)
            n += q.size();
        return n;
    }

    void
    clear()
    {
        for (auto &row : voqs_)
            for (auto &q : row)
                q.clear();
        for (auto &q : outputReady_) {
            while (!q.empty())
                q.pop();
        }
        std::fill(grantPointer_.begin(), grantPointer_.end(), 0u);
    }

  private:
    struct InFlight
    {
        Cycle readyAt;
        T payload;
    };

    std::uint32_t latency_;
    std::vector<std::vector<BoundedQueue<T>>> voqs_;
    std::vector<std::uint32_t> grantPointer_;
    std::vector<std::queue<InFlight>> outputReady_;
};

/** The full core <-> memory-partition interconnect. */
class Crossbar
{
  public:
    explicit Crossbar(const GpuConfig &cfg)
        : request_(cfg.numCores, cfg.numPartitions,
                   cfg.icntInputQueueDepth, cfg.icntRequestLatency),
          response_(cfg.numPartitions, cfg.numCores,
                    cfg.icntOutputQueueDepth, cfg.icntResponseLatency)
    {
    }

    CrossbarNetwork<MemRequest> &requestNet() { return request_; }
    CrossbarNetwork<MemResponse> &responseNet() { return response_; }
    const CrossbarNetwork<MemRequest> &requestNet() const
    {
        return request_;
    }
    const CrossbarNetwork<MemResponse> &responseNet() const
    {
        return response_;
    }

    void
    tick(Cycle now)
    {
        request_.tick(now);
        response_.tick(now);
    }

    void
    clear()
    {
        request_.clear();
        response_.clear();
    }

  private:
    CrossbarNetwork<MemRequest> request_;
    CrossbarNetwork<MemResponse> response_;
};

} // namespace ebm
