#include "sim/golden_digest.hpp"

#include "sim/gpu.hpp"

namespace ebm {

std::uint64_t
goldenDigest(const Gpu &gpu)
{
    std::uint64_t h = kFnvOffsetBasis;
    const auto fold = [&h](std::uint64_t v) { h = fnv1aWord(h, v); };

    // Machine shape and elapsed time.
    fold(gpu.now());
    fold(gpu.numApps());
    fold(gpu.numCores());
    fold(gpu.numPartitions());

    // Per-application aggregates.
    for (AppId app = 0; app < gpu.numApps(); ++app) {
        fold(gpu.appInstrs(app));
        fold(gpu.appDataCycles(app));
        fold(gpu.appTlp(app));
    }

    // Per-core counters, in core-id order.
    for (CoreId id = 0; id < gpu.numCores(); ++id) {
        const SimtCore &core = gpu.core(id);
        fold(core.instrsRetired());
        fold(core.idleCycles());
        fold(core.memWaitCycles());
        fold(core.stallCycles());
        fold(core.lostLocality());
        fold(core.tlpLimit());
        fold(core.l1Bypass() ? 1 : 0);
        fold(core.l2Bypass() ? 1 : 0);
        for (AppId app = 0; app < gpu.numApps(); ++app) {
            fold(core.l1().stats().accesses(app));
            fold(core.l1().stats().misses(app));
            fold(core.l1().tags().linesOwnedBy(app));
        }
    }

    // Per-partition counters, in partition order.
    for (PartitionId p = 0; p < gpu.numPartitions(); ++p) {
        const MemoryPartition &part = gpu.partition(p);
        fold(part.dramCyclesElapsed());
        fold(part.dram().rowHits());
        fold(part.dram().rowMisses());
        fold(part.dram().requestsServiced());
        fold(part.dram().queueDepth());
        for (AppId app = 0; app < gpu.numApps(); ++app) {
            fold(part.l2().stats().accesses(app));
            fold(part.l2().stats().misses(app));
            fold(part.l2().tags().linesOwnedBy(app));
            fold(part.dataCycles(app));
        }
    }

    // In-flight interconnect state (catches any end-of-run drift in
    // what is still buffered versus already delivered).
    fold(gpu.crossbar().requestNet().occupancy());
    fold(gpu.crossbar().responseNet().occupancy());

    return h;
}

} // namespace ebm
