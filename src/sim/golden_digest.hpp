/**
 * @file
 * End-of-run state digest for bit-identical regression locking.
 *
 * goldenDigest() folds every observable end-of-run counter of a Gpu —
 * cycle counts, per-app instruction/bandwidth totals, per-core issue
 * and idle accounting, per-cache access/miss/ownership counters, DRAM
 * row and service statistics, and in-flight queue occupancies — into
 * one FNV-1a hash. Two runs are behaviourally identical exactly when
 * their digests match, so performance work on the simulator hot path
 * (event skipping, allocation-free structures) can be proven to
 * preserve results by comparing a single 64-bit value against a
 * constant recorded before the optimization landed
 * (tests/sim/golden_digest_test.cpp).
 */
#pragma once

#include <cstdint>

namespace ebm {

class Gpu;

/** FNV-1a offset basis (the digest's initial accumulator value). */
inline constexpr std::uint64_t kFnvOffsetBasis = 0xcbf29ce484222325ull;

/** Fold one 64-bit word into an FNV-1a accumulator, byte by byte. */
inline constexpr std::uint64_t
fnv1aWord(std::uint64_t h, std::uint64_t word)
{
    constexpr std::uint64_t kPrime = 0x100000001b3ull;
    for (int i = 0; i < 8; ++i) {
        h ^= (word >> (i * 8)) & 0xffull;
        h *= kPrime;
    }
    return h;
}

/**
 * Digest every end-of-run counter of @p gpu.
 *
 * The walk order is fixed (machine structure, then per-core, then
 * per-partition state) and every value is widened to 64 bits before
 * hashing, so the digest is a stable function of simulation behaviour
 * only — never of container layout or iteration order.
 */
std::uint64_t goldenDigest(const Gpu &gpu);

} // namespace ebm
