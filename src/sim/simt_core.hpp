/**
 * @file
 * One SIMT core (compute unit / streaming multiprocessor): warp
 * contexts, two GTO+SWL issue arbiters, an L1 data cache with MSHRs,
 * and the load/store path into the crossbar. Each core belongs to
 * exactly one application (the paper's exclusive core partitioning).
 *
 * Hot-path structure: each warp's next instruction is decoded once
 * per instruction-pointer advance and cached (TraceGen::instrAt is a
 * hash cascade, so re-decoding per readiness probe is the dominant
 * issue-stage cost), and warp readiness is pushed into the
 * schedulers' ready masks on every transition instead of re-derived
 * per pick. The core also reports the next cycle at which it can
 * possibly act (nextEventCycle) and supports batch-advancing its
 * idle accounting (fastForward) for the GPU's quiescence skip.
 */
#pragma once

#include <cstdint>
#include <queue>
#include <vector>

#include "common/config.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"
#include "interconnect/crossbar.hpp"
#include "mem/address_map.hpp"
#include "mem/cache.hpp"
#include "mem/mem_request.hpp"
#include "sim/warp.hpp"
#include "sim/warp_scheduler.hpp"
#include "workload/trace_gen.hpp"

namespace ebm {

/** One SIMT core running one application's warps. */
class SimtCore
{
  public:
    /**
     * @param cfg    shared GPU configuration
     * @param amap   global address map
     * @param id     global core id (also the crossbar input port)
     * @param app    owning application
     * @param tracer instruction/address generator of the application
     */
    SimtCore(const GpuConfig &cfg, const AddressMap &amap, CoreId id,
             AppId app, const TraceGen *tracer);

    /** Issue stage for one core cycle. */
    void tickIssue(Cycle now, Crossbar &xbar);

    /** Accept memory responses arriving from the crossbar. */
    void tickResponses(Cycle now, Crossbar &xbar);

    /**
     * Earliest cycle after @p now at which this core can possibly do
     * work: now+1 if any SWL-active warp can issue, else the first
     * L1-hit completion that will unblock one, else never (an
     * off-chip response must arrive first — the interconnect or
     * memory partition owns that event).
     */
    Cycle nextEventCycle(Cycle now) const;

    /**
     * Batch-advance @p cycles fully idle cycles: every counter moves
     * exactly as @p cycles serial tickIssue calls with no ready warp
     * would have moved it. The caller (Gpu::run fast-forward)
     * guarantees quiescence; this panics if a warp is in fact ready.
     */
    void fastForward(Cycle cycles);

    /** Apply a new per-scheduler TLP limit (the SWL knob). */
    void setTlpLimit(std::uint32_t warps_per_scheduler);
    std::uint32_t tlpLimit() const { return schedulers_[0].tlpLimit(); }

    /** Enable/disable L1 bypass for this core (Mod+Bypass). */
    void setL1Bypass(bool bypass)
    {
        // The knob changes whether a stalled load would probe the
        // tags on retry, so stalled warps must re-attempt.
        if (bypass != bypassL1_)
            l1_.bumpGeneration();
        bypassL1_ = bypass;
    }
    bool l1Bypass() const { return bypassL1_; }

    /** Enable/disable L2 bypass for this core's requests. */
    void setL2Bypass(bool bypass) { bypassL2_ = bypass; }
    bool l2Bypass() const { return bypassL2_; }

    CoreId id() const { return id_; }
    AppId app() const { return app_; }

    /** Warp instructions retired (for IPC). */
    std::uint64_t instrsRetired() const { return instrsRetired_.total(); }
    std::uint64_t windowInstrsRetired() const
    {
        return instrsRetired_.sinceCheckpoint();
    }

    const Cache &l1() const { return l1_; }
    Cache &l1() { return l1_; }

    /** Cycles in which no scheduler could issue (DynCTA's signal). */
    std::uint64_t idleCycles() const { return idleCycles_.total(); }
    std::uint64_t windowIdleCycles() const
    {
        return idleCycles_.sinceCheckpoint();
    }
    /** Idle cycles where some warp was blocked on memory. */
    std::uint64_t memWaitCycles() const { return memWaitCycles_.total(); }
    std::uint64_t windowMemWaitCycles() const
    {
        return memWaitCycles_.sinceCheckpoint();
    }

    /**
     * Cycles where a ready warp could not issue because of downstream
     * back-pressure (interconnect or MSHR full) — the congestion
     * signal local TLP heuristics react to.
     */
    std::uint64_t stallCycles() const { return stallCycles_.total(); }
    std::uint64_t windowStallCycles() const
    {
        return stallCycles_.sinceCheckpoint();
    }

    /** L1 misses that hit the victim tags (lost locality; CCWS). */
    std::uint64_t lostLocality() const { return lostLocality_.total(); }
    std::uint64_t windowLostLocality() const
    {
        return lostLocality_.sinceCheckpoint();
    }

    /** Start a new sampling window on all core counters. */
    void checkpoint();

    /** Clear warps, L1, and counters (new run / kernel relaunch). */
    void reset(bool flush_l1);

    struct LocalCompletion
    {
        Cycle readyAt;
        WarpId warp;
        bool operator>(const LocalCompletion &o) const
        {
            return readyAt > o.readyAt;
        }
    };

    /**
     * Everything a core mutates: warp contexts (including per-warp
     * stall generations), scheduler masks and SWL limits, the per-warp
     * decoded-instruction cache, the L1 (tags + MSHRs + stats +
     * generation), the CCWS victim tags, L1-hit completions in flight,
     * the bypass knobs, and all counters with their window marks. The
     * config/address-map/tracer references are wiring, not state.
     */
    struct Snapshot
    {
        bool bypassL1 = false;
        bool bypassL2 = false;
        std::vector<WarpState> warps;
        std::vector<WarpScheduler::Snapshot> schedulers;
        std::vector<InstrDesc> curInstr;
        std::vector<std::uint64_t> curInstrIdx;
        Cache::Snapshot l1;
        TagArray::Snapshot victimTags;
        std::priority_queue<LocalCompletion,
                            std::vector<LocalCompletion>,
                            std::greater<LocalCompletion>> localPending;
        Counter instrsRetired;
        Counter idleCycles;
        Counter memWaitCycles;
        Counter stallCycles;
        Counter lostLocality;

        std::size_t
        heapBytes() const
        {
            return warps.capacity() * sizeof(WarpState) +
                   schedulers.capacity() *
                       sizeof(WarpScheduler::Snapshot) +
                   curInstr.capacity() * sizeof(InstrDesc) +
                   curInstrIdx.capacity() * sizeof(std::uint64_t) +
                   l1.heapBytes() + victimTags.heapBytes() +
                   localPending.size() * sizeof(LocalCompletion);
        }
    };

    Snapshot snapshot() const;
    void restore(const Snapshot &snap);

  private:
    /** Try to issue one instruction from @p warp. @return success. */
    bool issueFrom(WarpId warp, Cycle now, Crossbar &xbar);

    /**
     * Re-derive @p warp's cached decode + readiness after its state
     * changed (issue, fill, reset) and push it to its scheduler. The
     * instruction is only re-decoded when nextInstr actually moved.
     */
    void refreshWarp(WarpId warp);

    /** Any SWL-active warp blocked on an off-chip load? */
    bool anyActiveMemBlocked() const;

    /** curInstrIdx_ value marking a decode-cache entry as stale. */
    static constexpr std::uint64_t kStaleInstr = ~std::uint64_t{0};

    const GpuConfig &cfg_;
    const AddressMap &amap_;
    CoreId id_;
    AppId app_;
    const TraceGen *tracer_;
    bool bypassL1_ = false;
    bool bypassL2_ = false;

    std::vector<WarpState> warps_;
    std::vector<WarpScheduler> schedulers_;
    /** Decoded instruction at each warp's nextInstr (decode cache). */
    std::vector<InstrDesc> curInstr_;
    /** nextInstr value curInstr_ was decoded at (kStaleInstr = stale). */
    std::vector<std::uint64_t> curInstrIdx_;
    Cache l1_;
    /**
     * Victim tags of recently evicted L1 lines. An L1 miss that hits
     * here is *lost locality*: the line would have hit had fewer
     * warps shared the cache — the CCWS-style throttle signal.
     */
    TagArray victimTags_;
    /** L1-hit responses waiting out the hit latency. */
    std::priority_queue<LocalCompletion, std::vector<LocalCompletion>,
                        std::greater<LocalCompletion>> localPending_;
    /** Reused fill scratch: zero steady-state allocation per fill. */
    Cache::FillResult fillScratch_;

    Counter instrsRetired_;
    Counter idleCycles_;
    Counter memWaitCycles_;
    Counter stallCycles_;
    Counter lostLocality_;
};

} // namespace ebm
