/**
 * @file
 * Warp issue arbitration: GTO (greedy-then-oldest) priority logic
 * wrapped by the SWL (static wavefront limiting) TLP filter.
 *
 * GTO keeps issuing from the last-issued warp while it stays ready,
 * otherwise falls back to the oldest ready warp. SWL exposes only the
 * first `tlpLimit` warp contexts of the scheduler to the GTO logic —
 * the warp-granularity TLP knob every scheme in the paper turns.
 */
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/types.hpp"

namespace ebm {

/** One warp issue arbiter (a core has schedulersPerCore of these). */
class WarpScheduler
{
  public:
    /**
     * @param warp_ids  hardware warp contexts owned by this scheduler,
     *                  in age order (index 0 = oldest)
     * @param tlp_limit initial SWL limit (warps exposed to GTO)
     */
    WarpScheduler(std::vector<WarpId> warp_ids, std::uint32_t tlp_limit);

    /**
     * Pick the next warp to issue from, in GTO order, among the first
     * tlpLimit() warps. @p is_ready reports whether a warp can issue
     * this cycle. @return the warp id, or kNoWarp if none is ready.
     */
    WarpId pick(const std::function<bool(WarpId)> &is_ready);

    /** Record that @p warp actually issued (updates greedy state). */
    void issued(WarpId warp) { lastIssued_ = warp; }

    /** Change the SWL limit (clamped to the context count). */
    void setTlpLimit(std::uint32_t limit);

    /** Forget the greedy pointer (core reset / kernel relaunch). */
    void resetGreedy() { lastIssued_ = kNoWarp; }

    std::uint32_t tlpLimit() const { return tlpLimit_; }

    /** Warps currently exposed to the GTO logic. */
    std::vector<WarpId> activeWarps() const;

    static constexpr WarpId kNoWarp = 0xffffffffu;

  private:
    std::vector<WarpId> warpIds_; ///< Age order.
    std::uint32_t tlpLimit_;
    WarpId lastIssued_ = kNoWarp;
};

} // namespace ebm
