/**
 * @file
 * Warp issue arbitration: GTO (greedy-then-oldest) priority logic
 * wrapped by the SWL (static wavefront limiting) TLP filter.
 *
 * GTO keeps issuing from the last-issued warp while it stays ready,
 * otherwise falls back to the oldest ready warp. SWL exposes only the
 * first `tlpLimit` warp contexts of the scheduler to the GTO logic —
 * the warp-granularity TLP knob every scheme in the paper turns.
 *
 * Readiness is tracked incrementally: the owning core reports warp
 * ready/blocked transitions as they happen (issue, fill, wakeup) via
 * setReady(), and the scheduler keeps them in a bitmask ordered by
 * age position. pickReady() is then a masked find-first-set instead
 * of a per-pick rescan of every warp context, and anyActiveReady()
 * (the quiescence-fast-forward gate) is a single mask test.
 */
#pragma once

#include <bit>
#include <cstdint>
#include <functional>
#include <vector>

#include "common/types.hpp"

namespace ebm {

/** One warp issue arbiter (a core has schedulersPerCore of these). */
class WarpScheduler
{
  public:
    /**
     * @param warp_ids  hardware warp contexts owned by this scheduler,
     *                  in age order (index 0 = oldest); at most 64
     * @param tlp_limit initial SWL limit (warps exposed to GTO)
     */
    WarpScheduler(std::vector<WarpId> warp_ids, std::uint32_t tlp_limit);

    /**
     * Pick the next warp to issue from, in GTO order, among the first
     * tlpLimit() warps, using the incrementally maintained ready
     * mask. @return the warp id, or kNoWarp if none is ready.
     */
    WarpId pickReady() const;

    /**
     * Legacy callback-driven pick (tests, tools): @p is_ready is
     * evaluated per candidate warp; the ready mask is ignored.
     */
    WarpId pick(const std::function<bool(WarpId)> &is_ready);

    /** Record that @p warp actually issued (updates greedy state). */
    void issued(WarpId warp)
    {
        lastIssued_ = warp;
        lastPos_ = positionOf(warp);
    }

    /**
     * Same as issued(), but the caller supplies the warp's age
     * position directly (the hot path knows it without a scan).
     */
    void issuedAt(std::uint32_t pos)
    {
        lastIssued_ = warpIds_[pos];
        lastPos_ = pos;
    }

    /**
     * Report the readiness of the warp at age position @p pos (its
     * index in the constructor's warp_ids). Maintained by the owning
     * core on every issue/wakeup transition.
     */
    void
    setReady(std::uint32_t pos, bool ready)
    {
        if (ready)
            readyMask_ |= 1ull << pos;
        else
            readyMask_ &= ~(1ull << pos);
    }

    /** Any warp inside the SWL window ready to issue? */
    bool
    anyActiveReady() const
    {
        return (readyMask_ & windowMask()) != 0;
    }

    /** Change the SWL limit (clamped to the context count). */
    void setTlpLimit(std::uint32_t limit);

    /** Forget the greedy pointer (core reset / kernel relaunch). */
    void
    resetGreedy()
    {
        lastIssued_ = kNoWarp;
        lastPos_ = kNoPos;
    }

    std::uint32_t tlpLimit() const { return tlpLimit_; }

    /** Number of warp contexts owned by this scheduler. */
    std::uint32_t numWarps() const
    {
        return static_cast<std::uint32_t>(warpIds_.size());
    }

    /** Warp id at age position @p pos (0 = oldest). */
    WarpId warpAt(std::uint32_t pos) const { return warpIds_[pos]; }

    /** Warps currently exposed to the GTO logic (allocates; tests). */
    std::vector<WarpId> activeWarps() const;

    static constexpr WarpId kNoWarp = 0xffffffffu;

    /**
     * Mutable arbiter state: the SWL limit (a knob, so a restored
     * machine replays the same windowed picks), the incremental ready
     * mask, and the GTO greedy pointer. The warp-id age order is
     * immutable per instance.
     */
    struct Snapshot
    {
        std::uint32_t tlpLimit = 0;
        std::uint64_t readyMask = 0;
        WarpId lastIssued = kNoWarp;
        std::uint32_t lastPos = 0;
    };

    Snapshot
    snapshot() const
    {
        return Snapshot{tlpLimit_, readyMask_, lastIssued_, lastPos_};
    }

    void
    restore(const Snapshot &snap)
    {
        tlpLimit_ = snap.tlpLimit;
        readyMask_ = snap.readyMask;
        lastIssued_ = snap.lastIssued;
        lastPos_ = snap.lastPos;
    }

  private:
    static constexpr std::uint32_t kNoPos = 0xffffffffu;

    std::uint64_t
    windowMask() const
    {
        return tlpLimit_ >= 64 ? ~0ull : (1ull << tlpLimit_) - 1;
    }

    std::uint32_t positionOf(WarpId warp) const;

    std::vector<WarpId> warpIds_; ///< Age order.
    std::uint32_t tlpLimit_;
    std::uint64_t readyMask_ = 0; ///< Bit i: warpIds_[i] can issue.
    WarpId lastIssued_ = kNoWarp;
    std::uint32_t lastPos_ = kNoPos;
};

} // namespace ebm
