/**
 * @file
 * The whole simulated GPU: SIMT cores partitioned among applications,
 * the crossbar, and the memory partitions. This is the substrate every
 * TLP-management scheme runs on; schemes interact with it only through
 * setTlpLimit()/setL1Bypass() and the statistics accessors, mirroring
 * the narrow hardware interface of the paper's Figure 8.
 */
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/config.hpp"
#include "common/types.hpp"
#include "interconnect/crossbar.hpp"
#include "mem/address_map.hpp"
#include "mem/memory_partition.hpp"
#include "sim/simt_core.hpp"
#include "workload/app_profile.hpp"
#include "workload/trace_gen.hpp"

namespace ebm {

/** The simulated GPU executing one or more applications. */
class Gpu
{
  public:
    /**
     * @param cfg  configuration; cfg.numApps must equal apps.size()
     * @param apps one profile per co-scheduled application
     * @param core_share optional per-app core counts (sums to
     *        cfg.numCores); empty means an equal split
     */
    Gpu(const GpuConfig &cfg, std::vector<AppProfile> apps,
        std::vector<std::uint32_t> core_share = {});

    /** Advance one core-clock cycle. */
    void tick();

    /**
     * Run for @p cycles core cycles. When fast-forward is enabled
     * (the default), stretches in which no component can do anything
     * — no warp ready, networks drained, memory quiet — are
     * batch-advanced to the next event instead of ticked one by one.
     * All counters advance exactly as the serial loop would; results
     * are bit-identical either way (the golden-digest tests pin this).
     */
    void run(Cycle cycles);

    /** Enable/disable quiescence fast-forward inside run(). */
    void setFastForward(bool enabled) { fastForward_ = enabled; }
    bool fastForwardEnabled() const { return fastForward_; }

    /** Cycles skipped (not ticked serially) by run() so far. */
    std::uint64_t fastForwardedCycles() const
    {
        return fastForwardedCycles_;
    }

    Cycle now() const { return now_; }

    // --- The TLP / bypass knobs ---------------------------------------

    /** Set the per-scheduler TLP limit of every core of @p app. */
    void setAppTlp(AppId app, std::uint32_t warps_per_scheduler);

    /** Current TLP limit of @p app. */
    std::uint32_t appTlp(AppId app) const;

    /** Enable/disable L1 bypass on every core of @p app. */
    void setAppL1Bypass(AppId app, bool bypass);

    /** Enable/disable L2 bypass on every core of @p app. */
    void setAppL2Bypass(AppId app, bool bypass);

    /**
     * Restrict @p app's L2 allocations to ways [first, first+count)
     * in every slice (Section VI-D cache-partitioning study).
     */
    void setAppL2WayPartition(AppId app, std::uint32_t first,
                              std::uint32_t count);

    // --- Statistics ----------------------------------------------------

    std::uint32_t numApps() const { return numApps_; }
    const GpuConfig &config() const { return cfg_; }
    const AddressMap &addressMap() const { return amap_; }

    /** Cores belonging to @p app. */
    const std::vector<CoreId> &coresOf(AppId app) const
    {
        return appCores_[app];
    }

    SimtCore &core(CoreId id) { return *cores_[id]; }
    const SimtCore &core(CoreId id) const { return *cores_[id]; }
    const Crossbar &crossbar() const { return xbar_; }
    MemoryPartition &partition(PartitionId id) { return *partitions_[id]; }
    const MemoryPartition &partition(PartitionId id) const
    {
        return *partitions_[id];
    }
    std::uint32_t numCores() const
    {
        return static_cast<std::uint32_t>(cores_.size());
    }
    std::uint32_t numPartitions() const
    {
        return static_cast<std::uint32_t>(partitions_.size());
    }

    /** Instructions retired by @p app since the last reset. */
    std::uint64_t appInstrs(AppId app) const;

    /** Aggregate attained data-bus cycles of @p app (all channels). */
    std::uint64_t appDataCycles(AppId app) const;

    /** Cumulative L1 miss rate of @p app across its cores. */
    double appL1MissRate(AppId app) const;

    /** Cumulative L2 miss rate of @p app across all partitions. */
    double appL2MissRate(AppId app) const;

    /**
     * Attained DRAM bandwidth of @p app as a fraction of the
     * theoretical peak of the whole memory system (the paper's BW).
     */
    double appAttainedBw(AppId app) const;

    /** Sum of all apps' attained bandwidth (utilization guideline 1). */
    double totalAttainedBw() const;

    /** IPC of @p app over the elapsed cycles. */
    double appIpc(AppId app) const;

    /** Start a new sampling window on every counter in the machine. */
    void checkpoint();

    /**
     * Clear all state for a fresh measurement. Always reset: the
     * cycle counter, every warp cursor (nextInstr, microIdx,
     * outstanding counts, streamPos — a relaunch replays the same
     * access stream), scheduler greedy pointers, in-flight traffic
     * (networks, holdover, partition queues), DRAM bank/timing state,
     * victim tags, and every statistics counter. Preserved: the knob
     * settings (TLP limits, L1/L2 bypass flags, L2 way partitions)
     * and — with @p flush_caches false — L1/L2 tag contents, so a
     * measurement can start against warm caches. TraceGen and the
     * address hash are stateless, so replayed runs are deterministic.
     */
    void reset(bool flush_caches = true);

    /**
     * Return every runtime knob — per-app TLP limits, L1/L2 bypass
     * flags, L2 way partitions — to its construction default.
     * reset() deliberately preserves knobs (a policy's settings
     * survive a measurement restart); the GpuPool reuse path calls
     * this *plus* reset(true) so a recycled instance is
     * indistinguishable from a freshly constructed one.
     */
    void restoreKnobDefaults();

    /** A held-over response plus its response-network input port,
     * captured at origin so retries never recompute the address
     * mapping (the port is a pure function of the line address). */
    struct HeldResponse
    {
        MemResponse resp;
        PartitionId port;
    };

    /**
     * The complete mutable machine state: cycle counter, fast-forward
     * accounting, every core, both crossbar networks, every memory
     * partition, and the response holdover. Value-semantic and
     * heap-compact — a pooled worker can hold several. Capturing and
     * restoring is only valid between instances built from the same
     * (config, apps, core_share); restore() shape-checks and fatals on
     * mismatch. After restore(const Snapshot&), the machine replays
     * bit-identically to the machine the snapshot was taken from —
     * unlike reset(), which rewinds to cycle 0 and (always, for the
     * L2) flushes in-flight and cached state.
     */
    struct Snapshot
    {
        Cycle now = 0;
        bool fastForward = true;
        std::uint64_t fastForwardedCycles = 0;
        std::vector<SimtCore::Snapshot> cores;
        Crossbar::Snapshot xbar;
        std::vector<MemoryPartition::Snapshot> partitions;
        std::vector<HeldResponse> holdover;

        std::size_t heapBytes() const;
    };

    Snapshot snapshot() const;
    void restore(const Snapshot &snap);

  private:
    /**
     * Earliest cycle after now_ at which any component can change
     * state, min-reduced over cores, both crossbar networks, memory
     * partitions, and the response holdover. kNeverCycle means the
     * machine is fully drained with nothing ready (only possible if
     * every warp is blocked forever — a deadlock; run() then burns
     * idle cycles to the horizon exactly like the serial loop).
     */
    Cycle nextEventCycle() const;

    /** Batch-advance now_ and all idle accounting to @p target. */
    void fastForwardTo(Cycle target);
    GpuConfig cfg_;
    std::vector<AppProfile> apps_;
    AddressMap amap_;
    std::uint32_t numApps_;
    Cycle now_ = 0;

    std::vector<std::unique_ptr<TraceGen>> tracers_;
    std::vector<std::unique_ptr<SimtCore>> cores_;
    std::vector<std::vector<CoreId>> appCores_;
    Crossbar xbar_;
    std::vector<std::unique_ptr<MemoryPartition>> partitions_;
    std::vector<MemResponse> respScratch_;
    /** Responses blocked by response-network back-pressure. */
    std::vector<HeldResponse> holdover_;
    /** Swap partner of holdover_ (no per-cycle vector allocation). */
    std::vector<HeldResponse> holdoverScratch_;
    bool fastForward_ = true;
    std::uint64_t fastForwardedCycles_ = 0;
};

} // namespace ebm
