#include "sim/simt_core.hpp"

#include "common/log.hpp"

namespace ebm {

SimtCore::SimtCore(const GpuConfig &cfg, const AddressMap &amap,
                   CoreId id, AppId app, const TraceGen *tracer)
    : cfg_(cfg),
      amap_(amap),
      id_(id),
      app_(app),
      tracer_(tracer),
      warps_(cfg.maxWarpsPerCore),
      curInstr_(cfg.maxWarpsPerCore),
      curInstrIdx_(cfg.maxWarpsPerCore, kStaleInstr),
      l1_(cfg.l1, cfg.numApps),
      victimTags_([&cfg] {
          // Victim tags track twice the L1's line count at the same
          // set count so recently evicted lines linger long enough to
          // witness lost locality.
          CacheGeometry geom = cfg.l1;
          geom.sizeBytes = cfg.l1.sizeBytes * 2;
          geom.assoc = cfg.l1.assoc * 2;
          return geom;
      }())
{
    if (tracer_ == nullptr)
        fatal("SimtCore: null trace generator");
    // Warp contexts are dealt round-robin to the schedulers, matching
    // the usual even/odd warp-id split; within a scheduler, lower
    // hardware id means older.
    const std::uint32_t per_sched =
        cfg.maxWarpsPerCore / cfg.schedulersPerCore;
    schedulers_.reserve(cfg.schedulersPerCore);
    for (std::uint32_t s = 0; s < cfg.schedulersPerCore; ++s) {
        std::vector<WarpId> ids;
        ids.reserve(per_sched);
        for (std::uint32_t i = 0; i < per_sched; ++i)
            ids.push_back(i * cfg.schedulersPerCore + s);
        schedulers_.emplace_back(std::move(ids), per_sched);
    }
    for (WarpId w = 0; w < warps_.size(); ++w)
        refreshWarp(w);
}

void
SimtCore::setTlpLimit(std::uint32_t warps_per_scheduler)
{
    for (WarpScheduler &sched : schedulers_)
        sched.setTlpLimit(warps_per_scheduler);
}

void
SimtCore::refreshWarp(WarpId warp)
{
    const WarpState &w = warps_[warp];
    if (curInstrIdx_[warp] != w.nextInstr) {
        curInstr_[warp] = tracer_->instrAt(w.nextInstr);
        curInstrIdx_[warp] = w.nextInstr;
    }
    const bool ready =
        !(curInstr_[warp].waitsForMem && w.outstanding > 0);
    schedulers_[warp % cfg_.schedulersPerCore].setReady(
        warp / cfg_.schedulersPerCore, ready);
}

bool
SimtCore::issueFrom(WarpId warp, Cycle now, Crossbar &xbar)
{
    WarpState &w = warps_[warp];
    // The decode cache is kept in lockstep with nextInstr, so the
    // instruction the readiness mask was derived from is reused here
    // rather than decoded a second time.
    const InstrDesc instr = curInstr_[warp];

    if (!instr.isLoad && !instr.isStore) {
        // Compute instructions are fully pipelined at the issue stage.
        ++w.nextInstr;
        ++w.instrsRetired;
        instrsRetired_.add();
        refreshWarp(warp);
        return true;
    }

    // A load that stalled on an MSHR structural hazard stays stalled
    // until the next L1 fill (or reset / bypass-knob flip), all of
    // which bump the cache generation. The retry attempt is entirely
    // side-effect-free, so skipping it here returns false exactly as
    // the replayed Stall would — without the per-cycle line-address
    // hash and double MSHR probe that dominate congested sweeps.
    if (instr.isLoad && w.stallGen == l1_.generation())
        return false;

    // Memory instructions issue one cache-line transaction per cycle
    // (an uncoalesced load therefore occupies the scheduler for
    // numLines cycles).
    const std::uint64_t gwarp =
        static_cast<std::uint64_t>(id_) * cfg_.maxWarpsPerCore + warp;
    const Addr line = tracer_->lineAddr(gwarp, w.nextInstr, w.microIdx,
                                        w.streamPos, instr);

    if (instr.isStore) {
        // Write-through, no-allocate, fire-and-forget: the store
        // consumes interconnect and DRAM bandwidth, but no warp state
        // waits on it and it does not touch the caches.
        const PartitionId store_part = amap_.partitionOf(line);
        if (!xbar.requestNet().canAccept(id_, store_part))
            return false;
        MemRequest store;
        store.lineAddr = line;
        store.type = MemAccessType::Store;
        store.app = app_;
        store.core = id_;
        store.warp = warp;
        store.issuedAt = now;
        xbar.requestNet().inject(id_, store_part, store);
        ++w.nextInstr;
        ++w.instrsRetired;
        instrsRetired_.add();
        refreshWarp(warp);
        return true;
    }

    MemRequest req;
    req.lineAddr = line;
    req.type = MemAccessType::Load;
    req.app = app_;
    req.core = id_;
    req.warp = warp;
    req.issuedAt = now;
    req.bypassL1 = bypassL1_;
    req.bypassL2 = bypassL2_;

    // Check downstream capacity *before* touching the L1 so a stalled
    // transaction is not double-counted in the miss statistics.
    const PartitionId part = amap_.partitionOf(line);
    if (!xbar.requestNet().canAccept(id_, part))
        return false;

    const CacheOutcome outcome = l1_.access(req, bypassL1_);
    switch (outcome) {
      case CacheOutcome::Hit:
        localPending_.push(
            LocalCompletion{now + cfg_.l1HitLatency, warp});
        break;
      case CacheOutcome::MissNew:
        xbar.requestNet().inject(id_, part, req);
        ++w.outstandingOffchip;
        if (victimTags_.invalidate(line))
            lostLocality_.add();
        break;
      case CacheOutcome::MissMerged:
        ++w.outstandingOffchip;
        break; // Will wake when the in-flight fill returns.
      case CacheOutcome::Stall:
        // MSHR structural hazard; the warp re-arms when the L1
        // generation moves (see the skip above).
        w.stallGen = l1_.generation();
        return false;
    }

    ++w.outstanding;
    ++w.microIdx;
    if (w.microIdx >= instr.numLines) {
        w.microIdx = 0;
        if (instr.category == AccessCategory::Stream)
            ++w.streamPos;
        ++w.nextInstr;
        ++w.instrsRetired;
        instrsRetired_.add();
    }
    refreshWarp(warp);
    return true;
}

void
SimtCore::tickIssue(Cycle now, Crossbar &xbar)
{
    bool any_issued = false;
    bool any_structural = false;
    for (WarpScheduler &sched : schedulers_) {
        for (std::uint32_t n = 0; n < cfg_.maxIssuePerScheduler; ++n) {
            const WarpId warp = sched.pickReady();
            if (warp == WarpScheduler::kNoWarp)
                break;
            if (!issueFrom(warp, now, xbar)) {
                // Structural stall: a ready warp was blocked by
                // downstream back-pressure.
                any_structural = true;
                break;
            }
            sched.issuedAt(warp / cfg_.schedulersPerCore);
            any_issued = true;
        }
    }
    if (any_structural)
        stallCycles_.add();

    if (!any_issued) {
        idleCycles_.add();
        // Attribute the idle cycle to memory if any SWL-active warp is
        // blocked on outstanding loads.
        // Only off-chip latency counts as "memory waiting": waiting
        // out an L1 hit is a parallelism shortfall, not contention
        // (this is the distinction DynCTA's c_mem signal relies on).
        if (anyActiveMemBlocked())
            memWaitCycles_.add();
    }
}

bool
SimtCore::anyActiveMemBlocked() const
{
    for (const WarpScheduler &sched : schedulers_) {
        for (std::uint32_t i = 0; i < sched.tlpLimit(); ++i) {
            if (warps_[sched.warpAt(i)].outstandingOffchip > 0)
                return true;
        }
    }
    return false;
}

Cycle
SimtCore::nextEventCycle(Cycle now) const
{
    for (const WarpScheduler &sched : schedulers_) {
        if (sched.anyActiveReady())
            return now + 1;
    }
    if (!localPending_.empty()) {
        const Cycle ready = localPending_.top().readyAt;
        return ready > now ? ready : now + 1;
    }
    // Blocked on off-chip responses (or fully drained): the crossbar
    // or a memory partition owns the next event.
    return kNeverCycle;
}

void
SimtCore::fastForward(Cycle cycles)
{
    for (const WarpScheduler &sched : schedulers_) {
        if (sched.anyActiveReady())
            panic("SimtCore: fast-forward with a ready warp");
    }
    // Exactly what `cycles` idle tickIssue calls would do: no issue,
    // no structural stall (that needs a ready warp), idle every cycle,
    // memory-wait iff an active warp is blocked off-chip — and that
    // predicate cannot change while the whole GPU is quiescent.
    idleCycles_.add(cycles);
    if (anyActiveMemBlocked())
        memWaitCycles_.add(cycles);
}

void
SimtCore::tickResponses(Cycle now, Crossbar &xbar)
{
    // L1-hit latency expirations.
    while (!localPending_.empty() && localPending_.top().readyAt <= now) {
        const WarpId warp = localPending_.top().warp;
        WarpState &w = warps_[warp];
        if (w.outstanding == 0)
            panic("SimtCore: completion for a warp with none pending");
        --w.outstanding;
        localPending_.pop();
        refreshWarp(warp);
    }

    // Fills coming back over the crossbar.
    MemResponse resp;
    while (xbar.responseNet().tryEject(id_, now, resp)) {
        l1_.fill(resp.lineAddr, resp.app, resp.bypassL1, fillScratch_);
        if (fillScratch_.evictedValid)
            victimTags_.access(fillScratch_.evictedLine, app_, true);
        for (const MemRequest &req : fillScratch_.waiters) {
            WarpState &w = warps_[req.warp];
            if (w.outstanding == 0 || w.outstandingOffchip == 0)
                panic("SimtCore: fill for a warp with none pending");
            --w.outstanding;
            --w.outstandingOffchip;
            refreshWarp(req.warp);
        }
    }
}

void
SimtCore::checkpoint()
{
    instrsRetired_.checkpoint();
    idleCycles_.checkpoint();
    memWaitCycles_.checkpoint();
    stallCycles_.checkpoint();
    lostLocality_.checkpoint();
    l1_.stats().checkpoint();
}

void
SimtCore::reset(bool flush_l1)
{
    for (WarpState &w : warps_)
        w.reset();
    for (WarpScheduler &sched : schedulers_)
        sched.resetGreedy();
    while (!localPending_.empty())
        localPending_.pop();
    if (flush_l1)
        l1_.reset();
    instrsRetired_.reset();
    idleCycles_.reset();
    memWaitCycles_.reset();
    stallCycles_.reset();
    lostLocality_.reset();
    victimTags_.flush();
    // Warp cursors moved back to instruction 0: re-derive the decode
    // cache and readiness masks (all warps become ready again).
    std::fill(curInstrIdx_.begin(), curInstrIdx_.end(), kStaleInstr);
    for (WarpId w = 0; w < warps_.size(); ++w)
        refreshWarp(w);
}

SimtCore::Snapshot
SimtCore::snapshot() const
{
    Snapshot snap;
    snap.bypassL1 = bypassL1_;
    snap.bypassL2 = bypassL2_;
    snap.warps = warps_;
    snap.schedulers.reserve(schedulers_.size());
    for (const WarpScheduler &sched : schedulers_)
        snap.schedulers.push_back(sched.snapshot());
    snap.curInstr = curInstr_;
    snap.curInstrIdx = curInstrIdx_;
    snap.l1 = l1_.snapshot();
    snap.victimTags = victimTags_.snapshot();
    snap.localPending = localPending_;
    snap.instrsRetired = instrsRetired_;
    snap.idleCycles = idleCycles_;
    snap.memWaitCycles = memWaitCycles_;
    snap.stallCycles = stallCycles_;
    snap.lostLocality = lostLocality_;
    return snap;
}

void
SimtCore::restore(const Snapshot &snap)
{
    if (snap.warps.size() != warps_.size() ||
        snap.schedulers.size() != schedulers_.size() ||
        snap.curInstr.size() != curInstr_.size() ||
        snap.curInstrIdx.size() != curInstrIdx_.size())
        fatal("SimtCore: snapshot shape mismatch");
    bypassL1_ = snap.bypassL1;
    bypassL2_ = snap.bypassL2;
    warps_ = snap.warps;
    for (std::size_t s = 0; s < schedulers_.size(); ++s)
        schedulers_[s].restore(snap.schedulers[s]);
    // The decode cache and ready masks are copied, not re-derived:
    // they were consistent with the warp cursors when captured.
    curInstr_ = snap.curInstr;
    curInstrIdx_ = snap.curInstrIdx;
    l1_.restore(snap.l1);
    victimTags_.restore(snap.victimTags);
    localPending_ = snap.localPending;
    // Transient scratch: cleared before every use, never carried.
    fillScratch_.waiters.clear();
    instrsRetired_ = snap.instrsRetired;
    idleCycles_ = snap.idleCycles;
    memWaitCycles_ = snap.memWaitCycles;
    stallCycles_ = snap.stallCycles;
    lostLocality_ = snap.lostLocality;
}

} // namespace ebm
