#include "sim/warp_scheduler.hpp"

#include <algorithm>

#include "common/log.hpp"

namespace ebm {

WarpScheduler::WarpScheduler(std::vector<WarpId> warp_ids,
                             std::uint32_t tlp_limit)
    : warpIds_(std::move(warp_ids))
{
    if (warpIds_.empty())
        fatal("WarpScheduler: no warp contexts");
    tlpLimit_ = 1;
    setTlpLimit(tlp_limit);
}

void
WarpScheduler::setTlpLimit(std::uint32_t limit)
{
    const auto max_limit = static_cast<std::uint32_t>(warpIds_.size());
    tlpLimit_ = std::clamp<std::uint32_t>(limit, 1, max_limit);
}

std::vector<WarpId>
WarpScheduler::activeWarps() const
{
    return {warpIds_.begin(), warpIds_.begin() + tlpLimit_};
}

WarpId
WarpScheduler::pick(const std::function<bool(WarpId)> &is_ready)
{
    // Greedy: stick with the last-issued warp while it is both ready
    // and still within the SWL window.
    if (lastIssued_ != kNoWarp) {
        for (std::uint32_t i = 0; i < tlpLimit_; ++i) {
            if (warpIds_[i] == lastIssued_) {
                if (is_ready(lastIssued_))
                    return lastIssued_;
                break;
            }
        }
    }
    // Then oldest: age order equals position in warpIds_.
    for (std::uint32_t i = 0; i < tlpLimit_; ++i) {
        if (is_ready(warpIds_[i]))
            return warpIds_[i];
    }
    return kNoWarp;
}

} // namespace ebm
