#include "sim/warp_scheduler.hpp"

#include <algorithm>

#include "common/log.hpp"

namespace ebm {

WarpScheduler::WarpScheduler(std::vector<WarpId> warp_ids,
                             std::uint32_t tlp_limit)
    : warpIds_(std::move(warp_ids))
{
    if (warpIds_.empty())
        fatal("WarpScheduler: no warp contexts");
    if (warpIds_.size() > 64)
        fatal("WarpScheduler: at most 64 warp contexts per scheduler "
              "(ready-mask width)");
    tlpLimit_ = 1;
    setTlpLimit(tlp_limit);
}

void
WarpScheduler::setTlpLimit(std::uint32_t limit)
{
    const auto max_limit = static_cast<std::uint32_t>(warpIds_.size());
    tlpLimit_ = std::clamp<std::uint32_t>(limit, 1, max_limit);
}

std::uint32_t
WarpScheduler::positionOf(WarpId warp) const
{
    for (std::uint32_t i = 0; i < warpIds_.size(); ++i) {
        if (warpIds_[i] == warp)
            return i;
    }
    return kNoPos;
}

std::vector<WarpId>
WarpScheduler::activeWarps() const
{
    return {warpIds_.begin(), warpIds_.begin() + tlpLimit_};
}

WarpId
WarpScheduler::pickReady() const
{
    const std::uint64_t ready = readyMask_ & windowMask();
    if (ready == 0)
        return kNoWarp;
    // Greedy: stick with the last-issued warp while it is both ready
    // and still within the SWL window.
    if (lastPos_ < tlpLimit_ && (ready & (1ull << lastPos_)) != 0)
        return lastIssued_;
    // Then oldest: age order equals position in warpIds_.
    return warpIds_[std::countr_zero(ready)];
}

WarpId
WarpScheduler::pick(const std::function<bool(WarpId)> &is_ready)
{
    if (lastIssued_ != kNoWarp) {
        for (std::uint32_t i = 0; i < tlpLimit_; ++i) {
            if (warpIds_[i] == lastIssued_) {
                if (is_ready(lastIssued_))
                    return lastIssued_;
                break;
            }
        }
    }
    for (std::uint32_t i = 0; i < tlpLimit_; ++i) {
        if (is_ready(warpIds_[i]))
            return warpIds_[i];
    }
    return kNoWarp;
}

} // namespace ebm
