/**
 * @file
 * Per-warp execution state. A warp walks its procedural instruction
 * stream in order; loads add outstanding transactions; an instruction
 * flagged waitsForMem cannot issue until the warp's outstanding count
 * drains to zero (the scoreboard dependency that makes TLP the
 * latency-hiding knob).
 */
#pragma once

#include <cstdint>

#include "common/types.hpp"

namespace ebm {

/** Dynamic state of one warp context. */
struct WarpState
{
    std::uint64_t nextInstr = 0;   ///< Index into the warp program.
    std::uint32_t microIdx = 0;    ///< Transaction index within a load.
    std::uint32_t outstanding = 0; ///< In-flight memory transactions.
    /** Subset of outstanding that missed the L1 (off-chip latency). */
    std::uint32_t outstandingOffchip = 0;
    std::uint64_t streamPos = 0;   ///< Stream-category access counter.
    std::uint64_t instrsRetired = 0;

    /** Sentinel for stallGen: this warp is not known to be stalled. */
    static constexpr std::uint64_t kNoStall = ~std::uint64_t{0};
    /**
     * L1 generation (Cache::generation()) at which this warp's load
     * last hit an MSHR structural hazard. While the L1 still reports
     * that generation a retry is provably another Stall, so the issue
     * stage skips the attempt without recomputing the line address or
     * re-probing the cache. Generations are monotone, so a stale value
     * can never match again after the warp advances.
     */
    std::uint64_t stallGen = kNoStall;

    /** Reset every cursor for a fresh run, including streamPos: a
     *  relaunched kernel replays the identical access stream. */
    void
    reset()
    {
        nextInstr = 0;
        microIdx = 0;
        outstanding = 0;
        outstandingOffchip = 0;
        streamPos = 0;
        instrsRetired = 0;
        stallGen = kNoStall;
    }
};

} // namespace ebm
