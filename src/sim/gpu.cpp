#include "sim/gpu.hpp"

#include <numeric>
#include <string>

#include "common/log.hpp"

namespace ebm {

Gpu::Gpu(const GpuConfig &cfg, std::vector<AppProfile> apps,
         std::vector<std::uint32_t> core_share)
    : cfg_(cfg), apps_(std::move(apps)), amap_(cfg_), xbar_(cfg_)
{
    numApps_ = static_cast<std::uint32_t>(apps_.size());
    if (numApps_ == 0)
        fatal("Gpu: at least one application required");
    cfg_.numApps = numApps_;
    cfg_.validate();

    if (core_share.empty()) {
        core_share.assign(numApps_, cfg_.numCores / numApps_);
    }
    if (core_share.size() != numApps_)
        fatal("Gpu: core_share size mismatch");
    const std::uint32_t total = std::accumulate(
        core_share.begin(), core_share.end(), 0u);
    if (total != cfg_.numCores) {
        fatal("Gpu: core shares sum to " + std::to_string(total) +
              ", expected " + std::to_string(cfg_.numCores));
    }

    tracers_.reserve(numApps_);
    for (AppId app = 0; app < numApps_; ++app) {
        tracers_.push_back(std::make_unique<TraceGen>(
            apps_[app], cfg_.l1.lineBytes, appAddressBase(app)));
    }

    appCores_.resize(numApps_);
    cores_.reserve(cfg_.numCores);
    CoreId next_core = 0;
    for (AppId app = 0; app < numApps_; ++app) {
        for (std::uint32_t i = 0; i < core_share[app]; ++i) {
            cores_.push_back(std::make_unique<SimtCore>(
                cfg_, amap_, next_core, app, tracers_[app].get()));
            appCores_[app].push_back(next_core);
            ++next_core;
        }
    }

    partitions_.reserve(cfg_.numPartitions);
    for (PartitionId p = 0; p < cfg_.numPartitions; ++p) {
        partitions_.push_back(
            std::make_unique<MemoryPartition>(cfg_, amap_, numApps_));
    }

    // Scratch vectors are sized once here; the per-cycle loop only
    // clears and swaps them, never reallocates in steady state.
    respScratch_.reserve(cfg_.frfcfsQueueDepth);
    holdover_.reserve(cfg_.frfcfsQueueDepth);
    holdoverScratch_.reserve(cfg_.frfcfsQueueDepth);
}

void
Gpu::tick()
{
    ++now_;

    // Cores issue into the crossbar.
    for (auto &core : cores_)
        core->tickIssue(now_, xbar_);

    // Crossbar moves flits.
    xbar_.tick(now_);

    // Partitions drain the request network, tick L2+DRAM, and push
    // responses into the response network.
    for (PartitionId p = 0; p < partitions_.size(); ++p) {
        MemRequest req;
        // Eject at most one request per partition per cycle (one L2
        // port), respecting partition input-queue back-pressure.
        if (partitions_[p]->canAccept()) {
            if (xbar_.requestNet().tryEject(p, now_, req))
                partitions_[p]->deliver(req);
        }

        respScratch_.clear();
        partitions_[p]->tick(now_, respScratch_);
        for (const MemResponse &resp : respScratch_) {
            // Response network back-pressure: if the output queue is
            // full the response is retried via a local holdover.
            if (xbar_.responseNet().canAccept(p, resp.core)) {
                xbar_.responseNet().inject(p, resp.core, resp);
            } else {
                holdover_.push_back({resp, p});
            }
        }
    }

    // Retry responses that found the network full last cycle. The
    // port was captured when the response was first held over — it is
    // a pure function of the line address, so recomputing it through
    // the address map every retry cycle bought nothing.
    if (!holdover_.empty()) {
        holdoverScratch_.clear();
        for (const HeldResponse &held : holdover_) {
            if (xbar_.responseNet().canAccept(held.port,
                                              held.resp.core)) {
                xbar_.responseNet().inject(held.port, held.resp.core,
                                           held.resp);
            } else {
                holdoverScratch_.push_back(held);
            }
        }
        holdover_.swap(holdoverScratch_);
    }

    // Cores absorb responses and local completions.
    for (auto &core : cores_)
        core->tickResponses(now_, xbar_);
}

Cycle
Gpu::nextEventCycle() const
{
    if (!holdover_.empty())
        return now_ + 1;
    Cycle next = kNeverCycle;
    // Cores first: a ready warp is the common case, and the reduction
    // can stop as soon as anything wants the very next cycle.
    for (const auto &core : cores_) {
        const Cycle c = core->nextEventCycle(now_);
        if (c < next)
            next = c;
        if (next <= now_ + 1)
            return now_ + 1;
    }
    const Cycle x = xbar_.nextEventCycle(now_);
    if (x < next)
        next = x;
    if (next <= now_ + 1)
        return now_ + 1;
    for (const auto &part : partitions_) {
        const Cycle p = part->nextEventCycle(now_);
        if (p < next)
            next = p;
        if (next <= now_ + 1)
            return now_ + 1;
    }
    return next;
}

void
Gpu::fastForwardTo(Cycle target)
{
    const Cycle n = target - now_;
    for (auto &core : cores_)
        core->fastForward(n);
    // The crossbar holds no per-cycle state while its VOQs are empty
    // (in-flight arrivals are timestamped), so only the cores' idle
    // accounting and the partitions' DRAM clock need to move.
    for (auto &part : partitions_)
        part->fastForward(n);
    now_ = target;
    fastForwardedCycles_ += n;
}

void
Gpu::run(Cycle cycles)
{
    const Cycle end = now_ + cycles;
    if (!fastForward_) {
        while (now_ < end)
            tick();
        return;
    }
    while (now_ < end) {
        const Cycle next = nextEventCycle();
        // Every cycle strictly before `next` is provably a no-op
        // apart from idle accounting: skip to next-1, then simulate
        // the event cycle itself normally.
        Cycle target = next == kNeverCycle ? end : next - 1;
        if (target > end)
            target = end;
        if (target > now_)
            fastForwardTo(target);
        if (now_ < end)
            tick();
    }
}

void
Gpu::setAppTlp(AppId app, std::uint32_t warps_per_scheduler)
{
    for (CoreId id : appCores_[app])
        cores_[id]->setTlpLimit(warps_per_scheduler);
}

std::uint32_t
Gpu::appTlp(AppId app) const
{
    return cores_[appCores_[app].front()]->tlpLimit();
}

void
Gpu::setAppL1Bypass(AppId app, bool bypass)
{
    for (CoreId id : appCores_[app])
        cores_[id]->setL1Bypass(bypass);
}

void
Gpu::setAppL2Bypass(AppId app, bool bypass)
{
    for (CoreId id : appCores_[app])
        cores_[id]->setL2Bypass(bypass);
}

void
Gpu::setAppL2WayPartition(AppId app, std::uint32_t first,
                          std::uint32_t count)
{
    for (auto &part : partitions_)
        part->l2().tags().setWayPartition(app, first, count);
}

void
Gpu::restoreKnobDefaults()
{
    for (AppId app = 0; app < numApps_; ++app) {
        setAppTlp(app, cfg_.maxTlp());
        setAppL1Bypass(app, false);
        setAppL2Bypass(app, false);
        for (auto &part : partitions_)
            part->l2().tags().clearWayPartition(app);
    }
}

std::uint64_t
Gpu::appInstrs(AppId app) const
{
    std::uint64_t total = 0;
    for (CoreId id : appCores_[app])
        total += cores_[id]->instrsRetired();
    return total;
}

std::uint64_t
Gpu::appDataCycles(AppId app) const
{
    std::uint64_t total = 0;
    for (const auto &part : partitions_)
        total += part->dataCycles(app);
    return total;
}

double
Gpu::appL1MissRate(AppId app) const
{
    std::uint64_t accesses = 0;
    std::uint64_t misses = 0;
    for (CoreId id : appCores_[app]) {
        accesses += cores_[id]->l1().stats().accesses(app);
        misses += cores_[id]->l1().stats().misses(app);
    }
    if (accesses == 0)
        return 1.0;
    return static_cast<double>(misses) / static_cast<double>(accesses);
}

double
Gpu::appL2MissRate(AppId app) const
{
    std::uint64_t accesses = 0;
    std::uint64_t misses = 0;
    for (const auto &part : partitions_) {
        accesses += part->l2().stats().accesses(app);
        misses += part->l2().stats().misses(app);
    }
    if (accesses == 0)
        return 1.0;
    return static_cast<double>(misses) / static_cast<double>(accesses);
}

double
Gpu::appAttainedBw(AppId app) const
{
    if (now_ == 0)
        return 0.0;
    // Peak = every channel busy every DRAM cycle. Using DRAM cycles
    // elapsed on channel 0 as the common denominator (all channels
    // share one clock).
    const Cycle dram_cycles = partitions_.front()->dramCyclesElapsed();
    if (dram_cycles == 0)
        return 0.0;
    const double peak = static_cast<double>(dram_cycles) *
                        static_cast<double>(partitions_.size());
    return static_cast<double>(appDataCycles(app)) / peak;
}

double
Gpu::totalAttainedBw() const
{
    double total = 0.0;
    for (AppId app = 0; app < numApps_; ++app)
        total += appAttainedBw(app);
    return total;
}

double
Gpu::appIpc(AppId app) const
{
    if (now_ == 0)
        return 0.0;
    return static_cast<double>(appInstrs(app)) /
           static_cast<double>(now_);
}

void
Gpu::checkpoint()
{
    for (auto &core : cores_)
        core->checkpoint();
    for (auto &part : partitions_)
        part->checkpoint();
}

std::size_t
Gpu::Snapshot::heapBytes() const
{
    std::size_t n = cores.capacity() * sizeof(SimtCore::Snapshot) +
                    partitions.capacity() *
                        sizeof(MemoryPartition::Snapshot) +
                    holdover.capacity() * sizeof(HeldResponse) +
                    xbar.heapBytes();
    for (const SimtCore::Snapshot &c : cores)
        n += c.heapBytes();
    for (const MemoryPartition::Snapshot &p : partitions)
        n += p.heapBytes();
    return n;
}

Gpu::Snapshot
Gpu::snapshot() const
{
    Snapshot snap;
    snap.now = now_;
    snap.fastForward = fastForward_;
    snap.fastForwardedCycles = fastForwardedCycles_;
    snap.cores.reserve(cores_.size());
    for (const auto &core : cores_)
        snap.cores.push_back(core->snapshot());
    snap.xbar = xbar_.snapshot();
    snap.partitions.reserve(partitions_.size());
    for (const auto &part : partitions_)
        snap.partitions.push_back(part->snapshot());
    snap.holdover = holdover_;
    return snap;
}

void
Gpu::restore(const Snapshot &snap)
{
    if (snap.cores.size() != cores_.size() ||
        snap.partitions.size() != partitions_.size())
        fatal("Gpu: snapshot shape mismatch");
    now_ = snap.now;
    fastForward_ = snap.fastForward;
    fastForwardedCycles_ = snap.fastForwardedCycles;
    for (std::size_t i = 0; i < cores_.size(); ++i)
        cores_[i]->restore(snap.cores[i]);
    xbar_.restore(snap.xbar);
    for (std::size_t i = 0; i < partitions_.size(); ++i)
        partitions_[i]->restore(snap.partitions[i]);
    holdover_ = snap.holdover;
    // Scratch vectors are cleared before every use; leave them alone.
}

void
Gpu::reset(bool flush_caches)
{
    now_ = 0;
    fastForwardedCycles_ = 0;
    for (auto &core : cores_)
        core->reset(flush_caches);
    xbar_.clear();
    holdover_.clear();
    for (auto &part : partitions_)
        part->reset();
}

} // namespace ebm
