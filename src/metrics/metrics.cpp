#include "metrics/metrics.hpp"

#include <algorithm>
#include <limits>

#include "common/log.hpp"

namespace ebm {

namespace {

/** Guard against division by ~0 in metric ratios. */
constexpr double kTiny = 1e-12;

std::vector<double>
applyScale(const std::vector<double> &values,
           const std::vector<double> &scale)
{
    if (scale.empty())
        return values;
    if (scale.size() != values.size())
        fatal("metrics: scale vector size mismatch");
    std::vector<double> scaled(values.size());
    for (std::size_t i = 0; i < values.size(); ++i)
        scaled[i] = values[i] / std::max(scale[i], kTiny);
    return scaled;
}

/** min_{i,j} v_i / v_j for a vector of positives. */
double
minPairwiseRatio(const std::vector<double> &v)
{
    if (v.size() < 2)
        return 1.0;
    const double lo = *std::min_element(v.begin(), v.end());
    const double hi = *std::max_element(v.begin(), v.end());
    if (hi <= kTiny)
        return 1.0;
    return std::max(lo, 0.0) / hi;
}

double
harmonicMeanTimesN(const std::vector<double> &v)
{
    double inv_sum = 0.0;
    for (double x : v)
        inv_sum += 1.0 / std::max(x, kTiny);
    if (inv_sum <= kTiny)
        return 0.0;
    return static_cast<double>(v.size()) / inv_sum;
}

} // namespace

double
AppRunStats::eb() const
{
    return bw / std::max(cmr(), kTiny);
}

double
AppRunStats::ebAtL2() const
{
    return bw / std::max(l2Mr, kTiny);
}

double
slowdown(double ipc_shared, double ipc_alone)
{
    return ipc_shared / std::max(ipc_alone, kTiny);
}

double
weightedSpeedup(const std::vector<double> &sds)
{
    double sum = 0.0;
    for (double sd : sds)
        sum += sd;
    return sum;
}

double
fairnessIndex(const std::vector<double> &sds)
{
    return minPairwiseRatio(sds);
}

double
harmonicSpeedup(const std::vector<double> &sds)
{
    // Paper (2 apps): HS = 2 / (1/SD-1 + 1/SD-2); generalized to n.
    return harmonicMeanTimesN(sds);
}

double
ebWeightedSpeedup(const std::vector<double> &ebs)
{
    double sum = 0.0;
    for (double eb : ebs)
        sum += eb;
    return sum;
}

double
ebFairnessIndex(const std::vector<double> &ebs,
                const std::vector<double> &scale)
{
    return minPairwiseRatio(applyScale(ebs, scale));
}

double
ebHarmonicSpeedup(const std::vector<double> &ebs,
                  const std::vector<double> &scale)
{
    return harmonicMeanTimesN(applyScale(ebs, scale));
}

double
aloneRatioBias(double v0, double v1)
{
    const double m = v0 / std::max(v1, kTiny);
    return std::max(m, 1.0 / std::max(m, kTiny));
}

} // namespace ebm
