/**
 * @file
 * The paper's Table III metrics.
 *
 * SD-based (need alone-run information):
 *   SD  = IPC-Shared / IPC-Alone(bestTLP)
 *   WS  = sum of SDs                      (system throughput)
 *   FI  = min over pairs of SD_i/SD_j     (fairness; 1 = fair)
 *   HS  = n / sum(1/SD_i)                 (harmonic weighted speedup)
 *
 * EB-based (computable online, no alone information):
 *   BW    = attained DRAM bandwidth fraction
 *   CMR   = L1MR x L2MR
 *   EB    = BW / CMR
 *   EB-WS = sum of EBs
 *   EB-FI = min over pairs of EB_i/EB_j (optionally with scaling)
 *   EB-HS = n / sum(1/EB_i)
 */
#pragma once

#include <cstdint>
#include <vector>

namespace ebm {

/** Per-application observables of one (shared or alone) run. */
struct AppRunStats
{
    double ipc = 0.0;
    double bw = 0.0;     ///< Attained DRAM bandwidth fraction.
    double l1Mr = 1.0;   ///< L1 miss rate.
    double l2Mr = 1.0;   ///< L2 miss rate.

    /** Combined miss rate (Table III). */
    double cmr() const { return l1Mr * l2Mr; }

    /** Effective bandwidth observed by the cores. */
    double eb() const;

    /** Effective bandwidth observed by the L2 (one level down). */
    double ebAtL2() const;
};

/** Slowdown of one application vs its alone-bestTLP run. */
double slowdown(double ipc_shared, double ipc_alone);

/** Weighted speedup: sum of slowdowns. */
double weightedSpeedup(const std::vector<double> &sds);

/** Fairness index: min_{i,j} SD_i / SD_j (1 = perfectly fair). */
double fairnessIndex(const std::vector<double> &sds);

/** Harmonic weighted speedup: n / sum(1/SD_i). */
double harmonicSpeedup(const std::vector<double> &sds);

/** EB-WS: sum of per-app effective bandwidths. */
double ebWeightedSpeedup(const std::vector<double> &ebs);

/** EB-FI: min_{i,j} EB_i / EB_j after optional per-app scaling. */
double ebFairnessIndex(const std::vector<double> &ebs,
                       const std::vector<double> &scale = {});

/** EB-HS: n / sum(1/EB_i) after optional per-app scaling. */
double ebHarmonicSpeedup(const std::vector<double> &ebs,
                         const std::vector<double> &scale = {});

/**
 * Alone-ratio bias max(m, 1/m) of a two-element ratio m = v0/v1
 * (the paper's Figure 5 compares IPC_AR vs EB_AR this way).
 */
double aloneRatioBias(double v0, double v1);

} // namespace ebm
