/**
 * @file
 * A sampling-window snapshot of per-application effective bandwidth,
 * as produced by the hardware monitor (EbMonitor) or an offline run.
 */
#pragma once

#include <vector>

#include "common/types.hpp"
#include "metrics/metrics.hpp"

namespace ebm {

/** Per-application EB observation for one sampling window. */
struct EbSample
{
    /** Per-app runtime observables (ipc unused by the hardware). */
    std::vector<AppRunStats> apps;

    /** Sum of per-app attained bandwidth (utilization check). */
    double totalBw = 0.0;

    /** The TLP combination in force during the window. */
    std::vector<std::uint32_t> tlp;

    /** Per-app effective bandwidth values. */
    std::vector<double>
    ebs() const
    {
        std::vector<double> v;
        v.reserve(apps.size());
        for (const AppRunStats &a : apps)
            v.push_back(a.eb());
        return v;
    }
};

} // namespace ebm
