/**
 * @file
 * A sampling-window snapshot of per-application effective bandwidth,
 * as produced by the hardware monitor (EbMonitor) or an offline run.
 */
#pragma once

#include <cmath>
#include <vector>

#include "common/types.hpp"
#include "metrics/metrics.hpp"

namespace ebm {

/** Per-application EB observation for one sampling window. */
struct EbSample
{
    /** Per-app runtime observables (ipc unused by the hardware). */
    std::vector<AppRunStats> apps;

    /** Sum of per-app attained bandwidth (utilization check). */
    double totalBw = 0.0;

    /** The TLP combination in force during the window. */
    std::vector<std::uint32_t> tlp;

    /**
     * Set by the monitor when the window failed its sanity checks
     * (non-finite counters, or an application that went completely
     * idle — e.g. drained mid-search). Policies must not base TLP
     * decisions on a degraded sample; they freeze the last-good
     * decision instead.
     */
    bool degraded = false;

    /** Are all observables finite and within physical ranges? */
    bool
    sane() const
    {
        if (!std::isfinite(totalBw))
            return false;
        for (const AppRunStats &a : apps) {
            if (!std::isfinite(a.bw) || !std::isfinite(a.l1Mr) ||
                !std::isfinite(a.l2Mr))
                return false;
            if (a.bw < 0.0 || a.l1Mr < 0.0 || a.l2Mr < 0.0)
                return false;
        }
        return true;
    }

    /** Per-app effective bandwidth values. */
    std::vector<double>
    ebs() const
    {
        std::vector<double> v;
        v.reserve(apps.size());
        for (const AppRunStats &a : apps)
            v.push_back(a.eb());
        return v;
    }
};

} // namespace ebm
