/**
 * @file
 * The runtime TLP-management interface.
 *
 * A policy interacts with the GPU exactly the way the paper's hardware
 * does: at every sampling-window boundary it may read the monitor's
 * sample and re-program the warp-limiting schedulers. The harness
 * drives the windows; policies never see anything a real PBS block
 * could not.
 */
#pragma once

#include <cstdint>
#include <string>

#include "common/types.hpp"
#include "core/eb_sample.hpp"
#include "sim/gpu.hpp"

namespace ebm {

/** Base class of every runtime TLP-management scheme. */
class TlpPolicy
{
  public:
    virtual ~TlpPolicy() = default;

    /** Called once before the first cycle. */
    virtual void onRunStart(Gpu &gpu) = 0;

    /**
     * Called at the close of every sampling window with the monitor's
     * sample for that window (already subject to the monitor's relay
     * latency model — see the runner).
     */
    virtual void onWindow(Gpu &gpu, Cycle now, const EbSample &sample)
    {
        (void)gpu;
        (void)now;
        (void)sample;
    }

    /**
     * Kernel-relaunch notification (the paper restarts PBS when any
     * kernel is re-launched).
     */
    virtual void onKernelRelaunch(Gpu &gpu, Cycle now)
    {
        (void)gpu;
        (void)now;
    }

    /** Human-readable scheme name for tables. */
    virtual std::string name() const = 0;

    /** Samples consumed by searching (0 for static schemes). */
    virtual std::uint32_t samplesTaken() const { return 0; }

    /**
     * A policy returning true has its onRunStart deferred to the start
     * of the measurement span (the first window close at or after
     * warmup) instead of cycle 0. The warmup prefix then runs at
     * construction-default knobs for every such policy — which is what
     * lets the harness simulate that shared prefix once, snapshot it,
     * and fork per combination (see WarmStateCache). Only meaningful
     * for policies whose onWindow/onKernelRelaunch are no-ops while
     * not started (StaticTlpPolicy qualifies trivially).
     */
    virtual bool defersToMeasureStart() const { return false; }

    /**
     * True when onRunStart mutates only the policy's own state, never
     * the machine. The harness may then fork such a run from a warm
     * checkpoint at the first window close: the first window runs at
     * construction-default knobs either way.
     */
    virtual bool startIsGpuNeutral() const { return false; }
};

/** Fixed TLP combination applied at run start (bestTLP, maxTLP, opt*). */
class StaticTlpPolicy : public TlpPolicy
{
  public:
    StaticTlpPolicy(std::string name, TlpCombo combo)
        : name_(std::move(name)), combo_(std::move(combo))
    {
    }

    void
    onRunStart(Gpu &gpu) override
    {
        for (AppId app = 0; app < gpu.numApps(); ++app)
            gpu.setAppTlp(app, combo_[app]);
    }

    /**
     * The combo is applied at measure start, not at cycle 0: every
     * static combination then shares one default-knob warmup prefix,
     * which the harness simulates once and forks (the warmup span is
     * excluded from measurement for every scheme, so scores compare
     * exactly as before; cached results are invalidated via the
     * Runner fingerprint bump).
     */
    bool defersToMeasureStart() const override { return true; }

    std::string name() const override { return name_; }

    const TlpCombo &combo() const { return combo_; }

  private:
    std::string name_;
    TlpCombo combo_;
};

} // namespace ebm
