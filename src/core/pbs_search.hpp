/**
 * @file
 * Pattern-based searching (PBS) — the paper's Section V.
 *
 * PBS finds a near-optimal TLP combination in a handful of samples
 * instead of an exhaustive sweep, exploiting the observed *patterns*:
 * when shared resources are sufficiently utilized, the inflection
 * point of an EB-based metric sits at a fixed TLP level of the
 * *critical* application, independent of the co-runners' TLP.
 *
 * The search proceeds in three stages:
 *
 *  1. Probe: for each application, sweep its TLP over a small probe
 *     ladder (1, 2, 4, 8, ...) while pinning every other application
 *     at TLP=4 (high enough that the machine is not under-utilized —
 *     Guideline 1). For fairness/harmonic objectives with sampled
 *     scaling, an extra set of near-alone probes (app at 4, others at
 *     1) estimates each app's alone EB first.
 *  2. Analyze: for WS/HS the application whose TLP axis causes the
 *     largest drop in the objective is *critical* and is fixed at its
 *     pre-drop knee (refined by at most two extra samples when the
 *     knee falls between probe-ladder points). For FI the balance
 *     optimum lies on a diagonal ridge, so the critical application
 *     is instead the one whose axis reaches *closest to balance*,
 *     fixed at that level.
 *  3. Tune: walk the non-critical application's TLP up the full level
 *     ladder, keeping the best objective; WS/HS stop once the curve
 *     has clearly turned down (Guideline 2, with a one-step grace
 *     period for noise), FI sweeps the whole ladder because balance
 *     is not single-peaked along the axis.
 *
 * The class is a passive planner: callers (the online controller or
 * the offline driver) ask for the next combination to sample and feed
 * observations back, so the identical search logic is shared between
 * PBS and PBS(Offline).
 */
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/config.hpp"
#include "core/eb_sample.hpp"

namespace ebm {

/** Which EB-based metric a PBS instance optimizes. */
enum class EbObjective : std::uint8_t {
    WS, ///< Maximize EB-WS (sum of EBs).
    FI, ///< Maximize EB-FI (balance of scaled EBs).
    HS, ///< Maximize EB-HS (scaled harmonic mean).
};

/** How per-app EB scaling factors are obtained (Section IV). */
enum class ScalingMode : std::uint8_t {
    None,         ///< Raw EBs (the paper's WS configuration).
    UserGroup,    ///< Group-average alone EB supplied by the user.
    SampledAlone, ///< Probe each app with co-runners at TLP=1.
};

/** Pattern-based search planner. */
class PbsSearch
{
  public:
    /**
     * @param objective   EB metric to optimize
     * @param num_apps    number of co-scheduled applications
     * @param levels      full TLP level ladder (ascending)
     * @param scaling     scaling-factor mode (FI/HS only)
     * @param user_scale  per-app scale when scaling == UserGroup
     */
    PbsSearch(EbObjective objective, std::uint32_t num_apps,
              std::vector<std::uint32_t> levels, ScalingMode scaling,
              std::vector<double> user_scale = {});

    /** The combination to sample next; nullopt once finished. */
    std::optional<TlpCombo> nextCombo() const;

    /** Feed the sample observed for the current nextCombo(). */
    void observe(const EbSample &sample);

    /** Has the search converged (or given up — see failed())? */
    bool done() const { return stage_ == Stage::Done; }

    /**
     * True when the search aborted because too many consecutive
     * samples were invalid (degraded windows, non-finite EBs). best()
     * then returns the safe pin-level combination; callers holding a
     * better fallback (e.g. ++bestTLP) should apply that instead.
     */
    bool failed() const { return failed_; }

    /** Invalid samples ignored so far (degraded/non-finite). */
    std::uint32_t invalidSamples() const { return invalidSamples_; }

    /**
     * Consecutive invalid samples after which the search gives up
     * (done() turns true with failed() set).
     */
    static constexpr std::uint32_t kMaxConsecutiveInvalid = 16;

    /** The chosen combination (valid once done()). */
    const TlpCombo &best() const;

    /** Samples consumed so far (overhead accounting). */
    std::uint32_t samplesTaken() const { return samplesTaken_; }

    /** The application identified as critical (valid once done()). */
    AppId criticalApp() const { return criticalApp_; }

    /** Resolved per-app scaling factors (1.0s when ScalingMode::None). */
    const std::vector<double> &scaleFactors() const { return scale_; }

    /** Probe ladder used in stage 1 (subset of the full levels). */
    static std::vector<std::uint32_t>
    probeLadder(const std::vector<std::uint32_t> &levels);

  private:
    enum class Stage : std::uint8_t {
        ScaleProbe, ///< Near-alone probes (SampledAlone only).
        Probe,      ///< Per-app axis sweeps.
        Refine,     ///< Full-ladder levels around the probed knee.
        Tune,       ///< Non-critical app walk.
        Done,
    };

    /** Objective value of a sample under this search's metric. */
    double objectiveOf(const EbSample &sample) const;

    void buildScaleProbes();
    void buildProbes();
    void analyzeProbes();
    void beginRefine(double probed_best_value);
    void beginTune();
    void stepTune(double value);

    EbObjective objective_;
    std::uint32_t numApps_;
    std::vector<std::uint32_t> levels_;
    ScalingMode scaling_;
    std::vector<double> scale_;

    Stage stage_;
    std::vector<TlpCombo> plan_;       ///< Combos queued for sampling.
    std::size_t planPos_ = 0;
    std::uint32_t samplesTaken_ = 0;

    /** Probe observations: [app][ladder index] -> objective value. */
    std::vector<std::vector<double>> probeValues_;
    /** Probe observations: per-app EB along its own axis. */
    std::vector<std::vector<std::vector<double>>> probeEbs_;
    std::vector<std::uint32_t> probeLadder_;

    bool failed_ = false;
    std::uint32_t invalidSamples_ = 0;
    std::uint32_t consecutiveInvalid_ = 0;

    AppId criticalApp_ = kInvalidApp;
    std::uint32_t criticalLevel_ = 0;
    /** Refinement candidates and the best value seen so far. */
    std::vector<std::uint32_t> refineLevels_;
    std::size_t refinePos_ = 0;
    double refineBestValue_ = 0.0;
    /** Non-critical apps, tuned one at a time (multi-app support). */
    std::vector<AppId> tuneOrder_;
    std::size_t tuneAppIdx_ = 0;
    std::size_t tuneLevelIdx_ = 0;
    double tuneBestValue_ = 0.0;
    std::uint32_t tuneMisses_ = 0; ///< Consecutive non-improvements.
    TlpCombo current_;
    TlpCombo best_;
};

} // namespace ebm
