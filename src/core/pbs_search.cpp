#include "core/pbs_search.hpp"

#include <algorithm>
#include <cmath>

#include "common/log.hpp"

namespace ebm {

namespace {

/** The co-runner pin target during probing (Guideline 1). */
constexpr std::uint32_t kPinTarget = 4;

/** The ladder level closest to the probe pin target. */
std::uint32_t
pinLevel(const std::vector<std::uint32_t> &levels)
{
    std::uint32_t best = levels.front();
    for (std::uint32_t level : levels) {
        const auto dist = [](std::uint32_t a) {
            return a > kPinTarget ? a - kPinTarget : kPinTarget - a;
        };
        if (dist(level) < dist(best))
            best = level;
    }
    return best;
}

} // namespace

std::vector<std::uint32_t>
PbsSearch::probeLadder(const std::vector<std::uint32_t> &levels)
{
    // Geometric subset "1, 2, 4, 8, ..." of the configured ladder,
    // always including the top level.
    std::vector<std::uint32_t> ladder;
    std::uint32_t want = 1;
    for (std::uint32_t level : levels) {
        if (level >= want) {
            ladder.push_back(level);
            want = level * 2;
        }
    }
    if (!ladder.empty() && ladder.back() != levels.back())
        ladder.push_back(levels.back());
    return ladder;
}

PbsSearch::PbsSearch(EbObjective objective, std::uint32_t num_apps,
                     std::vector<std::uint32_t> levels,
                     ScalingMode scaling, std::vector<double> user_scale)
    : objective_(objective),
      numApps_(num_apps),
      levels_(std::move(levels)),
      scaling_(scaling),
      scale_(num_apps, 1.0)
{
    if (numApps_ < 2)
        fatal("PbsSearch: needs at least two applications");
    if (levels_.size() < 2)
        fatal("PbsSearch: needs at least two TLP levels");
    if (!std::is_sorted(levels_.begin(), levels_.end()))
        fatal("PbsSearch: levels must be ascending");

    if (scaling_ == ScalingMode::UserGroup) {
        if (user_scale.size() != numApps_)
            fatal("PbsSearch: user scale vector size mismatch");
        scale_ = std::move(user_scale);
    }

    probeLadder_ = probeLadder(levels_);
    probeValues_.assign(numApps_, {});
    probeEbs_.assign(numApps_, {});

    if (scaling_ == ScalingMode::SampledAlone) {
        stage_ = Stage::ScaleProbe;
        buildScaleProbes();
    } else {
        stage_ = Stage::Probe;
        buildProbes();
    }
}

void
PbsSearch::buildScaleProbes()
{
    // One near-alone probe per app: the app at the pin level, every
    // co-runner throttled to the quietest TLP so it interferes least.
    plan_.clear();
    planPos_ = 0;
    for (AppId app = 0; app < numApps_; ++app) {
        TlpCombo combo(numApps_, levels_.front());
        combo[app] = pinLevel(levels_);
        plan_.push_back(combo);
    }
}

void
PbsSearch::buildProbes()
{
    // For each app, sweep its axis over the probe ladder with every
    // other app pinned near the pin target.
    plan_.clear();
    planPos_ = 0;
    for (AppId app = 0; app < numApps_; ++app) {
        for (std::uint32_t level : probeLadder_) {
            TlpCombo combo(numApps_, pinLevel(levels_));
            combo[app] = level;
            plan_.push_back(combo);
        }
    }
}

std::optional<TlpCombo>
PbsSearch::nextCombo() const
{
    if (stage_ == Stage::Done)
        return std::nullopt;
    if (stage_ == Stage::Tune)
        return current_;
    if (stage_ == Stage::Refine) {
        TlpCombo combo(numApps_, pinLevel(levels_));
        combo[criticalApp_] = refineLevels_[refinePos_];
        return combo;
    }
    return plan_[planPos_];
}

double
PbsSearch::objectiveOf(const EbSample &sample) const
{
    const std::vector<double> ebs = sample.ebs();
    switch (objective_) {
      case EbObjective::WS:
        return ebWeightedSpeedup(ebs);
      case EbObjective::FI:
        return ebFairnessIndex(ebs, scale_);
      case EbObjective::HS:
        return ebHarmonicSpeedup(ebs, scale_);
    }
    panic("PbsSearch: unknown objective");
}

void
PbsSearch::observe(const EbSample &sample)
{
    ++samplesTaken_;

    // Degraded-mode guard: a window the monitor flagged, or one whose
    // observables are not finite, must not steer the search — the
    // planner stays on the same combination and waits for a usable
    // window. If the signal never recovers, give up and fall back to
    // the safe pin-level combination rather than spinning forever.
    if (stage_ != Stage::Done &&
        (sample.degraded || !sample.sane() ||
         !std::isfinite(objectiveOf(sample)))) {
        ++invalidSamples_;
        if (++consecutiveInvalid_ >= kMaxConsecutiveInvalid) {
            best_.assign(numApps_, pinLevel(levels_));
            failed_ = true;
            stage_ = Stage::Done;
        }
        return;
    }
    consecutiveInvalid_ = 0;

    switch (stage_) {
      case Stage::ScaleProbe: {
        const AppId app = static_cast<AppId>(planPos_);
        scale_[app] = std::max(sample.apps[app].eb(), 1e-9);
        ++planPos_;
        if (planPos_ >= plan_.size()) {
            stage_ = Stage::Probe;
            buildProbes();
        }
        return;
      }
      case Stage::Probe: {
        const std::size_t per_app = probeLadder_.size();
        const AppId app = static_cast<AppId>(planPos_ / per_app);
        probeValues_[app].push_back(objectiveOf(sample));
        probeEbs_[app].push_back(sample.ebs());
        ++planPos_;
        if (planPos_ >= plan_.size())
            analyzeProbes();
        return;
      }
      case Stage::Refine: {
        const double value = objectiveOf(sample);
        if (value > refineBestValue_) {
            refineBestValue_ = value;
            criticalLevel_ = refineLevels_[refinePos_];
        }
        ++refinePos_;
        if (refinePos_ >= refineLevels_.size())
            beginTune();
        return;
      }
      case Stage::Tune:
        stepTune(objectiveOf(sample));
        return;
      case Stage::Done:
        panic("PbsSearch: observe after completion");
    }
}

void
PbsSearch::analyzeProbes()
{
    // Criticality. For WS/HS: the app whose own TLP axis causes the
    // largest drop in the objective (the paper's sharp-drop signal).
    // For FI the balance optimum lies on a diagonal ridge, so the
    // drop signal can strand the search at an axis-aligned local
    // optimum; instead the critical app is the one whose axis gets
    // *closest to balance* — fixing it there lets the tune stage
    // finish the job along the other axis.
    double best_signal = -1.0;
    for (AppId app = 0; app < numApps_; ++app) {
        const auto &vals = probeValues_[app];
        double signal = 0.0;
        for (std::size_t i = 1; i < vals.size(); ++i) {
            const double delta = vals[i] - vals[i - 1];
            if (objective_ == EbObjective::FI)
                signal = std::max({signal, vals[i], vals[i - 1]});
            else
                signal = std::max(signal, -delta);
        }
        if (signal > best_signal) {
            best_signal = signal;
            criticalApp_ = app;
        }
    }

    // Critical level: the pre-inflection point (WS/HS) — the level
    // just before the largest drop; or the best-balance level (FI).
    const auto &vals = probeValues_[criticalApp_];
    if (objective_ == EbObjective::FI) {
        std::size_t best_idx = 0;
        for (std::size_t i = 1; i < vals.size(); ++i) {
            if (vals[i] > vals[best_idx])
                best_idx = i;
        }
        criticalLevel_ = probeLadder_[best_idx];
    } else {
        // The knee is the last level before the objective starts
        // falling — for a rise-then-fall curve that is the argmax
        // along the axis, and for a monotone curve it is the top
        // level (no inflection: this app never overwhelms resources).
        std::size_t best_idx = 0;
        for (std::size_t i = 1; i < vals.size(); ++i) {
            if (vals[i] > vals[best_idx])
                best_idx = i;
        }
        criticalLevel_ = probeLadder_[best_idx];
    }

    // The probe ladder is geometric, so the true knee may sit on a
    // full-ladder level between two probe points (e.g. 12 between 8
    // and 16): refine around the probed knee before tuning.
    std::size_t probe_idx = 0;
    for (std::size_t i = 0; i < probeLadder_.size(); ++i) {
        if (probeLadder_[i] == criticalLevel_)
            probe_idx = i;
    }
    beginRefine(probeValues_[criticalApp_][probe_idx]);
}

void
PbsSearch::beginRefine(double probed_best_value)
{
    const std::uint32_t lo =
        criticalLevel_ == probeLadder_.front()
            ? levels_.front()
            : *std::prev(std::find(probeLadder_.begin(),
                                   probeLadder_.end(),
                                   criticalLevel_));
    const std::uint32_t hi =
        criticalLevel_ == probeLadder_.back()
            ? levels_.back()
            : *std::next(std::find(probeLadder_.begin(),
                                   probeLadder_.end(),
                                   criticalLevel_));
    refineLevels_.clear();
    for (std::uint32_t level : levels_) {
        const bool inside = level > lo && level < hi &&
                            level != criticalLevel_;
        const bool probed =
            std::find(probeLadder_.begin(), probeLadder_.end(),
                      level) != probeLadder_.end();
        if (inside && !probed)
            refineLevels_.push_back(level);
    }
    refinePos_ = 0;
    refineBestValue_ = probed_best_value;
    if (refineLevels_.empty()) {
        beginTune();
        return;
    }
    stage_ = Stage::Refine;
}

void
PbsSearch::beginTune()
{
    // Tune order: remaining apps (for two-app workloads: the one
    // non-critical app).
    tuneOrder_.clear();
    for (AppId app = 0; app < numApps_; ++app) {
        if (app != criticalApp_)
            tuneOrder_.push_back(app);
    }
    tuneAppIdx_ = 0;
    tuneLevelIdx_ = 0;
    tuneBestValue_ = -1.0;
    tuneMisses_ = 0;

    current_.assign(numApps_, pinLevel(levels_));
    current_[criticalApp_] = criticalLevel_;
    current_[tuneOrder_[0]] = levels_[0];
    best_ = current_;
    stage_ = Stage::Tune;
}

void
PbsSearch::stepTune(double value)
{
    const AppId app = tuneOrder_[tuneAppIdx_];
    const bool improved = value > tuneBestValue_;
    if (improved) {
        tuneBestValue_ = value;
        best_ = current_;
        tuneMisses_ = 0;
    } else {
        ++tuneMisses_;
    }

    // Guideline 2: walking past the inflection only hurts, so stop
    // once the curve has clearly turned down; a one-step grace period
    // tolerates sampling noise and local dips. Balance objectives
    // (FI) are not single-peaked along the tune axis, so they sweep
    // the whole ladder and keep the argmax.
    ++tuneLevelIdx_;
    const bool exhausted = tuneLevelIdx_ >= levels_.size();
    const bool turned_down =
        objective_ != EbObjective::FI && tuneMisses_ >= 2;
    if (exhausted || turned_down) {
        // This app is settled at its best level; move to the next
        // non-critical app (multi-app extension), or finish.
        current_ = best_;
        ++tuneAppIdx_;
        if (tuneAppIdx_ >= tuneOrder_.size()) {
            stage_ = Stage::Done;
            return;
        }
        tuneLevelIdx_ = 0;
        tuneBestValue_ = -1.0;
        tuneMisses_ = 0;
        current_[tuneOrder_[tuneAppIdx_]] = levels_[0];
        return;
    }
    current_[app] = levels_[tuneLevelIdx_];
}

const TlpCombo &
PbsSearch::best() const
{
    if (stage_ != Stage::Done)
        panic("PbsSearch: best() before the search converged");
    return best_;
}

} // namespace ebm
