#include "core/pbs_policy.hpp"

#include "common/log.hpp"

namespace ebm {

std::string
PbsPolicy::name() const
{
    switch (params_.objective) {
      case EbObjective::WS:
        return "PBS-WS";
      case EbObjective::FI:
        return "PBS-FI";
      case EbObjective::HS:
        return "PBS-HS";
    }
    return "PBS-?";
}

TlpCombo
PbsPolicy::fallbackFor(const Gpu &gpu) const
{
    if (params_.fallbackCombo.size() == gpu.numApps())
        return params_.fallbackCombo;
    // No caller-supplied fallback: the Guideline-1 pin level keeps the
    // machine utilized without letting any app overwhelm it.
    const auto &levels = GpuConfig::tlpLevels();
    std::uint32_t pin = levels.front();
    for (std::uint32_t level : levels) {
        if (level <= 4)
            pin = level;
    }
    return TlpCombo(gpu.numApps(), pin);
}

void
PbsPolicy::abandonSearch(Gpu &gpu, Cycle now)
{
    ++searchesAbandoned_;
    warn("PbsPolicy: search did not converge within budget; falling "
         "back to the safe combination");
    apply(gpu, now, fallbackFor(gpu));
    search_.reset();
    windowsSinceConverged_ = 0;
}

void
PbsPolicy::startSearch(Gpu &gpu, Cycle now)
{
    pendingStart_ = false;
    search_ = std::make_unique<PbsSearch>(
        params_.objective, gpu.numApps(), GpuConfig::tlpLevels(),
        params_.scaling, params_.userScale);
    windowsSinceConverged_ = 0;
    windowsThisSearch_ = 0;
    if (const auto combo = search_->nextCombo()) {
        apply(gpu, now, *combo);
        ++combosVisited_;
    }
    beginSampleWindow();
}

void
PbsPolicy::beginSampleWindow()
{
    settleLeft_ = params_.settleWindows;
    accum_.clear();
}

void
PbsPolicy::apply(Gpu &gpu, Cycle now, const TlpCombo &combo)
{
    if (combo == applied_)
        return;
    applied_ = combo;
    for (AppId app = 0; app < gpu.numApps(); ++app)
        gpu.setAppTlp(app, combo[app]);
    timeline_.emplace_back(now, combo);
}

void
PbsPolicy::onRunStart(Gpu &gpu)
{
    // Gpu-neutral by contract (startIsGpuNeutral): the machine is not
    // touched here. The search — and its first probe combination — is
    // started at the first window close, so the first window runs at
    // default knobs and its sample is discarded (it measured no probe).
    (void)gpu;
    applied_.clear();
    timeline_.clear();
    samples_ = 0;
    combosVisited_ = 0;
    searchesAbandoned_ = 0;
    degradedWindows_ = 0;
    search_.reset();
    windowsSinceConverged_ = 0;
    pendingStart_ = true;
}

EbSample
PbsPolicy::averagedSample() const
{
    if (accum_.empty())
        panic("PbsPolicy: averaging with no windows accumulated");
    EbSample avg = accum_.front();
    const double n = static_cast<double>(accum_.size());
    for (std::size_t w = 1; w < accum_.size(); ++w) {
        avg.totalBw += accum_[w].totalBw;
        for (std::size_t a = 0; a < avg.apps.size(); ++a) {
            avg.apps[a].bw += accum_[w].apps[a].bw;
            avg.apps[a].l1Mr += accum_[w].apps[a].l1Mr;
            avg.apps[a].l2Mr += accum_[w].apps[a].l2Mr;
        }
    }
    avg.totalBw /= n;
    for (AppRunStats &a : avg.apps) {
        a.bw /= n;
        a.l1Mr /= n;
        a.l2Mr /= n;
    }
    return avg;
}

void
PbsPolicy::onWindow(Gpu &gpu, Cycle now, const EbSample &sample)
{
    if (pendingStart_) {
        // The window that just closed ran at default knobs; it carries
        // no probe signal, but it was still spent not-converged.
        pendingStart_ = false;
        ++samples_;
        startSearch(gpu, now);
        return;
    }

    if (search_ == nullptr) {
        // Converged and holding. Optionally restart the search
        // periodically to track phase changes.
        if (params_.reverifyWindows != 0 &&
            ++windowsSinceConverged_ >= params_.reverifyWindows) {
            startSearch(gpu, now);
        }
        return;
    }

    ++samples_; // Every window spent searching is overhead.

    // Watchdog: a search that cannot converge (degraded EB signal, an
    // app draining away mid-search) must not hold the machine on probe
    // combinations forever.
    if (params_.searchBudgetWindows != 0 &&
        ++windowsThisSearch_ > params_.searchBudgetWindows) {
        abandonSearch(gpu, now);
        return;
    }

    // Degraded windows carry no usable signal: freeze the current
    // decision and wait for the monitor to recover (the budget above
    // bounds how long).
    if (sample.degraded) {
        ++degradedWindows_;
        return;
    }

    // Multi-window sampling: discard settle windows after a TLP
    // change, then average the measurement windows.
    if (settleLeft_ > 0) {
        --settleLeft_;
        return;
    }
    accum_.push_back(sample);
    if (accum_.size() < params_.measureWindows)
        return;

    search_->observe(averagedSample());

    if (search_->done()) {
        if (search_->failed()) {
            abandonSearch(gpu, now);
            return;
        }
        apply(gpu, now, search_->best());
        search_.reset();
        windowsSinceConverged_ = 0;
        return;
    }
    if (const auto combo = search_->nextCombo()) {
        apply(gpu, now, *combo);
        ++combosVisited_;
    }
    beginSampleWindow();
}

void
PbsPolicy::onKernelRelaunch(Gpu &gpu, Cycle now)
{
    // The paper restarts PBS whenever any kernel is re-launched.
    startSearch(gpu, now);
}

} // namespace ebm
