#include "core/ccws.hpp"

namespace ebm {

namespace {

/** Step one level along the configured ladder. */
std::uint32_t
stepLevel(std::uint32_t level, int direction)
{
    const auto &levels = GpuConfig::tlpLevels();
    std::size_t idx = 0;
    for (std::size_t i = 0; i < levels.size(); ++i) {
        if (levels[i] <= level)
            idx = i;
    }
    if (direction > 0 && idx + 1 < levels.size())
        ++idx;
    else if (direction < 0 && idx > 0)
        --idx;
    return levels[idx];
}

} // namespace

Ccws::Ccws() : Ccws(Params{}) {}

Ccws::Ccws(const Params &params) : params_(params) {}

void
Ccws::onRunStart(Gpu &gpu)
{
    tlp_.assign(gpu.numApps(), params_.initialTlp);
    llki_.assign(gpu.numApps(), 0.0);
    for (AppId app = 0; app < gpu.numApps(); ++app)
        gpu.setAppTlp(app, tlp_[app]);
}

void
Ccws::onWindow(Gpu &gpu, Cycle, const EbSample &)
{
    for (AppId app = 0; app < gpu.numApps(); ++app) {
        std::uint64_t lost = 0, instrs = 0;
        for (CoreId id : gpu.coresOf(app)) {
            const SimtCore &core = gpu.core(id);
            lost += core.windowLostLocality();
            instrs += core.windowInstrsRetired();
        }
        if (instrs == 0)
            continue;
        llki_[app] = 1000.0 * static_cast<double>(lost) /
                     static_cast<double>(instrs);

        int direction = 0;
        if (llki_[app] > params_.llkiHigh)
            direction = -1; // Working sets thrash the L1: throttle.
        else if (llki_[app] < params_.llkiLow)
            direction = +1; // Cache is not the constraint.

        if (direction != 0) {
            tlp_[app] = stepLevel(tlp_[app], direction);
            gpu.setAppTlp(app, tlp_[app]);
        }
    }
}

} // namespace ebm
