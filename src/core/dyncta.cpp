#include "core/dyncta.hpp"

#include <algorithm>

namespace ebm {

DynCta::DynCta() : DynCta(Params{}) {}

DynCta::DynCta(const Params &params) : params_(params) {}

void
DynCta::onRunStart(Gpu &gpu)
{
    tlp_.assign(gpu.numApps(), params_.initialTlp);
    for (AppId app = 0; app < gpu.numApps(); ++app)
        gpu.setAppTlp(app, tlp_[app]);
    lastWindowEnd_ = 0;
}

std::uint32_t
DynCta::stepLevel(std::uint32_t level, int direction)
{
    const auto &levels = GpuConfig::tlpLevels();
    // Find the nearest configured level at or below, then step.
    std::size_t idx = 0;
    for (std::size_t i = 0; i < levels.size(); ++i) {
        if (levels[i] <= level)
            idx = i;
    }
    if (direction > 0 && idx + 1 < levels.size())
        ++idx;
    else if (direction < 0 && idx > 0)
        --idx;
    return levels[idx];
}

void
DynCta::onWindow(Gpu &gpu, Cycle now, const EbSample &)
{
    const Cycle window_len =
        now > lastWindowEnd_ ? now - lastWindowEnd_ : 1;
    lastWindowEnd_ = now;

    for (AppId app = 0; app < gpu.numApps(); ++app) {
        // Aggregate this app's cores over the window.
        std::uint64_t mem_wait = 0, stall = 0;
        for (CoreId id : gpu.coresOf(app)) {
            const SimtCore &core = gpu.core(id);
            mem_wait += core.windowMemWaitCycles();
            stall += core.windowStallCycles();
        }
        const auto n_cores =
            static_cast<double>(gpu.coresOf(app).size());
        const double denom =
            static_cast<double>(window_len) * std::max(n_cores, 1.0);
        const double stall_frac = static_cast<double>(stall) / denom;
        const double mem_frac = static_cast<double>(mem_wait) / denom;

        int direction = 0;
        if (stall_frac > params_.stallHigh) {
            direction = -1; // Congested: back off.
        } else if (stall_frac < params_.stallLow &&
                   mem_frac < params_.memWaitHigh) {
            direction = +1; // Headroom: expose more parallelism.
        }

        if (direction != 0) {
            tlp_[app] = stepLevel(tlp_[app], direction);
            gpu.setAppTlp(app, tlp_[app]);
        }
    }
}

} // namespace ebm
