#include "core/mod_bypass.hpp"

namespace ebm {

ModBypass::ModBypass() : ModBypass(Params{}) {}

ModBypass::ModBypass(const Params &params)
    : params_(params), modulator_(params.modulation)
{
}

void
ModBypass::onRunStart(Gpu &gpu)
{
    modulator_.onRunStart(gpu);
    bypass_.assign(gpu.numApps(), false);
    probing_.assign(gpu.numApps(), false);
    evidence_.assign(gpu.numApps(), 0);
    windowCount_ = 0;
}

void
ModBypass::applyBypass(Gpu &gpu, AppId app, bool enable)
{
    gpu.setAppL1Bypass(app, enable);
    gpu.setAppL2Bypass(app, enable);
}

void
ModBypass::onWindow(Gpu &gpu, Cycle now, const EbSample &sample)
{
    modulator_.onWindow(gpu, now, sample);
    ++windowCount_;

    for (AppId app = 0; app < gpu.numApps(); ++app) {
        const bool insensitive =
            sample.apps[app].l1Mr > params_.bypassL1MrThreshold &&
            sample.apps[app].l2Mr > params_.bypassL2MrThreshold;

        if (probing_[app]) {
            // This window ran without the bypass: the sample shows
            // the app's true cache affinity. Re-decide directly.
            probing_[app] = false;
            bypass_[app] = insensitive;
            applyBypass(gpu, app, insensitive);
            evidence_[app] = 0;
            continue;
        }

        if (bypass_[app]) {
            // Samples taken under the bypass read as fully
            // insensitive by construction; lift the bypass
            // periodically to re-measure.
            if (windowCount_ % params_.probePeriod == 0) {
                probing_[app] = true;
                applyBypass(gpu, app, false);
            }
            continue;
        }

        if (!insensitive) {
            evidence_[app] = 0;
            continue;
        }
        // Require sustained evidence before enabling, so one noisy
        // window does not flap the bypass.
        if (++evidence_[app] >= params_.confirmWindows) {
            bypass_[app] = true;
            evidence_[app] = 0;
            applyBypass(gpu, app, true);
        }
    }
}

} // namespace ebm
