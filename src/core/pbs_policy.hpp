/**
 * @file
 * The runtime PBS mechanism (paper Figure 8): drives a PbsSearch over
 * live sampling windows, then holds the chosen TLP combination until a
 * kernel relaunch restarts the search. All runtime overheads — windows
 * spent measuring sub-optimal combinations, the monitor's relay
 * latency (one-window-delayed actions), and the re-searches after
 * relaunches — are inherent in this driving loop, matching the paper's
 * claim that "all the runtime overheads are modeled".
 */
#pragma once

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "core/pbs_search.hpp"
#include "core/tlp_policy.hpp"

namespace ebm {

/** Online pattern-based-searching TLP manager. */
class PbsPolicy : public TlpPolicy
{
  public:
    struct Params
    {
        EbObjective objective = EbObjective::WS;
        ScalingMode scaling = ScalingMode::None;
        /** Per-app group-average alone EB (UserGroup scaling). */
        std::vector<double> userScale;
        /**
         * After convergence, re-verify the held combination every this
         * many windows by re-running the tune stage (0 = never). This
         * provides the runtime adaptivity visible in the paper's
         * Figure 11 timelines.
         */
        std::uint32_t reverifyWindows = 0;
        /**
         * Windows discarded after each TLP change before measuring
         * (in-flight state from the previous combination pollutes the
         * first window).
         */
        std::uint32_t settleWindows = 0;
        /**
         * Windows averaged per search sample. Ratio objectives (FI)
         * are noisy on single windows; averaging 2-3 windows costs
         * search time but prevents noise-driven convergence to poor
         * combinations.
         */
        std::uint32_t measureWindows = 1;
        /**
         * Watchdog: windows a single search may consume before it is
         * declared non-converging and abandoned (0 = unbounded). A
         * search can stall when the EB signal degrades (NaN relays,
         * an app draining mid-search); the watchdog guarantees the
         * machine ends up on a sane combination regardless.
         */
        std::uint32_t searchBudgetWindows = 0;
        /**
         * Combination applied when a search is abandoned. Callers
         * with profiling data pass ++bestTLP; when empty, the safe
         * pin-level (TLP=4-ish, Guideline 1) combination is used.
         */
        TlpCombo fallbackCombo;
    };

    explicit PbsPolicy(Params params) : params_(std::move(params)) {}

    void onRunStart(Gpu &gpu) override;
    void onWindow(Gpu &gpu, Cycle now, const EbSample &sample) override;
    void onKernelRelaunch(Gpu &gpu, Cycle now) override;

    /**
     * onRunStart only resets the policy's counters and arms the
     * search; the first probe combination is applied at the first
     * window close. The first window therefore runs at default knobs
     * — the same trajectory for every PBS variant — so the harness
     * can fork PBS runs from a shared warm checkpoint there.
     */
    bool startIsGpuNeutral() const override { return true; }

    std::string name() const override;

    /** Sampling windows consumed by searching (overhead accounting). */
    std::uint32_t samplesTaken() const override { return samples_; }

    /** Distinct TLP combinations the search visited. */
    std::uint32_t combosVisited() const { return combosVisited_; }

    /** Has the search settled on a combination? */
    bool converged() const { return search_ == nullptr && !pendingStart_; }

    /** Searches abandoned by the watchdog (fallback applied). */
    std::uint32_t searchesAbandoned() const { return searchesAbandoned_; }

    /** Degraded windows skipped while searching. */
    std::uint32_t degradedWindows() const { return degradedWindows_; }

    /** The combination currently applied. */
    const TlpCombo &currentCombo() const { return applied_; }

    /** (cycle, combo) trace of every TLP change (paper Figure 11). */
    const std::vector<std::pair<Cycle, TlpCombo>> &timeline() const
    {
        return timeline_;
    }

  private:
    void startSearch(Gpu &gpu, Cycle now);
    void apply(Gpu &gpu, Cycle now, const TlpCombo &combo);
    void abandonSearch(Gpu &gpu, Cycle now);
    TlpCombo fallbackFor(const Gpu &gpu) const;

    /** Aggregate the accumulated windows into one averaged sample. */
    EbSample averagedSample() const;
    void beginSampleWindow();

    Params params_;
    std::unique_ptr<PbsSearch> search_;
    /** Armed by onRunStart; the first window close starts the search. */
    bool pendingStart_ = false;
    TlpCombo applied_;
    std::uint32_t samples_ = 0;
    std::uint32_t combosVisited_ = 0;
    std::uint32_t windowsSinceConverged_ = 0;
    std::uint32_t windowsThisSearch_ = 0;
    std::uint32_t searchesAbandoned_ = 0;
    std::uint32_t degradedWindows_ = 0;
    std::vector<std::pair<Cycle, TlpCombo>> timeline_;

    // Multi-window sampling state for the current probe combo.
    std::uint32_t settleLeft_ = 0;
    std::vector<EbSample> accum_;
};

} // namespace ebm
