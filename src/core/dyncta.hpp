/**
 * @file
 * DynCTA-style dynamic TLP modulation (Kayiran et al.), the paper's
 * ++DynCTA baseline.
 *
 * DynCTA is a purely *local* heuristic: each application watches its
 * own cores' idle and memory-waiting cycles and nudges its TLP up when
 * cores starve for ready warps, down when warps pile up on memory. It
 * never looks at the co-runner's resource consumption — which is
 * exactly why the paper finds it inferior to PBS in multi-application
 * settings.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "core/tlp_policy.hpp"

namespace ebm {

/** Per-application DynCTA modulation. */
class DynCta : public TlpPolicy
{
  public:
    /**
     * Tunable thresholds (fractions of the sampling window).
     *
     * The scheme equilibrates on the *congestion* signal: the
     * fraction of cycles a ready warp was blocked by downstream
     * back-pressure. Lowering TLP genuinely reduces that fraction
     * (fewer requests in flight), so — unlike raw memory-wait time,
     * which stays high for any memory-bound kernel at any TLP — it
     * yields a stable operating point instead of a throttle-to-one
     * death spiral.
     */
    struct Params
    {
        double stallHigh = 0.25;  ///< Above: decrease TLP.
        double stallLow = 0.08;   ///< Below: room to increase.
        double memWaitHigh = 0.95;///< Pure latency wall: hold.
        std::uint32_t initialTlp = 8;
    };

    DynCta();
    explicit DynCta(const Params &params);

    void onRunStart(Gpu &gpu) override;
    void onWindow(Gpu &gpu, Cycle now, const EbSample &sample) override;

    std::string name() const override { return "++DynCTA"; }

  private:
    /** Move one step along the level ladder. @return new level. */
    static std::uint32_t stepLevel(std::uint32_t level, int direction);

    Params params_;
    std::vector<std::uint32_t> tlp_;
    Cycle lastWindowEnd_ = 0;
};

} // namespace ebm
