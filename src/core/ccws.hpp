/**
 * @file
 * A CCWS-style cache-conscious TLP limiter, the second single-
 * application runtime mechanism the paper cites for establishing
 * bestTLP at runtime (alongside DynCTA).
 *
 * Cache-conscious wavefront scheduling observes *lost locality*:
 * L1 misses to lines that were recently evicted (detected with a
 * victim tag array). A high lost-locality score means the active
 * warps' working sets exceed the L1 — throttling TLP would turn
 * those misses back into hits. A low score means the cache is not
 * the constraint and more parallelism can be exposed.
 *
 * Like DynCTA, the signal is purely local — the scheme never sees the
 * co-runner's resource consumption, which is why it cannot find the
 * cooperative TLP combinations PBS finds.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "core/tlp_policy.hpp"

namespace ebm {

/** Per-application CCWS-style lost-locality TLP modulation. */
class Ccws : public TlpPolicy
{
  public:
    /** Thresholds on lost-locality per kilo-instruction (LLKI). */
    struct Params
    {
        double llkiHigh = 6.0; ///< Above: throttle TLP down.
        double llkiLow = 1.0;  ///< Below: restore parallelism.
        std::uint32_t initialTlp = 8;
    };

    Ccws();
    explicit Ccws(const Params &params);

    void onRunStart(Gpu &gpu) override;
    void onWindow(Gpu &gpu, Cycle now, const EbSample &sample) override;

    std::string name() const override { return "++CCWS"; }

    /** Last windowed lost-locality-per-kilo-instruction per app. */
    double lastLlki(AppId app) const { return llki_[app]; }

  private:
    Params params_;
    std::vector<std::uint32_t> tlp_;
    std::vector<double> llki_;
};

} // namespace ebm
