/**
 * @file
 * The hardware EB sampling mechanism of the paper's Figure 8.
 *
 * To keep overheads low, the paper samples (a) the L1 miss rate from
 * one *designated core* per application, and (b) each application's
 * attained bandwidth and L2 miss rate from one *designated memory
 * partition*, exploiting the observed uniformity of miss rates and
 * bandwidth across units. The sampled values are relayed over the
 * crossbar with a modeled latency, so a window's sample only becomes
 * visible to the PBS mechanism after that delay.
 *
 * A "full" mode that aggregates every core and partition is provided
 * for validating the designated-unit approximation (unit tested).
 */
#pragma once

#include <cstdint>
#include <vector>

#include "common/fault_injector.hpp"
#include "common/types.hpp"
#include "core/eb_sample.hpp"
#include "sim/gpu.hpp"

namespace ebm {

/** Per-application runtime EB sampler. */
class EbMonitor
{
  public:
    /** How much of the machine the monitor reads. */
    enum class Mode {
        DesignatedUnits, ///< One core per app + one partition (paper).
        FullMachine,     ///< Aggregate everything (validation).
    };

    /**
     * @param gpu            machine to observe
     * @param mode           sampling scope
     * @param relay_latency  core cycles to relay counters to the cores
     * @param injector       optional fault injection (tests only)
     */
    EbMonitor(const Gpu &gpu, Mode mode, Cycle relay_latency = 100,
              FaultInjector *injector = nullptr);

    /**
     * Close the current sampling window at time @p now and return the
     * sample. The caller must subsequently call beginWindow() (via the
     * Gpu checkpoint) before the next window.
     */
    EbSample closeWindow(Cycle now);

    /** Cycle at which the sample closed at @p now becomes usable. */
    Cycle sampleReadyAt(Cycle closed_at) const
    {
        return closed_at + relayLatency_;
    }

    Cycle relayLatency() const { return relayLatency_; }
    Mode mode() const { return mode_; }

    /**
     * Static hardware cost accounting (paper Section V-E): storage
     * bits per core and per memory partition, bits relayed per window,
     * and sampling-table bytes. Used by the overheads bench.
     */
    struct HardwareCost
    {
        std::uint32_t bitsPerCore;
        std::uint32_t bitsPerPartition;
        std::uint32_t relayBitsPerWindow;
        std::uint32_t samplingTableBytes;
    };
    static HardwareCost hardwareCost(std::uint32_t num_apps);

    /**
     * Windows whose raw counters failed validation (non-finite values
     * or a fully idle application). Such windows are returned with
     * `degraded` set and the last good window's observables, so a
     * transient glitch never propagates NaN into a TLP decision.
     */
    std::uint64_t invalidWindows() const { return invalidWindows_; }

    /**
     * The monitor's own mutable state: the window-start DRAM mark, the
     * degraded-mode fallback sample, and the invalid-window tally. The
     * observed machine is snapshotted separately (Gpu::snapshot); a
     * restored monitor must be re-pointed at the restored machine by
     * constructing it against that Gpu and then restoring this.
     */
    struct Snapshot
    {
        Cycle dramMark = 0;
        EbSample lastGood;
        std::uint64_t invalidWindows = 0;
    };

    Snapshot
    snapshot() const
    {
        return Snapshot{dramMark_, lastGood_, invalidWindows_};
    }

    void
    restore(const Snapshot &snap)
    {
        dramMark_ = snap.dramMark;
        lastGood_ = snap.lastGood;
        invalidWindows_ = snap.invalidWindows;
    }

  private:
    /** Validate @p sample; degrade and patch it if it is not sane. */
    void guardSample(EbSample &sample);

    const Gpu &gpu_;
    Mode mode_;
    Cycle relayLatency_;
    FaultInjector *injector_;
    /** DRAM cycles at the start of the current window. */
    Cycle dramMark_ = 0;
    /** Last window that passed validation (degraded-mode fallback). */
    EbSample lastGood_;
    std::uint64_t invalidWindows_ = 0;
};

} // namespace ebm
