#include "core/eb_monitor.hpp"

#include <cmath>
#include <limits>

namespace ebm {

EbMonitor::EbMonitor(const Gpu &gpu, Mode mode, Cycle relay_latency,
                     FaultInjector *injector)
    : gpu_(gpu), mode_(mode), relayLatency_(relay_latency),
      injector_(injector)
{
}

EbSample
EbMonitor::closeWindow(Cycle)
{
    const std::uint32_t num_apps = gpu_.numApps();
    EbSample sample;
    sample.apps.resize(num_apps);
    sample.tlp.resize(num_apps);

    // Window length in DRAM cycles, for bandwidth normalization.
    const Cycle dram_now = gpu_.partition(0).dramCyclesElapsed();
    const Cycle dram_window = dram_now > dramMark_ ? dram_now - dramMark_
                                                   : 0;
    dramMark_ = dram_now;

    for (AppId app = 0; app < num_apps; ++app) {
        AppRunStats &out = sample.apps[app];
        sample.tlp[app] = gpu_.appTlp(app);

        if (mode_ == Mode::DesignatedUnits) {
            // (a) L1 miss rate from the app's designated (first) core.
            const SimtCore &core = gpu_.core(gpu_.coresOf(app).front());
            out.l1Mr = core.l1().stats().windowMissRate(app);

            // (b) L2 miss rate and attained BW from partition 0,
            //     scaled up by the partition count (the paper observes
            //     uniform distribution across partitions).
            const MemoryPartition &part = gpu_.partition(0);
            out.l2Mr = part.l2().stats().windowMissRate(app);
            const double data = static_cast<double>(
                part.windowDataCycles(app));
            out.bw = dram_window == 0
                         ? 0.0
                         : data / static_cast<double>(dram_window);
        } else {
            // Aggregate window deltas across every core and partition.
            std::uint64_t l1a = 0, l1m = 0, l2a = 0, l2m = 0, data = 0;
            for (CoreId id : gpu_.coresOf(app)) {
                const CacheStats &s = gpu_.core(id).l1().stats();
                l1a += s.windowAccesses(app);
                l1m += s.windowMisses(app);
            }
            for (PartitionId p = 0; p < gpu_.numPartitions(); ++p) {
                const MemoryPartition &part = gpu_.partition(p);
                l2a += part.l2().stats().windowAccesses(app);
                l2m += part.l2().stats().windowMisses(app);
                data += part.windowDataCycles(app);
            }
            out.l1Mr = l1a == 0 ? 1.0
                                : static_cast<double>(l1m) /
                                      static_cast<double>(l1a);
            out.l2Mr = l2a == 0 ? 1.0
                                : static_cast<double>(l2m) /
                                      static_cast<double>(l2a);
            const double denom = static_cast<double>(dram_window) *
                                 gpu_.numPartitions();
            out.bw = denom == 0.0 ? 0.0
                                  : static_cast<double>(data) / denom;
        }
        sample.totalBw += out.bw;
    }

    // Injected sensor faults (robustness tests): a NaN relay glitch,
    // a zeroed counter bank, or one application draining to idle.
    if (injector_ != nullptr && num_apps > 0) {
        using P = FaultInjector::Point;
        if (injector_->shouldFire(P::EbSampleNan)) {
            AppRunStats &a = sample.apps[0];
            a.bw = std::numeric_limits<double>::quiet_NaN();
            a.l1Mr = std::numeric_limits<double>::quiet_NaN();
            sample.totalBw = std::numeric_limits<double>::quiet_NaN();
        }
        if (injector_->shouldFire(P::EbSampleZero)) {
            for (AppRunStats &a : sample.apps)
                a = AppRunStats{0.0, 0.0, 1.0, 1.0};
            sample.totalBw = 0.0;
        }
        if (injector_->shouldFire(P::AppDrain)) {
            // A drained app has no traffic: zero BW, and the zero-
            // access miss-rate convention (1.0) everywhere.
            AppRunStats &a = sample.apps[num_apps - 1];
            sample.totalBw -= a.bw;
            a = AppRunStats{0.0, 0.0, 1.0, 1.0};
        }
    }

    guardSample(sample);
    return sample;
}

void
EbMonitor::guardSample(EbSample &sample)
{
    // An application with zero attained bandwidth *and* the
    // zero-access miss-rate convention at both levels issued no
    // memory traffic at all this window — it has drained (or stalled
    // completely). Its EB is meaningless, so the window must not
    // steer the search.
    bool idle_app = false;
    for (const AppRunStats &a : sample.apps) {
        if (a.bw == 0.0 && a.l1Mr >= 1.0 && a.l2Mr >= 1.0)
            idle_app = true;
    }

    if (sample.sane() && !idle_app) {
        lastGood_ = sample;
        lastGood_.degraded = false;
        return;
    }

    ++invalidWindows_;
    // Freeze: hand back the last good observables (flagged) so any
    // consumer that does read the numbers sees finite, physical
    // values instead of NaN. Before the first good window, fall back
    // to harmless zeros.
    const std::vector<std::uint32_t> tlp = sample.tlp;
    if (lastGood_.apps.size() == sample.apps.size()) {
        sample = lastGood_;
    } else {
        for (AppRunStats &a : sample.apps)
            a = AppRunStats{0.0, 0.0, 1.0, 1.0};
        sample.totalBw = 0.0;
    }
    sample.tlp = tlp;
    sample.degraded = true;
}

EbMonitor::HardwareCost
EbMonitor::hardwareCost(std::uint32_t num_apps)
{
    // Paper Section V-E: two 32-bit registers per core (L1 accesses
    // and misses); per partition, three 32-bit registers (L2 accesses,
    // misses, data cycles) and one 5-bit TLP register, per app; one
    // 16-entry sampling table of two EB values each (64 bytes).
    HardwareCost cost;
    cost.bitsPerCore = 2 * 32;
    cost.bitsPerPartition = num_apps * (3 * 32 + 5);
    cost.relayBitsPerWindow = num_apps * 3 * 32;
    cost.samplingTableBytes = 64;
    return cost;
}

} // namespace ebm
