#include "core/eb_monitor.hpp"

namespace ebm {

EbMonitor::EbMonitor(const Gpu &gpu, Mode mode, Cycle relay_latency)
    : gpu_(gpu), mode_(mode), relayLatency_(relay_latency)
{
}

EbSample
EbMonitor::closeWindow(Cycle)
{
    const std::uint32_t num_apps = gpu_.numApps();
    EbSample sample;
    sample.apps.resize(num_apps);
    sample.tlp.resize(num_apps);

    // Window length in DRAM cycles, for bandwidth normalization.
    const Cycle dram_now = gpu_.partition(0).dramCyclesElapsed();
    const Cycle dram_window = dram_now > dramMark_ ? dram_now - dramMark_
                                                   : 0;
    dramMark_ = dram_now;

    for (AppId app = 0; app < num_apps; ++app) {
        AppRunStats &out = sample.apps[app];
        sample.tlp[app] = gpu_.appTlp(app);

        if (mode_ == Mode::DesignatedUnits) {
            // (a) L1 miss rate from the app's designated (first) core.
            const SimtCore &core = gpu_.core(gpu_.coresOf(app).front());
            out.l1Mr = core.l1().stats().windowMissRate(app);

            // (b) L2 miss rate and attained BW from partition 0,
            //     scaled up by the partition count (the paper observes
            //     uniform distribution across partitions).
            const MemoryPartition &part = gpu_.partition(0);
            out.l2Mr = part.l2().stats().windowMissRate(app);
            const double data = static_cast<double>(
                part.windowDataCycles(app));
            out.bw = dram_window == 0
                         ? 0.0
                         : data / static_cast<double>(dram_window);
        } else {
            // Aggregate window deltas across every core and partition.
            std::uint64_t l1a = 0, l1m = 0, l2a = 0, l2m = 0, data = 0;
            for (CoreId id : gpu_.coresOf(app)) {
                const CacheStats &s = gpu_.core(id).l1().stats();
                l1a += s.windowAccesses(app);
                l1m += s.windowMisses(app);
            }
            for (PartitionId p = 0; p < gpu_.numPartitions(); ++p) {
                const MemoryPartition &part = gpu_.partition(p);
                l2a += part.l2().stats().windowAccesses(app);
                l2m += part.l2().stats().windowMisses(app);
                data += part.windowDataCycles(app);
            }
            out.l1Mr = l1a == 0 ? 1.0
                                : static_cast<double>(l1m) /
                                      static_cast<double>(l1a);
            out.l2Mr = l2a == 0 ? 1.0
                                : static_cast<double>(l2m) /
                                      static_cast<double>(l2a);
            const double denom = static_cast<double>(dram_window) *
                                 gpu_.numPartitions();
            out.bw = denom == 0.0 ? 0.0
                                  : static_cast<double>(data) / denom;
        }
        sample.totalBw += out.bw;
    }
    return sample;
}

EbMonitor::HardwareCost
EbMonitor::hardwareCost(std::uint32_t num_apps)
{
    // Paper Section V-E: two 32-bit registers per core (L1 accesses
    // and misses); per partition, three 32-bit registers (L2 accesses,
    // misses, data cycles) and one 5-bit TLP register, per app; one
    // 16-entry sampling table of two EB values each (64 bytes).
    HardwareCost cost;
    cost.bitsPerCore = 2 * 32;
    cost.bitsPerPartition = num_apps * (3 * 32 + 5);
    cost.relayBitsPerWindow = num_apps * 3 * 32;
    cost.samplingTableBytes = 64;
    return cost;
}

} // namespace ebm
