/**
 * @file
 * The Mod+Bypass comparison scheme: DynCTA-style TLP modulation
 * combined with cache bypassing for the application that does not
 * benefit from caching. The paper credits its improvement over
 * ++DynCTA to the bypass reducing shared-cache contention, while still
 * falling short of PBS because it ignores memory-bandwidth consumption
 * and the combined effect of co-runner TLP choices.
 *
 * Implementation: each window, an application whose observed L2 miss
 * rate is above a threshold (streaming / cache-insensitive) has its
 * requests bypass both cache levels' allocation paths, leaving the
 * capacity to the cache-sensitive co-runner.
 */
#pragma once

#include <vector>

#include "core/dyncta.hpp"
#include "core/tlp_policy.hpp"

namespace ebm {

/** TLP modulation plus per-application cache bypassing. */
class ModBypass : public TlpPolicy
{
  public:
    struct Params
    {
        DynCta::Params modulation;
        /**
         * An app is cache-insensitive — and worth bypassing — only
         * when *both* cache levels fail it: a cache-friendly app
         * under heavy co-runner pressure can show a high L2 miss
         * rate while still hitting in its private L1.
         */
        double bypassL1MrThreshold = 0.90;
        double bypassL2MrThreshold = 0.85;
        /** Windows of evidence before enabling the bypass. */
        std::uint32_t confirmWindows = 2;
        /**
         * While bypassing, miss rates read 1.0 by construction, so
         * the decision cannot be revisited from live samples alone.
         * Every probePeriod windows the bypass is lifted for one
         * window to re-measure the app's true cache affinity.
         */
        std::uint32_t probePeriod = 8;
    };

    ModBypass();
    explicit ModBypass(const Params &params);

    void onRunStart(Gpu &gpu) override;
    void onWindow(Gpu &gpu, Cycle now, const EbSample &sample) override;

    std::string name() const override { return "Mod+Bypass"; }

    /** Whether @p app currently bypasses the caches. */
    bool bypassing(AppId app) const { return bypass_[app]; }

  private:
    void applyBypass(Gpu &gpu, AppId app, bool enable);

    Params params_;
    DynCta modulator_;
    std::vector<bool> bypass_;
    std::vector<bool> probing_;
    std::vector<std::uint32_t> evidence_;
    std::uint32_t windowCount_ = 0;
};

} // namespace ebm
