#include "workload/app_catalog.hpp"

#include "common/log.hpp"

namespace ebm {

namespace {

/** Convenience builder for the table below. */
AppProfile
make(const std::string &name, std::uint32_t seed,
     std::uint32_t mlp_burst, std::uint32_t compute_run,
     double f_l1, double f_l2, double f_rand,
     std::uint32_t l1_lines, std::uint32_t l2_lines,
     std::uint32_t rand_lines_per_access, std::uint32_t stores = 0)
{
    AppProfile p;
    p.name = name;
    p.seed = seed;
    p.mlpBurst = mlp_burst;
    p.computeRun = compute_run;
    p.fracL1Reuse = f_l1;
    p.fracL2Reuse = f_l2;
    p.fracRandom = f_rand;
    p.l1ReuseLines = l1_lines;
    p.l2ReuseLines = l2_lines;
    p.randomLinesPerAccess = rand_lines_per_access;
    p.storesPerLoop = stores;
    return p;
}

/**
 * The catalog. Columns:
 *   name seed mlpBurst computeRun fracL1 fracL2 fracRandom
 *   l1ReuseLines l2ReuseLines randomLinesPerAccess
 *
 * Behavioural archetypes (per the paper's descriptions and the source
 * suites' well-known characteristics):
 *  - compute-bound, light memory:        LUD NW HISTO SAD QTC RED SCAN
 *  - pure streaming, cache-insensitive:  BLK TRD SCP CONS FWT LUH
 *  - streaming + some L2 reuse:          JPEG LIB CFD SRAD BP LPS SC HS
 *  - cache-sensitive (L1+L2 reuse):      BFS FFT DS RAY
 *  - uncoalesced random:                 GUPS
 */
const std::vector<AppProfile> &
buildCatalog()
{
    static const std::vector<AppProfile> catalog = {
        // --- Compute-bound group (low EB: G1) -----------------------
        make("LUD", 101, 1, 30, 0.60, 0.00, 0.00, 8, 1024, 1),
        make("NW", 102, 1, 24, 0.50, 0.10, 0.00, 8, 1024, 1),
        make("HISTO", 103, 2, 28, 0.55, 0.15, 0.00, 12, 2048, 1),
        make("SAD", 104, 2, 22, 0.50, 0.10, 0.00, 12, 1024, 1),
        make("QTC", 105, 2, 20, 0.10, 0.10, 0.30, 8, 2048, 2),
        make("RED", 106, 2, 18, 0.20, 0.00, 0.00, 8, 1024, 1, 1),
        make("SCAN", 107, 2, 16, 0.25, 0.05, 0.00, 8, 1024, 1, 1),
        make("GUPS", 108, 4, 6, 0.00, 0.00, 0.90, 8, 1024, 4),

        // --- Streaming group (medium EB: G2) ------------------------
        make("BLK", 201, 4, 6, 0.00, 0.00, 0.00, 8, 1024, 1, 1),
        make("TRD", 202, 6, 8, 0.00, 0.00, 0.00, 8, 1024, 1, 3),
        make("SCP", 203, 4, 8, 0.00, 0.05, 0.00, 8, 1024, 1, 1),
        make("CONS", 204, 3, 10, 0.10, 0.05, 0.00, 8, 1024, 1, 1),
        make("FWT", 205, 4, 7, 0.00, 0.10, 0.00, 8, 2048, 1, 1),
        make("LUH", 206, 3, 9, 0.05, 0.10, 0.00, 8, 2048, 1, 1),

        // --- Mixed stream + L2-reuse group (G3) ----------------------
        make("JPEG", 301, 4, 8, 0.10, 0.45, 0.00, 12, 3072, 1),
        make("LIB", 302, 3, 8, 0.10, 0.40, 0.00, 12, 2048, 1),
        make("CFD", 303, 4, 10, 0.15, 0.35, 0.00, 12, 3072, 1),
        make("SRAD", 304, 3, 10, 0.20, 0.30, 0.00, 12, 2048, 1, 1),
        make("BP", 305, 3, 12, 0.20, 0.30, 0.00, 12, 2048, 1, 1),
        make("LPS", 306, 3, 8, 0.25, 0.35, 0.00, 16, 2048, 1, 1),
        make("SC", 307, 3, 9, 0.15, 0.35, 0.00, 12, 2048, 1),
        make("HS", 308, 3, 11, 0.25, 0.30, 0.00, 16, 2048, 1, 1),

        // --- Cache-sensitive group (high EB: G4) ---------------------
        make("BFS", 401, 4, 6, 0.55, 0.30, 0.05, 24, 4096, 1),
        make("FFT", 402, 4, 7, 0.40, 0.40, 0.00, 20, 4096, 1, 1),
        make("DS", 403, 4, 8, 0.50, 0.35, 0.00, 24, 4096, 1),
        make("RAY", 404, 3, 9, 0.45, 0.35, 0.00, 20, 3072, 1),
    };
    return catalog;
}

} // namespace

const std::vector<AppProfile> &
appCatalog()
{
    return buildCatalog();
}

bool
hasApp(const std::string &name)
{
    for (const AppProfile &p : appCatalog()) {
        if (p.name == name)
            return true;
    }
    return false;
}

const AppProfile &
findApp(const std::string &name)
{
    for (const AppProfile &p : appCatalog()) {
        if (p.name == name)
            return p;
    }
    fatal("appCatalog: unknown application '" + name + "'");
}

} // namespace ebm
