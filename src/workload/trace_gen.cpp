#include "workload/trace_gen.hpp"

#include "common/log.hpp"
#include "common/rng.hpp"

namespace ebm {

TraceGen::TraceGen(const AppProfile &profile, std::uint32_t line_bytes,
                   Addr base)
    : profile_(profile), lineBytes_(line_bytes), base_(base)
{
    if (profile.mlpBurst == 0)
        fatal("TraceGen: mlpBurst must be >= 1");
    if (profile.fracStream() < -1e-9)
        fatal("TraceGen: access-category fractions exceed 1 for " +
              profile.name);
    loopLen_ = profile.mlpBurst + 1 + profile.computeRun +
               profile.storesPerLoop;
}

InstrDesc
TraceGen::instrAt(std::uint64_t idx) const
{
    const std::uint64_t pos = idx % loopLen_;
    InstrDesc instr;
    if (pos < profile_.mlpBurst) {
        instr.isLoad = true;
        // Category is a deterministic draw keyed by (app seed, idx).
        const double u = hashToUnit(hashIds(profile_.seed, idx, 0x10ad));
        if (u < profile_.fracL1Reuse) {
            instr.category = AccessCategory::L1Reuse;
        } else if (u < profile_.fracL1Reuse + profile_.fracL2Reuse) {
            instr.category = AccessCategory::L2Reuse;
        } else if (u < profile_.fracL1Reuse + profile_.fracL2Reuse +
                           profile_.fracRandom) {
            instr.category = AccessCategory::Random;
            instr.numLines = profile_.randomLinesPerAccess;
        } else {
            instr.category = AccessCategory::Stream;
        }
        return instr;
    }
    if (pos == profile_.mlpBurst) {
        // The consumer of the preceding load burst.
        instr.waitsForMem = true;
        return instr;
    }
    if (pos >= static_cast<std::uint64_t>(profile_.mlpBurst) + 1 +
                   profile_.computeRun) {
        // Trailing write-through stores of the loop's results.
        instr.isStore = true;
    }
    return instr;
}

Addr
TraceGen::lineAddr(std::uint64_t gwarp, std::uint64_t idx,
                   std::uint32_t line_idx, std::uint64_t stream_pos,
                   const InstrDesc &instr) const
{
    const std::uint64_t h =
        hashIds(profile_.seed, gwarp, idx, line_idx);
    Addr offset = 0;

    if (instr.isStore) {
        // Stores stream the loop's results into a per-warp output
        // region; the address is a pure function of the loop
        // iteration so no warp state is needed.
        const std::uint64_t iter = idx / loopLen_;
        const std::uint64_t pos_in_stores =
            idx % loopLen_ -
            (profile_.mlpBurst + 1 + profile_.computeRun);
        const std::uint64_t origin =
            hashIds(profile_.seed, gwarp, 0x3702);
        const std::uint64_t line =
            (origin + iter * profile_.storesPerLoop + pos_in_stores) %
            profile_.streamRegionLines;
        return base_ + kWriteBase + gwarp * kStreamStride +
               line * lineBytes_;
    }
    switch (instr.category) {
      case AccessCategory::L1Reuse:
        // The extra gwarp-scaled line offset staggers per-warp regions
        // across cache sets; a pure power-of-two stride would alias
        // every warp's working set onto the same few sets.
        offset = kPrivateBase + gwarp * kPrivateStride +
                 (gwarp * 7 % 256) * lineBytes_ +
                 (h % profile_.l1ReuseLines) * lineBytes_;
        break;
      case AccessCategory::L2Reuse:
        offset = kSharedBase + (h % profile_.l2ReuseLines) * lineBytes_;
        break;
      case AccessCategory::Random:
        offset = kRandomBase +
                 (h % profile_.randomRegionLines) * lineBytes_;
        break;
      case AccessCategory::Stream: {
        // Each warp streams from its own hashed origin: real kernels
        // assign different data blocks to different warps, and the
        // stagger keeps concurrent streams from sweeping the memory
        // partitions in phase-locked waves.
        const std::uint64_t origin =
            hashIds(profile_.seed, gwarp, 0x57f);
        offset = kStreamBase + gwarp * kStreamStride +
                 ((origin + stream_pos) % profile_.streamRegionLines) *
                     lineBytes_;
        break;
      }
    }
    return base_ + offset;
}

} // namespace ebm
