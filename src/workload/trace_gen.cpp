#include "workload/trace_gen.hpp"

#include "common/rng.hpp"

namespace ebm {

TraceGen::TraceGen(const AppProfile &profile, std::uint32_t line_bytes,
                   Addr base)
    : art_(TraceArtifact::obtain(profile, line_bytes)),
      lineBytes_(line_bytes), base_(base)
{
}

Addr
TraceGen::lineAddr(std::uint64_t gwarp, std::uint64_t idx,
                   std::uint32_t line_idx, std::uint64_t stream_pos,
                   const InstrDesc &instr) const
{
    const AppProfile &profile = art_->profile();
    const std::uint64_t h = hashIds(profile.seed, gwarp, idx, line_idx);
    Addr offset = 0;

    if (instr.isStore) {
        // Stores stream the loop's results into a per-warp output
        // region; the address is a pure function of the loop
        // iteration so no warp state is needed.
        const std::uint32_t loop_len = art_->loopLength();
        const std::uint64_t iter = idx / loop_len;
        const std::uint64_t pos_in_stores =
            idx % loop_len -
            (profile.mlpBurst + 1 + profile.computeRun);
        const std::uint64_t origin = art_->storeOrigin(gwarp);
        const std::uint64_t line =
            (origin + iter * profile.storesPerLoop + pos_in_stores) %
            profile.streamRegionLines;
        return base_ + kWriteBase + gwarp * kStreamStride +
               line * lineBytes_;
    }
    switch (instr.category) {
      case AccessCategory::L1Reuse:
        // The extra gwarp-scaled line offset staggers per-warp regions
        // across cache sets; a pure power-of-two stride would alias
        // every warp's working set onto the same few sets.
        offset = kPrivateBase + gwarp * kPrivateStride +
                 (gwarp * 7 % 256) * lineBytes_ +
                 (h % profile.l1ReuseLines) * lineBytes_;
        break;
      case AccessCategory::L2Reuse:
        offset = kSharedBase + (h % profile.l2ReuseLines) * lineBytes_;
        break;
      case AccessCategory::Random:
        offset = kRandomBase +
                 (h % profile.randomRegionLines) * lineBytes_;
        break;
      case AccessCategory::Stream: {
        // Each warp streams from its own hashed origin: real kernels
        // assign different data blocks to different warps, and the
        // stagger keeps concurrent streams from sweeping the memory
        // partitions in phase-locked waves.
        const std::uint64_t origin = art_->streamOrigin(gwarp);
        offset = kStreamBase + gwarp * kStreamStride +
                 ((origin + stream_pos) % profile.streamRegionLines) *
                     lineBytes_;
        break;
      }
    }
    return base_ + offset;
}

} // namespace ebm
