/**
 * @file
 * Immutable, process-wide shared per-application trace state.
 *
 * Everything a TraceGen derives from its profile alone — the loop
 * length, the decoded instruction table, and the per-warp address
 * origin hashes — is a pure function of (AppProfile, line size). A
 * sweep constructs thousands of Gpus over the same handful of apps, so
 * rebuilding that state per run (or rehashing it per memory access) is
 * pure redundancy. A TraceArtifact is built once per distinct
 * (profile, line size) pair per process, held const behind a
 * shared_ptr, and shared by every TraceGen across all pooled Gpus and
 * worker threads.
 *
 * The tables are *accelerators*, never the definition: instrAt and the
 * origin hashes are still computed from first principles past the
 * table bounds, so results are bit-identical to the table-free code
 * for any index (the golden-digest tests pin this).
 */
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/types.hpp"
#include "workload/app_profile.hpp"

namespace ebm {

/** One decoded warp instruction. */
struct InstrDesc
{
    bool isLoad = false;
    /** Write-through store (fire-and-forget; no warp waits on it). */
    bool isStore = false;
    /** Must all pending loads of this warp complete before issue? */
    bool waitsForMem = false;
    /** Distinct cache lines touched (loads only). */
    std::uint32_t numLines = 1;
    AccessCategory category = AccessCategory::Stream;
};

/** Shared immutable derived state for one (profile, line size). */
class TraceArtifact
{
  public:
    /**
     * Fetch (or build) the artifact for @p profile at @p line_bytes
     * from the process-wide registry. Thread safe; validates the
     * profile (fatal on an impossible instruction mix) exactly as the
     * historical TraceGen constructor did.
     */
    static std::shared_ptr<const TraceArtifact>
    obtain(const AppProfile &profile, std::uint32_t line_bytes);

    /** Entries in the process-wide registry (diagnostics/tests). */
    static std::size_t registrySize();

    const AppProfile &profile() const { return profile_; }
    std::uint32_t lineBytes() const { return lineBytes_; }

    /** Length of one iteration of the warp program. */
    std::uint32_t loopLength() const { return loopLen_; }

    /** Decode the instruction at @p idx (table hit or recompute). */
    InstrDesc
    instrAt(std::uint64_t idx) const
    {
        if (idx < decode_.size())
            return decode_[idx];
        return decodeAt(idx);
    }

    /** Per-warp stream-origin hash (table hit or recompute). */
    std::uint64_t
    streamOrigin(std::uint64_t gwarp) const
    {
        if (gwarp < streamOrigin_.size())
            return streamOrigin_[gwarp];
        return computeStreamOrigin(gwarp);
    }

    /** Per-warp store-origin hash (table hit or recompute). */
    std::uint64_t
    storeOrigin(std::uint64_t gwarp) const
    {
        if (gwarp < storeOrigin_.size())
            return storeOrigin_[gwarp];
        return computeStoreOrigin(gwarp);
    }

    /** First-principles decode (the pre-table TraceGen::instrAt). */
    InstrDesc decodeAt(std::uint64_t idx) const;

  private:
    TraceArtifact(const AppProfile &profile, std::uint32_t line_bytes);

    std::uint64_t computeStreamOrigin(std::uint64_t gwarp) const;
    std::uint64_t computeStoreOrigin(std::uint64_t gwarp) const;

    AppProfile profile_;
    std::uint32_t lineBytes_;
    std::uint32_t loopLen_;

    /**
     * Decoded instructions for idx < kDecodeEntries. The category of
     * a load is a draw keyed by the *full* index (not idx mod loop),
     * so the table cannot simply hold one loop iteration; it covers
     * the index prefix every short-window run actually touches, with
     * the exact recompute as fallback.
     */
    std::vector<InstrDesc> decode_;
    std::vector<std::uint64_t> streamOrigin_; ///< gwarp-indexed.
    std::vector<std::uint64_t> storeOrigin_;  ///< gwarp-indexed.

    static constexpr std::size_t kDecodeEntries = 1 << 14;
    static constexpr std::size_t kOriginEntries = 1 << 11;
};

} // namespace ebm
