/**
 * @file
 * Characterization of one synthetic GPGPU application.
 *
 * The paper evaluates 26 CUDA applications (Rodinia, Parboil, CUDA
 * SDK, SHOC). We cannot ship those binaries or their GPGPU-Sim traces,
 * so each application is replaced by a *procedural profile*: a small
 * set of parameters (memory intensity, per-warp working sets, reuse
 * mix, coalescing, memory-level parallelism) from which a
 * deterministic per-warp instruction stream is generated. The
 * TLP-vs-{IPC, BW, CMR, EB} shapes the paper's mechanisms exploit are
 * functions of exactly these parameters, so the substitution preserves
 * the behaviour under study (see DESIGN.md section 2).
 */
#pragma once

#include <cstdint>
#include <string>

namespace ebm {

/** Where a load's address is drawn from. */
enum class AccessCategory : std::uint8_t {
    L1Reuse,  ///< Per-warp private working set (L1-sized reuse).
    L2Reuse,  ///< Application-shared structure (L2-sized reuse).
    Stream,   ///< Per-warp sequential stream (row-friendly, no reuse).
    Random,   ///< Huge-region random access (cache/row hostile).
};

/** Parameters of one synthetic application. */
struct AppProfile
{
    std::string name;   ///< Paper abbreviation, e.g. "BFS".
    std::uint32_t seed = 0; ///< Deterministic stream seed.

    // --- Instruction mix ---------------------------------------------
    /**
     * The warp program repeats: [mlpBurst loads] [1 dependent compute
     * that waits for all pending loads] [computeRun computes]
     * [storesPerLoop stores]. Memory intensity
     * r_m = (mlpBurst + storesPerLoop) / loop length.
     */
    std::uint32_t mlpBurst = 4;
    std::uint32_t computeRun = 8;
    /**
     * Write-through stores per loop iteration (fire-and-forget: they
     * consume interconnect and DRAM bandwidth but no warp waits on
     * them). Streaming kernels like triad are read/write mixes.
     */
    std::uint32_t storesPerLoop = 0;

    // --- Load address mix (fractions sum to <= 1; remainder: Stream) --
    double fracL1Reuse = 0.0;
    double fracL2Reuse = 0.0;
    double fracRandom = 0.0;

    // --- Working-set geometry (in cache lines) -------------------------
    std::uint32_t l1ReuseLines = 16;     ///< Per-warp private set.
    std::uint32_t l2ReuseLines = 4096;   ///< App-shared structure.
    std::uint32_t streamRegionLines = 1u << 18; ///< Per-warp stream wrap.
    std::uint32_t randomRegionLines = 1u << 24; ///< Random region.

    // --- Coalescing ----------------------------------------------------
    /** Distinct cache lines touched by one Random-category load. */
    std::uint32_t randomLinesPerAccess = 1;

    /** Memory intensity r_m implied by the instruction mix. */
    double
    memFraction() const
    {
        return static_cast<double>(mlpBurst + storesPerLoop) /
               static_cast<double>(mlpBurst + 1 + computeRun +
                                   storesPerLoop);
    }

    double fracStream() const
    {
        return 1.0 - fracL1Reuse - fracL2Reuse - fracRandom;
    }

    bool operator==(const AppProfile &) const = default;
};

} // namespace ebm
