#include "workload/trace_artifact.hpp"

#include <mutex>

#include "common/log.hpp"
#include "common/rng.hpp"

namespace ebm {

namespace {

/** Process-wide artifact registry (a handful of catalog entries). */
struct Registry
{
    std::mutex mu;
    std::vector<std::shared_ptr<const TraceArtifact>> artifacts;
};

Registry &
registry()
{
    static Registry reg;
    return reg;
}

} // namespace

std::shared_ptr<const TraceArtifact>
TraceArtifact::obtain(const AppProfile &profile,
                      std::uint32_t line_bytes)
{
    Registry &reg = registry();
    std::lock_guard<std::mutex> lk(reg.mu);
    // Linear scan with full equality: the registry holds tens of
    // entries (the catalog), and an exact compare can never alias two
    // profiles the way a hash-only key could.
    for (const auto &art : reg.artifacts) {
        if (art->lineBytes_ == line_bytes && art->profile_ == profile)
            return art;
    }
    std::shared_ptr<const TraceArtifact> art(
        new TraceArtifact(profile, line_bytes));
    reg.artifacts.push_back(art);
    return art;
}

std::size_t
TraceArtifact::registrySize()
{
    Registry &reg = registry();
    std::lock_guard<std::mutex> lk(reg.mu);
    return reg.artifacts.size();
}

TraceArtifact::TraceArtifact(const AppProfile &profile,
                             std::uint32_t line_bytes)
    : profile_(profile), lineBytes_(line_bytes)
{
    // Validation lives here (not in TraceGen) so an invalid profile
    // fails before it can enter the shared registry. Messages keep
    // the historical "TraceGen:" prefix.
    if (profile.mlpBurst == 0)
        fatal("TraceGen: mlpBurst must be >= 1");
    if (profile.fracStream() < -1e-9)
        fatal("TraceGen: access-category fractions exceed 1 for " +
              profile.name);
    loopLen_ = profile.mlpBurst + 1 + profile.computeRun +
               profile.storesPerLoop;

    decode_.resize(kDecodeEntries);
    for (std::size_t i = 0; i < decode_.size(); ++i)
        decode_[i] = decodeAt(i);

    streamOrigin_.resize(kOriginEntries);
    storeOrigin_.resize(kOriginEntries);
    for (std::size_t g = 0; g < kOriginEntries; ++g) {
        streamOrigin_[g] = computeStreamOrigin(g);
        storeOrigin_[g] = computeStoreOrigin(g);
    }
}

InstrDesc
TraceArtifact::decodeAt(std::uint64_t idx) const
{
    const std::uint64_t pos = idx % loopLen_;
    InstrDesc instr;
    if (pos < profile_.mlpBurst) {
        instr.isLoad = true;
        // Category is a deterministic draw keyed by (app seed, idx).
        const double u = hashToUnit(hashIds(profile_.seed, idx, 0x10ad));
        if (u < profile_.fracL1Reuse) {
            instr.category = AccessCategory::L1Reuse;
        } else if (u < profile_.fracL1Reuse + profile_.fracL2Reuse) {
            instr.category = AccessCategory::L2Reuse;
        } else if (u < profile_.fracL1Reuse + profile_.fracL2Reuse +
                           profile_.fracRandom) {
            instr.category = AccessCategory::Random;
            instr.numLines = profile_.randomLinesPerAccess;
        } else {
            instr.category = AccessCategory::Stream;
        }
        return instr;
    }
    if (pos == profile_.mlpBurst) {
        // The consumer of the preceding load burst.
        instr.waitsForMem = true;
        return instr;
    }
    if (pos >= static_cast<std::uint64_t>(profile_.mlpBurst) + 1 +
                   profile_.computeRun) {
        // Trailing write-through stores of the loop's results.
        instr.isStore = true;
    }
    return instr;
}

std::uint64_t
TraceArtifact::computeStreamOrigin(std::uint64_t gwarp) const
{
    return hashIds(profile_.seed, gwarp, 0x57f);
}

std::uint64_t
TraceArtifact::computeStoreOrigin(std::uint64_t gwarp) const
{
    return hashIds(profile_.seed, gwarp, 0x3702);
}

} // namespace ebm
