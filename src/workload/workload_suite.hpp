/**
 * @file
 * The evaluated multi-application workloads.
 *
 * The paper studies 25 two-application workloads spanning 16
 * applications, and reports per-workload numbers for 10 representative
 * pairs (Figs. 4, 9, 10). We keep the representative list verbatim and
 * complete the suite to 25 pairs drawn from the same 16 apps with a
 * spread of group combinations.
 */
#pragma once

#include <string>
#include <vector>

#include "workload/app_profile.hpp"

namespace ebm {

/** A named multi-application workload. */
struct Workload
{
    std::string name;                    ///< e.g. "BFS_FFT".
    std::vector<std::string> appNames;   ///< Catalog abbreviations.
};

/** The 10 representative two-app workloads (paper Figs. 4/9/10). */
const std::vector<Workload> &representativeWorkloads();

/** The full 25-pair evaluated suite. */
const std::vector<Workload> &fullSuite();

/** Three-application mixes for the Section VI-D sensitivity study. */
const std::vector<Workload> &threeAppWorkloads();

/** Resolve a workload's applications against the catalog. */
std::vector<AppProfile> resolveApps(const Workload &wl);

/** Build an ad-hoc two-application workload. */
Workload makePair(const std::string &a, const std::string &b);

} // namespace ebm
