/**
 * @file
 * Named catalog of the 26 applications from the paper's Table IV.
 *
 * Every profile is a synthetic stand-in tuned to match the qualitative
 * behaviour the paper attributes to that application class: cache
 * sensitivity (BFS, DS, FFT, ...), pure streaming (BLK, TRD, SCP),
 * uncoalesced random access (GUPS, QTC), compute-bound (LUD, NW,
 * HISTO, SAD), and mixtures. Absolute IPC/EB values are not copied
 * from the paper; EXPERIMENTS.md records our measured values and the
 * resulting G1-G4 grouping by EB quartile.
 */
#pragma once

#include <string>
#include <vector>

#include "workload/app_profile.hpp"

namespace ebm {

/**
 * Catalog version, embedded in every disk-cache fingerprint. Bump it
 * whenever a catalogued profile changes so cached results computed
 * against the old catalog are recomputed instead of silently reused.
 */
inline constexpr std::uint64_t kAppCatalogVersion = 5;

/** Retrieve one application profile by its paper abbreviation. */
const AppProfile &findApp(const std::string &name);

/** All catalogued applications (Table IV order-ish). */
const std::vector<AppProfile> &appCatalog();

/** True if the catalog contains @p name. */
bool hasApp(const std::string &name);

} // namespace ebm
