#include "workload/workload_suite.hpp"

#include "common/log.hpp"
#include "workload/app_catalog.hpp"

namespace ebm {

namespace {

Workload
pair(const std::string &a, const std::string &b)
{
    return Workload{a + "_" + b, {a, b}};
}

} // namespace

Workload
makePair(const std::string &a, const std::string &b)
{
    return pair(a, b);
}

const std::vector<Workload> &
representativeWorkloads()
{
    // Verbatim from Figs. 4, 9, and 10 of the paper.
    static const std::vector<Workload> workloads = {
        pair("DS", "TRD"),  pair("BFS", "FFT"),  pair("BLK", "BFS"),
        pair("BLK", "TRD"), pair("FFT", "TRD"),  pair("FWT", "TRD"),
        pair("JPEG", "CFD"), pair("JPEG", "LIB"), pair("JPEG", "LUH"),
        pair("SCP", "TRD"),
    };
    return workloads;
}

const std::vector<Workload> &
fullSuite()
{
    // 25 pairs over 16 apps: the 10 representative pairs plus 15 more
    // mixing the four EB groups (compute-bound / streaming / mixed /
    // cache-sensitive).
    static const std::vector<Workload> workloads = [] {
        std::vector<Workload> v = representativeWorkloads();
        const std::vector<std::pair<std::string, std::string>> extra = {
            {"BFS", "TRD"}, {"BFS", "JPEG"}, {"DS", "BLK"},
            {"DS", "FFT"},  {"FFT", "BLK"},  {"RAY", "BLK"},
            {"SCP", "BLK"}, {"SCP", "JPEG"}, {"SRAD", "TRD"},
            {"LIB", "LUH"}, {"LPS", "CFD"},  {"GUPS", "BLK"},
            {"GUPS", "BFS"}, {"HISTO", "TRD"}, {"HISTO", "BFS"},
        };
        for (const auto &[a, b] : extra)
            v.push_back(pair(a, b));
        return v;
    }();
    return workloads;
}

const std::vector<Workload> &
threeAppWorkloads()
{
    static const std::vector<Workload> workloads = {
        {"BLK_BFS_TRD", {"BLK", "BFS", "TRD"}},
        {"JPEG_CFD_LIB", {"JPEG", "CFD", "LIB"}},
        {"DS_FWT_SCP", {"DS", "FWT", "SCP"}},
    };
    return workloads;
}

std::vector<AppProfile>
resolveApps(const Workload &wl)
{
    if (wl.appNames.empty())
        fatal("resolveApps: workload '" + wl.name + "' has no apps");
    std::vector<AppProfile> apps;
    apps.reserve(wl.appNames.size());
    for (const std::string &name : wl.appNames)
        apps.push_back(findApp(name));
    return apps;
}

} // namespace ebm
