/**
 * @file
 * Procedural, deterministic instruction-stream generation.
 *
 * The instruction *types* of a warp program depend only on the
 * application profile (all warps of a SIMT kernel run the same code);
 * the *addresses* additionally depend on the warp's global id and the
 * instruction index, via hash functions, so no trace storage is
 * needed and results are bit-reproducible.
 *
 * All profile-derived state (loop length, decode table, per-warp
 * origin hashes) lives in a process-wide shared TraceArtifact; a
 * TraceGen is just that artifact plus this instance's address-space
 * base, so constructing one for the thousandth sweep row costs a
 * registry lookup, not a rebuild.
 */
#pragma once

#include <cstdint>
#include <memory>

#include "common/types.hpp"
#include "workload/app_profile.hpp"
#include "workload/trace_artifact.hpp"

namespace ebm {

/** Address + instruction generator bound to one application profile. */
class TraceGen
{
  public:
    /**
     * @param profile    application parameters
     * @param line_bytes cache line size (addresses are line aligned)
     * @param base       base of this app's address space; defaults to
     *                   0 for single-app use — multi-app callers pass
     *                   appAddressBase(app) so address spaces are
     *                   disjoint
     */
    TraceGen(const AppProfile &profile, std::uint32_t line_bytes,
             Addr base = 0);

    /** Length of one iteration of the warp program. */
    std::uint32_t loopLength() const { return art_->loopLength(); }

    /** Decode the instruction at @p idx (taken modulo the loop). */
    InstrDesc instrAt(std::uint64_t idx) const
    {
        return art_->instrAt(idx);
    }

    /**
     * Line-aligned address of micro-transaction @p line_idx of the
     * load at @p idx issued by global warp @p gwarp.
     *
     * @param gwarp      globally unique warp id (core * warps + warp)
     * @param idx        instruction index within the warp's stream
     * @param line_idx   which of the load's numLines transactions
     * @param stream_pos monotonically increasing per-warp stream
     *                   counter (advanced by the caller per Stream
     *                   transaction)
     */
    Addr lineAddr(std::uint64_t gwarp, std::uint64_t idx,
                  std::uint32_t line_idx, std::uint64_t stream_pos) const
    {
        return lineAddr(gwarp, idx, line_idx, stream_pos, instrAt(idx));
    }

    /**
     * Same, but with the decoded instruction supplied by the caller
     * (the issue path already holds it in its per-warp decode cache;
     * re-deriving it here would repeat the modulo and category hash).
     * @p instr must equal instrAt(idx).
     */
    Addr lineAddr(std::uint64_t gwarp, std::uint64_t idx,
                  std::uint32_t line_idx, std::uint64_t stream_pos,
                  const InstrDesc &instr) const;

    const AppProfile &profile() const { return art_->profile(); }

    /** The shared artifact backing this generator. */
    const std::shared_ptr<const TraceArtifact> &artifact() const
    {
        return art_;
    }

  private:
    std::shared_ptr<const TraceArtifact> art_;
    std::uint32_t lineBytes_;
    Addr base_;

    // Address-space layout (byte offsets inside the app's space).
    static constexpr Addr kPrivateBase = 0;
    static constexpr Addr kPrivateStride = 1ull << 20;  ///< Per warp.
    static constexpr Addr kStreamBase = 1ull << 34;
    static constexpr Addr kStreamStride = 1ull << 26;   ///< Per warp.
    static constexpr Addr kWriteBase = 1ull << 35;
    static constexpr Addr kSharedBase = 1ull << 36;
    static constexpr Addr kRandomBase = 1ull << 37;
};

/** Base of the private address space of application @p app. */
inline constexpr Addr
appAddressBase(AppId app)
{
    return (static_cast<Addr>(app) + 1) << 40;
}

} // namespace ebm
