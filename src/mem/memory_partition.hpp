/**
 * @file
 * One memory partition: an L2 cache slice fronting one DRAM channel
 * (the paper's Table I attaches one L2 slice to each memory
 * controller). Requests arrive from the crossbar; L2 hits return after
 * the L2 latency; misses go to the FR-FCFS DRAM channel. The partition
 * owns the per-application attained-bandwidth and L2 miss-rate counters
 * that the EB monitor samples.
 */
#pragma once

#include <cstdint>
#include <queue>
#include <vector>

#include "common/bounded_queue.hpp"
#include "common/config.hpp"
#include "common/types.hpp"
#include "mem/address_map.hpp"
#include "mem/cache.hpp"
#include "mem/dram.hpp"
#include "mem/mem_request.hpp"

namespace ebm {

/** L2 slice + DRAM channel behind one crossbar output port. */
class MemoryPartition
{
  public:
    MemoryPartition(const GpuConfig &cfg, const AddressMap &amap,
                    std::uint32_t num_apps);

    /** Back-pressure check for the crossbar. */
    bool canAccept() const { return !inputQueue_.full(); }

    /** Deliver a request from the crossbar. */
    void deliver(const MemRequest &req);

    /**
     * Advance one core-clock cycle. The DRAM command clock runs at
     * cfg.dramClockRatio of the core clock via a phase accumulator.
     * Responses that completed this cycle are appended to @p out.
     */
    void tick(Cycle now, std::vector<MemResponse> &out);

    /**
     * Earliest cycle after @p now at which this partition can change
     * state: now+1 while any request is queued at the L2 or the DRAM
     * controller, else the first scheduled response release, else
     * never.
     */
    Cycle nextEventCycle(Cycle now) const;

    /**
     * Batch-advance @p cycles core cycles with no queued work. The
     * DRAM phase accumulator is stepped cycle by cycle so the command
     * clock advances on exactly the same core cycles as the serial
     * loop (float accumulation order is part of the observable
     * behaviour). Scheduled responses are untouched — the caller
     * never skips past their release cycle.
     */
    void fastForward(Cycle cycles);

    /** Per-app attained data-bus cycles (cumulative). */
    std::uint64_t dataCycles(AppId app) const { return dram_.dataCycles(app); }

    /** Per-app attained data-bus cycles in the sampling window. */
    std::uint64_t windowDataCycles(AppId app) const
    {
        return dram_.windowDataCycles(app);
    }

    const Cache &l2() const { return l2_; }
    Cache &l2() { return l2_; }
    const DramChannel &dram() const { return dram_; }

    /** DRAM cycles elapsed (for bandwidth normalization). */
    Cycle dramCyclesElapsed() const { return dram_.now(); }

    /** Start a new sampling window on all partition counters. */
    void checkpoint();

    void reset();

    /** A response scheduled for a future core cycle. */
    struct PendingResponse
    {
        Cycle readyAt;
        MemResponse resp;
        bool operator>(const PendingResponse &o) const
        {
            return readyAt > o.readyAt;
        }
    };

    /**
     * L2 slice, DRAM controller, the crossbar-facing input queue, the
     * scheduled-response heap, and the fractional DRAM-clock phase —
     * the phase is observable (it decides which core cycles carry a
     * DRAM command cycle), so it restores bit-exactly. The fill
     * scratch is transient (cleared before every use) and is reset,
     * not copied.
     */
    struct Snapshot
    {
        Cache::Snapshot l2;
        DramChannel::Snapshot dram;
        BoundedQueue<MemRequest> inputQueue{1};
        double dramPhase = 0.0;
        std::priority_queue<PendingResponse,
                            std::vector<PendingResponse>,
                            std::greater<PendingResponse>> pending;

        std::size_t
        heapBytes() const
        {
            return l2.heapBytes() + dram.heapBytes() +
                   inputQueue.size() * sizeof(MemRequest) +
                   pending.size() * sizeof(PendingResponse);
        }
    };

    Snapshot snapshot() const;
    void restore(const Snapshot &snap);

  private:

    void scheduleResponse(const MemRequest &req, Cycle ready_at);

    const GpuConfig &cfg_;
    const AddressMap &amap_;
    Cache l2_;
    DramChannel dram_;
    BoundedQueue<MemRequest> inputQueue_;
    double dramPhase_ = 0.0;
    /** Reused fill scratch: zero steady-state allocation per fill. */
    Cache::FillResult fillScratch_;
    std::priority_queue<PendingResponse, std::vector<PendingResponse>,
                        std::greater<PendingResponse>> pending_;
};

} // namespace ebm
