/**
 * @file
 * One memory partition: an L2 cache slice fronting one DRAM channel
 * (the paper's Table I attaches one L2 slice to each memory
 * controller). Requests arrive from the crossbar; L2 hits return after
 * the L2 latency; misses go to the FR-FCFS DRAM channel. The partition
 * owns the per-application attained-bandwidth and L2 miss-rate counters
 * that the EB monitor samples.
 */
#pragma once

#include <cstdint>
#include <queue>
#include <vector>

#include "common/bounded_queue.hpp"
#include "common/config.hpp"
#include "common/types.hpp"
#include "mem/address_map.hpp"
#include "mem/cache.hpp"
#include "mem/dram.hpp"
#include "mem/mem_request.hpp"

namespace ebm {

/** L2 slice + DRAM channel behind one crossbar output port. */
class MemoryPartition
{
  public:
    MemoryPartition(const GpuConfig &cfg, const AddressMap &amap,
                    std::uint32_t num_apps);

    /** Back-pressure check for the crossbar. */
    bool canAccept() const { return !inputQueue_.full(); }

    /** Deliver a request from the crossbar. */
    void deliver(const MemRequest &req);

    /**
     * Advance one core-clock cycle. The DRAM command clock runs at
     * cfg.dramClockRatio of the core clock via a phase accumulator.
     * Responses that completed this cycle are appended to @p out.
     */
    void tick(Cycle now, std::vector<MemResponse> &out);

    /** Per-app attained data-bus cycles (cumulative). */
    std::uint64_t dataCycles(AppId app) const { return dram_.dataCycles(app); }

    /** Per-app attained data-bus cycles in the sampling window. */
    std::uint64_t windowDataCycles(AppId app) const
    {
        return dram_.windowDataCycles(app);
    }

    const Cache &l2() const { return l2_; }
    Cache &l2() { return l2_; }
    const DramChannel &dram() const { return dram_; }

    /** DRAM cycles elapsed (for bandwidth normalization). */
    Cycle dramCyclesElapsed() const { return dram_.now(); }

    /** Start a new sampling window on all partition counters. */
    void checkpoint();

    void reset();

  private:
    /** A response scheduled for a future core cycle. */
    struct PendingResponse
    {
        Cycle readyAt;
        MemResponse resp;
        bool operator>(const PendingResponse &o) const
        {
            return readyAt > o.readyAt;
        }
    };

    void scheduleResponse(const MemRequest &req, Cycle ready_at);

    const GpuConfig &cfg_;
    const AddressMap &amap_;
    Cache l2_;
    DramChannel dram_;
    BoundedQueue<MemRequest> inputQueue_;
    double dramPhase_ = 0.0;
    std::priority_queue<PendingResponse, std::vector<PendingResponse>,
                        std::greater<PendingResponse>> pending_;
};

} // namespace ebm
