/**
 * @file
 * Set-associative tag array with true-LRU replacement.
 *
 * Shared by L1 data caches and L2 slices. Tags remember the owning
 * application of the line so cache-occupancy statistics can attribute
 * inter-application interference.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "common/config.hpp"
#include "common/types.hpp"

namespace ebm {

/** Result of a tag probe-and-allocate operation. */
struct TagLookup
{
    bool hit = false;
    bool evictedValid = false;  ///< An existing line was displaced.
    Addr evictedLine = 0;       ///< Line address displaced (if any).
    AppId evictedApp = kInvalidApp;
};

/** Set-associative, true-LRU tag store. */
class TagArray
{
  public:
    explicit TagArray(const CacheGeometry &geom);

    /**
     * Probe for @p line_addr; on miss, optionally allocate it,
     * evicting the LRU way.
     *
     * @param line_addr line-aligned byte address
     * @param app       owning application (recorded on allocate)
     * @param allocate  whether a miss installs the line
     * @return hit/eviction outcome
     */
    TagLookup access(Addr line_addr, AppId app, bool allocate);

    /** Probe without changing any state. */
    bool probe(Addr line_addr) const;

    /**
     * Probe and, on a hit, refresh the line's LRU position — one set
     * walk instead of probe() + access(). The use clock advances only
     * on a hit, exactly as the probe-then-access sequence it replaces.
     */
    bool touch(Addr line_addr);

    /** Invalidate a line if present. @return true if it was present. */
    bool invalidate(Addr line_addr);

    /** Number of valid lines currently owned by @p app. */
    std::uint32_t linesOwnedBy(AppId app) const;

    /** Invalidate everything (kernel relaunch / new run). */
    void flush();

    /**
     * Restrict @p app's allocations to ways [first, first+count).
     * Lookups still hit in any way (a partition change must not lose
     * resident lines); only victim selection is constrained. Used for
     * the Section VI-D L2-partitioning sensitivity study.
     */
    void setWayPartition(AppId app, std::uint32_t first,
                         std::uint32_t count);

    /** Remove @p app's allocation restriction. */
    void clearWayPartition(AppId app);

    std::uint32_t numSets() const { return numSets_; }
    std::uint32_t assoc() const { return assoc_; }

    struct Way
    {
        bool valid = false;
        Addr tag = 0;
        AppId app = kInvalidApp;
        std::uint64_t lastUse = 0;
    };

    /** Allocation way range of one app (whole array by default). */
    struct WayRange
    {
        std::uint32_t first = 0;
        std::uint32_t count = 0; ///< 0 = unrestricted.
    };

    /**
     * Full mutable state: tag contents, LRU clock, and the way
     * partitions (a knob, so a restored machine reproduces the
     * partitioned victim selection exactly). Geometry is immutable
     * per instance and is validated on restore instead of copied.
     */
    struct Snapshot
    {
        std::uint64_t useClock = 0;
        std::vector<Way> ways;
        std::vector<WayRange> partitions;

        std::size_t
        heapBytes() const
        {
            return ways.capacity() * sizeof(Way) +
                   partitions.capacity() * sizeof(WayRange);
        }
    };

    Snapshot
    snapshot() const
    {
        return Snapshot{useClock_, ways_, partitions_};
    }

    void restore(const Snapshot &snap);

  private:
    std::uint32_t setIndex(Addr line_addr) const;

    std::uint32_t numSets_;
    std::uint32_t assoc_;
    std::uint32_t lineBytes_;
    /** Line size and set count are powers of two (stock geometries):
     *  setIndex is then a shift+mask instead of two divisions. */
    bool fastIndex_;
    std::uint32_t lineShift_;
    std::uint64_t useClock_ = 0;
    std::vector<Way> ways_; ///< numSets_ x assoc_, row-major.
    std::vector<WayRange> partitions_; ///< Indexed by AppId.
};

} // namespace ebm
