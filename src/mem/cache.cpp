#include "mem/cache.hpp"

namespace ebm {

Cache::Cache(const CacheGeometry &geom, std::uint32_t num_apps)
    : tags_(geom),
      mshrs_(geom.mshrEntries, geom.mshrTargetsPerEntry),
      stats_(num_apps)
{
}

CacheOutcome
Cache::access(const MemRequest &req, bool bypass)
{
    if (bypass) {
        // Bypassed requests never hit and never allocate; they still
        // need an MSHR entry so the response finds its way back.
        const MshrOutcome m = mshrs_.registerMiss(req);
        if (m == MshrOutcome::Stall)
            return CacheOutcome::Stall;
        stats_.recordAccess(req.app, true);
        return m == MshrOutcome::NewEntry ? CacheOutcome::MissNew
                                          : CacheOutcome::MissMerged;
    }

    // A hit on an in-flight line is really a secondary miss: the data
    // has not arrived yet, so the requester must wait on the MSHR.
    if (mshrs_.inFlight(req.lineAddr)) {
        const MshrOutcome m = mshrs_.registerMiss(req);
        if (m == MshrOutcome::Stall)
            return CacheOutcome::Stall;
        stats_.recordAccess(req.app, true);
        return CacheOutcome::MissMerged;
    }

    if (tags_.touch(req.lineAddr)) { // Probe + LRU refresh, one walk.
        stats_.recordAccess(req.app, false);
        return CacheOutcome::Hit;
    }

    const MshrOutcome m = mshrs_.registerMiss(req);
    if (m == MshrOutcome::Stall)
        return CacheOutcome::Stall;
    stats_.recordAccess(req.app, true);
    return CacheOutcome::MissNew;
}

Cache::FillResult
Cache::fill(Addr line_addr, AppId app, bool bypass)
{
    FillResult result;
    fill(line_addr, app, bypass, result);
    return result;
}

void
Cache::fill(Addr line_addr, AppId app, bool bypass, FillResult &out)
{
    ++gen_; // A fill is the only event that can un-stall a requester.
    out.waiters.clear();
    out.evictedValid = false;
    out.evictedLine = 0;
    out.evictedApp = kInvalidApp;
    if (!bypass) {
        const TagLookup lookup = tags_.access(line_addr, app, true);
        out.evictedValid = lookup.evictedValid;
        out.evictedLine = lookup.evictedLine;
        out.evictedApp = lookup.evictedApp;
    }
    mshrs_.completeFill(line_addr, out.waiters);
}

void
Cache::reset()
{
    ++gen_; // Clearing the MSHRs un-stalls everything.
    tags_.flush();
    mshrs_.clear();
    stats_.reset();
}

} // namespace ebm
