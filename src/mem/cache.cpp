#include "mem/cache.hpp"

namespace ebm {

Cache::Cache(const CacheGeometry &geom, std::uint32_t num_apps)
    : tags_(geom),
      mshrs_(geom.mshrEntries, geom.mshrTargetsPerEntry),
      stats_(num_apps)
{
}

CacheOutcome
Cache::access(const MemRequest &req, bool bypass)
{
    if (bypass) {
        // Bypassed requests never hit and never allocate; they still
        // need an MSHR entry so the response finds its way back.
        const MshrOutcome m = mshrs_.registerMiss(req);
        if (m == MshrOutcome::Stall)
            return CacheOutcome::Stall;
        stats_.recordAccess(req.app, true);
        return m == MshrOutcome::NewEntry ? CacheOutcome::MissNew
                                          : CacheOutcome::MissMerged;
    }

    // A hit on an in-flight line is really a secondary miss: the data
    // has not arrived yet, so the requester must wait on the MSHR.
    if (mshrs_.inFlight(req.lineAddr)) {
        const MshrOutcome m = mshrs_.registerMiss(req);
        if (m == MshrOutcome::Stall)
            return CacheOutcome::Stall;
        stats_.recordAccess(req.app, true);
        return CacheOutcome::MissMerged;
    }

    if (tags_.probe(req.lineAddr)) {
        tags_.access(req.lineAddr, req.app, false); // Refresh LRU.
        stats_.recordAccess(req.app, false);
        return CacheOutcome::Hit;
    }

    const MshrOutcome m = mshrs_.registerMiss(req);
    if (m == MshrOutcome::Stall)
        return CacheOutcome::Stall;
    stats_.recordAccess(req.app, true);
    return CacheOutcome::MissNew;
}

Cache::FillResult
Cache::fill(Addr line_addr, AppId app, bool bypass)
{
    FillResult result;
    if (!bypass) {
        const TagLookup lookup = tags_.access(line_addr, app, true);
        result.evictedValid = lookup.evictedValid;
        result.evictedLine = lookup.evictedLine;
        result.evictedApp = lookup.evictedApp;
    }
    result.waiters = mshrs_.completeFill(line_addr);
    return result;
}

void
Cache::reset()
{
    tags_.flush();
    mshrs_.clear();
    stats_.reset();
}

} // namespace ebm
