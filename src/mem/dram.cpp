#include "mem/dram.hpp"

#include <algorithm>

#include "common/log.hpp"

namespace ebm {

DramChannel::DramChannel(const GpuConfig &cfg, std::uint32_t num_apps)
    : timing_(cfg.dram),
      banksPerGroup_(cfg.banksPerChannel / cfg.bankGroups),
      capCycles_(cfg.frfcfsCapCycles),
      banks_(cfg.banksPerChannel),
      lastColumnInGroup_(cfg.bankGroups, 0),
      queueCap_(cfg.frfcfsQueueDepth),
      dataCycles_(num_apps)
{
    if (banks_.size() > 64)
        fatal("DramChannel: at most 64 banks per channel "
              "(row-hit mask width)");
    queue_.reserve(queueCap_);
}

void
DramChannel::enqueue(const MemRequest &req, const DramCoord &coord)
{
    if (req.app >= dataCycles_.size())
        panic("DramChannel: request with out-of-range app id");
    if (coord.bank >= banks_.size())
        panic("DramChannel: request with out-of-range bank");
    if (queueFull())
        panic("DramChannel: enqueue into a full queue");
    DramCommand cmd;
    cmd.req = req;
    cmd.coord = coord;
    cmd.group = coord.bank / banksPerGroup_;
    cmd.enqueuedAt = now_;
    queue_.push_back(cmd);
    scanSkipUntil_ = 0; // New work invalidates the fruitless-scan skip.
}

bool
DramChannel::tick(DramCompletion &out)
{
    ++now_;
    if (queue_.empty())
        return false;

    // Scan-skipping: a scan that issues nothing mutates no state, so
    // its outcome can only change once now_ crosses one of the fixed
    // timing thresholds that blocked it (every condition below is a
    // monotone `now_ >= threshold` test). A fruitless scan records a
    // conservative minimum over those thresholds; until then — and as
    // long as no enqueue changes the queue — scans are skipped.
    if (now_ < scanSkipUntil_)
        return false;

    // FR-FCFS with a single command bus: each DRAM cycle issue the
    // highest-priority *serviceable* command — (1) the oldest
    // row-hitting column access, else (2) the oldest activate, else
    // (3) the oldest precharge. Requests whose bank is timing-blocked
    // never block younger requests to other banks.
    //
    // Starvation cap: a request that has aged past capCycles_ gets
    // absolute priority — its bank may be precharged even under
    // younger row hits. Without this, one application's row-hit
    // stream can starve a co-runner's row misses indefinitely.
    // The queue is age-ordered (FIFO arrivals, mid-queue extraction
    // preserves order), so the front is the oldest request: it is
    // past the cap iff any request is.
    const DramCommand *aged = nullptr;
    if (now_ - queue_.front().enqueuedAt > capCycles_)
        aged = &queue_.front();

    // Earliest cycle at which some currently blocked command could
    // become issuable, assuming no other state change (see above).
    Cycle wake = kNeverCycle;

    // Pass 1 — the oldest serviceable row-hit column access. Column
    // candidacy is independent of the row-hit shield below, so in the
    // common streaming case this breaks early and nothing else runs.
    // Banks with a pending row-hit are collected along the way: they
    // must not be precharged/re-activated out from under their older
    // requests (unless the aged request overrides).
    // The data-bus condition is command-independent: hoisted.
    const bool bus_ok = busFreeAt_ <= now_ + timing_.tCL;
    const Cycle bus_wake =
        busFreeAt_ > timing_.tCL ? busFreeAt_ - timing_.tCL : 0;
    std::uint64_t bank_has_hit = 0;
    auto col_it = queue_.end();
    for (auto it = queue_.begin(); it != queue_.end(); ++it) {
        const DramCommand &cmd = *it;
        const std::uint64_t bit = 1ull << cmd.coord.bank;
        if ((bank_has_hit & bit) != 0)
            continue; // An older row-hit on this bank is blocked by
                      // the very same thresholds; nothing new here.
        const DramBank &bank = banks_[cmd.coord.bank];
        if (!bank.rowOpen || bank.openRow != cmd.coord.row)
            continue;
        const std::uint32_t group = cmd.group;
        if (bus_ok && now_ >= bank.readyForColumn &&
            now_ >= lastColumnInGroup_[group] + timing_.tCCDl) {
            col_it = it;
            break; // Highest priority; no need to scan further.
        }
        bank_has_hit |= bit;
        Cycle w = std::max(bank.readyForColumn, bus_wake);
        w = std::max(w, lastColumnInGroup_[group] + timing_.tCCDl);
        wake = std::min(wake, w);
    }

    auto act_it = queue_.end();
    auto pre_it = queue_.end();
    if (col_it == queue_.end()) {
        // Pass 2 — oldest activate, oldest precharge (only reached
        // when no column can issue, so pass 1 walked the whole queue
        // and bank_has_hit is complete).
        if (aged != nullptr)
            bank_has_hit &= ~(1ull << aged->coord.bank);
        // Dedupe: all non-hit commands on one bank face identical
        // act/pre thresholds, so only each bank's first matters.
        std::uint64_t seen = bank_has_hit;
        for (auto it = queue_.begin(); it != queue_.end(); ++it) {
            const DramCommand &cmd = *it;
            const std::uint64_t bit = 1ull << cmd.coord.bank;
            if ((seen & bit) != 0)
                continue; // Shielded by an older row-hit, or this
                          // bank's oldest non-hit already considered.
            const DramBank &bank = banks_[cmd.coord.bank];
            if (bank.rowOpen && bank.openRow == cmd.coord.row)
                continue; // Row hits were pass 1's business.
            seen |= bit;

            if (!bank.rowOpen) {
                if (act_it == queue_.end() &&
                    now_ >= bank.readyForActivate &&
                    now_ >= lastActivateAt_ + timing_.tRRD) {
                    act_it = it;
                }
                wake = std::min(
                    wake, std::max(bank.readyForActivate,
                                   lastActivateAt_ + timing_.tRRD));
            } else {
                if (pre_it == queue_.end() &&
                    now_ >= bank.rowOpenedAt + timing_.tRAS &&
                    now_ >= bank.readyForActivate) {
                    pre_it = it;
                }
                wake = std::min(
                    wake, std::max(bank.rowOpenedAt + timing_.tRAS,
                                   bank.readyForActivate));
            }
        }
    }

    if (col_it != queue_.end()) {
        scanSkipUntil_ = 0; // State changes; re-scan next cycle.
        DramCommand &cmd = *col_it;
        const std::uint32_t group = cmd.group;
        const Cycle data_start =
            std::max(busFreeAt_, now_ + timing_.tCL);
        const Cycle data_end = data_start + timing_.burstCycles;
        busFreeAt_ = data_end;
        lastColumnInGroup_[group] = now_;

        if (!cmd.causedActivate)
            rowHits_.add();
        serviced_.add();
        dataCycles_[cmd.req.app].add(timing_.burstCycles);

        out.req = cmd.req;
        out.readyAt = data_end;
        queue_.erase(col_it);
        return true;
    }

    if (act_it != queue_.end()) {
        scanSkipUntil_ = 0;
        DramCommand &cmd = *act_it;
        DramBank &bank = banks_[cmd.coord.bank];
        bank.rowOpen = true;
        bank.openRow = cmd.coord.row;
        bank.rowOpenedAt = now_;
        bank.readyForColumn = now_ + timing_.tRCD;
        lastActivateAt_ = now_;
        cmd.causedActivate = true;
        rowMisses_.add();
        return false;
    }

    if (pre_it != queue_.end()) {
        scanSkipUntil_ = 0;
        DramBank &bank = banks_[pre_it->coord.bank];
        bank.rowOpen = false;
        bank.readyForActivate = now_ + timing_.tRP;
        return false;
    }

    // Fruitless scan. Beyond the per-command timing thresholds, the
    // only other time-driven flip is the front request ageing past
    // the starvation cap (which lifts the row-hit shield on its
    // bank); include it conservatively. An early wake is harmless —
    // the scan just runs and recomputes.
    if (aged == nullptr) {
        wake = std::min(wake,
                        queue_.front().enqueuedAt + capCycles_ + 1);
    }
    scanSkipUntil_ = std::max(wake, now_ + 1);
    return false;
}

void
DramChannel::advanceIdle(std::uint64_t cycles)
{
    if (!queue_.empty())
        panic("DramChannel: idle advance with queued requests");
    now_ += cycles;
}

void
DramChannel::checkpoint()
{
    for (auto &c : dataCycles_)
        c.checkpoint();
    rowHits_.checkpoint();
    rowMisses_.checkpoint();
    serviced_.checkpoint();
}

void
DramChannel::reset()
{
    now_ = 0;
    busFreeAt_ = 0;
    lastActivateAt_ = 0;
    for (auto &bank : banks_)
        bank = DramBank{};
    std::fill(lastColumnInGroup_.begin(), lastColumnInGroup_.end(),
              Cycle{0});
    queue_.clear();
    scanSkipUntil_ = 0;
    for (auto &c : dataCycles_)
        c.reset();
    rowHits_.reset();
    rowMisses_.reset();
    serviced_.reset();
}

DramChannel::Snapshot
DramChannel::snapshot() const
{
    Snapshot snap;
    snap.now = now_;
    snap.busFreeAt = busFreeAt_;
    snap.lastActivateAt = lastActivateAt_;
    snap.scanSkipUntil = scanSkipUntil_;
    snap.banks = banks_;
    snap.lastColumnInGroup = lastColumnInGroup_;
    snap.queue = queue_;
    snap.dataCycles = dataCycles_;
    snap.rowHits = rowHits_;
    snap.rowMisses = rowMisses_;
    snap.serviced = serviced_;
    return snap;
}

void
DramChannel::restore(const Snapshot &snap)
{
    if (snap.banks.size() != banks_.size() ||
        snap.dataCycles.size() != dataCycles_.size() ||
        snap.queue.size() > queueCap_)
        fatal("DramChannel: snapshot shape mismatch");
    now_ = snap.now;
    busFreeAt_ = snap.busFreeAt;
    lastActivateAt_ = snap.lastActivateAt;
    scanSkipUntil_ = snap.scanSkipUntil;
    banks_ = snap.banks;
    lastColumnInGroup_ = snap.lastColumnInGroup;
    queue_ = snap.queue;
    dataCycles_ = snap.dataCycles;
    rowHits_ = snap.rowHits;
    rowMisses_ = snap.rowMisses;
    serviced_ = snap.serviced;
}

} // namespace ebm
