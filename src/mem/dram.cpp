#include "mem/dram.hpp"

#include <algorithm>

namespace ebm {

DramChannel::DramChannel(const GpuConfig &cfg, std::uint32_t num_apps)
    : timing_(cfg.dram),
      banksPerGroup_(cfg.banksPerChannel / cfg.bankGroups),
      capCycles_(cfg.frfcfsCapCycles),
      banks_(cfg.banksPerChannel),
      lastColumnInGroup_(cfg.bankGroups, 0),
      queue_(cfg.frfcfsQueueDepth),
      dataCycles_(num_apps)
{
}

void
DramChannel::enqueue(const MemRequest &req, const DramCoord &coord)
{
    if (req.app >= dataCycles_.size())
        panic("DramChannel: request with out-of-range app id");
    if (coord.bank >= banks_.size())
        panic("DramChannel: request with out-of-range bank");
    DramCommand cmd;
    cmd.req = req;
    cmd.coord = coord;
    cmd.enqueuedAt = now_;
    queue_.push(cmd);
}

std::vector<DramCompletion>
DramChannel::tick()
{
    ++now_;
    std::vector<DramCompletion> done;
    if (queue_.empty())
        return done;

    // FR-FCFS with a single command bus: each DRAM cycle issue the
    // highest-priority *serviceable* command — (1) the oldest
    // row-hitting column access, else (2) the oldest activate, else
    // (3) the oldest precharge. Requests whose bank is timing-blocked
    // never block younger requests to other banks.
    //
    // Starvation cap: a request that has aged past capCycles_ gets
    // absolute priority — its bank may be precharged even under
    // younger row hits. Without this, one application's row-hit
    // stream can starve a co-runner's row misses indefinitely.
    const DramCommand *aged = nullptr;
    for (const DramCommand &cmd : queue_) {
        if (now_ - cmd.enqueuedAt > capCycles_) {
            aged = &cmd;
            break; // Queue is age-ordered; first hit is oldest.
        }
    }

    // Banks with a pending row-hit must not be precharged/re-activated
    // out from under their older requests (unless the aged request
    // overrides).
    std::vector<bool> bank_has_hit(banks_.size(), false);
    for (const DramCommand &cmd : queue_) {
        const DramBank &bank = banks_[cmd.coord.bank];
        if (bank.rowOpen && bank.openRow == cmd.coord.row)
            bank_has_hit[cmd.coord.bank] = true;
    }
    if (aged != nullptr)
        bank_has_hit[aged->coord.bank] = false;

    auto col_it = queue_.end();
    auto act_it = queue_.end();
    auto pre_it = queue_.end();

    for (auto it = queue_.begin(); it != queue_.end(); ++it) {
        const DramCommand &cmd = *it;
        DramBank &bank = banks_[cmd.coord.bank];
        const std::uint32_t group = cmd.coord.bank / banksPerGroup_;
        const bool row_hit =
            bank.rowOpen && bank.openRow == cmd.coord.row;

        if (row_hit) {
            if (col_it == queue_.end() &&
                now_ >= bank.readyForColumn &&
                now_ >= lastColumnInGroup_[group] + timing_.tCCDl &&
                busFreeAt_ <= now_ + timing_.tCL) {
                col_it = it;
                break; // Highest priority; no need to scan further.
            }
            continue;
        }
        if (bank_has_hit[cmd.coord.bank])
            continue; // Let the older row-hit drain first.

        if (!bank.rowOpen) {
            if (act_it == queue_.end() &&
                now_ >= bank.readyForActivate &&
                now_ >= lastActivateAt_ + timing_.tRRD) {
                act_it = it;
            }
        } else {
            if (pre_it == queue_.end() &&
                now_ >= bank.rowOpenedAt + timing_.tRAS &&
                now_ >= bank.readyForActivate) {
                pre_it = it;
            }
        }
    }

    if (col_it != queue_.end()) {
        DramCommand &cmd = *col_it;
        const std::uint32_t group = cmd.coord.bank / banksPerGroup_;
        const Cycle data_start =
            std::max(busFreeAt_, now_ + timing_.tCL);
        const Cycle data_end = data_start + timing_.burstCycles;
        busFreeAt_ = data_end;
        lastColumnInGroup_[group] = now_;

        if (!cmd.causedActivate)
            rowHits_.add();
        serviced_.add();
        dataCycles_[cmd.req.app].add(timing_.burstCycles);

        DramCompletion completion;
        completion.req = cmd.req;
        completion.readyAt = data_end;
        done.push_back(completion);
        queue_.extract(col_it);
        return done;
    }

    if (act_it != queue_.end()) {
        DramCommand &cmd = *act_it;
        DramBank &bank = banks_[cmd.coord.bank];
        bank.rowOpen = true;
        bank.openRow = cmd.coord.row;
        bank.rowOpenedAt = now_;
        bank.readyForColumn = now_ + timing_.tRCD;
        lastActivateAt_ = now_;
        cmd.causedActivate = true;
        rowMisses_.add();
        return done;
    }

    if (pre_it != queue_.end()) {
        DramBank &bank = banks_[pre_it->coord.bank];
        bank.rowOpen = false;
        bank.readyForActivate = now_ + timing_.tRP;
        return done;
    }

    return done;
}

void
DramChannel::checkpoint()
{
    for (auto &c : dataCycles_)
        c.checkpoint();
    rowHits_.checkpoint();
    rowMisses_.checkpoint();
    serviced_.checkpoint();
}

void
DramChannel::reset()
{
    now_ = 0;
    busFreeAt_ = 0;
    lastActivateAt_ = 0;
    for (auto &bank : banks_)
        bank = DramBank{};
    std::fill(lastColumnInGroup_.begin(), lastColumnInGroup_.end(),
              Cycle{0});
    queue_.clear();
    for (auto &c : dataCycles_)
        c.reset();
    rowHits_.reset();
    rowMisses_.reset();
    serviced_.reset();
}

} // namespace ebm
