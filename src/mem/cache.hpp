/**
 * @file
 * A non-blocking cache: set-associative tag array + MSHR file +
 * per-application statistics. Used for both per-core L1 data caches
 * and per-partition L2 slices; the owner decides what to do with the
 * returned outcome (schedule a hit response, forward a miss, stall).
 */
#pragma once

#include <cstdint>
#include <vector>

#include "common/config.hpp"
#include "mem/cache_stats.hpp"
#include "mem/mem_request.hpp"
#include "mem/mshr.hpp"
#include "mem/tag_array.hpp"

namespace ebm {

/** What happened when a request was presented to the cache. */
enum class CacheOutcome : std::uint8_t {
    Hit,          ///< Line present; respond after hit latency.
    MissNew,      ///< Miss; a downstream request must be sent.
    MissMerged,   ///< Miss merged into an in-flight MSHR entry.
    Stall,        ///< MSHR structural hazard; retry next cycle.
};

/**
 * One cache instance.
 *
 * Bypass support (Mod+Bypass baseline): a request flagged bypassL1 is
 * treated as a miss that neither probes nor allocates, and is counted
 * as an access+miss so the combined miss rate reflects the bypass.
 */
class Cache
{
  public:
    Cache(const CacheGeometry &geom, std::uint32_t num_apps);

    /**
     * Present @p req to the cache.
     *
     * @param req    the transaction
     * @param bypass treat as a forced miss that never allocates
     *               (Mod+Bypass); the caller decides which level's
     *               bypass flag applies.
     *
     * Statistics are only updated for non-Stall outcomes (a stalled
     * request is retried and must not be double counted).
     */
    CacheOutcome access(const MemRequest &req, bool bypass = false);

    /** Outcome of a fill: woken requesters plus eviction info. */
    struct FillResult
    {
        std::vector<MemRequest> waiters;
        bool evictedValid = false;
        Addr evictedLine = 0;
        AppId evictedApp = kInvalidApp;
    };

    /**
     * Fill @p line_addr (a response arrived from downstream), allocate
     * it unless @p bypass, and return the requests waiting on it along
     * with any line the allocation displaced (victim-tag consumers —
     * e.g. the CCWS-style lost-locality detector — need the eviction).
     */
    FillResult fill(Addr line_addr, AppId app, bool bypass);

    /**
     * Allocation-free variant for hot paths: @p out is cleared and
     * refilled in place, so a caller-owned scratch FillResult reuses
     * its waiters capacity across fills.
     */
    void fill(Addr line_addr, AppId app, bool bypass, FillResult &out);

    /** True if the line has an in-flight MSHR entry. */
    bool missInFlight(Addr line_addr) const { return mshrs_.inFlight(line_addr); }

    /**
     * Monotone counter that advances whenever an event occurs that
     * could turn a Stall outcome into a non-Stall one: a fill (frees
     * MSHR capacity and waiter-chain slots, inserts the line into the
     * tags) or a reset. A requester that observed Stall at generation
     * G can skip its retries for as long as generation() == G — the
     * retry is side-effect-free and provably produces Stall again.
     */
    std::uint64_t generation() const { return gen_; }

    /**
     * Force a generation bump. The owner calls this when it changes
     * something *outside* the cache that alters the access path of a
     * stalled request (e.g. the core's L1-bypass knob, which decides
     * whether the tags are probed at all).
     */
    void bumpGeneration() { ++gen_; }

    const CacheStats &stats() const { return stats_; }
    CacheStats &stats() { return stats_; }
    const TagArray &tags() const { return tags_; }
    TagArray &tags() { return tags_; }

    /** Drop all cached state and in-flight bookkeeping. */
    void reset();

    /**
     * Tags + MSHRs + statistics + the stall generation. The
     * generation is part of the contract: schedulers cache it in
     * per-warp stall records, so a restored machine must present the
     * same value the cold run would (warps restored alongside carry
     * matching recorded generations).
     */
    struct Snapshot
    {
        TagArray::Snapshot tags;
        MshrFile::Snapshot mshrs;
        CacheStats::Snapshot stats;
        std::uint64_t gen = 0;

        std::size_t
        heapBytes() const
        {
            return tags.heapBytes() + mshrs.heapBytes() +
                   stats.heapBytes();
        }
    };

    Snapshot
    snapshot() const
    {
        return Snapshot{tags_.snapshot(), mshrs_.snapshot(),
                        stats_.snapshot(), gen_};
    }

    void
    restore(const Snapshot &snap)
    {
        tags_.restore(snap.tags);
        mshrs_.restore(snap.mshrs);
        stats_.restore(snap.stats);
        gen_ = snap.gen;
    }

  private:
    TagArray tags_;
    MshrFile mshrs_;
    CacheStats stats_;
    std::uint64_t gen_ = 0; ///< See generation().
};

} // namespace ebm
