/**
 * @file
 * Miss-status holding registers.
 *
 * Tracks in-flight misses at line granularity and merges secondary
 * misses to the same line into one downstream request. When the MSHR
 * file is out of entries (or an entry is out of target slots), the
 * cache must stall the requester — the structural hazard that bounds
 * per-core memory-level parallelism.
 *
 * Storage is allocation-free in steady state: entries live in an
 * open-addressed (linear-probing) table sized at construction, and
 * waiting requesters are linked-list nodes drawn from a pooled
 * free list — no per-miss heap traffic, unlike the former
 * unordered_map<Addr, vector<MemRequest>> layout.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "common/config.hpp"
#include "common/types.hpp"
#include "mem/mem_request.hpp"

namespace ebm {

/** Outcome of attempting to register a miss with the MSHR file. */
enum class MshrOutcome : std::uint8_t {
    NewEntry,  ///< First miss to this line; send downstream.
    Merged,    ///< Line already in flight; no downstream request.
    Stall,     ///< No entry or target slot available; retry later.
};

/** MSHR file for one cache instance. */
class MshrFile
{
  public:
    MshrFile(std::uint32_t entries, std::uint32_t targets_per_entry);

    /**
     * Register a miss for @p req.
     * On NewEntry/Merged the requester metadata is recorded for wakeup.
     */
    MshrOutcome registerMiss(const MemRequest &req);

    /** Is this line currently in flight? */
    bool inFlight(Addr line_addr) const;

    /**
     * Complete the fill of @p line_addr and append all waiting
     * requesters (primary first) to @p out, which is NOT cleared —
     * hot-path callers hand in a reused scratch vector. The entry is
     * freed.
     */
    void completeFill(Addr line_addr, std::vector<MemRequest> &out);

    /** Convenience overload returning a fresh vector (tests, tools). */
    std::vector<MemRequest> completeFill(Addr line_addr);

    std::uint32_t entriesInUse() const { return used_; }
    std::uint32_t capacity() const { return maxEntries_; }
    bool full() const { return used_ >= maxEntries_; }

    void clear();

    static constexpr std::uint32_t kNil = 0xffffffffu;

    /** One open-addressed table slot: a line and its waiter chain. */
    struct Slot
    {
        Addr line = 0;
        std::uint32_t head = kNil; ///< First waiter node (primary).
        std::uint32_t tail = kNil; ///< Last waiter node.
        std::uint32_t count = 0;   ///< Waiters chained (targets used).
        bool used = false;
    };

    /** One pooled waiter: the request plus an intrusive next link. */
    struct Node
    {
        MemRequest req;
        std::uint32_t next = kNil;
    };

    /**
     * Full mutable state: the open-addressed table, the waiter-node
     * pool, and the free list head. Capacities are construction
     * parameters and are validated on restore instead of copied.
     */
    struct Snapshot
    {
        std::uint32_t used = 0;
        std::uint32_t freeHead = kNil;
        std::vector<Slot> slots;
        std::vector<Node> pool;

        std::size_t
        heapBytes() const
        {
            return slots.capacity() * sizeof(Slot) +
                   pool.capacity() * sizeof(Node);
        }
    };

    Snapshot
    snapshot() const
    {
        return Snapshot{used_, freeHead_, slots_, pool_};
    }

    void restore(const Snapshot &snap);

  private:

    std::size_t probeIndex(Addr line_addr) const;
    /** Slot of @p line_addr, or kNil if absent. */
    std::uint32_t findSlot(Addr line_addr) const;
    std::uint32_t allocNode(const MemRequest &req);
    /** Erase @p slot via backward-shift (tombstone-free) deletion. */
    void eraseSlot(std::uint32_t slot);

    std::uint32_t maxEntries_;
    std::uint32_t maxTargets_;
    std::uint32_t used_ = 0;
    std::size_t tableMask_; ///< Table size - 1 (power of two).
    std::vector<Slot> slots_;
    std::vector<Node> pool_;
    std::uint32_t freeHead_ = kNil;
};

} // namespace ebm
