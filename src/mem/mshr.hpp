/**
 * @file
 * Miss-status holding registers.
 *
 * Tracks in-flight misses at line granularity and merges secondary
 * misses to the same line into one downstream request. When the MSHR
 * file is out of entries (or an entry is out of target slots), the
 * cache must stall the requester — the structural hazard that bounds
 * per-core memory-level parallelism.
 */
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/config.hpp"
#include "common/types.hpp"
#include "mem/mem_request.hpp"

namespace ebm {

/** Outcome of attempting to register a miss with the MSHR file. */
enum class MshrOutcome : std::uint8_t {
    NewEntry,  ///< First miss to this line; send downstream.
    Merged,    ///< Line already in flight; no downstream request.
    Stall,     ///< No entry or target slot available; retry later.
};

/** MSHR file for one cache instance. */
class MshrFile
{
  public:
    MshrFile(std::uint32_t entries, std::uint32_t targets_per_entry);

    /**
     * Register a miss for @p req.
     * On NewEntry/Merged the requester metadata is recorded for wakeup.
     */
    MshrOutcome registerMiss(const MemRequest &req);

    /** Is this line currently in flight? */
    bool inFlight(Addr line_addr) const;

    /**
     * Complete the fill of @p line_addr and return all waiting
     * requesters (primary first). The entry is freed.
     */
    std::vector<MemRequest> completeFill(Addr line_addr);

    std::uint32_t entriesInUse() const
    {
        return static_cast<std::uint32_t>(entries_.size());
    }
    std::uint32_t capacity() const { return maxEntries_; }
    bool full() const { return entries_.size() >= maxEntries_; }

    void clear() { entries_.clear(); }

  private:
    std::uint32_t maxEntries_;
    std::uint32_t maxTargets_;
    std::unordered_map<Addr, std::vector<MemRequest>> entries_;
};

} // namespace ebm
