#include "mem/memory_partition.hpp"

namespace ebm {

MemoryPartition::MemoryPartition(const GpuConfig &cfg,
                                 const AddressMap &amap,
                                 std::uint32_t num_apps)
    : cfg_(cfg),
      amap_(amap),
      l2_(cfg.l2Slice, num_apps),
      dram_(cfg, num_apps),
      inputQueue_(cfg.frfcfsQueueDepth)
{
}

void
MemoryPartition::deliver(const MemRequest &req)
{
    inputQueue_.push(req);
}

void
MemoryPartition::scheduleResponse(const MemRequest &req, Cycle ready_at)
{
    MemResponse resp;
    resp.lineAddr = req.lineAddr;
    resp.app = req.app;
    resp.core = req.core;
    resp.warp = req.warp;
    resp.bypassL1 = req.bypassL1;
    pending_.push(PendingResponse{ready_at, resp});
}

void
MemoryPartition::tick(Cycle now, std::vector<MemResponse> &out)
{
    // 1. Present queued requests to the L2 slice (one per cycle;
    //    the slice is the bandwidth filter in front of DRAM).
    if (!inputQueue_.empty() && !dram_.queueFull()) {
        MemRequest req = inputQueue_.front();
        if (req.type == MemAccessType::Store) {
            // Write-through stores skip the L2 and go straight to
            // DRAM; nothing waits on their completion.
            inputQueue_.pop();
            dram_.enqueue(req, amap_.decode(req.lineAddr));
        } else {
            const CacheOutcome outcome = l2_.access(req, req.bypassL2);
            switch (outcome) {
              case CacheOutcome::Hit:
                inputQueue_.pop();
                scheduleResponse(req, now + cfg_.l2HitLatency);
                break;
              case CacheOutcome::MissNew:
                inputQueue_.pop();
                dram_.enqueue(req, amap_.decode(req.lineAddr));
                break;
              case CacheOutcome::MissMerged:
                inputQueue_.pop();
                break;
              case CacheOutcome::Stall:
                break; // Retry next cycle.
            }
        }
    }

    // 2. Advance the DRAM command clock at its ratio of the core clock.
    dramPhase_ += cfg_.dramClockRatio;
    while (dramPhase_ >= 1.0) {
        dramPhase_ -= 1.0;
        DramCompletion done;
        if (!dram_.tick(done))
            continue;
        // Completed stores need no response and no fill.
        if (done.req.type == MemAccessType::Store)
            continue;
        // Fill L2 (unless this app bypasses it) and wake every
        // merged requester.
        l2_.fill(done.req.lineAddr, done.req.app, done.req.bypassL2,
                 fillScratch_);
        for (const MemRequest &w : fillScratch_.waiters)
            scheduleResponse(w, now + cfg_.l2HitLatency);
    }

    // 3. Release responses whose latency has elapsed.
    while (!pending_.empty() && pending_.top().readyAt <= now) {
        out.push_back(pending_.top().resp);
        pending_.pop();
    }
}

Cycle
MemoryPartition::nextEventCycle(Cycle now) const
{
    if (!inputQueue_.empty() || dram_.queueDepth() != 0)
        return now + 1;
    if (!pending_.empty()) {
        const Cycle ready = pending_.top().readyAt;
        return ready > now ? ready : now + 1;
    }
    return kNeverCycle;
}

void
MemoryPartition::fastForward(Cycle cycles)
{
    if (!inputQueue_.empty() || dram_.queueDepth() != 0)
        panic("MemoryPartition: fast-forward with queued work");
    // Step the phase accumulator exactly as `cycles` serial ticks
    // would: the same float additions in the same order, so the DRAM
    // command clock lands on the same core cycles afterwards.
    std::uint64_t dram_ticks = 0;
    for (Cycle c = 0; c < cycles; ++c) {
        dramPhase_ += cfg_.dramClockRatio;
        while (dramPhase_ >= 1.0) {
            dramPhase_ -= 1.0;
            ++dram_ticks;
        }
    }
    dram_.advanceIdle(dram_ticks);
}

void
MemoryPartition::checkpoint()
{
    l2_.stats().checkpoint();
    dram_.checkpoint();
}

void
MemoryPartition::reset()
{
    l2_.reset();
    dram_.reset();
    inputQueue_.clear();
    dramPhase_ = 0.0;
    while (!pending_.empty())
        pending_.pop();
}

MemoryPartition::Snapshot
MemoryPartition::snapshot() const
{
    Snapshot snap;
    snap.l2 = l2_.snapshot();
    snap.dram = dram_.snapshot();
    snap.inputQueue = inputQueue_;
    snap.dramPhase = dramPhase_;
    snap.pending = pending_;
    return snap;
}

void
MemoryPartition::restore(const Snapshot &snap)
{
    if (snap.inputQueue.capacity() != inputQueue_.capacity())
        fatal("MemoryPartition: snapshot shape mismatch");
    l2_.restore(snap.l2);
    dram_.restore(snap.dram);
    inputQueue_ = snap.inputQueue;
    dramPhase_ = snap.dramPhase;
    pending_ = snap.pending;
    // The fill scratch is cleared before every use; leave it empty so
    // a restored instance matches a cold one byte-for-byte in
    // behaviour without carrying transient capacity around.
    fillScratch_.waiters.clear();
}

} // namespace ebm
