#include "mem/mshr.hpp"

#include "common/log.hpp"

namespace ebm {

MshrFile::MshrFile(std::uint32_t entries, std::uint32_t targets_per_entry)
    : maxEntries_(entries), maxTargets_(targets_per_entry)
{
    if (entries == 0 || targets_per_entry == 0)
        fatal("MshrFile: entries and targets must be > 0");
}

MshrOutcome
MshrFile::registerMiss(const MemRequest &req)
{
    auto it = entries_.find(req.lineAddr);
    if (it != entries_.end()) {
        if (it->second.size() >= maxTargets_)
            return MshrOutcome::Stall;
        it->second.push_back(req);
        return MshrOutcome::Merged;
    }
    if (full())
        return MshrOutcome::Stall;
    entries_.emplace(req.lineAddr, std::vector<MemRequest>{req});
    return MshrOutcome::NewEntry;
}

bool
MshrFile::inFlight(Addr line_addr) const
{
    return entries_.count(line_addr) != 0;
}

std::vector<MemRequest>
MshrFile::completeFill(Addr line_addr)
{
    auto it = entries_.find(line_addr);
    if (it == entries_.end())
        panic("MshrFile: fill for a line with no MSHR entry");
    std::vector<MemRequest> waiters = std::move(it->second);
    entries_.erase(it);
    return waiters;
}

} // namespace ebm
