#include "mem/mshr.hpp"

#include "common/log.hpp"
#include "common/rng.hpp"

namespace ebm {

namespace {

/** Smallest power of two >= n, at least 2x for a low load factor. */
std::size_t
tableSizeFor(std::uint32_t entries)
{
    std::size_t size = 4;
    while (size < static_cast<std::size_t>(entries) * 2)
        size <<= 1;
    return size;
}

} // namespace

MshrFile::MshrFile(std::uint32_t entries, std::uint32_t targets_per_entry)
    : maxEntries_(entries),
      maxTargets_(targets_per_entry),
      tableMask_(tableSizeFor(entries) - 1),
      slots_(tableMask_ + 1)
{
    if (entries == 0 || targets_per_entry == 0)
        fatal("MshrFile: entries and targets must be > 0");
    // Worst case every entry holds a full chain of targets; the pool
    // never needs to grow after this.
    pool_.resize(static_cast<std::size_t>(maxEntries_) * maxTargets_);
    clear();
}

std::size_t
MshrFile::probeIndex(Addr line_addr) const
{
    return static_cast<std::size_t>(mix64(line_addr)) & tableMask_;
}

std::uint32_t
MshrFile::findSlot(Addr line_addr) const
{
    std::size_t i = probeIndex(line_addr);
    while (slots_[i].used) {
        if (slots_[i].line == line_addr)
            return static_cast<std::uint32_t>(i);
        i = (i + 1) & tableMask_;
    }
    return kNil;
}

std::uint32_t
MshrFile::allocNode(const MemRequest &req)
{
    if (freeHead_ == kNil)
        panic("MshrFile: waiter pool exhausted");
    const std::uint32_t node = freeHead_;
    freeHead_ = pool_[node].next;
    pool_[node].req = req;
    pool_[node].next = kNil;
    return node;
}

MshrOutcome
MshrFile::registerMiss(const MemRequest &req)
{
    const std::uint32_t found = findSlot(req.lineAddr);
    if (found != kNil) {
        Slot &slot = slots_[found];
        if (slot.count >= maxTargets_)
            return MshrOutcome::Stall;
        const std::uint32_t node = allocNode(req);
        pool_[slot.tail].next = node;
        slot.tail = node;
        ++slot.count;
        return MshrOutcome::Merged;
    }
    if (full())
        return MshrOutcome::Stall;

    std::size_t i = probeIndex(req.lineAddr);
    while (slots_[i].used)
        i = (i + 1) & tableMask_;
    Slot &slot = slots_[i];
    slot.line = req.lineAddr;
    slot.head = slot.tail = allocNode(req);
    slot.count = 1;
    slot.used = true;
    ++used_;
    return MshrOutcome::NewEntry;
}

bool
MshrFile::inFlight(Addr line_addr) const
{
    return findSlot(line_addr) != kNil;
}

void
MshrFile::eraseSlot(std::uint32_t slot)
{
    // Backward-shift deletion keeps linear probing tombstone-free:
    // following entries whose probe path crossed the hole move back
    // into it, so lookups stay correct and probes stay short forever.
    std::size_t hole = slot;
    std::size_t i = hole;
    for (;;) {
        i = (i + 1) & tableMask_;
        if (!slots_[i].used)
            break;
        const std::size_t home = probeIndex(slots_[i].line);
        // Move i into the hole unless its home position lies strictly
        // inside (hole, i] on the probe circle.
        if (((i - home) & tableMask_) >= ((i - hole) & tableMask_)) {
            slots_[hole] = slots_[i];
            hole = i;
        }
    }
    slots_[hole] = Slot{};
    --used_;
}

void
MshrFile::completeFill(Addr line_addr, std::vector<MemRequest> &out)
{
    const std::uint32_t found = findSlot(line_addr);
    if (found == kNil)
        panic("MshrFile: fill for a line with no MSHR entry");
    Slot &slot = slots_[found];
    std::uint32_t node = slot.head;
    while (node != kNil) {
        out.push_back(std::move(pool_[node].req));
        const std::uint32_t next = pool_[node].next;
        pool_[node].next = freeHead_;
        freeHead_ = node;
        node = next;
    }
    eraseSlot(found);
}

std::vector<MemRequest>
MshrFile::completeFill(Addr line_addr)
{
    std::vector<MemRequest> waiters;
    completeFill(line_addr, waiters);
    return waiters;
}

void
MshrFile::restore(const Snapshot &snap)
{
    if (snap.slots.size() != slots_.size() ||
        snap.pool.size() != pool_.size())
        fatal("MshrFile: snapshot capacity mismatch");
    used_ = snap.used;
    freeHead_ = snap.freeHead;
    slots_ = snap.slots;
    pool_ = snap.pool;
}

void
MshrFile::clear()
{
    for (Slot &slot : slots_)
        slot = Slot{};
    used_ = 0;
    // Rebuild the free list over the whole pool.
    freeHead_ = kNil;
    for (std::uint32_t n = static_cast<std::uint32_t>(pool_.size());
         n-- > 0;) {
        pool_[n].next = freeHead_;
        freeHead_ = n;
    }
}

} // namespace ebm
