/**
 * @file
 * The memory transaction that flows core -> L1 -> crossbar -> L2 ->
 * DRAM and back. Every request carries its owning application id so
 * per-application bandwidth and miss rates are attributable at every
 * level of the hierarchy (the paper's monitor needs this).
 */
#pragma once

#include <cstdint>

#include "common/types.hpp"

namespace ebm {

/** Type of a memory transaction. */
enum class MemAccessType : std::uint8_t {
    Load,  ///< Read of one cache line.
    Store, ///< Write of one cache line (write-through, no allocate).
};

/** One cache-line-granularity transaction. */
struct MemRequest
{
    Addr lineAddr = 0;          ///< Line-aligned byte address.
    MemAccessType type = MemAccessType::Load;
    AppId app = kInvalidApp;    ///< Owning application.
    CoreId core = 0;            ///< Issuing core (for the response path).
    WarpId warp = 0;            ///< Issuing warp (for wakeup).
    Cycle issuedAt = 0;         ///< Core cycle the request left the core.
    bool bypassL1 = false;      ///< Mod+Bypass: skip L1 allocation.
    bool bypassL2 = false;      ///< Mod+Bypass: skip L2 allocation.
};

/** A completed transaction heading back to its core. */
struct MemResponse
{
    Addr lineAddr = 0;
    AppId app = kInvalidApp;
    CoreId core = 0;
    WarpId warp = 0;
    bool bypassL1 = false;
};

} // namespace ebm
