/**
 * @file
 * Per-application access/miss accounting for one cache instance.
 *
 * Both cumulative and windowed (sampling-interval) miss rates are
 * exposed because the paper's hardware monitor computes miss rates per
 * sampling window, while end-of-run metrics use cumulative values.
 */
#pragma once

#include <vector>

#include "common/log.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"

namespace ebm {

/** Access/miss counters for each co-scheduled application. */
class CacheStats
{
  public:
    explicit CacheStats(std::uint32_t num_apps)
        : accesses_(num_apps), misses_(num_apps)
    {
    }

    void
    recordAccess(AppId app, bool miss)
    {
        if (app >= accesses_.size())
            panic("CacheStats: out-of-range app id");
        accesses_[app].add();
        if (miss)
            misses_[app].add();
    }

    /** Cumulative miss rate for @p app (1.0 when no accesses yet). */
    double
    missRate(AppId app) const
    {
        return totalRatio(misses_[app], accesses_[app], 1.0);
    }

    /** Miss rate for @p app over the current sampling window. */
    double
    windowMissRate(AppId app) const
    {
        return windowRatio(misses_[app], accesses_[app], 1.0);
    }

    std::uint64_t accesses(AppId app) const { return accesses_[app].total(); }
    std::uint64_t misses(AppId app) const { return misses_[app].total(); }

    /** Accesses by @p app in the current sampling window. */
    std::uint64_t windowAccesses(AppId app) const
    {
        return accesses_[app].sinceCheckpoint();
    }

    /** Misses by @p app in the current sampling window. */
    std::uint64_t windowMisses(AppId app) const
    {
        return misses_[app].sinceCheckpoint();
    }

    /** Start a new sampling window for all apps. */
    void
    checkpoint()
    {
        for (auto &c : accesses_)
            c.checkpoint();
        for (auto &c : misses_)
            c.checkpoint();
    }

    void
    reset()
    {
        for (auto &c : accesses_)
            c.reset();
        for (auto &c : misses_)
            c.reset();
    }

    /**
     * Both totals and window checkpoints, so a restored machine's
     * next windowed miss rate equals the cold run's.
     */
    struct Snapshot
    {
        std::vector<Counter> accesses;
        std::vector<Counter> misses;

        std::size_t
        heapBytes() const
        {
            return (accesses.capacity() + misses.capacity()) *
                   sizeof(Counter);
        }
    };

    Snapshot snapshot() const { return Snapshot{accesses_, misses_}; }

    void
    restore(const Snapshot &snap)
    {
        if (snap.accesses.size() != accesses_.size())
            fatal("CacheStats: snapshot app-count mismatch");
        accesses_ = snap.accesses;
        misses_ = snap.misses;
    }

  private:
    std::vector<Counter> accesses_;
    std::vector<Counter> misses_;
};

} // namespace ebm
