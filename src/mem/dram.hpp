/**
 * @file
 * A GDDR5-like DRAM channel with banked timing and an FR-FCFS
 * (first-ready, first-come-first-served) memory controller.
 *
 * The controller scans its request queue each DRAM command cycle and
 * prioritizes (1) column accesses to already-open rows (row hits),
 * then (2) the oldest request. Bank state machines enforce
 * tRCD/tRP/tRAS/tCCD/tRRD constraints; the shared data bus serializes
 * bursts. Per-application useful-data-cycle counters provide the
 * attained-bandwidth half of the paper's EB metric.
 */
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/config.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"
#include "mem/address_map.hpp"
#include "mem/mem_request.hpp"

namespace ebm {

/** A request waiting inside the memory controller. */
struct DramCommand
{
    MemRequest req;
    DramCoord coord;
    std::uint32_t group = 0;    ///< Bank group (derived once on enqueue).
    Cycle enqueuedAt = 0;       ///< DRAM cycle of arrival (for FCFS age).
    bool causedActivate = false; ///< This request opened its row itself.
};

/** A serviced request leaving the channel. */
struct DramCompletion
{
    MemRequest req;
    Cycle readyAt = 0; ///< DRAM cycle at which data is fully returned.
};

/** Timing state machine of one DRAM bank. */
struct DramBank
{
    bool rowOpen = false;
    std::uint64_t openRow = 0;
    Cycle readyForActivate = 0; ///< Earliest next ACT (tRP honoured).
    Cycle readyForColumn = 0;   ///< Earliest next RD/WR (tRCD honoured).
    Cycle rowOpenedAt = 0;      ///< For the tRAS constraint.
};

/** One DRAM channel + its FR-FCFS controller. */
class DramChannel
{
  public:
    DramChannel(const GpuConfig &cfg, std::uint32_t num_apps);

    /** Can another request be accepted this cycle? */
    bool queueFull() const { return queue_.size() >= queueCap_; }

    /** Enqueue a request (caller must check queueFull()). */
    void enqueue(const MemRequest &req, const DramCoord &coord);

    /**
     * Advance one DRAM command cycle; may issue one column access, or
     * one activate, or one precharge. At most one request completes
     * per cycle (the single data bus): if one did, it is written to
     * @p out and the call returns true.
     */
    bool tick(DramCompletion &out);

    /**
     * Batch-advance @p cycles command cycles with an empty queue:
     * identical to @p cycles tick() calls that find nothing to do
     * (the cycle counter still advances — it feeds the
     * bandwidth-normalization denominator). Panics if work is queued.
     */
    void advanceIdle(std::uint64_t cycles);

    /** Current DRAM cycle count. */
    Cycle now() const { return now_; }

    /** Requests currently queued (for utilization heuristics). */
    std::size_t queueDepth() const { return queue_.size(); }

    // --- Statistics --------------------------------------------------

    /** Data-bus cycles carrying useful data for @p app (cumulative). */
    std::uint64_t dataCycles(AppId app) const
    {
        return dataCycles_[app].total();
    }

    /** Data-bus cycles for @p app in the current sampling window. */
    std::uint64_t windowDataCycles(AppId app) const
    {
        return dataCycles_[app].sinceCheckpoint();
    }

    std::uint64_t rowHits() const { return rowHits_.total(); }
    std::uint64_t rowMisses() const { return rowMisses_.total(); }
    std::uint64_t requestsServiced() const { return serviced_.total(); }

    /** Start a new sampling window. */
    void checkpoint();

    void reset();

    /**
     * Full controller state: the clock, bus/bank timing machines, the
     * age-ordered FR-FCFS queue, the fruitless-scan skip mark, and
     * all counters (totals + window checkpoints). Timing parameters
     * and capacities are immutable per instance.
     */
    struct Snapshot
    {
        Cycle now = 0;
        Cycle busFreeAt = 0;
        Cycle lastActivateAt = 0;
        Cycle scanSkipUntil = 0;
        std::vector<DramBank> banks;
        std::vector<Cycle> lastColumnInGroup;
        std::vector<DramCommand> queue;
        std::vector<Counter> dataCycles;
        Counter rowHits;
        Counter rowMisses;
        Counter serviced;

        std::size_t
        heapBytes() const
        {
            return banks.capacity() * sizeof(DramBank) +
                   lastColumnInGroup.capacity() * sizeof(Cycle) +
                   queue.capacity() * sizeof(DramCommand) +
                   dataCycles.capacity() * sizeof(Counter);
        }
    };

    Snapshot snapshot() const;
    void restore(const Snapshot &snap);

  private:
    const DramTiming timing_;
    const std::uint32_t banksPerGroup_;
    const std::uint32_t capCycles_; ///< FR-FCFS starvation cap.
    Cycle now_ = 0;
    Cycle busFreeAt_ = 0;       ///< Data bus occupied until this cycle.
    Cycle lastActivateAt_ = 0;  ///< For the tRRD constraint.
    std::vector<DramBank> banks_;
    /** Last column access per bank group, for tCCDl vs tCCDs. */
    std::vector<Cycle> lastColumnInGroup_;
    /**
     * The FR-FCFS request queue, age-ordered front to back. A flat
     * vector (capacity reserved once, bounded by queueCap_) so the
     * controller's per-cycle priority scans run over contiguous
     * memory; mid-queue removal shifts, preserving age order.
     */
    std::vector<DramCommand> queue_;
    std::size_t queueCap_;
    /**
     * No command can become issuable before this cycle (set by a scan
     * that found nothing; cleared on enqueue and on every issue).
     * Lets the controller skip the O(queue) priority scans while all
     * commands sit out fixed timing constraints.
     */
    Cycle scanSkipUntil_ = 0;

    std::vector<Counter> dataCycles_;
    Counter rowHits_;
    Counter rowMisses_;
    Counter serviced_;
};

} // namespace ebm
