/**
 * @file
 * Global linear address space decomposition.
 *
 * The global address space is interleaved among memory partitions in
 * fixed-size chunks (256 B in the paper's Table I). Within a channel,
 * banks are interleaved at row granularity with a bank-group-aware
 * XOR hash so streaming accesses spread over bank groups.
 */
#pragma once

#include <bit>
#include <cstdint>

#include "common/config.hpp"
#include "common/types.hpp"

namespace ebm {

/** Decoded location of a line within the DRAM system. */
struct DramCoord
{
    PartitionId partition = 0;
    std::uint32_t bank = 0;
    std::uint64_t row = 0;
    std::uint32_t col = 0; ///< Column (line index within the row).
};

/** Address decomposition helper bound to one GpuConfig. */
class AddressMap
{
  public:
    explicit AddressMap(const GpuConfig &cfg);

    /** Align an arbitrary byte address down to its cache line. */
    Addr lineAlign(Addr addr) const { return addr & ~Addr{lineBytes_ - 1}; }

    /**
     * Memory partition (channel / L2 slice) owning @p addr. Called
     * for every load and store a core issues, so the division is a
     * shift+mask whenever interleave size and partition count are
     * powers of two (they are in every stock configuration).
     */
    PartitionId
    partitionOf(Addr addr) const
    {
        if (fastPath_) {
            return static_cast<PartitionId>((addr >> interleaveShift_) &
                                            (numPartitions_ - 1));
        }
        return static_cast<PartitionId>((addr / interleaveBytes_) %
                                        numPartitions_);
    }

    /** Full DRAM coordinates of a line address. */
    DramCoord decode(Addr line_addr) const;

    std::uint32_t lineBytes() const { return lineBytes_; }
    std::uint32_t numPartitions() const { return numPartitions_; }

  private:
    std::uint32_t lineBytes_;
    std::uint32_t interleaveBytes_;
    std::uint32_t numPartitions_;
    std::uint32_t banks_;
    std::uint32_t rowBytes_;
    /** Both interleaveBytes_ and numPartitions_ are powers of two. */
    bool fastPath_;
    std::uint32_t interleaveShift_;
};

} // namespace ebm
