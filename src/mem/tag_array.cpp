#include "mem/tag_array.hpp"

#include <bit>

#include "common/log.hpp"

namespace ebm {

TagArray::TagArray(const CacheGeometry &geom)
    : numSets_(geom.numSets()),
      assoc_(geom.assoc),
      lineBytes_(geom.lineBytes),
      fastIndex_(std::has_single_bit(lineBytes_) &&
                 std::has_single_bit(numSets_)),
      lineShift_(
          static_cast<std::uint32_t>(std::countr_zero(lineBytes_))),
      ways_(static_cast<std::size_t>(geom.numSets()) * geom.assoc)
{
    if (numSets_ == 0 || assoc_ == 0)
        fatal("TagArray: degenerate geometry");
}

std::uint32_t
TagArray::setIndex(Addr line_addr) const
{
    if (fastIndex_) {
        return static_cast<std::uint32_t>(line_addr >> lineShift_) &
               (numSets_ - 1);
    }
    return static_cast<std::uint32_t>((line_addr / lineBytes_) % numSets_);
}

TagLookup
TagArray::access(Addr line_addr, AppId app, bool allocate)
{
    TagLookup result;
    const std::uint32_t set = setIndex(line_addr);
    Way *base = &ways_[static_cast<std::size_t>(set) * assoc_];
    ++useClock_;

    // Victim selection honours the app's way partition (if any);
    // hits are permitted in any way.
    std::uint32_t victim_first = 0;
    std::uint32_t victim_end = assoc_;
    if (app < partitions_.size() && partitions_[app].count != 0) {
        victim_first = partitions_[app].first;
        victim_end = victim_first + partitions_[app].count;
    }

    Way *victim = nullptr;
    for (std::uint32_t w = 0; w < assoc_; ++w) {
        Way &way = base[w];
        if (way.valid && way.tag == line_addr) {
            way.lastUse = useClock_;
            result.hit = true;
            return result;
        }
        if (w < victim_first || w >= victim_end)
            continue;
        if (!way.valid) {
            if (!victim || victim->valid)
                victim = &way;
        } else if (!victim || (victim->valid &&
                               way.lastUse < victim->lastUse)) {
            victim = &way;
        }
    }

    if (!allocate || victim == nullptr)
        return result;

    if (victim->valid) {
        result.evictedValid = true;
        result.evictedLine = victim->tag;
        result.evictedApp = victim->app;
    }
    victim->valid = true;
    victim->tag = line_addr;
    victim->app = app;
    victim->lastUse = useClock_;
    return result;
}

bool
TagArray::probe(Addr line_addr) const
{
    const std::uint32_t set = setIndex(line_addr);
    const Way *base = &ways_[static_cast<std::size_t>(set) * assoc_];
    for (std::uint32_t w = 0; w < assoc_; ++w) {
        if (base[w].valid && base[w].tag == line_addr)
            return true;
    }
    return false;
}

bool
TagArray::touch(Addr line_addr)
{
    const std::uint32_t set = setIndex(line_addr);
    Way *base = &ways_[static_cast<std::size_t>(set) * assoc_];
    for (std::uint32_t w = 0; w < assoc_; ++w) {
        if (base[w].valid && base[w].tag == line_addr) {
            base[w].lastUse = ++useClock_;
            return true;
        }
    }
    return false;
}

bool
TagArray::invalidate(Addr line_addr)
{
    const std::uint32_t set = setIndex(line_addr);
    Way *base = &ways_[static_cast<std::size_t>(set) * assoc_];
    for (std::uint32_t w = 0; w < assoc_; ++w) {
        if (base[w].valid && base[w].tag == line_addr) {
            base[w].valid = false;
            return true;
        }
    }
    return false;
}

std::uint32_t
TagArray::linesOwnedBy(AppId app) const
{
    std::uint32_t count = 0;
    for (const Way &way : ways_) {
        if (way.valid && way.app == app)
            ++count;
    }
    return count;
}

void
TagArray::flush()
{
    for (Way &way : ways_)
        way.valid = false;
    useClock_ = 0;
}

void
TagArray::restore(const Snapshot &snap)
{
    if (snap.ways.size() != ways_.size())
        fatal("TagArray: snapshot geometry mismatch");
    useClock_ = snap.useClock;
    ways_ = snap.ways;
    partitions_ = snap.partitions;
}

void
TagArray::setWayPartition(AppId app, std::uint32_t first,
                          std::uint32_t count)
{
    if (count == 0 || first + count > assoc_)
        fatal("TagArray: way partition out of range");
    if (partitions_.size() <= app)
        partitions_.resize(app + 1);
    partitions_[app] = WayRange{first, count};
}

void
TagArray::clearWayPartition(AppId app)
{
    if (app < partitions_.size())
        partitions_[app] = WayRange{};
}

} // namespace ebm
