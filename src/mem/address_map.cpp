#include "mem/address_map.hpp"

#include "common/rng.hpp"

namespace ebm {

AddressMap::AddressMap(const GpuConfig &cfg)
    : lineBytes_(cfg.l2Slice.lineBytes),
      interleaveBytes_(cfg.interleaveBytes),
      numPartitions_(cfg.numPartitions),
      banks_(cfg.banksPerChannel),
      rowBytes_(cfg.rowBytes),
      fastPath_(std::has_single_bit(interleaveBytes_) &&
                std::has_single_bit(numPartitions_)),
      interleaveShift_(
          static_cast<std::uint32_t>(std::countr_zero(interleaveBytes_)))
{
}

DramCoord
AddressMap::decode(Addr line_addr) const
{
    DramCoord coord;
    coord.partition = partitionOf(line_addr);

    // Address within the partition-local space: strip the channel
    // interleaving so consecutive chunks on a channel are contiguous.
    const Addr chunk = line_addr / interleaveBytes_;
    const Addr local =
        (chunk / numPartitions_) * interleaveBytes_ +
        (line_addr % interleaveBytes_);

    const Addr row_linear = local / rowBytes_;
    // XOR-fold high row bits into the bank index so row-sequential
    // streams rotate across banks and bank groups.
    const std::uint64_t hashed = row_linear ^ (row_linear / banks_);
    coord.bank = static_cast<std::uint32_t>(hashed % banks_);
    coord.row = row_linear / banks_;
    coord.col = static_cast<std::uint32_t>((local % rowBytes_) / lineBytes_);
    return coord;
}

} // namespace ebm
