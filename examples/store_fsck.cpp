/**
 * @file
 * Offline scrub/repair CLI for v3 binary result stores.
 *
 *   store_fsck <store>                 scrub, report, touch nothing
 *   store_fsck --repair <store>        scrub; on damage, quarantine
 *                                      the bad bytes and re-emit the
 *                                      canonical compacted store
 *   store_fsck --make-fixture <store>  write the deterministic
 *                                      corrupted fixture (CI uses it
 *                                      to exercise the repair path)
 *
 * Exit codes: 0 = clean, 1 = damage found (repaired when --repair),
 * 2 = unrecoverable or usage/I/O error.
 */
#include <cstdio>
#include <cstring>
#include <string>

#include "harness/store_fsck.hpp"

int
main(int argc, char **argv)
{
    bool repair = false;
    bool make_fixture = false;
    std::string path;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--repair") == 0) {
            repair = true;
        } else if (std::strcmp(argv[i], "--make-fixture") == 0) {
            make_fixture = true;
        } else if (argv[i][0] == '-') {
            std::fprintf(stderr, "store_fsck: unknown option %s\n",
                         argv[i]);
            return 2;
        } else if (path.empty()) {
            path = argv[i];
        } else {
            std::fprintf(stderr, "store_fsck: one store at a time\n");
            return 2;
        }
    }
    if (path.empty()) {
        std::fprintf(stderr,
                     "usage: store_fsck [--repair|--make-fixture] "
                     "<store>\n");
        return 2;
    }

    if (make_fixture) {
        if (!ebm::writeFsckFixture(path)) {
            std::fprintf(stderr,
                         "store_fsck: cannot write fixture %s\n",
                         path.c_str());
            return 2;
        }
        std::printf("store_fsck: wrote corrupted fixture %s\n",
                    path.c_str());
        return 0;
    }

    ebm::FsckOptions options;
    options.repair = repair;
    const ebm::FsckReport report = ebm::fsckStore(path, options);
    std::printf("%s: %s\n", path.c_str(),
                report.summaryLine().c_str());
    if (!report.quarantinePath.empty())
        std::printf("quarantined bytes: %s\n",
                    report.quarantinePath.c_str());

    switch (report.verdict) {
      case ebm::FsckReport::Verdict::Clean:
        return 0;
      case ebm::FsckReport::Verdict::Dirty:
        return 1;
      case ebm::FsckReport::Verdict::Unrecoverable:
        return 2;
    }
    return 2;
}
