/**
 * @file
 * TLP landscape explorer: sweep every TLP combination of a two-app
 * workload and print the EB-WS, WS, and FI surfaces as matrices —
 * the raw material behind the paper's Figures 6 and 7, for any pair.
 * Sweeps are memoized in the shared disk cache, so the second
 * invocation on a pair is instant.
 *
 * Usage: tlp_landscape [APP1 APP2]    (defaults to BLK TRD)
 */
#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "harness/experiment.hpp"
#include "metrics/metrics.hpp"
#include "workload/app_catalog.hpp"
#include "workload/workload_suite.hpp"

using namespace ebm;

namespace {

void
printMatrix(const char *title, const ComboTable &table,
            const std::vector<std::string> &names,
            const std::function<double(const TlpCombo &)> &value)
{
    std::printf("%s (rows: TLP-%s, cols: TLP-%s)\n\n", title,
                names[0].c_str(), names[1].c_str());
    std::printf("%8s", "");
    for (std::uint32_t b : table.levels)
        std::printf("%8u", b);
    std::printf("\n");
    for (std::uint32_t a : table.levels) {
        std::printf("%8u", a);
        for (std::uint32_t b : table.levels)
            std::printf("%8.3f", value({a, b}));
        std::printf("\n");
    }
    std::printf("\n");
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string a = argc > 1 ? argv[1] : "BLK";
    const std::string b = argc > 2 ? argv[2] : "TRD";
    if (!hasApp(a) || !hasApp(b)) {
        std::fprintf(stderr, "unknown app (see Table IV catalog)\n");
        return 1;
    }

    Experiment exp(2);
    const Workload wl = makePair(a, b);
    std::printf("Sweeping all %zu^2 TLP combinations of %s "
                "(cached after the first run)...\n\n",
                GpuConfig::tlpLevels().size(), wl.name.c_str());
    const ComboTable table = exp.exhaustive().sweep(wl);
    const std::vector<double> alone = exp.aloneIpcs(wl);
    const std::vector<std::string> names = {a, b};

    printMatrix("EB-WS (the paper's runtime objective)", table, names,
                [&](const TlpCombo &c) {
                    return ebWeightedSpeedup(table.at(c).ebs());
                });
    printMatrix("WS (SD-based, needs alone profiles)", table, names,
                [&](const TlpCombo &c) {
                    return Exhaustive::value(table, c, OptTarget::SdWS,
                                             alone);
                });
    printMatrix("FI (SD-based fairness)", table, names,
                [&](const TlpCombo &c) {
                    return Exhaustive::value(table, c, OptTarget::SdFI,
                                             alone);
                });

    const TlpCombo best = exp.bestTlpCombo(wl);
    const TlpCombo opt_ws =
        Exhaustive::argmax(table, OptTarget::SdWS, alone);
    const TlpCombo bf_ws = Exhaustive::argmax(table, OptTarget::EbWS);
    std::printf("++bestTLP = (%u,%u); optWS = (%u,%u); "
                "EB-WS argmax = (%u,%u)\n",
                best[0], best[1], opt_ws[0], opt_ws[1], bf_ws[0],
                bf_ws[1]);
    std::printf("\nLook for the paper's pattern: the EB-WS surface "
                "drops past the critical app's knee on every row (or "
                "column), independent of the co-runner's TLP.\n");
    return 0;
}
