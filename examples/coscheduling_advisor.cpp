/**
 * @file
 * Co-scheduling advisor: given a set of applications waiting to run,
 * evaluate every pairing under PBS-WS and report which pairs co-exist
 * well (high combined WS) and which should not share the GPU — the
 * scheduling decision the paper's introduction motivates.
 *
 * Usage: coscheduling_advisor [APP1 APP2 ...]
 *        (defaults to BLK BFS TRD JPEG LUD)
 */
#include <algorithm>
#include <cstddef>
#include <cstdio>
#include <string>
#include <vector>

#include "core/pbs_policy.hpp"
#include "harness/experiment.hpp"
#include "harness/table.hpp"
#include "workload/app_catalog.hpp"
#include "workload/workload_suite.hpp"

using namespace ebm;

int
main(int argc, char **argv)
{
    std::vector<std::string> names;
    for (int i = 1; i < argc; ++i)
        names.emplace_back(argv[i]);
    if (names.empty())
        names = {"BLK", "BFS", "TRD", "JPEG", "LUD"};
    for (const std::string &name : names) {
        if (!hasApp(name)) {
            std::fprintf(stderr,
                         "unknown app '%s' (see Table IV catalog)\n",
                         name.c_str());
            return 1;
        }
    }
    // A duplicate would be paired with itself below; reject it with a
    // clear message instead of reporting a nonsense "A_A" row.
    std::vector<std::string> sorted_names = names;
    std::sort(sorted_names.begin(), sorted_names.end());
    const auto dup =
        std::adjacent_find(sorted_names.begin(), sorted_names.end());
    if (dup != sorted_names.end()) {
        std::fprintf(stderr,
                     "app '%s' listed more than once; each candidate "
                     "appears at most once\n",
                     dup->c_str());
        return 1;
    }

    Experiment exp(2);
    std::printf("Co-scheduling advisor: %zu candidate apps, "
                "%zu pairs\n\n",
                names.size(), names.size() * (names.size() - 1) / 2);

    struct PairScore
    {
        std::string name;
        double ws;
        double fi;
        TlpCombo tlp;
    };
    std::vector<PairScore> scores;

    for (std::size_t i = 0; i < names.size(); ++i) {
        for (std::size_t j = i + 1; j < names.size(); ++j) {
            const Workload wl = makePair(names[i], names[j]);
            PbsPolicy::Params params;
            params.objective = EbObjective::WS;
            PbsPolicy pbs(params);
            const RunResult r =
                exp.onlineRunner().run(resolveApps(wl), pbs);
            const SdScores s = exp.score(wl, r);
            scores.push_back({wl.name, s.ws, s.fi, r.finalTlp});
        }
    }

    std::sort(scores.begin(), scores.end(),
              [](const PairScore &a, const PairScore &b) {
                  return a.ws > b.ws;
              });

    TextTable out({"Rank", "Pair", "WS (PBS-WS)", "FI", "chosen TLP"});
    for (std::size_t i = 0; i < scores.size(); ++i) {
        const PairScore &p = scores[i];
        out.addRow({std::to_string(i + 1), p.name,
                    TextTable::num(p.ws), TextTable::num(p.fi),
                    "(" + std::to_string(p.tlp[0]) + "," +
                        std::to_string(p.tlp[1]) + ")"});
    }
    out.print();

    std::printf("\nPairs near WS=2.0 barely interfere; pairs far "
                "below 1.0 contend so heavily they are better run "
                "sequentially.\n");
    return 0;
}
