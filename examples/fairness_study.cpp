/**
 * @file
 * Fairness study: a bandwidth hog (TRD) co-located with a
 * cache-sensitive victim (BFS). Shows how each policy family trades
 * system throughput against slowdown balance, and how PBS-FI's
 * scaled-EB balancing restores fairness that ++bestTLP destroys.
 */
#include <cstdio>
#include <string>
#include <vector>

#include "core/ccws.hpp"
#include "core/dyncta.hpp"
#include "core/mod_bypass.hpp"
#include "core/pbs_policy.hpp"
#include "harness/experiment.hpp"
#include "harness/table.hpp"
#include "workload/app_catalog.hpp"
#include "workload/workload_suite.hpp"

using namespace ebm;

int
main()
{
    Experiment exp(2);
    const Workload wl = makePair("TRD", "BFS");
    const std::vector<AppProfile> apps = resolveApps(wl);

    std::printf("Fairness study: bandwidth hog %s vs cache-sensitive "
                "%s\n\n",
                wl.appNames[0].c_str(), wl.appNames[1].c_str());

    TextTable out({"Scheme", "SD-TRD", "SD-BFS", "WS", "FI", "HS"});
    auto report = [&](const std::string &name, const RunResult &r) {
        const SdScores s = exp.score(wl, r);
        out.addRow({name, TextTable::num(s.sds[0]),
                    TextTable::num(s.sds[1]), TextTable::num(s.ws),
                    TextTable::num(s.fi), TextTable::num(s.hs)});
        return s;
    };

    {
        StaticTlpPolicy policy("++maxTLP",
                               {GpuConfig::tlpLevels().back(),
                                GpuConfig::tlpLevels().back()});
        report("++maxTLP", exp.runner().run(apps, policy));
    }
    {
        StaticTlpPolicy policy("++bestTLP", exp.bestTlpCombo(wl));
        report("++bestTLP", exp.runner().run(apps, policy));
    }
    {
        DynCta policy;
        report("++DynCTA", exp.onlineRunner().run(apps, policy));
    }
    {
        Ccws policy;
        report("++CCWS", exp.onlineRunner().run(apps, policy));
    }
    {
        ModBypass policy;
        report("Mod+Bypass", exp.onlineRunner().run(apps, policy));
    }
    {
        PbsPolicy::Params params;
        params.objective = EbObjective::WS;
        PbsPolicy policy(params);
        report("PBS-WS", exp.onlineRunner().run(apps, policy));
    }
    {
        PbsPolicy::Params params;
        params.objective = EbObjective::FI;
        params.scaling = ScalingMode::SampledAlone;
        params.settleWindows = 1;
        params.measureWindows = 2;
        PbsPolicy policy(params);
        report("PBS-FI", exp.onlineRunner().run(apps, policy));
    }
    {
        PbsPolicy::Params params;
        params.objective = EbObjective::HS;
        params.scaling = ScalingMode::SampledAlone;
        params.settleWindows = 1;
        params.measureWindows = 2;
        PbsPolicy policy(params);
        report("PBS-HS", exp.onlineRunner().run(apps, policy));
    }
    out.print();

    std::printf("\nReading guide: FI=1 means both apps slow down "
                "equally. PBS-FI should show the most balanced SD "
                "column pair; PBS-WS the highest WS; PBS-HS a "
                "compromise.\n");
    return 0;
}
