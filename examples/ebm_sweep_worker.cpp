/**
 * @file
 * `ebm_sweep_worker`: one worker of the distributed sweep fabric.
 * Connects to an ebm_coordinator (EBM_COORDINATOR or --coordinator),
 * runs the ordinary profile + exhaustive-sweep dispatch loop for one
 * workload pair, and leases each missing row over TCP — simulating
 * only the rows it wins and streaming their CRC-framed v3 records
 * back. The local --cache file is private scratch in this mode; the
 * coordinator's store is the one that matters.
 *
 * Without a coordinator the same binary is just a serial filler
 * (useful for producing the reference store the distributed runs are
 * byte-compared against).
 *
 * Usage: ebm_sweep_worker [--coordinator HOST:PORT] [--pair A B]
 *                         [--cache FILE] [--fast] [--jobs N]
 *                         [--compact]
 *
 *   --coordinator HOST:PORT  lease rows from here (or EBM_COORDINATOR)
 *   --pair A B     catalog abbreviations (default BFS FFT)
 *   --cache FILE   local store (default: DiskCache::defaultPath())
 *   --fast         tiny 4-core machine + short runs (CI / demos)
 *   --jobs N       worker threads for the sweep
 *   --compact      compact the local store before exiting
 */
#include <cstdlib>
#include <string>
#include <vector>

#include "common/job_pool.hpp"
#include "common/log.hpp"
#include "harness/exhaustive.hpp"
#include "harness/experiment.hpp"
#include "harness/profile_db.hpp"
#include "workload/workload_suite.hpp"

using namespace ebm;

namespace {

/** The tests' tiny machine: cold fills in seconds, not minutes
 * (fingerprint-separated from the standard machine's keys). */
GpuConfig
fastConfig()
{
    GpuConfig cfg;
    cfg.numCores = 4;
    cfg.numPartitions = 2;
    cfg.numApps = 2;
    cfg.maxWarpsPerCore = 16;
    cfg.schedulersPerCore = 2;
    cfg.l1 = {8 * 1024, 4, 128, 16, 4};
    cfg.l2Slice = {64 * 1024, 8, 128, 32, 4};
    cfg.banksPerChannel = 8;
    cfg.bankGroups = 4;
    cfg.frfcfsQueueDepth = 32;
    return cfg;
}

RunOptions
fastOptions()
{
    RunOptions opts;
    opts.warmupCycles = 1000;
    opts.measureCycles = 6000;
    opts.windowCycles = 500;
    return opts;
}

} // namespace

int
main(int argc, char **argv)
{
    return runGuarded("ebm_sweep_worker", [&] {
        std::string coordinator;
        std::string cache_path;
        std::string app_a = "BFS";
        std::string app_b = "FFT";
        bool fast = false;
        bool compact_on_exit = false;
        applyJobsFlag(argc, argv);
        for (int i = 1; i < argc; ++i) {
            const std::string arg = argv[i];
            if (arg == "--coordinator" && i + 1 < argc) {
                coordinator = argv[++i];
            } else if (arg == "--pair" && i + 2 < argc) {
                app_a = argv[++i];
                app_b = argv[++i];
            } else if (arg == "--cache" && i + 1 < argc) {
                cache_path = argv[++i];
            } else if (arg == "--fast") {
                fast = true;
            } else if (arg == "--compact") {
                compact_on_exit = true;
            } else if ((arg == "--jobs" || arg == "-j") &&
                       i + 1 < argc) {
                ++i; // consumed by applyJobsFlag above
            } else if (arg.rfind("--jobs=", 0) == 0) {
                // consumed by applyJobsFlag above
            } else {
                fatal(Error{Errc::InvalidArgument,
                            "unknown argument '" + arg +
                                "' (see the file header for usage)"});
            }
        }

        // The dispatch gate reads EBM_COORDINATOR; the flag is just a
        // convenience spelling of the same contract.
        if (!coordinator.empty())
            ::setenv("EBM_COORDINATOR", coordinator.c_str(), 1);

        if (cache_path.empty())
            cache_path = DiskCache::defaultPath();
        DiskCache cache(cache_path);

        GpuConfig cfg =
            fast ? fastConfig() : Experiment::standardConfig(2);
        cfg.numApps = 2;
        const RunOptions opts =
            fast ? fastOptions() : Experiment::standardOptions();
        Runner runner(cfg, opts);

        const Workload wl = makePair(app_a, app_b);
        inform("ebm_sweep_worker: filling " + wl.name +
               (std::getenv("EBM_COORDINATOR") != nullptr
                    ? std::string(" via coordinator ") +
                          std::getenv("EBM_COORDINATOR")
                    : std::string(" standalone")));

        ProfileDb profiles(runner, cache);
        Exhaustive exhaustive(runner, cache);
        for (const AppProfile &app : resolveApps(wl))
            profiles.profile(app);
        const ComboTable table = exhaustive.sweep(wl);
        inform("ebm_sweep_worker: " + wl.name + " table has " +
               std::to_string(table.combos.size()) + " rows; " +
               exhaustive.status().summaryLine());

        cache.sync();
        if (compact_on_exit && !cache.compact())
            warn("ebm_sweep_worker: final compaction failed");
        return 0;
    });
}
