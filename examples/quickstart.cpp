/**
 * @file
 * Quickstart: co-schedule two applications from the catalog, run the
 * ++bestTLP baseline and the PBS-WS runtime manager, and print the
 * system throughput and fairness of both. This is the minimal "aha"
 * path through the public API:
 *
 *   catalog -> Runner -> (StaticTlpPolicy | PbsPolicy) -> metrics.
 */
#include <cstdio>
#include <vector>

#include "core/pbs_policy.hpp"
#include "harness/experiment.hpp"
#include "workload/app_catalog.hpp"
#include "workload/workload_suite.hpp"

using namespace ebm;

int
main()
{
    // An Experiment bundles the scaled Table-I machine, the alone-run
    // profiler, and a disk cache for repeated invocations.
    Experiment exp(2);
    const Workload wl = makePair("BLK", "BFS");
    const std::vector<AppProfile> apps = resolveApps(wl);

    std::printf("Quickstart: co-scheduling %s and %s on a %u-core "
                "GPU\n\n",
                wl.appNames[0].c_str(), wl.appNames[1].c_str(),
                exp.runner().config().numCores);

    // 1. Profile each app alone to find bestTLP and IPC-alone.
    for (const AppProfile &app : apps) {
        const AppAloneProfile &prof = exp.profiles().profile(app);
        std::printf("  %s alone: bestTLP=%u, IPC=%.3f, EB=%.3f\n",
                    app.name.c_str(), prof.bestTlp, prof.ipcAtBest,
                    prof.ebAtBest);
    }

    // 2. Baseline: each app keeps its solo-best TLP (++bestTLP).
    StaticTlpPolicy baseline("++bestTLP", exp.bestTlpCombo(wl));
    const RunResult base = exp.runner().run(apps, baseline);
    const SdScores base_scores = exp.score(wl, base);

    // 3. PBS-WS: the paper's runtime pattern-based search. Each probe
    // discards one settle window and averages two measurement windows
    // so one noisy sample cannot derail the search.
    PbsPolicy::Params params;
    params.objective = EbObjective::WS;
    params.settleWindows = 1;
    params.measureWindows = 2;
    PbsPolicy pbs(params);
    const RunResult tuned = exp.onlineRunner().run(apps, pbs);
    const SdScores pbs_scores = exp.score(wl, tuned);

    std::printf("\n  %-12s %8s %8s %8s   final TLP\n", "scheme", "WS",
                "FI", "HS");
    std::printf("  %-12s %8.3f %8.3f %8.3f   (%u,%u)\n", "++bestTLP",
                base_scores.ws, base_scores.fi, base_scores.hs,
                base.finalTlp[0], base.finalTlp[1]);
    std::printf("  %-12s %8.3f %8.3f %8.3f   (%u,%u) after %u "
                "samples\n",
                "PBS-WS", pbs_scores.ws, pbs_scores.fi, pbs_scores.hs,
                tuned.finalTlp[0], tuned.finalTlp[1],
                tuned.samplesTaken);

    std::printf("\nPBS-WS improved system throughput by %.1f%%.\n",
                100.0 * (pbs_scores.ws / base_scores.ws - 1.0));
    return 0;
}
