/**
 * @file
 * Machine inspector: run a two-application workload at a chosen TLP
 * combination and dump the full machine-state report — per-app EB
 * metrics, per-core issue/stall breakdowns, per-partition row-hit
 * rates and bus utilization. The fastest way to understand *why* a
 * TLP combination behaves as it does.
 *
 * Usage: machine_inspector [APP1 APP2 [TLP1 TLP2]]
 *        (defaults to BLK BFS at each app's bestTLP-ish 6,6)
 */
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "harness/experiment.hpp"
#include "harness/report.hpp"
#include "workload/app_catalog.hpp"
#include "workload/workload_suite.hpp"

using namespace ebm;

int
main(int argc, char **argv)
{
    const std::string a = argc > 1 ? argv[1] : "BLK";
    const std::string b = argc > 2 ? argv[2] : "BFS";
    if (!hasApp(a) || !hasApp(b)) {
        std::fprintf(stderr, "unknown app (see Table IV catalog)\n");
        return 1;
    }
    const std::uint32_t tlp0 =
        argc > 3 ? static_cast<std::uint32_t>(std::atoi(argv[3])) : 6;
    const std::uint32_t tlp1 =
        argc > 4 ? static_cast<std::uint32_t>(std::atoi(argv[4])) : 6;

    GpuConfig cfg = Experiment::standardConfig(2);
    Gpu gpu(cfg, {findApp(a), findApp(b)});
    gpu.setAppTlp(0, tlp0);
    gpu.setAppTlp(1, tlp1);

    std::printf("Inspecting %s (app0) + %s (app1) at TLP (%u,%u), "
                "35k cycles...\n\n",
                a.c_str(), b.c_str(), tlp0, tlp1);
    gpu.run(35'000);

    MachineReport report(gpu);
    std::fputs(report.full().c_str(), stdout);

    std::printf("\nReading guide: EB = BW/CMR is the paper's utility "
                "metric. High stall%% rows are congestion-limited; "
                "high memWait%% with low stall%% rows are latency "
                "limited (raise TLP); low row-hit%% under high bus "
                "util%% means TLP is thrashing DRAM row buffers "
                "(lower TLP).\n");
    return 0;
}
