/**
 * @file
 * One-shot client for the advisor serving daemon (ebm_advised):
 * frames the request tokens, sends them over the daemon's socket,
 * prints the reply payload, and exits 0 on OK, 2 on PENDING (poll
 * again with the printed ticket), 1 on anything else.
 *
 * Usage: ebm_advise_client [--socket PATH] VERB [TOKENS...]
 *
 *   ebm_advise_client ADVISE BFS FFT
 *   ebm_advise_client ADVISE BFS FFT OBJ FI WAIT 60000
 *   ebm_advise_client PAIR BLK BFS TRD OBJ WS
 *   ebm_advise_client POLL 7
 *   ebm_advise_client STATS
 *   ebm_advise_client SHUTDOWN
 */
#include <cstdio>
#include <string>
#include <vector>

#include "common/log.hpp"
#include "common/net.hpp"
#include "harness/serve_protocol.hpp"

using namespace ebm;

int
main(int argc, char **argv)
{
    return runGuarded("ebm_advise_client", [&] {
        std::string socket_path = "ebm_advised.sock";
        std::vector<std::string> tokens;
        for (int i = 1; i < argc; ++i) {
            const std::string arg = argv[i];
            if (arg == "--socket" && i + 1 < argc)
                socket_path = argv[++i];
            else
                tokens.push_back(arg);
        }
        if (tokens.empty()) {
            fatal(Error{Errc::InvalidArgument,
                        "no request given (see the file header for "
                        "usage)"});
        }
        std::string payload;
        for (const std::string &tok : tokens) {
            if (!payload.empty())
                payload += ' ';
            payload += tok;
        }

        auto conn = netConnectUnix(socket_path);
        if (!conn.ok())
            fatal(conn.error());
        const int fd = conn.value().get();
        if (!servefmt::sendFrame(fd, payload)) {
            fatal(Error{Errc::CacheIo,
                        "failed to send request to " + socket_path});
        }
        servefmt::FrameReader reader;
        std::string reply;
        if (!servefmt::recvFrame(fd, reader, reply)) {
            fatal(Error{Errc::CacheIo,
                        "daemon closed the connection without a "
                        "reply"});
        }
        std::printf("%s\n", reply.c_str());
        if (reply.rfind("OK", 0) == 0)
            return 0;
        if (reply.rfind("PENDING", 0) == 0)
            return 2;
        return 1;
    });
}
