/**
 * @file
 * `ebm_coordinator`: the lease/record server of the distributed sweep
 * fabric (DESIGN.md §8.6). Owns one v3 result store and hands out row
 * leases over TCP; ebm_sweep_worker processes stream CRC-framed v3
 * records back, which this daemon group-commits through its own
 * DiskCache writer — so the compacted store is byte-identical to a
 * serial fill no matter how many workers (or worker crashes)
 * contributed.
 *
 * Usage: ebm_coordinator [--cache FILE] [--host ADDR] [--port N]
 *                        [--stale-ms N] [--compact]
 *                        [--no-remote-shutdown]
 *
 *   --cache FILE   result store (default: DiskCache::defaultPath())
 *   --host ADDR    numeric bind address (default 127.0.0.1)
 *   --port N       TCP port; 0 = kernel-assigned, printed at startup
 *   --stale-ms N   lease staleness window (default EBM_CLAIM_STALE_MS)
 *   --compact      compact the store on shutdown (canonical bytes)
 *   --no-remote-shutdown  ignore the SHUTDOWN verb (Ctrl-C only)
 *
 * Point workers at the printed address:
 *
 *   EBM_COORDINATOR=127.0.0.1:7733 ebm_sweep_worker --pair BFS FFT
 */
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>

#include "common/log.hpp"
#include "harness/coordinator.hpp"
#include "harness/disk_cache.hpp"
#include "harness/experiment.hpp"

using namespace ebm;

int
main(int argc, char **argv)
{
    return runGuarded("ebm_coordinator", [&] {
        Coordinator::Options opts;
        std::string cache_path;
        bool compact_on_exit = false;
        opts.allowRemoteShutdown = true;
        for (int i = 1; i < argc; ++i) {
            const std::string arg = argv[i];
            if (arg == "--cache" && i + 1 < argc) {
                cache_path = argv[++i];
            } else if (arg == "--host" && i + 1 < argc) {
                opts.host = argv[++i];
            } else if (arg == "--port" && i + 1 < argc) {
                opts.port = static_cast<std::uint16_t>(
                    std::strtoul(argv[++i], nullptr, 10));
            } else if (arg == "--stale-ms" && i + 1 < argc) {
                opts.staleThreshold = std::chrono::milliseconds(
                    std::strtoll(argv[++i], nullptr, 10));
            } else if (arg == "--compact") {
                compact_on_exit = true;
            } else if (arg == "--no-remote-shutdown") {
                opts.allowRemoteShutdown = false;
            } else {
                fatal(Error{Errc::InvalidArgument,
                            "unknown argument '" + arg +
                                "' (see the file header for usage)"});
            }
        }

        if (cache_path.empty())
            cache_path = DiskCache::defaultPath();
        DiskCache cache(cache_path);
        inform("ebm_coordinator: store " + cache_path + " loaded (" +
               std::to_string(cache.size()) + " entries)");

        Coordinator coordinator(cache, opts);
        const Status started = coordinator.start();
        if (!started.ok())
            fatal(started.error());
        // Machine-greppable address line: scripts read this to build
        // the workers' EBM_COORDINATOR (the port may be ephemeral).
        std::printf("EBM_COORDINATOR=%s\n",
                    coordinator.address().c_str());
        std::fflush(stdout);
        inform("ebm_coordinator: serving on " + coordinator.address() +
               "; SHUTDOWN verb or SIGINT/SIGTERM stops it");

        static std::atomic<bool> interrupted{false};
        std::signal(SIGINT, [](int) { interrupted.store(true); });
        std::signal(SIGTERM, [](int) { interrupted.store(true); });
        while (!coordinator.shutdownRequested() &&
               !interrupted.load(std::memory_order_relaxed)) {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(100));
        }

        inform("ebm_coordinator: shutting down");
        coordinator.stop();
        cache.sync();
        if (compact_on_exit && !cache.compact())
            warn("ebm_coordinator: final compaction failed");
        inform("ebm_coordinator: " +
               coordinator.stats().summaryLine());
        return 0;
    });
}
