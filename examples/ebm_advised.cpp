/**
 * @file
 * `ebm-advised`: the advisor serving daemon (ROADMAP item 1).
 *
 * Loads the v3 result store once at startup and answers co-scheduling
 * queries over a Unix-domain socket: a pair whose exhaustive sweep and
 * alone profiles are already in the store is answered from memory in
 * microseconds; a cold pair is filled asynchronously on the ordinary
 * sweep machinery (JobPool parallelism, durable persistence, shard
 * claims) while the client polls a ticket or blocks under a deadline.
 *
 * Usage: ebm_advised [--socket PATH] [--cache FILE] [--fast]
 *                    [--jobs N] [--coordinator HOST:PORT]
 *                    [--no-remote-shutdown]
 *
 *   --socket PATH  listen here (default ./ebm_advised.sock)
 *   --cache FILE   result store (default: DiskCache::defaultPath(),
 *                  i.e. $EBM_CACHE_DIR/ebm_results.cache)
 *   --fast         tiny 4-core machine + short runs, so cold fills
 *                  finish in seconds (CI smoke / demos; keys are
 *                  fingerprint-separated from the standard machine)
 *   --jobs N       worker threads per miss fill
 *   --coordinator HOST:PORT  lease cold-fill rows from an
 *                  ebm_coordinator (sets EBM_COORDINATOR), so this
 *                  daemon's miss fills fan out across the same worker
 *                  fleet instead of simulating every row locally
 *   --no-remote-shutdown  ignore the SHUTDOWN verb (Ctrl-C only)
 *
 * Query it with ebm_advise_client, e.g.:
 *
 *   ebm_advise_client ADVISE BFS FFT OBJ WS WAIT 60000
 *   ebm_advise_client STATS
 */
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <string>
#include <thread>

#include "common/job_pool.hpp"
#include "common/log.hpp"
#include "harness/advisor_service.hpp"
#include "harness/experiment.hpp"

using namespace ebm;

namespace {

std::atomic<bool> g_interrupted{false};

void
onSignal(int)
{
    g_interrupted.store(true, std::memory_order_relaxed);
}

/** The tests' tiny machine: cold fills in seconds, not minutes. */
GpuConfig
fastConfig()
{
    GpuConfig cfg;
    cfg.numCores = 4;
    cfg.numPartitions = 2;
    cfg.numApps = 2;
    cfg.maxWarpsPerCore = 16;
    cfg.schedulersPerCore = 2;
    cfg.l1 = {8 * 1024, 4, 128, 16, 4};
    cfg.l2Slice = {64 * 1024, 8, 128, 32, 4};
    cfg.banksPerChannel = 8;
    cfg.bankGroups = 4;
    cfg.frfcfsQueueDepth = 32;
    return cfg;
}

RunOptions
fastOptions()
{
    RunOptions opts;
    opts.warmupCycles = 1000;
    opts.measureCycles = 6000;
    opts.windowCycles = 500;
    return opts;
}

} // namespace

int
main(int argc, char **argv)
{
    return runGuarded("ebm_advised", [&] {
        std::string socket_path = "ebm_advised.sock";
        std::string cache_path;
        bool fast = false;
        bool remote_shutdown = true;
        applyJobsFlag(argc, argv);
        for (int i = 1; i < argc; ++i) {
            const std::string arg = argv[i];
            if (arg == "--socket" && i + 1 < argc) {
                socket_path = argv[++i];
            } else if (arg == "--cache" && i + 1 < argc) {
                cache_path = argv[++i];
            } else if (arg == "--fast") {
                fast = true;
            } else if (arg == "--coordinator" && i + 1 < argc) {
                // The sweep dispatch gate reads EBM_COORDINATOR; the
                // flag is a convenience spelling of the same contract.
                ::setenv("EBM_COORDINATOR", argv[++i], 1);
            } else if (arg == "--no-remote-shutdown") {
                remote_shutdown = false;
            } else if ((arg == "--jobs" || arg == "-j") &&
                       i + 1 < argc) {
                ++i; // consumed by applyJobsFlag above
            } else if (arg.rfind("--jobs=", 0) == 0) {
                // consumed by applyJobsFlag above
            } else {
                fatal(Error{Errc::InvalidArgument,
                            "unknown argument '" + arg +
                                "' (see the file header for usage)"});
            }
        }

        if (cache_path.empty())
            cache_path = DiskCache::defaultPath();
        DiskCache cache(cache_path);
        inform("ebm_advised: store " + cache_path + " loaded (" +
               std::to_string(cache.size()) + " entries)");

        GpuConfig cfg =
            fast ? fastConfig() : Experiment::standardConfig(2);
        cfg.numApps = 2;
        const RunOptions opts =
            fast ? fastOptions() : Experiment::standardOptions();
        Runner runner(cfg, opts);
        AdvisorService::Options svc_opts{};
        AdvisorService service(runner, cache, svc_opts);

        AdvisorServer::Options srv_opts;
        srv_opts.socketPath = socket_path;
        srv_opts.allowRemoteShutdown = remote_shutdown;
        AdvisorServer server(service, srv_opts);
        const Status started = server.start();
        if (!started.ok())
            fatal(started.error());
        inform("ebm_advised: serving on " + socket_path +
               (fast ? " (fast machine)" : "") +
               "; SHUTDOWN verb or SIGINT/SIGTERM stops it");

        std::signal(SIGINT, onSignal);
        std::signal(SIGTERM, onSignal);
        while (!server.shutdownRequested() &&
               !g_interrupted.load(std::memory_order_relaxed)) {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(100));
        }

        inform("ebm_advised: shutting down");
        server.stop();
        const auto s = service.stats();
        inform("ebm_advised: served " + std::to_string(s.requests) +
               " queries (" + std::to_string(s.hits) + " hits, " +
               std::to_string(s.misses) + " misses, " +
               std::to_string(s.fillsCompleted) + " fills)");
        return 0;
    });
}
