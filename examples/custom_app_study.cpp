/**
 * @file
 * Custom application study: define a *new* synthetic application (not
 * in the Table IV catalog) from first principles — memory intensity,
 * working-set sizes, coalescing — then characterize its TLP behaviour
 * alone and under co-location with a catalog app. Demonstrates the
 * workload-modelling half of the public API.
 */
#include <cstdint>
#include <cstdio>
#include <vector>

#include "core/pbs_policy.hpp"
#include "harness/experiment.hpp"
#include "harness/table.hpp"
#include "workload/app_catalog.hpp"

using namespace ebm;

int
main()
{
    // A "graph sampling" style kernel: moderately memory intensive,
    // small hot vertex cache per warp, a shared edge structure that
    // fits in L2, and a slice of truly random far edges.
    AppProfile custom;
    custom.name = "GRAPHX";
    custom.seed = 991;
    custom.mlpBurst = 3;
    custom.computeRun = 7;
    custom.fracL1Reuse = 0.40;
    custom.fracL2Reuse = 0.30;
    custom.fracRandom = 0.10;
    custom.l1ReuseLines = 16;
    custom.l2ReuseLines = 3000;
    custom.randomLinesPerAccess = 2;

    Experiment exp(2);
    Runner &runner = exp.runner();

    std::printf("Custom app study: %s (r_m=%.2f)\n\n",
                custom.name.c_str(), custom.memFraction());

    // 1. Alone characterization across the TLP ladder.
    std::printf("Alone TLP sweep (per-app core share):\n\n");
    TextTable sweep({"TLP", "IPC", "BW", "L1MR", "L2MR", "EB"});
    std::uint32_t best_tlp = 1;
    double best_ipc = -1.0;
    for (std::uint32_t tlp : GpuConfig::tlpLevels()) {
        const RunResult r = runner.runAlone(custom, tlp);
        const AppRunStats &s = r.apps[0];
        sweep.addRow({std::to_string(tlp), TextTable::num(s.ipc),
                      TextTable::num(s.bw), TextTable::num(s.l1Mr),
                      TextTable::num(s.l2Mr), TextTable::num(s.eb())});
        if (s.ipc > best_ipc) {
            best_ipc = s.ipc;
            best_tlp = tlp;
        }
    }
    sweep.print();
    std::printf("\n%s bestTLP = %u (IPC %.3f)\n\n", custom.name.c_str(),
                best_tlp, best_ipc);

    // 2. Co-locate with a catalog streaming app under PBS-WS.
    const AppProfile &partner = findApp("TRD");
    const std::vector<AppProfile> pair = {custom, partner};
    const double partner_alone =
        exp.profiles().profile(partner).ipcAtBest;

    StaticTlpPolicy baseline(
        "++bestTLP",
        {best_tlp, exp.profiles().profile(partner).bestTlp});
    const RunResult base = runner.run(pair, baseline);

    PbsPolicy::Params params;
    params.objective = EbObjective::WS;
    PbsPolicy pbs(params);
    const RunResult tuned = runner.run(pair, pbs);

    auto ws = [&](const RunResult &r) {
        return slowdown(r.apps[0].ipc, best_ipc) +
               slowdown(r.apps[1].ipc, partner_alone);
    };
    std::printf("Co-located with %s:\n", partner.name.c_str());
    std::printf("  ++bestTLP: WS=%.3f at TLP (%u,%u)\n", ws(base),
                base.finalTlp[0], base.finalTlp[1]);
    std::printf("  PBS-WS:    WS=%.3f at TLP (%u,%u), %u samples\n",
                ws(tuned), tuned.finalTlp[0], tuned.finalTlp[1],
                tuned.samplesTaken);
    std::printf("\nAny application expressible as an AppProfile gets "
                "the full PBS treatment — no catalog entry needed.\n");
    return 0;
}
