#include "common/job_pool.hpp"

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

namespace ebm {
namespace {

/** RAII guard: pins EBM_JOBS and the process override, restores both. */
class JobsEnvGuard
{
  public:
    JobsEnvGuard()
    {
        const char *env = std::getenv("EBM_JOBS");
        hadEnv_ = env != nullptr;
        if (hadEnv_)
            saved_ = env;
    }

    ~JobsEnvGuard()
    {
        JobPool::setDefaultJobs(0);
        if (hadEnv_)
            ::setenv("EBM_JOBS", saved_.c_str(), 1);
        else
            ::unsetenv("EBM_JOBS");
    }

  private:
    bool hadEnv_ = false;
    std::string saved_;
};

TEST(JobPool, RunsEverySubmittedJob)
{
    std::vector<int> slots(100, 0);
    {
        JobPool pool(4);
        for (std::size_t i = 0; i < slots.size(); ++i)
            pool.submit([&slots, i] { slots[i] = static_cast<int>(i); });
        pool.wait();
    }
    for (std::size_t i = 0; i < slots.size(); ++i)
        EXPECT_EQ(slots[i], static_cast<int>(i));
}

TEST(JobPool, BackPressureBoundsTheQueueButLosesNothing)
{
    // Queue depth 2 with many more submissions: submitters block
    // instead of buffering unboundedly, and every job still runs.
    std::atomic<int> ran{0};
    {
        JobPool pool(2, /*queue_depth=*/2);
        for (int i = 0; i < 500; ++i)
            pool.submit([&ran] { ran.fetch_add(1); });
        pool.wait();
    }
    EXPECT_EQ(ran.load(), 500);
}

TEST(JobPool, WaitCanBeCalledRepeatedly)
{
    JobPool pool(2);
    std::atomic<int> ran{0};
    pool.submit([&ran] { ran.fetch_add(1); });
    pool.wait();
    EXPECT_EQ(ran.load(), 1);
    pool.submit([&ran] { ran.fetch_add(1); });
    pool.wait();
    EXPECT_EQ(ran.load(), 2);
}

TEST(JobPool, WaitRethrowsTheFirstJobException)
{
    JobPool pool(2);
    for (int i = 0; i < 8; ++i) {
        pool.submit([] {
            throw FatalError({Errc::RunFailed, "worker died"});
        });
    }
    bool threw = false;
    try {
        pool.wait();
    } catch (const FatalError &e) {
        threw = true;
        EXPECT_NE(std::string(e.what()).find("worker died"),
                  std::string::npos);
    }
    EXPECT_TRUE(threw);

    // The pool survives: later exception-free rounds work.
    std::atomic<int> ran{0};
    pool.submit([&ran] { ran.fetch_add(1); });
    pool.wait();
    EXPECT_EQ(ran.load(), 1);
}

TEST(JobPool, DefaultJobsPrefersOverrideThenEnv)
{
    JobsEnvGuard guard;

    ::setenv("EBM_JOBS", "3", 1);
    JobPool::setDefaultJobs(0);
    EXPECT_EQ(JobPool::defaultJobs(), 3u);

    JobPool::setDefaultJobs(7);
    EXPECT_EQ(JobPool::defaultJobs(), 7u) << "override beats EBM_JOBS";

    JobPool::setDefaultJobs(0);
    ::unsetenv("EBM_JOBS");
    EXPECT_GE(JobPool::defaultJobs(), 1u) << "hardware fallback";
}

TEST(JobPool, DefaultJobsRejectsTrailingGarbageInEnv)
{
    JobsEnvGuard guard;
    JobPool::setDefaultJobs(0);

    ::unsetenv("EBM_JOBS");
    const unsigned fallback = JobPool::defaultJobs();

    // The historical hand-rolled strtoul accepted "8x" as 8; the
    // shared strict parser rejects it (with a warning) and falls back
    // to the hardware default instead.
    ::setenv("EBM_JOBS", "8x", 1);
    EXPECT_EQ(JobPool::defaultJobs(), fallback);

    ::setenv("EBM_JOBS", "-4", 1);
    EXPECT_EQ(JobPool::defaultJobs(), fallback);

    // An explicit 0 means "auto", like the constructor's 0.
    ::setenv("EBM_JOBS", "0", 1);
    EXPECT_EQ(JobPool::defaultJobs(), fallback);

    ::setenv("EBM_JOBS", "6", 1);
    EXPECT_EQ(JobPool::defaultJobs(), 6u);
}

TEST(JobPool, ApplyJobsFlagParsesTheSupportedSpellings)
{
    JobsEnvGuard guard;
    ::unsetenv("EBM_JOBS");

    const char *argv1[] = {"bench", "--jobs", "5"};
    EXPECT_EQ(applyJobsFlag(3, const_cast<char *const *>(argv1)), 5u);

    const char *argv2[] = {"bench", "--jobs=2"};
    EXPECT_EQ(applyJobsFlag(2, const_cast<char *const *>(argv2)), 2u);

    const char *argv3[] = {"bench", "-j", "9"};
    EXPECT_EQ(applyJobsFlag(3, const_cast<char *const *>(argv3)), 9u);
}

TEST(JobPool, ApplyJobsFlagIgnoresMalformedValues)
{
    JobsEnvGuard guard;
    ::unsetenv("EBM_JOBS");
    JobPool::setDefaultJobs(0);

    const unsigned fallback = JobPool::defaultJobs();
    const char *argv[] = {"bench", "--jobs", "banana"};
    EXPECT_EQ(applyJobsFlag(3, const_cast<char *const *>(argv)),
              fallback);
    const char *argv2[] = {"bench", "--jobs=0"};
    EXPECT_EQ(applyJobsFlag(2, const_cast<char *const *>(argv2)),
              fallback);
}

} // namespace
} // namespace ebm
