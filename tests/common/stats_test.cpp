#include "common/stats.hpp"

#include <gtest/gtest.h>

namespace ebm {
namespace {

TEST(Counter, StartsAtZero)
{
    Counter c;
    EXPECT_EQ(c.total(), 0u);
    EXPECT_EQ(c.sinceCheckpoint(), 0u);
}

TEST(Counter, AccumulatesAndWindows)
{
    Counter c;
    c.add(3);
    c.add();
    EXPECT_EQ(c.total(), 4u);
    EXPECT_EQ(c.sinceCheckpoint(), 4u);

    c.checkpoint();
    EXPECT_EQ(c.total(), 4u);
    EXPECT_EQ(c.sinceCheckpoint(), 0u);

    c.add(2);
    EXPECT_EQ(c.total(), 6u);
    EXPECT_EQ(c.sinceCheckpoint(), 2u);
}

TEST(Counter, ResetClearsEverything)
{
    Counter c;
    c.add(5);
    c.checkpoint();
    c.add(2);
    c.reset();
    EXPECT_EQ(c.total(), 0u);
    EXPECT_EQ(c.sinceCheckpoint(), 0u);
}

TEST(Ratios, WindowRatioBasic)
{
    Counter num, den;
    num.add(3);
    den.add(6);
    EXPECT_DOUBLE_EQ(windowRatio(num, den), 0.5);
}

TEST(Ratios, WindowRatioUsesWindowOnly)
{
    Counter num, den;
    num.add(10);
    den.add(10);
    num.checkpoint();
    den.checkpoint();
    num.add(1);
    den.add(4);
    EXPECT_DOUBLE_EQ(windowRatio(num, den), 0.25);
    EXPECT_DOUBLE_EQ(totalRatio(num, den), 11.0 / 14.0);
}

TEST(Ratios, FallbackOnEmptyDenominator)
{
    Counter num, den;
    EXPECT_DOUBLE_EQ(windowRatio(num, den, 1.0), 1.0);
    EXPECT_DOUBLE_EQ(totalRatio(num, den, 0.25), 0.25);
}

} // namespace
} // namespace ebm
