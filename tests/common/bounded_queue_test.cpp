#include "common/bounded_queue.hpp"

#include <gtest/gtest.h>

#include "../test_util.hpp"

namespace ebm {
namespace {

TEST(BoundedQueue, StartsEmpty)
{
    BoundedQueue<int> q(4);
    EXPECT_TRUE(q.empty());
    EXPECT_FALSE(q.full());
    EXPECT_EQ(q.size(), 0u);
    EXPECT_EQ(q.capacity(), 4u);
}

TEST(BoundedQueue, FifoOrder)
{
    BoundedQueue<int> q(4);
    q.push(1);
    q.push(2);
    q.push(3);
    EXPECT_EQ(q.pop(), 1);
    EXPECT_EQ(q.pop(), 2);
    EXPECT_EQ(q.pop(), 3);
    EXPECT_TRUE(q.empty());
}

TEST(BoundedQueue, FullAtCapacity)
{
    BoundedQueue<int> q(2);
    q.push(1);
    EXPECT_FALSE(q.full());
    q.push(2);
    EXPECT_TRUE(q.full());
}

TEST(BoundedQueue, TryPushRespectsCapacity)
{
    BoundedQueue<int> q(2);
    EXPECT_TRUE(q.tryPush(1));
    EXPECT_TRUE(q.tryPush(2));
    EXPECT_FALSE(q.tryPush(3));
    EXPECT_EQ(q.size(), 2u);
    EXPECT_EQ(q.front(), 1);
}

TEST(BoundedQueue, ExtractFromMiddle)
{
    BoundedQueue<int> q(8);
    for (int i = 0; i < 5; ++i)
        q.push(i);
    auto it = q.begin();
    ++it;
    ++it; // Points at 2.
    EXPECT_EQ(q.extract(it), 2);
    EXPECT_EQ(q.size(), 4u);
    EXPECT_EQ(q.pop(), 0);
    EXPECT_EQ(q.pop(), 1);
    EXPECT_EQ(q.pop(), 3);
    EXPECT_EQ(q.pop(), 4);
}

TEST(BoundedQueue, ClearEmpties)
{
    BoundedQueue<int> q(4);
    q.push(1);
    q.push(2);
    q.clear();
    EXPECT_TRUE(q.empty());
    EXPECT_TRUE(q.tryPush(9));
    EXPECT_EQ(q.front(), 9);
}

TEST(BoundedQueue, IterationSeesAllElements)
{
    BoundedQueue<int> q(8);
    int sum_in = 0;
    for (int i = 1; i <= 6; ++i) {
        q.push(i);
        sum_in += i;
    }
    int sum_out = 0;
    for (int v : q)
        sum_out += v;
    EXPECT_EQ(sum_out, sum_in);
}

TEST(BoundedQueueDeath, ZeroCapacityIsFatal)
{
    EXPECT_EBM_FATAL({ BoundedQueue<int> q(0); }, "capacity");
}

TEST(BoundedQueueDeath, PushFullPanics)
{
    BoundedQueue<int> q(1);
    q.push(1);
    EXPECT_EBM_FATAL(q.push(2), "full");
}

TEST(BoundedQueueDeath, PopEmptyPanics)
{
    BoundedQueue<int> q(1);
    EXPECT_EBM_FATAL(q.pop(), "empty");
}

TEST(BoundedQueueDeath, FrontEmptyPanics)
{
    BoundedQueue<int> q(1);
    EXPECT_EBM_FATAL(q.front(), "empty");
}

TEST(BoundedQueue, MoveOnlyPayload)
{
    BoundedQueue<std::unique_ptr<int>> q(2);
    q.push(std::make_unique<int>(42));
    auto p = q.pop();
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(*p, 42);
}

} // namespace
} // namespace ebm
