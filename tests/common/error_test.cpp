#include "common/error.hpp"

#include <gtest/gtest.h>

#include "../test_util.hpp"
#include "common/log.hpp"

namespace ebm {
namespace {

TEST(ErrorTest, ToStringCarriesCategoryAndMessage)
{
    const Error e{Errc::CacheCorrupt, "bad entry"};
    EXPECT_EQ(e.toString(), "[cache-corrupt] bad entry");
}

TEST(ErrorTest, EveryCategoryHasAName)
{
    for (int c = 0; c <= static_cast<int>(Errc::Internal); ++c) {
        EXPECT_STRNE(errcName(static_cast<Errc>(c)), "unknown");
    }
}

TEST(ErrorTest, JoinErrorsListsAllProblems)
{
    const std::string joined =
        joinErrors({{Errc::InvalidConfig, "first"},
                    {Errc::InvalidArgument, "second"}});
    EXPECT_NE(joined.find("first"), std::string::npos);
    EXPECT_NE(joined.find("second"), std::string::npos);
}

TEST(ResultTest, HoldsValue)
{
    const Result<int> r(42);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.value(), 42);
    EXPECT_EQ(r.valueOr(7), 42);
}

TEST(ResultTest, HoldsError)
{
    const Result<int> r(Error{Errc::CacheIo, "disk gone"});
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.error().code, Errc::CacheIo);
    EXPECT_EQ(r.valueOr(7), 7);
}

TEST(ResultTest, ValueOnErrorThrowsFatal)
{
    const Result<int> r(Error{Errc::CacheIo, "disk gone"});
    EXPECT_EBM_FATAL((void)r.value(), "disk gone");
}

TEST(StatusTest, DefaultIsSuccess)
{
    EXPECT_TRUE(Status().ok());
    EXPECT_FALSE(Status(Error{Errc::CacheIo, "x"}).ok());
}

TEST(LogTest, FatalThrowsFatalErrorWithCategory)
{
    try {
        fatal(Error{Errc::InvalidArgument, "bad input"});
        FAIL() << "fatal() returned";
    } catch (const FatalError &e) {
        EXPECT_EQ(e.code(), Errc::InvalidArgument);
        EXPECT_NE(std::string(e.what()).find("bad input"),
                  std::string::npos);
    }
}

TEST(LogTest, PanicThrowsInternalErrorByDefault)
{
    ASSERT_FALSE(panicAborts());
    EXPECT_THROW(panic("invariant broken"), InternalError);
}

TEST(LogTest, RunGuardedConvertsFatalToExitCode)
{
    const int rc = runGuarded("test", []() -> int {
        fatal("cannot continue");
    });
    EXPECT_EQ(rc, 1);
    EXPECT_EQ(runGuarded("test", [] { return 0; }), 0);
}

// The one remaining true death test: the opt-in hard abort for
// debugger use (EBM_ABORT_ON_PANIC / setPanicAborts).
TEST(LogDeath, OptInPanicAbortStillDumpsCore)
{
    EXPECT_DEATH(
        {
            setPanicAborts(true);
            panic("core dump wanted");
        },
        "core dump wanted");
}

} // namespace
} // namespace ebm
