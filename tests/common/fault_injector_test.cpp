#include "common/fault_injector.hpp"

#include <vector>

#include <gtest/gtest.h>

namespace ebm {
namespace {

using Point = FaultInjector::Point;

TEST(FaultInjectorTest, DisarmedNeverFires)
{
    FaultInjector fi(1);
    for (int i = 0; i < 1000; ++i)
        EXPECT_FALSE(fi.shouldFire(Point::CacheWriteFail));
    EXPECT_EQ(fi.queries(Point::CacheWriteFail), 1000u);
    EXPECT_EQ(fi.fired(Point::CacheWriteFail), 0u);
}

TEST(FaultInjectorTest, ArmAfterFiresOnExactQueries)
{
    FaultInjector fi(1);
    fi.armAfter(Point::RunFail, 3, 2);
    std::vector<bool> fired;
    for (int i = 0; i < 8; ++i)
        fired.push_back(fi.shouldFire(Point::RunFail));
    EXPECT_EQ(fired, (std::vector<bool>{false, false, false, true,
                                        true, false, false, false}));
    EXPECT_EQ(fi.fired(Point::RunFail), 2u);
}

TEST(FaultInjectorTest, ProbabilityIsDeterministicPerSeed)
{
    std::vector<bool> a, b;
    for (std::vector<bool> *out : {&a, &b}) {
        FaultInjector fi(99);
        fi.armProbability(Point::EbSampleNan, 0.3);
        for (int i = 0; i < 200; ++i)
            out->push_back(fi.shouldFire(Point::EbSampleNan));
    }
    EXPECT_EQ(a, b);

    // A different seed produces a different schedule.
    FaultInjector fi(100);
    fi.armProbability(Point::EbSampleNan, 0.3);
    std::vector<bool> c;
    for (int i = 0; i < 200; ++i)
        c.push_back(fi.shouldFire(Point::EbSampleNan));
    EXPECT_NE(a, c);
}

TEST(FaultInjectorTest, ProbabilityOneAlwaysFires)
{
    FaultInjector fi(7);
    fi.armProbability(Point::AppDrain, 1.0);
    for (int i = 0; i < 50; ++i)
        EXPECT_TRUE(fi.shouldFire(Point::AppDrain));
}

TEST(FaultInjectorTest, PointsAreIndependentStreams)
{
    FaultInjector fi(5);
    fi.armAfter(Point::CacheWriteFail, 0);
    EXPECT_TRUE(fi.shouldFire(Point::CacheWriteFail));
    EXPECT_FALSE(fi.shouldFire(Point::CacheReadTruncate));
    EXPECT_FALSE(fi.shouldFire(Point::EbSampleNan));
}

TEST(FaultInjectorTest, DisarmStopsFiring)
{
    FaultInjector fi(5);
    fi.armProbability(Point::RunFail, 1.0);
    EXPECT_TRUE(fi.shouldFire(Point::RunFail));
    fi.disarm(Point::RunFail);
    EXPECT_FALSE(fi.shouldFire(Point::RunFail));
}

TEST(FaultInjectorTest, PointsHaveNames)
{
    for (int p = 0; p < static_cast<int>(Point::kNumPoints); ++p) {
        EXPECT_STRNE(FaultInjector::name(static_cast<Point>(p)),
                     "unknown");
    }
}

} // namespace
} // namespace ebm
