#include "common/config.hpp"

#include <cstdlib>

#include <gtest/gtest.h>

#include "../test_util.hpp"

namespace ebm {
namespace {

TEST(GpuConfig, DefaultsValidate)
{
    GpuConfig cfg;
    cfg.validate(); // Must not exit.
    SUCCEED();
}

TEST(GpuConfig, TinyConfigValidates)
{
    test::tinyConfig(2).validate();
    SUCCEED();
}

TEST(GpuConfig, TlpLevelsAscendingAndSixtyFourCombos)
{
    const auto &levels = GpuConfig::tlpLevels();
    EXPECT_EQ(levels.size(), 8u) << "8 levels -> 64 two-app combos";
    for (std::size_t i = 1; i < levels.size(); ++i)
        EXPECT_LT(levels[i - 1], levels[i]);
    EXPECT_EQ(levels.front(), 1u);
}

TEST(GpuConfig, MaxTlpMatchesWarpAndSchedulerCounts)
{
    GpuConfig cfg;
    EXPECT_EQ(cfg.maxTlp(),
              cfg.maxWarpsPerCore / cfg.schedulersPerCore);
    EXPECT_EQ(GpuConfig::tlpLevels().back(), cfg.maxTlp())
        << "the top TLP level is maxTLP";
}

TEST(GpuConfig, CoresPerAppEqualSplit)
{
    GpuConfig cfg;
    cfg.numCores = 16;
    cfg.numApps = 2;
    EXPECT_EQ(cfg.coresPerApp(), 8u);
    cfg.numApps = 4;
    EXPECT_EQ(cfg.coresPerApp(), 4u);
}

TEST(GpuConfig, PeakBandwidthScalesWithPartitions)
{
    GpuConfig cfg;
    const double base = cfg.peakBytesPerCoreCycle();
    cfg.numPartitions *= 2;
    EXPECT_DOUBLE_EQ(cfg.peakBytesPerCoreCycle(), 2.0 * base);
}

TEST(GpuConfig, PeakBandwidthPositive)
{
    EXPECT_GT(GpuConfig{}.peakBytesPerCoreCycle(), 0.0);
}

TEST(CacheGeometry, NumSets)
{
    CacheGeometry g{16 * 1024, 4, 128, 32, 8};
    EXPECT_EQ(g.numSets(), 32u);
}

TEST(GpuConfigDeath, UnevenCoreSplitIsFatal)
{
    GpuConfig cfg;
    cfg.numCores = 15;
    cfg.numApps = 2;
    EXPECT_EBM_FATAL(cfg.validate(), "divide evenly");
}

TEST(GpuConfigDeath, ZeroAppsIsFatal)
{
    GpuConfig cfg;
    cfg.numApps = 0;
    EXPECT_EBM_FATAL(cfg.validate(), "numApps");
}

TEST(GpuConfigDeath, MismatchedLineSizesAreFatal)
{
    GpuConfig cfg;
    cfg.l1.lineBytes = 64;
    EXPECT_EBM_FATAL(cfg.validate(), "line sizes");
}

TEST(GpuConfigDeath, InterleaveSmallerThanLineIsFatal)
{
    GpuConfig cfg;
    cfg.interleaveBytes = 64;
    EXPECT_EBM_FATAL(cfg.validate(), "interleave");
}

TEST(GpuConfigDeath, BankGroupMismatchIsFatal)
{
    GpuConfig cfg;
    cfg.banksPerChannel = 10;
    cfg.bankGroups = 4;
    EXPECT_EBM_FATAL(cfg.validate(), "bank groups");
}

TEST(GpuConfigCheck, ReportsAllProblemsAtOnce)
{
    GpuConfig cfg;
    cfg.numApps = 0;
    cfg.l1.lineBytes = 64;
    cfg.interleaveBytes = 64;
    const std::vector<Error> errors = cfg.check();
    EXPECT_GE(errors.size(), 3u);
    // validate() folds the whole list into one error message.
    EXPECT_EBM_FATAL(cfg.validate(), "numApps");
    EXPECT_EBM_FATAL(cfg.validate(), "line sizes");
    EXPECT_EBM_FATAL(cfg.validate(), "interleave");
}

TEST(GpuConfigCheck, ValidConfigHasNoProblems)
{
    EXPECT_TRUE(GpuConfig().check().empty());
}

TEST(ParseUint, AcceptsOnlyWholeBase10Numbers)
{
    std::uint64_t v = 0;
    EXPECT_TRUE(parseUint("0", v));
    EXPECT_EQ(v, 0u);
    EXPECT_TRUE(parseUint("42", v));
    EXPECT_EQ(v, 42u);
    EXPECT_TRUE(parseUint("18446744073709551615", v));
    EXPECT_EQ(v, 18446744073709551615ull);

    v = 99;
    EXPECT_FALSE(parseUint(nullptr, v));
    EXPECT_FALSE(parseUint("", v));
    EXPECT_FALSE(parseUint("8x", v)) << "trailing garbage";
    EXPECT_FALSE(parseUint("x8", v));
    EXPECT_FALSE(parseUint("-1", v)) << "signs are not digits";
    EXPECT_FALSE(parseUint("+1", v));
    EXPECT_FALSE(parseUint(" 7", v)) << "no leading whitespace";
    EXPECT_FALSE(parseUint("3.5", v));
    EXPECT_FALSE(parseUint("18446744073709551616", v)) << "overflow";
    EXPECT_EQ(v, 99u) << "out untouched on rejection";
}

TEST(EnvUint, RejectsGarbageAndClamps)
{
    ::setenv("EBM_TEST_KNOB", "12", 1);
    EXPECT_EQ(envUint("EBM_TEST_KNOB", 5, 1, 100), 12u);
    ::setenv("EBM_TEST_KNOB", "12x", 1);
    EXPECT_EQ(envUint("EBM_TEST_KNOB", 5, 1, 100), 5u)
        << "trailing garbage falls back (with a warning)";
    ::setenv("EBM_TEST_KNOB", "1000", 1);
    EXPECT_EQ(envUint("EBM_TEST_KNOB", 5, 1, 100), 100u) << "clamped";
    ::unsetenv("EBM_TEST_KNOB");
    EXPECT_EQ(envUint("EBM_TEST_KNOB", 5, 1, 100), 5u);
}

} // namespace
} // namespace ebm
