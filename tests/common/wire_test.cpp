/**
 * @file
 * EBS1 wire framing (common/wire.hpp): encode/decode roundtrips,
 * incremental reassembly under adversarial chunking, corruption
 * rejection, and the FrameReader's amortized-O(1) buffer compaction
 * contract — total bytes moved by compaction never exceeds total
 * bytes consumed, no matter how many frames stream through one
 * long-lived reader.
 */
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/wire.hpp"

namespace ebm {
namespace wire {
namespace {

std::vector<std::string>
drainAll(FrameReader &reader, const std::string &bytes,
         std::size_t chunk)
{
    std::vector<std::string> frames;
    for (std::size_t off = 0; off < bytes.size(); off += chunk) {
        reader.feed(bytes.data() + off,
                    std::min(chunk, bytes.size() - off));
        std::string payload;
        while (reader.next(payload) == FrameReader::Status::Frame)
            frames.push_back(payload);
    }
    return frames;
}

TEST(WireFraming, EncodeDecodeRoundtrip)
{
    const std::string payload = "ACQ combo/abc/BFS_FFT/8/16";
    const std::string bytes = encodeFrame(payload);
    EXPECT_EQ(bytes.size(),
              kFrameHeadBytes + payload.size() + kFrameTailBytes);

    FrameReader reader;
    reader.feed(bytes.data(), bytes.size());
    std::string out;
    ASSERT_EQ(reader.next(out), FrameReader::Status::Frame);
    EXPECT_EQ(out, payload);
    EXPECT_EQ(reader.next(out), FrameReader::Status::NeedMore);
}

TEST(WireFraming, EmptyAndBinaryPayloadsRoundtrip)
{
    FrameReader reader;
    std::string binary("\x00\xff\x7f storefmt\n bytes", 20);
    const std::string bytes =
        encodeFrame("") + encodeFrame(binary);
    reader.feed(bytes.data(), bytes.size());
    std::string out;
    ASSERT_EQ(reader.next(out), FrameReader::Status::Frame);
    EXPECT_TRUE(out.empty());
    ASSERT_EQ(reader.next(out), FrameReader::Status::Frame);
    EXPECT_EQ(out, binary);
}

TEST(WireFraming, ByteAtATimeDribbleReassembles)
{
    std::string bytes;
    std::vector<std::string> want;
    for (int i = 0; i < 17; ++i) {
        want.push_back("payload-" + std::to_string(i) +
                       std::string(static_cast<std::size_t>(i) * 7,
                                   'x'));
        bytes += encodeFrame(want.back());
    }
    FrameReader reader;
    EXPECT_EQ(drainAll(reader, bytes, 1), want);
}

TEST(WireFraming, CorruptChecksumIsStickyBad)
{
    std::string bytes = encodeFrame("hello");
    bytes[bytes.size() - 1] ^= 0x01; // Flip a checksum bit.
    FrameReader reader;
    reader.feed(bytes.data(), bytes.size());
    std::string out;
    std::string why;
    EXPECT_EQ(reader.next(out, &why), FrameReader::Status::Bad);
    EXPECT_FALSE(why.empty());
    // Sticky: a poisoned stream never yields frames again.
    const std::string good = encodeFrame("after");
    reader.feed(good.data(), good.size());
    EXPECT_EQ(reader.next(out), FrameReader::Status::Bad);
}

TEST(WireFraming, BadMagicAndOversizeRejected)
{
    std::string bytes = encodeFrame("x");
    bytes[0] ^= 0x55;
    FrameReader r1;
    r1.feed(bytes.data(), bytes.size());
    std::string out;
    EXPECT_EQ(r1.next(out), FrameReader::Status::Bad);

    // A length field past the cap must be rejected up front (it would
    // otherwise buffer unboundedly waiting for a frame that never
    // completes).
    std::string huge = encodeFrame("y");
    const std::uint32_t big = kMaxPayloadBytes + 1;
    std::memcpy(&huge[4], &big, sizeof big);
    FrameReader r2;
    r2.feed(huge.data(), huge.size());
    EXPECT_EQ(r2.next(out), FrameReader::Status::Bad);
}

// ---------------------------------------------------------------------
// The satellite contract: consuming N frames through one reader moves
// at most the bytes consumed — compaction is amortized O(1) per byte,
// not O(buffered) per frame (the pre-fix erase-per-frame behavior was
// quadratic in the number of buffered frames).
// ---------------------------------------------------------------------

TEST(WireFraming, CompactionIsAmortizedConstantPerByte)
{
    FrameReader reader;
    const std::string payload(1024, 'p');
    const std::string one = encodeFrame(payload);
    constexpr int kFrames = 512;

    // Feed everything up front (worst case for a naive reader: every
    // per-frame erase would move all remaining buffered bytes, moving
    // ~kFrames^2/2 payloads overall).
    std::string bytes;
    bytes.reserve(one.size() * kFrames);
    for (int i = 0; i < kFrames; ++i)
        bytes += one;
    reader.feed(bytes.data(), bytes.size());

    std::string out;
    std::size_t frames = 0;
    while (reader.next(out) == FrameReader::Status::Frame)
        ++frames;
    EXPECT_EQ(frames, static_cast<std::size_t>(kFrames));

    // Amortized bound: every compaction moves at most the live suffix,
    // which is no larger than what was consumed since the previous
    // compaction — so the total moved can never exceed total fed.
    EXPECT_LE(reader.movedBytes(), bytes.size())
        << "compaction moved more bytes than were ever consumed";
    EXPECT_EQ(reader.buffered(), 0u);
}

TEST(WireFraming, SplitTokensSplitsOnWhitespace)
{
    const auto t = splitTokens("  ACQ  combo/a  17 ");
    ASSERT_EQ(t.size(), 3u);
    EXPECT_EQ(t[0], "ACQ");
    EXPECT_EQ(t[1], "combo/a");
    EXPECT_EQ(t[2], "17");
    EXPECT_TRUE(splitTokens("").empty());
}

} // namespace
} // namespace wire
} // namespace ebm
