#include "common/rng.hpp"

#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace ebm {
namespace {

TEST(Mix64, DeterministicAndSpreading)
{
    EXPECT_EQ(mix64(1), mix64(1));
    EXPECT_NE(mix64(1), mix64(2));
    // Avalanche sanity: flipping one input bit changes many output bits.
    const std::uint64_t a = mix64(0x1234);
    const std::uint64_t b = mix64(0x1235);
    EXPECT_GE(__builtin_popcountll(a ^ b), 16);
}

TEST(HashIds, OrderMatters)
{
    EXPECT_NE(hashIds(1, 2), hashIds(2, 1));
    EXPECT_NE(hashIds(1, 2, 3), hashIds(1, 3, 2));
}

TEST(HashIds, ArityMattersForDefaultedArgs)
{
    // hashIds(a) and hashIds(a, 0) are the same call signature by
    // design; verify stability instead.
    EXPECT_EQ(hashIds(7), hashIds(7, 0, 0, 0));
}

TEST(HashToUnit, StaysInUnitInterval)
{
    for (std::uint64_t i = 0; i < 10'000; ++i) {
        const double u = hashToUnit(mix64(i));
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(HashToUnit, RoughlyUniform)
{
    int buckets[10] = {};
    const int n = 100'000;
    for (int i = 0; i < n; ++i)
        ++buckets[static_cast<int>(hashToUnit(mix64(i)) * 10)];
    for (int count : buckets) {
        EXPECT_GT(count, n / 10 - n / 50);
        EXPECT_LT(count, n / 10 + n / 50);
    }
}

TEST(Rng, DeterministicStreams)
{
    Rng a(42), b(42), c(43);
    for (int i = 0; i < 100; ++i) {
        const auto va = a.next();
        EXPECT_EQ(va, b.next());
        EXPECT_NE(va, c.next());
    }
}

TEST(Rng, BoundedStaysInRange)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.nextBounded(13), 13u);
}

TEST(Rng, BoundedCoversRange)
{
    Rng rng(9);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 500; ++i)
        seen.insert(rng.nextBounded(8));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, UnitInterval)
{
    Rng rng(3);
    for (int i = 0; i < 1000; ++i) {
        const double u = rng.nextUnit();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

} // namespace
} // namespace ebm
