#include "common/rng.hpp"

#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace ebm {
namespace {

TEST(Mix64, DeterministicAndSpreading)
{
    EXPECT_EQ(mix64(1), mix64(1));
    EXPECT_NE(mix64(1), mix64(2));
    // Avalanche sanity: flipping one input bit changes many output bits.
    const std::uint64_t a = mix64(0x1234);
    const std::uint64_t b = mix64(0x1235);
    EXPECT_GE(__builtin_popcountll(a ^ b), 16);
}

TEST(HashIds, OrderMatters)
{
    EXPECT_NE(hashIds(1, 2), hashIds(2, 1));
    EXPECT_NE(hashIds(1, 2, 3), hashIds(1, 3, 2));
}

TEST(HashIds, ArityMattersForDefaultedArgs)
{
    // hashIds(a) and hashIds(a, 0) are the same call signature by
    // design; verify stability instead.
    EXPECT_EQ(hashIds(7), hashIds(7, 0, 0, 0));
}

TEST(HashToUnit, StaysInUnitInterval)
{
    for (std::uint64_t i = 0; i < 10'000; ++i) {
        const double u = hashToUnit(mix64(i));
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(HashToUnit, RoughlyUniform)
{
    int buckets[10] = {};
    const int n = 100'000;
    for (int i = 0; i < n; ++i)
        ++buckets[static_cast<int>(hashToUnit(mix64(i)) * 10)];
    for (int count : buckets) {
        EXPECT_GT(count, n / 10 - n / 50);
        EXPECT_LT(count, n / 10 + n / 50);
    }
}

TEST(Rng, DeterministicStreams)
{
    Rng a(42), b(42), c(43);
    for (int i = 0; i < 100; ++i) {
        const auto va = a.next();
        EXPECT_EQ(va, b.next());
        EXPECT_NE(va, c.next());
    }
}

TEST(Rng, BoundedStaysInRange)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.nextBounded(13), 13u);
}

TEST(Rng, BoundedCoversRange)
{
    Rng rng(9);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 500; ++i)
        seen.insert(rng.nextBounded(8));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, BoundedPowerOfTwoMatchesHistoricalModulo)
{
    // For power-of-two bounds the rejection threshold is zero, so the
    // unbiased nextBounded reproduces the pre-fix `next() % bound`
    // sequence exactly — existing seeds keep their draws.
    Rng bounded(42), raw(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(bounded.nextBounded(64), raw.next() % 64);
}

TEST(Rng, BoundedIsUnbiasedForNonPowerOfTwo)
{
    // A bound of 3 exercises the rejection path. With 60k draws each
    // residue expects 20k; allow 5% — a systematic modulo bias would
    // be far smaller than that at 64 bits, so this is a sanity check
    // that rejection did not break uniformity.
    Rng rng(2024);
    const int n = 60'000;
    int counts[3] = {};
    for (int i = 0; i < n; ++i)
        ++counts[rng.nextBounded(3)];
    for (int count : counts) {
        EXPECT_GT(count, n / 3 - n / 20);
        EXPECT_LT(count, n / 3 + n / 20);
    }
}

TEST(Rng, BoundedDeterministicForEqualSeeds)
{
    Rng a(123), b(123);
    for (int i = 0; i < 200; ++i)
        EXPECT_EQ(a.nextBounded(13), b.nextBounded(13));
}

TEST(Rng, BoundedNearMaxBoundStaysInRange)
{
    // A bound just above 2^63 rejects almost half of all raw draws;
    // the loop must still terminate and stay in range.
    Rng rng(77);
    const std::uint64_t bound = (1ull << 63) + 1;
    for (int i = 0; i < 100; ++i)
        EXPECT_LT(rng.nextBounded(bound), bound);
}

TEST(Rng, UnitInterval)
{
    Rng rng(3);
    for (int i = 0; i < 1000; ++i) {
        const double u = rng.nextUnit();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

} // namespace
} // namespace ebm
