/**
 * @file
 * The injectable I/O shim: transparent without an injector, and each
 * injected failure mode behaves exactly as documented — errno-shaped
 * errors, the short write leaving exactly half the bytes, and the
 * abort points killing the process with SIGKILL (verified in forked
 * children, never in the test process).
 */
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <string>

#include <gtest/gtest.h>

#include "common/fault_injector.hpp"
#include "common/io_fault.hpp"

namespace ebm {
namespace {

using Point = FaultInjector::Point;

class IoShimTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        path_ = ::testing::TempDir() + "ebm_ioshim_" +
                ::testing::UnitTest::GetInstance()
                    ->current_test_info()
                    ->name();
        std::remove(path_.c_str());
        fd_ = ::open(path_.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
        ASSERT_GE(fd_, 0);
    }

    void
    TearDown() override
    {
        if (fd_ >= 0)
            ::close(fd_);
        std::remove(path_.c_str());
    }

    std::uint64_t
    fileSize() const
    {
        struct stat st = {};
        EXPECT_EQ(::fstat(fd_, &st), 0);
        return static_cast<std::uint64_t>(st.st_size);
    }

    std::string path_;
    int fd_ = -1;
};

TEST_F(IoShimTest, TransparentWithoutInjector)
{
    IoShim io;
    const std::string data(100, 'x');
    EXPECT_TRUE(io.pwriteAll(fd_, 0, data.data(), data.size()).ok());
    EXPECT_TRUE(io.fsyncFd(fd_).ok());
    EXPECT_EQ(fileSize(), 100u);
    EXPECT_TRUE(io.truncateFd(fd_, 10).ok());
    EXPECT_EQ(fileSize(), 10u);
}

TEST_F(IoShimTest, EnospcFailsBeforeAnyByteLands)
{
    FaultInjector fi(7);
    fi.armAfter(Point::IoEnospc, 0, 1);
    IoShim io(&fi);
    const std::string data(64, 'a');
    const Status s = io.pwriteAll(fd_, 0, data.data(), data.size());
    ASSERT_FALSE(s.ok());
    EXPECT_EQ(s.error().code, Errc::CacheIo);
    EXPECT_NE(s.error().message.find("ENOSPC"), std::string::npos)
        << s.error().message;
    EXPECT_EQ(fileSize(), 0u) << "ENOSPC writes nothing";

    // The schedule fired once; the next write is clean.
    EXPECT_TRUE(io.pwriteAll(fd_, 0, data.data(), data.size()).ok());
    EXPECT_EQ(fileSize(), 64u);
}

TEST_F(IoShimTest, EioFailsBeforeAnyByteLands)
{
    FaultInjector fi(7);
    fi.armAfter(Point::IoEio, 0, 1);
    IoShim io(&fi);
    const std::string data(64, 'b');
    const Status s = io.pwriteAll(fd_, 0, data.data(), data.size());
    ASSERT_FALSE(s.ok());
    EXPECT_NE(s.error().message.find("EIO"), std::string::npos);
    EXPECT_EQ(fileSize(), 0u);
}

TEST_F(IoShimTest, ShortWriteLandsExactlyHalf)
{
    FaultInjector fi(7);
    fi.armAfter(Point::IoShortWrite, 0, 1);
    IoShim io(&fi);
    const std::string data(100, 'c');
    const Status s = io.pwriteAll(fd_, 0, data.data(), data.size());
    ASSERT_FALSE(s.ok());
    EXPECT_NE(s.error().message.find("short write"),
              std::string::npos);
    EXPECT_EQ(fileSize(), 50u)
        << "the injected short write must leave a torn half";
}

TEST_F(IoShimTest, FsyncFailureIsReported)
{
    FaultInjector fi(7);
    fi.armAfter(Point::IoFsyncFail, 0, 1);
    IoShim io(&fi);
    const Status s = io.fsyncFd(fd_);
    ASSERT_FALSE(s.ok());
    EXPECT_NE(s.error().message.find("fsync"), std::string::npos);
    EXPECT_TRUE(io.fsyncFd(fd_).ok()) << "one-shot schedule";
}

TEST_F(IoShimTest, OrdinalScheduleHitsTheNthWrite)
{
    FaultInjector fi(7);
    fi.armAfter(Point::IoEio, 2, 1); // Third write fails.
    IoShim io(&fi);
    const std::string data(8, 'd');
    EXPECT_TRUE(io.pwriteAll(fd_, 0, data.data(), data.size()).ok());
    EXPECT_TRUE(io.pwriteAll(fd_, 8, data.data(), data.size()).ok());
    EXPECT_FALSE(io.pwriteAll(fd_, 16, data.data(), data.size()).ok());
    EXPECT_TRUE(io.pwriteAll(fd_, 16, data.data(), data.size()).ok());
    EXPECT_EQ(fileSize(), 24u);
}

/** Run @p point armed in a forked child; expect SIGKILL and return
 * the bytes the child's write left behind. */
std::uint64_t
abortPointInChild(const std::string &path, Point point)
{
    const pid_t pid = ::fork();
    EXPECT_GE(pid, 0);
    if (pid == 0) {
        FaultInjector fi(7);
        fi.armAfter(point, 0, 1);
        IoShim io(&fi);
        const int fd =
            ::open(path.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
        const std::string data(100, 'k');
        (void)io.pwriteAll(fd, 0, data.data(), data.size());
        ::_exit(0); // Unreachable: the shim dies inside the write.
    }
    int status = 0;
    EXPECT_EQ(::waitpid(pid, &status, 0), pid);
    EXPECT_TRUE(WIFSIGNALED(status))
        << "abort points must die, not exit";
    if (WIFSIGNALED(status)) {
        EXPECT_EQ(WTERMSIG(status), SIGKILL);
    }
    struct stat st = {};
    EXPECT_EQ(::stat(path.c_str(), &st), 0);
    return static_cast<std::uint64_t>(st.st_size);
}

TEST_F(IoShimTest, AbortAfterWriteDiesWithCompleteBytes)
{
    EXPECT_EQ(abortPointInChild(path_, Point::IoAbortAfterWrite),
              100u)
        << "the write completes before the process dies";
}

TEST_F(IoShimTest, AbortMidWriteDiesWithTornBytes)
{
    EXPECT_EQ(abortPointInChild(path_, Point::IoAbortMidWrite), 50u)
        << "exactly half the buffer lands before the process dies";
}

} // namespace
} // namespace ebm
