#include "sim/gpu.hpp"

#include <set>

#include <gtest/gtest.h>

#include "../test_util.hpp"
#include "sim/golden_digest.hpp"

namespace ebm {
namespace {

class GpuTest : public ::testing::Test
{
  protected:
    GpuConfig cfg_ = test::tinyConfig(2);
    std::vector<AppProfile> apps_ = {test::streamingApp(),
                                     test::cacheApp()};
};

TEST_F(GpuTest, CorePartitioningIsExclusiveAndEqual)
{
    Gpu gpu(cfg_, apps_);
    ASSERT_EQ(gpu.numApps(), 2u);
    std::set<CoreId> seen;
    for (AppId app = 0; app < 2; ++app) {
        EXPECT_EQ(gpu.coresOf(app).size(), cfg_.numCores / 2);
        for (CoreId id : gpu.coresOf(app)) {
            EXPECT_TRUE(seen.insert(id).second)
                << "core owned by two apps";
            EXPECT_EQ(gpu.core(id).app(), app);
        }
    }
    EXPECT_EQ(seen.size(), cfg_.numCores);
}

TEST_F(GpuTest, UnequalCoreShares)
{
    Gpu gpu(cfg_, apps_, {3, 1});
    EXPECT_EQ(gpu.coresOf(0).size(), 3u);
    EXPECT_EQ(gpu.coresOf(1).size(), 1u);
}

TEST_F(GpuTest, BothAppsMakeProgress)
{
    Gpu gpu(cfg_, apps_);
    gpu.run(4000);
    EXPECT_GT(gpu.appInstrs(0), 0u);
    EXPECT_GT(gpu.appInstrs(1), 0u);
}

TEST_F(GpuTest, PerAppTlpKnobsAreIndependent)
{
    Gpu gpu(cfg_, apps_);
    gpu.setAppTlp(0, 2);
    gpu.setAppTlp(1, 6);
    EXPECT_EQ(gpu.appTlp(0), 2u);
    EXPECT_EQ(gpu.appTlp(1), 6u);
    for (CoreId id : gpu.coresOf(0))
        EXPECT_EQ(gpu.core(id).tlpLimit(), 2u);
    for (CoreId id : gpu.coresOf(1))
        EXPECT_EQ(gpu.core(id).tlpLimit(), 6u);
}

TEST_F(GpuTest, DeterministicAcrossIdenticalRuns)
{
    Gpu a(cfg_, apps_);
    Gpu b(cfg_, apps_);
    a.run(3000);
    b.run(3000);
    for (AppId app = 0; app < 2; ++app) {
        EXPECT_EQ(a.appInstrs(app), b.appInstrs(app));
        EXPECT_EQ(a.appDataCycles(app), b.appDataCycles(app));
        EXPECT_DOUBLE_EQ(a.appL1MissRate(app), b.appL1MissRate(app));
    }
}

TEST_F(GpuTest, RequestConservationL1MissesReachL2)
{
    Gpu gpu(cfg_, apps_);
    gpu.run(6000);
    for (AppId app = 0; app < 2; ++app) {
        std::uint64_t l1_misses = 0;
        for (CoreId id : gpu.coresOf(app))
            l1_misses += gpu.core(id).l1().stats().misses(app);
        std::uint64_t l2_accesses = 0;
        for (PartitionId p = 0; p < gpu.numPartitions(); ++p)
            l2_accesses += gpu.partition(p).l2().stats().accesses(app);
        // Every L2 access is caused by an L1 miss; some L1 misses are
        // merged into MSHRs or still in flight at the end.
        EXPECT_LE(l2_accesses, l1_misses);
        EXPECT_GT(l2_accesses, l1_misses / 4)
            << "most L1 misses should reach the L2";
    }
}

TEST_F(GpuTest, DramTrafficOnlyFromL2Misses)
{
    Gpu gpu(cfg_, apps_);
    gpu.run(6000);
    for (AppId app = 0; app < 2; ++app) {
        std::uint64_t l2_misses = 0, serviced = 0;
        for (PartitionId p = 0; p < gpu.numPartitions(); ++p) {
            l2_misses += gpu.partition(p).l2().stats().misses(app);
        }
        for (PartitionId p = 0; p < gpu.numPartitions(); ++p)
            serviced += gpu.partition(p).dram().requestsServiced();
        EXPECT_LE(gpu.appDataCycles(app),
                  l2_misses * cfg_.dram.burstCycles)
            << "data cycles bounded by this app's L2 misses";
        (void)serviced;
    }
}

TEST_F(GpuTest, AttainedBwFractionsAreSane)
{
    Gpu gpu(cfg_, apps_);
    gpu.run(6000);
    const double total = gpu.totalAttainedBw();
    EXPECT_GT(total, 0.0);
    EXPECT_LE(total, 1.0) << "cannot exceed the theoretical peak";
    for (AppId app = 0; app < 2; ++app) {
        EXPECT_GE(gpu.appAttainedBw(app), 0.0);
        EXPECT_LE(gpu.appAttainedBw(app), total + 1e-12);
    }
}

TEST_F(GpuTest, AddressSpacesDisjointAcrossApps)
{
    // Both apps run the same profile shape; per-app base offsets keep
    // their L2 working sets from colliding. Verify via L2 ownership.
    Gpu gpu(cfg_, {test::cacheApp("A", 1), test::cacheApp("B", 1)});
    gpu.run(4000);
    std::uint32_t owned0 = 0, owned1 = 0;
    for (PartitionId p = 0; p < gpu.numPartitions(); ++p) {
        owned0 += gpu.partition(p).l2().tags().linesOwnedBy(0);
        owned1 += gpu.partition(p).l2().tags().linesOwnedBy(1);
    }
    EXPECT_GT(owned0, 0u);
    EXPECT_GT(owned1, 0u);
}

TEST_F(GpuTest, ResetIsFullRoundTrip)
{
    Gpu gpu(cfg_, apps_);
    gpu.run(3000);
    const auto instrs_first = gpu.appInstrs(0);
    gpu.reset();
    gpu.run(3000);
    EXPECT_EQ(gpu.appInstrs(0), instrs_first)
        << "reset restores the initial state exactly";
}

TEST_F(GpuTest, ResetWithoutFlushKeepsCacheContents)
{
    // reset(flush_caches=false) clears every cycle/warp/traffic/
    // counter state but leaves the L1/L2 tag contents in place, so
    // the replayed (identical) access stream starts against warm
    // caches and must miss less than the cold first run.
    Gpu gpu(cfg_, apps_);
    gpu.run(3000);
    const double cold_mr = gpu.appL1MissRate(1); // cacheApp
    gpu.reset(/*flush_caches=*/false);
    gpu.run(3000);
    EXPECT_LT(gpu.appL1MissRate(1), cold_mr)
        << "warm tags must convert some cold misses into hits";
}

TEST_F(GpuTest, ResetPreservesKnobSettings)
{
    // Knobs (TLP limits, bypass flags) survive reset; everything else
    // round-trips, so a reset GPU must replay exactly like a freshly
    // built one configured with the same knobs.
    Gpu twice(cfg_, apps_);
    twice.setAppTlp(0, 2);
    twice.setAppL1Bypass(1, true);
    twice.run(3000);
    twice.reset();
    twice.run(3000);

    Gpu once(cfg_, apps_);
    once.setAppTlp(0, 2);
    once.setAppL1Bypass(1, true);
    once.run(3000);

    EXPECT_EQ(goldenDigest(once), goldenDigest(twice));
}

TEST_F(GpuTest, SoloAppUsesAllCores)
{
    GpuConfig cfg = test::tinyConfig(1);
    Gpu gpu(cfg, {test::streamingApp()});
    EXPECT_EQ(gpu.coresOf(0).size(), cfg.numCores);
}

TEST_F(GpuTest, ThreeAppsSupported)
{
    GpuConfig cfg = test::tinyConfig(3);
    cfg.numCores = 6;
    Gpu gpu(cfg, {test::streamingApp("S"), test::cacheApp("C"),
                  test::computeApp("K")});
    gpu.run(3000);
    for (AppId app = 0; app < 3; ++app)
        EXPECT_GT(gpu.appInstrs(app), 0u);
}

TEST_F(GpuTest, IpcMatchesInstrsOverCycles)
{
    Gpu gpu(cfg_, apps_);
    gpu.run(2500);
    EXPECT_DOUBLE_EQ(gpu.appIpc(0),
                     static_cast<double>(gpu.appInstrs(0)) / 2500.0);
}

TEST(GpuDeath, MismatchedCoreShareIsFatal)
{
    GpuConfig cfg = test::tinyConfig(2);
    EXPECT_EBM_FATAL(
        {
            Gpu gpu(cfg, {test::streamingApp(), test::cacheApp()},
                    {3, 2});
        },
        "core shares");
}

} // namespace
} // namespace ebm
