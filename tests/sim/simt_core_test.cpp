#include "sim/simt_core.hpp"

#include <gtest/gtest.h>

#include "../test_util.hpp"
#include "sim/gpu.hpp"

namespace ebm {
namespace {

/**
 * SimtCore is exercised through a one-core Gpu so the crossbar and
 * partition plumbing it depends on behaves exactly as in production.
 */
class SimtCoreTest : public ::testing::Test
{
  protected:
    GpuConfig
    oneCoreCfg()
    {
        GpuConfig cfg = test::tinyConfig(1);
        cfg.numCores = 1;
        return cfg;
    }
};

TEST_F(SimtCoreTest, RetiresInstructions)
{
    Gpu gpu(oneCoreCfg(), {test::computeApp()});
    gpu.run(2000);
    EXPECT_GT(gpu.core(0).instrsRetired(), 0u);
}

TEST_F(SimtCoreTest, ComputeAppNearlySaturatesIssue)
{
    Gpu gpu(oneCoreCfg(), {test::computeApp()});
    gpu.run(5000);
    // Two schedulers, compute-dominated: IPC should approach 2/core.
    EXPECT_GT(gpu.appIpc(0), 1.0);
}

TEST_F(SimtCoreTest, StreamingAppTouchesMemory)
{
    Gpu gpu(oneCoreCfg(), {test::streamingApp()});
    gpu.run(5000);
    EXPECT_GT(gpu.core(0).l1().stats().accesses(0), 0u);
    EXPECT_DOUBLE_EQ(gpu.core(0).l1().stats().missRate(0), 1.0)
        << "pure streaming never reuses a line";
    EXPECT_GT(gpu.appDataCycles(0), 0u);
}

TEST_F(SimtCoreTest, CacheAppHitsInL1)
{
    Gpu gpu(oneCoreCfg(), {test::cacheApp()});
    gpu.run(8000);
    EXPECT_LT(gpu.core(0).l1().stats().missRate(0), 0.9);
}

TEST_F(SimtCoreTest, TlpLimitThrottlesProgress)
{
    Gpu low(oneCoreCfg(), {test::streamingApp()});
    low.setAppTlp(0, 1);
    low.run(5000);

    Gpu high(oneCoreCfg(), {test::streamingApp()});
    high.setAppTlp(0, 8);
    high.run(5000);

    EXPECT_GT(high.appInstrs(0), low.appInstrs(0))
        << "more warps hide more memory latency";
}

TEST_F(SimtCoreTest, SetTlpLimitAppliesToAllSchedulers)
{
    Gpu gpu(oneCoreCfg(), {test::streamingApp()});
    gpu.setAppTlp(0, 3);
    EXPECT_EQ(gpu.core(0).tlpLimit(), 3u);
}

TEST_F(SimtCoreTest, L1BypassForcesAllMisses)
{
    Gpu gpu(oneCoreCfg(), {test::cacheApp()});
    gpu.setAppL1Bypass(0, true);
    gpu.run(5000);
    EXPECT_DOUBLE_EQ(gpu.core(0).l1().stats().missRate(0), 1.0);
}

TEST_F(SimtCoreTest, IdleCyclesAccountedWhenMemoryBound)
{
    GpuConfig cfg = oneCoreCfg();
    Gpu gpu(cfg, {test::streamingApp()});
    gpu.setAppTlp(0, 1); // One warp per scheduler: long memory stalls.
    gpu.run(5000);
    EXPECT_GT(gpu.core(0).idleCycles(), 1000u);
    EXPECT_GT(gpu.core(0).memWaitCycles(), 1000u);
    EXPECT_LE(gpu.core(0).memWaitCycles(), gpu.core(0).idleCycles());
}

TEST_F(SimtCoreTest, ComputeAppBarelyIdles)
{
    Gpu gpu(oneCoreCfg(), {test::computeApp()});
    gpu.run(5000);
    EXPECT_LT(static_cast<double>(gpu.core(0).memWaitCycles()) / 5000.0,
              0.5);
}

TEST_F(SimtCoreTest, CheckpointResetsWindowCounters)
{
    Gpu gpu(oneCoreCfg(), {test::streamingApp()});
    gpu.run(2000);
    gpu.checkpoint();
    EXPECT_EQ(gpu.core(0).windowInstrsRetired(), 0u);
    EXPECT_EQ(gpu.core(0).windowIdleCycles(), 0u);
    gpu.run(100);
    EXPECT_GT(gpu.core(0).windowInstrsRetired(), 0u);
}

TEST_F(SimtCoreTest, ResetClearsProgress)
{
    Gpu gpu(oneCoreCfg(), {test::streamingApp()});
    gpu.run(2000);
    gpu.reset();
    EXPECT_EQ(gpu.now(), 0u);
    EXPECT_EQ(gpu.core(0).instrsRetired(), 0u);
    EXPECT_EQ(gpu.core(0).l1().stats().accesses(0), 0u);
}

} // namespace
} // namespace ebm
