/**
 * @file
 * Snapshot/restore property sweeps: a run forked from a mid-run
 * capture must be bit-identical to the cold run it forked from, at
 * every TLP ladder level, in both fast-forward modes, across
 * reset(flush_caches=false) reuse, and when forks are chained. The
 * golden digest (FNV-1a over every end-of-run counter) is the oracle;
 * any divergence means snapshot() missed state or restore() failed to
 * reinstate it.
 */
#include <gtest/gtest.h>

#include "../test_util.hpp"
#include "sim/golden_digest.hpp"
#include "sim/gpu.hpp"

namespace ebm {
namespace {

constexpr Cycle kPrefix = 5000;
constexpr Cycle kTail = 7000;

/** Digest of a cold two-app run of @p prefix + @p tail cycles. */
std::uint64_t
coldDigest(const GpuConfig &cfg, const std::vector<AppProfile> &apps,
           std::uint32_t tlp0, std::uint32_t tlp1, bool fast_forward)
{
    Gpu gpu(cfg, apps);
    gpu.setFastForward(fast_forward);
    gpu.setAppTlp(0, tlp0);
    gpu.setAppTlp(1, tlp1);
    gpu.run(kPrefix);
    gpu.run(kTail);
    return goldenDigest(gpu);
}

class SnapshotLadder : public ::testing::TestWithParam<std::uint32_t>
{
};

TEST_P(SnapshotLadder, RestoredRunMatchesColdRunAtEveryLevel)
{
    const std::uint32_t tlp = GetParam();
    const GpuConfig cfg = test::tinyConfig(2);
    const std::vector<AppProfile> apps{test::streamingApp(),
                                       test::cacheApp()};
    const std::uint64_t cold = coldDigest(cfg, apps, tlp, 8, true);

    // Capture mid-run, keep running on the original instance: the
    // snapshot() call itself must not perturb the machine.
    Gpu warm(cfg, apps);
    warm.setAppTlp(0, tlp);
    warm.setAppTlp(1, 8);
    warm.run(kPrefix);
    const Gpu::Snapshot snap = warm.snapshot();
    warm.run(kTail);
    EXPECT_EQ(goldenDigest(warm), cold) << "tlp " << tlp;

    // Restore into a construction-fresh sibling: the snapshot carries
    // everything (warps, caches, queues, DRAM state, knobs), so the
    // fork finishes identically.
    Gpu fork(cfg, apps);
    fork.restore(snap);
    fork.run(kTail);
    EXPECT_EQ(goldenDigest(fork), cold) << "tlp " << tlp;
}

INSTANTIATE_TEST_SUITE_P(Levels, SnapshotLadder,
                         ::testing::ValuesIn(GpuConfig::tlpLevels()));

TEST(SnapshotProperty, BothFastForwardModesRoundTrip)
{
    const GpuConfig cfg = test::tinyConfig(2);
    const std::vector<AppProfile> apps{test::streamingApp(),
                                       test::cacheApp()};
    for (const bool ff : {true, false}) {
        const std::uint64_t cold = coldDigest(cfg, apps, 4, 8, ff);
        Gpu warm(cfg, apps);
        warm.setFastForward(ff);
        warm.setAppTlp(0, 4);
        warm.setAppTlp(1, 8);
        warm.run(kPrefix);
        Gpu fork(cfg, apps);
        fork.restore(warm.snapshot());
        fork.run(kTail);
        EXPECT_EQ(goldenDigest(fork), cold)
            << "fastForward=" << ff;
    }
}

TEST(SnapshotProperty, RoundTripAfterSoftResetReuse)
{
    // A pooled instance is reused via reset(); a snapshot taken after
    // a reset(flush_caches=false) round-trip must still fork
    // identically — the capture carries the retained cache contents.
    const GpuConfig cfg = test::tinyConfig(2);
    const std::vector<AppProfile> apps{
        test::cacheApp("WARM", 3), test::streamingApp()};

    const auto scenario = [&](Gpu &gpu) {
        gpu.run(4000);
        gpu.reset(/*flush_caches=*/false);
        gpu.checkpoint();
        gpu.run(kPrefix);
    };

    Gpu cold(cfg, apps);
    scenario(cold);
    cold.run(kTail);
    const std::uint64_t want = goldenDigest(cold);

    Gpu warm(cfg, apps);
    scenario(warm);
    Gpu fork(cfg, apps);
    fork.restore(warm.snapshot());
    fork.run(kTail);
    EXPECT_EQ(goldenDigest(fork), want);
}

TEST(SnapshotProperty, ChainedForksMatchColdRun)
{
    // Fork of a fork: capture at t1, restore, run to t2, capture
    // again, restore into a third instance, finish. Any state leak
    // across one hop would compound across two.
    const GpuConfig cfg = test::tinyConfig(2);
    const std::vector<AppProfile> apps{test::streamingApp(),
                                       test::cacheApp()};
    Gpu cold(cfg, apps);
    cold.run(3000);
    cold.run(3000);
    cold.run(kTail);
    const std::uint64_t want = goldenDigest(cold);

    Gpu first(cfg, apps);
    first.run(3000);
    Gpu second(cfg, apps);
    second.restore(first.snapshot());
    second.run(3000);
    Gpu third(cfg, apps);
    third.restore(second.snapshot());
    third.run(kTail);
    EXPECT_EQ(goldenDigest(third), want);
}

TEST(SnapshotProperty, RestoreRewindsADivergedInstance)
{
    // Restore is not just for fresh instances: re-restoring an
    // instance that has since run (and mutated knobs) rewinds it to
    // the capture point exactly.
    const GpuConfig cfg = test::tinyConfig(2);
    const std::vector<AppProfile> apps{test::streamingApp(),
                                       test::cacheApp()};
    const std::uint64_t cold = coldDigest(cfg, apps, 4, 8, true);

    Gpu gpu(cfg, apps);
    gpu.setAppTlp(0, 4);
    gpu.setAppTlp(1, 8);
    gpu.run(kPrefix);
    const Gpu::Snapshot snap = gpu.snapshot();
    // Diverge hard: different knobs, more cycles, a checkpoint.
    gpu.setAppTlp(0, 1);
    gpu.setAppL1Bypass(1, true);
    gpu.run(2500);
    gpu.checkpoint();

    gpu.restore(snap);
    gpu.run(kTail);
    EXPECT_EQ(goldenDigest(gpu), cold);
}

TEST(SnapshotProperty, ShapeMismatchIsFatal)
{
    const GpuConfig two = test::tinyConfig(2);
    GpuConfig bigger = test::tinyConfig(2);
    bigger.numCores = two.numCores * 2;
    Gpu a(two, {test::streamingApp(), test::cacheApp()});
    Gpu b(bigger, {test::streamingApp(), test::cacheApp()});
    a.run(1000);
    const Gpu::Snapshot snap = a.snapshot();
    EXPECT_EBM_FATAL(b.restore(snap), "shape mismatch");
}

} // namespace
} // namespace ebm
