#include "sim/warp_scheduler.hpp"

#include <gtest/gtest.h>

#include "../test_util.hpp"

namespace ebm {
namespace {

std::vector<WarpId>
warps(std::initializer_list<WarpId> ids)
{
    return {ids};
}

TEST(WarpScheduler, PicksOldestReadyFirst)
{
    WarpScheduler sched(warps({0, 2, 4, 6}), 4);
    const WarpId w =
        sched.pick([](WarpId) { return true; });
    EXPECT_EQ(w, 0u);
}

TEST(WarpScheduler, SkipsNotReadyWarps)
{
    WarpScheduler sched(warps({0, 2, 4, 6}), 4);
    const WarpId w =
        sched.pick([](WarpId id) { return id >= 4; });
    EXPECT_EQ(w, 4u);
}

TEST(WarpScheduler, GreedyStaysWithLastIssued)
{
    WarpScheduler sched(warps({0, 2, 4}), 3);
    sched.issued(2);
    const WarpId w = sched.pick([](WarpId) { return true; });
    EXPECT_EQ(w, 2u) << "greedy: keep issuing from the same warp";
}

TEST(WarpScheduler, GreedyFallsBackToOldestWhenStalled)
{
    WarpScheduler sched(warps({0, 2, 4}), 3);
    sched.issued(2);
    const WarpId w =
        sched.pick([](WarpId id) { return id != 2; });
    EXPECT_EQ(w, 0u);
}

TEST(WarpScheduler, ReturnsNoWarpWhenNothingReady)
{
    WarpScheduler sched(warps({0, 2}), 2);
    const WarpId w = sched.pick([](WarpId) { return false; });
    EXPECT_EQ(w, WarpScheduler::kNoWarp);
}

TEST(WarpScheduler, SwlHidesWarpsBeyondLimit)
{
    WarpScheduler sched(warps({0, 2, 4, 6}), /*tlp_limit=*/2);
    // Only warps 0 and 2 are exposed; 4 is ready but invisible.
    const WarpId w =
        sched.pick([](WarpId id) { return id >= 4; });
    EXPECT_EQ(w, WarpScheduler::kNoWarp);
}

TEST(WarpScheduler, SwlLimitChangeTakesEffect)
{
    WarpScheduler sched(warps({0, 2, 4, 6}), 1);
    EXPECT_EQ(sched.pick([](WarpId id) { return id == 2; }),
              WarpScheduler::kNoWarp);
    sched.setTlpLimit(2);
    EXPECT_EQ(sched.pick([](WarpId id) { return id == 2; }), 2u);
}

TEST(WarpScheduler, GreedyWarpOutsideNewLimitIgnored)
{
    WarpScheduler sched(warps({0, 2, 4, 6}), 4);
    sched.issued(6);
    sched.setTlpLimit(2);
    const WarpId w = sched.pick([](WarpId) { return true; });
    EXPECT_EQ(w, 0u) << "warp 6 is outside the SWL window now";
}

TEST(WarpScheduler, LimitClampedToContextCount)
{
    WarpScheduler sched(warps({0, 2}), 99);
    EXPECT_EQ(sched.tlpLimit(), 2u);
    sched.setTlpLimit(0);
    EXPECT_EQ(sched.tlpLimit(), 1u) << "at least one warp stays active";
}

TEST(WarpScheduler, ActiveWarpsMatchesLimit)
{
    WarpScheduler sched(warps({1, 3, 5, 7}), 3);
    const auto active = sched.activeWarps();
    ASSERT_EQ(active.size(), 3u);
    EXPECT_EQ(active[0], 1u);
    EXPECT_EQ(active[1], 3u);
    EXPECT_EQ(active[2], 5u);
}

TEST(WarpSchedulerDeath, EmptyContextListIsFatal)
{
    EXPECT_EBM_FATAL({ WarpScheduler sched({}, 1); }, "contexts");
}

} // namespace
} // namespace ebm
