/**
 * @file
 * Whole-GPU property sweeps over the TLP ladder: invariants the
 * paper's analysis rests on must hold at every level — bandwidth
 * monotonicity up to saturation for streaming apps, cache miss-rate
 * monotonicity for cache-sensitive apps, and metric sanity bounds.
 */
#include <gtest/gtest.h>

#include "../test_util.hpp"
#include "sim/golden_digest.hpp"
#include "sim/gpu.hpp"

namespace ebm {
namespace {

class TlpSweep : public ::testing::TestWithParam<std::uint32_t>
{
  protected:
    static AppRunStats
    runAt(const AppProfile &app, std::uint32_t tlp)
    {
        GpuConfig cfg = test::tinyConfig(1);
        Gpu gpu(cfg, {app});
        gpu.setAppTlp(0, tlp);
        gpu.run(6000);
        AppRunStats s;
        s.ipc = gpu.appIpc(0);
        s.bw = gpu.appAttainedBw(0);
        s.l1Mr = gpu.appL1MissRate(0);
        s.l2Mr = gpu.appL2MissRate(0);
        return s;
    }
};

TEST_P(TlpSweep, MetricsWithinBounds)
{
    for (const AppProfile &app :
         {test::streamingApp(), test::cacheApp(), test::computeApp()}) {
        const AppRunStats s = runAt(app, GetParam());
        EXPECT_GT(s.ipc, 0.0) << app.name;
        EXPECT_GE(s.bw, 0.0) << app.name;
        EXPECT_LE(s.bw, 1.0) << app.name;
        EXPECT_GT(s.l1Mr, 0.0) << app.name;
        EXPECT_LE(s.l1Mr, 1.0) << app.name;
        EXPECT_LE(s.l2Mr, 1.0) << app.name;
        EXPECT_GE(s.eb(), s.bw - 1e-12)
            << app.name << ": caches cannot shrink effective BW";
    }
}

TEST_P(TlpSweep, StreamingCmrStaysUnity)
{
    const AppRunStats s = runAt(test::streamingApp(), GetParam());
    EXPECT_DOUBLE_EQ(s.l1Mr, 1.0);
    EXPECT_NEAR(s.cmr(), 1.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Levels, TlpSweep,
                         ::testing::ValuesIn(GpuConfig::tlpLevels()));

TEST(TlpSweepShapes, CacheAppMissRateMonotoneInTlp)
{
    // More concurrent warps -> larger combined working set -> the L1
    // miss rate must be non-decreasing (within tolerance) in TLP.
    GpuConfig cfg = test::tinyConfig(1);
    double prev = -1.0;
    for (std::uint32_t tlp : {1u, 2u, 4u, 8u}) {
        Gpu gpu(cfg, {test::cacheApp()});
        gpu.setAppTlp(0, tlp);
        gpu.run(6000);
        const double mr = gpu.appL1MissRate(0);
        EXPECT_GE(mr, prev - 0.05) << "tlp " << tlp;
        prev = mr;
    }
}

TEST(TlpSweepShapes, StreamingBwRisesThenSaturates)
{
    GpuConfig cfg = test::tinyConfig(1);
    std::vector<double> bw;
    for (std::uint32_t tlp : {1u, 2u, 4u, 8u}) {
        Gpu gpu(cfg, {test::streamingApp()});
        gpu.setAppTlp(0, tlp);
        gpu.run(6000);
        bw.push_back(gpu.appAttainedBw(0));
    }
    EXPECT_GT(bw[1], bw[0]) << "low-TLP region is demand limited";
    // Past saturation BW never grows much further.
    const double peak = *std::max_element(bw.begin(), bw.end());
    EXPECT_LT(bw.back(), peak * 1.05 + 1e-9);
}

TEST(TlpSweepShapes, ComputeAppIpcMonotoneUntilIssueBound)
{
    GpuConfig cfg = test::tinyConfig(1);
    double prev = 0.0;
    for (std::uint32_t tlp : {1u, 2u, 4u}) {
        Gpu gpu(cfg, {test::computeApp()});
        gpu.setAppTlp(0, tlp);
        gpu.run(6000);
        const double ipc = gpu.appIpc(0);
        EXPECT_GE(ipc, prev * 0.98) << "tlp " << tlp;
        prev = ipc;
    }
}

// Quiescence fast-forwarding is a pure optimization: every skipped
// cycle is provably a no-op (SimtCore::fastForward aborts the process
// if a warp is ready when asked to skip, so a single passing run of
// these sweeps is also a proof that the skip never fires while any
// warp could issue). The end-of-run digests must therefore be
// bit-identical with and without it, at every TLP level.
TEST(TlpSweepFastForward, DigestMatchesSerialAcrossLadder)
{
    GpuConfig cfg = test::tinyConfig(1);
    for (const AppProfile &app :
         {test::streamingApp(), test::cacheApp(), test::computeApp()}) {
        for (std::uint32_t tlp : GpuConfig::tlpLevels()) {
            Gpu fast(cfg, {app});
            fast.setAppTlp(0, tlp);
            fast.run(6000);

            Gpu serial(cfg, {app});
            serial.setFastForward(false);
            serial.setAppTlp(0, tlp);
            serial.run(6000);

            EXPECT_EQ(serial.now(), fast.now())
                << app.name << " tlp " << tlp;
            EXPECT_EQ(goldenDigest(serial), goldenDigest(fast))
                << app.name << " tlp " << tlp;
            EXPECT_EQ(serial.fastForwardedCycles(), 0u);
        }
    }
}

TEST(TlpSweepFastForward, EngagesWhenDemandIsLow)
{
    // A single warp of a compute-heavy app leaves long stretches with
    // no event anywhere in the machine; the fast path must actually
    // take them (a regression to cycle-by-cycle ticking would pass the
    // digest test above while silently losing the speedup).
    GpuConfig cfg = test::tinyConfig(1);
    Gpu gpu(cfg, {test::computeApp()});
    gpu.setAppTlp(0, 1);
    gpu.run(6000);
    EXPECT_GT(gpu.fastForwardedCycles(), 0u);
    EXPECT_LT(gpu.fastForwardedCycles(), 6000u);
}

} // namespace
} // namespace ebm
