/**
 * @file
 * Golden-run digests: FNV-1a hashes over every end-of-run counter of
 * fixed configurations, locked to constants recorded on the serial
 * tick-by-tick simulator BEFORE the hot-path optimizations (event
 * skipping, allocation-free MSHR/crossbar/scheduler structures)
 * landed. These constants must NEVER change: any optimization that
 * moves one of them has changed simulation behaviour, not just speed.
 *
 * The scenarios deliberately cross every hot subsystem: two-app
 * co-scheduling over the crossbar, per-app TLP limits, L1/L2 bypass,
 * L2 way partitioning, mid-run TLP changes, checkpoint windows, and
 * reset round-trips.
 */
#include "sim/golden_digest.hpp"

#include <gtest/gtest.h>

#include "../test_util.hpp"
#include "sim/gpu.hpp"
#include "workload/app_catalog.hpp"

namespace ebm {
namespace {

// Recorded on the pre-optimization serial simulator. Do not update.
constexpr std::uint64_t kDigestSyntheticPair = 0x4a837d282cc0168bull;
constexpr std::uint64_t kDigestCatalogPair = 0xc8fb2e69828661dfull;
constexpr std::uint64_t kDigestKnobStorm = 0x77eee4c0631abd0cull;
constexpr std::uint64_t kDigestResetRoundTrip = 0xef24cbfbc38e5c39ull;

TEST(GoldenDigest, SyntheticPairLocked)
{
    GpuConfig cfg = test::tinyConfig(2);
    Gpu gpu(cfg, {test::streamingApp(), test::cacheApp()});
    gpu.setAppTlp(0, 4);
    gpu.setAppTlp(1, 8);
    gpu.run(20000);
    EXPECT_EQ(goldenDigest(gpu), kDigestSyntheticPair);
}

TEST(GoldenDigest, CatalogPairLocked)
{
    // The paper's memory-bound cache-amplified pairing (BFS, FFT) on
    // the tiny machine: long DRAM-bound phases, heavy MSHR merging.
    GpuConfig cfg = test::tinyConfig(2);
    Gpu gpu(cfg, {findApp("BFS"), findApp("FFT")});
    gpu.run(20000);
    EXPECT_EQ(goldenDigest(gpu), kDigestCatalogPair);
}

TEST(GoldenDigest, KnobStormLocked)
{
    // Exercise every runtime knob mid-run: TLP changes, L1/L2 bypass,
    // way partitioning, and checkpoint windows between run() chunks.
    GpuConfig cfg = test::tinyConfig(2);
    Gpu gpu(cfg, {findApp("GUPS"), test::cacheApp()});
    gpu.setAppL2WayPartition(0, 0, 4);
    gpu.setAppL2WayPartition(1, 4, 4);
    for (int window = 0; window < 10; ++window) {
        gpu.run(1500);
        gpu.checkpoint();
        gpu.setAppTlp(0, 1 + (window % 8));
        gpu.setAppTlp(1, 8 - (window % 8));
        gpu.setAppL1Bypass(0, window % 2 == 0);
        gpu.setAppL2Bypass(0, window % 3 == 0);
    }
    gpu.run(5000);
    EXPECT_EQ(goldenDigest(gpu), kDigestKnobStorm);
}

TEST(GoldenDigest, ResetRoundTripLocked)
{
    // reset(flush_caches=false) keeps cache contents but restarts the
    // cursors and counters; the second measurement is part of the
    // locked behaviour (checkpoint()-window accounting included).
    GpuConfig cfg = test::tinyConfig(2);
    Gpu gpu(cfg, {test::cacheApp("WARM", 3), findApp("BFS")});
    gpu.run(8000);
    gpu.reset(/*flush_caches=*/false);
    gpu.checkpoint();
    gpu.run(8000);
    EXPECT_EQ(goldenDigest(gpu), kDigestResetRoundTrip);
}

TEST(GoldenDigest, DigestDetectsBehaviouralDifferences)
{
    // Sanity: the digest is sensitive — a one-cycle difference or a
    // different TLP setting must move it.
    GpuConfig cfg = test::tinyConfig(2);
    Gpu a(cfg, {test::streamingApp(), test::cacheApp()});
    Gpu b(cfg, {test::streamingApp(), test::cacheApp()});
    a.run(5000);
    b.run(5001);
    EXPECT_NE(goldenDigest(a), goldenDigest(b));

    Gpu c(cfg, {test::streamingApp(), test::cacheApp()});
    c.setAppTlp(0, 2);
    c.run(5000);
    EXPECT_NE(goldenDigest(a), goldenDigest(c));
}

TEST(GoldenDigest, DigestIsDeterministic)
{
    GpuConfig cfg = test::tinyConfig(2);
    Gpu a(cfg, {test::streamingApp(), test::cacheApp()});
    Gpu b(cfg, {test::streamingApp(), test::cacheApp()});
    a.run(5000);
    b.run(5000);
    EXPECT_EQ(goldenDigest(a), goldenDigest(b));
}

} // namespace
} // namespace ebm
