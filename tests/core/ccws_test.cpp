#include "core/ccws.hpp"

#include <gtest/gtest.h>

#include "../test_util.hpp"
#include "core/eb_monitor.hpp"

namespace ebm {
namespace {

void
drive(Gpu &gpu, TlpPolicy &policy, std::uint32_t windows,
      Cycle window_len = 500)
{
    EbMonitor mon(gpu, EbMonitor::Mode::DesignatedUnits);
    policy.onRunStart(gpu);
    gpu.checkpoint();
    for (std::uint32_t w = 0; w < windows; ++w) {
        gpu.run(window_len);
        const EbSample sample = mon.closeWindow(gpu.now());
        policy.onWindow(gpu, gpu.now(), sample);
        gpu.checkpoint();
    }
}

/** A cache-sensitive app whose working set overflows the tiny L1. */
AppProfile
thrashApp()
{
    AppProfile p = test::cacheApp("THRASH", 23);
    p.fracL1Reuse = 0.9;
    p.fracL2Reuse = 0.05;
    p.l1ReuseLines = 16; // 2 warps/sched x 8 TLP x 16 lines >> L1.
    return p;
}

TEST(Ccws, StartsAtInitialTlp)
{
    GpuConfig cfg = test::tinyConfig(2);
    Gpu gpu(cfg, {thrashApp(), test::computeApp()});
    Ccws::Params params;
    params.initialTlp = 6;
    Ccws policy(params);
    policy.onRunStart(gpu);
    EXPECT_EQ(gpu.appTlp(0), 6u);
    EXPECT_EQ(gpu.appTlp(1), 6u);
}

TEST(Ccws, ThrottlesCacheThrashingApp)
{
    GpuConfig cfg = test::tinyConfig(2);
    Gpu gpu(cfg, {thrashApp(), test::computeApp()});
    Ccws policy;
    drive(gpu, policy, 20);
    EXPECT_LT(gpu.appTlp(0), 8u)
        << "lost locality must throttle the thrashing app";
}

TEST(Ccws, LeavesComputeBoundAppUnthrottled)
{
    GpuConfig cfg = test::tinyConfig(2);
    Gpu gpu(cfg, {thrashApp(), test::computeApp()});
    Ccws policy;
    drive(gpu, policy, 20);
    EXPECT_GE(gpu.appTlp(1), 8u)
        << "an L1-resident app shows no lost locality";
}

TEST(Ccws, StreamingAppIsNotThrottled)
{
    // Pure streams never re-reference lines, so the victim tags never
    // hit: CCWS sees no lost locality and raises TLP instead.
    GpuConfig cfg = test::tinyConfig(2);
    Gpu gpu(cfg, {test::streamingApp(), test::computeApp()});
    Ccws policy;
    drive(gpu, policy, 12);
    EXPECT_GE(gpu.appTlp(0), 8u);
    EXPECT_NEAR(policy.lastLlki(0), 0.0, 0.2);
}

TEST(Ccws, LlkiSignalIsHigherForThrashingApp)
{
    GpuConfig cfg = test::tinyConfig(2);
    Gpu gpu(cfg, {thrashApp(), test::streamingApp()});
    Ccws::Params params;
    params.llkiHigh = 1e9; // Disable throttling: observe raw signal.
    params.llkiLow = -1.0;
    Ccws policy(params);
    drive(gpu, policy, 10);
    EXPECT_GT(policy.lastLlki(0), policy.lastLlki(1))
        << "reuse-heavy app loses locality; stream does not";
}

TEST(Ccws, StaysOnConfiguredLadder)
{
    GpuConfig cfg = test::tinyConfig(2);
    Gpu gpu(cfg, {thrashApp(), test::streamingApp()});
    Ccws policy;
    drive(gpu, policy, 25);
    for (AppId app = 0; app < 2; ++app) {
        bool on_ladder = false;
        for (std::uint32_t level : GpuConfig::tlpLevels())
            on_ladder |= (level == gpu.appTlp(app));
        EXPECT_TRUE(on_ladder);
    }
}

TEST(Ccws, NameIsPaperName)
{
    EXPECT_EQ(Ccws().name(), "++CCWS");
}

} // namespace
} // namespace ebm
