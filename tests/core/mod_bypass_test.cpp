#include "core/mod_bypass.hpp"

#include <gtest/gtest.h>

#include "../test_util.hpp"
#include "core/eb_monitor.hpp"

namespace ebm {
namespace {

void
drive(Gpu &gpu, TlpPolicy &policy, std::uint32_t windows,
      Cycle window_len = 500)
{
    EbMonitor mon(gpu, EbMonitor::Mode::DesignatedUnits);
    policy.onRunStart(gpu);
    gpu.checkpoint();
    for (std::uint32_t w = 0; w < windows; ++w) {
        gpu.run(window_len);
        const EbSample sample = mon.closeWindow(gpu.now());
        policy.onWindow(gpu, gpu.now(), sample);
        gpu.checkpoint();
    }
}

TEST(ModBypass, BypassesTheStreamingApp)
{
    GpuConfig cfg = test::tinyConfig(2);
    Gpu gpu(cfg, {test::streamingApp(), test::cacheApp()});
    ModBypass policy;
    drive(gpu, policy, 12);
    EXPECT_TRUE(policy.bypassing(0))
        << "pure streaming app gains nothing from caches";
    EXPECT_TRUE(gpu.core(gpu.coresOf(0).front()).l1Bypass());
    EXPECT_TRUE(gpu.core(gpu.coresOf(0).front()).l2Bypass());
}

TEST(ModBypass, LeavesCacheFriendlyAppAlone)
{
    GpuConfig cfg = test::tinyConfig(2);
    // A slightly larger L1 keeps the cache-friendly app's working set
    // resident at the modulated TLP, so only genuine insensitivity
    // (not capacity pressure) can trigger the bypass.
    cfg.l1.sizeBytes = 16 * 1024;
    Gpu gpu(cfg, {test::streamingApp(), test::cacheApp()});
    ModBypass policy;
    drive(gpu, policy, 12);
    EXPECT_FALSE(policy.bypassing(1));
    EXPECT_FALSE(gpu.core(gpu.coresOf(1).front()).l1Bypass());
}

TEST(ModBypass, HysteresisRequiresSustainedEvidence)
{
    GpuConfig cfg = test::tinyConfig(2);
    Gpu gpu(cfg, {test::streamingApp(), test::cacheApp()});
    ModBypass::Params params;
    params.confirmWindows = 3;
    ModBypass policy(params);
    drive(gpu, policy, 2);
    EXPECT_FALSE(policy.bypassing(0))
        << "not enough windows of evidence yet";
    drive(gpu, policy, 0); // no-op; state kept
}

TEST(ModBypass, AlsoModulatesTlp)
{
    // The scheme embeds DynCTA-style modulation: under memory
    // saturation at least one app's TLP must move off the initial.
    GpuConfig cfg = test::tinyConfig(2);
    Gpu gpu(cfg, {test::streamingApp("S1", 3),
                  test::streamingApp("S2", 5)});
    ModBypass::Params params;
    params.modulation.initialTlp = 8;
    ModBypass policy(params);
    drive(gpu, policy, 20);
    EXPECT_LT(std::min(gpu.appTlp(0), gpu.appTlp(1)), 8u);
}

TEST(ModBypass, NameIsPaperName)
{
    EXPECT_EQ(ModBypass().name(), "Mod+Bypass");
}

TEST(ModBypass, BypassImprovesCacheSensitiveCoRunnerL2)
{
    // With the streaming app bypassing the L2, the cache-sensitive
    // co-runner should retain more L2 capacity (lower L2 miss rate)
    // than without bypassing.
    GpuConfig cfg = test::tinyConfig(2);

    Gpu with(cfg, {test::streamingApp(), test::cacheApp()});
    with.setAppL1Bypass(0, true);
    with.setAppL2Bypass(0, true);
    with.run(8000);

    Gpu without(cfg, {test::streamingApp(), test::cacheApp()});
    without.run(8000);

    EXPECT_LE(with.appL2MissRate(1), without.appL2MissRate(1) + 0.02);
}

} // namespace
} // namespace ebm
