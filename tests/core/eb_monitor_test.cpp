#include "core/eb_monitor.hpp"

#include <gtest/gtest.h>

#include "../test_util.hpp"

namespace ebm {
namespace {

class EbMonitorTest : public ::testing::Test
{
  protected:
    EbMonitorTest()
        : cfg_(test::tinyConfig(2)),
          gpu_(cfg_, {test::streamingApp(), test::cacheApp()})
    {
    }

    GpuConfig cfg_;
    Gpu gpu_;
};

TEST_F(EbMonitorTest, SampleHasOneEntryPerApp)
{
    EbMonitor mon(gpu_, EbMonitor::Mode::DesignatedUnits);
    gpu_.run(2000);
    const EbSample sample = mon.closeWindow(gpu_.now());
    EXPECT_EQ(sample.apps.size(), 2u);
    EXPECT_EQ(sample.tlp.size(), 2u);
}

TEST_F(EbMonitorTest, SampleReflectsCurrentTlp)
{
    EbMonitor mon(gpu_, EbMonitor::Mode::DesignatedUnits);
    gpu_.setAppTlp(0, 2);
    gpu_.setAppTlp(1, 6);
    gpu_.run(1000);
    const EbSample sample = mon.closeWindow(gpu_.now());
    EXPECT_EQ(sample.tlp[0], 2u);
    EXPECT_EQ(sample.tlp[1], 6u);
}

TEST_F(EbMonitorTest, StreamingAppHasUnitCmr)
{
    EbMonitor mon(gpu_, EbMonitor::Mode::DesignatedUnits);
    gpu_.run(4000);
    const EbSample sample = mon.closeWindow(gpu_.now());
    EXPECT_DOUBLE_EQ(sample.apps[0].l1Mr, 1.0);
    EXPECT_NEAR(sample.apps[0].cmr(), 1.0, 1e-9);
    EXPECT_NEAR(sample.apps[0].eb(), sample.apps[0].bw, 1e-9);
}

TEST_F(EbMonitorTest, CacheAppAmplifiesBandwidth)
{
    EbMonitor mon(gpu_, EbMonitor::Mode::DesignatedUnits);
    gpu_.run(6000);
    const EbSample sample = mon.closeWindow(gpu_.now());
    EXPECT_GT(sample.apps[1].eb(), sample.apps[1].bw)
        << "CMR < 1 makes EB exceed attained BW";
}

TEST_F(EbMonitorTest, WindowsAreIndependent)
{
    EbMonitor mon(gpu_, EbMonitor::Mode::DesignatedUnits);
    gpu_.run(3000);
    mon.closeWindow(gpu_.now());
    gpu_.checkpoint();

    // Freeze app 0: its next window must show ~zero bandwidth.
    gpu_.setAppTlp(0, 1);
    gpu_.run(10);
    const EbSample sample = mon.closeWindow(gpu_.now());
    EXPECT_LT(sample.apps[0].bw, 0.9) << "short quiet window";
}

TEST_F(EbMonitorTest, DesignatedTracksFullMachine)
{
    // The paper's observation: miss rates and bandwidth are uniform
    // enough across units that one designated core/partition per app
    // suffices. Verify both modes agree for steady workloads.
    EbMonitor designated(gpu_, EbMonitor::Mode::DesignatedUnits);
    EbMonitor full(gpu_, EbMonitor::Mode::FullMachine);
    gpu_.run(12'000);
    const EbSample d = designated.closeWindow(gpu_.now());
    const EbSample f = full.closeWindow(gpu_.now());
    for (AppId app = 0; app < 2; ++app) {
        EXPECT_NEAR(d.apps[app].l1Mr, f.apps[app].l1Mr, 0.12);
        EXPECT_NEAR(d.apps[app].l2Mr, f.apps[app].l2Mr, 0.12);
        EXPECT_NEAR(d.apps[app].bw, f.apps[app].bw,
                    0.25 * std::max(f.apps[app].bw, 0.05));
    }
}

TEST_F(EbMonitorTest, TotalBwIsSumOfApps)
{
    EbMonitor mon(gpu_, EbMonitor::Mode::FullMachine);
    gpu_.run(4000);
    const EbSample sample = mon.closeWindow(gpu_.now());
    EXPECT_NEAR(sample.totalBw,
                sample.apps[0].bw + sample.apps[1].bw, 1e-12);
}

TEST_F(EbMonitorTest, RelayLatencyDelaysAvailability)
{
    EbMonitor mon(gpu_, EbMonitor::Mode::DesignatedUnits, 100);
    EXPECT_EQ(mon.sampleReadyAt(5000), 5100u);
    EXPECT_EQ(mon.relayLatency(), 100u);
}

TEST(EbMonitorCost, MatchesPaperAccounting)
{
    // Section V-E: two 32-bit registers per core; three 32-bit plus
    // one 5-bit register per partition per app; 64-byte table.
    const auto cost = EbMonitor::hardwareCost(2);
    EXPECT_EQ(cost.bitsPerCore, 64u);
    EXPECT_EQ(cost.bitsPerPartition, 2u * 101u);
    EXPECT_EQ(cost.relayBitsPerWindow, 192u);
    EXPECT_EQ(cost.samplingTableBytes, 64u);
}

} // namespace
} // namespace ebm
