#include "core/pbs_policy.hpp"

#include <gtest/gtest.h>

#include "../test_util.hpp"
#include "core/eb_monitor.hpp"

namespace ebm {
namespace {

void
drive(Gpu &gpu, TlpPolicy &policy, std::uint32_t windows,
      Cycle window_len = 400, bool start = true)
{
    EbMonitor mon(gpu, EbMonitor::Mode::DesignatedUnits);
    if (start)
        policy.onRunStart(gpu);
    gpu.checkpoint();
    for (std::uint32_t w = 0; w < windows; ++w) {
        gpu.run(window_len);
        const EbSample sample = mon.closeWindow(gpu.now());
        policy.onWindow(gpu, gpu.now(), sample);
        gpu.checkpoint();
    }
}

PbsPolicy
wsPolicy()
{
    PbsPolicy::Params params;
    params.objective = EbObjective::WS;
    return PbsPolicy(params);
}

TEST(PbsPolicy, NamesFollowObjective)
{
    PbsPolicy::Params p;
    p.objective = EbObjective::WS;
    EXPECT_EQ(PbsPolicy(p).name(), "PBS-WS");
    p.objective = EbObjective::FI;
    EXPECT_EQ(PbsPolicy(p).name(), "PBS-FI");
    p.objective = EbObjective::HS;
    EXPECT_EQ(PbsPolicy(p).name(), "PBS-HS");
}

TEST(PbsPolicy, ConvergesWithinBudget)
{
    GpuConfig cfg = test::tinyConfig(2);
    Gpu gpu(cfg, {test::streamingApp(), test::cacheApp()});
    PbsPolicy policy = wsPolicy();
    drive(gpu, policy, 30);
    EXPECT_TRUE(policy.converged());
    EXPECT_LT(policy.samplesTaken(), 30u);
    EXPECT_GT(policy.samplesTaken(), 5u);
}

TEST(PbsPolicy, AppliesSearchCombosToTheGpu)
{
    GpuConfig cfg = test::tinyConfig(2);
    Gpu gpu(cfg, {test::streamingApp(), test::cacheApp()});
    const std::uint32_t tlp0 = gpu.appTlp(0);
    const std::uint32_t tlp1 = gpu.appTlp(1);
    PbsPolicy policy = wsPolicy();
    // Start is gpu-neutral (the warm-fork contract): the machine is
    // untouched until the first window closes.
    policy.onRunStart(gpu);
    EXPECT_TRUE(policy.startIsGpuNeutral());
    EXPECT_FALSE(policy.converged());
    EXPECT_EQ(gpu.appTlp(0), tlp0);
    EXPECT_EQ(gpu.appTlp(1), tlp1);
    // The first close kicks off probing: some combo is applied.
    EbMonitor mon(gpu, EbMonitor::Mode::DesignatedUnits);
    gpu.checkpoint();
    gpu.run(400);
    policy.onWindow(gpu, gpu.now(), mon.closeWindow(gpu.now()));
    EXPECT_FALSE(policy.currentCombo().empty());
    EXPECT_EQ(gpu.appTlp(0), policy.currentCombo()[0]);
    EXPECT_EQ(gpu.appTlp(1), policy.currentCombo()[1]);
}

TEST(PbsPolicy, TimelineRecordsChanges)
{
    GpuConfig cfg = test::tinyConfig(2);
    Gpu gpu(cfg, {test::streamingApp(), test::cacheApp()});
    PbsPolicy policy = wsPolicy();
    drive(gpu, policy, 30);
    EXPECT_GT(policy.timeline().size(), 3u)
        << "the search visits several combos";
    // Timeline cycles are non-decreasing.
    for (std::size_t i = 1; i < policy.timeline().size(); ++i) {
        EXPECT_LE(policy.timeline()[i - 1].first,
                  policy.timeline()[i].first);
    }
}

TEST(PbsPolicy, HoldsComboAfterConvergence)
{
    GpuConfig cfg = test::tinyConfig(2);
    Gpu gpu(cfg, {test::streamingApp(), test::cacheApp()});
    PbsPolicy policy = wsPolicy();
    drive(gpu, policy, 30);
    ASSERT_TRUE(policy.converged());
    const TlpCombo held = policy.currentCombo();
    const auto timeline_len = policy.timeline().size();
    drive(gpu, policy, 5, 400, /*start=*/false);
    EXPECT_EQ(policy.currentCombo(), held);
    EXPECT_EQ(policy.timeline().size(), timeline_len);
}

TEST(PbsPolicy, KernelRelaunchRestartsSearch)
{
    GpuConfig cfg = test::tinyConfig(2);
    Gpu gpu(cfg, {test::streamingApp(), test::cacheApp()});
    PbsPolicy policy = wsPolicy();
    drive(gpu, policy, 30);
    ASSERT_TRUE(policy.converged());
    policy.onKernelRelaunch(gpu, gpu.now());
    EXPECT_FALSE(policy.converged())
        << "paper: PBS restarts when any kernel is re-launched";
}

TEST(PbsPolicy, ReverifyWindowsReopensSearch)
{
    GpuConfig cfg = test::tinyConfig(2);
    Gpu gpu(cfg, {test::streamingApp(), test::cacheApp()});
    PbsPolicy::Params params;
    params.objective = EbObjective::WS;
    params.reverifyWindows = 4;
    PbsPolicy policy(params);
    drive(gpu, policy, 30);
    const auto samples_at_convergence = policy.samplesTaken();
    drive(gpu, policy, 10, 400, /*start=*/false);
    EXPECT_GT(policy.samplesTaken(), samples_at_convergence)
        << "periodic re-verification keeps sampling";
}

TEST(PbsPolicy, FiVariantUsesSampledScaling)
{
    GpuConfig cfg = test::tinyConfig(2);
    Gpu gpu(cfg, {test::streamingApp(), test::cacheApp()});
    PbsPolicy::Params params;
    params.objective = EbObjective::FI;
    params.scaling = ScalingMode::SampledAlone;
    PbsPolicy policy(params);
    drive(gpu, policy, 36);
    EXPECT_TRUE(policy.converged());
}

TEST(PbsPolicy, ConvergedComboOnConfiguredLadder)
{
    GpuConfig cfg = test::tinyConfig(2);
    Gpu gpu(cfg, {test::streamingApp(), test::cacheApp()});
    PbsPolicy policy = wsPolicy();
    drive(gpu, policy, 30);
    ASSERT_TRUE(policy.converged());
    for (std::uint32_t tlp : policy.currentCombo()) {
        bool on_ladder = false;
        for (std::uint32_t level : GpuConfig::tlpLevels())
            on_ladder |= (level == tlp);
        EXPECT_TRUE(on_ladder);
    }
}

} // namespace
} // namespace ebm
