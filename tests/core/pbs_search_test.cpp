#include "core/pbs_search.hpp"

#include <cmath>
#include <functional>
#include <map>

#include <gtest/gtest.h>

#include "../test_util.hpp"

namespace ebm {
namespace {

using Landscape =
    std::function<std::vector<double>(const TlpCombo &)>; // per-app EB.

const std::vector<std::uint32_t> kLevels = {1, 2, 4, 6, 8, 12, 16, 24};

/** Drive a search to completion over a synthetic EB landscape. */
TlpCombo
solve(PbsSearch &search, const Landscape &land)
{
    while (!search.done()) {
        const auto combo = search.nextCombo();
        EXPECT_TRUE(combo.has_value());
        EbSample sample;
        sample.tlp = *combo;
        const auto ebs = land(*combo);
        sample.apps.resize(ebs.size());
        for (std::size_t a = 0; a < ebs.size(); ++a) {
            sample.apps[a].bw = ebs[a];
            sample.apps[a].l1Mr = 1.0;
            sample.apps[a].l2Mr = 1.0; // eb == bw.
            sample.totalBw += ebs[a];
        }
        search.observe(sample);
    }
    return search.best();
}

/** Exhaustive argmax over the synthetic landscape for comparison. */
TlpCombo
bruteForce(const Landscape &land,
           const std::function<double(const std::vector<double> &)> &obj,
           std::uint32_t num_apps = 2)
{
    TlpCombo best;
    double best_val = -1e300;
    std::vector<std::size_t> idx(num_apps, 0);
    while (true) {
        TlpCombo combo(num_apps);
        for (std::uint32_t a = 0; a < num_apps; ++a)
            combo[a] = kLevels[idx[a]];
        const double v = obj(land(combo));
        if (v > best_val) {
            best_val = v;
            best = combo;
        }
        std::uint32_t pos = 0;
        while (pos < num_apps) {
            if (++idx[pos] < kLevels.size())
                break;
            idx[pos] = 0;
            ++pos;
        }
        if (pos == num_apps)
            break;
    }
    return best;
}

double
sum(const std::vector<double> &v)
{
    double s = 0;
    for (double x : v)
        s += x;
    return s;
}

/**
 * A paper-like landscape: app 0 is critical — its EB collapses past an
 * inflection TLP regardless of app 1's TLP (the "pattern"); app 1
 * gently saturates.
 */
std::vector<double>
patternLandscape(const TlpCombo &c)
{
    const double t0 = c[0], t1 = c[1];
    // App 0: rises to its inflection at 4, then collapses.
    const double eb0 =
        t0 <= 4 ? 0.2 + 0.1 * t0 : std::max(0.1, 0.6 - 0.05 * t0);
    // App 1: saturating growth, mildly suppressed by app 0's TLP.
    const double eb1 = (0.8 * t1 / (t1 + 4.0)) * (1.0 - 0.01 * t0);
    return {eb0, eb1};
}

TEST(ProbeLadder, GeometricSubsetWithTop)
{
    const auto ladder = PbsSearch::probeLadder(kLevels);
    EXPECT_EQ(ladder, (std::vector<std::uint32_t>{1, 2, 4, 8, 16, 24}));
}

TEST(ProbeLadder, AlwaysIncludesTopLevel)
{
    const auto ladder = PbsSearch::probeLadder({1, 2, 3});
    EXPECT_EQ(ladder.back(), 3u);
}

TEST(PbsSearch, IdentifiesCriticalApp)
{
    PbsSearch search(EbObjective::WS, 2, kLevels, ScalingMode::None);
    solve(search, patternLandscape);
    EXPECT_EQ(search.criticalApp(), 0u)
        << "app 0 has the sharp EB-WS drop";
}

TEST(PbsSearch, FindsNearOptimalWsCombo)
{
    PbsSearch search(EbObjective::WS, 2, kLevels, ScalingMode::None);
    const TlpCombo got = solve(search, patternLandscape);
    const TlpCombo want = bruteForce(patternLandscape, sum);
    const double got_val = sum(patternLandscape(got));
    const double want_val = sum(patternLandscape(want));
    EXPECT_GE(got_val, 0.97 * want_val)
        << "PBS within 3% of exhaustive search";
}

TEST(PbsSearch, UsesFarFewerSamplesThanExhaustive)
{
    PbsSearch search(EbObjective::WS, 2, kLevels, ScalingMode::None);
    solve(search, patternLandscape);
    EXPECT_LT(search.samplesTaken(), 25u);
    EXPECT_GT(search.samplesTaken(), 5u);
}

TEST(PbsSearch, CriticalAppSwapsWithLandscape)
{
    // Mirror the landscape: now app 1 is critical.
    const Landscape mirrored = [](const TlpCombo &c) {
        const auto v = patternLandscape({c[1], c[0]});
        return std::vector<double>{v[1], v[0]};
    };
    PbsSearch search(EbObjective::WS, 2, kLevels, ScalingMode::None);
    solve(search, mirrored);
    EXPECT_EQ(search.criticalApp(), 1u);
}

TEST(PbsSearch, MonotoneLandscapePicksHighLevels)
{
    // No inflection anywhere: both apps just like more TLP.
    const Landscape rising = [](const TlpCombo &c) {
        return std::vector<double>{0.3 * c[0] / (c[0] + 8.0),
                                   0.3 * c[1] / (c[1] + 8.0)};
    };
    PbsSearch search(EbObjective::WS, 2, kLevels, ScalingMode::None);
    const TlpCombo got = solve(search, rising);
    const double got_val = sum(rising(got));
    const double want_val = sum(rising(bruteForce(rising, sum)));
    EXPECT_GE(got_val, 0.95 * want_val);
}

TEST(PbsSearch, FiObjectiveBalancesEbs)
{
    // App 0's EB rises with its TLP; app 1's falls with app 0's TLP.
    const Landscape see_saw = [](const TlpCombo &c) {
        return std::vector<double>{0.05 * c[0],
                                   0.6 - 0.02 * c[0] +
                                       0.002 * c[1]};
    };
    PbsSearch search(EbObjective::FI, 2, kLevels, ScalingMode::None);
    const TlpCombo got = solve(search, see_saw);
    const auto ebs = see_saw(got);
    const double fi = std::min(ebs[0], ebs[1]) /
                      std::max(ebs[0], ebs[1]);
    EXPECT_GT(fi, 0.6) << "search should land near balance";
}

TEST(PbsSearch, SampledAloneScalingProbesQuietCoRunners)
{
    PbsSearch search(EbObjective::FI, 2, kLevels,
                     ScalingMode::SampledAlone);
    // First two probes must be the near-alone combos.
    const auto first = search.nextCombo();
    ASSERT_TRUE(first.has_value());
    EXPECT_EQ((*first)[0], 4u);
    EXPECT_EQ((*first)[1], 1u);
    solve(search, patternLandscape);
    // Scale factors picked up from the probes (non-default).
    EXPECT_NE(search.scaleFactors()[0], 1.0);
    EXPECT_NE(search.scaleFactors()[1], 1.0);
}

TEST(PbsSearch, UserGroupScalingUsedDirectly)
{
    PbsSearch search(EbObjective::FI, 2, kLevels,
                     ScalingMode::UserGroup, {2.0, 0.5});
    EXPECT_EQ(search.scaleFactors(),
              (std::vector<double>{2.0, 0.5}));
}

TEST(PbsSearch, HsObjectiveConverges)
{
    PbsSearch search(EbObjective::HS, 2, kLevels, ScalingMode::None);
    const TlpCombo got = solve(search, patternLandscape);
    const auto hs = [](const std::vector<double> &v) {
        return 2.0 / (1.0 / v[0] + 1.0 / v[1]);
    };
    const TlpCombo want = bruteForce(patternLandscape, hs);
    EXPECT_GE(hs(patternLandscape(got)),
              0.9 * hs(patternLandscape(want)));
}

TEST(PbsSearch, ThreeAppsConverge)
{
    const Landscape three = [](const TlpCombo &c) {
        return std::vector<double>{
            c[0] <= 4 ? 0.1 * c[0] : std::max(0.05, 0.5 - 0.04 * c[0]),
            0.4 * c[1] / (c[1] + 6.0),
            0.3 * c[2] / (c[2] + 3.0)};
    };
    PbsSearch search(EbObjective::WS, 3, kLevels, ScalingMode::None);
    const TlpCombo got = solve(search, three);
    ASSERT_EQ(got.size(), 3u);
    EXPECT_LT(search.samplesTaken(), 40u)
        << "still far below the 512-combo exhaustive space";
    const double got_val = sum(three(got));
    const TlpCombo want = bruteForce(three, sum, 3);
    EXPECT_GE(got_val, 0.9 * sum(three(want)));
}

TEST(PbsSearch, NextComboNulloptAfterDone)
{
    PbsSearch search(EbObjective::WS, 2, kLevels, ScalingMode::None);
    solve(search, patternLandscape);
    EXPECT_FALSE(search.nextCombo().has_value());
}

TEST(PbsSearchDeath, BestBeforeDonePanics)
{
    PbsSearch search(EbObjective::WS, 2, kLevels, ScalingMode::None);
    EXPECT_EBM_FATAL(search.best(), "before");
}

TEST(PbsSearchDeath, SingleAppIsFatal)
{
    EXPECT_EBM_FATAL(
        { PbsSearch s(EbObjective::WS, 1, kLevels, ScalingMode::None); },
        "two applications");
}

TEST(PbsSearchDeath, UnsortedLevelsAreFatal)
{
    EXPECT_EBM_FATAL(
        {
            PbsSearch s(EbObjective::WS, 2, {4, 2, 1},
                        ScalingMode::None);
        },
        "ascending");
}

TEST(PbsSearchDeath, UserScaleSizeMismatchIsFatal)
{
    EXPECT_EBM_FATAL(
        {
            PbsSearch s(EbObjective::FI, 2, kLevels,
                        ScalingMode::UserGroup, {1.0});
        },
        "scale");
}

/**
 * Property sweep: over a family of landscapes with the inflection at
 * different levels, PBS must always land within 10% of brute force
 * while sampling under half of the space.
 */
class PbsInflectionSweep : public ::testing::TestWithParam<std::uint32_t>
{
};

TEST_P(PbsInflectionSweep, NearOptimalAtAnyInflection)
{
    const std::uint32_t knee = GetParam();
    const Landscape land = [knee](const TlpCombo &c) {
        const double t0 = c[0], t1 = c[1];
        const double eb0 = t0 <= knee
                               ? 0.1 + 0.4 * t0 / knee
                               : std::max(0.05, 0.5 - 0.03 * (t0 - knee));
        const double eb1 = 0.5 * t1 / (t1 + 6.0) * (1.0 - 0.005 * t0);
        return std::vector<double>{eb0, eb1};
    };
    PbsSearch search(EbObjective::WS, 2, kLevels, ScalingMode::None);
    const TlpCombo got = solve(search, land);
    const TlpCombo want = bruteForce(land, sum);
    EXPECT_GE(sum(land(got)), 0.9 * sum(land(want)))
        << "knee at " << knee;
    EXPECT_LT(search.samplesTaken(), 32u);
}

INSTANTIATE_TEST_SUITE_P(Knees, PbsInflectionSweep,
                         ::testing::Values(1u, 2u, 4u, 6u, 8u, 12u,
                                           16u));

} // namespace
} // namespace ebm
