#include "core/dyncta.hpp"

#include <gtest/gtest.h>

#include "../test_util.hpp"
#include "core/eb_monitor.hpp"

namespace ebm {
namespace {

/** Run @p windows sampling windows under @p policy. */
void
drive(Gpu &gpu, TlpPolicy &policy, std::uint32_t windows,
      Cycle window_len = 500)
{
    EbMonitor mon(gpu, EbMonitor::Mode::DesignatedUnits);
    policy.onRunStart(gpu);
    gpu.checkpoint();
    for (std::uint32_t w = 0; w < windows; ++w) {
        gpu.run(window_len);
        const EbSample sample = mon.closeWindow(gpu.now());
        policy.onWindow(gpu, gpu.now(), sample);
        gpu.checkpoint();
    }
}

TEST(DynCta, StartsAtInitialTlp)
{
    GpuConfig cfg = test::tinyConfig(2);
    Gpu gpu(cfg, {test::streamingApp(), test::cacheApp()});
    DynCta::Params params;
    params.initialTlp = 6;
    DynCta policy(params);
    policy.onRunStart(gpu);
    EXPECT_EQ(gpu.appTlp(0), 6u);
    EXPECT_EQ(gpu.appTlp(1), 6u);
}

TEST(DynCta, ThrottlesMemorySaturatedApp)
{
    GpuConfig cfg = test::tinyConfig(2);
    Gpu gpu(cfg, {test::streamingApp("S1", 3), test::streamingApp("S2", 5)});
    DynCta::Params params;
    params.initialTlp = 8;
    DynCta policy(params);
    drive(gpu, policy, 20);
    // Two streaming co-runners saturate memory; DynCTA should back at
    // least one of them off its initial TLP.
    EXPECT_LT(std::min(gpu.appTlp(0), gpu.appTlp(1)), 8u);
}

TEST(DynCta, RaisesTlpForComputeBoundApp)
{
    GpuConfig cfg = test::tinyConfig(2);
    Gpu gpu(cfg, {test::computeApp("C1", 3), test::computeApp("C2", 5)});
    DynCta::Params params;
    params.initialTlp = 2;
    DynCta policy(params);
    drive(gpu, policy, 20);
    EXPECT_GT(gpu.appTlp(0), 2u)
        << "compute-bound cores are busy, not memory-waiting";
}

TEST(DynCta, StepsStayOnConfiguredLadder)
{
    GpuConfig cfg = test::tinyConfig(2);
    Gpu gpu(cfg, {test::streamingApp(), test::cacheApp()});
    DynCta policy;
    drive(gpu, policy, 30);
    const auto &levels = GpuConfig::tlpLevels();
    for (AppId app = 0; app < 2; ++app) {
        const std::uint32_t tlp = gpu.appTlp(app);
        bool on_ladder = false;
        for (std::uint32_t level : levels)
            on_ladder |= (level == tlp);
        EXPECT_TRUE(on_ladder) << "tlp " << tlp;
    }
}

TEST(DynCta, NameIsPaperName)
{
    EXPECT_EQ(DynCta().name(), "++DynCTA");
}

TEST(DynCta, LocalOnlyNeverReadsCoRunnerState)
{
    // Behavioural contract: identical local conditions produce the
    // same decision regardless of the co-runner's profile name.
    GpuConfig cfg = test::tinyConfig(2);
    Gpu gpu_a(cfg, {test::computeApp("C", 3), test::streamingApp("S", 5)});
    Gpu gpu_b(cfg, {test::computeApp("C", 3), test::streamingApp("X", 5)});
    DynCta pa, pb;
    drive(gpu_a, pa, 10);
    drive(gpu_b, pb, 10);
    EXPECT_EQ(gpu_a.appTlp(0), gpu_b.appTlp(0))
        << "same seed co-runner, same local signal";
}

} // namespace
} // namespace ebm
