#include "metrics/metrics.hpp"

#include <gtest/gtest.h>

#include "../test_util.hpp"

namespace ebm {
namespace {

// --- Table III identities -----------------------------------------------

TEST(AppRunStats, CmrIsProductOfMissRates)
{
    AppRunStats s;
    s.l1Mr = 0.5;
    s.l2Mr = 0.4;
    EXPECT_DOUBLE_EQ(s.cmr(), 0.2);
}

TEST(AppRunStats, EbIsBwOverCmr)
{
    AppRunStats s;
    s.bw = 0.3;
    s.l1Mr = 0.5;
    s.l2Mr = 0.5;
    EXPECT_DOUBLE_EQ(s.eb(), 0.3 / 0.25);
}

TEST(AppRunStats, CacheInsensitiveAppHasEbEqualBw)
{
    // The paper: "EB is equal to BW for cache insensitive
    // applications (e.g., BLK)".
    AppRunStats s;
    s.bw = 0.42;
    s.l1Mr = 1.0;
    s.l2Mr = 1.0;
    EXPECT_DOUBLE_EQ(s.eb(), 0.42);
}

TEST(AppRunStats, HalvedMissRateDoublesEb)
{
    // "a miss rate of 50% effectively doubles the bandwidth
    // delivered".
    AppRunStats s;
    s.bw = 0.2;
    s.l1Mr = 1.0;
    s.l2Mr = 1.0;
    const double base = s.eb();
    s.l2Mr = 0.5;
    EXPECT_DOUBLE_EQ(s.eb(), 2.0 * base);
}

TEST(AppRunStats, EbAtL2UsesOnlyL2MissRate)
{
    AppRunStats s;
    s.bw = 0.2;
    s.l1Mr = 0.5;
    s.l2Mr = 0.4;
    EXPECT_DOUBLE_EQ(s.ebAtL2(), 0.5);
    EXPECT_DOUBLE_EQ(s.eb(), 1.0);
}

TEST(Slowdown, RatioOfSharedToAlone)
{
    EXPECT_DOUBLE_EQ(slowdown(0.5, 1.0), 0.5);
    EXPECT_DOUBLE_EQ(slowdown(1.0, 1.0), 1.0);
}

TEST(WeightedSpeedup, SumsSlowdowns)
{
    EXPECT_DOUBLE_EQ(weightedSpeedup({0.5, 0.7}), 1.2);
    EXPECT_DOUBLE_EQ(weightedSpeedup({1.0, 1.0}), 2.0)
        << "max WS equals the app count";
}

TEST(FairnessIndex, OneMeansPerfectlyFair)
{
    EXPECT_DOUBLE_EQ(fairnessIndex({0.6, 0.6}), 1.0);
}

TEST(FairnessIndex, MinOverMaxForTwoApps)
{
    EXPECT_DOUBLE_EQ(fairnessIndex({0.3, 0.6}), 0.5);
    EXPECT_DOUBLE_EQ(fairnessIndex({0.6, 0.3}), 0.5)
        << "symmetric in app order";
}

TEST(FairnessIndex, GeneralizesToThreeApps)
{
    EXPECT_DOUBLE_EQ(fairnessIndex({0.2, 0.4, 0.8}), 0.25);
}

TEST(HarmonicSpeedup, MatchesPaperFormulaForTwoApps)
{
    const double sd1 = 0.5, sd2 = 0.25;
    const double expected = 2.0 / (1.0 / sd1 + 1.0 / sd2);
    EXPECT_DOUBLE_EQ(harmonicSpeedup({sd1, sd2}), expected);
}

TEST(HarmonicSpeedup, EqualSlowdownsGiveThatValue)
{
    EXPECT_NEAR(harmonicSpeedup({0.7, 0.7}), 0.7, 1e-12);
}

// --- EB-based metrics ----------------------------------------------------

TEST(EbMetrics, EbWsSums)
{
    EXPECT_DOUBLE_EQ(ebWeightedSpeedup({0.3, 0.5}), 0.8);
}

TEST(EbMetrics, EbFiUnscaled)
{
    EXPECT_DOUBLE_EQ(ebFairnessIndex({0.2, 0.4}), 0.5);
}

TEST(EbMetrics, EbFiScalingRemovesAloneBias)
{
    // App 0 has twice the alone EB of app 1; raw EBs of (0.4, 0.2)
    // are perfectly fair once scaled.
    EXPECT_DOUBLE_EQ(ebFairnessIndex({0.4, 0.2}, {2.0, 1.0}), 1.0);
    EXPECT_LT(ebFairnessIndex({0.4, 0.2}), 1.0);
}

TEST(EbMetrics, EbHsScaled)
{
    const double expected = 2.0 / (1.0 / 0.2 + 1.0 / 0.2);
    EXPECT_DOUBLE_EQ(ebHarmonicSpeedup({0.4, 0.2}, {2.0, 1.0}),
                     expected);
}

TEST(EbMetricsDeath, ScaleSizeMismatchIsFatal)
{
    EXPECT_EBM_FATAL(ebFairnessIndex({0.4, 0.2}, {1.0}), "scale");
}

TEST(AloneRatioBias, AlwaysAtLeastOne)
{
    EXPECT_DOUBLE_EQ(aloneRatioBias(2.0, 1.0), 2.0);
    EXPECT_DOUBLE_EQ(aloneRatioBias(1.0, 2.0), 2.0);
    EXPECT_DOUBLE_EQ(aloneRatioBias(3.0, 3.0), 1.0);
}

// --- Property sweeps ------------------------------------------------------

class MetricProperties : public ::testing::TestWithParam<double>
{
};

TEST_P(MetricProperties, FairnessBoundedByOne)
{
    const double sd = GetParam();
    EXPECT_LE(fairnessIndex({sd, 0.5}), 1.0);
    EXPECT_GE(fairnessIndex({sd, 0.5}), 0.0);
}

TEST_P(MetricProperties, HarmonicNeverExceedsArithmetic)
{
    const double sd = GetParam();
    EXPECT_LE(harmonicSpeedup({sd, 0.5}),
              weightedSpeedup({sd, 0.5}) / 2.0 + 1e-12);
}

TEST_P(MetricProperties, ScalingByCommonFactorKeepsFi)
{
    const double sd = GetParam();
    const double fi1 = ebFairnessIndex({sd, 0.5});
    const double fi2 = ebFairnessIndex({sd * 3.0, 1.5});
    EXPECT_NEAR(fi1, fi2, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(SlowdownSweep, MetricProperties,
                         ::testing::Values(0.05, 0.1, 0.25, 0.5, 0.75,
                                           0.9, 1.0));

} // namespace
} // namespace ebm
