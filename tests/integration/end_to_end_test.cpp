#include <algorithm>
#include <cstdio>

#include <gtest/gtest.h>

#include "../test_util.hpp"
#include "core/dyncta.hpp"
#include "core/pbs_policy.hpp"
#include "harness/exhaustive.hpp"
#include "harness/runner.hpp"
#include "metrics/metrics.hpp"
#include "workload/app_catalog.hpp"

namespace ebm {
namespace {

/**
 * Whole-stack scenarios on the tiny machine: a bandwidth-hungry
 * streaming app co-located with a cache-sensitive app — the exact
 * contention pattern the paper targets.
 */
class EndToEndTest : public ::testing::Test
{
  protected:
    EndToEndTest() : runner_(test::tinyConfig(2), options()) {}

    static RunOptions
    options()
    {
        // Long enough that an online policy's search phase amortizes
        // (the paper evaluates full kernel executions).
        RunOptions opts = test::tinyOptions();
        opts.measureCycles = 30'000;
        return opts;
    }

    std::vector<AppProfile> apps_ = {test::streamingApp(),
                                     test::cacheApp()};
    Runner runner_;
};

TEST_F(EndToEndTest, ContentionIsReal)
{
    // Each app alone vs together at the same TLP: both must slow down.
    const RunResult together = runner_.runStatic(apps_, {8, 8});
    const RunResult alone0 = runner_.runAlone(apps_[0], 8);
    const RunResult alone1 = runner_.runAlone(apps_[1], 8);
    EXPECT_LT(together.apps[0].ipc, alone0.apps[0].ipc);
    EXPECT_LT(together.apps[1].ipc, alone1.apps[0].ipc);
}

TEST_F(EndToEndTest, SharedL2InterferenceRaisesMissRate)
{
    const RunResult together = runner_.runStatic(apps_, {8, 8});
    // An alone run has a single app: its stats live at index 0.
    const RunResult alone1 = runner_.runAlone(apps_[1], 8);
    EXPECT_GE(together.apps[1].l2Mr, alone1.apps[0].l2Mr - 0.02)
        << "the streaming app steals L2 capacity";
}

TEST_F(EndToEndTest, ThrottlingTheStreamerHelpsTheCacheApp)
{
    const RunResult aggressive = runner_.runStatic(apps_, {24, 8});
    const RunResult throttled = runner_.runStatic(apps_, {2, 8});
    EXPECT_GT(throttled.apps[1].ipc, aggressive.apps[1].ipc)
        << "lower streamer TLP frees bandwidth and cache for app 1";
}

TEST_F(EndToEndTest, EbTracksIpcAcrossTlp)
{
    // The paper's Fig. 2(d): EB and IPC move together with TLP.
    std::vector<double> ipcs, ebs;
    for (std::uint32_t tlp : {1u, 2u, 4u, 8u, 16u}) {
        const RunResult r = runner_.runAlone(apps_[1], tlp);
        ipcs.push_back(r.apps[0].ipc);
        ebs.push_back(r.apps[0].eb());
    }
    // Rank correlation: the argmax should coincide (or be adjacent).
    const auto ipc_best = static_cast<std::ptrdiff_t>(
        std::max_element(ipcs.begin(), ipcs.end()) - ipcs.begin());
    const auto eb_best = static_cast<std::ptrdiff_t>(
        std::max_element(ebs.begin(), ebs.end()) - ebs.begin());
    EXPECT_LE(std::abs(ipc_best - eb_best), 1);
}

TEST_F(EndToEndTest, PbsWsBeatsBestTlpOnContendedPair)
{
    // The headline claim, on the full-scale machine with catalog
    // apps: a streaming bandwidth hog (BLK) co-located with a
    // cache-sensitive app (BFS). On the tiny test machine the EB-WS
    // landscape is too flat to discriminate, so this test uses the
    // standard configuration.
    GpuConfig cfg;
    cfg.numApps = 2;
    // Online-policy horizon: long enough that the one-off search
    // amortizes, as it does over real kernel executions. (The search
    // begins at the first window boundary rather than at cycle zero —
    // policies are gpu-neutral until their first sample — so the
    // horizon must absorb one extra window of probing.)
    RunOptions opts;
    opts.warmupCycles = 5000;
    opts.measureCycles = 200'000;
    opts.windowCycles = 1000;
    Runner runner(cfg, opts);
    const std::vector<AppProfile> apps = {findApp("BLK"),
                                          findApp("BFS")};

    auto solo_best = [&runner](const AppProfile &app) {
        std::uint32_t best = 1;
        double best_ipc = -1.0;
        for (std::uint32_t tlp : GpuConfig::tlpLevels()) {
            const double ipc = runner.runAlone(app, tlp).apps[0].ipc;
            if (ipc > best_ipc) {
                best_ipc = ipc;
                best = tlp;
            }
        }
        return std::pair{best, best_ipc};
    };
    const auto [best0, alone0] = solo_best(apps[0]);
    const auto [best1, alone1] = solo_best(apps[1]);
    const RunResult base = runner.runStatic(apps, {best0, best1});

    PbsPolicy::Params params;
    params.objective = EbObjective::WS;
    PbsPolicy pbs(params);
    const RunResult tuned = runner.run(apps, pbs);

    const double ws_base =
        slowdown(base.apps[0].ipc, alone0) +
        slowdown(base.apps[1].ipc, alone1);
    const double ws_pbs =
        slowdown(tuned.apps[0].ipc, alone0) +
        slowdown(tuned.apps[1].ipc, alone1);
    EXPECT_GT(ws_pbs, ws_base)
        << "PBS-WS must beat ++bestTLP on a contended pair";
}

TEST_F(EndToEndTest, PbsCloseToExhaustiveOptimum)
{
    const std::string cache_path =
        ::testing::TempDir() + "e2e_cache.txt";
    std::remove(cache_path.c_str());
    DiskCache cache(cache_path);
    Exhaustive ex(runner_, cache);
    Workload wl;
    wl.name = "SYN_STREAM_CACHE";
    wl.appNames = {"BLK", "BFS"}; // Catalog stand-ins, same archetypes.
    const std::vector<std::uint32_t> ladder = {1, 2, 4, 8, 16};
    const ComboTable table = ex.sweep(wl, ladder);

    // PBS offline over the table.
    PbsSearch search(EbObjective::WS, 2, ladder, ScalingMode::None);
    while (!search.done()) {
        const auto combo = search.nextCombo();
        ASSERT_TRUE(combo.has_value());
        EbSample sample;
        sample.apps = table.at(*combo).apps;
        sample.tlp = *combo;
        search.observe(sample);
    }
    const double pbs_val =
        Exhaustive::value(table, search.best(), OptTarget::EbWS);
    const double opt_val = Exhaustive::value(
        table, Exhaustive::argmax(table, OptTarget::EbWS),
        OptTarget::EbWS);
    EXPECT_GE(pbs_val, 0.85 * opt_val);
    EXPECT_LT(search.samplesTaken(), table.combos.size());
    std::remove(cache_path.c_str());
}

TEST_F(EndToEndTest, DynCtaRunsEndToEnd)
{
    DynCta policy;
    const RunResult r = runner_.run(apps_, policy);
    EXPECT_GT(r.apps[0].ipc, 0.0);
    EXPECT_GT(r.apps[1].ipc, 0.0);
}

TEST_F(EndToEndTest, ThreeAppPbsConverges)
{
    GpuConfig cfg = test::tinyConfig(3);
    cfg.numCores = 6;
    RunOptions opts = options();
    opts.measureCycles = 20'000;
    Runner runner(cfg, opts);
    PbsPolicy::Params params;
    params.objective = EbObjective::WS;
    PbsPolicy pbs(params);
    const RunResult r = runner.run(
        {test::streamingApp("S"), test::cacheApp("C"),
         test::computeApp("K")},
        pbs);
    ASSERT_EQ(r.apps.size(), 3u);
    for (const AppRunStats &a : r.apps)
        EXPECT_GT(a.ipc, 0.0);
}

TEST_F(EndToEndTest, WholeRunDeterminism)
{
    PbsPolicy::Params params;
    params.objective = EbObjective::WS;
    PbsPolicy p1(params), p2(params);
    const RunResult a = runner_.run(apps_, p1);
    const RunResult b = runner_.run(apps_, p2);
    EXPECT_EQ(a.finalTlp, b.finalTlp);
    EXPECT_DOUBLE_EQ(a.apps[0].ipc, b.apps[0].ipc);
    EXPECT_DOUBLE_EQ(a.apps[1].ipc, b.apps[1].ipc);
}

} // namespace
} // namespace ebm
