/**
 * @file
 * Shared fixtures for the test suite: a deliberately tiny simulated
 * GPU so unit and integration tests run in milliseconds, plus small
 * synthetic application profiles with known behaviour.
 */
#pragma once

#include <string>

#include "common/config.hpp"
#include "common/error.hpp"
#include "harness/run_result.hpp"
#include "workload/app_profile.hpp"

/**
 * Expect @p statement to fail through the structured error model
 * (fatal()/panic() throw FatalError/InternalError) with a message
 * containing @p substr. The successor of the old EXPECT_DEATH checks:
 * library errors no longer kill the process.
 */
#define EXPECT_EBM_FATAL(statement, substr)                              \
    do {                                                                 \
        bool ebm_test_threw_ = false;                                    \
        try {                                                            \
            statement;                                                   \
        } catch (const ::ebm::FatalError &ebm_test_err_) {               \
            ebm_test_threw_ = true;                                      \
            EXPECT_NE(std::string(ebm_test_err_.what()).find(substr),    \
                      std::string::npos)                                 \
                << "error message was: " << ebm_test_err_.what();        \
        }                                                                \
        EXPECT_TRUE(ebm_test_threw_)                                     \
            << "expected a FatalError containing \"" << substr << "\"";  \
    } while (0)

namespace ebm::test {

/** A 4-core, 2-partition machine for fast tests. */
inline GpuConfig
tinyConfig(std::uint32_t num_apps = 1)
{
    GpuConfig cfg;
    cfg.numCores = 4;
    cfg.numPartitions = 2;
    cfg.numApps = num_apps;
    cfg.maxWarpsPerCore = 16;
    cfg.schedulersPerCore = 2;
    cfg.l1 = {8 * 1024, 4, 128, 16, 4};
    cfg.l2Slice = {64 * 1024, 8, 128, 32, 4};
    cfg.banksPerChannel = 8;
    cfg.bankGroups = 4;
    cfg.frfcfsQueueDepth = 32;
    return cfg;
}

/** Short measurement windows to match the tiny machine. */
inline RunOptions
tinyOptions()
{
    RunOptions opts;
    opts.warmupCycles = 1000;
    opts.measureCycles = 6000;
    opts.windowCycles = 500;
    return opts;
}

/** A pure-streaming application (cache-insensitive, BW hungry). */
inline AppProfile
streamingApp(const std::string &name = "STREAM", std::uint32_t seed = 7)
{
    AppProfile p;
    p.name = name;
    p.seed = seed;
    p.mlpBurst = 4;
    p.computeRun = 6;
    p.fracL1Reuse = 0.0;
    p.fracL2Reuse = 0.0;
    p.fracRandom = 0.0;
    return p;
}

/** A cache-sensitive application (small per-warp working set). */
inline AppProfile
cacheApp(const std::string &name = "CACHE", std::uint32_t seed = 11)
{
    AppProfile p;
    p.name = name;
    p.seed = seed;
    p.mlpBurst = 4;
    p.computeRun = 6;
    p.fracL1Reuse = 0.55;
    p.fracL2Reuse = 0.30;
    p.fracRandom = 0.0;
    p.l1ReuseLines = 12;
    p.l2ReuseLines = 512;
    return p;
}

/** A compute-bound application (its few loads stay L1 resident). */
inline AppProfile
computeApp(const std::string &name = "COMPUTE", std::uint32_t seed = 13)
{
    AppProfile p;
    p.name = name;
    p.seed = seed;
    p.mlpBurst = 1;
    p.computeRun = 30;
    p.fracL1Reuse = 1.0;
    p.l1ReuseLines = 8;
    return p;
}

} // namespace ebm::test
