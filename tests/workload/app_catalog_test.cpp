#include "workload/app_catalog.hpp"

#include <set>

#include <gtest/gtest.h>

#include "../test_util.hpp"

namespace ebm {
namespace {

TEST(AppCatalog, HasTwentySixApps)
{
    EXPECT_EQ(appCatalog().size(), 26u) << "Table IV lists 26 apps";
}

TEST(AppCatalog, NamesAreUnique)
{
    std::set<std::string> names;
    for (const AppProfile &p : appCatalog())
        EXPECT_TRUE(names.insert(p.name).second) << p.name;
}

TEST(AppCatalog, SeedsAreUnique)
{
    std::set<std::uint32_t> seeds;
    for (const AppProfile &p : appCatalog())
        EXPECT_TRUE(seeds.insert(p.seed).second) << p.name;
}

TEST(AppCatalog, FractionsAreValid)
{
    for (const AppProfile &p : appCatalog()) {
        EXPECT_GE(p.fracL1Reuse, 0.0) << p.name;
        EXPECT_GE(p.fracL2Reuse, 0.0) << p.name;
        EXPECT_GE(p.fracRandom, 0.0) << p.name;
        EXPECT_GE(p.fracStream(), -1e-12) << p.name;
        EXPECT_LE(p.fracL1Reuse + p.fracL2Reuse + p.fracRandom, 1.0)
            << p.name;
    }
}

TEST(AppCatalog, MemFractionSpansLowToHigh)
{
    double lo = 1.0, hi = 0.0;
    for (const AppProfile &p : appCatalog()) {
        lo = std::min(lo, p.memFraction());
        hi = std::max(hi, p.memFraction());
    }
    EXPECT_LT(lo, 0.1) << "catalog needs compute-bound apps";
    EXPECT_GT(hi, 0.3) << "catalog needs memory-bound apps";
}

TEST(AppCatalog, WellKnownArchetypesPresent)
{
    // Spot checks against the paper's application descriptions.
    EXPECT_GT(findApp("BFS").fracL1Reuse, 0.3)
        << "BFS is cache sensitive";
    EXPECT_DOUBLE_EQ(findApp("BLK").fracL1Reuse, 0.0)
        << "Blackscholes streams";
    EXPECT_DOUBLE_EQ(findApp("BLK").fracL2Reuse, 0.0);
    EXPECT_GT(findApp("GUPS").fracRandom, 0.5)
        << "GUPS is random access";
    EXPECT_GT(findApp("GUPS").randomLinesPerAccess, 1u)
        << "GUPS is uncoalesced";
    EXPECT_LT(findApp("LUD").memFraction(), 0.1)
        << "LUD is compute bound";
}

TEST(AppCatalog, FindAppReturnsMatchingProfile)
{
    const AppProfile &p = findApp("FFT");
    EXPECT_EQ(p.name, "FFT");
}

TEST(AppCatalog, HasAppAgreesWithFindApp)
{
    EXPECT_TRUE(hasApp("TRD"));
    EXPECT_FALSE(hasApp("NOPE"));
}

TEST(AppCatalogDeath, UnknownAppIsFatal)
{
    EXPECT_EBM_FATAL(findApp("NOPE"), "unknown application");
}

TEST(AppCatalog, EvaluatedSixteenAppsAllPresent)
{
    // The 16 apps spanned by the paper's 25 evaluated workloads.
    for (const char *name :
         {"DS", "TRD", "BFS", "FFT", "BLK", "FWT", "JPEG", "CFD",
          "LIB", "LUH", "SCP", "GUPS", "HISTO"}) {
        EXPECT_TRUE(hasApp(name)) << name;
    }
}

} // namespace
} // namespace ebm
