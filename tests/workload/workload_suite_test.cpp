#include "workload/workload_suite.hpp"

#include <set>

#include <gtest/gtest.h>

#include "../test_util.hpp"

#include "workload/app_catalog.hpp"

namespace ebm {
namespace {

TEST(WorkloadSuite, TenRepresentativeWorkloads)
{
    const auto &reps = representativeWorkloads();
    ASSERT_EQ(reps.size(), 10u);
    // Exact list from Figs. 4/9/10.
    const std::set<std::string> expected = {
        "DS_TRD",   "BFS_FFT",  "BLK_BFS",  "BLK_TRD",  "FFT_TRD",
        "FWT_TRD",  "JPEG_CFD", "JPEG_LIB", "JPEG_LUH", "SCP_TRD"};
    std::set<std::string> got;
    for (const Workload &wl : reps)
        got.insert(wl.name);
    EXPECT_EQ(got, expected);
}

TEST(WorkloadSuite, FullSuiteHasTwentyFivePairs)
{
    EXPECT_EQ(fullSuite().size(), 25u);
}

TEST(WorkloadSuite, FullSuiteContainsRepresentatives)
{
    std::set<std::string> full;
    for (const Workload &wl : fullSuite())
        full.insert(wl.name);
    for (const Workload &wl : representativeWorkloads())
        EXPECT_EQ(full.count(wl.name), 1u) << wl.name;
}

TEST(WorkloadSuite, FullSuiteNamesUnique)
{
    std::set<std::string> names;
    for (const Workload &wl : fullSuite())
        EXPECT_TRUE(names.insert(wl.name).second) << wl.name;
}

TEST(WorkloadSuite, AllPairsAreTwoApps)
{
    for (const Workload &wl : fullSuite())
        EXPECT_EQ(wl.appNames.size(), 2u) << wl.name;
}

TEST(WorkloadSuite, EveryAppResolvesAgainstCatalog)
{
    for (const Workload &wl : fullSuite()) {
        const auto apps = resolveApps(wl);
        ASSERT_EQ(apps.size(), 2u);
        EXPECT_EQ(apps[0].name, wl.appNames[0]);
        EXPECT_EQ(apps[1].name, wl.appNames[1]);
    }
}

TEST(WorkloadSuite, SpansSixteenApps)
{
    std::set<std::string> apps;
    for (const Workload &wl : fullSuite())
        apps.insert(wl.appNames.begin(), wl.appNames.end());
    EXPECT_EQ(apps.size(), 16u)
        << "paper: 25 workloads spanning 16 applications";
}

TEST(WorkloadSuite, ThreeAppMixesResolve)
{
    for (const Workload &wl : threeAppWorkloads()) {
        EXPECT_EQ(wl.appNames.size(), 3u);
        EXPECT_EQ(resolveApps(wl).size(), 3u);
    }
}

TEST(WorkloadSuite, MakePairBuildsName)
{
    const Workload wl = makePair("BFS", "FFT");
    EXPECT_EQ(wl.name, "BFS_FFT");
    ASSERT_EQ(wl.appNames.size(), 2u);
}

TEST(WorkloadSuiteDeath, EmptyWorkloadIsFatal)
{
    Workload wl;
    wl.name = "EMPTY";
    EXPECT_EBM_FATAL(resolveApps(wl), "no apps");
}

} // namespace
} // namespace ebm
