#include <set>

#include <gtest/gtest.h>

#include "../test_util.hpp"
#include "sim/gpu.hpp"
#include "workload/trace_gen.hpp"

namespace ebm {
namespace {

constexpr std::uint32_t kLine = 128;

AppProfile
storeApp(std::uint32_t stores = 2)
{
    AppProfile p = test::streamingApp("WSTREAM", 17);
    p.mlpBurst = 3;
    p.computeRun = 4;
    p.storesPerLoop = stores;
    return p;
}

TEST(StoreTraceGen, LoopIncludesTrailingStores)
{
    TraceGen gen(storeApp(2), kLine);
    EXPECT_EQ(gen.loopLength(), 3u + 1 + 4 + 2);
    // Positions: 0..2 loads, 3 wait, 4..7 computes, 8..9 stores.
    for (std::uint64_t i = 0; i < 3; ++i)
        EXPECT_TRUE(gen.instrAt(i).isLoad);
    EXPECT_TRUE(gen.instrAt(3).waitsForMem);
    for (std::uint64_t i = 4; i < 8; ++i) {
        EXPECT_FALSE(gen.instrAt(i).isLoad) << i;
        EXPECT_FALSE(gen.instrAt(i).isStore) << i;
    }
    EXPECT_TRUE(gen.instrAt(8).isStore);
    EXPECT_TRUE(gen.instrAt(9).isStore);
    EXPECT_TRUE(gen.instrAt(10).isLoad) << "loop repeats";
}

TEST(StoreTraceGen, MemFractionCountsStores)
{
    const AppProfile p = storeApp(2);
    EXPECT_NEAR(p.memFraction(), 5.0 / 10.0, 1e-12);
}

TEST(StoreTraceGen, StoreAddressesAdvancePerIteration)
{
    TraceGen gen(storeApp(1), kLine);
    const std::uint64_t store_idx = 8; // First loop's store.
    const std::uint64_t next_iter = store_idx + gen.loopLength();
    const Addr a = gen.lineAddr(3, store_idx, 0, 0);
    const Addr b = gen.lineAddr(3, next_iter, 0, 0);
    EXPECT_EQ(b - a, kLine) << "output stream is sequential";
}

TEST(StoreTraceGen, StoreRegionsDisjointFromLoadStreams)
{
    TraceGen gen(storeApp(1), kLine);
    std::set<Addr> loads, stores;
    for (std::uint64_t i = 0; i < 200; ++i) {
        const InstrDesc d = gen.instrAt(i);
        if (d.isLoad)
            loads.insert(gen.lineAddr(1, i, 0, i));
        if (d.isStore)
            stores.insert(gen.lineAddr(1, i, 0, i));
    }
    for (Addr a : stores)
        EXPECT_EQ(loads.count(a), 0u);
}

TEST(StoreSim, StoresConsumeDramBandwidth)
{
    GpuConfig cfg = test::tinyConfig(1);
    cfg.numCores = 2;

    AppProfile without = storeApp(0);
    AppProfile with = storeApp(2);

    Gpu g1(cfg, {without});
    g1.run(6000);
    Gpu g2(cfg, {with});
    g2.run(6000);

    EXPECT_GT(g2.appDataCycles(0), g1.appDataCycles(0))
        << "store traffic reaches the DRAM data bus";
}

TEST(StoreSim, StoresDoNotTouchCaches)
{
    // Stores bypass both cache levels, so adding stores to a loop
    // must not increase per-instruction L2 accesses, even though it
    // adds DRAM traffic.
    GpuConfig cfg = test::tinyConfig(1);
    cfg.numCores = 2;

    auto l2_per_instr = [&cfg](const AppProfile &app,
                               std::uint64_t *data_cycles) {
        Gpu gpu(cfg, {app});
        gpu.run(8000);
        std::uint64_t l2 = 0;
        for (PartitionId p = 0; p < gpu.numPartitions(); ++p)
            l2 += gpu.partition(p).l2().stats().accesses(0);
        *data_cycles = gpu.appDataCycles(0);
        return static_cast<double>(l2) /
               static_cast<double>(gpu.appInstrs(0));
    };

    std::uint64_t data_with = 0, data_without = 0;
    const double with_stores = l2_per_instr(storeApp(2), &data_with);
    const double without = l2_per_instr(storeApp(0), &data_without);

    EXPECT_LE(with_stores, without * 1.25 + 0.01)
        << "stores must not add L2 traffic";
    EXPECT_GT(data_with, data_without)
        << "...but they do move extra DRAM data";
}

TEST(StoreSim, StoresDoNotBlockWarps)
{
    // A store-only tail must not reduce instruction throughput the
    // way a dependent load would: IPC with stores ~ IPC with the
    // same loop shape where stores are replaced by computes.
    GpuConfig cfg = test::tinyConfig(1);
    cfg.numCores = 2;

    AppProfile with = storeApp(2);
    AppProfile as_compute = storeApp(0);
    as_compute.computeRun += 2; // Same loop length.

    Gpu g1(cfg, {with});
    g1.run(8000);
    Gpu g2(cfg, {as_compute});
    g2.run(8000);

    EXPECT_GT(g1.appIpc(0), 0.6 * g2.appIpc(0));
}

} // namespace
} // namespace ebm
