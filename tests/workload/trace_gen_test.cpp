#include "workload/trace_gen.hpp"

#include <map>
#include <set>

#include <gtest/gtest.h>

#include "../test_util.hpp"

namespace ebm {
namespace {

constexpr std::uint32_t kLine = 128;

TEST(TraceGen, LoopStructureMatchesProfile)
{
    AppProfile p = test::streamingApp();
    p.mlpBurst = 3;
    p.computeRun = 5;
    TraceGen gen(p, kLine);
    EXPECT_EQ(gen.loopLength(), 9u);

    // First mlpBurst instructions are loads.
    for (std::uint64_t i = 0; i < 3; ++i)
        EXPECT_TRUE(gen.instrAt(i).isLoad) << "idx " << i;
    // Then the dependent consumer.
    EXPECT_FALSE(gen.instrAt(3).isLoad);
    EXPECT_TRUE(gen.instrAt(3).waitsForMem);
    // Then pure computes.
    for (std::uint64_t i = 4; i < 9; ++i) {
        EXPECT_FALSE(gen.instrAt(i).isLoad);
        EXPECT_FALSE(gen.instrAt(i).waitsForMem);
    }
    // And the loop repeats.
    EXPECT_TRUE(gen.instrAt(9).isLoad);
}

TEST(TraceGen, MemFractionMatchesMix)
{
    AppProfile p = test::streamingApp();
    p.mlpBurst = 4;
    p.computeRun = 6;
    EXPECT_NEAR(p.memFraction(), 4.0 / 11.0, 1e-12);

    TraceGen gen(p, kLine);
    std::uint32_t loads = 0;
    const std::uint32_t n = 11 * 100;
    for (std::uint64_t i = 0; i < n; ++i)
        loads += gen.instrAt(i).isLoad ? 1 : 0;
    EXPECT_NEAR(static_cast<double>(loads) / n, p.memFraction(), 1e-9);
}

TEST(TraceGen, AddressesAreDeterministic)
{
    TraceGen gen(test::cacheApp(), kLine);
    for (std::uint64_t i = 0; i < 50; ++i) {
        if (!gen.instrAt(i).isLoad)
            continue;
        EXPECT_EQ(gen.lineAddr(3, i, 0, 7), gen.lineAddr(3, i, 0, 7));
    }
}

TEST(TraceGen, AddressesAreLineAligned)
{
    TraceGen gen(test::cacheApp(), kLine);
    for (std::uint64_t i = 0; i < 200; ++i) {
        if (!gen.instrAt(i).isLoad)
            continue;
        EXPECT_EQ(gen.lineAddr(1, i, 0, i) % kLine, 0u);
    }
}

TEST(TraceGen, CategoryFractionsApproximatelyRespected)
{
    AppProfile p;
    p.name = "MIX";
    p.seed = 21;
    p.mlpBurst = 1;
    p.computeRun = 0;
    p.fracL1Reuse = 0.25;
    p.fracL2Reuse = 0.25;
    p.fracRandom = 0.25; // Remainder 0.25 stream.
    TraceGen gen(p, kLine);

    std::map<AccessCategory, int> hist;
    const int n = 20'000;
    for (std::uint64_t i = 0; i < static_cast<std::uint64_t>(n); ++i) {
        const InstrDesc d = gen.instrAt(i * 2); // Loads at even idx.
        if (d.isLoad)
            ++hist[d.category];
    }
    int total = 0;
    for (const auto &[cat, count] : hist)
        total += count;
    for (const auto &[cat, count] : hist)
        EXPECT_NEAR(static_cast<double>(count) / total, 0.25, 0.03);
}

TEST(TraceGen, L1ReuseStaysInWorkingSet)
{
    AppProfile p = test::cacheApp();
    p.fracL1Reuse = 1.0;
    p.fracL2Reuse = 0.0;
    p.l1ReuseLines = 12;
    TraceGen gen(p, kLine);
    std::set<Addr> lines;
    for (std::uint64_t i = 0; i < 2000; ++i) {
        if (gen.instrAt(i).isLoad)
            lines.insert(gen.lineAddr(5, i, 0, 0));
    }
    EXPECT_LE(lines.size(), 12u);
    EXPECT_GE(lines.size(), 10u) << "most of the set gets touched";
}

TEST(TraceGen, PrivateRegionsDisjointAcrossWarps)
{
    AppProfile p = test::cacheApp();
    p.fracL1Reuse = 1.0;
    p.fracL2Reuse = 0.0;
    TraceGen gen(p, kLine);
    std::set<Addr> w0, w1;
    for (std::uint64_t i = 0; i < 500; ++i) {
        if (!gen.instrAt(i).isLoad)
            continue;
        w0.insert(gen.lineAddr(0, i, 0, 0));
        w1.insert(gen.lineAddr(1, i, 0, 0));
    }
    for (Addr a : w0)
        EXPECT_EQ(w1.count(a), 0u);
}

TEST(TraceGen, SharedRegionOverlapsAcrossWarps)
{
    AppProfile p = test::cacheApp();
    p.fracL1Reuse = 0.0;
    p.fracL2Reuse = 1.0;
    p.l2ReuseLines = 64;
    TraceGen gen(p, kLine);
    std::set<Addr> w0, w1;
    for (std::uint64_t i = 0; i < 2000; ++i) {
        if (!gen.instrAt(i).isLoad)
            continue;
        w0.insert(gen.lineAddr(0, i, 0, 0));
        w1.insert(gen.lineAddr(1, i, 0, 0));
    }
    std::uint32_t overlap = 0;
    for (Addr a : w0)
        overlap += w1.count(a);
    EXPECT_GT(overlap, w0.size() / 2)
        << "shared structures are shared across warps";
}

TEST(TraceGen, StreamAdvancesWithStreamPos)
{
    AppProfile p = test::streamingApp();
    TraceGen gen(p, kLine);
    // Stream addresses differ for consecutive stream positions and
    // advance by exactly one line.
    const Addr a0 = gen.lineAddr(2, 0, 0, 100);
    const Addr a1 = gen.lineAddr(2, 0, 0, 101);
    EXPECT_EQ(a1 - a0, kLine);
}

TEST(TraceGen, StreamWrapsAtRegionEnd)
{
    AppProfile p = test::streamingApp();
    p.streamRegionLines = 16;
    TraceGen gen(p, kLine);
    EXPECT_EQ(gen.lineAddr(2, 0, 0, 0), gen.lineAddr(2, 0, 0, 16));
}

TEST(TraceGen, RandomLoadsTouchConfiguredLineCount)
{
    AppProfile p;
    p.name = "RND";
    p.seed = 31;
    p.mlpBurst = 2;
    p.computeRun = 2;
    p.fracRandom = 1.0;
    p.randomLinesPerAccess = 4;
    TraceGen gen(p, kLine);
    const InstrDesc d = gen.instrAt(0);
    ASSERT_TRUE(d.isLoad);
    EXPECT_EQ(d.numLines, 4u);
    // The lines of one access are distinct.
    std::set<Addr> lines;
    for (std::uint32_t l = 0; l < 4; ++l)
        lines.insert(gen.lineAddr(0, 0, l, 0));
    EXPECT_EQ(lines.size(), 4u);
}

TEST(TraceGen, AppBasesDisjoint)
{
    EXPECT_NE(appAddressBase(0), appAddressBase(1));
    EXPECT_GT(appAddressBase(1) - appAddressBase(0), 1ull << 39);
}

TEST(TraceGenDeath, ZeroMlpBurstIsFatal)
{
    AppProfile p = test::streamingApp();
    p.mlpBurst = 0;
    EXPECT_EBM_FATAL({ TraceGen gen(p, kLine); }, "mlpBurst");
}

TEST(TraceGenDeath, OverfullFractionsAreFatal)
{
    AppProfile p = test::streamingApp();
    p.fracL1Reuse = 0.7;
    p.fracL2Reuse = 0.7;
    EXPECT_EBM_FATAL({ TraceGen gen(p, kLine); }, "fractions");
}

} // namespace
} // namespace ebm
