#include "interconnect/crossbar.hpp"

#include <gtest/gtest.h>

#include "../test_util.hpp"

namespace ebm {
namespace {

TEST(CrossbarNetwork, DeliversAfterLatency)
{
    CrossbarNetwork<int> net(2, 2, 4, /*latency=*/3);
    net.inject(0, 1, 42);
    net.tick(10);
    int flit = 0;
    EXPECT_FALSE(net.tryEject(1, 12, flit)) << "latency not elapsed";
    EXPECT_TRUE(net.tryEject(1, 13, flit));
    EXPECT_EQ(flit, 42);
}

TEST(CrossbarNetwork, NothingAtWrongOutput)
{
    CrossbarNetwork<int> net(2, 2, 4, 1);
    net.inject(0, 1, 7);
    net.tick(0);
    int flit = 0;
    EXPECT_FALSE(net.tryEject(0, 100, flit));
    EXPECT_TRUE(net.tryEject(1, 100, flit));
}

TEST(CrossbarNetwork, OneGrantPerOutputPerCycle)
{
    CrossbarNetwork<int> net(4, 1, 4, 0);
    for (std::uint32_t in = 0; in < 4; ++in)
        net.inject(in, 0, static_cast<int>(in));
    net.tick(0);
    int flit = -1;
    int count = 0;
    while (net.tryEject(0, 1, flit))
        ++count;
    EXPECT_EQ(count, 1) << "the allocator grants one input per cycle";
}

TEST(CrossbarNetwork, RoundRobinFairnessAcrossInputs)
{
    CrossbarNetwork<int> net(3, 1, 8, 0);
    // Keep all three inputs backlogged; outputs should rotate.
    std::vector<int> order;
    for (Cycle t = 0; t < 9; ++t) {
        for (std::uint32_t in = 0; in < 3; ++in) {
            if (net.canAccept(in, 0))
                net.inject(in, 0, static_cast<int>(in));
        }
        net.tick(t);
        int flit;
        while (net.tryEject(0, t + 1, flit))
            order.push_back(flit);
    }
    ASSERT_GE(order.size(), 6u);
    int counts[3] = {};
    for (int v : order)
        ++counts[v];
    // No input is starved or dominant.
    for (int c : counts) {
        EXPECT_GE(c, static_cast<int>(order.size()) / 3 - 1);
        EXPECT_LE(c, static_cast<int>(order.size()) / 3 + 1);
    }
}

TEST(CrossbarNetwork, BackpressurePerVoq)
{
    CrossbarNetwork<int> net(1, 2, 2, 1);
    EXPECT_TRUE(net.canAccept(0, 0));
    net.inject(0, 0, 1);
    net.inject(0, 0, 2);
    EXPECT_FALSE(net.canAccept(0, 0)) << "VOQ(0,0) full";
    EXPECT_TRUE(net.canAccept(0, 1)) << "other VOQ unaffected";
}

TEST(CrossbarNetwork, OccupancyTracksFlits)
{
    CrossbarNetwork<int> net(2, 2, 4, 1);
    EXPECT_EQ(net.occupancy(), 0u);
    net.inject(0, 0, 1);
    net.inject(1, 1, 2);
    EXPECT_EQ(net.occupancy(), 2u);
    net.tick(0);
    EXPECT_EQ(net.occupancy(), 2u) << "flits moved to output queues";
    int flit;
    net.tryEject(0, 10, flit);
    net.tryEject(1, 10, flit);
    EXPECT_EQ(net.occupancy(), 0u);
}

TEST(CrossbarNetwork, ClearDropsEverything)
{
    CrossbarNetwork<int> net(2, 2, 4, 1);
    net.inject(0, 0, 1);
    net.tick(0);
    net.inject(0, 1, 2);
    net.clear();
    EXPECT_EQ(net.occupancy(), 0u);
}

TEST(CrossbarNetwork, FifoWithinOneFlow)
{
    CrossbarNetwork<int> net(1, 1, 8, 2);
    for (int i = 0; i < 5; ++i)
        net.inject(0, 0, i);
    std::vector<int> out;
    for (Cycle t = 0; t < 10; ++t) {
        net.tick(t);
        int flit;
        while (net.tryEject(0, t, flit))
            out.push_back(flit);
    }
    ASSERT_EQ(out.size(), 5u);
    for (int i = 0; i < 5; ++i)
        EXPECT_EQ(out[i], i);
}

TEST(Crossbar, RequestAndResponseNetsIndependent)
{
    GpuConfig cfg = test::tinyConfig();
    Crossbar xbar(cfg);

    MemRequest req;
    req.lineAddr = 0x100;
    req.core = 1;
    ASSERT_TRUE(xbar.requestNet().canAccept(1, 0));
    xbar.requestNet().inject(1, 0, req);

    MemResponse resp;
    resp.lineAddr = 0x200;
    ASSERT_TRUE(xbar.responseNet().canAccept(0, 2));
    xbar.responseNet().inject(0, 2, resp);

    for (Cycle t = 0; t < 2 * cfg.icntRequestLatency + 2; ++t)
        xbar.tick(t);

    MemRequest out_req;
    EXPECT_TRUE(xbar.requestNet().tryEject(0, 100, out_req));
    EXPECT_EQ(out_req.lineAddr, 0x100u);
    MemResponse out_resp;
    EXPECT_TRUE(xbar.responseNet().tryEject(2, 100, out_resp));
    EXPECT_EQ(out_resp.lineAddr, 0x200u);
}

} // namespace
} // namespace ebm
