#include <gtest/gtest.h>

#include "../test_util.hpp"
#include "mem/tag_array.hpp"
#include "sim/gpu.hpp"

namespace ebm {
namespace {

CacheGeometry
geom(std::uint32_t sets = 2, std::uint32_t assoc = 4)
{
    CacheGeometry g;
    g.lineBytes = 128;
    g.assoc = assoc;
    g.sizeBytes = sets * assoc * g.lineBytes;
    return g;
}

Addr
lineIn(const CacheGeometry &g, std::uint32_t set, std::uint32_t tag)
{
    return (static_cast<Addr>(tag) * g.numSets() + set) * g.lineBytes;
}

TEST(WayPartition, AllocationConfinedToOwnWays)
{
    const auto g = geom(1, 4);
    TagArray tags(g);
    tags.setWayPartition(0, 0, 2);
    tags.setWayPartition(1, 2, 2);

    // App 0 fills far more lines than its 2 ways can hold.
    for (std::uint32_t t = 1; t <= 6; ++t)
        tags.access(lineIn(g, 0, t), 0, true);
    EXPECT_LE(tags.linesOwnedBy(0), 2u);

    // App 1's ways were untouched, so its fills evict nothing of
    // app 0's residue.
    tags.access(lineIn(g, 0, 100), 1, true);
    tags.access(lineIn(g, 0, 101), 1, true);
    EXPECT_EQ(tags.linesOwnedBy(1), 2u);
    EXPECT_LE(tags.linesOwnedBy(0) + tags.linesOwnedBy(1), 4u);
}

TEST(WayPartition, HitsAllowedInForeignWays)
{
    const auto g = geom(1, 4);
    TagArray tags(g);
    // App 0 installs a line with no partition in force.
    tags.access(lineIn(g, 0, 1), 0, true);
    // Partition now excludes the way that line sits in — lookups must
    // still hit (partition changes must not lose resident data).
    tags.setWayPartition(0, 2, 2);
    EXPECT_TRUE(tags.access(lineIn(g, 0, 1), 0, true).hit);
}

TEST(WayPartition, ClearRestoresFullAssociativity)
{
    const auto g = geom(1, 4);
    TagArray tags(g);
    tags.setWayPartition(0, 0, 1);
    tags.clearWayPartition(0);
    for (std::uint32_t t = 1; t <= 4; ++t)
        tags.access(lineIn(g, 0, t), 0, true);
    EXPECT_EQ(tags.linesOwnedBy(0), 4u);
}

TEST(WayPartition, UnpartitionedAppUsesAllWays)
{
    const auto g = geom(1, 4);
    TagArray tags(g);
    tags.setWayPartition(1, 0, 2); // Only app 1 is restricted.
    for (std::uint32_t t = 1; t <= 4; ++t)
        tags.access(lineIn(g, 0, t), 0, true);
    EXPECT_EQ(tags.linesOwnedBy(0), 4u);
}

TEST(WayPartitionDeath, OutOfRangeIsFatal)
{
    TagArray tags(geom(1, 4));
    EXPECT_EBM_FATAL(tags.setWayPartition(0, 2, 3), "out of range");
    EXPECT_EBM_FATAL(tags.setWayPartition(0, 0, 0), "out of range");
}

TEST(WayPartition, GpuLevelPartitionIsolatesL2Capacity)
{
    // Giving the cache-sensitive app a protected L2 share must not
    // hurt (and usually helps) its L2 miss rate under a streaming
    // co-runner.
    GpuConfig cfg = test::tinyConfig(2);
    std::vector<AppProfile> apps = {test::streamingApp(),
                                    test::cacheApp()};

    Gpu shared(cfg, apps);
    shared.run(8000);

    Gpu split(cfg, apps);
    const std::uint32_t half = cfg.l2Slice.assoc / 2;
    split.setAppL2WayPartition(0, 0, half);
    split.setAppL2WayPartition(1, half, cfg.l2Slice.assoc - half);
    split.run(8000);

    EXPECT_LE(split.appL2MissRate(1), shared.appL2MissRate(1) + 0.03);
}

} // namespace
} // namespace ebm
