#include "mem/address_map.hpp"

#include <set>

#include "common/rng.hpp"

#include <gtest/gtest.h>

#include "../test_util.hpp"

namespace ebm {
namespace {

class AddressMapTest : public ::testing::Test
{
  protected:
    GpuConfig cfg_ = test::tinyConfig();
    AddressMap amap_{cfg_};
};

TEST_F(AddressMapTest, LineAlignMasksLowBits)
{
    EXPECT_EQ(amap_.lineAlign(0), 0u);
    EXPECT_EQ(amap_.lineAlign(127), 0u);
    EXPECT_EQ(amap_.lineAlign(128), 128u);
    EXPECT_EQ(amap_.lineAlign(300), 256u);
}

TEST_F(AddressMapTest, PartitionInterleavesPerChunk)
{
    // The address space is interleaved among partitions in
    // interleaveBytes chunks — all lines of a chunk land on the same
    // partition, the next chunk on the next partition.
    const Addr chunk = cfg_.interleaveBytes;
    EXPECT_EQ(amap_.partitionOf(0), amap_.partitionOf(chunk - 128));
    EXPECT_NE(amap_.partitionOf(0), amap_.partitionOf(chunk));
}

TEST_F(AddressMapTest, PartitionRotationIsRoundRobin)
{
    const auto n = cfg_.numPartitions;
    for (Addr chunk = 0; chunk < 4 * n; ++chunk) {
        EXPECT_EQ(amap_.partitionOf(chunk * cfg_.interleaveBytes),
                  static_cast<PartitionId>(chunk % n));
    }
}

TEST_F(AddressMapTest, AllPartitionsReachable)
{
    std::set<PartitionId> seen;
    for (Addr a = 0; a < 64 * cfg_.interleaveBytes;
         a += cfg_.interleaveBytes)
        seen.insert(amap_.partitionOf(a));
    EXPECT_EQ(seen.size(), cfg_.numPartitions);
}

TEST_F(AddressMapTest, DecodeIsDeterministic)
{
    const DramCoord a = amap_.decode(0x12340080);
    const DramCoord b = amap_.decode(0x12340080);
    EXPECT_EQ(a.partition, b.partition);
    EXPECT_EQ(a.bank, b.bank);
    EXPECT_EQ(a.row, b.row);
    EXPECT_EQ(a.col, b.col);
}

TEST_F(AddressMapTest, DecodePartitionMatchesPartitionOf)
{
    for (Addr a = 0; a < 1 << 16; a += 128)
        EXPECT_EQ(amap_.decode(a).partition, amap_.partitionOf(a));
}

TEST_F(AddressMapTest, BanksWithinRange)
{
    for (Addr a = 0; a < 1 << 18; a += 128)
        EXPECT_LT(amap_.decode(a).bank, cfg_.banksPerChannel);
}

TEST_F(AddressMapTest, ColumnsWithinRow)
{
    const auto lines_per_row = cfg_.rowBytes / cfg_.l2Slice.lineBytes;
    for (Addr a = 0; a < 1 << 18; a += 128)
        EXPECT_LT(amap_.decode(a).col, lines_per_row);
}

TEST_F(AddressMapTest, SequentialChannelLocalLinesShareRows)
{
    // Lines that are channel-local-consecutive should mostly share a
    // row (this is what gives streams their row-buffer locality).
    std::uint32_t same_row = 0, total = 0;
    DramCoord prev = amap_.decode(0);
    const auto n = cfg_.numPartitions;
    // Walk chunk addresses on partition 0 only.
    for (Addr chunk = n; chunk < 512 * n; chunk += n) {
        const DramCoord cur = amap_.decode(chunk * cfg_.interleaveBytes);
        ASSERT_EQ(cur.partition, 0u);
        if (cur.bank == prev.bank && cur.row == prev.row)
            ++same_row;
        ++total;
        prev = cur;
    }
    EXPECT_GT(static_cast<double>(same_row) / total, 0.5);
}

TEST_F(AddressMapTest, BanksRoughlyBalancedForRandomAddresses)
{
    std::vector<std::uint32_t> hist(cfg_.banksPerChannel, 0);
    std::uint32_t total = 0;
    for (std::uint64_t i = 0; i < 20'000; ++i) {
        const Addr a = amap_.lineAlign(mix64(i) % (1ull << 32));
        const DramCoord c = amap_.decode(a);
        if (c.partition == 0) {
            ++hist[c.bank];
            ++total;
        }
    }
    for (std::uint32_t count : hist) {
        EXPECT_GT(count, total / cfg_.banksPerChannel / 2);
        EXPECT_LT(count, total * 2 / cfg_.banksPerChannel);
    }
}

TEST(AddressMapStd, StandardConfigCoversSixPartitions)
{
    GpuConfig cfg;
    AddressMap amap(cfg);
    std::set<PartitionId> seen;
    for (Addr a = 0; a < 6 * cfg.interleaveBytes;
         a += cfg.interleaveBytes)
        seen.insert(amap.partitionOf(a));
    EXPECT_EQ(seen.size(), 6u);
}

} // namespace
} // namespace ebm
