#include "mem/cache.hpp"

#include <gtest/gtest.h>

namespace ebm {
namespace {

CacheGeometry
smallGeom()
{
    CacheGeometry g;
    g.sizeBytes = 4 * 2 * 128; // 4 sets, 2 ways.
    g.assoc = 2;
    g.lineBytes = 128;
    g.mshrEntries = 4;
    g.mshrTargetsPerEntry = 2;
    return g;
}

MemRequest
req(Addr line, AppId app = 0, WarpId warp = 0)
{
    MemRequest r;
    r.lineAddr = line;
    r.app = app;
    r.warp = warp;
    return r;
}

class CacheTest : public ::testing::Test
{
  protected:
    Cache cache_{smallGeom(), /*num_apps=*/2};
};

TEST_F(CacheTest, ColdMissThenFillThenHit)
{
    EXPECT_EQ(cache_.access(req(0x100)), CacheOutcome::MissNew);
    cache_.fill(0x100, 0, false);
    EXPECT_EQ(cache_.access(req(0x100)), CacheOutcome::Hit);
}

TEST_F(CacheTest, SecondaryMissMergesWhileInFlight)
{
    EXPECT_EQ(cache_.access(req(0x100, 0, 1)), CacheOutcome::MissNew);
    EXPECT_EQ(cache_.access(req(0x100, 0, 2)), CacheOutcome::MissMerged);
    const auto fill = cache_.fill(0x100, 0, false);
    ASSERT_EQ(fill.waiters.size(), 2u);
    EXPECT_EQ(fill.waiters[0].warp, 1u);
    EXPECT_EQ(fill.waiters[1].warp, 2u);
}

TEST_F(CacheTest, StallOnMshrExhaustionIsNotCounted)
{
    // Fill all 4 MSHR entries.
    for (Addr a = 0; a < 4; ++a)
        EXPECT_EQ(cache_.access(req(0x1000 + a * 128)),
                  CacheOutcome::MissNew);
    const auto accesses_before = cache_.stats().accesses(0);
    EXPECT_EQ(cache_.access(req(0x9000)), CacheOutcome::Stall);
    EXPECT_EQ(cache_.stats().accesses(0), accesses_before)
        << "stalled (retried) requests must not be double counted";
}

TEST_F(CacheTest, MissRatePerApp)
{
    cache_.access(req(0x100, 0));
    cache_.fill(0x100, 0, false);
    cache_.access(req(0x100, 0)); // Hit.
    cache_.access(req(0x900, 1)); // Miss for app 1.
    EXPECT_DOUBLE_EQ(cache_.stats().missRate(0), 0.5);
    EXPECT_DOUBLE_EQ(cache_.stats().missRate(1), 1.0);
}

TEST_F(CacheTest, BypassNeverHitsAndNeverAllocates)
{
    // Even a line that is resident is "missed" by a bypassed access.
    cache_.access(req(0x100));
    cache_.fill(0x100, 0, false);
    EXPECT_EQ(cache_.access(req(0x200), /*bypass=*/true),
              CacheOutcome::MissNew);
    cache_.fill(0x200, 0, /*bypass=*/true);
    EXPECT_EQ(cache_.access(req(0x200)), CacheOutcome::MissNew)
        << "bypass fill must not install the line";
}

TEST_F(CacheTest, BypassCountsAsMissInStats)
{
    cache_.access(req(0x100, 1), true);
    EXPECT_EQ(cache_.stats().accesses(1), 1u);
    EXPECT_EQ(cache_.stats().misses(1), 1u);
}

TEST_F(CacheTest, InFlightLineTrackedUntilFill)
{
    cache_.access(req(0x300));
    EXPECT_TRUE(cache_.missInFlight(0x300));
    cache_.fill(0x300, 0, false);
    EXPECT_FALSE(cache_.missInFlight(0x300));
}

TEST_F(CacheTest, WindowMissRateResetsAtCheckpoint)
{
    cache_.access(req(0x100)); // Miss.
    cache_.fill(0x100, 0, false);
    cache_.stats().checkpoint();
    cache_.access(req(0x100)); // Hit only in this window.
    EXPECT_DOUBLE_EQ(cache_.stats().windowMissRate(0), 0.0);
    EXPECT_DOUBLE_EQ(cache_.stats().missRate(0), 0.5);
}

TEST_F(CacheTest, ResetClearsTagsAndStats)
{
    cache_.access(req(0x100));
    cache_.fill(0x100, 0, false);
    cache_.reset();
    EXPECT_EQ(cache_.stats().accesses(0), 0u);
    EXPECT_EQ(cache_.access(req(0x100)), CacheOutcome::MissNew);
}

TEST_F(CacheTest, EvictionAllowsNewLine)
{
    // Fill both ways of set 0 (4 sets -> stride 4*128).
    const Addr s0a = 0 * 128 + 0 * 512;
    const Addr s0b = 0 * 128 + 1 * 512;
    const Addr s0c = 0 * 128 + 2 * 512;
    cache_.access(req(s0a));
    cache_.fill(s0a, 0, false);
    cache_.access(req(s0b));
    cache_.fill(s0b, 0, false);
    cache_.access(req(s0c));
    cache_.fill(s0c, 0, false);
    EXPECT_EQ(cache_.access(req(s0a)), CacheOutcome::MissNew)
        << "LRU line evicted by the third fill";
}

TEST_F(CacheTest, StallLeavesNoEntryBehind)
{
    // Exhaust the 2 targets of one entry; the stalled third requester
    // must not appear among the waiters.
    cache_.access(req(0x100, 0, 1));
    cache_.access(req(0x100, 0, 2));
    EXPECT_EQ(cache_.access(req(0x100, 0, 3)), CacheOutcome::Stall);
    const auto fill = cache_.fill(0x100, 0, false);
    EXPECT_EQ(fill.waiters.size(), 2u);
}

} // namespace
} // namespace ebm
