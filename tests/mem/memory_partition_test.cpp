#include "mem/memory_partition.hpp"

#include <gtest/gtest.h>

#include "../test_util.hpp"

namespace ebm {
namespace {

class MemoryPartitionTest : public ::testing::Test
{
  protected:
    MemoryPartitionTest()
        : cfg_(test::tinyConfig(2)), amap_(cfg_),
          part_(cfg_, amap_, /*num_apps=*/2)
    {
    }

    MemRequest
    req(Addr line, AppId app = 0, bool bypass_l2 = false)
    {
        MemRequest r;
        r.lineAddr = line;
        r.app = app;
        r.bypassL2 = bypass_l2;
        return r;
    }

    /** Tick the partition until @p n responses arrive. */
    std::vector<MemResponse>
    drain(std::size_t n, Cycle limit = 20'000)
    {
        std::vector<MemResponse> all;
        for (; now_ < limit && all.size() < n; ++now_)
            part_.tick(now_, all);
        return all;
    }

    GpuConfig cfg_;
    AddressMap amap_;
    MemoryPartition part_;
    Cycle now_ = 1;
};

TEST_F(MemoryPartitionTest, MissGoesToDramAndReturns)
{
    part_.deliver(req(0x100));
    const auto resp = drain(1);
    ASSERT_EQ(resp.size(), 1u);
    EXPECT_EQ(resp[0].lineAddr, 0x100u);
    EXPECT_EQ(part_.l2().stats().misses(0), 1u);
    EXPECT_GT(part_.dataCycles(0), 0u);
}

TEST_F(MemoryPartitionTest, L2HitIsFasterAndUsesNoDram)
{
    part_.deliver(req(0x100));
    drain(1);
    const auto dram_before = part_.dataCycles(0);
    const Cycle t0 = now_;
    part_.deliver(req(0x100));
    drain(1);
    const Cycle hit_latency = now_ - t0;
    EXPECT_EQ(part_.dataCycles(0), dram_before)
        << "an L2 hit transfers no DRAM data";
    EXPECT_LE(hit_latency, cfg_.l2HitLatency + 8);
    EXPECT_EQ(part_.l2().stats().misses(0), 1u);
    EXPECT_EQ(part_.l2().stats().accesses(0), 2u);
}

TEST_F(MemoryPartitionTest, MergedMissesReturnTogether)
{
    part_.deliver(req(0x100, 0));
    part_.deliver(req(0x100, 0));
    const auto resp = drain(2);
    EXPECT_EQ(resp.size(), 2u);
    EXPECT_EQ(part_.dram().requestsServiced(), 1u)
        << "merged secondary miss produced no extra DRAM traffic";
}

TEST_F(MemoryPartitionTest, BypassL2NeverCaches)
{
    part_.deliver(req(0x100, 0, /*bypass_l2=*/true));
    drain(1);
    part_.deliver(req(0x100, 0, /*bypass_l2=*/true));
    drain(2);
    EXPECT_EQ(part_.dram().requestsServiced(), 2u)
        << "both bypassed accesses reached DRAM";
    EXPECT_EQ(part_.l2().stats().misses(0), 2u);
}

TEST_F(MemoryPartitionTest, PerAppAttribution)
{
    part_.deliver(req(0x100, 0));
    part_.deliver(req(0x900, 1));
    drain(2);
    EXPECT_EQ(part_.l2().stats().accesses(0), 1u);
    EXPECT_EQ(part_.l2().stats().accesses(1), 1u);
    EXPECT_GT(part_.dataCycles(0), 0u);
    EXPECT_GT(part_.dataCycles(1), 0u);
}

TEST_F(MemoryPartitionTest, DramClockRunsSlowerThanCore)
{
    drain(1, 1000); // Just tick 1000 core cycles.
    const double ratio = static_cast<double>(part_.dramCyclesElapsed()) /
                         1000.0;
    EXPECT_NEAR(ratio, cfg_.dramClockRatio, 0.01);
}

TEST_F(MemoryPartitionTest, CheckpointResetsWindowCounters)
{
    part_.deliver(req(0x100));
    drain(1);
    part_.checkpoint();
    EXPECT_EQ(part_.windowDataCycles(0), 0u);
    EXPECT_GT(part_.dataCycles(0), 0u);
}

TEST_F(MemoryPartitionTest, ResetClearsState)
{
    part_.deliver(req(0x100));
    drain(1);
    part_.reset();
    EXPECT_EQ(part_.dataCycles(0), 0u);
    EXPECT_EQ(part_.l2().stats().accesses(0), 0u);
    EXPECT_EQ(part_.dramCyclesElapsed(), 0u);
}

TEST_F(MemoryPartitionTest, BackpressureReportedWhenInputFull)
{
    // Saturate the input queue without ticking.
    std::uint32_t accepted = 0;
    while (part_.canAccept()) {
        part_.deliver(req(0x1000 + accepted * 128ull));
        ++accepted;
        ASSERT_LT(accepted, 10'000u);
    }
    EXPECT_GT(accepted, 0u);
    EXPECT_FALSE(part_.canAccept());
    // Draining restores acceptance.
    drain(1);
    EXPECT_TRUE(part_.canAccept());
}

} // namespace
} // namespace ebm
