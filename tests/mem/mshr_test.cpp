#include "mem/mshr.hpp"

#include <gtest/gtest.h>

#include "../test_util.hpp"

namespace ebm {
namespace {

MemRequest
req(Addr line, WarpId warp = 0, AppId app = 0)
{
    MemRequest r;
    r.lineAddr = line;
    r.warp = warp;
    r.app = app;
    return r;
}

TEST(MshrFile, FirstMissCreatesEntry)
{
    MshrFile mshrs(4, 2);
    EXPECT_EQ(mshrs.registerMiss(req(0x100)), MshrOutcome::NewEntry);
    EXPECT_TRUE(mshrs.inFlight(0x100));
    EXPECT_EQ(mshrs.entriesInUse(), 1u);
}

TEST(MshrFile, SecondaryMissMerges)
{
    MshrFile mshrs(4, 4);
    mshrs.registerMiss(req(0x100, 1));
    EXPECT_EQ(mshrs.registerMiss(req(0x100, 2)), MshrOutcome::Merged);
    EXPECT_EQ(mshrs.entriesInUse(), 1u) << "merge reuses the entry";
}

TEST(MshrFile, StallWhenEntriesExhausted)
{
    MshrFile mshrs(2, 2);
    mshrs.registerMiss(req(0x100));
    mshrs.registerMiss(req(0x200));
    EXPECT_EQ(mshrs.registerMiss(req(0x300)), MshrOutcome::Stall);
    EXPECT_FALSE(mshrs.inFlight(0x300));
}

TEST(MshrFile, StallWhenTargetsExhausted)
{
    MshrFile mshrs(4, 2);
    mshrs.registerMiss(req(0x100, 1));
    mshrs.registerMiss(req(0x100, 2));
    EXPECT_EQ(mshrs.registerMiss(req(0x100, 3)), MshrOutcome::Stall);
}

TEST(MshrFile, CompleteFillReturnsAllWaitersInOrder)
{
    MshrFile mshrs(4, 4);
    mshrs.registerMiss(req(0x100, 1));
    mshrs.registerMiss(req(0x100, 2));
    mshrs.registerMiss(req(0x100, 3));
    const auto waiters = mshrs.completeFill(0x100);
    ASSERT_EQ(waiters.size(), 3u);
    EXPECT_EQ(waiters[0].warp, 1u) << "primary first";
    EXPECT_EQ(waiters[1].warp, 2u);
    EXPECT_EQ(waiters[2].warp, 3u);
    EXPECT_FALSE(mshrs.inFlight(0x100));
    EXPECT_EQ(mshrs.entriesInUse(), 0u);
}

TEST(MshrFile, FreedEntryReusable)
{
    MshrFile mshrs(1, 1);
    mshrs.registerMiss(req(0x100));
    EXPECT_TRUE(mshrs.full());
    mshrs.completeFill(0x100);
    EXPECT_FALSE(mshrs.full());
    EXPECT_EQ(mshrs.registerMiss(req(0x200)), MshrOutcome::NewEntry);
}

TEST(MshrFile, DistinctLinesDistinctEntries)
{
    MshrFile mshrs(8, 2);
    mshrs.registerMiss(req(0x100));
    mshrs.registerMiss(req(0x200));
    EXPECT_EQ(mshrs.entriesInUse(), 2u);
    EXPECT_TRUE(mshrs.inFlight(0x100));
    EXPECT_TRUE(mshrs.inFlight(0x200));
}

TEST(MshrFile, ClearEmptiesEverything)
{
    MshrFile mshrs(4, 2);
    mshrs.registerMiss(req(0x100));
    mshrs.clear();
    EXPECT_EQ(mshrs.entriesInUse(), 0u);
    EXPECT_FALSE(mshrs.inFlight(0x100));
}

TEST(MshrFileDeath, FillWithoutEntryPanics)
{
    MshrFile mshrs(4, 2);
    EXPECT_EBM_FATAL(mshrs.completeFill(0xdead00), "no MSHR entry");
}

TEST(MshrFileDeath, ZeroEntriesIsFatal)
{
    EXPECT_EBM_FATAL({ MshrFile m(0, 1); }, "entries");
}

} // namespace
} // namespace ebm
