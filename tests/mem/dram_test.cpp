#include "mem/dram.hpp"

#include <gtest/gtest.h>

#include "../test_util.hpp"

namespace ebm {
namespace {

class DramTest : public ::testing::Test
{
  protected:
    DramTest() : cfg_(test::tinyConfig()), dram_(cfg_, /*num_apps=*/2) {}

    MemRequest
    req(AppId app = 0)
    {
        MemRequest r;
        r.app = app;
        return r;
    }

    DramCoord
    coord(std::uint32_t bank, std::uint64_t row, std::uint32_t col)
    {
        DramCoord c;
        c.bank = bank;
        c.row = row;
        c.col = col;
        return c;
    }

    /** Tick until @p n completions arrive or @p limit cycles pass. */
    std::vector<DramCompletion>
    drain(std::size_t n, Cycle limit = 10'000)
    {
        std::vector<DramCompletion> all;
        for (Cycle c = 0; c < limit && all.size() < n; ++c) {
            DramCompletion done;
            if (dram_.tick(done))
                all.push_back(done);
        }
        return all;
    }

    GpuConfig cfg_;
    DramChannel dram_;
};

TEST_F(DramTest, SingleRequestCompletes)
{
    dram_.enqueue(req(), coord(0, 5, 0));
    const auto done = drain(1);
    ASSERT_EQ(done.size(), 1u);
    EXPECT_EQ(dram_.requestsServiced(), 1u);
}

TEST_F(DramTest, ColdAccessPaysActivatePlusCas)
{
    dram_.enqueue(req(), coord(0, 5, 0));
    const auto done = drain(1);
    ASSERT_EQ(done.size(), 1u);
    const auto &t = cfg_.dram;
    // activate at cycle >=1, column >= tRCD later, data tCL + burst.
    EXPECT_GE(done[0].readyAt, t.tRCD + t.tCL + t.burstCycles);
}

TEST_F(DramTest, RowHitFasterThanRowMiss)
{
    dram_.enqueue(req(), coord(0, 5, 0));
    dram_.enqueue(req(), coord(0, 5, 1)); // Same row: hit.
    const auto fast = drain(2);
    ASSERT_EQ(fast.size(), 2u);
    const Cycle hit_gap = fast[1].readyAt - fast[0].readyAt;

    dram_.reset();
    dram_.enqueue(req(), coord(0, 5, 0));
    dram_.enqueue(req(), coord(0, 6, 0)); // Same bank, new row: miss.
    const auto slow = drain(2);
    ASSERT_EQ(slow.size(), 2u);
    const Cycle miss_gap = slow[1].readyAt - slow[0].readyAt;

    EXPECT_LT(hit_gap, miss_gap);
}

TEST_F(DramTest, RowHitCounterTracksLocality)
{
    for (std::uint32_t c = 0; c < 4; ++c)
        dram_.enqueue(req(), coord(0, 5, c));
    drain(4);
    EXPECT_EQ(dram_.rowMisses(), 1u) << "one activate for the row";
    EXPECT_EQ(dram_.rowHits(), 3u);
}

TEST_F(DramTest, FrFcfsPrefersRowHitOverOlderMiss)
{
    // Open row 5 on bank 0.
    dram_.enqueue(req(), coord(0, 5, 0));
    drain(1);
    // Older request to a different row, younger row-hit.
    dram_.enqueue(req(0), coord(0, 9, 0));
    dram_.enqueue(req(1), coord(0, 5, 1));
    const auto done = drain(2);
    ASSERT_EQ(done.size(), 2u);
    EXPECT_EQ(done[0].req.app, 1u) << "row hit serviced first";
}

TEST_F(DramTest, BankParallelismBeatsBankConflicts)
{
    // Same number of requests; spread across banks vs one bank.
    for (std::uint32_t i = 0; i < 8; ++i)
        dram_.enqueue(req(), coord(i % cfg_.banksPerChannel, 5 + i, 0));
    const auto spread = drain(8);
    const Cycle spread_end = spread.back().readyAt;

    dram_.reset();
    for (std::uint32_t i = 0; i < 8; ++i)
        dram_.enqueue(req(), coord(0, 5 + i, 0));
    const auto serial = drain(8);
    const Cycle serial_end = serial.back().readyAt;

    EXPECT_LT(spread_end, serial_end);
}

TEST_F(DramTest, TimingBlockedBankDoesNotBlockOthers)
{
    // Two conflicting requests on bank 0 plus one on bank 1; the bank-1
    // request must finish before the second bank-0 row conflict.
    dram_.enqueue(req(0), coord(0, 5, 0));
    dram_.enqueue(req(0), coord(0, 6, 0));
    dram_.enqueue(req(1), coord(1, 7, 0));
    const auto done = drain(3);
    ASSERT_EQ(done.size(), 3u);
    EXPECT_EQ(done[1].req.app, 1u)
        << "bank-1 request overtakes the bank-0 row conflict";
}

TEST_F(DramTest, PerAppDataCyclesAttributed)
{
    dram_.enqueue(req(0), coord(0, 5, 0));
    dram_.enqueue(req(1), coord(1, 6, 0));
    dram_.enqueue(req(1), coord(1, 6, 1));
    drain(3);
    EXPECT_EQ(dram_.dataCycles(0), cfg_.dram.burstCycles);
    EXPECT_EQ(dram_.dataCycles(1), 2u * cfg_.dram.burstCycles);
}

TEST_F(DramTest, WindowCountersResetAtCheckpoint)
{
    dram_.enqueue(req(0), coord(0, 5, 0));
    drain(1);
    dram_.checkpoint();
    EXPECT_EQ(dram_.windowDataCycles(0), 0u);
    dram_.enqueue(req(0), coord(0, 5, 1));
    drain(2, 2000);
    EXPECT_EQ(dram_.windowDataCycles(0), cfg_.dram.burstCycles);
}

TEST_F(DramTest, QueueBackpressure)
{
    for (std::uint32_t i = 0; i < cfg_.frfcfsQueueDepth; ++i) {
        ASSERT_FALSE(dram_.queueFull());
        dram_.enqueue(req(), coord(0, i, 0));
    }
    EXPECT_TRUE(dram_.queueFull());
}

TEST_F(DramTest, ResetRestoresInitialState)
{
    dram_.enqueue(req(), coord(0, 5, 0));
    drain(1);
    dram_.reset();
    EXPECT_EQ(dram_.now(), 0u);
    EXPECT_EQ(dram_.requestsServiced(), 0u);
    EXPECT_EQ(dram_.dataCycles(0), 0u);
    EXPECT_EQ(dram_.queueDepth(), 0u);
}

TEST_F(DramTest, ActivatesRespectTrrd)
{
    // Two activates to different banks cannot be closer than tRRD.
    dram_.enqueue(req(), coord(0, 5, 0));
    dram_.enqueue(req(), coord(1, 6, 0));
    const auto done = drain(2);
    ASSERT_EQ(done.size(), 2u);
    // Completion gap >= tRRD because the second activate waited.
    EXPECT_GE(done[1].readyAt - done[0].readyAt,
              static_cast<Cycle>(cfg_.dram.tRRD) -
                  cfg_.dram.burstCycles);
}

TEST_F(DramTest, StreamsThroughputExceedsRandom)
{
    // 32 sequential columns in one row vs 32 random rows across banks:
    // the streaming pattern must finish sooner (row locality).
    const std::uint32_t n = 16;
    for (std::uint32_t i = 0; i < n; ++i)
        dram_.enqueue(req(), coord(0, 5, i % 16));
    const Cycle stream_end = drain(n).back().readyAt;

    dram_.reset();
    for (std::uint32_t i = 0; i < n; ++i)
        dram_.enqueue(req(), coord(i % cfg_.banksPerChannel,
                                   100 + i * 17, 0));
    const Cycle random_end = drain(n).back().readyAt;
    EXPECT_LT(stream_end, random_end);
}

} // namespace
} // namespace ebm
