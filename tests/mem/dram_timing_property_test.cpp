/**
 * @file
 * Property sweeps over DRAM timing parameters: throughput and latency
 * must respond monotonically to the constraint being swept. These
 * catch sign errors and dropped constraints in the controller that a
 * single-configuration test would miss.
 */
#include <gtest/gtest.h>

#include "../test_util.hpp"
#include "mem/dram.hpp"

namespace ebm {
namespace {

/** Cycles to service @p n row-missing requests spread over banks. */
Cycle
serviceTime(const GpuConfig &cfg, std::uint32_t n,
            bool same_bank = false)
{
    DramChannel dram(cfg, 1);
    for (std::uint32_t i = 0; i < n; ++i) {
        MemRequest req;
        req.app = 0;
        DramCoord coord;
        coord.bank = same_bank ? 0 : i % cfg.banksPerChannel;
        coord.row = 1000 + i;
        coord.col = 0;
        dram.enqueue(req, coord);
    }
    std::uint32_t done = 0;
    Cycle last = 0;
    for (Cycle c = 0; c < 100'000 && done < n; ++c) {
        DramCompletion completion;
        if (dram.tick(completion)) {
            ++done;
            last = completion.readyAt;
        }
    }
    EXPECT_EQ(done, n) << "all requests must complete";
    return last;
}

TEST(DramTimingProperty, LongerTrrdNeverFaster)
{
    GpuConfig base = test::tinyConfig();
    base.dram.tRRD = 4;
    const Cycle fast = serviceTime(base, 16);
    for (std::uint32_t trrd : {4u, 6u, 8u, 12u, 20u}) {
        base.dram.tRRD = trrd;
        EXPECT_GE(serviceTime(base, 16), fast) << "tRRD " << trrd;
    }
}

TEST(DramTimingProperty, TrrdStrictlySlowsActivateBoundTraffic)
{
    GpuConfig base = test::tinyConfig();
    base.dram.tRRD = 4;
    const Cycle fast = serviceTime(base, 16);
    base.dram.tRRD = 20;
    EXPECT_GT(serviceTime(base, 16), fast)
        << "row-miss traffic is activate-rate bound";
}

TEST(DramTimingProperty, LongerPrechargeNeverFasterOnBankConflicts)
{
    GpuConfig base = test::tinyConfig();
    base.dram.tRP = 4;
    const Cycle fast = serviceTime(base, 8, /*same_bank=*/true);
    for (std::uint32_t trp : {4u, 8u, 12u, 24u}) {
        base.dram.tRP = trp;
        EXPECT_GE(serviceTime(base, 8, true), fast) << "tRP " << trp;
    }
}

TEST(DramTimingProperty, LongerBurstsNeverFaster)
{
    GpuConfig base = test::tinyConfig();
    base.dram.burstCycles = 1;
    const Cycle fast = serviceTime(base, 32);
    for (std::uint32_t burst : {1u, 2u, 4u, 8u}) {
        base.dram.burstCycles = burst;
        EXPECT_GE(serviceTime(base, 32), fast) << "burst " << burst;
    }
}

TEST(DramTimingProperty, LongerRcdDelaysColdAccess)
{
    GpuConfig base = test::tinyConfig();
    base.dram.tRCD = 4;
    const Cycle fast = serviceTime(base, 1);
    base.dram.tRCD = 30;
    EXPECT_GT(serviceTime(base, 1), fast);
}

TEST(DramTimingProperty, StarvationCapBoundsWorstCaseWait)
{
    // One victim request to a conflicting row behind a continuous
    // row-hit stream; the victim's completion time must be bounded
    // by roughly the cap (plus service constants), at every cap.
    for (std::uint32_t cap : {128u, 256u, 512u, 1024u}) {
        GpuConfig cfg = test::tinyConfig();
        cfg.frfcfsCapCycles = cap;
        DramChannel dram(cfg, 2);

        MemRequest stream_req;
        stream_req.app = 0;
        MemRequest victim;
        victim.app = 1;
        DramCoord stream_coord;
        stream_coord.bank = 0;
        stream_coord.row = 1;
        DramCoord victim_coord;
        victim_coord.bank = 0;
        victim_coord.row = 5;

        dram.enqueue(stream_req, stream_coord);
        dram.enqueue(victim, victim_coord);
        Cycle victim_done = 0;
        std::uint32_t col = 0;
        for (Cycle c = 0; c < 50'000 && victim_done == 0; ++c) {
            if (!dram.queueFull()) {
                stream_coord.col = (++col) % 16;
                dram.enqueue(stream_req, stream_coord);
            }
            DramCompletion completion;
            if (dram.tick(completion) && completion.req.app == 1)
                victim_done = completion.readyAt;
        }
        ASSERT_GT(victim_done, 0u)
            << "victim must eventually be served (cap " << cap << ")";
        EXPECT_LT(victim_done, 3u * cap + 500u) << "cap " << cap;
    }
}

TEST(DramTimingProperty, TighterCapServesVictimSooner)
{
    auto victim_latency = [](std::uint32_t cap) {
        GpuConfig cfg = test::tinyConfig();
        cfg.frfcfsCapCycles = cap;
        DramChannel dram(cfg, 2);
        MemRequest stream_req;
        stream_req.app = 0;
        MemRequest victim;
        victim.app = 1;
        DramCoord sc;
        sc.bank = 0;
        sc.row = 1;
        DramCoord vc;
        vc.bank = 0;
        vc.row = 5;
        dram.enqueue(stream_req, sc);
        dram.enqueue(victim, vc);
        Cycle done = 0;
        std::uint32_t col = 0;
        for (Cycle c = 0; c < 50'000 && done == 0; ++c) {
            if (!dram.queueFull()) {
                sc.col = (++col) % 16;
                dram.enqueue(stream_req, sc);
            }
            DramCompletion completion;
            if (dram.tick(completion) && completion.req.app == 1)
                done = completion.readyAt;
        }
        return done;
    };
    EXPECT_LT(victim_latency(128), victim_latency(2048));
}

} // namespace
} // namespace ebm
