#include "mem/tag_array.hpp"

#include <gtest/gtest.h>

namespace ebm {
namespace {

CacheGeometry
smallGeom(std::uint32_t sets = 4, std::uint32_t assoc = 2)
{
    CacheGeometry g;
    g.lineBytes = 128;
    g.assoc = assoc;
    g.sizeBytes = sets * assoc * g.lineBytes;
    return g;
}

/** Line address landing in @p set with distinguishing tag @p tag. */
Addr
lineIn(const CacheGeometry &g, std::uint32_t set, std::uint32_t tag)
{
    return (static_cast<Addr>(tag) * g.numSets() + set) * g.lineBytes;
}

TEST(TagArray, MissThenHit)
{
    TagArray tags(smallGeom());
    const Addr a = 0x1000;
    EXPECT_FALSE(tags.access(a, 0, true).hit);
    EXPECT_TRUE(tags.access(a, 0, true).hit);
}

TEST(TagArray, ProbeDoesNotAllocate)
{
    TagArray tags(smallGeom());
    EXPECT_FALSE(tags.probe(0x1000));
    tags.access(0x1000, 0, false); // Non-allocating miss.
    EXPECT_FALSE(tags.probe(0x1000));
    tags.access(0x1000, 0, true);
    EXPECT_TRUE(tags.probe(0x1000));
}

TEST(TagArray, LruEvictsLeastRecentlyUsed)
{
    const auto g = smallGeom(4, 2);
    TagArray tags(g);
    const Addr a = lineIn(g, 0, 1);
    const Addr b = lineIn(g, 0, 2);
    const Addr c = lineIn(g, 0, 3);

    tags.access(a, 0, true);
    tags.access(b, 0, true);
    tags.access(a, 0, true); // a is now MRU.
    const TagLookup res = tags.access(c, 0, true);
    EXPECT_FALSE(res.hit);
    EXPECT_TRUE(res.evictedValid);
    EXPECT_EQ(res.evictedLine, b) << "b was LRU";
    EXPECT_TRUE(tags.probe(a));
    EXPECT_FALSE(tags.probe(b));
    EXPECT_TRUE(tags.probe(c));
}

TEST(TagArray, EvictionReportsOwnerApp)
{
    const auto g = smallGeom(2, 1);
    TagArray tags(g);
    tags.access(lineIn(g, 0, 1), /*app=*/3, true);
    const TagLookup res = tags.access(lineIn(g, 0, 2), 0, true);
    EXPECT_TRUE(res.evictedValid);
    EXPECT_EQ(res.evictedApp, 3u);
}

TEST(TagArray, DifferentSetsDoNotConflict)
{
    const auto g = smallGeom(4, 1);
    TagArray tags(g);
    for (std::uint32_t s = 0; s < 4; ++s)
        tags.access(lineIn(g, s, 1), 0, true);
    for (std::uint32_t s = 0; s < 4; ++s)
        EXPECT_TRUE(tags.probe(lineIn(g, s, 1)));
}

TEST(TagArray, FullAssociativityWithinSet)
{
    const auto g = smallGeom(2, 4);
    TagArray tags(g);
    for (std::uint32_t t = 1; t <= 4; ++t)
        EXPECT_FALSE(tags.access(lineIn(g, 1, t), 0, true).evictedValid);
    for (std::uint32_t t = 1; t <= 4; ++t)
        EXPECT_TRUE(tags.probe(lineIn(g, 1, t)));
}

TEST(TagArray, InvalidateRemovesLine)
{
    TagArray tags(smallGeom());
    tags.access(0x2000, 0, true);
    EXPECT_TRUE(tags.invalidate(0x2000));
    EXPECT_FALSE(tags.probe(0x2000));
    EXPECT_FALSE(tags.invalidate(0x2000)) << "second invalidate no-op";
}

TEST(TagArray, LinesOwnedByTracksApps)
{
    const auto g = smallGeom(8, 2);
    TagArray tags(g);
    tags.access(lineIn(g, 0, 1), 0, true);
    tags.access(lineIn(g, 1, 1), 0, true);
    tags.access(lineIn(g, 2, 1), 1, true);
    EXPECT_EQ(tags.linesOwnedBy(0), 2u);
    EXPECT_EQ(tags.linesOwnedBy(1), 1u);
    EXPECT_EQ(tags.linesOwnedBy(2), 0u);
}

TEST(TagArray, FlushDropsEverything)
{
    const auto g = smallGeom();
    TagArray tags(g);
    tags.access(lineIn(g, 0, 1), 0, true);
    tags.access(lineIn(g, 1, 1), 0, true);
    tags.flush();
    EXPECT_FALSE(tags.probe(lineIn(g, 0, 1)));
    EXPECT_EQ(tags.linesOwnedBy(0), 0u);
}

TEST(TagArray, HitRefreshesLru)
{
    const auto g = smallGeom(1, 2);
    TagArray tags(g);
    const Addr a = lineIn(g, 0, 1);
    const Addr b = lineIn(g, 0, 2);
    const Addr c = lineIn(g, 0, 3);
    tags.access(a, 0, true);
    tags.access(b, 0, true);
    // Probe-with-LRU-refresh via non-allocating access path:
    tags.access(a, 0, false);
    const TagLookup res = tags.access(c, 0, true);
    EXPECT_EQ(res.evictedLine, b);
}

/** Geometry sweep: allocate exactly capacity lines, nothing evicted. */
class TagArrayCapacity
    : public ::testing::TestWithParam<std::pair<std::uint32_t,
                                                std::uint32_t>>
{
};

TEST_P(TagArrayCapacity, HoldsExactlyCapacity)
{
    const auto [sets, assoc] = GetParam();
    const auto g = smallGeom(sets, assoc);
    TagArray tags(g);
    std::uint32_t evictions = 0;
    for (std::uint32_t s = 0; s < sets; ++s) {
        for (std::uint32_t t = 1; t <= assoc; ++t) {
            if (tags.access(lineIn(g, s, t), 0, true).evictedValid)
                ++evictions;
        }
    }
    EXPECT_EQ(evictions, 0u);
    // One more line per set must evict.
    for (std::uint32_t s = 0; s < sets; ++s) {
        EXPECT_TRUE(
            tags.access(lineIn(g, s, assoc + 1), 0, true).evictedValid);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, TagArrayCapacity,
    ::testing::Values(std::pair{1u, 1u}, std::pair{1u, 4u},
                      std::pair{4u, 1u}, std::pair{4u, 4u},
                      std::pair{16u, 8u}, std::pair{32u, 4u}));

} // namespace
} // namespace ebm
