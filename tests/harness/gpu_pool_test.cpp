/**
 * @file
 * The pool-is-an-accelerator contract: a Gpu leased from the pool —
 * i.e. a reused instance that went through reset(true) +
 * restoreKnobDefaults() — must be indistinguishable, digest for
 * digest, from a freshly constructed one, across the whole TLP ladder
 * and both fast-forward modes. Plus the poisoning semantics: any run
 * that throws while holding a lease (including an injected RunFail)
 * discards the instance instead of returning it.
 */
#include <cstring>
#include <fstream>
#include <sstream>
#include <vector>

#include <gtest/gtest.h>

#include "../test_util.hpp"
#include "common/fault_injector.hpp"
#include "harness/disk_cache.hpp"
#include "harness/exhaustive.hpp"
#include "harness/gpu_pool.hpp"
#include "sim/golden_digest.hpp"
#include "sim/gpu.hpp"
#include "workload/app_catalog.hpp"

namespace ebm {
namespace {

using Point = FaultInjector::Point;

/** Save/restore the process-wide pool switch around every test. */
class GpuPoolTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        enabledBefore_ = GpuPool::enabled();
        GpuPool::setEnabled(true);
        GpuPool::threadLocal().clear();
    }

    void
    TearDown() override
    {
        GpuPool::threadLocal().clear();
        GpuPool::setEnabled(enabledBefore_);
    }

    bool enabledBefore_ = true;
};

/** A measurement-shaped scenario: knobs, windows, a digest. */
std::uint64_t
runScenario(Gpu &gpu, std::uint32_t tlp, bool fast_forward)
{
    gpu.setFastForward(fast_forward);
    gpu.setAppTlp(0, tlp);
    gpu.setAppTlp(1, 6);
    gpu.run(6000);
    gpu.checkpoint();
    gpu.run(3000);
    return goldenDigest(gpu);
}

/** Leave an instance thoroughly dirty: knobs, partitions, history. */
void
dirty(Gpu &gpu)
{
    gpu.setAppTlp(0, 3);
    gpu.setAppTlp(1, 1);
    gpu.setAppL1Bypass(0, true);
    gpu.setAppL2Bypass(1, true);
    gpu.setAppL2WayPartition(0, 0, 4);
    gpu.setAppL2WayPartition(1, 4, 4);
    gpu.setFastForward(false);
    gpu.run(5000);
}

/**
 * The core reuse guarantee, swept across the full standard TLP ladder
 * and both fast-forward modes: a pooled instance that just finished a
 * maximally dirty run produces the exact digest of a never-used
 * machine.
 */
TEST_F(GpuPoolTest, PooledReuseMatchesFreshAcrossLadderAndFfModes)
{
    const GpuConfig cfg = test::tinyConfig(2);
    const std::vector<AppProfile> apps = {test::streamingApp(),
                                          test::cacheApp()};

    for (const std::uint32_t tlp : GpuConfig::tlpLevels()) {
        for (const bool ff : {true, false}) {
            // Reference: a machine that has never run anything.
            std::uint64_t fresh = 0;
            {
                Gpu gpu(cfg, apps);
                fresh = runScenario(gpu, tlp, ff);
            }

            GpuPool pool;
            {
                GpuPool::Lease lease = pool.acquire(cfg, apps, {});
                dirty(lease.gpu());
            }
            ASSERT_EQ(pool.idleCount(), 1u);
            {
                GpuPool::Lease lease = pool.acquire(cfg, apps, {});
                EXPECT_EQ(pool.stats().hits, 1u)
                    << "second acquire of the same key must reuse";
                EXPECT_TRUE(lease.gpu().fastForwardEnabled())
                    << "leases hand out the construction default";
                const std::uint64_t pooled =
                    runScenario(lease.gpu(), tlp, ff);
                EXPECT_EQ(pooled, fresh)
                    << "tlp=" << tlp << " ff=" << ff;
            }
        }
    }
}

/** Keys compare by full equality: a different app list, a different
 * core share, or a different config never reuses an instance. */
TEST_F(GpuPoolTest, DistinctKeysNeverShareInstances)
{
    const GpuConfig cfg = test::tinyConfig(2);
    const std::vector<AppProfile> apps_a = {test::streamingApp(),
                                            test::cacheApp()};
    const std::vector<AppProfile> apps_b = {test::streamingApp(),
                                            test::computeApp()};

    GpuPool pool;
    { GpuPool::Lease l = pool.acquire(cfg, apps_a, {}); }
    { GpuPool::Lease l = pool.acquire(cfg, apps_b, {}); }
    EXPECT_EQ(pool.stats().hits, 0u);
    EXPECT_EQ(pool.stats().misses, 2u);

    // An explicit core share that differs from the default split is a
    // different machine, even for the same apps.
    { GpuPool::Lease l = pool.acquire(cfg, apps_a, {3, 1}); }
    EXPECT_EQ(pool.stats().hits, 0u);
    EXPECT_EQ(pool.stats().misses, 3u);

    // A config that differs in any field is a different machine.
    GpuConfig other = cfg;
    other.l2HitLatency += 1;
    { GpuPool::Lease l = pool.acquire(other, apps_a, {}); }
    EXPECT_EQ(pool.stats().hits, 0u);
    EXPECT_EQ(pool.stats().misses, 4u);

    // And the originals are all still there to be reused.
    { GpuPool::Lease l = pool.acquire(cfg, apps_a, {}); }
    EXPECT_EQ(pool.stats().hits, 1u);
}

TEST_F(GpuPoolTest, PoisonedLeaseIsDiscardedNotReused)
{
    const GpuConfig cfg = test::tinyConfig(2);
    const std::vector<AppProfile> apps = {test::streamingApp(),
                                          test::cacheApp()};

    GpuPool pool;
    {
        GpuPool::Lease lease = pool.acquire(cfg, apps, {});
        lease.poison();
    }
    EXPECT_EQ(pool.idleCount(), 0u);
    EXPECT_EQ(pool.stats().discards, 1u);
}

TEST_F(GpuPoolTest, ExceptionUnwindingDiscardsTheLease)
{
    const GpuConfig cfg = test::tinyConfig(2);
    const std::vector<AppProfile> apps = {test::streamingApp(),
                                          test::cacheApp()};

    GpuPool pool;
    try {
        GpuPool::Lease lease = pool.acquire(cfg, apps, {});
        lease.gpu().run(100); // Half a run, then the "crash".
        throw std::runtime_error("simulated mid-run crash");
    } catch (const std::runtime_error &) {
    }
    EXPECT_EQ(pool.idleCount(), 0u);
    EXPECT_EQ(pool.stats().discards, 1u);
}

TEST_F(GpuPoolTest, IdleInstancesAreCappedOldestEvictedFirst)
{
    const GpuConfig cfg = test::tinyConfig(2);
    std::vector<std::vector<AppProfile>> keys;
    for (int i = 0; i < 5; ++i) {
        keys.push_back(
            {test::cacheApp("K" + std::to_string(i), 2 + i),
             test::streamingApp()});
    }

    GpuPool pool;
    {
        std::vector<GpuPool::Lease> held;
        for (const auto &apps : keys)
            held.push_back(pool.acquire(cfg, apps, {}));
    } // All five release here; the cap is four.
    EXPECT_EQ(pool.idleCount(), 4u);
    EXPECT_EQ(pool.stats().evictions, 1u);

    // The first-released key was the evicted one.
    { GpuPool::Lease l = pool.acquire(cfg, keys[0], {}); }
    EXPECT_EQ(pool.stats().misses, 6u);
    { GpuPool::Lease l = pool.acquire(cfg, keys[4], {}); }
    EXPECT_EQ(pool.stats().hits, 1u);
}

TEST_F(GpuPoolTest, RetainedSnapshotRidesAcrossReleaseAndAcquire)
{
    const GpuConfig cfg = test::tinyConfig(2);
    const std::vector<AppProfile> apps = {test::streamingApp(),
                                          test::cacheApp()};
    const auto payload = std::make_shared<int>(42);

    GpuPool pool;
    {
        GpuPool::Lease lease = pool.acquire(cfg, apps, {});
        EXPECT_EQ(lease.retainedSnapshot(0x11u), nullptr);
        lease.retainSnapshot(0x11u, payload, 1024);
        EXPECT_EQ(lease.retainedSnapshot(0x11u), payload);
    }
    EXPECT_EQ(pool.retainedBytes(), 1024u);
    {
        GpuPool::Lease lease = pool.acquire(cfg, apps, {});
        EXPECT_EQ(lease.retainedSnapshot(0x11u), payload)
            << "the snapshot follows the machine back out of the pool";
        // Re-retaining the same key replaces, not accumulates.
        lease.retainSnapshot(0x11u, payload, 2048);
    }
    EXPECT_EQ(pool.retainedBytes(), 2048u);
}

/**
 * Satellite (f): eviction must account retained snapshot bytes, not
 * just idle age — one entry pinning a huge checkpoint is evicted even
 * though the idle count is far below the cap.
 */
TEST_F(GpuPoolTest, RetainedBytesOverBudgetEvictEvenWhenIdleCountIsLow)
{
    const GpuConfig cfg = test::tinyConfig(2);
    const std::vector<AppProfile> heavy_apps = {
        test::cacheApp("HEAVY", 2), test::streamingApp()};
    const std::vector<AppProfile> light_apps = {
        test::cacheApp("LIGHT", 3), test::streamingApp()};

    GpuPool pool;
    pool.setRetainedBudget(4096);
    {
        GpuPool::Lease lease = pool.acquire(cfg, heavy_apps, {});
        lease.retainSnapshot(0x1u, std::make_shared<int>(1), 8192);
    }
    // Over budget with a single idle entry: evicted immediately.
    EXPECT_EQ(pool.idleCount(), 0u);
    EXPECT_EQ(pool.stats().evictions, 1u);
    EXPECT_EQ(pool.retainedBytes(), 0u);

    // Under budget, entries stay; a later over-budget release evicts
    // oldest-first until back under.
    {
        GpuPool::Lease lease = pool.acquire(cfg, light_apps, {});
        lease.retainSnapshot(0x2u, std::make_shared<int>(2), 1024);
    }
    EXPECT_EQ(pool.idleCount(), 1u);
    {
        GpuPool::Lease lease = pool.acquire(cfg, heavy_apps, {});
        lease.retainSnapshot(0x3u, std::make_shared<int>(3), 3584);
    }
    EXPECT_EQ(pool.idleCount(), 1u)
        << "the older light entry is displaced to fit the budget";
    EXPECT_EQ(pool.stats().evictions, 2u);
    EXPECT_EQ(pool.retainedBytes(), 3584u);
}

TEST_F(GpuPoolTest, DisabledPoolConstructsAndDiscardsEveryLease)
{
    const GpuConfig cfg = test::tinyConfig(2);
    const std::vector<AppProfile> apps = {test::streamingApp(),
                                          test::cacheApp()};

    GpuPool::setEnabled(false);
    GpuPool pool;
    std::uint64_t off = 0;
    {
        GpuPool::Lease lease = pool.acquire(cfg, apps, {});
        off = runScenario(lease.gpu(), 4, true);
    }
    EXPECT_EQ(pool.idleCount(), 0u)
        << "disabled leases never enter the idle list";

    GpuPool::setEnabled(true);
    std::uint64_t on = 0;
    {
        GpuPool::Lease lease = pool.acquire(cfg, apps, {});
        on = runScenario(lease.gpu(), 4, true);
    }
    EXPECT_EQ(off, on) << "the switch must not change results";
}

/**
 * The ISSUE's fault scenario: an injected RunFail fires while the
 * machine is leased, the unwinding poisons the instance, and the pool
 * rebuilds on the retry — whose result is field-for-field identical
 * to a run with pooling disabled (fresh construction).
 */
TEST_F(GpuPoolTest, InjectedRunFailPoisonsInstanceAndRetryMatchesFresh)
{
    const std::vector<AppProfile> apps = {test::streamingApp(),
                                          test::cacheApp()};
    const TlpCombo combo = {4, 4};

    RunOptions opts = test::tinyOptions();
    FaultInjector fi(7);
    fi.armAfter(Point::RunFail, 0, 1);
    opts.faultInjector = &fi;
    Runner runner(test::tinyConfig(2), opts);

    GpuPool &pool = GpuPool::threadLocal();
    const std::uint64_t discards_before = pool.stats().discards;

    EXPECT_EBM_FATAL(runner.runStatic(apps, combo),
                     "injected run failure");
    EXPECT_EQ(pool.idleCount(), 0u)
        << "the instance the failed run held must not be pooled";
    EXPECT_EQ(pool.stats().discards, discards_before + 1);

    // Retry (the injector is exhausted): the pool constructs anew.
    const RunResult retry = runner.runStatic(apps, combo);

    // Reference: the same run with pooling off entirely.
    GpuPool::setEnabled(false);
    Runner fresh_runner(test::tinyConfig(2), test::tinyOptions());
    const RunResult fresh = fresh_runner.runStatic(apps, combo);
    GpuPool::setEnabled(true);

    ASSERT_EQ(retry.apps.size(), fresh.apps.size());
    for (std::size_t i = 0; i < retry.apps.size(); ++i) {
        EXPECT_EQ(std::memcmp(&retry.apps[i].ipc, &fresh.apps[i].ipc,
                              sizeof(double)), 0);
        EXPECT_EQ(std::memcmp(&retry.apps[i].bw, &fresh.apps[i].bw,
                              sizeof(double)), 0);
        EXPECT_EQ(std::memcmp(&retry.apps[i].l1Mr, &fresh.apps[i].l1Mr,
                              sizeof(double)), 0);
        EXPECT_EQ(std::memcmp(&retry.apps[i].l2Mr, &fresh.apps[i].l2Mr,
                              sizeof(double)), 0);
    }
    EXPECT_EQ(std::memcmp(&retry.totalBw, &fresh.totalBw,
                          sizeof(double)), 0);
    EXPECT_EQ(retry.measuredCycles, fresh.measuredCycles);
    EXPECT_EQ(retry.finalTlp, fresh.finalTlp);
    EXPECT_EQ(retry.samplesTaken, fresh.samplesTaken);
}

/**
 * End to end through the sweep engine: a cold sweep with pooling on
 * must produce the same table and the byte-identical compacted cache
 * file as one with pooling off.
 */
TEST_F(GpuPoolTest, ColdSweepIsByteIdenticalPoolingOnVsOff)
{
    const std::string stem = ::testing::TempDir() + "ebm_pool_sweep";
    const std::string on_path = stem + "_on.txt";
    const std::string off_path = stem + "_off.txt";
    for (const std::string &p : {on_path, off_path})
        std::remove(p.c_str());

    const std::vector<std::uint32_t> ladder = {1, 2, 4, 8};
    Runner runner(test::tinyConfig(2), test::tinyOptions());
    const Workload wl = makePair("BLK", "TRD");

    auto sweepTo = [&](const std::string &path) {
        DiskCache cache(path);
        Exhaustive ex(runner, cache);
        ex.setJobs(2);
        const ComboTable t = ex.sweep(wl, ladder);
        EXPECT_TRUE(cache.compact());
        return t;
    };

    const ComboTable on = sweepTo(on_path);
    GpuPool::setEnabled(false);
    const ComboTable off = sweepTo(off_path);
    GpuPool::setEnabled(true);

    ASSERT_EQ(on.combos.size(), off.combos.size());
    for (std::size_t row = 0; row < on.combos.size(); ++row) {
        EXPECT_EQ(on.combos[row], off.combos[row]);
        EXPECT_EQ(std::memcmp(&on.results[row].totalBw,
                              &off.results[row].totalBw,
                              sizeof(double)), 0)
            << "row " << row;
        EXPECT_EQ(on.results[row].measuredCycles,
                  off.results[row].measuredCycles)
            << "row " << row;
    }

    auto slurp = [](const std::string &path) {
        std::ifstream in(path, std::ios::binary);
        std::stringstream ss;
        ss << in.rdbuf();
        return ss.str();
    };
    const std::string on_bytes = slurp(on_path);
    ASSERT_FALSE(on_bytes.empty());
    EXPECT_EQ(on_bytes, slurp(off_path));

    for (const std::string &p : {on_path, off_path})
        std::remove(p.c_str());
}

} // namespace
} // namespace ebm
