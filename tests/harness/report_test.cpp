#include "harness/report.hpp"

#include <gtest/gtest.h>

#include "../test_util.hpp"

namespace ebm {
namespace {

class MachineReportTest : public ::testing::Test
{
  protected:
    MachineReportTest()
        : gpu_(test::tinyConfig(2),
               {test::streamingApp(), test::cacheApp()})
    {
        gpu_.run(3000);
    }

    Gpu gpu_;
};

TEST_F(MachineReportTest, AppSummaryListsEveryApp)
{
    const std::string out = MachineReport(gpu_).appSummary();
    EXPECT_NE(out.find("app0"), std::string::npos);
    EXPECT_NE(out.find("app1"), std::string::npos);
    EXPECT_NE(out.find("EB"), std::string::npos);
}

TEST_F(MachineReportTest, CoreBreakdownListsEveryCore)
{
    const std::string out = MachineReport(gpu_).coreBreakdown();
    for (CoreId id = 0; id < gpu_.numCores(); ++id) {
        EXPECT_NE(out.find("| " + std::to_string(id) + " "),
                  std::string::npos)
            << "core " << id;
    }
}

TEST_F(MachineReportTest, MemoryBreakdownListsEveryPartition)
{
    const std::string out = MachineReport(gpu_).memoryBreakdown();
    EXPECT_NE(out.find("row hit%"), std::string::npos);
    for (PartitionId p = 0; p < gpu_.numPartitions(); ++p) {
        EXPECT_NE(out.find("| " + std::to_string(p) + " "),
                  std::string::npos);
    }
}

TEST_F(MachineReportTest, FullContainsAllSections)
{
    const std::string out = MachineReport(gpu_).full();
    EXPECT_NE(out.find("Per-application summary"), std::string::npos);
    EXPECT_NE(out.find("Per-core breakdown"), std::string::npos);
    EXPECT_NE(out.find("Per-partition memory"), std::string::npos);
}

TEST_F(MachineReportTest, FreshMachineRendersWithoutDivByZero)
{
    Gpu fresh(test::tinyConfig(1), {test::streamingApp()});
    const std::string out = MachineReport(fresh).full();
    EXPECT_FALSE(out.empty());
    EXPECT_EQ(out.find("nan"), std::string::npos);
    EXPECT_EQ(out.find("inf"), std::string::npos);
}

} // namespace
} // namespace ebm
