/**
 * @file
 * Wire-protocol contract of the advisor serving daemon: frames
 * reassemble byte-for-byte across arbitrary read boundaries;
 * malformed, oversized, and corrupt frames are rejected as Bad (and
 * the reader stays bad — no resynchronization on a garbled stream);
 * a truncated frame is NeedMore, never Bad (the torn-vs-corrupt
 * split); and sendFrame/recvFrame survive partial socket transfers.
 */
#include <sys/socket.h>
#include <unistd.h>

#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "harness/serve_protocol.hpp"

namespace ebm {
namespace {

using servefmt::FrameReader;

TEST(ServeProtocolTest, RoundTripWholeFrame)
{
    const std::string payload = "ADVISE BFS FFT OBJ WS WAIT 500";
    const std::string frame = servefmt::encodeFrame(payload);
    EXPECT_EQ(frame.size(), servefmt::kFrameHeadBytes +
                                payload.size() +
                                servefmt::kFrameTailBytes);

    FrameReader reader;
    reader.feed(frame.data(), frame.size());
    std::string out;
    EXPECT_EQ(reader.next(out), FrameReader::Status::Frame);
    EXPECT_EQ(out, payload);
    EXPECT_EQ(reader.buffered(), 0u);
    EXPECT_EQ(reader.next(out), FrameReader::Status::NeedMore);
}

TEST(ServeProtocolTest, EmptyPayloadRoundTrips)
{
    const std::string frame = servefmt::encodeFrame("");
    FrameReader reader;
    reader.feed(frame.data(), frame.size());
    std::string out = "sentinel";
    EXPECT_EQ(reader.next(out), FrameReader::Status::Frame);
    EXPECT_EQ(out, "");
}

/** The partial-read contract: one byte at a time reassembles. */
TEST(ServeProtocolTest, ByteByByteFeedReassembles)
{
    const std::string payload = "STATS";
    const std::string frame = servefmt::encodeFrame(payload);
    FrameReader reader;
    std::string out;
    for (std::size_t i = 0; i + 1 < frame.size(); ++i) {
        reader.feed(frame.data() + i, 1);
        EXPECT_EQ(reader.next(out), FrameReader::Status::NeedMore)
            << "complete after only " << i + 1 << " of "
            << frame.size() << " bytes";
    }
    reader.feed(frame.data() + frame.size() - 1, 1);
    EXPECT_EQ(reader.next(out), FrameReader::Status::Frame);
    EXPECT_EQ(out, payload);
}

TEST(ServeProtocolTest, PipelinedFramesExtractInOrder)
{
    const std::string frames = servefmt::encodeFrame("PING") +
                               servefmt::encodeFrame("STATS") +
                               servefmt::encodeFrame("POLL 7");
    FrameReader reader;
    reader.feed(frames.data(), frames.size());
    std::string out;
    ASSERT_EQ(reader.next(out), FrameReader::Status::Frame);
    EXPECT_EQ(out, "PING");
    ASSERT_EQ(reader.next(out), FrameReader::Status::Frame);
    EXPECT_EQ(out, "STATS");
    ASSERT_EQ(reader.next(out), FrameReader::Status::Frame);
    EXPECT_EQ(out, "POLL 7");
    EXPECT_EQ(reader.next(out), FrameReader::Status::NeedMore);
}

TEST(ServeProtocolTest, BadMagicIsBadAndSticky)
{
    std::string frame = servefmt::encodeFrame("PING");
    frame[0] = 'X';
    FrameReader reader;
    reader.feed(frame.data(), frame.size());
    std::string out, why;
    EXPECT_EQ(reader.next(out, &why), FrameReader::Status::Bad);
    EXPECT_NE(why.find("magic"), std::string::npos);

    // Feeding a perfectly good frame afterwards cannot recover: the
    // stream has no frame boundaries left to resynchronize on.
    const std::string good = servefmt::encodeFrame("STATS");
    reader.feed(good.data(), good.size());
    EXPECT_EQ(reader.next(out), FrameReader::Status::Bad);
}

TEST(ServeProtocolTest, OversizedDeclaredLengthIsBad)
{
    const std::uint32_t magic = servefmt::kFrameMagic;
    const std::uint32_t huge = servefmt::kMaxPayloadBytes + 1;
    std::string head;
    head.append(reinterpret_cast<const char *>(&magic), 4);
    head.append(reinterpret_cast<const char *>(&huge), 4);
    FrameReader reader;
    reader.feed(head.data(), head.size());
    std::string out, why;
    EXPECT_EQ(reader.next(out, &why), FrameReader::Status::Bad);
    EXPECT_NE(why.find("oversized"), std::string::npos);
}

TEST(ServeProtocolTest, CorruptPayloadFailsChecksum)
{
    std::string frame = servefmt::encodeFrame("ADVISE BFS FFT");
    frame[servefmt::kFrameHeadBytes + 3] ^= 0x40; // flip payload bit
    FrameReader reader;
    reader.feed(frame.data(), frame.size());
    std::string out, why;
    EXPECT_EQ(reader.next(out, &why), FrameReader::Status::Bad);
    EXPECT_NE(why.find("checksum"), std::string::npos);
}

TEST(ServeProtocolTest, CorruptChecksumTailFails)
{
    std::string frame = servefmt::encodeFrame("ADVISE BFS FFT");
    frame.back() = static_cast<char>(frame.back() ^ 0x01);
    FrameReader reader;
    reader.feed(frame.data(), frame.size());
    std::string out;
    EXPECT_EQ(reader.next(out), FrameReader::Status::Bad);
}

/** Truncation is torn, not corrupt: NeedMore until bytes arrive. */
TEST(ServeProtocolTest, TruncatedFrameIsNeedMoreNotBad)
{
    const std::string frame = servefmt::encodeFrame("STATS");
    FrameReader reader;
    reader.feed(frame.data(), frame.size() - 1);
    std::string out;
    EXPECT_EQ(reader.next(out), FrameReader::Status::NeedMore);
    EXPECT_EQ(reader.next(out), FrameReader::Status::NeedMore);
    reader.feed(frame.data() + frame.size() - 1, 1);
    EXPECT_EQ(reader.next(out), FrameReader::Status::Frame);
    EXPECT_EQ(out, "STATS");
}

TEST(ServeProtocolTest, SplitTokens)
{
    const auto toks =
        servefmt::splitTokens("  ADVISE  BFS\tFFT   WAIT 5 ");
    ASSERT_EQ(toks.size(), 5u);
    EXPECT_EQ(toks[0], "ADVISE");
    EXPECT_EQ(toks[1], "BFS");
    EXPECT_EQ(toks[2], "FFT");
    EXPECT_EQ(toks[3], "WAIT");
    EXPECT_EQ(toks[4], "5");
    EXPECT_TRUE(servefmt::splitTokens("   ").empty());
}

/** sendFrame/recvFrame across a real socketpair, sender dribbling the
 * frame in 3-byte chunks so recvFrame's reassembly loop is the thing
 * under test, not the kernel's buffering. */
TEST(ServeProtocolTest, RecvFrameReassemblesPartialSocketWrites)
{
    int fds[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    const std::string payload = "ADVISE BLK TRD OBJ HS";
    const std::string frame = servefmt::encodeFrame(payload);

    std::thread sender([&] {
        for (std::size_t i = 0; i < frame.size(); i += 3) {
            const std::size_t n = std::min<std::size_t>(
                3, frame.size() - i);
            ASSERT_TRUE(netWriteFull(fds[0], frame.data() + i, n));
        }
        ::close(fds[0]);
    });

    FrameReader reader;
    std::string out;
    EXPECT_TRUE(servefmt::recvFrame(fds[1], reader, out));
    EXPECT_EQ(out, payload);
    // The peer closed after one frame: the next read is clean EOF.
    EXPECT_FALSE(servefmt::recvFrame(fds[1], reader, out));
    sender.join();
    ::close(fds[1]);
}

TEST(ServeProtocolTest, RecvFrameTimesOutOnSilentPeer)
{
    int fds[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    FrameReader reader;
    std::string out;
    EXPECT_FALSE(servefmt::recvFrame(fds[1], reader, out, 50));
    ::close(fds[0]);
    ::close(fds[1]);
}

} // namespace
} // namespace ebm
